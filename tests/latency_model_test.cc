#include "crf/cluster/latency_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "crf/stats/running_stats.h"

namespace crf {
namespace {

double MeanLatency(LatencyModel& model, double mean_demand, double peak_demand,
                   double capacity, int n = 2000) {
  RunningStats stats;
  for (int i = 0; i < n; ++i) {
    stats.Add(model.Sample(mean_demand, peak_demand, capacity));
  }
  return stats.mean();
}

TEST(LatencyModelTest, AlwaysPositive) {
  LatencyModel model(LatencyModelParams{}, Rng(1));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(model.Sample(0.5, 0.6, 1.0), 0.0);
  }
}

TEST(LatencyModelTest, LatencyIncreasesWithUtilization) {
  LatencyModelParams params;
  params.base_log_sigma = 0.1;
  LatencyModel model(params, Rng(2));
  const double idle = MeanLatency(model, 0.1, 0.15, 1.0);
  const double busy = MeanLatency(model, 0.9, 0.95, 1.0);
  EXPECT_GT(busy, idle * 1.1);
}

TEST(LatencyModelTest, OverloadDominates) {
  LatencyModelParams params;
  params.base_log_sigma = 0.1;
  LatencyModel model(params, Rng(3));
  const double saturated = MeanLatency(model, 0.95, 0.99, 1.0);
  const double overloaded = MeanLatency(model, 0.95, 1.3, 1.0);
  EXPECT_GT(overloaded, saturated * 2.0);
}

TEST(LatencyModelTest, DemandAboveRhoClipIsFinite) {
  LatencyModel model(LatencyModelParams{}, Rng(4));
  const double latency = model.Sample(5.0, 6.0, 1.0);
  EXPECT_TRUE(std::isfinite(latency));
  EXPECT_GT(latency, 0.0);
}

TEST(LatencyModelTest, DeterministicGivenSeed) {
  LatencyModel a(LatencyModelParams{}, Rng(5));
  LatencyModel b(LatencyModelParams{}, Rng(5));
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Sample(0.5, 0.7, 1.0), b.Sample(0.5, 0.7, 1.0));
  }
}

TEST(LatencyModelTest, ScalesWithCapacityRatio) {
  LatencyModelParams params;
  params.base_log_sigma = 0.1;
  LatencyModel model(params, Rng(6));
  // Same absolute demand on a bigger machine is less loaded.
  const double small = MeanLatency(model, 0.9, 1.0, 1.0);
  const double big = MeanLatency(model, 0.9, 1.0, 4.0);
  EXPECT_GT(small, big);
}

TEST(LatencyModelDeathTest, RejectsBadParams) {
  LatencyModelParams params;
  params.rho_clip = 1.0;
  EXPECT_DEATH(LatencyModel(params, Rng(7)), "CHECK failed");
  LatencyModel ok(LatencyModelParams{}, Rng(8));
  EXPECT_DEATH(ok.Sample(0.5, 0.5, 0.0), "CHECK failed");
}

}  // namespace
}  // namespace crf
