#include "crf/core/spec_parser.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace crf {
namespace {

std::string NameOf(std::string_view text) {
  const auto spec = ParsePredictorSpec(text);
  return spec.has_value() ? spec->Name() : "<error>";
}

TEST(SpecParserTest, SimpleSpecs) {
  EXPECT_EQ(NameOf("limit-sum"), "limit-sum");
  EXPECT_EQ(NameOf("borg-default"), "borg-default-0.90");
  EXPECT_EQ(NameOf("borg-default:0.85"), "borg-default-0.85");
  EXPECT_EQ(NameOf("rc-like"), "rc-like-p99");
  EXPECT_EQ(NameOf("rc-like:95"), "rc-like-p95");
  EXPECT_EQ(NameOf("n-sigma:3"), "n-sigma-3");
  EXPECT_EQ(NameOf("autopilot"), "autopilot-p98-m1.10");
  EXPECT_EQ(NameOf("autopilot:95:1.2"), "autopilot-p95-m1.20");
  EXPECT_EQ(NameOf("chance"), "chance-e0.01");
  EXPECT_EQ(NameOf("chance:0.05"), "chance-e0.05");
  EXPECT_EQ(NameOf("flex"), "flex-p95-m1.2");
  EXPECT_EQ(NameOf("flex:90"), "flex-p90-m1.2");
  EXPECT_EQ(NameOf("flex:90:1.5"), "flex-p90-m1.5");
}

TEST(SpecParserTest, MaxComposition) {
  EXPECT_EQ(NameOf("max(n-sigma:5,rc-like:99)"), "max(n-sigma-5,rc-like-p99)");
  EXPECT_EQ(NameOf("max(borg-default:0.9,autopilot:98:1.1)"),
            "max(borg-default-0.90,autopilot-p98-m1.10)");
  EXPECT_EQ(NameOf("max(chance:0.02,flex:95:1.2)"), "max(chance-e0.02,flex-p95-m1.2)");
}

TEST(SpecParserTest, NestedMax) {
  EXPECT_EQ(NameOf("max(max(n-sigma:2,n-sigma:3),rc-like:80)"),
            "max(max(n-sigma-2,n-sigma-3),rc-like-p80)");
}

TEST(SpecParserTest, PaperConfigsRoundTrip) {
  EXPECT_EQ(NameOf("max(n-sigma:5,rc-like:99)"), SimulationMaxSpec().Name());
  EXPECT_EQ(NameOf("max(n-sigma:3,rc-like:80)"), ProductionMaxSpec().Name());
}

TEST(SpecParserTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "unknown", "borg-default:abc", "borg-default:1.5", "borg-default:0",
        "rc-like:150", "n-sigma:-2", "autopilot:98:0.5", "max()", "max(",
        "max(n-sigma:5", "max(n-sigma:5,)", "max(bogus)", "limit-sum:1",
        "rc-like:90:1", "n-sigma:5:5", "chance:0", "chance:1", "chance:-0.1",
        "chance:1.5", "chance:0.01:0.02", "flex:101", "flex:-1", "flex:95:0.9",
        "flex:95:1.2:3"}) {
    EXPECT_FALSE(ParsePredictorSpec(bad).has_value()) << bad;
  }
}

// The parser must reject every value the predictor constructors would
// CHECK-abort on — nan/inf sail through (x < lo || x > hi) range tests, so
// they need explicit rejection — plus empty and overflowing numbers.
TEST(SpecParserTest, RejectsNonFiniteAndOverflowingParameters) {
  for (const char* bad :
       {"rc-like:nan", "rc-like:-nan", "n-sigma:inf", "n-sigma:-inf", "autopilot:nan",
        "autopilot:98:inf", "borg-default:nan", "borg-default:1e999", "n-sigma:1e999",
        "rc-like:", "n-sigma:", "borg-default:", "autopilot:", "autopilot:98:",
        "chance:nan", "chance:inf", "chance:", "flex:nan", "flex:95:inf", "flex:",
        "max(rc-like:nan)", "max(n-sigma:5,autopilot:inf)"}) {
    EXPECT_FALSE(ParsePredictorSpec(bad).has_value()) << bad;
  }
}

TEST(SpecParserTest, ReportsPreciseErrors) {
  const auto error_for = [](std::string_view text) {
    std::string error;
    EXPECT_FALSE(ParsePredictorSpec(text, &error).has_value()) << text;
    return error;
  };
  EXPECT_EQ(error_for(""), "empty predictor spec");
  EXPECT_EQ(error_for("limit-sum:1"), "limit-sum takes no parameters");
  EXPECT_EQ(error_for("borg-default:abc"), "borg-default phi 'abc' is not a number");
  EXPECT_EQ(error_for("borg-default:1e999"), "borg-default phi '1e999' overflows a double");
  EXPECT_EQ(error_for("borg-default:1.5"), "borg-default phi '1.5' must be in (0, 1]");
  EXPECT_EQ(error_for("rc-like:nan"), "rc-like percentile 'nan' is not finite");
  EXPECT_EQ(error_for("rc-like:150"), "rc-like percentile '150' must be in [0, 100]");
  EXPECT_EQ(error_for("rc-like:"), "rc-like percentile is empty");
  EXPECT_EQ(error_for("n-sigma:inf"), "n-sigma n 'inf' is not finite");
  EXPECT_EQ(error_for("n-sigma:-2"), "n-sigma n '-2' must be positive");
  EXPECT_EQ(error_for("n-sigma:5:5"), "n-sigma takes at most one parameter (n)");
  EXPECT_EQ(error_for("autopilot:98:0.5"), "autopilot margin '0.5' must be >= 1");
  EXPECT_EQ(error_for("autopilot:101"), "autopilot percentile '101' must be in [0, 100]");
  EXPECT_EQ(error_for("autopilot:1:2:3"),
            "autopilot takes at most two parameters (percentile, margin)");
  EXPECT_EQ(error_for("chance:0"), "chance target '0' must be in (0, 1)");
  EXPECT_EQ(error_for("chance:1"), "chance target '1' must be in (0, 1)");
  EXPECT_EQ(error_for("chance:nan"), "chance target 'nan' is not finite");
  EXPECT_EQ(error_for("chance:0.01:0.02"), "chance takes at most one parameter (target)");
  EXPECT_EQ(error_for("flex:101"), "flex percentile '101' must be in [0, 100]");
  EXPECT_EQ(error_for("flex:95:0.9"), "flex margin '0.9' must be >= 1");
  EXPECT_EQ(error_for("flex:95:1.2:3"),
            "flex takes at most two parameters (percentile, margin)");
  EXPECT_EQ(error_for("max()"), "empty component in 'max()'");
  EXPECT_EQ(error_for("max(n-sigma:5,)"), "empty component in 'max(n-sigma:5,)'");
  EXPECT_EQ(error_for("max(a,b))"), "unbalanced ')' in 'a,b)'");
  // A nested failure surfaces the deepest diagnostic, not a generic one.
  EXPECT_EQ(error_for("max(n-sigma:5,rc-like:nan)"), "rc-like percentile 'nan' is not finite");
  EXPECT_TRUE(error_for("bogus").starts_with("unknown predictor 'bogus'"))
      << error_for("bogus");
}

// Fuzz-style totality sweep: pseudo-random strings over the spec alphabet
// must never crash or CHECK-abort — each either parses (and the resulting
// spec's factory-validated knobs are in range, proven by Name() not
// aborting) or reports a non-empty error.
TEST(SpecParserTest, ArbitraryInputNeverCrashes) {
  const char alphabet[] = "abcdefghijklmnopqrstuvwxyz-:,().0123456789einfa";
  // Half the inputs are pure noise; half mutate a real spec (every family
  // represented) so near-valid strings get exercised, not just uniform junk.
  const char* seeds[] = {"limit-sum",     "borg-default:0.9", "rc-like:95",
                         "n-sigma:3",     "autopilot:98:1.1", "chance:0.02",
                         "flex:95:1.2",   "max(chance:0.01,flex:90)"};
  uint64_t state = 0x12345678u;
  const auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<size_t>(state >> 33);
  };
  for (int i = 0; i < 5000; ++i) {
    std::string text;
    if (i % 2 == 0) {
      const size_t length = next() % 24;
      for (size_t k = 0; k < length; ++k) {
        text += alphabet[next() % (sizeof(alphabet) - 1)];
      }
    } else {
      text = seeds[next() % (sizeof(seeds) / sizeof(seeds[0]))];
      const size_t mutations = 1 + next() % 3;
      for (size_t k = 0; k < mutations && !text.empty(); ++k) {
        text[next() % text.size()] = alphabet[next() % (sizeof(alphabet) - 1)];
      }
    }
    std::string error;
    const auto spec = ParsePredictorSpec(text, &error);
    if (spec.has_value()) {
      EXPECT_FALSE(spec->Name().empty()) << text;
    } else {
      EXPECT_FALSE(error.empty()) << text;
    }
  }
}

TEST(SpecParserTest, ParsedSpecsUsePaperWindows) {
  const auto spec = ParsePredictorSpec("rc-like:95");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->config.min_num_samples, 2 * kIntervalsPerHour);
  EXPECT_EQ(spec->config.max_num_samples, 10 * kIntervalsPerHour);
}

}  // namespace
}  // namespace crf
