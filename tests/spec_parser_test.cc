#include "crf/core/spec_parser.h"

#include <gtest/gtest.h>

namespace crf {
namespace {

std::string NameOf(std::string_view text) {
  const auto spec = ParsePredictorSpec(text);
  return spec.has_value() ? spec->Name() : "<error>";
}

TEST(SpecParserTest, SimpleSpecs) {
  EXPECT_EQ(NameOf("limit-sum"), "limit-sum");
  EXPECT_EQ(NameOf("borg-default"), "borg-default-0.90");
  EXPECT_EQ(NameOf("borg-default:0.85"), "borg-default-0.85");
  EXPECT_EQ(NameOf("rc-like"), "rc-like-p99");
  EXPECT_EQ(NameOf("rc-like:95"), "rc-like-p95");
  EXPECT_EQ(NameOf("n-sigma:3"), "n-sigma-3");
  EXPECT_EQ(NameOf("autopilot"), "autopilot-p98-m1.10");
  EXPECT_EQ(NameOf("autopilot:95:1.2"), "autopilot-p95-m1.20");
}

TEST(SpecParserTest, MaxComposition) {
  EXPECT_EQ(NameOf("max(n-sigma:5,rc-like:99)"), "max(n-sigma-5,rc-like-p99)");
  EXPECT_EQ(NameOf("max(borg-default:0.9,autopilot:98:1.1)"),
            "max(borg-default-0.90,autopilot-p98-m1.10)");
}

TEST(SpecParserTest, NestedMax) {
  EXPECT_EQ(NameOf("max(max(n-sigma:2,n-sigma:3),rc-like:80)"),
            "max(max(n-sigma-2,n-sigma-3),rc-like-p80)");
}

TEST(SpecParserTest, PaperConfigsRoundTrip) {
  EXPECT_EQ(NameOf("max(n-sigma:5,rc-like:99)"), SimulationMaxSpec().Name());
  EXPECT_EQ(NameOf("max(n-sigma:3,rc-like:80)"), ProductionMaxSpec().Name());
}

TEST(SpecParserTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "unknown", "borg-default:abc", "borg-default:1.5", "borg-default:0",
        "rc-like:150", "n-sigma:-2", "autopilot:98:0.5", "max()", "max(",
        "max(n-sigma:5", "max(n-sigma:5,)", "max(bogus)", "limit-sum:1",
        "rc-like:90:1", "n-sigma:5:5"}) {
    EXPECT_FALSE(ParsePredictorSpec(bad).has_value()) << bad;
  }
}

TEST(SpecParserTest, ParsedSpecsUsePaperWindows) {
  const auto spec = ParsePredictorSpec("rc-like:95");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->config.min_num_samples, 2 * kIntervalsPerHour);
  EXPECT_EQ(spec->config.max_num_samples, 10 * kIntervalsPerHour);
}

}  // namespace
}  // namespace crf
