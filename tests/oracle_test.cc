#include "crf/core/oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "crf/stats/window_max.h"
#include "crf/trace/generator.h"
#include "crf/trace/trace_builder.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

struct TaskSpec {
  TaskId id;
  Interval start;
  std::vector<float> usage;
  double limit = 1.0;
};

TaskSpec MakeTask(TaskId id, Interval start, std::vector<float> usage, double limit = 1.0) {
  return {id, start, std::move(usage), limit};
}

CellTrace OneMachineCell(std::vector<TaskSpec> tasks, Interval num_intervals) {
  CellTraceBuilder builder("oracle_test", num_intervals, /*num_machines=*/1);
  for (const TaskSpec& spec : tasks) {
    const int32_t index = builder.AddTask(spec.id, spec.id, /*machine=*/0, spec.start,
                                          spec.limit, SchedulingClass::kLatencySensitive);
    for (const float u : spec.usage) {
      builder.AppendUsage(index, u);
    }
  }
  return builder.Seal();
}

// Direct O(T * H * N) reference implementation of the arrival-filtered
// oracle definition from Section 3.1.
std::vector<double> BruteForceOracle(const CellTrace& cell, int machine, Interval horizon) {
  std::vector<double> oracle(cell.num_intervals, 0.0);
  for (Interval tau = 0; tau < cell.num_intervals; ++tau) {
    double best = 0.0;
    const Interval end = std::min<Interval>(cell.num_intervals, tau + horizon);
    for (Interval t = tau; t < end; ++t) {
      double total = 0.0;
      for (const int32_t index : cell.machine_tasks(machine)) {
        const TaskView task = cell.task(index);
        if (task.start() <= tau) {  // Arrival-filtered: present at tau.
          total += task.UsageAt(t);
        }
      }
      best = std::max(best, total);
    }
    oracle[tau] = best;
  }
  return oracle;
}

TEST(OracleTest, SingleTaskIsItsForwardMax) {
  CellTrace cell = OneMachineCell({MakeTask(1, 0, {0.1f, 0.5f, 0.2f, 0.4f})}, 4);
  const std::vector<double> oracle = ComputePeakOracle(cell, 0, 2);
  EXPECT_FLOAT_EQ(oracle[0], 0.5f);
  EXPECT_FLOAT_EQ(oracle[1], 0.5f);
  EXPECT_FLOAT_EQ(oracle[2], 0.4f);
  EXPECT_FLOAT_EQ(oracle[3], 0.4f);
}

TEST(OracleTest, LateArrivalExcludedUntilPresent) {
  // Task 2 arrives at t=2 with huge usage; before t=2 the oracle must not
  // see it even though it lies inside the horizon window.
  CellTrace cell = OneMachineCell(
      {MakeTask(1, 0, {0.1f, 0.1f, 0.1f, 0.1f}), MakeTask(2, 2, {0.9f, 0.9f})}, 4);
  const std::vector<double> oracle = ComputePeakOracle(cell, 0, 4);
  EXPECT_NEAR(oracle[0], 0.1, 1e-6);
  EXPECT_NEAR(oracle[1], 0.1, 1e-6);
  EXPECT_NEAR(oracle[2], 1.0, 1e-6);
  EXPECT_NEAR(oracle[3], 1.0, 1e-6);
}

TEST(OracleTest, DepartedTasksContributeZero) {
  CellTrace cell = OneMachineCell({MakeTask(1, 0, {0.8f}), MakeTask(2, 0, {0.2f, 0.2f})}, 3);
  const std::vector<double> oracle = ComputePeakOracle(cell, 0, 3);
  EXPECT_NEAR(oracle[0], 1.0, 1e-6);  // Both resident at t=0.
  EXPECT_NEAR(oracle[1], 0.2, 1e-6);  // Task 1 completed.
  EXPECT_NEAR(oracle[2], 0.0, 1e-6);  // Machine empty.
}

TEST(OracleTest, TotalUsageOracleSeesFutureArrivals) {
  CellTrace cell = OneMachineCell(
      {MakeTask(1, 0, {0.1f, 0.1f, 0.1f, 0.1f}), MakeTask(2, 2, {0.9f, 0.9f})}, 4);
  const std::vector<double> unfiltered = ComputeTotalUsageOracle(cell, 0, 4);
  EXPECT_NEAR(unfiltered[0], 1.0, 1e-6);  // Includes the future arrival.
}

TEST(OracleTest, EmptyMachineIsZero) {
  CellTraceBuilder builder("empty", /*num_intervals=*/5, /*num_machines=*/1);
  const CellTrace cell = builder.Seal();
  const std::vector<double> oracle = ComputePeakOracle(cell, 0, 3);
  for (const double v : oracle) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

struct OracleCase {
  uint64_t seed;
  Interval horizon;
};

class OraclePropertyTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OraclePropertyTest, MatchesBruteForceOnRandomTraces) {
  const OracleCase param = GetParam();
  Rng rng(param.seed);
  const Interval num_intervals = 60;
  std::vector<TaskSpec> tasks;
  const int num_tasks = 3 + static_cast<int>(rng.UniformInt(12));
  for (int i = 0; i < num_tasks; ++i) {
    const Interval start = static_cast<Interval>(rng.UniformInt(num_intervals - 1));
    const Interval len =
        1 + static_cast<Interval>(rng.UniformInt(num_intervals - start));
    std::vector<float> usage(len);
    for (auto& u : usage) {
      u = static_cast<float>(rng.UniformDouble());
    }
    tasks.push_back(MakeTask(i + 1, start, std::move(usage)));
  }
  CellTrace cell = OneMachineCell(std::move(tasks), num_intervals);
  const std::vector<double> fast = ComputePeakOracle(cell, 0, param.horizon);
  const std::vector<double> brute = BruteForceOracle(cell, 0, param.horizon);
  ASSERT_EQ(fast.size(), brute.size());
  for (size_t t = 0; t < fast.size(); ++t) {
    ASSERT_NEAR(fast[t], brute[t], 1e-9) << "t=" << t << " seed=" << param.seed;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, OraclePropertyTest,
                         ::testing::Values(OracleCase{1, 1}, OracleCase{2, 5},
                                           OracleCase{3, 10}, OracleCase{4, 24},
                                           OracleCase{5, 60}, OracleCase{6, 7},
                                           OracleCase{7, 13}, OracleCase{8, 30}));

TEST(OracleTest, TotalUsageOracleUpperBoundsFiltered) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 6;
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerDay;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(70));
  for (int m = 0; m < profile.num_machines; ++m) {
    const std::vector<double> filtered = ComputePeakOracle(cell, m, 48);
    const std::vector<double> unfiltered = ComputeTotalUsageOracle(cell, m, 48);
    for (size_t t = 0; t < filtered.size(); ++t) {
      EXPECT_GE(unfiltered[t], filtered[t] - 1e-9);
    }
  }
}

TEST(OracleTest, MonotoneInHorizon) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 4;
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerDay;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(71));
  for (int m = 0; m < profile.num_machines; ++m) {
    const std::vector<double> short_h = ComputePeakOracle(cell, m, 12);
    const std::vector<double> long_h = ComputePeakOracle(cell, m, 96);
    for (size_t t = 0; t < short_h.size(); ++t) {
      EXPECT_LE(short_h[t], long_h[t] + 1e-9);
    }
  }
}

// With a fixed task set (everything resident from t=0, nothing arrives
// later) and a horizon covering the whole remaining trace, the oracle is the
// running max of the future aggregate — monotonically non-increasing in tau.
TEST(OracleTest, NonIncreasingInTauForFixedTaskSet) {
  Rng rng(73);
  const Interval num_intervals = 48;
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 8; ++i) {
    std::vector<float> usage(num_intervals);
    for (auto& u : usage) {
      u = static_cast<float>(rng.UniformDouble());
    }
    tasks.push_back(MakeTask(i + 1, 0, std::move(usage)));
  }
  const CellTrace cell = OneMachineCell(std::move(tasks), num_intervals);
  const std::vector<double> oracle = ComputePeakOracle(cell, 0, num_intervals);
  for (size_t t = 1; t < oracle.size(); ++t) {
    EXPECT_LE(oracle[t], oracle[t - 1] + 1e-12) << "t=" << t;
  }
}

// When every task starts at 0 the arrival filter admits all of them at every
// tau, so the oracle degenerates to ForwardWindowMax of the aggregate series.
TEST(OracleTest, EqualsForwardWindowMaxWhenAllTasksStartAtZero) {
  Rng rng(74);
  const Interval num_intervals = 40;
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < 6; ++i) {
    // Staggered *lengths* (departures) are fine; only arrivals must align.
    const Interval len = 10 + static_cast<Interval>(rng.UniformInt(num_intervals - 9));
    std::vector<float> usage(len);
    for (auto& u : usage) {
      u = static_cast<float>(rng.UniformDouble());
    }
    tasks.push_back(MakeTask(i + 1, 0, std::move(usage)));
  }
  const CellTrace cell = OneMachineCell(std::move(tasks), num_intervals);
  for (const Interval horizon : {Interval{1}, Interval{7}, Interval{24}, num_intervals}) {
    const std::vector<double> oracle = ComputePeakOracle(cell, 0, horizon);
    const std::vector<double> window_max =
        ForwardWindowMax(cell.MachineUsageSeries(0), horizon);
    ASSERT_EQ(oracle.size(), window_max.size());
    for (size_t t = 0; t < oracle.size(); ++t) {
      // NEAR, not EQ: the two paths may sum task usages in different orders.
      EXPECT_NEAR(oracle[t], window_max[t], 1e-12) << "h=" << horizon << " t=" << t;
    }
  }
}

TEST(OracleCacheTest, HitIsBitIdenticalToMiss) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 3;
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerDay;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(75));

  OracleCache cache;
  for (int m = 0; m < profile.num_machines; ++m) {
    const OracleCache::Series miss = cache.GetOrCompute(cell, m, 24, OracleKind::kPeak);
    const OracleCache::Series hit = cache.GetOrCompute(cell, m, 24, OracleKind::kPeak);
    // A hit returns the very same series object, so it is bit-identical by
    // construction — and both match a from-scratch computation exactly.
    EXPECT_EQ(miss.get(), hit.get());
    const std::vector<double> direct = ComputePeakOracle(cell, m, 24);
    ASSERT_EQ(miss->size(), direct.size());
    for (size_t t = 0; t < direct.size(); ++t) {
      EXPECT_EQ((*miss)[t], direct[t]) << "m=" << m << " t=" << t;
    }
  }
  EXPECT_EQ(cache.misses(), profile.num_machines);
  EXPECT_EQ(cache.hits(), profile.num_machines);
  EXPECT_EQ(cache.size(), static_cast<size_t>(profile.num_machines));
}

TEST(OracleCacheTest, DistinctKeysDoNotCollide) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 2;
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerDay;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(76));

  OracleCache cache;
  const auto peak_h24 = cache.GetOrCompute(cell, 0, 24, OracleKind::kPeak);
  const auto peak_h48 = cache.GetOrCompute(cell, 0, 48, OracleKind::kPeak);
  const auto total_h24 = cache.GetOrCompute(cell, 0, 24, OracleKind::kTotalUsage);
  const auto other_machine = cache.GetOrCompute(cell, 1, 24, OracleKind::kPeak);
  EXPECT_EQ(cache.misses(), 4);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.size(), 4u);

  // Each key maps to the right computation.
  EXPECT_EQ(*peak_h24, ComputePeakOracle(cell, 0, 24));
  EXPECT_EQ(*peak_h48, ComputePeakOracle(cell, 0, 48));
  EXPECT_EQ(*total_h24, ComputeTotalUsageOracle(cell, 0, 24));
  EXPECT_EQ(*other_machine, ComputePeakOracle(cell, 1, 24));

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  cache.GetOrCompute(cell, 0, 24, OracleKind::kPeak);
  EXPECT_EQ(cache.misses(), 5) << "Clear() must force recomputation";
}

TEST(OracleTest, OracleAtLeastCurrentUsage) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 4;
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerDay;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(72));
  for (int m = 0; m < profile.num_machines; ++m) {
    const std::vector<double> oracle = ComputePeakOracle(cell, m, 24);
    const std::vector<double> usage = cell.MachineUsageSeries(m);
    for (size_t t = 0; t < usage.size(); ++t) {
      EXPECT_GE(oracle[t], usage[t] - 1e-9);
    }
  }
}

}  // namespace
}  // namespace crf
