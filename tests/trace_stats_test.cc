#include "crf/trace/trace_stats.h"

#include <gtest/gtest.h>

#include "crf/trace/generator.h"

namespace crf {
namespace {

CellTrace TestCell(bool rich = false) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 12;
  GeneratorOptions options;
  options.num_intervals = 2 * kIntervalsPerDay;
  options.rich_stats = rich;
  return GenerateCellTrace(profile, options, Rng(21));
}

TEST(SubmissionRateTest, CountsArrivalsExcludingInitialPopulation) {
  const CellTrace cell = TestCell();
  const std::vector<int64_t> series = SubmissionRateSeries(cell);
  ASSERT_EQ(series.size(), static_cast<size_t>(cell.num_intervals));
  EXPECT_EQ(series[0], 0);

  int64_t total = 0;
  for (const int64_t v : series) {
    total += v;
  }
  int64_t arrivals = 0;
  for (const Interval start : cell.task_starts()) {
    arrivals += start > 0 ? 1 : 0;
  }
  EXPECT_EQ(total, arrivals);
  EXPECT_GT(total, 0);
}

TEST(TaskRuntimeCdfTest, CoversAllTasks) {
  const CellTrace cell = TestCell();
  const Ecdf cdf = TaskRuntimeHoursCdf(cell);
  EXPECT_EQ(cdf.size(), static_cast<size_t>(cell.num_tasks()));
  EXPECT_GT(cdf.min(), 0.0);
  EXPECT_LE(cdf.max(), IntervalsToHours(cell.num_intervals) + 1e-9);
}

TEST(UsageToLimitCdfTest, RatiosInUnitInterval) {
  const CellTrace cell = TestCell();
  const Ecdf cdf = UsageToLimitCdf(cell, 4);
  EXPECT_GE(cdf.min(), 0.0);
  EXPECT_LE(cdf.max(), 1.0 + 1e-6);
}

TEST(CellSeriesTest, UsageBelowLimits) {
  const CellTrace cell = TestCell();
  const std::vector<double> usage = CellUsageSeries(cell);
  const std::vector<double> limit = CellLimitSeries(cell);
  ASSERT_EQ(usage.size(), limit.size());
  for (size_t t = 0; t < usage.size(); ++t) {
    EXPECT_LE(usage[t], limit[t] + 1e-9);
  }
}

TEST(TaskLevelFuturePeakTest, DominatesCurrentUsage) {
  const CellTrace cell = TestCell();
  const std::vector<double> peak_sum = TaskLevelFuturePeakSum(cell, kIntervalsPerDay);
  const std::vector<double> usage = CellUsageSeries(cell);
  for (size_t t = 0; t < usage.size(); ++t) {
    EXPECT_GE(peak_sum[t], usage[t] - 1e-6);
  }
}

TEST(TaskLevelFuturePeakTest, BoundedByLimits) {
  const CellTrace cell = TestCell();
  const std::vector<double> peak_sum = TaskLevelFuturePeakSum(cell, kIntervalsPerDay);
  const std::vector<double> limit = CellLimitSeries(cell);
  for (size_t t = 0; t < limit.size(); ++t) {
    EXPECT_LE(peak_sum[t], limit[t] + 1e-6);
  }
}

TEST(TaskLevelFuturePeakTest, MonotoneInHorizon) {
  const CellTrace cell = TestCell();
  const std::vector<double> short_h = TaskLevelFuturePeakSum(cell, kIntervalsPerHour);
  const std::vector<double> long_h = TaskLevelFuturePeakSum(cell, kIntervalsPerDay);
  for (size_t t = 0; t < short_h.size(); ++t) {
    EXPECT_LE(short_h[t], long_h[t] + 1e-9);
  }
}

TEST(PercentileSumPeakErrorTest, HigherPercentileShiftsErrorUp) {
  // Fig 6 mechanism: estimating the machine peak as the sum of task p100s
  // must overestimate more than the sum of task p50s.
  const CellTrace cell = TestCell(/*rich=*/true);
  const Ecdf p50 = PercentileSumPeakErrorCdf(cell, 50, 4);
  const Ecdf p100 = PercentileSumPeakErrorCdf(cell, 100, 4);
  ASSERT_FALSE(p50.empty());
  ASSERT_FALSE(p100.empty());
  EXPECT_LT(p50.Quantile(0.5), p100.Quantile(0.5));
  // The sum of within-interval maxima can only overestimate the true
  // simultaneous peak (statistical multiplexing).
  EXPECT_GE(p100.Quantile(0.01), -1e-6);
}

TEST(PercentileSumPeakErrorDeathTest, RequiresRichStats) {
  const CellTrace cell = TestCell(/*rich=*/false);
  EXPECT_DEATH(PercentileSumPeakErrorCdf(cell, 90, 4), "rich_stats");
}

}  // namespace
}  // namespace crf
