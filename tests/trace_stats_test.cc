#include "crf/trace/trace_stats.h"

#include <gtest/gtest.h>

#include "crf/trace/generator.h"
#include "crf/trace/trace_builder.h"

namespace crf {
namespace {

CellTrace TestCell(bool rich = false) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 12;
  GeneratorOptions options;
  options.num_intervals = 2 * kIntervalsPerDay;
  options.rich_stats = rich;
  return GenerateCellTrace(profile, options, Rng(21));
}

TEST(SubmissionRateTest, CountsArrivalsExcludingInitialPopulation) {
  const CellTrace cell = TestCell();
  const std::vector<int64_t> series = SubmissionRateSeries(cell);
  ASSERT_EQ(series.size(), static_cast<size_t>(cell.num_intervals));
  EXPECT_EQ(series[0], 0);

  int64_t total = 0;
  for (const int64_t v : series) {
    total += v;
  }
  int64_t arrivals = 0;
  for (const Interval start : cell.task_starts()) {
    arrivals += start > 0 ? 1 : 0;
  }
  EXPECT_EQ(total, arrivals);
  EXPECT_GT(total, 0);
}

TEST(TaskRuntimeCdfTest, CoversAllTasks) {
  const CellTrace cell = TestCell();
  const Ecdf cdf = TaskRuntimeHoursCdf(cell);
  EXPECT_EQ(cdf.size(), static_cast<size_t>(cell.num_tasks()));
  EXPECT_GT(cdf.min(), 0.0);
  EXPECT_LE(cdf.max(), IntervalsToHours(cell.num_intervals) + 1e-9);
}

TEST(UsageToLimitCdfTest, RatiosInUnitInterval) {
  const CellTrace cell = TestCell();
  const Ecdf cdf = UsageToLimitCdf(cell, 4);
  EXPECT_GE(cdf.min(), 0.0);
  EXPECT_LE(cdf.max(), 1.0 + 1e-6);
}

TEST(CellSeriesTest, UsageBelowLimits) {
  const CellTrace cell = TestCell();
  const std::vector<double> usage = CellUsageSeries(cell);
  const std::vector<double> limit = CellLimitSeries(cell);
  ASSERT_EQ(usage.size(), limit.size());
  for (size_t t = 0; t < usage.size(); ++t) {
    EXPECT_LE(usage[t], limit[t] + 1e-9);
  }
}

TEST(TaskLevelFuturePeakTest, DominatesCurrentUsage) {
  const CellTrace cell = TestCell();
  const std::vector<double> peak_sum = TaskLevelFuturePeakSum(cell, kIntervalsPerDay);
  const std::vector<double> usage = CellUsageSeries(cell);
  for (size_t t = 0; t < usage.size(); ++t) {
    EXPECT_GE(peak_sum[t], usage[t] - 1e-6);
  }
}

TEST(TaskLevelFuturePeakTest, BoundedByLimits) {
  const CellTrace cell = TestCell();
  const std::vector<double> peak_sum = TaskLevelFuturePeakSum(cell, kIntervalsPerDay);
  const std::vector<double> limit = CellLimitSeries(cell);
  for (size_t t = 0; t < limit.size(); ++t) {
    EXPECT_LE(peak_sum[t], limit[t] + 1e-6);
  }
}

TEST(TaskLevelFuturePeakTest, MonotoneInHorizon) {
  const CellTrace cell = TestCell();
  const std::vector<double> short_h = TaskLevelFuturePeakSum(cell, kIntervalsPerHour);
  const std::vector<double> long_h = TaskLevelFuturePeakSum(cell, kIntervalsPerDay);
  for (size_t t = 0; t < short_h.size(); ++t) {
    EXPECT_LE(short_h[t], long_h[t] + 1e-9);
  }
}

TEST(PercentileSumPeakErrorTest, HigherPercentileShiftsErrorUp) {
  // Fig 6 mechanism: estimating the machine peak as the sum of task p100s
  // must overestimate more than the sum of task p50s.
  const CellTrace cell = TestCell(/*rich=*/true);
  const Ecdf p50 = PercentileSumPeakErrorCdf(cell, 50, 4);
  const Ecdf p100 = PercentileSumPeakErrorCdf(cell, 100, 4);
  ASSERT_FALSE(p50.empty());
  ASSERT_FALSE(p100.empty());
  EXPECT_LT(p50.Quantile(0.5), p100.Quantile(0.5));
  // The sum of within-interval maxima can only overestimate the true
  // simultaneous peak (statistical multiplexing).
  EXPECT_GE(p100.Quantile(0.01), -1e-6);
}

TEST(PercentileSumPeakErrorDeathTest, RequiresRichStats) {
  const CellTrace cell = TestCell(/*rich=*/false);
  EXPECT_DEATH(PercentileSumPeakErrorCdf(cell, 90, 4), "rich_stats");
}

// Hand-built two-machine cell with known layout: machine 0 holds two tasks
// (2 + 3 usage samples), machine 1 holds one task (1 sample).
CellTrace TinyLayoutCell() {
  CellTraceBuilder builder("layout_cell", 4, 2);
  const int32_t a = builder.AddTask(1, 1, 0, 0, 0.5, SchedulingClass::kLatencySensitive);
  builder.AppendUsage(a, 0.1f);
  builder.AppendUsage(a, 0.2f);
  const int32_t b = builder.AddTask(2, 2, 0, 1, 0.5, SchedulingClass::kLatencySensitive);
  builder.AppendUsage(b, 0.1f);
  builder.AppendUsage(b, 0.1f);
  builder.AppendUsage(b, 0.1f);
  const int32_t c = builder.AddTask(3, 3, 1, 2, 0.5, SchedulingClass::kLatencySensitive);
  builder.AppendUsage(c, 0.3f);
  return builder.Seal();
}

TEST(TraceLayoutStatsTest, CountsAndSlabSizesForTinyCell) {
  const TraceLayoutStats stats = ComputeTraceLayoutStats(TinyLayoutCell());
  EXPECT_EQ(stats.num_machines, 2);
  EXPECT_EQ(stats.min_tasks_per_machine, 1);
  EXPECT_EQ(stats.max_tasks_per_machine, 2);
  EXPECT_DOUBLE_EQ(stats.mean_tasks_per_machine, 1.5);
  EXPECT_EQ(stats.csr_entries, 3);
  EXPECT_EQ(stats.usage_samples, 6);
  // Per-task columns for 3 tasks: ids 24 + jobs 24 + machines 12 + starts 12
  // + classes 3 + limits 24, plus 4 usage offsets (32) = 131 bytes.
  EXPECT_EQ(stats.task_column_bytes, 131);
  EXPECT_EQ(stats.usage_bytes, 6 * 4);
  EXPECT_EQ(stats.csr_bytes, 3 * 4);
  EXPECT_EQ(stats.rich_bytes, 0);
  // The arena holds at least the columns accounted for above.
  EXPECT_GE(stats.arena_bytes,
            stats.task_column_bytes + stats.usage_bytes + stats.csr_bytes + stats.peak_bytes);
}

TEST(TraceLayoutStatsTest, GoldenDescription) {
  const TraceLayoutStats stats = ComputeTraceLayoutStats(TinyLayoutCell());
  const std::string description = DescribeTraceLayout(stats);
  const std::string expected_first_line =
      "machine CSR rows: min 1, mean 1.50, max 2 tasks over 2 machines"
      " (3 entries, 6 usage samples)\n";
  ASSERT_GE(description.size(), expected_first_line.size());
  EXPECT_EQ(description.substr(0, expected_first_line.size()), expected_first_line);
  // The slab line is golden up to the arena total (which includes
  // seal-internal padding not enumerated by the struct).
  const std::string expected_second_line =
      "arena slabs: " + std::to_string(stats.arena_bytes) +
      " B total (task columns 131 B, usage 24 B, csr 12 B, peak " +
      std::to_string(stats.peak_bytes) + " B, rich 0 B)\n";
  // A sealed (heap) trace always reports the deterministic heap form of the
  // load-mode line; the mmap form carries a live residency estimate and is
  // covered by the mapped-trace tests instead.
  const std::string expected_third_line = "load mode: heap (arena fully resident)\n";
  EXPECT_EQ(description.substr(expected_first_line.size()),
            expected_second_line + expected_third_line);
  EXPECT_FALSE(stats.mapped);
  EXPECT_EQ(stats.resident_bytes, stats.arena_bytes);
}

TEST(TraceLayoutStatsTest, MatchesGeneratedCell) {
  const CellTrace cell = TestCell();
  const TraceLayoutStats stats = ComputeTraceLayoutStats(cell);
  EXPECT_EQ(stats.num_machines, cell.num_machines());
  EXPECT_EQ(stats.csr_entries, cell.num_tasks());
  EXPECT_EQ(stats.usage_samples, cell.usage_sample_count());
  EXPECT_LE(stats.min_tasks_per_machine, stats.max_tasks_per_machine);
  EXPECT_GE(stats.mean_tasks_per_machine, stats.min_tasks_per_machine);
  EXPECT_LE(stats.mean_tasks_per_machine, stats.max_tasks_per_machine);
  EXPECT_GT(stats.arena_bytes, 0);
}

}  // namespace
}  // namespace crf
