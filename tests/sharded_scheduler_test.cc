#include "crf/cluster/sharded_scheduler.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "crf/cluster/cell_sim.h"
#include "crf/trace/cell_profile.h"
#include "crf/util/rng.h"
#include "crf/util/thread_pool.h"

namespace crf {
namespace {

// A reproducible pseudo-random request stream: `jobs` jobs of `width` tasks
// each, limits cycling through a few sizes. All tasks of one job share a
// job_machines vector and affinity key.
struct RequestStream {
  explicit RequestStream(int jobs, int width) {
    job_machines.resize(jobs);
    for (int j = 0; j < jobs; ++j) {
      for (int i = 0; i < width; ++i) {
        const double limit = 0.05 + 0.05 * ((j * width + i) % 4);
        requests.push_back({limit, &job_machines[j], static_cast<uint64_t>(j)});
      }
    }
  }
  std::vector<std::vector<int>> job_machines;
  std::vector<ShardedScheduler::Request> requests;
};

ShardedSchedulerOptions Options(int shards, ThreadPool* pool) {
  ShardedSchedulerOptions options;
  options.num_shards = shards;
  options.pool = pool;
  return options;
}

// Runs `batches` batches of the stream against a fresh engine and returns
// every result plus the final free-capacity vector.
struct RunOutcome {
  std::vector<int> results;
  std::vector<double> free;
  int64_t stolen = 0;
};

RunOutcome RunStream(const ShardedSchedulerOptions& options, uint64_t seed, int machines,
                     int jobs, int width, int batches) {
  ShardedScheduler engine(options, Rng(seed));
  engine.Reset(machines);
  std::vector<double> capacity(machines);
  for (int m = 0; m < machines; ++m) {
    capacity[m] = 1.0 + 0.01 * (m % 7);
  }
  engine.PublishAll(capacity);
  RunOutcome outcome;
  for (int b = 0; b < batches; ++b) {
    RequestStream stream(jobs, width);
    std::vector<int> results(stream.requests.size(), -1);
    engine.PlaceBatch(stream.requests, results);
    outcome.results.insert(outcome.results.end(), results.begin(), results.end());
  }
  outcome.free.resize(machines);
  for (int m = 0; m < machines; ++m) {
    outcome.free[m] = engine.free_capacity(m);
  }
  outcome.stolen = engine.stolen_placements();
  return outcome;
}

// The determinism contract: for a fixed (seed, num_shards), the placement
// stream and every debited capacity are byte-identical at any thread count,
// including heavily oversubscribed pools.
TEST(ShardedSchedulerTest, ByteDeterministicAcrossThreadCounts) {
  const RunOutcome reference =
      RunStream(Options(4, nullptr), /*seed=*/11, /*machines=*/64, /*jobs=*/20,
                /*width=*/6, /*batches=*/5);
  for (const int threads : {1, 2, 3, 8}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    ThreadPool pool(threads);
    const RunOutcome got = RunStream(Options(4, &pool), 11, 64, 20, 6, 5);
    EXPECT_EQ(got.results, reference.results);
    EXPECT_EQ(got.stolen, reference.stolen);
    ASSERT_EQ(got.free.size(), reference.free.size());
    EXPECT_EQ(std::memcmp(got.free.data(), reference.free.data(),
                          reference.free.size() * sizeof(double)),
              0);
  }
}

TEST(ShardedSchedulerTest, ParallelFlagDoesNotChangeResults) {
  ThreadPool pool(4);
  ShardedSchedulerOptions serial = Options(4, &pool);
  serial.parallel = false;
  const RunOutcome a = RunStream(serial, 3, 48, 16, 4, 3);
  const RunOutcome b = RunStream(Options(4, &pool), 3, 48, 16, 4, 3);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.free, b.free);
}

// Packing quality stays close to the global engine's: same capacities, same
// request stream, every policy. The engines make different (both valid)
// choices, so we bound the aggregate outcome, not individual placements:
// the sharded engine must place at least 95% as many tasks.
TEST(ShardedSchedulerTest, PlacedCountWithinBoundOfGlobalEngine) {
  for (const PackingPolicy policy :
       {PackingPolicy::kBestFit, PackingPolicy::kWorstFit, PackingPolicy::kRandomFit}) {
    SCOPED_TRACE(::testing::Message() << "policy=" << static_cast<int>(policy));
    const int machines = 40;
    std::vector<double> capacity(machines, 1.0);

    Scheduler global(policy, Rng(9), PlacementEngine::kIndexed);
    global.UpdateFreeCapacity(capacity);
    RequestStream global_stream(30, 8);
    int64_t global_placed = 0;
    for (const auto& request : global_stream.requests) {
      const int machine = global.Place(request.limit, *request.job_machines);
      if (machine >= 0) {
        request.job_machines->push_back(machine);
        ++global_placed;
      }
    }

    ShardedSchedulerOptions options = Options(4, nullptr);
    options.packing = policy;
    ShardedScheduler sharded(options, Rng(9));
    sharded.Reset(machines);
    sharded.PublishAll(capacity);
    RequestStream sharded_stream(30, 8);
    std::vector<int> results(sharded_stream.requests.size(), -1);
    sharded.PlaceBatch(sharded_stream.requests, results);
    int64_t sharded_placed = 0;
    for (const int machine : results) {
      sharded_placed += machine >= 0 ? 1 : 0;
    }

    EXPECT_GE(sharded_placed, (global_placed * 95) / 100)
        << "sharded " << sharded_placed << " vs global " << global_placed;
  }
}

// A full home shard must not fail requests other shards can hold: the steal
// phase retries every shard before giving up.
TEST(ShardedSchedulerTest, StealsFromOtherShardsWhenHomeShardIsFull) {
  ShardedScheduler engine(Options(4, nullptr), Rng(2));
  engine.Reset(16);  // 4 machines per shard
  std::vector<double> capacity(16, 1.0);
  for (int m = 0; m < 4; ++m) {
    capacity[m] = 0.0;  // shard 0 advertises nothing
  }
  engine.PublishAll(capacity);

  // Key 0 routes to shard 0 (nonempty_[0 % 4]).
  std::vector<int> job_machines;
  std::vector<ShardedScheduler::Request> requests(6, {0.5, &job_machines, 0});
  std::vector<int> results(requests.size(), -1);
  engine.PlaceBatch(requests, results);
  for (const int machine : results) {
    EXPECT_GE(machine, 4) << "placed on the full home shard";
  }
  EXPECT_EQ(engine.stolen_placements(), 6);
}

// Requests fail only when no shard fits them.
TEST(ShardedSchedulerTest, FailsOnlyWhenNoShardFits) {
  ShardedScheduler engine(Options(3, nullptr), Rng(4));
  engine.Reset(6);
  engine.PublishAll(std::vector<double>(6, 0.4));
  EXPECT_EQ(engine.Place(0.5, nullptr, 1), -1);  // nothing fits anywhere
  EXPECT_GE(engine.Place(0.4, nullptr, 1), 0);   // exactly fits somewhere
}

TEST(ShardedSchedulerTest, SingleShardDegeneratesToOneCore) {
  ShardedScheduler engine(Options(1, nullptr), Rng(5));
  engine.Reset(8);
  engine.PublishAll(std::vector<double>(8, 1.0));
  std::vector<int> job_machines;
  std::set<int> chosen;
  for (int i = 0; i < 8; ++i) {
    const int machine = engine.Place(0.5, &job_machines, 7);
    ASSERT_GE(machine, 0);
    chosen.insert(machine);
  }
  // Anti-affinity spreads the 8 siblings over all 8 machines.
  EXPECT_EQ(chosen.size(), 8u);
  EXPECT_EQ(engine.stolen_placements(), 0);
}

// More shards than machines: the surplus shards are empty and must be
// skipped by routing, stealing, and publishing.
TEST(ShardedSchedulerTest, MoreShardsThanMachines) {
  ShardedScheduler engine(Options(8, nullptr), Rng(6));
  engine.Reset(3);
  const std::vector<double> capacity(3, 1.0);
  engine.PublishAll(capacity);
  std::vector<int> job_machines;
  std::set<int> chosen;
  for (uint64_t key = 0; key < 9; ++key) {
    const int machine = engine.Place(0.3, &job_machines, key);
    ASSERT_GE(machine, 0);
    ASSERT_LT(machine, 3);
    chosen.insert(machine);
  }
  EXPECT_EQ(chosen.size(), 3u);
  EXPECT_EQ(engine.Place(0.3, nullptr, 0), -1);  // every machine now holds 0.9
}

TEST(ShardedSchedulerTest, ZeroMachinesPlacesNothing) {
  ShardedScheduler engine(Options(4, nullptr), Rng(7));
  engine.Reset(0);
  EXPECT_EQ(engine.Place(0.1, nullptr, 0), -1);
}

// The rebalance interval tunes steal routing freshness, never placeability:
// with capacity for everything, every request places at any interval.
TEST(ShardedSchedulerTest, RebalanceIntervalNeverAffectsPlaceability) {
  for (const int interval : {1, 2, 1000}) {
    SCOPED_TRACE(::testing::Message() << "interval=" << interval);
    ShardedSchedulerOptions options = Options(4, nullptr);
    options.rebalance_interval = interval;
    const RunOutcome outcome = RunStream(options, 8, 64, 12, 4, 6);
    for (const int machine : outcome.results) {
      EXPECT_GE(machine, 0);
    }
  }
}

TEST(ShardedSchedulerTest, WithinBatchSiblingsSeeEarlierPlacements) {
  ShardedScheduler engine(Options(2, nullptr), Rng(8));
  engine.Reset(32);  // 16 machines per shard
  engine.PublishAll(std::vector<double>(32, 1.0));
  RequestStream stream(1, 8);  // one 8-wide job, all on one home shard
  std::vector<int> results(stream.requests.size(), -1);
  engine.PlaceBatch(stream.requests, results);
  std::set<int> chosen(results.begin(), results.end());
  ASSERT_EQ(chosen.count(-1), 0u);
  EXPECT_EQ(chosen.size(), results.size());
}

TEST(ShardedSchedulerTest, FreeCapacityAccountsForDebits) {
  ShardedScheduler engine(Options(2, nullptr), Rng(10));
  engine.Reset(4);
  const std::vector<double> capacity(4, 1.0);
  engine.PublishAll(capacity);
  const int machine = engine.Place(0.25, nullptr, 3);
  ASSERT_GE(machine, 0);
  EXPECT_DOUBLE_EQ(engine.free_capacity(machine), 0.75);
  EXPECT_DOUBLE_EQ(engine.TotalFreeCapacity(), 3.75);
  // Publish overwrites the debit with the next advertised view.
  engine.Publish(machine, 1.0);
  EXPECT_DOUBLE_EQ(engine.TotalFreeCapacity(), 4.0);
}

// End-to-end: the cluster simulation in sharded mode is bit-identical at
// any pool size for a fixed (seed, placement_shards) — the tentpole
// determinism contract, checked at the consumer.
TEST(ShardedSchedulerClusterTest, ClusterSimShardedPoolSizeInvariance) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 19;  // prime, so shard splits are uneven
  ClusterSimOptions options;
  options.num_intervals = 60;
  options.warmup = 12;
  options.placement_shards = 3;
  options.parallel = false;
  const ClusterSimResult reference = RunClusterSim(profile, options, Rng(77));
  EXPECT_GT(reference.tasks_placed, 0);

  for (const int threads : {2, 5}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    ThreadPool pool(threads);
    options.pool = &pool;
    options.parallel = true;
    const ClusterSimResult got = RunClusterSim(profile, options, Rng(77));
    EXPECT_EQ(got.tasks_placed, reference.tasks_placed);
    EXPECT_EQ(got.tasks_timed_out, reference.tasks_timed_out);
    EXPECT_EQ(got.pending_task_intervals, reference.pending_task_intervals);
    EXPECT_EQ(got.placement_attempts, reference.placement_attempts);
    EXPECT_EQ(got.predictions, reference.predictions);
    EXPECT_EQ(got.latencies, reference.latencies);
    ASSERT_EQ(got.trace.arena_bytes().size(), reference.trace.arena_bytes().size());
    EXPECT_EQ(std::memcmp(got.trace.arena_bytes().data(),
                          reference.trace.arena_bytes().data(),
                          reference.trace.arena_bytes().size()),
              0);
  }
}

// The sharded cluster sim is a different cell identity than the global
// engine (like a different seed), but it must stay statistically close:
// placed counts within a few percent on the same profile.
TEST(ShardedSchedulerClusterTest, ClusterSimShardedQualityNearGlobal) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 24;
  ClusterSimOptions options;
  options.num_intervals = 96;
  options.warmup = 24;
  options.parallel = false;
  const ClusterSimResult global = RunClusterSim(profile, options, Rng(31));
  options.placement_shards = 4;
  const ClusterSimResult sharded = RunClusterSim(profile, options, Rng(31));
  ASSERT_GT(global.tasks_placed, 0);
  EXPECT_GE(sharded.tasks_placed, (global.tasks_placed * 95) / 100);
  EXPECT_LE(sharded.tasks_placed, (global.tasks_placed * 105) / 100);
}

}  // namespace
}  // namespace crf
