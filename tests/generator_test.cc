#include "crf/trace/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>

#include "crf/stats/running_stats.h"
#include "crf/trace/trace_stats.h"

namespace crf {
namespace {

CellProfile SmallProfile() {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 24;
  return profile;
}

GeneratorOptions ShortOptions() {
  GeneratorOptions options;
  options.num_intervals = 2 * kIntervalsPerDay;
  return options;
}

class GeneratorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cell_ = new CellTrace(GenerateCellTrace(SmallProfile(), ShortOptions(), Rng(99)));
  }
  static void TearDownTestSuite() {
    delete cell_;
    cell_ = nullptr;
  }
  static CellTrace* cell_;
};

CellTrace* GeneratorFixture::cell_ = nullptr;

TEST_F(GeneratorFixture, BasicShape) {
  EXPECT_EQ(cell_->name, "cell_a");
  EXPECT_EQ(cell_->num_intervals, ShortOptions().num_intervals);
  EXPECT_EQ(cell_->num_machines(), 24);
  EXPECT_GT(cell_->num_tasks(), 200);
}

TEST_F(GeneratorFixture, TasksLieWithinTrace) {
  for (int32_t i = 0; i < cell_->num_tasks(); ++i) {
    const TaskView task = cell_->task(i);
    EXPECT_GE(task.start(), 0);
    EXPECT_LE(task.end(), cell_->num_intervals);
    EXPECT_GE(task.runtime(), 1);
    EXPECT_GT(task.limit(), 0.0);
  }
}

TEST_F(GeneratorFixture, UsageRespectsLimits) {
  for (int32_t i = 0; i < cell_->num_tasks(); ++i) {
    const TaskView task = cell_->task(i);
    for (const float u : task.usage()) {
      ASSERT_GE(u, 0.0f);
      ASSERT_LE(u, static_cast<float>(task.limit()) * 1.0001f);
    }
  }
}

TEST_F(GeneratorFixture, MachineIndicesConsistent) {
  std::set<int32_t> seen;
  for (int m = 0; m < cell_->num_machines(); ++m) {
    for (const int32_t index : cell_->machine_tasks(m)) {
      ASSERT_GE(index, 0);
      ASSERT_LT(index, cell_->num_tasks());
      EXPECT_EQ(cell_->task(index).machine_index(), m);
      EXPECT_TRUE(seen.insert(index).second) << "task on two machines";
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(cell_->num_tasks()));
}

TEST_F(GeneratorFixture, PlacementRespectsAllocCap) {
  const CellProfile profile = SmallProfile();
  for (int m = 0; m < cell_->num_machines(); ++m) {
    const std::vector<double> limits = cell_->MachineLimitSeries(m);
    for (const double l : limits) {
      EXPECT_LE(l, profile.target_alloc_ratio * profile.machine_capacity + 1e-9);
    }
  }
}

TEST_F(GeneratorFixture, PopulationNearTarget) {
  const CellProfile profile = SmallProfile();
  const double target = profile.tasks_per_machine * profile.num_machines;
  // Average resident population across the second day should be within 25%
  // of the controller target.
  double total = 0.0;
  int count = 0;
  for (Interval t = kIntervalsPerDay; t < cell_->num_intervals; t += 8) {
    int64_t resident = 0;
    for (int32_t i = 0; i < cell_->num_tasks(); ++i) {
      resident += cell_->task(i).ResidentAt(t) ? 1 : 0;
    }
    total += static_cast<double>(resident);
    ++count;
  }
  const double average = total / count;
  EXPECT_GT(average, 0.75 * target);
  EXPECT_LT(average, 1.25 * target);
}

TEST_F(GeneratorFixture, TruePeakCoversUsageApproximately) {
  // The within-interval peak is a max over correlated sub-samples of what
  // the p90 scalars aggregate, so it should be at least ~80% of the scalar
  // sum and usually above it.
  for (int m = 0; m < 4; ++m) {
    const std::vector<double> usage = cell_->MachineUsageSeries(m);
    const std::span<const float> true_peak = cell_->true_peak(m);
    ASSERT_EQ(true_peak.size(), usage.size());
    for (size_t t = 0; t < usage.size(); t += 16) {
      if (usage[t] > 0.05) {
        EXPECT_GT(true_peak[t], 0.8 * usage[t]);
      }
    }
  }
}

TEST_F(GeneratorFixture, MixOfSchedulingClasses) {
  int serving = 0;
  for (int32_t i = 0; i < cell_->num_tasks(); ++i) {
    serving += IsServing(cell_->task(i).sched_class()) ? 1 : 0;
  }
  const double fraction = static_cast<double>(serving) / cell_->num_tasks();
  EXPECT_GT(fraction, 0.6);
  EXPECT_LT(fraction, 0.95);
}

TEST(GeneratorTest, DeterministicAcrossRuns) {
  const CellTrace a = GenerateCellTrace(SmallProfile(), ShortOptions(), Rng(5));
  const CellTrace b = GenerateCellTrace(SmallProfile(), ShortOptions(), Rng(5));
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (int32_t i = 0; i < a.num_tasks(); ++i) {
    const TaskView ta = a.task(i);
    const TaskView tb = b.task(i);
    EXPECT_EQ(ta.task_id(), tb.task_id());
    EXPECT_EQ(ta.machine_index(), tb.machine_index());
    EXPECT_EQ(ta.start(), tb.start());
    ASSERT_EQ(ta.usage().size(), tb.usage().size());
    for (size_t k = 0; k < tb.usage().size(); ++k) {
      ASSERT_EQ(ta.usage()[k], tb.usage()[k]);
    }
  }
  // Determinism extends to the packed arena itself: same seed, same bytes.
  ASSERT_EQ(a.arena_bytes().size(), b.arena_bytes().size());
  EXPECT_EQ(std::memcmp(a.arena_bytes().data(), b.arena_bytes().data(),
                        b.arena_bytes().size()),
            0);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const CellTrace a = GenerateCellTrace(SmallProfile(), ShortOptions(), Rng(5));
  const CellTrace b = GenerateCellTrace(SmallProfile(), ShortOptions(), Rng(6));
  // Task counts will almost surely differ; if not, usage will.
  bool different = a.num_tasks() != b.num_tasks();
  if (!different) {
    different = a.usage_sample_count() != b.usage_sample_count() ||
                std::memcmp(a.usage_arena().data(), b.usage_arena().data(),
                            b.usage_arena().size() * sizeof(float)) != 0;
  }
  EXPECT_TRUE(different);
}

TEST(GeneratorTest, RichStatsPopulatedOnDemand) {
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerDay;
  options.rich_stats = true;
  CellProfile profile = SmallProfile();
  profile.num_machines = 8;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(7));
  ASSERT_TRUE(cell.has_rich());
  for (int32_t i = 0; i < cell.num_tasks(); ++i) {
    const TaskView task = cell.task(i);
    const std::span<const float> usage = task.usage();
    const std::span<const float> p90 = task.rich_column(RichColumn::kP90);
    const std::span<const float> p50 = task.rich_column(RichColumn::kP50);
    const std::span<const float> max = task.rich_column(RichColumn::kMax);
    ASSERT_EQ(p90.size(), usage.size());
    for (size_t k = 0; k < usage.size(); ++k) {
      EXPECT_FLOAT_EQ(p90[k], usage[k]);
      EXPECT_LE(p50[k], max[k]);
    }
  }
}

TEST(GeneratorTest, NoRichStatsByDefault) {
  CellProfile profile = SmallProfile();
  profile.num_machines = 4;
  GeneratorOptions options;
  options.num_intervals = 48;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(8));
  EXPECT_FALSE(cell.has_rich());
}

// The thread pool is a pure throughput knob for the default (unsharded)
// generator: per-machine usage generation shards across it, but the bytes
// must not move.
TEST(GeneratorShardedTest, PoolAloneDoesNotChangeUnshardedBytes) {
  const CellTrace reference = GenerateCellTrace(SmallProfile(), ShortOptions(), Rng(21));
  ThreadPool pool(4);
  GeneratorOptions options = ShortOptions();
  options.pool = &pool;
  const CellTrace got = GenerateCellTrace(SmallProfile(), options, Rng(21));
  ASSERT_EQ(got.arena_bytes().size(), reference.arena_bytes().size());
  EXPECT_EQ(std::memcmp(got.arena_bytes().data(), reference.arena_bytes().data(),
                        reference.arena_bytes().size()),
            0);
}

// Sharded placement determinism: fixed (seed, placement_shards) means
// byte-identical cells at any pool size, including no pool at all.
TEST(GeneratorShardedTest, ShardedPlacementDeterministicAcrossPools) {
  GeneratorOptions options = ShortOptions();
  options.placement_shards = 4;
  options.placement_probes = 4;
  const CellTrace reference = GenerateCellTrace(SmallProfile(), options, Rng(21));
  EXPECT_GT(reference.num_tasks(), 200);
  for (const int threads : {2, 8}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    ThreadPool pool(threads);
    options.pool = &pool;
    const CellTrace got = GenerateCellTrace(SmallProfile(), options, Rng(21));
    ASSERT_EQ(got.arena_bytes().size(), reference.arena_bytes().size());
    EXPECT_EQ(std::memcmp(got.arena_bytes().data(), reference.arena_bytes().data(),
                          reference.arena_bytes().size()),
              0);
  }
}

// The shard count is part of the cell identity, like the seed: different
// shard counts give different (both valid) cells.
TEST(GeneratorShardedTest, ShardCountIsPartOfCellIdentity) {
  GeneratorOptions options = ShortOptions();
  options.placement_shards = 2;
  const CellTrace two = GenerateCellTrace(SmallProfile(), options, Rng(21));
  options.placement_shards = 4;
  const CellTrace four = GenerateCellTrace(SmallProfile(), options, Rng(21));
  const bool identical =
      two.arena_bytes().size() == four.arena_bytes().size() &&
      std::memcmp(two.arena_bytes().data(), four.arena_bytes().data(),
                  four.arena_bytes().size()) == 0;
  EXPECT_FALSE(identical);
}

// Packing quality of the sharded placer stays close to the global worst-fit
// reference: similar placed counts and stranded-capacity fractions. Uses a
// 48-machine cell so each of the 4 shards holds enough machines for the
// comparison to be meaningful (at ~6 machines per shard the end-of-run
// headroom is dominated by granularity noise).
TEST(GeneratorShardedTest, MeasurePlacementPhaseQualityNearGlobal) {
  CellProfile profile = SmallProfile();
  profile.num_machines = 48;
  GeneratorOptions options = ShortOptions();
  const PlacementPhaseStats global = MeasurePlacementPhase(profile, options, Rng(33));
  options.placement_shards = 4;
  const PlacementPhaseStats sharded = MeasurePlacementPhase(profile, options, Rng(33));

  ASSERT_GT(global.tasks_placed, 0);
  ASSERT_GT(sharded.tasks_placed, 0);
  EXPECT_EQ(global.placement_attempts, global.tasks_placed + global.dropped_tasks);
  EXPECT_EQ(sharded.placement_attempts, sharded.tasks_placed + sharded.dropped_tasks);
  EXPECT_GE(global.stranded_fraction, 0.0);
  EXPECT_LE(global.stranded_fraction, 1.0);
  EXPECT_GE(sharded.stranded_fraction, 0.0);
  EXPECT_LE(sharded.stranded_fraction, 1.0);
  // Within 10% of the global engine on both placed volume and stranding.
  EXPECT_GE(sharded.tasks_placed, (global.tasks_placed * 90) / 100);
  EXPECT_LE(sharded.tasks_placed, (global.tasks_placed * 110) / 100);
  EXPECT_LE(sharded.stranded_fraction, global.stranded_fraction + 0.10);
}

TEST(GeneratorTest, UsageToLimitTailNearCalibration) {
  // Fig 7(c): p95 of usage/limit should land in the ~0.85-1.0 band that
  // justifies borg-default's phi = 0.9.
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 32;
  GeneratorOptions options;
  options.num_intervals = 3 * kIntervalsPerDay;
  CellTrace cell = GenerateCellTrace(profile, options, Rng(11));
  const Ecdf cdf = UsageToLimitCdf(cell, 4);
  EXPECT_GT(cdf.Quantile(0.95), 0.80);
  EXPECT_GT(cdf.Quantile(0.5), 0.25);
  EXPECT_LT(cdf.Quantile(0.5), 0.70);
}

}  // namespace
}  // namespace crf
