#include "crf/util/byte_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace crf {
namespace {

TEST(ByteIoTest, ScalarRoundTrip) {
  ByteWriter writer;
  writer.Write<uint8_t>(0xAB);
  writer.Write<int32_t>(-7);
  writer.Write<uint64_t>(uint64_t{1} << 63);
  writer.Write<double>(3.25);
  EXPECT_EQ(writer.size(), 1 + 4 + 8 + 8u);

  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.Read<uint8_t>(), 0xAB);
  EXPECT_EQ(reader.Read<int32_t>(), -7);
  EXPECT_EQ(reader.Read<uint64_t>(), uint64_t{1} << 63);
  EXPECT_EQ(reader.Read<double>(), 3.25);
  EXPECT_TRUE(reader.ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(ByteIoTest, VectorRoundTrip) {
  const std::vector<double> values = {1.5, -2.0, 0.0, 1e300};
  ByteWriter writer;
  writer.WriteVec(values);

  ByteReader reader(writer.bytes());
  std::vector<double> decoded;
  ASSERT_TRUE(reader.ReadVec(decoded, 100));
  EXPECT_EQ(decoded, values);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteIoTest, EmptyVectorRoundTrip) {
  ByteWriter writer;
  writer.WriteVec(std::vector<int32_t>{});
  ByteReader reader(writer.bytes());
  std::vector<int32_t> decoded = {1, 2, 3};
  ASSERT_TRUE(reader.ReadVec(decoded, 10));
  EXPECT_TRUE(decoded.empty());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteIoTest, UnderflowLatchesFailureAndReturnsZero) {
  ByteWriter writer;
  writer.Write<uint16_t>(0xFFFF);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.Read<uint64_t>(), 0u);  // Needs 8 bytes, only 2 present.
  EXPECT_FALSE(reader.ok());
  // The failure latches: even reads that would fit now return zeros.
  EXPECT_EQ(reader.Read<uint8_t>(), 0);
  EXPECT_FALSE(reader.ok());
}

TEST(ByteIoTest, OversizedVectorCountRejectedBeforeAllocation) {
  ByteWriter writer;
  writer.Write<uint64_t>(uint64_t{1} << 60);  // Absurd element count.
  ByteReader reader(writer.bytes());
  std::vector<double> decoded;
  EXPECT_FALSE(reader.ReadVec(decoded, uint64_t{1} << 59));
  EXPECT_FALSE(reader.ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(ByteIoTest, VectorCountAboveCapRejected) {
  ByteWriter writer;
  writer.WriteVec(std::vector<int32_t>{1, 2, 3, 4});
  ByteReader reader(writer.bytes());
  std::vector<int32_t> decoded;
  EXPECT_FALSE(reader.ReadVec(decoded, 3));
  EXPECT_FALSE(reader.ok());
}

TEST(ByteIoTest, TruncatedVectorPayloadRejected) {
  ByteWriter writer;
  writer.WriteVec(std::vector<int64_t>{1, 2, 3});
  std::vector<uint8_t> bytes = writer.bytes();
  bytes.resize(bytes.size() - 1);
  ByteReader reader(bytes);
  std::vector<int64_t> decoded;
  EXPECT_FALSE(reader.ReadVec(decoded, 10));
  EXPECT_FALSE(reader.ok());
}

TEST(ByteIoTest, ExplicitFailPoisonsFurtherReads) {
  ByteWriter writer;
  writer.Write<int32_t>(41);
  ByteReader reader(writer.bytes());
  reader.Fail();
  EXPECT_EQ(reader.Read<int32_t>(), 0);
  EXPECT_FALSE(reader.ok());
}

TEST(ByteIoTest, ReadBytesRoundTripAndUnderflow) {
  ByteWriter writer;
  const char payload[] = "abcdef";
  writer.WriteBytes(payload, 6);
  ByteReader reader(writer.bytes());
  char out[6] = {};
  ASSERT_TRUE(reader.ReadBytes(out, 6));
  EXPECT_EQ(std::string(out, 6), "abcdef");
  EXPECT_FALSE(reader.ReadBytes(out, 1));
  EXPECT_FALSE(reader.ok());
}

TEST(ByteIoTest, Fnv1a64KnownVectors) {
  // Offset basis for the empty input, and the classic "a" test vector.
  EXPECT_EQ(Fnv1a64({}), 0xcbf29ce484222325u);
  const uint8_t a = 'a';
  EXPECT_EQ(Fnv1a64(std::span<const uint8_t>(&a, 1)), 0xaf63dc4c8601ec8cu);
}

TEST(ByteIoTest, Fnv1a64DetectsSingleBitFlips) {
  ByteWriter writer;
  for (int i = 0; i < 64; ++i) {
    writer.Write<double>(i * 0.125);
  }
  std::vector<uint8_t> bytes = writer.bytes();
  const uint64_t clean = Fnv1a64(bytes);
  for (size_t i = 0; i < bytes.size(); i += 37) {
    bytes[i] ^= 0x10;
    EXPECT_NE(Fnv1a64(bytes), clean) << "flip at " << i;
    bytes[i] ^= 0x10;
  }
  EXPECT_EQ(Fnv1a64(bytes), clean);
}

}  // namespace
}  // namespace crf
