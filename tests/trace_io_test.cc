#include "crf/trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "crf/trace/generator.h"

namespace crf {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("crf_trace_io_" + name)).string();
}

CellTrace SmallCell(uint64_t seed) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 6;
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerDay;
  return GenerateCellTrace(profile, options, Rng(seed));
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  const CellTrace original = SmallCell(3);
  const std::string path = TempPath("roundtrip.trace");
  SaveCellTrace(original, path);
  const auto loaded = LoadCellTrace(path);
  ASSERT_TRUE(loaded.has_value());

  EXPECT_EQ(loaded->name, original.name);
  EXPECT_EQ(loaded->num_intervals, original.num_intervals);
  EXPECT_EQ(loaded->dropped_tasks, original.dropped_tasks);
  ASSERT_EQ(loaded->machines.size(), original.machines.size());
  for (size_t m = 0; m < original.machines.size(); ++m) {
    EXPECT_DOUBLE_EQ(loaded->machines[m].capacity, original.machines[m].capacity);
    ASSERT_EQ(loaded->machines[m].true_peak.size(), original.machines[m].true_peak.size());
    for (size_t t = 0; t < original.machines[m].true_peak.size(); ++t) {
      EXPECT_NEAR(loaded->machines[m].true_peak[t], original.machines[m].true_peak[t], 1e-4);
    }
    EXPECT_EQ(loaded->machines[m].task_indices, original.machines[m].task_indices);
  }
  ASSERT_EQ(loaded->tasks.size(), original.tasks.size());
  for (size_t i = 0; i < original.tasks.size(); ++i) {
    const TaskTrace& a = loaded->tasks[i];
    const TaskTrace& b = original.tasks[i];
    EXPECT_EQ(a.task_id, b.task_id);
    EXPECT_EQ(a.job_id, b.job_id);
    EXPECT_EQ(a.machine_index, b.machine_index);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.sched_class, b.sched_class);
    EXPECT_NEAR(a.limit, b.limit, 1e-9 * (1.0 + b.limit));
    ASSERT_EQ(a.usage.size(), b.usage.size());
    for (size_t k = 0; k < a.usage.size(); ++k) {
      EXPECT_NEAR(a.usage[k], b.usage[k], 1e-4);
    }
  }
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadCellTrace("/nonexistent/path/file.trace").has_value());
}

TEST(TraceIoTest, WrongMagicReturnsNullopt) {
  const std::string path = TempPath("bad_magic.trace");
  {
    std::ofstream out(path);
    out << "not a trace\n";
  }
  EXPECT_FALSE(LoadCellTrace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIoTest, TruncatedRecordReturnsNullopt) {
  const std::string path = TempPath("truncated.trace");
  {
    std::ofstream out(path);
    out << "# crf-trace v1\n";
    out << "cell,x,10,1,0\n";
    out << "task,1,1\n";  // Too few fields.
  }
  EXPECT_FALSE(LoadCellTrace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIoTest, OutOfRangeMachineReturnsNullopt) {
  const std::string path = TempPath("bad_machine.trace");
  {
    std::ofstream out(path);
    out << "# crf-trace v1\n";
    out << "cell,x,10,1,0\n";
    out << "task,1,1,5,0,0.5,2,0.1\n";  // machine 5 of 1.
  }
  EXPECT_FALSE(LoadCellTrace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingHeaderReturnsNullopt) {
  const std::string path = TempPath("no_header.trace");
  {
    std::ofstream out(path);
    out << "# crf-trace v1\n";
    out << "task,1,1,0,0,0.5,2,0.1\n";  // Task before the cell record.
  }
  EXPECT_FALSE(LoadCellTrace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIoTest, EmptyUsageSeriesAllowed) {
  const std::string path = TempPath("empty_usage.trace");
  {
    std::ofstream out(path);
    out << "# crf-trace v1\n";
    out << "cell,x,10,1,0\n";
    out << "machine,0,1,\n";
    out << "task,1,1,0,0,0.5,2,\n";
  }
  const auto loaded = LoadCellTrace(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->tasks.size(), 1u);
  EXPECT_TRUE(loaded->tasks[0].usage.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace crf
