#include "crf/trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "crf/trace/generator.h"
#include "crf/trace/trace_builder.h"

namespace crf {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("crf_trace_io_" + name)).string();
}

CellTrace SmallCell(uint64_t seed, bool rich = false) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 6;
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerDay;
  options.rich_stats = rich;
  return GenerateCellTrace(profile, options, Rng(seed));
}

// Full structural equality through the public view API; tolerance covers the
// text format's decimal round-trip (the binary format must be exact).
void ExpectTracesEqual(const CellTrace& a, const CellTrace& b, double tolerance) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.num_intervals, b.num_intervals);
  EXPECT_EQ(a.dropped_tasks, b.dropped_tasks);
  EXPECT_EQ(a.has_rich(), b.has_rich());
  ASSERT_EQ(a.num_machines(), b.num_machines());
  for (int m = 0; m < b.num_machines(); ++m) {
    EXPECT_DOUBLE_EQ(a.machine_capacity(m), b.machine_capacity(m));
    const std::span<const float> peak_a = a.true_peak(m);
    const std::span<const float> peak_b = b.true_peak(m);
    ASSERT_EQ(peak_a.size(), peak_b.size());
    for (size_t t = 0; t < peak_b.size(); ++t) {
      EXPECT_NEAR(peak_a[t], peak_b[t], tolerance);
    }
    const std::span<const int32_t> tasks_a = a.machine_tasks(m);
    const std::span<const int32_t> tasks_b = b.machine_tasks(m);
    ASSERT_EQ(tasks_a.size(), tasks_b.size());
    for (size_t k = 0; k < tasks_b.size(); ++k) {
      EXPECT_EQ(tasks_a[k], tasks_b[k]);
    }
  }
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (int32_t i = 0; i < b.num_tasks(); ++i) {
    const TaskView ta = a.task(i);
    const TaskView tb = b.task(i);
    EXPECT_EQ(ta.task_id(), tb.task_id());
    EXPECT_EQ(ta.job_id(), tb.job_id());
    EXPECT_EQ(ta.machine_index(), tb.machine_index());
    EXPECT_EQ(ta.start(), tb.start());
    EXPECT_EQ(ta.sched_class(), tb.sched_class());
    EXPECT_NEAR(ta.limit(), tb.limit(), tolerance * (1.0 + tb.limit()));
    const std::span<const float> usage_a = ta.usage();
    const std::span<const float> usage_b = tb.usage();
    ASSERT_EQ(usage_a.size(), usage_b.size());
    for (size_t k = 0; k < usage_b.size(); ++k) {
      EXPECT_NEAR(usage_a[k], usage_b[k], tolerance);
    }
    if (b.has_rich()) {
      for (int c = 0; c < kNumRichColumns; ++c) {
        const std::span<const float> col_a = ta.rich_column(static_cast<RichColumn>(c));
        const std::span<const float> col_b = tb.rich_column(static_cast<RichColumn>(c));
        ASSERT_EQ(col_a.size(), col_b.size());
        for (size_t k = 0; k < col_b.size(); ++k) {
          EXPECT_NEAR(col_a[k], col_b[k], tolerance);
        }
      }
    }
  }
}

TEST(TraceIoTest, TextRoundTripPreservesEverything) {
  const CellTrace original = SmallCell(3);
  const std::string path = TempPath("roundtrip.trace");
  SaveCellTrace(original, path);
  const auto loaded = LoadCellTrace(path);
  ASSERT_TRUE(loaded.has_value());
  ExpectTracesEqual(*loaded, original, 1e-4);
  std::remove(path.c_str());
}

TEST(TraceIoTest, BinaryRoundTripIsExact) {
  const CellTrace original = SmallCell(3);
  const std::string path = TempPath("roundtrip.crftrace");
  SaveCellTraceBinary(original, path);
  const auto loaded = LoadCellTrace(path);
  ASSERT_TRUE(loaded.has_value());
  ExpectTracesEqual(*loaded, original, 0.0);

  // The loaded arena is byte-identical to the sealed original: the on-disk
  // payload IS the in-memory layout.
  const std::span<const std::byte> bytes_a = loaded->arena_bytes();
  const std::span<const std::byte> bytes_b = original.arena_bytes();
  ASSERT_EQ(bytes_a.size(), bytes_b.size());
  EXPECT_EQ(std::memcmp(bytes_a.data(), bytes_b.data(), bytes_b.size()), 0);
  std::remove(path.c_str());
}

TEST(TraceIoTest, BinaryRoundTripPreservesRichLadderAndDroppedTasks) {
  CellTrace original = SmallCell(5, /*rich=*/true);
  ASSERT_TRUE(original.has_rich());
  const std::string path = TempPath("rich.crftrace");
  SaveCellTraceBinary(original, path);
  const auto loaded = LoadCellTrace(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->has_rich());
  EXPECT_EQ(loaded->dropped_tasks, original.dropped_tasks);
  ExpectTracesEqual(*loaded, original, 0.0);
  std::remove(path.c_str());
}

TEST(TraceIoTest, BinaryMatchesTextLoad) {
  const CellTrace original = SmallCell(7);
  const std::string text_path = TempPath("pair.trace");
  const std::string binary_path = TempPath("pair.crftrace");
  SaveCellTrace(original, text_path);
  SaveCellTraceBinary(original, binary_path);
  const auto from_text = LoadCellTrace(text_path);
  const auto from_binary = LoadCellTrace(binary_path);
  ASSERT_TRUE(from_text.has_value());
  ASSERT_TRUE(from_binary.has_value());
  // Both decoders hand back the same trace, up to text decimal precision.
  ExpectTracesEqual(*from_text, *from_binary, 1e-4);
  std::remove(text_path.c_str());
  std::remove(binary_path.c_str());
}

TEST(TraceIoTest, BinaryRoundTripOfEmptyTrace) {
  CellTraceBuilder builder("empty", /*num_intervals=*/12, /*num_machines=*/0);
  builder.set_dropped_tasks(4);
  const CellTrace original = builder.Seal();
  const std::string path = TempPath("empty.crftrace");
  SaveCellTraceBinary(original, path);
  const auto loaded = LoadCellTrace(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->name, "empty");
  EXPECT_EQ(loaded->num_intervals, 12);
  EXPECT_EQ(loaded->dropped_tasks, 4);
  EXPECT_EQ(loaded->num_tasks(), 0);
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadCellTrace("/nonexistent/path/file.trace").has_value());
}

TEST(TraceIoTest, WrongMagicReturnsNullopt) {
  const std::string path = TempPath("bad_magic.trace");
  {
    std::ofstream out(path);
    out << "not a trace\n";
  }
  EXPECT_FALSE(LoadCellTrace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIoTest, CorruptedBinaryHeaderReturnsNullopt) {
  const CellTrace original = SmallCell(3);
  const std::string path = TempPath("corrupt_header.crftrace");
  SaveCellTraceBinary(original, path);

  // Flip the version field (bytes 8..11, just after the 8-byte magic).
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(8);
    const uint32_t bad_version = 999;
    file.write(reinterpret_cast<const char*>(&bad_version), sizeof(bad_version));
  }
  EXPECT_FALSE(LoadCellTrace(path).has_value());

  // Restore, then corrupt a count field instead (num_tasks at offset 16).
  SaveCellTraceBinary(original, path);
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(16);
    const int64_t bad_tasks = -1;
    file.write(reinterpret_cast<const char*>(&bad_tasks), sizeof(bad_tasks));
  }
  EXPECT_FALSE(LoadCellTrace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIoTest, TruncatedBinarySlabReturnsNullopt) {
  const CellTrace original = SmallCell(3);
  const std::string path = TempPath("truncated.crftrace");
  SaveCellTraceBinary(original, path);
  const auto full_size = std::filesystem::file_size(path);
  ASSERT_GT(full_size, 256u);
  std::filesystem::resize_file(path, full_size - 128);
  EXPECT_FALSE(LoadCellTrace(path).has_value());

  // Even a single missing byte in the arena slab must be rejected.
  SaveCellTraceBinary(original, path);
  std::filesystem::resize_file(path, full_size - 1);
  EXPECT_FALSE(LoadCellTrace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIoTest, TrailingGarbageInBinaryReturnsNullopt) {
  const CellTrace original = SmallCell(3);
  const std::string path = TempPath("trailing.crftrace");
  SaveCellTraceBinary(original, path);
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "extra";
  }
  EXPECT_FALSE(LoadCellTrace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIoTest, CorruptedBinaryArenaIndexReturnsNullopt) {
  const CellTrace original = SmallCell(3);
  ASSERT_GT(original.num_tasks(), 0);
  const std::string path = TempPath("corrupt_arena.crftrace");
  SaveCellTraceBinary(original, path);
  // Scribble an out-of-range machine index into the arena payload's
  // machine_of column. The validator must reject it rather than trust the
  // payload.
  {
    const trace_internal::ArenaLayout layout = trace_internal::ComputeArenaLayout(
        original.num_tasks(), original.num_machines(), original.usage_sample_count(),
        original.peak_sample_count(), original.num_tasks(), original.has_rich());
    const uint64_t header_and_name =
        std::filesystem::file_size(path) - original.arena_bytes().size();
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(header_and_name + layout.machine_of));
    const int32_t bad_machine = 1 << 20;
    file.write(reinterpret_cast<const char*>(&bad_machine), sizeof(bad_machine));
  }
  EXPECT_FALSE(LoadCellTrace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIoTest, TruncatedTextRecordReturnsNullopt) {
  const std::string path = TempPath("truncated.trace");
  {
    std::ofstream out(path);
    out << "# crf-trace v1\n";
    out << "cell,x,10,1,0\n";
    out << "task,1,1\n";  // Too few fields.
  }
  EXPECT_FALSE(LoadCellTrace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIoTest, OutOfRangeMachineReturnsNullopt) {
  const std::string path = TempPath("bad_machine.trace");
  {
    std::ofstream out(path);
    out << "# crf-trace v1\n";
    out << "cell,x,10,1,0\n";
    out << "task,1,1,5,0,0.5,2,0.1\n";  // machine 5 of 1.
  }
  EXPECT_FALSE(LoadCellTrace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingHeaderReturnsNullopt) {
  const std::string path = TempPath("no_header.trace");
  {
    std::ofstream out(path);
    out << "# crf-trace v1\n";
    out << "task,1,1,0,0,0.5,2,0.1\n";  // Task before the cell record.
  }
  EXPECT_FALSE(LoadCellTrace(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceIoTest, EmptyUsageSeriesAllowed) {
  const std::string path = TempPath("empty_usage.trace");
  {
    std::ofstream out(path);
    out << "# crf-trace v1\n";
    out << "cell,x,10,1,0\n";
    out << "machine,0,1,\n";
    out << "task,1,1,0,0,0.5,2,\n";
  }
  const auto loaded = LoadCellTrace(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->num_tasks(), 1);
  EXPECT_TRUE(loaded->task(0).usage().empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace crf
