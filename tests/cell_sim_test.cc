#include "crf/cluster/cell_sim.h"

#include <gtest/gtest.h>

#include <set>

namespace crf {
namespace {

CellProfile SmallProfile() {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 12;
  return profile;
}

ClusterSimOptions ShortOptions(PredictorSpec spec = BorgDefaultSpec(0.9)) {
  ClusterSimOptions options;
  options.num_intervals = 2 * kIntervalsPerDay;
  options.warmup = kIntervalsPerDay / 2;
  options.predictor = std::move(spec);
  return options;
}

class CellSimFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new ClusterSimResult(RunClusterSim(SmallProfile(), ShortOptions(), Rng(44)));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static ClusterSimResult* result_;
};

ClusterSimResult* CellSimFixture::result_ = nullptr;

TEST_F(CellSimFixture, ShapesAreConsistent) {
  EXPECT_EQ(result_->cell_name, "cell_a");
  EXPECT_EQ(result_->predictor_name, "borg-default-0.90");
  EXPECT_EQ(result_->trace.num_machines(), 12);
  EXPECT_EQ(result_->predictions.num_machines(), 12);
  EXPECT_EQ(result_->latencies.num_machines(), 12);
  EXPECT_EQ(result_->predictions.num_intervals(), result_->trace.num_intervals);
  EXPECT_EQ(result_->limit_sum.num_intervals(), result_->trace.num_intervals);
  EXPECT_GT(result_->tasks_placed, 100);
  EXPECT_GE(result_->placement_attempts, result_->tasks_placed);
}

TEST_F(CellSimFixture, PlacedTasksHaveValidMachinesAndUsage) {
  EXPECT_EQ(static_cast<int64_t>(result_->trace.num_tasks()), result_->tasks_placed);
  for (int32_t i = 0; i < result_->trace.num_tasks(); ++i) {
    const TaskView task = result_->trace.task(i);
    ASSERT_GE(task.machine_index(), 0);
    ASSERT_LT(task.machine_index(), 12);
    EXPECT_GE(task.start(), 1);  // Tasks start the interval after placement.
    EXPECT_LE(task.end(), result_->trace.num_intervals);
    EXPECT_FALSE(task.usage().empty());
    for (const float u : task.usage()) {
      ASSERT_GE(u, 0.0f);
      ASSERT_LE(u, static_cast<float>(task.limit()) * 1.0001f);
    }
  }
}

TEST_F(CellSimFixture, TraceIndicesConsistent) {
  std::set<int32_t> seen;
  for (int m = 0; m < result_->trace.num_machines(); ++m) {
    for (const int32_t index : result_->trace.machine_tasks(m)) {
      EXPECT_EQ(result_->trace.task(index).machine_index(), m);
      EXPECT_TRUE(seen.insert(index).second);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(result_->trace.num_tasks()));
}

TEST_F(CellSimFixture, CellFillsUpDuringWarmup) {
  // Mean demand across machines should be much higher at the end than in the
  // first intervals (the cell starts empty).
  double early = 0.0;
  double late = 0.0;
  const Interval last = result_->trace.num_intervals - 1;
  for (int m = 0; m < result_->demand_mean.num_machines(); ++m) {
    early += result_->demand_mean.at(m, 2);
    late += result_->demand_mean.at(m, last);
  }
  EXPECT_GT(late, early * 2.0);
}

TEST(CellSimTest, LimitSumPredictorNeverOvercommits) {
  // With the no-overcommit predictor the scheduler's feasibility check is
  // prediction(=sum of limits) + new limit <= capacity, so the sum of
  // resident limits can never exceed capacity.
  ClusterSimResult result =
      RunClusterSim(SmallProfile(), ShortOptions(LimitSumSpec()), Rng(45));
  for (int m = 0; m < result.trace.num_machines(); ++m) {
    for (Interval t = 0; t < result.trace.num_intervals; ++t) {
      EXPECT_LE(result.limit_sum.at(m, t), result.trace.machine_capacity(m) + 1e-6);
    }
  }
}

TEST(CellSimTest, OvercommittingPredictorPacksDenser) {
  ClusterSimResult conservative =
      RunClusterSim(SmallProfile(), ShortOptions(LimitSumSpec()), Rng(46));
  ClusterSimResult overcommit =
      RunClusterSim(SmallProfile(), ShortOptions(BorgDefaultSpec(0.8)), Rng(46));
  const Interval last = conservative.trace.num_intervals - 1;
  double conservative_alloc = 0.0;
  double overcommit_alloc = 0.0;
  for (int m = 0; m < conservative.limit_sum.num_machines(); ++m) {
    conservative_alloc += conservative.limit_sum.at(m, last);
    overcommit_alloc += overcommit.limit_sum.at(m, last);
  }
  EXPECT_GT(overcommit_alloc, conservative_alloc * 1.05);
}

TEST(CellSimTest, DeterministicGivenSeed) {
  const ClusterSimResult a = RunClusterSim(SmallProfile(), ShortOptions(), Rng(47));
  const ClusterSimResult b = RunClusterSim(SmallProfile(), ShortOptions(), Rng(47));
  EXPECT_EQ(a.tasks_placed, b.tasks_placed);
  ASSERT_EQ(a.trace.num_tasks(), b.trace.num_tasks());
  for (int32_t i = 0; i < a.trace.num_tasks(); ++i) {
    const TaskView ta = a.trace.task(i);
    const TaskView tb = b.trace.task(i);
    ASSERT_EQ(ta.machine_index(), tb.machine_index());
    ASSERT_EQ(ta.usage().size(), tb.usage().size());
    for (size_t k = 0; k < tb.usage().size(); ++k) {
      ASSERT_EQ(ta.usage()[k], tb.usage()[k]);
    }
  }
  EXPECT_EQ(a.predictions, b.predictions);
}

TEST(CellSimTest, PendingTimeoutBoundsQueue) {
  // An absurdly overloaded cell must shed load through timeouts rather than
  // grow the queue without bound.
  CellProfile profile = SmallProfile();
  profile.num_machines = 4;
  profile.tasks_per_machine = 200.0;
  ClusterSimOptions options = ShortOptions();
  options.num_intervals = kIntervalsPerDay;
  options.pending_timeout = 6;
  const ClusterSimResult result = RunClusterSim(profile, options, Rng(48));
  EXPECT_GT(result.tasks_timed_out, 0);
}

}  // namespace
}  // namespace crf
