// The multi-spec sweep engine against its per-spec reference.
//
//  * IndexableWindow (the Fenwick-indexed chunked window under TaskHistory
//    and the sweep bank) is pinned property-style to a naive sorted-vector
//    window under random pushes, across capacities from 1 to well past the
//    chunk-split size.
//  * SweepPlan's node/group deduplication is checked structurally.
//  * SimulateCellMulti over a mixed grid — borg phis, RC-like percentiles,
//    N-sigma Ns, autopilot, nested max specs, varied warm-up/history
//    including min == max, and a duplicated spec — must match per-spec
//    SimulateCell machine by machine: exactly for the integer counters,
//    within 1e-9 relative for the floating-point aggregates. Both a dense
//    low-churn cell and a churn-heavy cell, on the serial and the
//    parallel-with-oracle-cache paths.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "crf/core/indexable_window.h"
#include "crf/core/predictor_factory.h"
#include "crf/core/sweep_bank.h"
#include "crf/sim/simulator.h"
#include "crf/trace/trace_builder.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

// ----- IndexableWindow vs a naive sorted-vector reference. -----

// The old TaskHistory implementation, kept as the behavioural reference:
// bounded deque in arrival order, full sort per percentile query.
class ReferenceWindow {
 public:
  explicit ReferenceWindow(int capacity) : capacity_(capacity) {}

  void Push(float sample) {
    if (static_cast<int>(samples_.size()) == capacity_) {
      samples_.pop_front();
    }
    samples_.push_back(sample);
  }

  int size() const { return static_cast<int>(samples_.size()); }

  double Percentile(double p) const {
    std::vector<float> sorted(samples_.begin(), samples_.end());
    std::sort(sorted.begin(), sorted.end());
    const int count = static_cast<int>(sorted.size());
    if (count == 1) {
      return sorted[0];
    }
    const double rank = p / 100.0 * static_cast<double>(count - 1);
    const int lo = static_cast<int>(rank);
    const int hi = std::min(lo + 1, count - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }

  double Mean() const {
    double sum = 0.0;
    for (const float v : samples_) {
      sum += v;
    }
    return sum / static_cast<double>(samples_.size());
  }

  float Latest() const { return samples_.back(); }

 private:
  int capacity_;
  std::deque<float> samples_;
};

TEST(IndexableWindowTest, MatchesSortedVectorReference) {
  const int capacities[] = {1, 2, 3, 7, 63, 64, 65, 200, 600};
  const double percentiles[] = {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0};
  for (const int capacity : capacities) {
    SCOPED_TRACE(::testing::Message() << "capacity=" << capacity);
    Rng rng(7000 + static_cast<uint64_t>(capacity));
    IndexableWindow window(capacity);
    ReferenceWindow reference(capacity);
    const int pushes = std::max(300, 4 * capacity);  // Well past one wrap.
    for (int i = 0; i < pushes; ++i) {
      // Quantize some samples so duplicates (possibly spanning chunk
      // boundaries) are common.
      const float sample = rng.UniformDouble() < 0.5
                               ? static_cast<float>(rng.UniformInt(16)) * 0.25f
                               : static_cast<float>(rng.UniformDouble());
      window.Push(sample);
      reference.Push(sample);

      ASSERT_EQ(window.size(), reference.size());
      EXPECT_EQ(window.Latest(), reference.Latest());
      // Same multiset, same interpolation arithmetic: exactly equal.
      for (const double p : percentiles) {
        ASSERT_DOUBLE_EQ(window.Percentile(p), reference.Percentile(p))
            << "push=" << i << " p=" << p;
      }
      const double random_p = rng.UniformDouble() * 100.0;
      ASSERT_DOUBLE_EQ(window.Percentile(random_p), reference.Percentile(random_p))
          << "push=" << i << " p=" << random_p;
      // The running sum accumulates in a different order than the reference.
      const double mean = reference.Mean();
      EXPECT_NEAR(window.Mean(), mean, 1e-9 * std::max(1.0, std::abs(mean)));
    }
  }
}

TEST(IndexableWindowTest, ClearKeepsCapacityAndResets) {
  IndexableWindow window(4);
  for (int i = 0; i < 6; ++i) {
    window.Push(static_cast<float>(i));
  }
  window.Clear();
  EXPECT_TRUE(window.empty());
  EXPECT_EQ(window.capacity(), 4);
  EXPECT_EQ(window.Mean(), 0.0);
  window.Push(2.5f);
  EXPECT_EQ(window.size(), 1);
  EXPECT_DOUBLE_EQ(window.Percentile(50.0), 2.5);
}

TEST(IndexableWindowDeathTest, RejectsNonFiniteSamples) {
  IndexableWindow window(4);
  EXPECT_DEATH(window.Push(std::nanf("")), "non-finite");
  EXPECT_DEATH(window.Push(std::numeric_limits<float>::infinity()), "non-finite");
}

// ----- The sweep grid shared by the plan and differential tests. -----

std::vector<PredictorSpec> MixedGrid() {
  return {
      LimitSumSpec(),
      BorgDefaultSpec(0.6),
      BorgDefaultSpec(0.9),
      RcLikeSpec(50.0, 3, 8),
      RcLikeSpec(90.0, 3, 8),
      RcLikeSpec(99.0, 3, 8),
      RcLikeSpec(95.0, 5, 5),  // min == max warm-up edge
      RcLikeSpec(99.0, 1, 12),
      NSigmaSpec(1.0, 3, 8),
      NSigmaSpec(3.0, 3, 8),
      NSigmaSpec(5.0, 3, 8),
      NSigmaSpec(2.0, 5, 5),  // min == max warm-up edge
      AutopilotSpec(98.0, 1.10, 3, 8),
      // Components structurally identical to standalone grid points above.
      MaxSpec({NSigmaSpec(5.0, 3, 8), RcLikeSpec(99.0, 3, 8)}),
      // Nested max.
      MaxSpec({BorgDefaultSpec(0.9), MaxSpec({NSigmaSpec(3.0, 3, 8)})}),
      RcLikeSpec(90.0, 3, 8),  // duplicate of an earlier spec
      // Chance-constrained points: two targets over the same (warm-up,
      // history) quantile window, plus a distinct window pair.
      ChanceSpec(0.01, 3, 8),
      ChanceSpec(0.10, 3, 8),
      ChanceSpec(0.05, 5, 5),  // min == max warm-up edge
      // Flex points: two (percentile, margin) pairs over one ratio window,
      // one over a distinct history length, and a max over new families.
      FlexSpec(95.0, 1.2, 3, 8),
      FlexSpec(50.0, 1.0, 3, 8),
      FlexSpec(90.0, 1.5, 1, 12),
      MaxSpec({ChanceSpec(0.01, 3, 8), FlexSpec(95.0, 1.2, 3, 8)}),
  };
}

TEST(SweepPlanTest, DeduplicatesNodesAndGroups) {
  const std::vector<PredictorSpec> specs = MixedGrid();
  const SweepPlan plan(specs);

  ASSERT_EQ(plan.num_specs(), static_cast<int>(specs.size()));
  // 23 specs -> 23 distinct nodes: the duplicate spec folds away, the outer
  // max specs add themselves plus one inner max node, the chance/flex max's
  // leaves alias the standalone grid points, and every other leaf is unique.
  EXPECT_EQ(plan.num_nodes(), 23);
  // History lengths {8, 5, 12} -> one per-task window group each.
  EXPECT_EQ(static_cast<int>(plan.window_groups().size()), 3);
  // (warm-up, history) pairs {(3,8), (5,5)} -> one aggregate group each.
  EXPECT_EQ(static_cast<int>(plan.agg_groups().size()), 2);
  // Chance (warm-up, history) pairs {(3,8), (5,5)} -> one quantile window
  // group each; both targets over (3,8) share one group.
  EXPECT_EQ(static_cast<int>(plan.quant_groups().size()), 2);
  // Flex history lengths {8, 12} -> one ratio window group each.
  EXPECT_EQ(static_cast<int>(plan.ratio_groups().size()), 2);

  // The duplicated spec evaluates through the same node.
  EXPECT_EQ(plan.spec_node(4), plan.spec_node(15));
  // Max components alias the standalone nodes.
  const SweepPlan::Node& sim_max = plan.nodes()[plan.spec_node(13)];
  ASSERT_EQ(sim_max.components.size(), 2u);
  EXPECT_EQ(sim_max.components[0], plan.spec_node(10));  // n-sigma(5, 3, 8)
  EXPECT_EQ(sim_max.components[1], plan.spec_node(5));   // rc-like(99, 3, 8)
  // The chance/flex max's leaves alias the standalone chance/flex nodes.
  const SweepPlan::Node& new_max = plan.nodes()[plan.spec_node(22)];
  ASSERT_EQ(new_max.components.size(), 2u);
  EXPECT_EQ(new_max.components[0], plan.spec_node(16));  // chance(0.01, 3, 8)
  EXPECT_EQ(new_max.components[1], plan.spec_node(19));  // flex(95, 1.2, 3, 8)
  // Both chance targets over (3, 8) read the same quantile window group.
  EXPECT_EQ(plan.nodes()[plan.spec_node(16)].quant_group,
            plan.nodes()[plan.spec_node(17)].quant_group);
  // Both flex points over history 8 read the same ratio window group.
  EXPECT_EQ(plan.nodes()[plan.spec_node(19)].ratio_group,
            plan.nodes()[plan.spec_node(20)].ratio_group);
}

// ----- SimulateCellMulti vs per-spec SimulateCell. -----

// Seeded random cell. Dense mode: long-lived tasks, little churn (deep
// windows, warmed steady state). Churn mode: short tasks arriving throughout
// (constant roster rebuilds, tasks that never warm up).
CellTrace MakeCell(uint64_t seed, bool churn) {
  Rng rng(seed);
  const Interval num_intervals = churn ? 60 : 80;
  const int num_machines = 4;
  CellTraceBuilder builder(churn ? "sweep_churn" : "sweep_dense", num_intervals,
                           num_machines);

  TaskId next_id = 1;
  for (int m = 0; m < num_machines; ++m) {
    if (m == num_machines - 1 && !churn) {
      continue;  // One entirely empty machine in the dense cell.
    }
    const int num_tasks = churn ? 24 : 10;
    for (int i = 0; i < num_tasks; ++i) {
      const TaskId id = next_id++;
      const double limit = 0.05 + rng.UniformDouble() * 0.95;
      Interval start;
      Interval len;
      if (churn) {
        start = static_cast<Interval>(rng.UniformInt(num_intervals));
        len = 1 + static_cast<Interval>(rng.UniformInt(6));  // 1..6, incl. single-interval
      } else {
        start = static_cast<Interval>(rng.UniformInt(8));
        // Most of the period; some run past the end of the trace.
        len = num_intervals - start - static_cast<Interval>(rng.UniformInt(10)) + 5;
      }
      const int32_t index =
          builder.AddTask(id, id, m, start, limit, SchedulingClass::kLatencySensitive);
      builder.ReserveUsage(index, static_cast<size_t>(len));
      for (Interval k = 0; k < len; ++k) {
        builder.AppendUsage(index, static_cast<float>(limit * rng.UniformDouble()));
      }
    }
  }
  return builder.Seal();
}

void ExpectNearRel(double actual, double expected, const char* what) {
  const double tol = 1e-9 * std::max({1.0, std::abs(actual), std::abs(expected)});
  EXPECT_NEAR(actual, expected, tol) << what;
}

void ExpectResultMatchesReference(const SimResult& multi, const SimResult& reference) {
  EXPECT_EQ(multi.cell_name, reference.cell_name);
  EXPECT_EQ(multi.predictor_name, reference.predictor_name);
  ASSERT_EQ(multi.machines.size(), reference.machines.size());
  for (size_t m = 0; m < multi.machines.size(); ++m) {
    SCOPED_TRACE(::testing::Message() << "machine=" << m);
    const MachineMetrics& a = multi.machines[m];
    const MachineMetrics& b = reference.machines[m];
    EXPECT_EQ(a.machine_index, b.machine_index);
    EXPECT_EQ(a.intervals, b.intervals);
    EXPECT_EQ(a.occupied_intervals, b.occupied_intervals);
    EXPECT_EQ(a.violations, b.violations);
    ExpectNearRel(a.mean_violation_severity, b.mean_violation_severity, "severity");
    ExpectNearRel(a.savings_ratio, b.savings_ratio, "savings");
    ExpectNearRel(a.mean_prediction, b.mean_prediction, "mean_prediction");
    ExpectNearRel(a.mean_limit, b.mean_limit, "mean_limit");
    // Tail metrics (crf/risk): streaks are integer-valued and must agree
    // exactly; the quantile estimates inherit the 1e-9 prediction tolerance.
    EXPECT_EQ(a.tail.max_violation_streak, b.tail.max_violation_streak);
    ExpectNearRel(a.tail.severity_p99, b.tail.severity_p99, "severity_p99");
    ExpectNearRel(a.tail.severity_p999, b.tail.severity_p999, "severity_p999");
    ExpectNearRel(a.tail.streak_p99, b.tail.streak_p99, "streak_p99");
    ExpectNearRel(a.tail.violation_time_fraction, b.tail.violation_time_fraction,
                  "violation_time_fraction");
    ExpectNearRel(a.tail.savings_at_risk, b.tail.savings_at_risk, "savings_at_risk");
  }
  ASSERT_EQ(multi.cell_savings_series.size(), reference.cell_savings_series.size());
  for (size_t t = 0; t < multi.cell_savings_series.size(); ++t) {
    const double tol =
        1e-9 * std::max(1.0, std::abs(reference.cell_savings_series[t]));
    EXPECT_NEAR(multi.cell_savings_series[t], reference.cell_savings_series[t], tol)
        << "t=" << t;
  }
}

void RunDifferential(const CellTrace& cell) {
  const std::vector<PredictorSpec> specs = MixedGrid();

  // Serial paths: deterministic machine order on both sides.
  SimOptions serial;
  serial.parallel = false;
  const std::vector<SimResult> multi_serial = SimulateCellMulti(cell, specs, serial);
  ASSERT_EQ(multi_serial.size(), specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    SCOPED_TRACE(::testing::Message() << "spec=" << s << " (" << specs[s].Name() << ")");
    ExpectResultMatchesReference(multi_serial[s], SimulateCell(cell, specs[s], serial));
  }

  // Parallel with a shared oracle cache, run twice so the second multi pass
  // exercises the cache-hit and bank-reuse paths end to end.
  OracleCache cache;
  SimOptions parallel;
  parallel.parallel = true;
  parallel.oracle_cache = &cache;
  const std::vector<SimResult> multi_parallel = SimulateCellMulti(cell, specs, parallel);
  const std::vector<SimResult> multi_again = SimulateCellMulti(cell, specs, parallel);
  EXPECT_GT(cache.hits(), 0);
  ASSERT_EQ(multi_parallel.size(), specs.size());
  ASSERT_EQ(multi_again.size(), specs.size());
  for (size_t s = 0; s < specs.size(); ++s) {
    SCOPED_TRACE(::testing::Message() << "spec=" << s << " (" << specs[s].Name() << ")");
    ExpectResultMatchesReference(multi_parallel[s], multi_serial[s]);
    ExpectResultMatchesReference(multi_again[s], multi_serial[s]);
  }
}

TEST(SweepEngineDifferentialTest, DenseCellMatchesPerSpecSimulation) {
  RunDifferential(MakeCell(42, /*churn=*/false));
}

TEST(SweepEngineDifferentialTest, ChurnHeavyCellMatchesPerSpecSimulation) {
  RunDifferential(MakeCell(43, /*churn=*/true));
}

TEST(SweepEngineTest, EmptySpecListYieldsNoResults) {
  const CellTrace cell = MakeCell(44, /*churn=*/true);
  EXPECT_TRUE(SimulateCellMulti(cell, {}, SimOptions{}).empty());
}

}  // namespace
}  // namespace crf
