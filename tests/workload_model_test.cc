#include "crf/trace/workload_model.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "crf/stats/running_stats.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

std::array<double, kSubSamplesPerInterval> StepOnce(TaskUsageModel& model,
                                                    double shared_load = 1.0) {
  std::array<double, kSubSamplesPerInterval> sub;
  model.Step(sub, shared_load);
  return sub;
}

TEST(TaskUsageModelTest, SamplesWithinBounds) {
  TaskUsageParams params;
  params.limit = 0.8;
  TaskUsageModel model(params, 0, Rng(1));
  for (int t = 0; t < 500; ++t) {
    for (const double s : StepOnce(model)) {
      ASSERT_GE(s, 0.0);
      ASSERT_LE(s, params.limit);
    }
  }
}

TEST(TaskUsageModelTest, DeterministicGivenSameRng) {
  TaskUsageParams params;
  TaskUsageModel a(params, 5, Rng(7));
  TaskUsageModel b(params, 5, Rng(7));
  for (int t = 0; t < 50; ++t) {
    EXPECT_EQ(StepOnce(a), StepOnce(b));
  }
}

TEST(TaskUsageModelTest, MeanTracksMeanRatio) {
  TaskUsageParams params;
  params.limit = 1.0;
  params.mean_ratio = 0.4;
  params.diurnal_amplitude = 0.0;
  params.spike_prob = 0.0;
  params.ar_sigma = 0.05;
  RunningStats stats;
  TaskUsageModel model(params, 0, Rng(11));
  for (int t = 0; t < 4000; ++t) {
    for (const double s : StepOnce(model)) {
      stats.Add(s);
    }
  }
  EXPECT_NEAR(stats.mean(), 0.4, 0.03);
}

TEST(TaskUsageModelTest, DiurnalWaveMovesUsage) {
  TaskUsageParams params;
  params.mean_ratio = 0.5;
  params.diurnal_amplitude = 0.4;
  params.phase_days = 0.0;
  params.ar_sigma = 0.01;
  params.spike_prob = 0.0;
  TaskUsageModel model(params, 0, Rng(13));
  RunningStats crest;   // Around t = day/4 (sine peak).
  RunningStats trough;  // Around t = 3*day/4.
  for (Interval t = 0; t < 2 * kIntervalsPerDay; ++t) {
    const auto sub = StepOnce(model);
    double mean = 0.0;
    for (const double s : sub) {
      mean += s;
    }
    mean /= sub.size();
    const Interval day_pos = t % kIntervalsPerDay;
    if (std::abs(day_pos - kIntervalsPerDay / 4) < 12) {
      crest.Add(mean);
    }
    if (std::abs(day_pos - 3 * kIntervalsPerDay / 4) < 12) {
      trough.Add(mean);
    }
  }
  EXPECT_GT(crest.mean(), trough.mean() + 0.2);
}

TEST(TaskUsageModelTest, SpikesReachSpikeLevel) {
  TaskUsageParams params;
  params.mean_ratio = 0.2;
  params.diurnal_amplitude = 0.0;
  params.ar_sigma = 0.02;
  params.spike_prob = 0.05;
  params.spike_level = 0.9;
  params.spike_duration = 2;
  TaskUsageModel model(params, 0, Rng(17));
  int high_intervals = 0;
  for (int t = 0; t < 2000; ++t) {
    const auto sub = StepOnce(model);
    double mean = 0.0;
    for (const double s : sub) {
      mean += s;
    }
    if (mean / sub.size() > 0.7) {
      ++high_intervals;
    }
  }
  // spike_prob 0.05 with duration 2 => roughly 10% of intervals spiking.
  EXPECT_GT(high_intervals, 50);
}

TEST(TaskUsageModelTest, NoSpikesWhenDisabled) {
  TaskUsageParams params;
  params.mean_ratio = 0.2;
  params.diurnal_amplitude = 0.0;
  params.ar_sigma = 0.02;
  params.spike_prob = 0.0;
  TaskUsageModel model(params, 0, Rng(19));
  for (int t = 0; t < 2000; ++t) {
    for (const double s : StepOnce(model)) {
      ASSERT_LT(s, 0.6);
    }
  }
}

TEST(TaskUsageModelTest, SharedLoadScalesCoupledTasks) {
  TaskUsageParams params;
  params.mean_ratio = 0.4;
  params.diurnal_amplitude = 0.0;
  params.ar_sigma = 0.01;
  params.spike_prob = 0.0;
  params.load_coupling = 1.0;
  TaskUsageModel low(params, 0, Rng(23));
  TaskUsageModel high(params, 0, Rng(23));
  RunningStats low_stats;
  RunningStats high_stats;
  for (int t = 0; t < 500; ++t) {
    for (const double s : StepOnce(low, 0.7)) {
      low_stats.Add(s);
    }
    for (const double s : StepOnce(high, 1.3)) {
      high_stats.Add(s);
    }
  }
  EXPECT_NEAR(high_stats.mean() / low_stats.mean(), 1.3 / 0.7, 0.1);
}

TEST(TaskUsageModelTest, UncoupledTasksIgnoreSharedLoad) {
  TaskUsageParams params;
  params.mean_ratio = 0.4;
  params.diurnal_amplitude = 0.0;
  params.ar_sigma = 0.01;
  params.spike_prob = 0.0;
  params.load_coupling = 0.0;
  TaskUsageModel a(params, 0, Rng(29));
  TaskUsageModel b(params, 0, Rng(29));
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(StepOnce(a, 0.5), StepOnce(b, 2.0));
  }
}

TEST(SummarizeIntervalTest, PercentileLadderIsOrdered) {
  Rng rng(31);
  for (int round = 0; round < 50; ++round) {
    std::array<double, kSubSamplesPerInterval> sub;
    for (auto& s : sub) {
      s = rng.UniformDouble();
    }
    const IntervalSummary summary = SummarizeInterval(sub);
    EXPECT_LE(summary.rich.p50, summary.rich.p60);
    EXPECT_LE(summary.rich.p60, summary.rich.p70);
    EXPECT_LE(summary.rich.p70, summary.rich.p80);
    EXPECT_LE(summary.rich.p80, summary.rich.p90);
    EXPECT_LE(summary.rich.p90, summary.rich.p95);
    EXPECT_LE(summary.rich.p95, summary.rich.p99);
    EXPECT_LE(summary.rich.p99, summary.rich.max);
    EXPECT_EQ(summary.scalar_p90, summary.rich.p90);
    EXPECT_LE(summary.rich.avg, summary.rich.max);
  }
}

TEST(SummarizeIntervalTest, ConstantSamples) {
  std::array<double, kSubSamplesPerInterval> sub;
  sub.fill(0.25);
  const IntervalSummary summary = SummarizeInterval(sub);
  EXPECT_FLOAT_EQ(summary.rich.p50, 0.25f);
  EXPECT_FLOAT_EQ(summary.rich.max, 0.25f);
  EXPECT_FLOAT_EQ(summary.rich.avg, 0.25f);
  EXPECT_FLOAT_EQ(summary.scalar_p90, 0.25f);
}

}  // namespace
}  // namespace crf
