#include "crf/sim/metrics.h"

#include <gtest/gtest.h>

namespace crf {
namespace {

MachineMetrics MakeMachine(int index, int64_t intervals, int64_t violations, double severity,
                           double savings) {
  MachineMetrics m;
  m.machine_index = index;
  m.intervals = intervals;
  m.occupied_intervals = intervals;
  m.violations = violations;
  m.mean_violation_severity = severity;
  m.savings_ratio = savings;
  return m;
}

TEST(MachineMetricsTest, ViolationRate) {
  EXPECT_DOUBLE_EQ(MakeMachine(0, 100, 25, 0, 0).violation_rate(), 0.25);
  EXPECT_DOUBLE_EQ(MakeMachine(0, 0, 0, 0, 0).violation_rate(), 0.0);
}

TEST(SimResultTest, CdfsOverMachines) {
  SimResult result;
  result.machines.push_back(MakeMachine(0, 100, 0, 0.0, 0.1));
  result.machines.push_back(MakeMachine(1, 100, 50, 0.02, 0.3));
  result.machines.push_back(MakeMachine(2, 100, 100, 0.04, 0.5));

  const Ecdf rates = result.ViolationRateCdf();
  EXPECT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates.Quantile(0.5), 0.5);

  const Ecdf severity = result.ViolationSeverityCdf();
  EXPECT_DOUBLE_EQ(severity.Quantile(1.0), 0.04);

  const Ecdf savings = result.MachineSavingsCdf();
  EXPECT_DOUBLE_EQ(savings.Quantile(0.0), 0.1);

  EXPECT_DOUBLE_EQ(result.MeanViolationRate(), 0.5);
}

TEST(SimResultTest, CellSavings) {
  SimResult result;
  result.cell_savings_series = {0.1, 0.2, 0.3};
  EXPECT_NEAR(result.MeanCellSavings(), 0.2, 1e-12);
  const Ecdf cdf = result.CellSavingsCdf();
  EXPECT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.max(), 0.3);
}

TEST(SimResultTest, EmptyResultIsZero) {
  SimResult result;
  EXPECT_DOUBLE_EQ(result.MeanCellSavings(), 0.0);
  EXPECT_DOUBLE_EQ(result.MeanViolationRate(), 0.0);
  EXPECT_TRUE(result.ViolationRateCdf().empty());
}

}  // namespace
}  // namespace crf
