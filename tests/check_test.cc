#include "crf/util/check.h"

#include <gtest/gtest.h>

namespace crf {
namespace {

TEST(CheckTest, PassingChecksDoNothing) {
  CRF_CHECK(true);
  CRF_CHECK_EQ(1, 1);
  CRF_CHECK_NE(1, 2);
  CRF_CHECK_LT(1, 2);
  CRF_CHECK_LE(2, 2);
  CRF_CHECK_GT(3, 2);
  CRF_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(CRF_CHECK(false) << "boom", "CHECK failed.*false.*boom");
}

TEST(CheckDeathTest, ComparisonPrintsValues) {
  const int x = 3;
  const int y = 5;
  EXPECT_DEATH(CRF_CHECK_EQ(x, y), "\\(3 vs 5\\)");
}

TEST(CheckDeathTest, StreamedMessageIncluded) {
  EXPECT_DEATH(CRF_CHECK_GT(1, 2) << "context " << 42, "context 42");
}

TEST(CheckTest, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto increments = [&calls] {
    ++calls;
    return true;
  };
  CRF_CHECK(increments());
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, BindsTightEnoughForElse) {
  // The macro must compose with surrounding if/else without dangling-else
  // surprises.
  bool reached = false;
  if (true) {
    CRF_CHECK(true);
  } else {
    reached = true;
  }
  EXPECT_FALSE(reached);
}

}  // namespace
}  // namespace crf
