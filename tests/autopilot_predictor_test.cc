#include "crf/core/autopilot_predictor.h"

#include <gtest/gtest.h>

#include "crf/core/predictor_factory.h"
#include "crf/core/rc_like_predictor.h"
#include "crf/sim/simulator.h"
#include "crf/trace/generator.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

PredictorConfig FastConfig(Interval warmup = 2, Interval history = 50) {
  PredictorConfig config;
  config.min_num_samples = warmup;
  config.max_num_samples = history;
  return config;
}

std::vector<TaskSample> OneTask(double usage, double limit) {
  return {{1, usage, limit}};
}

TEST(AutopilotPredictorTest, WarmupUsesLimit) {
  AutopilotPredictor predictor(98.0, 1.1, FastConfig(/*warmup=*/3));
  predictor.Observe(0, OneTask(0.1, 0.9));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.9);
}

TEST(AutopilotPredictorTest, AppliesMarginToPercentile) {
  AutopilotPredictor predictor(100.0, 1.2, FastConfig(/*warmup=*/1));
  // Descending stream so the current-usage clamp does not mask the estimate.
  predictor.Observe(0, OneTask(0.5, 2.0));
  predictor.Observe(1, OneTask(0.3, 2.0));
  // p100 of {0.5, 0.3} = 0.5; with margin 1.2 -> 0.6, below the limit 2.0.
  EXPECT_NEAR(predictor.PredictPeak(), 0.6, 1e-6);
}

TEST(AutopilotPredictorTest, NeverExceedsConfiguredLimit) {
  AutopilotPredictor predictor(100.0, 2.0, FastConfig(/*warmup=*/1));
  predictor.Observe(0, OneTask(0.55, 0.6));
  predictor.Observe(1, OneTask(0.40, 0.6));
  // margin * p100 = 1.1 would exceed the limit; capped per task at 0.6.
  EXPECT_LE(predictor.PredictPeak(), 0.6 + 1e-12);
}

TEST(AutopilotPredictorTest, DropsDepartedTasks) {
  AutopilotPredictor predictor(98.0, 1.1, FastConfig(/*warmup=*/1));
  predictor.Observe(0, OneTask(0.5, 1.0));
  predictor.Observe(1, {});
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.0);
}

TEST(AutopilotPredictorTest, Name) {
  AutopilotPredictor predictor(98.0, 1.1, FastConfig());
  EXPECT_EQ(predictor.name(), "autopilot-p98-m1.10");
  EXPECT_EQ(AutopilotSpec().Name(), "autopilot-p98-m1.10");
}

TEST(AutopilotPredictorDeathTest, RejectsMarginBelowOne) {
  EXPECT_DEATH(AutopilotPredictor(98.0, 0.9, FastConfig()), "CHECK failed");
}

TEST(AutopilotPredictorTest, PredictsAboveRcLikeSamePercentile) {
  // margin >= 1 and the per-task cap only binds when RC-like would also be
  // near the limit, so autopilot >= rc-like at the same percentile.
  AutopilotPredictor autopilot(95.0, 1.15, FastConfig(/*warmup=*/1));
  RcLikePredictor rc(95.0, FastConfig(/*warmup=*/1));
  Rng rng(5);
  for (Interval t = 0; t < 100; ++t) {
    const auto tasks = OneTask(0.4 * rng.UniformDouble(), 1.0);
    autopilot.Observe(t, tasks);
    rc.Observe(t, tasks);
    EXPECT_GE(autopilot.PredictPeak(), rc.PredictPeak() - 1e-12);
  }
}

TEST(AutopilotPredictorTest, LeavesPoolingGapOnTheTable) {
  // The paper's Section 2.2 claim: per-task limit tuning saves less than
  // machine-level peak prediction. On a realistic cell, autopilot's savings
  // sit well below RC-like's at a similar percentile.
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 12;
  GeneratorOptions options;
  options.num_intervals = 2 * kIntervalsPerDay;
  CellTrace cell = GenerateCellTrace(profile, options, Rng(77));
  cell.FilterToServingTasks();

  const SimResult autopilot = SimulateCell(cell, AutopilotSpec(98.0, 1.10));
  const SimResult rc = SimulateCell(cell, RcLikeSpec(98.0));
  EXPECT_LT(autopilot.MeanCellSavings(), rc.MeanCellSavings());
  // And, being more conservative, it violates no more often.
  EXPECT_LE(autopilot.MeanViolationRate(), rc.MeanViolationRate() + 1e-9);
}

}  // namespace
}  // namespace crf
