#include "crf/core/predictor_factory.h"

#include <gtest/gtest.h>

namespace crf {
namespace {

TEST(PredictorFactoryTest, CreatesEachType) {
  EXPECT_EQ(CreatePredictor(LimitSumSpec())->name(), "limit-sum");
  EXPECT_EQ(CreatePredictor(BorgDefaultSpec(0.85))->name(), "borg-default-0.85");
  EXPECT_EQ(CreatePredictor(RcLikeSpec(95.0))->name(), "rc-like-p95");
  EXPECT_EQ(CreatePredictor(NSigmaSpec(3.0))->name(), "n-sigma-3");
}

TEST(PredictorFactoryTest, MaxComposition) {
  const PredictorSpec spec = MaxSpec({NSigmaSpec(5.0), RcLikeSpec(99.0)});
  EXPECT_EQ(CreatePredictor(spec)->name(), "max(n-sigma-5,rc-like-p99)");
}

TEST(PredictorFactoryTest, SpecNameMatchesInstance) {
  for (const PredictorSpec& spec :
       {LimitSumSpec(), BorgDefaultSpec(), RcLikeSpec(), NSigmaSpec(), SimulationMaxSpec(),
        ProductionMaxSpec()}) {
    EXPECT_EQ(spec.Name(), CreatePredictor(spec)->name());
  }
}

TEST(PredictorFactoryTest, PaperConfigurations) {
  // Section 5.4: max(n-sigma(5), rc-like(p99)).
  EXPECT_EQ(SimulationMaxSpec().Name(), "max(n-sigma-5,rc-like-p99)");
  // Section 6.1: max(n-sigma(3), rc-like(p80)).
  EXPECT_EQ(ProductionMaxSpec().Name(), "max(n-sigma-3,rc-like-p80)");
}

TEST(PredictorFactoryTest, ConfigPlumbing) {
  const PredictorSpec spec = RcLikeSpec(90.0, 7, 33);
  EXPECT_EQ(spec.config.min_num_samples, 7);
  EXPECT_EQ(spec.config.max_num_samples, 33);
  // Defaults follow the paper: 2h warm-up, 10h history.
  const PredictorSpec defaults = NSigmaSpec();
  EXPECT_EQ(defaults.config.min_num_samples, 2 * kIntervalsPerHour);
  EXPECT_EQ(defaults.config.max_num_samples, 10 * kIntervalsPerHour);
}

TEST(PredictorFactoryTest, FreshInstancesAreIndependent) {
  const PredictorSpec spec = NSigmaSpec(5.0, 1, 10);
  auto a = CreatePredictor(spec);
  auto b = CreatePredictor(spec);
  std::vector<TaskSample> tasks{{1, 0.5, 1.0}};
  a->Observe(0, tasks);
  // b saw nothing; its prediction must be unaffected by a's state.
  EXPECT_DOUBLE_EQ(b->PredictPeak(), 0.0);
  EXPECT_GT(a->PredictPeak(), 0.0);
}

TEST(PredictorFactoryDeathTest, MaxWithoutComponentsAborts) {
  PredictorSpec spec;
  spec.type = PredictorSpec::Type::kMax;
  EXPECT_DEATH(CreatePredictor(spec), "max predictor needs components");
}

}  // namespace
}  // namespace crf
