#include "crf/index/capacity_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "crf/cluster/scheduler.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

// Reference: the (free, machine) keys in sorted order.
std::vector<std::pair<double, int>> SortedKeys(const std::vector<double>& free) {
  std::vector<std::pair<double, int>> keys;
  keys.reserve(free.size());
  for (int m = 0; m < static_cast<int>(free.size()); ++m) {
    keys.emplace_back(free[m], m);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Checks every rank/select query against the sorted-array reference.
void ExpectMatchesReference(const CapacityTournamentTree& tree,
                            const std::vector<double>& free) {
  const std::vector<std::pair<double, int>> keys = SortedKeys(free);
  ASSERT_EQ(tree.num_machines(), static_cast<int>(free.size()));
  for (int rank = 0; rank < static_cast<int>(keys.size()); ++rank) {
    EXPECT_EQ(tree.MachineAtRank(rank), keys[rank].second) << "rank " << rank;
  }
  EXPECT_EQ(tree.MachineAtRank(-1), -1);
  EXPECT_EQ(tree.MachineAtRank(static_cast<int>(keys.size())), -1);
  for (int m = 0; m < static_cast<int>(free.size()); ++m) {
    EXPECT_DOUBLE_EQ(tree.free(m), free[m]);
    const auto key = std::make_pair(free[m], m);
    const int expected =
        static_cast<int>(std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
    EXPECT_EQ(tree.RankOfKey(free[m], m), expected) << "machine " << m;
    // Sentinel forms bracket the tie class of free[m].
    const int lo = static_cast<int>(
        std::lower_bound(keys.begin(), keys.end(), std::make_pair(free[m], -1)) -
        keys.begin());
    const int hi = static_cast<int>(std::lower_bound(keys.begin(), keys.end(),
                                                     std::make_pair(free[m], tree.num_machines())) -
                                    keys.begin());
    EXPECT_EQ(tree.RankOfKey(free[m], -1), lo);
    EXPECT_EQ(tree.RankOfKey(free[m], tree.num_machines()), hi);
  }
}

TEST(CapacityTournamentTreeTest, EmptyTree) {
  CapacityTournamentTree tree;
  EXPECT_EQ(tree.num_machines(), 0);
  EXPECT_EQ(tree.MachineAtRank(0), -1);
  EXPECT_EQ(tree.RankOfKey(0.5, -1), 0);

  tree.Assign({});  // Explicit empty assign stays empty.
  EXPECT_EQ(tree.num_machines(), 0);
  EXPECT_EQ(tree.MachineAtRank(0), -1);
}

TEST(CapacityTournamentTreeTest, SingleMachine) {
  CapacityTournamentTree tree;
  const std::vector<double> free = {0.7};
  tree.Assign(free);
  ExpectMatchesReference(tree, free);
  EXPECT_EQ(tree.RankOfKey(0.7, 0), 0);
  EXPECT_EQ(tree.RankOfKey(0.7, 1), 1);
  EXPECT_EQ(tree.RankOfKey(0.8, -1), 1);
  EXPECT_EQ(tree.RankOfKey(0.6, -1), 0);
}

TEST(CapacityTournamentTreeTest, AssignMatchesSortedReference) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const int num_machines = 1 + rng.UniformInt(40);
    std::vector<double> free(num_machines);
    for (double& f : free) {
      // Quantized so ties are common (the index breaks them by machine id).
      f = 0.1 * static_cast<double>(rng.UniformInt(8));
    }
    CapacityTournamentTree tree;
    tree.Assign(free);
    ExpectMatchesReference(tree, free);
  }
}

TEST(CapacityTournamentTreeTest, IncrementalUpdateMatchesRebuild) {
  Rng rng(32);
  const int num_machines = 24;
  std::vector<double> free(num_machines, 0.5);
  CapacityTournamentTree incremental;
  incremental.Assign(free);
  for (int step = 0; step < 500; ++step) {
    const int m = rng.UniformInt(num_machines);
    free[m] = 0.05 * static_cast<double>(rng.UniformInt(21));
    incremental.Update(m, free[m]);
    if (step % 25 == 0) {
      ExpectMatchesReference(incremental, free);
    }
    // The treap's fixed priorities make the structure a pure function of the
    // capacities: a fresh rebuild must answer every query identically.
    CapacityTournamentTree rebuilt;
    rebuilt.Assign(free);
    for (int rank = 0; rank < num_machines; ++rank) {
      ASSERT_EQ(incremental.MachineAtRank(rank), rebuilt.MachineAtRank(rank))
          << "step " << step << " rank " << rank;
    }
  }
  ExpectMatchesReference(incremental, free);
}

TEST(CapacityTournamentTreeTest, UpdateToSameValueIsStable) {
  const std::vector<double> free = {0.2, 0.4, 0.4, 0.9};
  CapacityTournamentTree tree;
  tree.Assign(free);
  for (int m = 0; m < 4; ++m) {
    tree.Update(m, free[m]);
  }
  ExpectMatchesReference(tree, free);
}

TEST(CapacityTournamentTreeTest, AllEqualCapacitiesOrderByMachine) {
  const std::vector<double> free(9, 0.5);
  CapacityTournamentTree tree;
  tree.Assign(free);
  for (int rank = 0; rank < 9; ++rank) {
    EXPECT_EQ(tree.MachineAtRank(rank), rank);
  }
  EXPECT_EQ(tree.RankOfKey(0.5, -1), 0);
  EXPECT_EQ(tree.RankOfKey(0.5, 9), 9);
}

TEST(CapacityTournamentTreeTest, FullCellZeroFreeEverywhere) {
  // A saturated cell: every machine publishes zero free capacity.
  const std::vector<double> free(6, 0.0);
  CapacityTournamentTree tree;
  tree.Assign(free);
  ExpectMatchesReference(tree, free);
  // Nothing is feasible for any positive limit.
  EXPECT_EQ(tree.RankOfKey(1e-9, -1), 6);
}

// Exclusion probing through the scheduler: when every feasible machine is
// excluded, pass 1 must fail and the fallback pass must pick the machine the
// policy would choose ignoring exclusions.
TEST(CapacityTournamentTreeTest, ExclusionProbeFallsBackWhenAllFeasibleExcluded) {
  Scheduler best(PackingPolicy::kBestFit, Rng(77), PlacementEngine::kIndexed);
  best.UpdateFreeCapacity({0.6, 0.8, 0.1, 0.05});
  // Machines 0 and 1 are the only feasible ones and both are excluded.
  EXPECT_EQ(best.Place(0.5, {0, 1}), 0);

  Scheduler worst(PackingPolicy::kWorstFit, Rng(78), PlacementEngine::kIndexed);
  worst.UpdateFreeCapacity({0.6, 0.8, 0.1, 0.05});
  EXPECT_EQ(worst.Place(0.5, {0, 1}), 1);

  Scheduler random(PackingPolicy::kRandomFit, Rng(79), PlacementEngine::kIndexed);
  for (int i = 0; i < 50; ++i) {
    random.UpdateFreeCapacity({0.6, 0.8, 0.1, 0.05});
    const int m = random.Place(0.5, {0, 1});
    EXPECT_TRUE(m == 0 || m == 1) << m;
  }
}

// The probe must skip an arbitrarily long run of excluded machines at the
// feasible frontier, not just one.
TEST(CapacityTournamentTreeTest, ExclusionProbeSkipsLongExcludedRun) {
  Scheduler best(PackingPolicy::kBestFit, Rng(80), PlacementEngine::kIndexed);
  std::vector<double> free(12, 0.0);
  std::vector<int> exclude;
  for (int m = 0; m < 11; ++m) {
    free[m] = 0.5 + 0.01 * m;  // Tightest feasible machines, all excluded.
    exclude.push_back(m);
  }
  free[11] = 0.9;
  best.UpdateFreeCapacity(free);
  EXPECT_EQ(best.Place(0.4, exclude), 11);
}

}  // namespace
}  // namespace crf
