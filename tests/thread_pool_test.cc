#include "crf/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace crf {
namespace {

TEST(ThreadPoolTest, InlineModeRunsAllIterations) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&hits](int i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, MultiThreadedRunsEachIterationOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](int i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ZeroIterationsIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&called](int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, FewerIterationsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&count](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.ParallelFor(50, [&total](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPoolTest, ResultsAggregateCorrectly) {
  ThreadPool pool(4);
  std::vector<int64_t> partial(256, 0);
  pool.ParallelFor(256, [&partial](int i) { partial[i] = static_cast<int64_t>(i) * i; });
  int64_t sum = std::accumulate(partial.begin(), partial.end(), int64_t{0});
  int64_t expected = 0;
  for (int64_t i = 0; i < 256; ++i) {
    expected += i * i;
  }
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPoolTest, IndexedSlotsAreDistinctPerConcurrentIteration) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  std::vector<std::atomic<int>> slot_hits(pool.num_threads());
  pool.ParallelForIndexed(500, [&](int slot, int i) {
    ASSERT_GE(slot, 0);
    ASSERT_LT(slot, pool.num_threads());
    hits[i].fetch_add(1);
    slot_hits[slot].fetch_add(1);
  });
  int total = 0;
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  for (const auto& s : slot_hits) {
    total += s.load();
  }
  EXPECT_EQ(total, 500);
}

TEST(ThreadPoolTest, BlockedVariantRunsEachIterationOnce) {
  for (const int block : {1, 3, 7, 64, 1000}) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(617);  // prime: uneven final block
    pool.ParallelForIndexedBlocked(617, block, [&hits](int slot, int i) {
      ASSERT_GE(slot, 0);
      hits[i].fetch_add(1);
    });
    for (int i = 0; i < 617; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "block " << block << " i " << i;
    }
  }
}

TEST(ThreadPoolTest, BlockedVariantInlineMode) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.ParallelForIndexedBlocked(100, 8, [&hits](int slot, int i) {
    EXPECT_EQ(slot, 0);
    hits[i]++;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, BlockedVariantZeroIterationsIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelForIndexedBlocked(0, 16, [&called](int, int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, DefaultPoolExists) {
  EXPECT_GE(ThreadPool::Default().num_threads(), 1);
  std::atomic<int> count{0};
  ThreadPool::Default().ParallelFor(10, [&count](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, BlockedVariantBlockLargerThanCount) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5);
  std::atomic<int> slots_seen{0};
  pool.ParallelForIndexedBlocked(5, 64, [&](int slot, int i) {
    hits[i].fetch_add(1);
    slots_seen.fetch_add(slot);  // block >= count runs inline: slot must be 0
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  EXPECT_EQ(slots_seen.load(), 0);
}

TEST(ThreadPoolTest, BlockedVariantNonDivisibleBlocks) {
  // count % block != 0 for every pair; the tail block must still run.
  for (const int count : {1, 2, 617}) {
    for (const int block : {2, 5, 9, 100}) {
      if (count % block == 0) continue;
      ThreadPool pool(3);
      std::vector<std::atomic<int>> hits(count);
      pool.ParallelForIndexedBlocked(count, block,
                                     [&hits](int /*slot*/, int i) { hits[i].fetch_add(1); });
      for (int i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "count " << count << " block " << block;
      }
    }
  }
}

TEST(ThreadPoolTest, ContentionSmokeNoTaskRunsTwiceOrSkipped) {
  // 10k-iteration fan-out with a tiny body: maximal pressure on the claim
  // cursor. Every index must be hit exactly once, every round.
  ThreadPool pool(8);
  constexpr int kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  for (int round = 0; round < 5; ++round) {
    for (auto& h : hits) {
      h.store(0, std::memory_order_relaxed);
    }
    pool.ParallelForIndexedBlocked(kCount, 1, [&hits](int /*slot*/, int i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (int i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " i " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForRangesPartitionsExactly) {
  for (const int threads : {1, 4}) {
    for (const int block : {1, 7, 64, 5000}) {
      ThreadPool pool(threads);
      constexpr int kCount = 2311;  // prime
      std::vector<std::atomic<int>> hits(kCount);
      pool.ParallelForRanges(kCount, block, [&](int slot, int begin, int end) {
        ASSERT_GE(slot, 0);
        ASSERT_LT(slot, pool.num_threads());
        ASSERT_GE(begin, 0);
        ASSERT_LT(begin, end);
        ASSERT_LE(end, kCount);
        ASSERT_LE(end - begin, block);
        for (int i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (int i = 0; i < kCount; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "threads " << threads << " block " << block;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForRangesAcceptsConstCallable) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(100);
  const auto body = [&hits](int /*slot*/, int begin, int end) {
    for (int i = begin; i < end; ++i) {
      hits[i].fetch_add(1);
    }
  };
  pool.ParallelForRanges(100, 8, body);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

// Exception contract (documented in thread_pool.h): the first exception is
// rethrown on the calling thread and the pool remains usable afterwards.
TEST(ThreadPoolTest, ExceptionPropagatesInlineMode) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(10,
                                [](int i) {
                                  if (i == 3) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromWorkerAndPoolStaysUsable) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(1000,
                                [&ran](int i) {
                                  ran.fetch_add(1, std::memory_order_relaxed);
                                  if (i == 17) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // Unclaimed blocks are abandoned — not every iteration needs to have run.
  EXPECT_LE(ran.load(), 1000);
  EXPECT_GE(ran.load(), 1);

  // The pool must be fully functional after an exceptional epoch.
  std::atomic<int> count{0};
  pool.ParallelFor(200, [&count](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ExceptionFromRangesVariantPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelForRanges(100, 4,
                                      [](int /*slot*/, int begin, int /*end*/) {
                                        if (begin >= 48) throw std::logic_error("range boom");
                                      }),
               std::logic_error);
  std::atomic<int> count{0};
  pool.ParallelForRanges(64, 8, [&count](int, int begin, int end) {
    count.fetch_add(end - begin);
  });
  EXPECT_EQ(count.load(), 64);
}

}  // namespace
}  // namespace crf
