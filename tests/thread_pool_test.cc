#include "crf/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace crf {
namespace {

TEST(ThreadPoolTest, InlineModeRunsAllIterations) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&hits](int i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, MultiThreadedRunsEachIterationOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](int i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ZeroIterationsIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&called](int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, FewerIterationsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&count](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.ParallelFor(50, [&total](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPoolTest, ResultsAggregateCorrectly) {
  ThreadPool pool(4);
  std::vector<int64_t> partial(256, 0);
  pool.ParallelFor(256, [&partial](int i) { partial[i] = static_cast<int64_t>(i) * i; });
  int64_t sum = std::accumulate(partial.begin(), partial.end(), int64_t{0});
  int64_t expected = 0;
  for (int64_t i = 0; i < 256; ++i) {
    expected += i * i;
  }
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPoolTest, IndexedSlotsAreDistinctPerConcurrentIteration) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  std::vector<std::atomic<int>> slot_hits(pool.num_threads());
  pool.ParallelForIndexed(500, [&](int slot, int i) {
    ASSERT_GE(slot, 0);
    ASSERT_LT(slot, pool.num_threads());
    hits[i].fetch_add(1);
    slot_hits[slot].fetch_add(1);
  });
  int total = 0;
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  for (const auto& s : slot_hits) {
    total += s.load();
  }
  EXPECT_EQ(total, 500);
}

TEST(ThreadPoolTest, BlockedVariantRunsEachIterationOnce) {
  for (const int block : {1, 3, 7, 64, 1000}) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(617);  // prime: uneven final block
    pool.ParallelForIndexedBlocked(617, block, [&hits](int slot, int i) {
      ASSERT_GE(slot, 0);
      hits[i].fetch_add(1);
    });
    for (int i = 0; i < 617; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "block " << block << " i " << i;
    }
  }
}

TEST(ThreadPoolTest, BlockedVariantInlineMode) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.ParallelForIndexedBlocked(100, 8, [&hits](int slot, int i) {
    EXPECT_EQ(slot, 0);
    hits[i]++;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, BlockedVariantZeroIterationsIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelForIndexedBlocked(0, 16, [&called](int, int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, DefaultPoolExists) {
  EXPECT_GE(ThreadPool::Default().num_threads(), 1);
  std::atomic<int> count{0};
  ThreadPool::Default().ParallelFor(10, [&count](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace crf
