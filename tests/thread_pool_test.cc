#include "crf/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace crf {
namespace {

TEST(ThreadPoolTest, InlineModeRunsAllIterations) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&hits](int i) { hits[i]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, MultiThreadedRunsEachIterationOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](int i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ZeroIterationsIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&called](int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, FewerIterationsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.ParallelFor(3, [&count](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.ParallelFor(50, [&total](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPoolTest, ResultsAggregateCorrectly) {
  ThreadPool pool(4);
  std::vector<int64_t> partial(256, 0);
  pool.ParallelFor(256, [&partial](int i) { partial[i] = static_cast<int64_t>(i) * i; });
  int64_t sum = std::accumulate(partial.begin(), partial.end(), int64_t{0});
  int64_t expected = 0;
  for (int64_t i = 0; i < 256; ++i) {
    expected += i * i;
  }
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPoolTest, DefaultPoolExists) {
  EXPECT_GE(ThreadPool::Default().num_threads(), 1);
  std::atomic<int> count{0};
  ThreadPool::Default().ParallelFor(10, [&count](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace crf
