// Tests for the zero-copy mmap trace loader (TraceLoadMode::kMapped).
//
// Two properties matter: a mapped trace must be bit-identical to the same
// file loaded onto the heap (the map is a view of the exact bytes the heap
// loader copies), and corruption must be rejected with a precise diagnostic
// before any span can point out of bounds — a mapped arena cannot rely on
// "the read stopped short", so every rejection here goes through header or
// arena validation.

#include "crf/trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "crf/trace/generator.h"
#include "crf/trace/trace.h"
#include "crf/trace/trace_builder.h"

namespace crf {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("crf_mapped_" + name)).string();
}

CellTrace SmallCell(uint64_t seed, bool rich = false) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 6;
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerDay;
  options.rich_stats = rich;
  return GenerateCellTrace(profile, options, Rng(seed));
}

std::optional<CellTrace> LoadMapped(const std::string& path, std::string* error = nullptr) {
  return LoadCellTrace(path, {TraceLoadMode::kMapped}, error);
}

// Overwrites `size` bytes at `offset` in the file (the mapping is read-only,
// so corruption tests scribble on disk before loading).
void CorruptAt(const std::string& path, uint64_t offset, const void* data, size_t size) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.is_open());
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
}

// Byte offset of the arena blob inside the file (header + padded name).
uint64_t ArenaFileOffset(const CellTrace& cell, const std::string& path) {
  return std::filesystem::file_size(path) - cell.arena_bytes().size();
}

trace_internal::ArenaLayout LayoutOf(const CellTrace& cell) {
  return trace_internal::ComputeArenaLayout(cell.num_tasks(), cell.num_machines(),
                                            cell.usage_sample_count(), cell.peak_sample_count(),
                                            cell.num_tasks(), cell.has_rich());
}

void ExpectBitIdentical(const CellTrace& heap, const CellTrace& mapped) {
  EXPECT_FALSE(heap.is_mapped());
  EXPECT_TRUE(mapped.is_mapped());
  EXPECT_EQ(heap.name, mapped.name);
  EXPECT_EQ(heap.num_intervals, mapped.num_intervals);
  EXPECT_EQ(heap.dropped_tasks, mapped.dropped_tasks);
  const auto a = heap.arena_bytes();
  const auto b = mapped.arena_bytes();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), b.size()), 0);
}

TEST(MappedTraceTest, BitIdenticalToHeapLoad) {
  for (const bool rich : {false, true}) {
    const CellTrace original = SmallCell(11, rich);
    const std::string path = TempPath(rich ? "diff_rich.crftrace" : "diff.crftrace");
    SaveCellTraceBinary(original, path);

    std::string error;
    const auto heap = LoadCellTrace(path, {TraceLoadMode::kHeap}, &error);
    ASSERT_TRUE(heap.has_value()) << error;
    const auto mapped = LoadMapped(path, &error);
    ASSERT_TRUE(mapped.has_value()) << error;
    ExpectBitIdentical(*heap, *mapped);

    // The views decode those bytes identically too.
    ASSERT_EQ(heap->num_tasks(), mapped->num_tasks());
    for (int32_t i = 0; i < mapped->num_tasks(); ++i) {
      const TaskView ta = heap->task(i);
      const TaskView tb = mapped->task(i);
      EXPECT_EQ(ta.task_id(), tb.task_id());
      EXPECT_EQ(ta.machine_index(), tb.machine_index());
      const auto ua = ta.usage();
      const auto ub = tb.usage();
      ASSERT_EQ(ua.size(), ub.size());
      for (size_t k = 0; k < ub.size(); ++k) {
        EXPECT_EQ(ua[k], ub[k]);  // exact: same bits, no tolerance
      }
    }
    std::remove(path.c_str());
  }
}

TEST(MappedTraceTest, BitIdenticalWithEmptyMachinesAndEmptyTasks) {
  // Hand-built corner shape: a machine with no tasks, a task with no usage
  // samples, and a machine with no ground-truth peaks.
  CellTraceBuilder builder("corner", 4, 3);
  builder.set_machine_capacity(0, 1.0);
  builder.set_machine_capacity(1, 2.0);
  builder.set_machine_capacity(2, 4.0);
  builder.mutable_true_peak(0) = {0.5f, 0.5f, 0.25f, 0.0f};
  const int32_t t0 = builder.AddTask(100, 7, 0, 0, 0.5, SchedulingClass::kBestEffort);
  builder.AppendUsage(t0, 0.25f);
  builder.AppendUsage(t0, 0.125f);
  builder.AddTask(101, 7, 2, 1, 0.25,
                  SchedulingClass::kLatencySensitive);  // zero-length usage
  CellTrace original = builder.Seal();

  const std::string path = TempPath("corner.crftrace");
  SaveCellTraceBinary(original, path);
  std::string error;
  const auto heap = LoadCellTrace(path, {TraceLoadMode::kHeap}, &error);
  ASSERT_TRUE(heap.has_value()) << error;
  const auto mapped = LoadMapped(path, &error);
  ASSERT_TRUE(mapped.has_value()) << error;
  ExpectBitIdentical(*heap, *mapped);
  EXPECT_TRUE(mapped->machine_tasks(1).empty());
  EXPECT_TRUE(mapped->task(1).usage().empty());
  std::remove(path.c_str());
}

TEST(MappedTraceTest, RejectsTextTraceWithDiagnostic) {
  const CellTrace original = SmallCell(3);
  const std::string path = TempPath("text.trace");
  SaveCellTrace(original, path);
  std::string error;
  EXPECT_FALSE(LoadMapped(path, &error).has_value());
  EXPECT_NE(error.find("mmap loading requires the binary format"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(MappedTraceTest, RejectsMissingFile) {
  std::string error;
  EXPECT_FALSE(LoadMapped("/nonexistent/path/file.crftrace", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(MappedTraceTest, RejectsTruncatedFiles) {
  const CellTrace original = SmallCell(3);
  const std::string path = TempPath("trunc.crftrace");
  SaveCellTraceBinary(original, path);
  const auto full_size = std::filesystem::file_size(path);

  // Shorter than the fixed header.
  std::filesystem::resize_file(path, 40);
  std::string error;
  EXPECT_FALSE(LoadMapped(path, &error).has_value());
  EXPECT_NE(error.find("truncated file"), std::string::npos) << error;

  // One byte missing from the arena blob.
  SaveCellTraceBinary(original, path);
  std::filesystem::resize_file(path, full_size - 1);
  error.clear();
  EXPECT_FALSE(LoadMapped(path, &error).has_value());
  EXPECT_NE(error.find("truncated arena"), std::string::npos) << error;

  // Bytes beyond the arena blob.
  SaveCellTraceBinary(original, path);
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "extra";
  }
  error.clear();
  EXPECT_FALSE(LoadMapped(path, &error).has_value());
  EXPECT_NE(error.find("trailing garbage after the arena blob"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(MappedTraceTest, RejectsBitFlippedHeaderFields) {
  const CellTrace original = SmallCell(3);
  const std::string path = TempPath("header.crftrace");

  // (offset, corrupting bytes, expected diagnostic substring). Offsets
  // follow the 88-byte header layout in trace_format.h.
  struct Case {
    uint64_t offset;
    int64_t value;
    size_t size;
    const char* expect;
  };
  const Case cases[] = {
      // A flipped magic byte makes the sniffer stop treating the file as a
      // binary trace at all (the mapped loader refuses non-binary input).
      {0, int64_t{'X'}, 1, "is not a binary trace"},
      {8, 999, 4, "unsupported binary trace version"},
      {12, 0xFF, 4, "unknown header flags"},
      {16, -1, 8, "header field num_tasks out of range"},
      {24, int64_t{1} << 50, 8, "header field num_machines out of range"},
      {48, original.num_tasks() + 1, 8, "csr_entries"},
      {80, 64, 8, "arena byte count mismatch"},
  };
  for (const Case& c : cases) {
    SaveCellTraceBinary(original, path);
    CorruptAt(path, c.offset, &c.value, c.size);
    std::string error;
    EXPECT_FALSE(LoadMapped(path, &error).has_value()) << c.expect;
    EXPECT_NE(error.find(c.expect), std::string::npos)
        << "offset " << c.offset << ": got \"" << error << "\"";
  }
  std::remove(path.c_str());
}

TEST(MappedTraceTest, RejectsMisalignedOffsetTables) {
  const CellTrace original = SmallCell(3);
  ASSERT_GE(original.num_tasks(), 3);
  const std::string path = TempPath("offsets.crftrace");
  SaveCellTraceBinary(original, path);
  const uint64_t arena = ArenaFileOffset(original, path);
  const trace_internal::ArenaLayout layout = LayoutOf(original);

  // usage_off[0] must be 0.
  const uint64_t bad_first = 1;
  CorruptAt(path, arena + layout.usage_off, &bad_first, sizeof(bad_first));
  std::string error;
  EXPECT_FALSE(LoadMapped(path, &error).has_value());
  EXPECT_NE(error.find("offset table corrupt: entry 0"), std::string::npos) << error;

  // usage_off[N] must equal the total sample count.
  SaveCellTraceBinary(original, path);
  const uint64_t bad_final = static_cast<uint64_t>(original.usage_sample_count()) + 7;
  CorruptAt(path, arena + layout.usage_off + 8 * static_cast<uint64_t>(original.num_tasks()),
            &bad_final, sizeof(bad_final));
  error.clear();
  EXPECT_FALSE(LoadMapped(path, &error).has_value());
  EXPECT_NE(error.find("offset table corrupt: final entry"), std::string::npos) << error;

  // Interior entries must be monotone (a slab boundary pointing backwards
  // would hand task i+1 a negative-length span).
  SaveCellTraceBinary(original, path);
  const uint64_t bad_mid = static_cast<uint64_t>(original.usage_sample_count()) + (1u << 20);
  CorruptAt(path, arena + layout.usage_off + 8, &bad_mid, sizeof(bad_mid));
  error.clear();
  EXPECT_FALSE(LoadMapped(path, &error).has_value());
  EXPECT_NE(error.find("offset table not monotone"), std::string::npos) << error;

  // The per-machine peak offset table is validated the same way.
  SaveCellTraceBinary(original, path);
  CorruptAt(path, arena + layout.peak_off, &bad_first, sizeof(bad_first));
  error.clear();
  EXPECT_FALSE(LoadMapped(path, &error).has_value());
  EXPECT_NE(error.find("offset table corrupt: entry 0"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(MappedTraceTest, RejectsCorruptArenaIndices) {
  const CellTrace original = SmallCell(3);
  ASSERT_GE(original.num_tasks(), 2);
  const std::string path = TempPath("indices.crftrace");
  const trace_internal::ArenaLayout layout = LayoutOf(original);

  // Out-of-range machine index.
  SaveCellTraceBinary(original, path);
  uint64_t arena = ArenaFileOffset(original, path);
  const int32_t bad_machine = 1 << 20;
  CorruptAt(path, arena + layout.machine_of, &bad_machine, sizeof(bad_machine));
  std::string error;
  EXPECT_FALSE(LoadMapped(path, &error).has_value());
  EXPECT_NE(error.find("machine index"), std::string::npos) << error;
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;

  // Out-of-range scheduling class.
  SaveCellTraceBinary(original, path);
  const uint8_t bad_class = 200;
  CorruptAt(path, arena + layout.sched_class, &bad_class, sizeof(bad_class));
  error.clear();
  EXPECT_FALSE(LoadMapped(path, &error).has_value());
  EXPECT_NE(error.find("scheduling class"), std::string::npos) << error;

  // CSR task list must be a permutation: duplicate an entry.
  SaveCellTraceBinary(original, path);
  int32_t first_task = 0;
  {
    std::ifstream in(path, std::ios::binary);
    in.seekg(static_cast<std::streamoff>(arena + layout.csr_tasks));
    in.read(reinterpret_cast<char*>(&first_task), sizeof(first_task));
  }
  CorruptAt(path, arena + layout.csr_tasks + sizeof(int32_t), &first_task, sizeof(first_task));
  error.clear();
  EXPECT_FALSE(LoadMapped(path, &error).has_value());
  EXPECT_NE(error.find("repeats task"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(MappedTraceTest, ResidencyAndPageHints) {
  const CellTrace original = SmallCell(7);
  const std::string path = TempPath("hints.crftrace");
  SaveCellTraceBinary(original, path);
  std::string error;
  const auto heap = LoadCellTrace(path, {TraceLoadMode::kHeap}, &error);
  ASSERT_TRUE(heap.has_value()) << error;
  const auto mapped = LoadMapped(path, &error);
  ASSERT_TRUE(mapped.has_value()) << error;

  // Heap arenas are fully resident by definition; a mapping can never report
  // more resident bytes than its size.
  EXPECT_EQ(heap->ResidentArenaBytes(),
            static_cast<int64_t>(heap->arena_bytes().size()));
  EXPECT_GE(mapped->ResidentArenaBytes(), 0);
  EXPECT_LE(mapped->ResidentArenaBytes(),
            static_cast<int64_t>(mapped->arena_bytes().size()));

  // The residency hints never change observable content, mapped or not, and
  // dropped pages must refault transparently.
  for (int m = 0; m < mapped->num_machines(); ++m) {
    mapped->PrefetchMachinePages(m);
    mapped->DropMachinePages(m);
    heap->PrefetchMachinePages(m);  // no-op on heap arenas
    heap->DropMachinePages(m);
  }
  for (int32_t i = 0; i < mapped->num_tasks(); ++i) {
    const auto ua = heap->task(i).usage();
    const auto ub = mapped->task(i).usage();
    ASSERT_EQ(ua.size(), ub.size());
    for (size_t k = 0; k < ub.size(); ++k) {
      EXPECT_EQ(ua[k], ub[k]);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace crf
