// Differential test: the fused, allocation-free simulation engine against a
// deliberately naive reference simulator (per-interval resident-set rescan,
// per-interval limit re-summation, brute-force O(T*H*N) oracle straight from
// the Section 3.1 definition). Both must produce the same MachineMetrics and
// SimResult — exactly for the integer counters, within 1e-12 for the
// floating-point aggregates — across seeded random traces covering staggered
// arrivals/departures, empty machines, single-interval tasks, every oracle
// kind, and the oracle cache.

#include "crf/sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "crf/core/predictor_factory.h"
#include "crf/trace/trace_builder.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

constexpr double kTol = 1e-12;

// ----- Naive reference engine (test-only, no sharing with the fused path
// beyond the predictor implementations themselves). -----

// Violation predicate copied from the engine contract (simulator.cc keeps
// its own private copy; the tolerance is part of the documented metric).
bool RefIsViolation(double prediction, double oracle) {
  return prediction < oracle * (1.0 - 1e-9) - 1e-12;
}

// Brute-force arrival-filtered peak oracle, O(T * H * N).
std::vector<double> BruteForcePeakOracle(const CellTrace& cell, int machine,
                                         Interval horizon) {
  std::vector<double> oracle(cell.num_intervals, 0.0);
  for (Interval tau = 0; tau < cell.num_intervals; ++tau) {
    double best = 0.0;
    const Interval end = std::min<Interval>(cell.num_intervals, tau + horizon);
    for (Interval t = tau; t < end; ++t) {
      double total = 0.0;
      for (const int32_t index : cell.machine_tasks(machine)) {
        const TaskView task = cell.task(index);
        if (task.start() <= tau) {
          total += task.UsageAt(t);
        }
      }
      best = std::max(best, total);
    }
    oracle[tau] = best;
  }
  return oracle;
}

// Brute-force unfiltered total-usage oracle, O(T * H * N).
std::vector<double> BruteForceTotalUsageOracle(const CellTrace& cell, int machine,
                                               Interval horizon) {
  std::vector<double> oracle(cell.num_intervals, 0.0);
  for (Interval tau = 0; tau < cell.num_intervals; ++tau) {
    double best = 0.0;
    const Interval end = std::min<Interval>(cell.num_intervals, tau + horizon);
    for (Interval t = tau; t < end; ++t) {
      double total = 0.0;
      for (const int32_t index : cell.machine_tasks(machine)) {
        total += cell.task(index).UsageAt(t);
      }
      best = std::max(best, total);
    }
    oracle[tau] = best;
  }
  return oracle;
}

// Per-interval rescan simulator: re-derives the resident set and re-sums
// limits from scratch every interval. Feeds the predictor tasks in arrival
// order (the engine's documented sample order).
MachineMetrics NaiveSimulateMachine(const CellTrace& cell, int machine_index,
                                    const PredictorSpec& spec, const SimOptions& options,
                                    std::vector<double>* cell_limit,
                                    std::vector<double>* cell_prediction) {
  const Interval num_intervals = cell.num_intervals;
  const std::vector<double> oracle =
      options.use_total_usage_oracle
          ? BruteForceTotalUsageOracle(cell, machine_index, options.horizon)
          : BruteForcePeakOracle(cell, machine_index, options.horizon);

  auto predictor = CreatePredictor(spec);

  const std::span<const int32_t> machine_tasks = cell.machine_tasks(machine_index);
  std::vector<int32_t> order(machine_tasks.begin(), machine_tasks.end());
  const std::span<const Interval> starts = cell.task_starts();
  std::sort(order.begin(), order.end(),
            [starts](int32_t a, int32_t b) { return starts[a] < starts[b]; });

  MachineMetrics metrics;
  metrics.machine_index = machine_index;
  metrics.intervals = num_intervals;

  double severity_sum = 0.0;
  double savings_sum = 0.0;
  double prediction_sum = 0.0;
  double limit_sum_total = 0.0;

  for (Interval tau = 0; tau < num_intervals; ++tau) {
    // Full rescan: a task is resident over [start, departure()) — the
    // sealed TaskView owns the zero-length-task rule (resident exactly one
    // interval).
    std::vector<TaskSample> samples;
    double limit_sum = 0.0;
    for (const int32_t index : order) {
      const TaskView task = cell.task(index);
      if (task.ResidentAt(tau)) {
        samples.push_back({task.task_id(), task.UsageAt(tau), task.limit()});
        limit_sum += task.limit();
      }
    }

    predictor->Observe(tau, samples);
    const double prediction = predictor->PredictPeak();
    const double oracle_value = oracle[tau];

    if (RefIsViolation(prediction, oracle_value)) {
      ++metrics.violations;
      severity_sum += (oracle_value - prediction) / oracle_value;
    }
    if (!samples.empty()) {
      ++metrics.occupied_intervals;
      savings_sum += (limit_sum - prediction) / limit_sum;
    }
    prediction_sum += prediction;
    limit_sum_total += limit_sum;
    if (cell_limit != nullptr) {
      (*cell_limit)[tau] += limit_sum;
    }
    if (cell_prediction != nullptr) {
      (*cell_prediction)[tau] += prediction;
    }
  }

  if (num_intervals > 0) {
    metrics.mean_violation_severity = severity_sum / num_intervals;
    metrics.mean_prediction = prediction_sum / num_intervals;
    metrics.mean_limit = limit_sum_total / num_intervals;
  }
  if (metrics.occupied_intervals > 0) {
    metrics.savings_ratio = savings_sum / static_cast<double>(metrics.occupied_intervals);
  }
  return metrics;
}

SimResult NaiveSimulateCell(const CellTrace& cell, const PredictorSpec& spec,
                            const SimOptions& options) {
  SimResult result;
  result.cell_name = cell.name;
  result.predictor_name = spec.Name();
  result.machines.resize(cell.num_machines());

  std::vector<double> cell_limit(cell.num_intervals, 0.0);
  std::vector<double> cell_prediction(cell.num_intervals, 0.0);
  for (int m = 0; m < cell.num_machines(); ++m) {
    result.machines[m] =
        NaiveSimulateMachine(cell, m, spec, options, &cell_limit, &cell_prediction);
  }
  for (Interval t = 0; t < cell.num_intervals; ++t) {
    if (cell_limit[t] > 0.0) {
      result.cell_savings_series.push_back((cell_limit[t] - cell_prediction[t]) /
                                           cell_limit[t]);
    }
  }
  return result;
}

// ----- Random trace construction. -----

// Small cells with adversarial shapes: staggered arrivals/departures,
// machines left entirely empty, single-interval tasks, tasks alive past the
// end of the simulated period, and zero-usage single-sample tasks.
CellTrace RandomCell(uint64_t seed) {
  Rng rng(seed);
  const Interval num_intervals = 30 + static_cast<Interval>(rng.UniformInt(31));  // 30..60
  const int num_machines = 1 + static_cast<int>(rng.UniformInt(4));               // 1..4
  CellTraceBuilder builder("diff_cell", num_intervals, num_machines);

  TaskId next_id = 1;
  for (int m = 0; m < num_machines; ++m) {
    if (rng.UniformDouble() < 0.15) {
      continue;  // Empty machine.
    }
    const int num_tasks = 1 + static_cast<int>(rng.UniformInt(14));
    for (int i = 0; i < num_tasks; ++i) {
      const TaskId id = next_id++;
      const Interval start = static_cast<Interval>(rng.UniformInt(num_intervals));
      const double limit = 0.05 + rng.UniformDouble() * 0.95;
      Interval len;
      const double shape = rng.UniformDouble();
      if (shape < 0.2) {
        len = 1;  // Single-interval task.
      } else if (shape < 0.3) {
        // Runs past the end of the simulated period.
        len = num_intervals - start + 1 + static_cast<Interval>(rng.UniformInt(5));
      } else {
        len = 1 + static_cast<Interval>(rng.UniformInt(num_intervals - start));
      }
      const int32_t index =
          builder.AddTask(id, id, m, start, limit, SchedulingClass::kLatencySensitive);
      builder.ReserveUsage(index, static_cast<size_t>(len));
      for (Interval k = 0; k < len; ++k) {
        builder.AppendUsage(index, static_cast<float>(limit * rng.UniformDouble()));
      }
    }
  }
  return builder.Seal();
}

PredictorConfig FastConfig() {
  PredictorConfig config;
  config.min_num_samples = 3;
  config.max_num_samples = 8;
  return config;
}

// The predictor roster cycled across traces: every family, with a short
// warm-up/history so the small traces exercise warmed and warming regimes.
PredictorSpec SpecForCase(int index) {
  switch (index % 5) {
    case 0:
      return LimitSumSpec();
    case 1:
      return BorgDefaultSpec(0.9);
    case 2:
      return NSigmaSpec(3.0, FastConfig().min_num_samples, FastConfig().max_num_samples);
    case 3:
      return RcLikeSpec(95.0, FastConfig().min_num_samples, FastConfig().max_num_samples);
    default:
      return MaxSpec({NSigmaSpec(5.0, 3, 8), RcLikeSpec(99.0, 3, 8)});
  }
}

void ExpectMetricsMatch(const MachineMetrics& fused, const MachineMetrics& naive,
                        uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "seed=" << seed
                                    << " machine=" << naive.machine_index);
  EXPECT_EQ(fused.machine_index, naive.machine_index);
  EXPECT_EQ(fused.intervals, naive.intervals);
  EXPECT_EQ(fused.occupied_intervals, naive.occupied_intervals);
  EXPECT_EQ(fused.violations, naive.violations);
  EXPECT_NEAR(fused.mean_violation_severity, naive.mean_violation_severity, kTol);
  EXPECT_NEAR(fused.savings_ratio, naive.savings_ratio, kTol);
  EXPECT_NEAR(fused.mean_prediction, naive.mean_prediction, kTol);
  EXPECT_NEAR(fused.mean_limit, naive.mean_limit, kTol);
}

void ExpectResultsMatch(const SimResult& fused, const SimResult& naive, uint64_t seed) {
  ASSERT_EQ(fused.machines.size(), naive.machines.size());
  for (size_t m = 0; m < fused.machines.size(); ++m) {
    ExpectMetricsMatch(fused.machines[m], naive.machines[m], seed);
  }
  ASSERT_EQ(fused.cell_savings_series.size(), naive.cell_savings_series.size())
      << "seed=" << seed;
  for (size_t t = 0; t < fused.cell_savings_series.size(); ++t) {
    EXPECT_NEAR(fused.cell_savings_series[t], naive.cell_savings_series[t], kTol)
        << "seed=" << seed << " t=" << t;
  }
  EXPECT_EQ(fused.cell_name, naive.cell_name);
  EXPECT_EQ(fused.predictor_name, naive.predictor_name);
}

class SimulatorDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorDifferentialTest, FusedMatchesNaiveReference) {
  const int case_index = GetParam();
  const uint64_t seed = 1000 + static_cast<uint64_t>(case_index);
  const CellTrace cell = RandomCell(seed);
  const PredictorSpec spec = SpecForCase(case_index);

  SimOptions options;
  options.use_total_usage_oracle = case_index % 4 == 3;
  switch (case_index % 3) {
    case 0:
      options.horizon = 1;
      break;
    case 1:
      options.horizon = 6;
      break;
    default:
      options.horizon = cell.num_intervals + 4;  // Covers the whole future.
      break;
  }

  // Serial fused engine.
  SimOptions serial = options;
  serial.parallel = false;
  ExpectResultsMatch(SimulateCell(cell, spec, serial), NaiveSimulateCell(cell, spec, serial),
                     seed);

  // Parallel fused engine with a shared oracle cache, run twice so the
  // second pass exercises the cache-hit path end to end.
  OracleCache cache;
  SimOptions parallel_cached = options;
  parallel_cached.parallel = true;
  parallel_cached.oracle_cache = &cache;
  const SimResult naive = NaiveSimulateCell(cell, spec, options);
  ExpectResultsMatch(SimulateCell(cell, spec, parallel_cached), naive, seed);
  ExpectResultsMatch(SimulateCell(cell, spec, parallel_cached), naive, seed);
  EXPECT_GT(cache.hits(), 0) << "second pass should hit the cache";
}

INSTANTIATE_TEST_SUITE_P(FiftyRandomTraces, SimulatorDifferentialTest,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace crf
