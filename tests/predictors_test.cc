#include <gtest/gtest.h>

#include <vector>

#include "crf/core/borg_default_predictor.h"
#include "crf/core/limit_sum_predictor.h"
#include "crf/core/max_predictor.h"
#include "crf/core/n_sigma_predictor.h"
#include "crf/core/predictor_factory.h"
#include "crf/core/rc_like_predictor.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

PredictorConfig FastConfig(Interval warmup = 3, Interval history = 10) {
  PredictorConfig config;
  config.min_num_samples = warmup;
  config.max_num_samples = history;
  return config;
}

std::vector<TaskSample> Tasks(std::vector<std::pair<double, double>> usage_limit) {
  std::vector<TaskSample> samples;
  TaskId id = 1;
  for (const auto& [usage, limit] : usage_limit) {
    samples.push_back({id++, usage, limit});
  }
  return samples;
}

TEST(ClampPredictionTest, ClampsBothSides) {
  EXPECT_DOUBLE_EQ(ClampPrediction(5.0, 1.0, 3.0), 3.0);   // Above limit sum.
  EXPECT_DOUBLE_EQ(ClampPrediction(0.5, 1.0, 3.0), 1.0);   // Below current usage.
  EXPECT_DOUBLE_EQ(ClampPrediction(2.0, 1.0, 3.0), 2.0);   // In range.
  EXPECT_DOUBLE_EQ(ClampPrediction(9.0, 5.0, 3.0), 3.0);   // usage > limits: limit wins.
}

TEST(ClampPredictionTest, EdgeCases) {
  // Empty machine: everything is zero, prediction pinned to zero.
  EXPECT_DOUBLE_EQ(ClampPrediction(0.0, 0.0, 0.0), 0.0);
  // A negative raw prediction (possible from mean - correction style
  // estimators) clamps up to current usage.
  EXPECT_DOUBLE_EQ(ClampPrediction(-2.0, 0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(ClampPrediction(-2.0, 0.4, 3.0), 0.4);
  // Boundary equalities pass through untouched.
  EXPECT_DOUBLE_EQ(ClampPrediction(1.0, 1.0, 3.0), 1.0);  // raw == usage_now
  EXPECT_DOUBLE_EQ(ClampPrediction(3.0, 1.0, 3.0), 3.0);  // raw == limit_sum
  EXPECT_DOUBLE_EQ(ClampPrediction(2.0, 2.0, 2.0), 2.0);  // fully degenerate
  // Zero limits with nonzero usage (overcommitted beyond enforcement):
  // the limit cap still wins.
  EXPECT_DOUBLE_EQ(ClampPrediction(5.0, 1.0, 0.0), 0.0);
}

TEST(LimitSumPredictorTest, SumsLimits) {
  LimitSumPredictor predictor;
  predictor.Observe(0, Tasks({{0.1, 0.5}, {0.2, 0.7}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 1.2);
  EXPECT_EQ(predictor.name(), "limit-sum");
}

TEST(LimitSumPredictorTest, TracksDepartures) {
  LimitSumPredictor predictor;
  predictor.Observe(0, Tasks({{0.1, 0.5}, {0.2, 0.7}}));
  predictor.Observe(1, Tasks({{0.1, 0.5}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.5);
}

TEST(LimitSumPredictorTest, EmptyMachinePredictsZero) {
  LimitSumPredictor predictor;
  predictor.Observe(0, {});
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.0);
}

TEST(BorgDefaultPredictorTest, ScalesLimitSum) {
  BorgDefaultPredictor predictor(0.9);
  predictor.Observe(0, Tasks({{0.1, 1.0}, {0.1, 1.0}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 1.8);
  EXPECT_EQ(predictor.name(), "borg-default-0.90");
}

TEST(BorgDefaultPredictorTest, NeverBelowCurrentUsage) {
  BorgDefaultPredictor predictor(0.5);
  predictor.Observe(0, Tasks({{0.9, 1.0}}));
  // 0.5 * 1.0 = 0.5 < current usage 0.9; clamped up.
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.9);
}

TEST(BorgDefaultPredictorTest, PhiOneIsNoOvercommit) {
  BorgDefaultPredictor predictor(1.0);
  predictor.Observe(0, Tasks({{0.2, 0.6}, {0.1, 0.4}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 1.0);
}

TEST(BorgDefaultPredictorDeathTest, RejectsInvalidPhi) {
  EXPECT_DEATH(BorgDefaultPredictor(0.0), "CHECK failed");
  EXPECT_DEATH(BorgDefaultPredictor(1.5), "CHECK failed");
}

TEST(RcLikePredictorTest, WarmupUsesLimit) {
  RcLikePredictor predictor(95.0, FastConfig(/*warmup=*/3));
  predictor.Observe(0, Tasks({{0.1, 0.8}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.8);
  predictor.Observe(1, Tasks({{0.1, 0.8}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.8);
  // Third sample completes the warm-up: prediction becomes the percentile of
  // the constant stream.
  predictor.Observe(2, Tasks({{0.1, 0.8}}));
  EXPECT_NEAR(predictor.PredictPeak(), 0.1, 1e-6);
}

TEST(RcLikePredictorTest, PercentileOverWindow) {
  RcLikePredictor predictor(50.0, FastConfig(/*warmup=*/1, /*history=*/100));
  // Descending so the clamp to current usage (the final 0) does not mask the
  // percentile.
  for (Interval t = 0; t < 5; ++t) {
    predictor.Observe(t, Tasks({{static_cast<double>(4 - t), 10.0}}));
  }
  // Median of {4,3,2,1,0} is 2.
  EXPECT_NEAR(predictor.PredictPeak(), 2.0, 1e-9);
}

TEST(RcLikePredictorTest, DepartedTaskStateDropped) {
  RcLikePredictor predictor(99.0, FastConfig(/*warmup=*/1));
  predictor.Observe(0, Tasks({{0.5, 1.0}, {0.3, 1.0}}));
  predictor.Observe(1, {});  // Both departed.
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.0);
  // Re-arrival of the same id starts a fresh warm-up (limit-based).
  RcLikePredictor fresh(99.0, FastConfig(/*warmup=*/2));
  fresh.Observe(0, Tasks({{0.5, 1.0}}));
  fresh.Observe(1, {});
  fresh.Observe(2, Tasks({{0.5, 1.0}}));
  EXPECT_DOUBLE_EQ(fresh.PredictPeak(), 1.0);  // Warming up again.
}

TEST(RcLikePredictorTest, HigherPercentilePredictsHigher) {
  RcLikePredictor p50(50.0, FastConfig(/*warmup=*/1, /*history=*/50));
  RcLikePredictor p99(99.0, FastConfig(/*warmup=*/1, /*history=*/50));
  Rng rng(80);
  for (Interval t = 0; t < 50; ++t) {
    const auto tasks = Tasks({{rng.UniformDouble(), 2.0}});
    p50.Observe(t, tasks);
    p99.Observe(t, tasks);
  }
  EXPECT_LT(p50.PredictPeak(), p99.PredictPeak());
}

TEST(RcLikePredictorTest, NameIncludesPercentile) {
  RcLikePredictor predictor(95.0, FastConfig());
  EXPECT_EQ(predictor.name(), "rc-like-p95");
}

TEST(NSigmaPredictorTest, ConstantUsageConverges) {
  NSigmaPredictor predictor(5.0, FastConfig(/*warmup=*/2, /*history=*/20));
  for (Interval t = 0; t < 30; ++t) {
    predictor.Observe(t, Tasks({{0.4, 1.0}}));
  }
  // Zero variance: prediction = mean = 0.4.
  EXPECT_NEAR(predictor.PredictPeak(), 0.4, 1e-9);
}

TEST(NSigmaPredictorTest, WarmingTasksContributeLimit) {
  NSigmaPredictor predictor(3.0, FastConfig(/*warmup=*/5, /*history=*/20));
  predictor.Observe(0, Tasks({{0.1, 0.7}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.7);
}

TEST(NSigmaPredictorTest, HigherNPredictsHigher) {
  Rng rng(81);
  NSigmaPredictor n2(2.0, FastConfig(/*warmup=*/1, /*history=*/50));
  NSigmaPredictor n10(10.0, FastConfig(/*warmup=*/1, /*history=*/50));
  for (Interval t = 0; t < 60; ++t) {
    const auto tasks = Tasks({{0.3 + 0.1 * rng.Normal(), 5.0}});
    n2.Observe(t, tasks);
    n10.Observe(t, tasks);
  }
  EXPECT_LT(n2.PredictPeak(), n10.PredictPeak());
}

TEST(NSigmaPredictorTest, ClampedToLimitSum) {
  NSigmaPredictor predictor(10.0, FastConfig(/*warmup=*/1, /*history=*/10));
  Rng rng(82);
  for (Interval t = 0; t < 20; ++t) {
    predictor.Observe(t, Tasks({{rng.UniformDouble() * 0.5, 0.5}}));
  }
  EXPECT_LE(predictor.PredictPeak(), 0.5 + 1e-12);
}

TEST(NSigmaPredictorTest, Name) {
  NSigmaPredictor predictor(5.0, FastConfig());
  EXPECT_EQ(predictor.name(), "n-sigma-5");
}

// The warm-up boundary is exact: with min_num_samples = 3, a task still
// contributes its limit after 2 samples and switches to usage-driven on the
// observation where its 3rd sample lands.
TEST(NSigmaPredictorTest, WarmupBoundaryIsExact) {
  NSigmaPredictor predictor(5.0, FastConfig(/*warmup=*/3, /*history=*/10));
  // Constant zero usage makes the warmed prediction exactly 0, so the
  // limit-vs-usage switch is unmistakable.
  predictor.Observe(0, Tasks({{0.0, 0.8}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.8);  // 1 sample: warming.
  predictor.Observe(1, Tasks({{0.0, 0.8}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.8);  // min_num_samples - 1: warming.
  predictor.Observe(2, Tasks({{0.0, 0.8}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.0);  // min_num_samples: warmed.
}

TEST(RcLikePredictorTest, WarmupBoundaryIsExact) {
  RcLikePredictor predictor(99.0, FastConfig(/*warmup=*/3, /*history=*/10));
  predictor.Observe(0, Tasks({{0.0, 0.8}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.8);
  predictor.Observe(1, Tasks({{0.0, 0.8}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.8);
  predictor.Observe(2, Tasks({{0.0, 0.8}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.0);
}

// Per the Observe contract, a machine whose tasks all depart must release
// its per-task state: the same task id re-arriving starts a fresh warm-up
// instead of inheriting the old sample count.
TEST(NSigmaPredictorTest, AllTasksDepartReleasesState) {
  NSigmaPredictor predictor(5.0, FastConfig(/*warmup=*/2, /*history=*/10));
  predictor.Observe(0, Tasks({{0.0, 0.6}}));
  predictor.Observe(1, Tasks({{0.0, 0.6}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.0);  // Warmed.
  predictor.Observe(2, {});  // Machine empties.
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.0);
  // Same id returns: warm-up restarts from zero samples.
  predictor.Observe(3, Tasks({{0.0, 0.6}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.6);
  predictor.Observe(4, Tasks({{0.0, 0.6}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 0.0);  // Warmed again.
}

// Reset() must behave exactly like a freshly constructed instance with the
// same configuration — the contract the simulator's predictor pool relies on.
TEST(PredictorResetTest, ResetEqualsFreshInstance) {
  Rng rng(83);
  const std::vector<PredictorSpec> specs = {
      LimitSumSpec(), BorgDefaultSpec(0.8), NSigmaSpec(4.0, 2, 8), RcLikeSpec(95.0, 2, 8),
      AutopilotSpec(98.0, 1.1, 2, 8), MaxSpec({NSigmaSpec(3.0, 2, 8), RcLikeSpec(90.0, 2, 8)})};
  for (const PredictorSpec& spec : specs) {
    SCOPED_TRACE(spec.Name());
    auto pooled = CreatePredictor(spec);
    // Pollute with one machine's history, then Reset.
    for (Interval t = 0; t < 12; ++t) {
      pooled->Observe(t, Tasks({{rng.UniformDouble(), 1.0}, {rng.UniformDouble(), 0.5}}));
    }
    pooled->Reset();

    auto fresh = CreatePredictor(spec);
    Rng replay(84);
    for (Interval t = 0; t < 12; ++t) {
      const double u1 = replay.UniformDouble();
      const double u2 = replay.UniformDouble();
      const auto tasks = Tasks({{u1, 0.9}, {u2, 0.7}});
      pooled->Observe(t, tasks);
      fresh->Observe(t, tasks);
      EXPECT_DOUBLE_EQ(pooled->PredictPeak(), fresh->PredictPeak()) << "t=" << t;
    }
  }
}

TEST(MaxPredictorTest, TakesPointwiseMax) {
  std::vector<std::unique_ptr<PeakPredictor>> components;
  components.push_back(std::make_unique<BorgDefaultPredictor>(0.5));
  components.push_back(std::make_unique<LimitSumPredictor>());
  MaxPredictor predictor(std::move(components));
  predictor.Observe(0, Tasks({{0.1, 1.0}}));
  EXPECT_DOUBLE_EQ(predictor.PredictPeak(), 1.0);  // limit-sum dominates.
  EXPECT_EQ(predictor.name(), "max(borg-default-0.50,limit-sum)");
}

TEST(MaxPredictorTest, AtLeastEachComponent) {
  Rng rng(83);
  auto make = [] {
    std::vector<std::unique_ptr<PeakPredictor>> components;
    components.push_back(
        std::make_unique<NSigmaPredictor>(3.0, FastConfig(/*warmup=*/2, /*history=*/20)));
    components.push_back(
        std::make_unique<RcLikePredictor>(90.0, FastConfig(/*warmup=*/2, /*history=*/20)));
    return std::make_unique<MaxPredictor>(std::move(components));
  };
  auto max_predictor = make();
  NSigmaPredictor n_sigma(3.0, FastConfig(2, 20));
  RcLikePredictor rc(90.0, FastConfig(2, 20));
  for (Interval t = 0; t < 40; ++t) {
    const auto tasks =
        Tasks({{rng.UniformDouble() * 0.5, 0.8}, {rng.UniformDouble() * 0.3, 0.4}});
    max_predictor->Observe(t, tasks);
    n_sigma.Observe(t, tasks);
    rc.Observe(t, tasks);
    EXPECT_GE(max_predictor->PredictPeak(), n_sigma.PredictPeak() - 1e-12);
    EXPECT_GE(max_predictor->PredictPeak(), rc.PredictPeak() - 1e-12);
  }
}

TEST(MaxPredictorDeathTest, RequiresComponents) {
  EXPECT_DEATH(MaxPredictor({}), "CHECK failed");
}

}  // namespace
}  // namespace crf
