#include "crf/stats/correlation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "crf/util/rng.h"

namespace crf {
namespace {

TEST(PearsonTest, PerfectPositiveAndNegative) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  const std::vector<double> z{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateInputsReturnZero) {
  const std::vector<double> x{1.0};
  const std::vector<double> y{2.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
  const std::vector<double> constant{3.0, 3.0, 3.0};
  const std::vector<double> varying{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(constant, varying), 0.0);
}

TEST(FractionalRanksTest, SimpleOrdering) {
  const std::vector<double> v{30.0, 10.0, 20.0};
  const std::vector<double> ranks = FractionalRanks(v);
  EXPECT_DOUBLE_EQ(ranks[0], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(FractionalRanksTest, TiesGetAverageRank) {
  const std::vector<double> v{1.0, 2.0, 2.0, 3.0};
  const std::vector<double> ranks = FractionalRanks(v);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(SpearmanTest, InvariantUnderMonotoneTransform) {
  Rng rng(20);
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> y_transformed;
  for (int i = 0; i < 300; ++i) {
    const double xi = rng.Normal(0.0, 1.0);
    const double yi = xi + rng.Normal(0.0, 0.5);
    x.push_back(xi);
    y.push_back(yi);
    y_transformed.push_back(std::exp(3.0 * yi));  // Strictly increasing map.
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), SpearmanCorrelation(x, y_transformed), 1e-12);
}

TEST(SpearmanTest, PerfectMonotoneIsOne) {
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(i * i);  // Monotone but nonlinear.
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(FitLineTest, ExactLine) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y{1.0, 3.0, 5.0, 7.0};
  const LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineRecoversSlope) {
  Rng rng(21);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 2000; ++i) {
    const double xi = rng.UniformDouble();
    x.push_back(xi);
    y.push_back(14.1 * xi + 1.0 + rng.Normal(0.0, 0.2));
  }
  const LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 14.1, 0.15);
  EXPECT_NEAR(fit.intercept, 1.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(FitLineTest, DegenerateReturnsZero) {
  const std::vector<double> x{1.0, 1.0};
  const std::vector<double> y{2.0, 4.0};
  const LinearFit fit = FitLine(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

}  // namespace
}  // namespace crf
