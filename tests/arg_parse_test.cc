// Validated CLI flag parsing (crf/util/arg_parse.h): the full token must be
// numeric and in range; malformed values produce spec_parser-style errors
// naming the flag and the offending text instead of silently falling back.

#include "crf/util/arg_parse.h"

#include <gtest/gtest.h>

#include <string>

namespace crf {
namespace {

TEST(ParseIntFlagTest, AcceptsInRangeIntegers) {
  int64_t value = 0;
  std::string error;
  EXPECT_TRUE(ParseIntFlag("threads", "8", 0, 1024, &value, &error));
  EXPECT_EQ(value, 8);
  EXPECT_TRUE(ParseIntFlag("threads", "0", 0, 1024, &value, &error));
  EXPECT_EQ(value, 0);
  EXPECT_TRUE(ParseIntFlag("until", "-1", -1, 100, &value, &error));
  EXPECT_EQ(value, -1);
}

TEST(ParseIntFlagTest, RejectsGarbageWithFlagNameInError) {
  int64_t value = 0;
  std::string error;
  EXPECT_FALSE(ParseIntFlag("threads", "abc", 0, 1024, &value, &error));
  EXPECT_EQ(error, "--threads value \"abc\" is not an integer");
  EXPECT_FALSE(ParseIntFlag("threads", "8x", 0, 1024, &value, &error));
  EXPECT_NE(error.find("\"8x\""), std::string::npos);
  EXPECT_FALSE(ParseIntFlag("threads", "", 0, 1024, &value, &error));
  EXPECT_NE(error.find("must not be empty"), std::string::npos);
  EXPECT_FALSE(ParseIntFlag("threads", "4.5", 0, 1024, &value, &error));
  EXPECT_FALSE(ParseIntFlag("threads", "99999999999999999999999", 0, 1024, &value, &error));
}

TEST(ParseIntFlagTest, RejectsOutOfRangeWithBounds) {
  int64_t value = 0;
  std::string error;
  EXPECT_FALSE(ParseIntFlag("shards", "0", 1, 65536, &value, &error));
  EXPECT_EQ(error, "--shards value \"0\" must be in [1, 65536]");
  EXPECT_FALSE(ParseIntFlag("shards", "-3", 1, 65536, &value, &error));
  EXPECT_FALSE(ParseIntFlag("shards", "70000", 1, 65536, &value, &error));
}

TEST(ParseDoubleFlagTest, AcceptsFiniteAndRejectsNonFinite) {
  double value = 0.0;
  std::string error;
  EXPECT_TRUE(ParseDoubleFlag("phi", "0.95", 0.0, 1.0, &value, &error));
  EXPECT_DOUBLE_EQ(value, 0.95);
  EXPECT_FALSE(ParseDoubleFlag("phi", "nan", 0.0, 1.0, &value, &error));
  EXPECT_FALSE(ParseDoubleFlag("phi", "inf", 0.0, 1.0, &value, &error));
  EXPECT_FALSE(ParseDoubleFlag("phi", "1.5", 0.0, 1.0, &value, &error));
  EXPECT_FALSE(ParseDoubleFlag("phi", "x", 0.0, 1.0, &value, &error));
  EXPECT_NE(error.find("--phi"), std::string::npos);
}

TEST(ParseHostPortFlagTest, AcceptsAllThreeForms) {
  std::string error;
  HostPort value;
  EXPECT_TRUE(ParseHostPortFlag("listen", "10.0.0.2:8080", &value, &error));
  EXPECT_EQ(value.host, "10.0.0.2");
  EXPECT_EQ(value.port, 8080);

  value = HostPort{};
  EXPECT_TRUE(ParseHostPortFlag("listen", ":9090", &value, &error));
  EXPECT_EQ(value.host, "127.0.0.1");  // omitted host keeps the default
  EXPECT_EQ(value.port, 9090);

  value = HostPort{};
  EXPECT_TRUE(ParseHostPortFlag("listen", "0", &value, &error));
  EXPECT_EQ(value.host, "127.0.0.1");
  EXPECT_EQ(value.port, 0);  // ephemeral
}

TEST(ParseHostPortFlagTest, RejectsBadHostsAndPorts) {
  std::string error;
  HostPort value;
  EXPECT_FALSE(ParseHostPortFlag("listen", "", &value, &error));
  EXPECT_FALSE(ParseHostPortFlag("listen", "localhost:80", &value, &error));
  EXPECT_NE(error.find("numeric IPv4"), std::string::npos);
  EXPECT_FALSE(ParseHostPortFlag("listen", "300.1.1.1:80", &value, &error));
  EXPECT_FALSE(ParseHostPortFlag("listen", "1.2.3:80", &value, &error));
  EXPECT_FALSE(ParseHostPortFlag("listen", "1.2.3.4.5:80", &value, &error));
  EXPECT_FALSE(ParseHostPortFlag("listen", "1.2.3.4:", &value, &error));
  EXPECT_FALSE(ParseHostPortFlag("listen", "1.2.3.4:x", &value, &error));
  EXPECT_FALSE(ParseHostPortFlag("listen", "1.2.3.4:70000", &value, &error));
  EXPECT_NE(error.find("[0, 65535]"), std::string::npos);
}

}  // namespace
}  // namespace crf
