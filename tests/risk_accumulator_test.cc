// RiskAccumulator (crf/risk) against a naive reference.
//
// The accumulator's contract has two halves:
//  * mean-level counters and sums must reproduce the seed engines'
//    hand-rolled accounting exactly (the four engine differentials pin the
//    end-to-end paths; here the arithmetic itself is pinned against a
//    transparent reference under randomized churn);
//  * tail metrics (severity/streak quantiles, violation-time fraction,
//    savings-at-risk) must match independently-fed P² estimators and a
//    naive streak tracker, across edge cases: no records at all, empty
//    (never-occupied) machines, all-violating and never-violating streams,
//    and the single-sample regime where P² falls back to its sorted buffer.
//
// Checkpoint state is round-tripped at random cut points (restored
// accumulator continues bit-identically) and fuzzed for corruption
// (truncation and bit flips are rejected, never a crash).

#include "crf/risk/risk_accumulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "crf/stats/p2_quantile.h"
#include "crf/util/byte_io.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

// Transparent reference: buffers every interval and recomputes everything
// from scratch. Mirrors the seed engines' loop arithmetic line for line.
struct NaiveReference {
  int64_t intervals = 0;
  int64_t violations = 0;
  int64_t occupied_intervals = 0;
  int64_t occupied_violations = 0;
  double severity_sum = 0.0;
  double savings_sum = 0.0;
  double prediction_sum = 0.0;
  double limit_sum_total = 0.0;

  int64_t current_streak = 0;
  int64_t max_streak = 0;
  std::vector<int64_t> completed_streaks;

  // Independently-fed estimators: same inputs in the same order as the
  // accumulator's internal ones, so the tail values must be bit-identical.
  P2Quantile severity_p99{0.99};
  P2Quantile severity_p999{0.999};
  P2Quantile streak_p99{0.99};
  P2Quantile streak_p999{0.999};
  P2Quantile savings_p05{0.05};

  void Record(double prediction, double oracle, double limit_sum, bool occupied) {
    if (IsPeakViolation(prediction, oracle)) {
      ++violations;
      const double severity = (oracle - prediction) / oracle;
      severity_sum += severity;
      severity_p99.Add(severity);
      severity_p999.Add(severity);
      ++current_streak;
      if (occupied) {
        ++occupied_violations;
      }
    } else if (current_streak > 0) {
      max_streak = std::max(max_streak, current_streak);
      completed_streaks.push_back(current_streak);
      streak_p99.Add(static_cast<double>(current_streak));
      streak_p999.Add(static_cast<double>(current_streak));
      current_streak = 0;
    }
    if (occupied) {
      ++occupied_intervals;
      const double savings = (limit_sum - prediction) / limit_sum;
      savings_sum += savings;
      savings_p05.Add(savings);
    }
    prediction_sum += prediction;
    limit_sum_total += limit_sum;
    ++intervals;
  }
};

void ExpectMatchesReference(const RiskAccumulator& risk, const NaiveReference& ref) {
  EXPECT_EQ(risk.intervals(), ref.intervals);
  EXPECT_EQ(risk.violations(), ref.violations);
  EXPECT_EQ(risk.occupied_intervals(), ref.occupied_intervals);
  EXPECT_EQ(risk.occupied_violations(), ref.occupied_violations);
  EXPECT_EQ(risk.severity_sum(), ref.severity_sum);
  EXPECT_EQ(risk.savings_sum(), ref.savings_sum);
  EXPECT_EQ(risk.prediction_sum(), ref.prediction_sum);
  EXPECT_EQ(risk.limit_sum_total(), ref.limit_sum_total);
  EXPECT_EQ(risk.completed_streaks(), static_cast<int64_t>(ref.completed_streaks.size()));

  const RiskTailSummary tail = risk.TailSummary();
  EXPECT_EQ(tail.max_violation_streak, std::max(ref.max_streak, ref.current_streak));
  EXPECT_EQ(tail.severity_p99, ref.severity_p99.Value());
  EXPECT_EQ(tail.severity_p999, ref.severity_p999.Value());
  EXPECT_EQ(tail.streak_p99, ref.streak_p99.Value());
  EXPECT_EQ(tail.streak_p999, ref.streak_p999.Value());
  EXPECT_EQ(tail.savings_at_risk, ref.savings_p05.Value());
  const double expected_fraction =
      ref.occupied_intervals > 0
          ? static_cast<double>(ref.occupied_violations) /
                static_cast<double>(ref.occupied_intervals)
          : 0.0;
  EXPECT_EQ(tail.violation_time_fraction, expected_fraction);
}

TEST(RiskAccumulatorTest, FreshAccumulatorReportsZeros) {
  const RiskAccumulator risk;
  EXPECT_EQ(risk.intervals(), 0);
  EXPECT_EQ(risk.violations(), 0);
  EXPECT_EQ(risk.occupied_intervals(), 0);
  const RiskTailSummary tail = risk.TailSummary();
  EXPECT_EQ(tail.severity_p99, 0.0);
  EXPECT_EQ(tail.severity_p999, 0.0);
  EXPECT_EQ(tail.max_violation_streak, 0);
  EXPECT_EQ(tail.streak_p99, 0.0);
  EXPECT_EQ(tail.violation_time_fraction, 0.0);
  EXPECT_EQ(tail.savings_at_risk, 0.0);
}

// An empty machine: never occupied, prediction 0 against oracle 0 — no
// violations, no savings, fractions all zero (never a 0/0 NaN).
TEST(RiskAccumulatorTest, NeverOccupiedMachine) {
  RiskAccumulator risk;
  NaiveReference ref;
  for (int t = 0; t < 50; ++t) {
    risk.Record(0.0, 0.0, 0.0, false);
    ref.Record(0.0, 0.0, 0.0, false);
  }
  ExpectMatchesReference(risk, ref);
  EXPECT_EQ(risk.violations(), 0);
  EXPECT_EQ(risk.TailSummary().violation_time_fraction, 0.0);
  EXPECT_EQ(risk.TailSummary().savings_at_risk, 0.0);
}

// Every interval violates: the stream is one open streak — it must be
// visible through max_violation_streak even though it never closes.
TEST(RiskAccumulatorTest, AllViolatingStreamKeepsOneOpenStreak) {
  RiskAccumulator risk;
  NaiveReference ref;
  const int n = 40;
  for (int t = 0; t < n; ++t) {
    risk.Record(0.5, 1.0, 2.0, true);
    ref.Record(0.5, 1.0, 2.0, true);
  }
  ExpectMatchesReference(risk, ref);
  EXPECT_EQ(risk.violations(), n);
  EXPECT_EQ(risk.completed_streaks(), 0);
  EXPECT_EQ(risk.max_violation_streak(), n);
  EXPECT_EQ(risk.TailSummary().violation_time_fraction, 1.0);
}

// A prediction meeting the oracle exactly (and within the relative
// tolerance) never violates.
TEST(RiskAccumulatorTest, NeverViolatingStream) {
  RiskAccumulator risk;
  NaiveReference ref;
  for (int t = 0; t < 40; ++t) {
    risk.Record(1.0, 1.0, 2.0, true);
    ref.Record(1.0, 1.0, 2.0, true);
    risk.Record(1.0 * (1.0 - 0.5 * kViolationRelTolerance), 1.0, 2.0, true);
    ref.Record(1.0 * (1.0 - 0.5 * kViolationRelTolerance), 1.0, 2.0, true);
  }
  ExpectMatchesReference(risk, ref);
  EXPECT_EQ(risk.violations(), 0);
  EXPECT_EQ(risk.max_violation_streak(), 0);
  EXPECT_EQ(risk.TailSummary().violation_time_fraction, 0.0);
}

// One violating sample: the quantile estimators are in their exact
// (sorted-buffer) regime and must report that single severity.
TEST(RiskAccumulatorTest, SingleSampleQuantilesAreExact) {
  RiskAccumulator risk;
  risk.Record(0.75, 1.0, 2.0, true);
  const RiskTailSummary tail = risk.TailSummary();
  EXPECT_DOUBLE_EQ(tail.severity_p99, 0.25);
  EXPECT_DOUBLE_EQ(tail.severity_p999, 0.25);
  EXPECT_EQ(tail.max_violation_streak, 1);
  EXPECT_DOUBLE_EQ(tail.savings_at_risk, (2.0 - 0.75) / 2.0);
  EXPECT_EQ(tail.violation_time_fraction, 1.0);
}

// Alternating violation/ok closes a streak every other interval.
TEST(RiskAccumulatorTest, AlternatingStreamClosesUnitStreaks) {
  RiskAccumulator risk;
  NaiveReference ref;
  for (int t = 0; t < 30; ++t) {
    const double prediction = t % 2 == 0 ? 0.5 : 1.0;
    risk.Record(prediction, 1.0, 2.0, true);
    ref.Record(prediction, 1.0, 2.0, true);
  }
  ExpectMatchesReference(risk, ref);
  EXPECT_EQ(risk.completed_streaks(), 15);
  EXPECT_EQ(risk.max_violation_streak(), 1);
}

// Randomized churn stress: mixed occupancy, violation bursts, empty
// stretches, Reset() reuse — the accumulator must track the naive reference
// through all of it, checked continuously.
TEST(RiskAccumulatorTest, ChurnStressMatchesNaiveReference) {
  Rng rng(20260808);
  // Reused across rounds via Reset, pinning the pooled-reuse path the
  // simulator workspace depends on: a Reset accumulator must behave exactly
  // like a fresh one.
  RiskAccumulator reused;
  for (int round = 0; round < 5; ++round) {
    RiskAccumulator risk;
    NaiveReference ref;
    reused.Reset();
    const int intervals = 200 + static_cast<int>(rng.UniformInt(200));
    // Bias the stream into bursts so long streaks and long quiet runs both
    // occur.
    bool bursting = false;
    for (int t = 0; t < intervals; ++t) {
      if (rng.UniformDouble() < 0.1) {
        bursting = !bursting;
      }
      const bool occupied = rng.UniformDouble() < 0.8;
      const double limit_sum = occupied ? 0.5 + rng.UniformDouble() * 4.0 : 0.0;
      const double oracle = occupied ? limit_sum * (0.2 + 0.8 * rng.UniformDouble())
                                     : rng.UniformDouble() * 0.01;
      const double undershoot = bursting ? 0.5 + 0.45 * rng.UniformDouble() : 1.0;
      const double prediction = oracle * undershoot * (0.9 + 0.2 * rng.UniformDouble());
      risk.Record(prediction, oracle, limit_sum, occupied);
      reused.Record(prediction, oracle, limit_sum, occupied);
      ref.Record(prediction, oracle, limit_sum, occupied);
      if (t % 37 == 0) {
        ExpectMatchesReference(risk, ref);
      }
    }
    ExpectMatchesReference(risk, ref);
    ExpectMatchesReference(reused, ref);
  }
}

// --- Checkpoint state. ---

void FillRandom(RiskAccumulator& risk, Rng& rng, int intervals) {
  for (int t = 0; t < intervals; ++t) {
    const bool occupied = rng.UniformDouble() < 0.7;
    const double limit_sum = occupied ? 1.0 + rng.UniformDouble() * 3.0 : 0.0;
    const double oracle = occupied ? limit_sum * rng.UniformDouble() : 0.0;
    const double prediction = oracle * (0.5 + 0.6 * rng.UniformDouble());
    risk.Record(prediction, oracle, limit_sum, occupied);
  }
}

TEST(RiskAccumulatorCheckpointTest, RoundTripContinuesBitIdentically) {
  Rng rng(99);
  for (const int cut : {0, 1, 4, 5, 50, 200}) {
    SCOPED_TRACE(::testing::Message() << "cut=" << cut);
    Rng fill_rng = rng.Fork(static_cast<uint64_t>(cut));

    RiskAccumulator uninterrupted;
    Rng a = fill_rng;
    FillRandom(uninterrupted, a, cut);
    ByteWriter out;
    uninterrupted.SaveState(out);

    RiskAccumulator restored;
    ByteReader in(out.bytes());
    ASSERT_TRUE(restored.LoadState(in));
    EXPECT_TRUE(in.AtEnd());

    // Continue both with the same suffix: every counter and tail value must
    // stay bit-identical.
    Rng b = a;
    FillRandom(uninterrupted, a, 300);
    FillRandom(restored, b, 300);
    EXPECT_EQ(restored.intervals(), uninterrupted.intervals());
    EXPECT_EQ(restored.violations(), uninterrupted.violations());
    EXPECT_EQ(restored.severity_sum(), uninterrupted.severity_sum());
    EXPECT_EQ(restored.savings_sum(), uninterrupted.savings_sum());
    const RiskTailSummary ta = restored.TailSummary();
    const RiskTailSummary tb = uninterrupted.TailSummary();
    EXPECT_EQ(ta.severity_p99, tb.severity_p99);
    EXPECT_EQ(ta.severity_p999, tb.severity_p999);
    EXPECT_EQ(ta.max_violation_streak, tb.max_violation_streak);
    EXPECT_EQ(ta.streak_p99, tb.streak_p99);
    EXPECT_EQ(ta.streak_p999, tb.streak_p999);
    EXPECT_EQ(ta.violation_time_fraction, tb.violation_time_fraction);
    EXPECT_EQ(ta.savings_at_risk, tb.savings_at_risk);
  }
}

TEST(RiskAccumulatorCheckpointTest, TruncationsAreRejected) {
  Rng rng(7);
  RiskAccumulator risk;
  FillRandom(risk, rng, 150);
  ByteWriter out;
  risk.SaveState(out);
  const std::span<const uint8_t> bytes(out.bytes());
  for (size_t length = 0; length < bytes.size(); length += 13) {
    ByteReader in(bytes.subspan(0, length));
    RiskAccumulator scratch;
    EXPECT_FALSE(scratch.LoadState(in)) << "length=" << length;
    EXPECT_FALSE(in.ok());
  }
}

TEST(RiskAccumulatorCheckpointTest, CounterCorruptionIsRejected) {
  Rng rng(8);
  RiskAccumulator risk;
  FillRandom(risk, rng, 150);
  ByteWriter out;
  risk.SaveState(out);
  std::vector<uint8_t> bytes(out.bytes().begin(), out.bytes().end());

  // Make violations negative (sign-bit flip of the int64 at offset 8).
  std::vector<uint8_t> negative = bytes;
  negative[15] ^= 0x80;
  {
    ByteReader in(negative);
    RiskAccumulator scratch;
    EXPECT_FALSE(scratch.LoadState(in));
  }
  // Make violations exceed intervals.
  std::vector<uint8_t> inflated = bytes;
  inflated[12] ^= 0x7F;
  {
    ByteReader in(inflated);
    RiskAccumulator scratch;
    EXPECT_FALSE(scratch.LoadState(in));
  }
  // An accepted payload must leave the reader positioned at the end; a
  // rejected one must latch the failure flag. Sweep single-bit flips over
  // the whole payload: either outcome is fine, crashing or accepting a
  // payload the invariant checks can catch is not.
  for (size_t off = 0; off < bytes.size(); off += 11) {
    std::vector<uint8_t> flipped = bytes;
    flipped[off] ^= 0x20;
    ByteReader in(flipped);
    RiskAccumulator scratch;
    const bool loaded = scratch.LoadState(in);
    if (loaded) {
      EXPECT_TRUE(in.AtEnd()) << "offset=" << off;
    } else {
      EXPECT_FALSE(in.ok()) << "offset=" << off;
    }
  }
}

}  // namespace
}  // namespace crf
