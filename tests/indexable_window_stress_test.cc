// Randomized churn stress for IndexableWindow (and TaskHistory, its thin
// wrapper): long insert/evict sequences with heavy duplicates are checked
// differentially against a naive sorted-vector reference, and a mid-churn
// SaveState/LoadState round trip must continue bit-identically to the
// original window.

#include "crf/core/indexable_window.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <vector>

#include "crf/core/task_history.h"
#include "crf/util/byte_io.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

// Naive reference: arrival-order deque, full sort per query. Mirrors the
// window's documented percentile interpolation exactly.
class NaiveWindow {
 public:
  explicit NaiveWindow(int capacity) : capacity_(capacity) {}

  void Push(float sample) {
    if (static_cast<int>(ring_.size()) == capacity_) {
      ring_.pop_front();
    }
    ring_.push_back(sample);
  }

  int size() const { return static_cast<int>(ring_.size()); }

  double Percentile(double p) const {
    std::vector<float> sorted(ring_.begin(), ring_.end());
    std::sort(sorted.begin(), sorted.end());
    const int count = static_cast<int>(sorted.size());
    if (count == 1) {
      return sorted[0];
    }
    const double rank = p / 100.0 * static_cast<double>(count - 1);
    const int lo = static_cast<int>(rank);
    const int hi = std::min(lo + 1, count - 1);
    const double frac = rank - static_cast<double>(lo);
    const float lo_value = sorted[lo];
    const float hi_value = hi == lo ? lo_value : sorted[hi];
    return lo_value + frac * (hi_value - lo_value);
  }

  double Mean() const {
    if (ring_.empty()) {
      return 0.0;
    }
    double sum = 0.0;
    for (const float v : ring_) {
      sum += v;
    }
    return sum / static_cast<double>(ring_.size());
  }

  float Latest() const { return ring_.back(); }

 private:
  int capacity_;
  std::deque<float> ring_;
};

// Sample streams with heavy duplicates and plateaus: equal values across
// chunk boundaries are exactly where the chunked index's erase/insert
// tie-handling can go wrong.
float NextSample(Rng& rng) {
  const double shape = rng.UniformDouble();
  if (shape < 0.4) {
    // Coarse grid: many exact duplicates.
    return static_cast<float>(rng.UniformInt(8)) * 0.125f;
  }
  if (shape < 0.5) {
    return 0.5f;  // Plateau value.
  }
  if (shape < 0.55) {
    return -static_cast<float>(rng.UniformDouble());
  }
  return static_cast<float>(rng.UniformDouble() * 4.0);
}

class IndexableWindowStressTest : public ::testing::TestWithParam<int> {};

TEST_P(IndexableWindowStressTest, ChurnMatchesNaiveReference) {
  const int capacity = GetParam();
  Rng rng(4242 + static_cast<uint64_t>(capacity));
  IndexableWindow window(capacity);
  NaiveWindow naive(capacity);

  const int pushes = 4000 + 4 * capacity;
  const double percentiles[] = {0.0, 1.0, 37.5, 50.0, 90.0, 99.0, 100.0};
  for (int i = 0; i < pushes; ++i) {
    const float sample = NextSample(rng);
    window.Push(sample);
    naive.Push(sample);
    ASSERT_EQ(window.size(), naive.size());
    EXPECT_EQ(window.Latest(), naive.Latest());
    // Querying every push is quadratic in the reference; sample the tail
    // densely (evictions active) and the warm-up sparsely.
    const bool check = i < 2 * capacity ? (i % 7 == 0) : (i % 23 == 0);
    if (check) {
      for (const double p : percentiles) {
        EXPECT_EQ(window.Percentile(p), naive.Percentile(p))
            << "capacity=" << capacity << " i=" << i << " p=" << p;
      }
      EXPECT_NEAR(window.Mean(), naive.Mean(), 1e-9)
          << "capacity=" << capacity << " i=" << i;
    }
  }
}

TEST_P(IndexableWindowStressTest, SaveLoadMidChurnContinuesBitIdentically) {
  const int capacity = GetParam();
  Rng rng(9090 + static_cast<uint64_t>(capacity));
  IndexableWindow window(capacity);

  // Churn past several wrap-arounds so the ring head is mid-buffer.
  for (int i = 0; i < 3 * capacity + 17; ++i) {
    window.Push(NextSample(rng));
  }

  ByteWriter writer;
  window.SaveState(writer);
  IndexableWindow restored(capacity);
  ByteReader reader(writer.bytes());
  ASSERT_TRUE(restored.LoadState(reader));
  EXPECT_TRUE(reader.AtEnd());

  // Same future stream into both: every observable must stay bit-identical,
  // including the running (drifting) sum behind Mean().
  Rng future(777);
  for (int i = 0; i < 2 * capacity + 31; ++i) {
    const float sample = NextSample(future);
    window.Push(sample);
    restored.Push(sample);
    ASSERT_EQ(restored.size(), window.size());
    EXPECT_EQ(restored.Latest(), window.Latest());
    EXPECT_EQ(restored.Mean(), window.Mean()) << "i=" << i;
    if (i % 11 == 0) {
      for (const double p : {0.0, 25.0, 50.0, 95.0, 100.0}) {
        EXPECT_EQ(restored.Percentile(p), window.Percentile(p)) << "i=" << i << " p=" << p;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, IndexableWindowStressTest,
                         ::testing::Values(1, 2, 7, 63, 64, 65, 200, 1024));

TEST(IndexableWindowStateTest, LoadRejectsCapacityMismatch) {
  IndexableWindow window(16);
  for (int i = 0; i < 10; ++i) {
    window.Push(static_cast<float>(i));
  }
  ByteWriter writer;
  window.SaveState(writer);

  IndexableWindow wrong(32);
  ByteReader reader(writer.bytes());
  EXPECT_FALSE(wrong.LoadState(reader));
  EXPECT_FALSE(reader.ok());
}

TEST(IndexableWindowStateTest, LoadRejectsTruncatedAndFlippedState) {
  IndexableWindow window(32);
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    window.Push(NextSample(rng));
  }
  ByteWriter writer;
  window.SaveState(writer);
  const std::vector<uint8_t>& bytes = writer.bytes();

  for (const size_t length : {size_t{0}, size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
    IndexableWindow target(32);
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + static_cast<long>(length));
    ByteReader reader(truncated);
    EXPECT_FALSE(target.LoadState(reader) && reader.AtEnd()) << "length=" << length;
  }
}

TEST(TaskHistoryStressTest, WrapperMatchesReferenceAndRoundTrips) {
  TaskHistory history(48);
  NaiveWindow naive(48);
  Rng rng(31337);
  for (int i = 0; i < 600; ++i) {
    const float sample = NextSample(rng);
    history.Push(sample);
    naive.Push(sample);
    if (i % 13 == 0) {
      EXPECT_EQ(history.Percentile(95.0), naive.Percentile(95.0)) << "i=" << i;
      EXPECT_NEAR(history.Mean(), naive.Mean(), 1e-9) << "i=" << i;
    }
  }

  ByteWriter writer;
  history.SaveState(writer);
  TaskHistory restored(48);
  ByteReader reader(writer.bytes());
  ASSERT_TRUE(restored.LoadState(reader));
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(restored.size(), history.size());
  EXPECT_EQ(restored.Percentile(99.0), history.Percentile(99.0));
  EXPECT_EQ(restored.Mean(), history.Mean());
}

}  // namespace
}  // namespace crf
