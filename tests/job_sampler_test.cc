#include "crf/trace/job_sampler.h"

#include <gtest/gtest.h>

#include "crf/stats/running_stats.h"

namespace crf {
namespace {

TEST(JobSamplerTest, JobFieldsWithinProfileBounds) {
  const CellProfile profile = SimCellProfile('a');
  JobSampler sampler(profile, Rng(1));
  for (int i = 0; i < 500; ++i) {
    const JobTemplate job = sampler.NextJob();
    EXPECT_GE(job.limit, profile.limit_min);
    EXPECT_LE(job.limit, profile.limit_max);
    EXPECT_GE(job.params.mean_ratio, 0.05);
    EXPECT_LE(job.params.mean_ratio, 0.85);
    EXPECT_GE(job.params.diurnal_amplitude, profile.diurnal_amp_min);
    EXPECT_LE(job.params.diurnal_amplitude, profile.diurnal_amp_max);
    EXPECT_GE(job.params.phase_days, 0.0);
    EXPECT_LT(job.params.phase_days, 1.0);
    EXPECT_GE(job.params.ar_rho, profile.ar_rho_min);
    EXPECT_LE(job.params.ar_rho, profile.ar_rho_max);
    EXPECT_GE(job.params.load_coupling, 0.0);
    EXPECT_LE(job.params.load_coupling, 1.0);
  }
}

TEST(JobSamplerTest, JobIdsMonotone) {
  JobSampler sampler(SimCellProfile('a'), Rng(2));
  JobId previous = 0;
  for (int i = 0; i < 20; ++i) {
    const JobTemplate job = sampler.NextJob();
    EXPECT_GT(job.job_id, previous);
    previous = job.job_id;
  }
}

TEST(JobSamplerTest, BatchJobsHaveNoCoupling) {
  CellProfile profile = SimCellProfile('a');
  profile.serving_fraction = 0.0;
  JobSampler sampler(profile, Rng(3));
  for (int i = 0; i < 100; ++i) {
    const JobTemplate job = sampler.NextJob();
    EXPECT_FALSE(IsServing(job.sched_class));
    EXPECT_DOUBLE_EQ(job.params.load_coupling, 0.0);
  }
}

TEST(JobSamplerTest, ServingFractionRespected) {
  CellProfile profile = SimCellProfile('a');
  profile.serving_fraction = 0.8;
  JobSampler sampler(profile, Rng(4));
  int serving = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    serving += IsServing(sampler.NextJob().sched_class) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(serving) / n, 0.8, 0.03);
}

TEST(JobSamplerTest, TasksPerJobMeanMatchesProfile) {
  CellProfile profile = SimCellProfile('a');
  profile.tasks_per_job_mean = 4.0;
  JobSampler sampler(profile, Rng(5));
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const int tasks = sampler.SampleTasksPerJob();
    ASSERT_GE(tasks, 1);
    stats.Add(tasks);
  }
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(JobSamplerTest, ServiceRuntimeRunsToTraceEnd) {
  JobSampler sampler(SimCellProfile('a'), Rng(6));
  EXPECT_EQ(sampler.SampleRuntime(/*service=*/true, 10, 100), 90);
  EXPECT_EQ(sampler.SampleRuntime(/*service=*/true, 0, 100), 100);
}

TEST(JobSamplerTest, RuntimeWithinBounds) {
  JobSampler sampler(SimCellProfile('a'), Rng(7));
  for (int i = 0; i < 1000; ++i) {
    const Interval runtime = sampler.SampleRuntime(false, 50, 200);
    EXPECT_GE(runtime, 1);
    EXPECT_LE(runtime, 150);
  }
}

TEST(JobSamplerTest, JitterStaysNearJobMean) {
  JobSampler sampler(SimCellProfile('a'), Rng(8));
  TaskUsageParams params;
  params.mean_ratio = 0.5;
  for (int i = 0; i < 200; ++i) {
    const TaskUsageParams jittered = sampler.JitterTaskParams(params);
    EXPECT_GE(jittered.mean_ratio, 0.45 - 1e-12);
    EXPECT_LE(jittered.mean_ratio, 0.55 + 1e-12);
  }
}

TEST(MeanNonServiceRuntimeTest, MixtureMean) {
  CellProfile profile;
  profile.short_runtime_mean_hours = 2.0;
  profile.long_fraction = 0.0;
  EXPECT_NEAR(MeanNonServiceRuntimeIntervals(profile), 2.0 * kIntervalsPerHour, 1e-9);

  profile.long_fraction = 1.0;
  profile.long_runtime_log_mean = 0.0;
  profile.long_runtime_log_sigma = 0.0;
  // Lognormal with mu=0, sigma=0 is exactly 1 hour.
  EXPECT_NEAR(MeanNonServiceRuntimeIntervals(profile), kIntervalsPerHour, 1e-9);
}

TEST(SharedLoadSeriesTest, MeanNearOneAndPositive) {
  const CellProfile profile = SimCellProfile('a');
  const auto series = BuildSharedLoadSeries(profile, 4 * kIntervalsPerDay, Rng(9));
  ASSERT_EQ(series.size(), static_cast<size_t>(4 * kIntervalsPerDay));
  RunningStats stats;
  for (const double v : series) {
    ASSERT_GT(v, 0.0);
    stats.Add(v);
  }
  EXPECT_NEAR(stats.mean(), 1.0, 0.1);
  EXPECT_GT(stats.stddev(), 0.05);  // The wave + noise must actually move.
}

TEST(SharedLoadSeriesTest, Deterministic) {
  const CellProfile profile = SimCellProfile('a');
  EXPECT_EQ(BuildSharedLoadSeries(profile, 100, Rng(10)),
            BuildSharedLoadSeries(profile, 100, Rng(10)));
}

TEST(ArrivalRateTest, BackfillPullsTowardTarget) {
  const CellProfile profile = SimCellProfile('a');
  const double depleted = ArrivalRate(profile, 0, 0);
  const double at_target = ArrivalRate(
      profile, 0, static_cast<int64_t>(profile.tasks_per_machine * profile.num_machines));
  EXPECT_GT(depleted, at_target);
}

TEST(ArrivalRateTest, NonNegative) {
  const CellProfile profile = SimCellProfile('a');
  for (Interval t = 0; t < kIntervalsPerDay; t += 7) {
    EXPECT_GE(ArrivalRate(profile, t, 1000000), 0.0);
  }
}

}  // namespace
}  // namespace crf
