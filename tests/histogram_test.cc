#include "crf/stats/histogram.h"

#include <gtest/gtest.h>

namespace crf {
namespace {

TEST(BucketedStatsTest, KeysFallInCorrectBuckets) {
  // Buckets (0, 0.005], (0.005, 0.01], ... like the paper's Fig 3(d).
  BucketedStats buckets(0.0, 0.005, 4);
  buckets.Add(0.004, 1.0);   // bucket 0
  buckets.Add(0.005, 2.0);   // bucket 0 (right-closed)
  buckets.Add(0.0051, 3.0);  // bucket 1
  buckets.Add(0.015, 4.0);   // bucket 2
  EXPECT_EQ(buckets.bucket(0).count(), 2);
  EXPECT_EQ(buckets.bucket(1).count(), 1);
  EXPECT_EQ(buckets.bucket(2).count(), 1);
  EXPECT_EQ(buckets.bucket(3).count(), 0);
  EXPECT_DOUBLE_EQ(buckets.bucket(0).mean(), 1.5);
}

TEST(BucketedStatsTest, ValuesBelowLoClampToFirst) {
  BucketedStats buckets(0.0, 1.0, 3);
  buckets.Add(-5.0, 7.0);
  buckets.Add(0.0, 9.0);
  EXPECT_EQ(buckets.bucket(0).count(), 2);
}

TEST(BucketedStatsTest, ValuesAboveRangeClampToLast) {
  BucketedStats buckets(0.0, 1.0, 3);
  buckets.Add(100.0, 7.0);
  EXPECT_EQ(buckets.bucket(2).count(), 1);
}

TEST(BucketedStatsTest, BucketGeometry) {
  BucketedStats buckets(1.0, 0.5, 4);
  EXPECT_DOUBLE_EQ(buckets.bucket_lower(0), 1.0);
  EXPECT_DOUBLE_EQ(buckets.bucket_center(0), 1.25);
  EXPECT_DOUBLE_EQ(buckets.bucket_lower(3), 2.5);
}

TEST(BucketedStatsTest, FirstSparseBucket) {
  BucketedStats buckets(0.0, 1.0, 3);
  for (int i = 0; i < 60; ++i) {
    buckets.Add(0.5, 1.0);
  }
  for (int i = 0; i < 10; ++i) {
    buckets.Add(1.5, 1.0);
  }
  EXPECT_EQ(buckets.FirstSparseBucket(50), 1);
  EXPECT_EQ(buckets.FirstSparseBucket(5), 2);
  EXPECT_EQ(buckets.FirstSparseBucket(1), 2);
}

TEST(BucketedStatsTest, AllPopulatedReturnsNumBuckets) {
  BucketedStats buckets(0.0, 1.0, 2);
  buckets.Add(0.5, 1.0);
  buckets.Add(1.5, 1.0);
  EXPECT_EQ(buckets.FirstSparseBucket(1), 2);
}

}  // namespace
}  // namespace crf
