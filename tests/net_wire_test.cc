// CRFNET1 framing contract (crf/net/wire.h): every op round-trips through
// AppendFrame → DecodeFrame → DecodePayload bit-exactly; every damaged
// frame — truncation, bit flip, bad magic, oversized length — is rejected
// (or surfaces as a harmless different-op frame the dispatcher rejects),
// never decoded as the original message and never a crash. Mirrors the
// corruption suite of stream_checkpoint_test for the wire layer.

#include "crf/net/wire.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "crf/util/byte_io.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

constexpr size_t kHeaderBytes = 32;

template <typename T>
std::vector<uint8_t> Frame(WireOp op, const T& message) {
  ByteWriter payload;
  message.EncodeTo(payload);
  std::vector<uint8_t> out;
  AppendFrame(op, payload, out);
  return out;
}

// Decodes one complete frame and its payload into `out`, asserting success.
template <typename T>
void MustDecode(const std::vector<uint8_t>& frame, WireOp expected_op, T& out) {
  WireOp op = WireOp::kError;
  std::span<const uint8_t> payload;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(frame, &op, &payload, &consumed, &error), FrameStatus::kFrame)
      << error;
  EXPECT_EQ(op, expected_op);
  EXPECT_EQ(consumed, frame.size());
  ASSERT_TRUE(DecodePayload(payload, out));
}

IngestBatchRequest SampleIngest() {
  IngestBatchRequest request;
  request.machine = 3;
  request.from_tick = 10;
  request.until_tick = 12;
  request.window_until = 20;
  StreamEvent departure;
  departure.kind = StreamEventKind::kTaskDeparture;
  departure.task_index = 7;
  departure.tick = 10;
  departure.task_id = 1007;
  departure.limit = 0.5;
  StreamEvent arrival;
  arrival.kind = StreamEventKind::kTaskArrival;
  arrival.task_index = 9;
  arrival.tick = 10;
  arrival.task_id = 1009;
  arrival.limit = 0.25;
  StreamEvent sample;
  sample.kind = StreamEventKind::kUsageSample;
  sample.task_index = 9;
  sample.tick = 11;
  sample.task_id = 1009;
  sample.usage = 0.125;
  sample.limit = 0.25;
  request.events = {departure, arrival, sample};
  return request;
}

TEST(NetWireTest, HeaderIsThirtyTwoBytes) {
  const auto frame = Frame(WireOp::kCellQuery, CellQueryRequest{});
  EXPECT_EQ(frame.size(), kHeaderBytes);  // empty payload: header only
}

TEST(NetWireTest, HelloRoundTrips) {
  HelloRequest request;
  request.client_name = "unit-test";
  HelloRequest out;
  MustDecode(Frame(WireOp::kHello, request), WireOp::kHello, out);
  EXPECT_EQ(out.client_name, "unit-test");

  HelloResponse response;
  response.trace_name = "cell_a";
  response.spec_name = "max(n-sigma-5,rc-like-p99)";
  response.num_machines = 40;
  response.num_intervals = 576;
  response.num_shards = 8;
  response.next_tick = 288;
  HelloResponse decoded;
  MustDecode(Frame(WireOp::kHello, response), WireOp::kHello, decoded);
  EXPECT_EQ(decoded.trace_name, response.trace_name);
  EXPECT_EQ(decoded.spec_name, response.spec_name);
  EXPECT_EQ(decoded.num_machines, response.num_machines);
  EXPECT_EQ(decoded.num_intervals, response.num_intervals);
  EXPECT_EQ(decoded.num_shards, response.num_shards);
  EXPECT_EQ(decoded.next_tick, response.next_tick);
}

TEST(NetWireTest, IngestBatchRoundTripsEveryEventField) {
  const IngestBatchRequest request = SampleIngest();
  IngestBatchRequest out;
  MustDecode(Frame(WireOp::kIngestBatch, request), WireOp::kIngestBatch, out);
  EXPECT_EQ(out.machine, request.machine);
  EXPECT_EQ(out.from_tick, request.from_tick);
  EXPECT_EQ(out.until_tick, request.until_tick);
  EXPECT_EQ(out.window_until, request.window_until);
  ASSERT_EQ(out.events.size(), request.events.size());
  for (size_t i = 0; i < request.events.size(); ++i) {
    EXPECT_EQ(out.events[i].kind, request.events[i].kind);
    // The machine field is implied by the request, not shipped per event.
    EXPECT_EQ(out.events[i].machine, request.machine);
    EXPECT_EQ(out.events[i].task_index, request.events[i].task_index);
    EXPECT_EQ(out.events[i].tick, request.events[i].tick);
    EXPECT_EQ(out.events[i].task_id, request.events[i].task_id);
    EXPECT_EQ(out.events[i].usage, request.events[i].usage);
    EXPECT_EQ(out.events[i].limit, request.events[i].limit);
  }
}

TEST(NetWireTest, QueryAdmissionMetricsShutdownErrorRoundTrip) {
  MachineQueryRequest mq;
  mq.machine = 11;
  MachineQueryRequest mq_out;
  MustDecode(Frame(WireOp::kMachineQuery, mq), WireOp::kMachineQuery, mq_out);
  EXPECT_EQ(mq_out.machine, 11);

  MachineQueryResponse mr;
  mr.last_tick = 41;
  mr.prediction = 3.25;
  mr.limit_sum = 7.5;
  mr.roster_size = 12;
  mr.roster_hash = 0xdeadbeefcafef00dull;
  MachineQueryResponse mr_out;
  MustDecode(Frame(WireOp::kMachineQuery, mr), WireOp::kMachineQuery, mr_out);
  EXPECT_EQ(mr_out.last_tick, mr.last_tick);
  EXPECT_EQ(mr_out.prediction, mr.prediction);
  EXPECT_EQ(mr_out.roster_hash, mr.roster_hash);

  CellQueryResponse cr;
  cr.num_machines = 40;
  cr.min_last_tick = 5;
  cr.max_last_tick = 9;
  cr.prediction_sum = 101.5;
  cr.limit_sum = 200.25;
  cr.events_ingested = 123456;
  CellQueryResponse cr_out;
  MustDecode(Frame(WireOp::kCellQuery, cr), WireOp::kCellQuery, cr_out);
  EXPECT_EQ(cr_out.events_ingested, cr.events_ingested);
  EXPECT_EQ(cr_out.prediction_sum, cr.prediction_sum);

  AdmissionCheckRequest ar;
  ar.machine = 2;
  ar.task_limit = 0.75;
  AdmissionCheckRequest ar_out;
  MustDecode(Frame(WireOp::kAdmissionCheck, ar), WireOp::kAdmissionCheck, ar_out);
  EXPECT_EQ(ar_out.task_limit, 0.75);

  AdmissionCheckResponse av;
  av.admitted = true;
  av.predicted_peak = 0.5;
  av.capacity = 1.0;
  av.headroom = 0.5;
  AdmissionCheckResponse av_out;
  MustDecode(Frame(WireOp::kAdmissionCheck, av), WireOp::kAdmissionCheck, av_out);
  EXPECT_TRUE(av_out.admitted);
  EXPECT_EQ(av_out.headroom, 0.5);

  MetricsSnapshotResponse ms;
  ms.json = "{\"cell\": \"a\"}";
  MetricsSnapshotResponse ms_out;
  MustDecode(Frame(WireOp::kMetricsSnapshot, ms), WireOp::kMetricsSnapshot, ms_out);
  EXPECT_EQ(ms_out.json, ms.json);

  ShutdownRequest sr;
  sr.seal_checkpoint = false;
  ShutdownRequest sr_out;
  MustDecode(Frame(WireOp::kShutdown, sr), WireOp::kShutdown, sr_out);
  EXPECT_FALSE(sr_out.seal_checkpoint);

  ShutdownResponse sd;
  sd.sealed = true;
  sd.next_tick = 576;
  sd.checkpoint_path = "/tmp/x.ckpt";
  ShutdownResponse sd_out;
  MustDecode(Frame(WireOp::kShutdown, sd), WireOp::kShutdown, sd_out);
  EXPECT_TRUE(sd_out.sealed);
  EXPECT_EQ(sd_out.checkpoint_path, "/tmp/x.ckpt");

  ErrorResponse er;
  er.message = "bad tick";
  ErrorResponse er_out;
  MustDecode(Frame(WireOp::kError, er), WireOp::kError, er_out);
  EXPECT_EQ(er_out.message, "bad tick");
}

TEST(NetWireTest, BackToBackFramesDecodeSequentially) {
  std::vector<uint8_t> buffer = Frame(WireOp::kCellQuery, CellQueryRequest{});
  const auto second = Frame(WireOp::kIngestBatch, SampleIngest());
  buffer.insert(buffer.end(), second.begin(), second.end());

  WireOp op = WireOp::kError;
  std::span<const uint8_t> payload;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(buffer, &op, &payload, &consumed, nullptr), FrameStatus::kFrame);
  EXPECT_EQ(op, WireOp::kCellQuery);
  const std::span<const uint8_t> rest(buffer.data() + consumed, buffer.size() - consumed);
  ASSERT_EQ(DecodeFrame(rest, &op, &payload, &consumed, nullptr), FrameStatus::kFrame);
  EXPECT_EQ(op, WireOp::kIngestBatch);
  EXPECT_EQ(consumed, rest.size());
}

TEST(NetWireCorruptionTest, EveryTruncationNeedsMoreBytes) {
  const auto frame = Frame(WireOp::kIngestBatch, SampleIngest());
  // A proper prefix of a valid frame is by definition incomplete, never
  // malformed — the receiver must keep the connection and read on.
  for (size_t len = 0; len < frame.size(); ++len) {
    WireOp op;
    std::span<const uint8_t> payload;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(DecodeFrame(std::span<const uint8_t>(frame.data(), len), &op, &payload,
                          &consumed, &error),
              FrameStatus::kNeedMore)
        << "prefix length " << len << ": " << error;
  }
}

TEST(NetWireCorruptionTest, EveryBitFlipIsRejectedOrChangesTheFrame) {
  const auto frame = Frame(WireOp::kIngestBatch, SampleIngest());
  WireOp base_op;
  std::span<const uint8_t> base_payload;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(frame, &base_op, &base_payload, &consumed, nullptr),
            FrameStatus::kFrame);
  const std::vector<uint8_t> original(base_payload.begin(), base_payload.end());

  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> damaged = frame;
      damaged[byte] ^= static_cast<uint8_t>(1u << bit);
      WireOp op;
      std::span<const uint8_t> payload;
      std::string error;
      const FrameStatus status = DecodeFrame(damaged, &op, &payload, &consumed, &error);
      if (status != FrameStatus::kFrame) {
        continue;  // rejected outright (malformed) or now incomplete
      }
      // The only surviving flips may change the op byte to another valid op
      // (the payload hash does not cover the header op); the dispatcher then
      // rejects the payload. What can never happen is the original message
      // decoding as if undamaged.
      const bool same = op == base_op && payload.size() == original.size() &&
                        std::memcmp(payload.data(), original.data(), original.size()) == 0;
      EXPECT_FALSE(same) << "byte " << byte << " bit " << bit
                         << " flip decoded as the original frame";
    }
  }
}

TEST(NetWireCorruptionTest, BadMagicIsMalformedOnFirstDivergentByte) {
  auto frame = Frame(WireOp::kHello, HelloRequest{});
  frame[0] = 'X';
  WireOp op;
  std::span<const uint8_t> payload;
  size_t consumed = 0;
  std::string error;
  // Even a one-byte buffer with a wrong first byte is immediately malformed:
  // the peer is not speaking CRFNET1, so there is no point waiting.
  EXPECT_EQ(DecodeFrame(std::span<const uint8_t>(frame.data(), 1), &op, &payload, &consumed,
                        &error),
            FrameStatus::kMalformed);
  EXPECT_EQ(DecodeFrame(frame, &op, &payload, &consumed, &error), FrameStatus::kMalformed);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST(NetWireCorruptionTest, OversizedLengthIsMalformedBeforePayloadArrives) {
  auto frame = Frame(WireOp::kHello, HelloRequest{});
  // payload_bytes lives at header offset 16 (after magic, version, op,
  // flags, reserved); write a length beyond the hard cap.
  const uint64_t huge = kMaxFramePayload + 1;
  std::memcpy(frame.data() + 16, &huge, sizeof(huge));
  WireOp op;
  std::span<const uint8_t> payload;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(std::span<const uint8_t>(frame.data(), kHeaderBytes), &op, &payload,
                        &consumed, &error),
            FrameStatus::kMalformed);
  EXPECT_NE(error.find("payload"), std::string::npos) << error;
}

TEST(NetWireCorruptionTest, UnknownVersionOpAndNonzeroReservedAreMalformed) {
  WireOp op;
  std::span<const uint8_t> payload;
  size_t consumed = 0;
  std::string error;

  auto version_frame = Frame(WireOp::kHello, HelloRequest{});
  version_frame[8] = 99;  // version field
  EXPECT_EQ(DecodeFrame(version_frame, &op, &payload, &consumed, &error),
            FrameStatus::kMalformed);

  auto op_frame = Frame(WireOp::kHello, HelloRequest{});
  op_frame[12] = 200;  // op field
  EXPECT_EQ(DecodeFrame(op_frame, &op, &payload, &consumed, &error), FrameStatus::kMalformed);

  auto flags_frame = Frame(WireOp::kHello, HelloRequest{});
  flags_frame[13] = 1;  // flags must be zero in version 1
  EXPECT_EQ(DecodeFrame(flags_frame, &op, &payload, &consumed, &error),
            FrameStatus::kMalformed);
}

TEST(NetWireCorruptionTest, IngestPayloadValidationRejectsProtocolViolations) {
  const auto decode = [](const IngestBatchRequest& request) {
    ByteWriter payload;
    request.EncodeTo(payload);
    IngestBatchRequest out;
    return DecodePayload(std::span<const uint8_t>(payload.bytes()), out);
  };

  EXPECT_TRUE(decode(SampleIngest()));

  IngestBatchRequest bad = SampleIngest();
  bad.machine = -1;
  EXPECT_FALSE(decode(bad));

  bad = SampleIngest();
  bad.until_tick = bad.from_tick;  // empty tick range
  EXPECT_FALSE(decode(bad));

  bad = SampleIngest();
  bad.window_until = bad.until_tick - 1;  // batch past the window
  EXPECT_FALSE(decode(bad));

  bad = SampleIngest();
  bad.events[2].tick = bad.events[0].tick - 1;  // tick order regression
  EXPECT_FALSE(decode(bad));

  bad = SampleIngest();
  bad.events[0].tick = bad.from_tick - 1;  // event before the range
  EXPECT_FALSE(decode(bad));

  bad = SampleIngest();
  bad.events[1].task_index = -5;
  EXPECT_FALSE(decode(bad));

  bad = SampleIngest();
  bad.events[2].usage = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(decode(bad));

  bad = SampleIngest();
  bad.events[2].limit = -0.5;
  EXPECT_FALSE(decode(bad));
}

TEST(NetWireCorruptionTest, TrailingPayloadBytesAreRejected) {
  ByteWriter payload;
  MachineQueryRequest{}.EncodeTo(payload);
  std::vector<uint8_t> padded(payload.bytes().begin(), payload.bytes().end());
  padded.push_back(0);
  MachineQueryRequest out;
  EXPECT_FALSE(DecodePayload(std::span<const uint8_t>(padded), out));
}

// Seeded mutation fuzz: random valid frames, randomly damaged — truncated,
// bit-flipped, spliced with garbage — must always classify without crashing,
// and any frame that survives to kFrame must payload-decode cleanly or fail
// cleanly (latched byte_io failure, no aborts).
TEST(NetWireFuzzTest, SeededMutationsNeverCrashTheDecoder) {
  Rng rng(20260808);
  for (int round = 0; round < 2000; ++round) {
    IngestBatchRequest request;
    request.machine = static_cast<int32_t>(rng.UniformInt(64));
    request.from_tick = static_cast<Interval>(rng.UniformInt(100));
    request.until_tick = request.from_tick + 1 + static_cast<Interval>(rng.UniformInt(4));
    request.window_until = request.until_tick + static_cast<Interval>(rng.UniformInt(4));
    const int num_events = static_cast<int>(rng.UniformInt(6));
    for (int i = 0; i < num_events; ++i) {
      StreamEvent event;
      event.kind = static_cast<StreamEventKind>(rng.UniformInt(3));
      event.task_index = static_cast<int32_t>(rng.UniformInt(1000));
      event.tick = request.from_tick + static_cast<Interval>(rng.UniformInt(
                                           request.until_tick - request.from_tick));
      event.task_id = static_cast<TaskId>(rng.UniformInt(1 << 20));
      event.usage = rng.UniformDouble();
      event.limit = rng.UniformDouble();
      request.events.push_back(event);
    }
    std::sort(request.events.begin(), request.events.end(),
              [](const StreamEvent& a, const StreamEvent& b) { return a.tick < b.tick; });
    std::vector<uint8_t> frame = Frame(WireOp::kIngestBatch, request);

    switch (rng.UniformInt(3)) {
      case 0:  // truncate
        frame.resize(rng.UniformInt(frame.size() + 1));
        break;
      case 1: {  // flip 1-8 bits
        const int flips = 1 + static_cast<int>(rng.UniformInt(8));
        for (int i = 0; i < flips && !frame.empty(); ++i) {
          frame[rng.UniformInt(frame.size())] ^=
              static_cast<uint8_t>(1u << rng.UniformInt(8));
        }
        break;
      }
      default: {  // splice random garbage into the middle
        const size_t at = rng.UniformInt(frame.size() + 1);
        const int extra = static_cast<int>(rng.UniformInt(40));
        std::vector<uint8_t> garbage;
        for (int i = 0; i < extra; ++i) {
          garbage.push_back(static_cast<uint8_t>(rng.UniformInt(256)));
        }
        frame.insert(frame.begin() + static_cast<ptrdiff_t>(at), garbage.begin(),
                     garbage.end());
        break;
      }
    }

    WireOp op;
    std::span<const uint8_t> payload;
    size_t consumed = 0;
    std::string error;
    const FrameStatus status = DecodeFrame(frame, &op, &payload, &consumed, &error);
    if (status == FrameStatus::kFrame) {
      EXPECT_LE(consumed, frame.size());
      IngestBatchRequest out;
      DecodePayload(payload, out);  // must not crash; result may be false
    }
  }
}

}  // namespace
}  // namespace crf
