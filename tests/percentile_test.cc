#include "crf/stats/percentile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "crf/util/rng.h"

namespace crf {
namespace {

TEST(PercentileTest, SingleElement) {
  const std::vector<double> v{3.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 100.0), 3.0);
}

TEST(PercentileTest, EndpointsAreMinMax) {
  const std::vector<double> v{1.0, 2.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 100.0), 9.0);
}

TEST(PercentileTest, LinearInterpolation) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(v, 75.0), 7.5);
}

TEST(PercentileTest, MatchesNumpyDefault) {
  // numpy.percentile([1,2,3,4], 40) == 2.2 with linear interpolation.
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(PercentileSorted(v, 40.0), 2.2, 1e-12);
}

TEST(PercentileTest, UnsortedInputHandledByPercentile) {
  const std::vector<double> v{9.0, 1.0, 5.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 9.0);
}

TEST(PercentileTest, BatchMatchesIndividual) {
  Rng rng(4);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) {
    v.push_back(rng.UniformDouble());
  }
  const std::vector<double> ps{5.0, 50.0, 95.0, 99.0};
  const std::vector<double> batch = Percentiles(v, ps);
  ASSERT_EQ(batch.size(), ps.size());
  for (size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], Percentile(v, ps[i]));
  }
}

TEST(PercentileTest, NearestRankWithinOneStepOfInterpolated) {
  Rng rng(5);
  std::vector<double> v;
  for (int i = 0; i < 101; ++i) {
    v.push_back(rng.Normal(0.0, 1.0));
  }
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (const double p : {10.0, 50.0, 90.0, 99.0}) {
    std::vector<double> scratch = v;
    const double nearest = NearestRankPercentileInPlace(scratch, p);
    // Nearest rank must equal one of the order statistics adjacent to the
    // interpolation point.
    const double rank = p / 100.0 * 100.0;
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min<size_t>(lo + 1, 100);
    EXPECT_TRUE(nearest == sorted[lo] || nearest == sorted[hi]) << p;
  }
}

// Property sweep: percentiles are monotone in p and bounded by min/max.
class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, MonotoneAndBounded) {
  Rng rng(100 + GetParam());
  std::vector<double> v;
  const int n = 1 + static_cast<int>(rng.UniformInt(200));
  for (int i = 0; i < n; ++i) {
    v.push_back(rng.LogNormal(0.0, 1.0));
  }
  std::sort(v.begin(), v.end());
  double previous = v.front();
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    const double value = PercentileSorted(v, p);
    EXPECT_GE(value, previous - 1e-12);
    EXPECT_GE(value, v.front());
    EXPECT_LE(value, v.back());
    previous = value;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, PercentileMonotoneTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace crf
