#include "crf/cluster/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace crf {
namespace {

TEST(SchedulerTest, BestFitPicksTightestMachine) {
  Scheduler scheduler(PackingPolicy::kBestFit, Rng(1));
  scheduler.UpdateFreeCapacity({0.5, 0.2, 0.9});
  EXPECT_EQ(scheduler.Place(0.2, {}), 1);
}

TEST(SchedulerTest, WorstFitPicksLoosestMachine) {
  Scheduler scheduler(PackingPolicy::kWorstFit, Rng(2));
  scheduler.UpdateFreeCapacity({0.5, 0.2, 0.9});
  EXPECT_EQ(scheduler.Place(0.2, {}), 2);
}

TEST(SchedulerTest, InfeasibleReturnsMinusOne) {
  Scheduler scheduler(PackingPolicy::kBestFit, Rng(3));
  scheduler.UpdateFreeCapacity({0.1, 0.2});
  EXPECT_EQ(scheduler.Place(0.5, {}), -1);
}

TEST(SchedulerTest, DebitsPlacedLimits) {
  Scheduler scheduler(PackingPolicy::kBestFit, Rng(4));
  scheduler.UpdateFreeCapacity({0.5});
  EXPECT_EQ(scheduler.Place(0.3, {}), 0);
  // Only 0.2 left; a 0.3 task no longer fits without a fresh poll.
  EXPECT_EQ(scheduler.Place(0.3, {}), -1);
  EXPECT_EQ(scheduler.Place(0.2, {}), 0);
}

TEST(SchedulerTest, UpdateResetsAccounting) {
  Scheduler scheduler(PackingPolicy::kBestFit, Rng(5));
  scheduler.UpdateFreeCapacity({0.5});
  EXPECT_EQ(scheduler.Place(0.5, {}), 0);
  EXPECT_EQ(scheduler.Place(0.5, {}), -1);
  scheduler.UpdateFreeCapacity({0.5});
  EXPECT_EQ(scheduler.Place(0.5, {}), 0);
}

TEST(SchedulerTest, HonorsExclusionsWhenPossible) {
  Scheduler scheduler(PackingPolicy::kBestFit, Rng(6));
  scheduler.UpdateFreeCapacity({0.3, 0.5});
  // Machine 0 is tighter but excluded (already hosts a sibling task).
  EXPECT_EQ(scheduler.Place(0.2, {0}), 1);
}

TEST(SchedulerTest, FallsBackToExcludedWhenNothingElseFits) {
  Scheduler scheduler(PackingPolicy::kBestFit, Rng(7));
  scheduler.UpdateFreeCapacity({0.9, 0.1});
  // Only machine 0 fits, despite the exclusion.
  EXPECT_EQ(scheduler.Place(0.5, {0}), 0);
}

TEST(SchedulerTest, RandomFitIsUniformish) {
  Scheduler scheduler(PackingPolicy::kRandomFit, Rng(8));
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    scheduler.UpdateFreeCapacity({1.0, 1.0, 1.0});
    const int m = scheduler.Place(0.1, {});
    ASSERT_GE(m, 0);
    ++counts[m];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(SchedulerTest, RandomFitOnlyFeasible) {
  Scheduler scheduler(PackingPolicy::kRandomFit, Rng(9));
  for (int i = 0; i < 100; ++i) {
    scheduler.UpdateFreeCapacity({0.05, 1.0, 0.05});
    EXPECT_EQ(scheduler.Place(0.5, {}), 1);
  }
}

TEST(SchedulerTest, PolicyNames) {
  EXPECT_EQ(PackingPolicyName(PackingPolicy::kBestFit), "best-fit");
  EXPECT_EQ(PackingPolicyName(PackingPolicy::kWorstFit), "worst-fit");
  EXPECT_EQ(PackingPolicyName(PackingPolicy::kRandomFit), "random-fit");
}

TEST(SchedulerDeathTest, PlaceBeforeUpdateAborts) {
  Scheduler scheduler(PackingPolicy::kBestFit, Rng(10));
  EXPECT_DEATH(scheduler.Place(0.1, {}), "UpdateFreeCapacity");
}

}  // namespace
}  // namespace crf
