#include "crf/cluster/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace crf {
namespace {

// Every behavioral case runs on both placement engines: the indexed
// tournament tree is contractually byte-identical to the linear reference.
class SchedulerTest : public ::testing::TestWithParam<PlacementEngine> {
 protected:
  Scheduler Make(PackingPolicy policy, uint64_t seed) {
    return Scheduler(policy, Rng(seed), GetParam());
  }
};

TEST_P(SchedulerTest, BestFitPicksTightestMachine) {
  Scheduler scheduler = Make(PackingPolicy::kBestFit, 1);
  scheduler.UpdateFreeCapacity({0.5, 0.2, 0.9});
  EXPECT_EQ(scheduler.Place(0.2, {}), 1);
}

TEST_P(SchedulerTest, WorstFitPicksLoosestMachine) {
  Scheduler scheduler = Make(PackingPolicy::kWorstFit, 2);
  scheduler.UpdateFreeCapacity({0.5, 0.2, 0.9});
  EXPECT_EQ(scheduler.Place(0.2, {}), 2);
}

TEST_P(SchedulerTest, InfeasibleReturnsMinusOne) {
  Scheduler scheduler = Make(PackingPolicy::kBestFit, 3);
  scheduler.UpdateFreeCapacity({0.1, 0.2});
  EXPECT_EQ(scheduler.Place(0.5, {}), -1);
}

TEST_P(SchedulerTest, DebitsPlacedLimits) {
  Scheduler scheduler = Make(PackingPolicy::kBestFit, 4);
  scheduler.UpdateFreeCapacity({0.5});
  EXPECT_EQ(scheduler.Place(0.3, {}), 0);
  // Only 0.2 left; a 0.3 task no longer fits without a fresh poll.
  EXPECT_EQ(scheduler.Place(0.3, {}), -1);
  EXPECT_EQ(scheduler.Place(0.2, {}), 0);
}

TEST_P(SchedulerTest, UpdateResetsAccounting) {
  Scheduler scheduler = Make(PackingPolicy::kBestFit, 5);
  scheduler.UpdateFreeCapacity({0.5});
  EXPECT_EQ(scheduler.Place(0.5, {}), 0);
  EXPECT_EQ(scheduler.Place(0.5, {}), -1);
  scheduler.UpdateFreeCapacity({0.5});
  EXPECT_EQ(scheduler.Place(0.5, {}), 0);
}

TEST_P(SchedulerTest, IncrementalPublishMatchesBulkUpdate) {
  Scheduler scheduler = Make(PackingPolicy::kBestFit, 5);
  scheduler.Reset(3);
  scheduler.Publish(0, 0.5);
  scheduler.Publish(1, 0.2);
  scheduler.Publish(2, 0.9);
  EXPECT_EQ(scheduler.Place(0.2, {}), 1);
  // Republish machine 1 tighter than the task: next-best is machine 0.
  scheduler.Publish(1, 0.1);
  EXPECT_EQ(scheduler.Place(0.2, {}), 0);
  EXPECT_DOUBLE_EQ(scheduler.free_capacity(0), 0.3);
}

TEST_P(SchedulerTest, HonorsExclusionsWhenPossible) {
  Scheduler scheduler = Make(PackingPolicy::kBestFit, 6);
  scheduler.UpdateFreeCapacity({0.3, 0.5});
  // Machine 0 is tighter but excluded (already hosts a sibling task).
  EXPECT_EQ(scheduler.Place(0.2, {0}), 1);
}

TEST_P(SchedulerTest, FallsBackToExcludedWhenNothingElseFits) {
  Scheduler scheduler = Make(PackingPolicy::kBestFit, 7);
  scheduler.UpdateFreeCapacity({0.9, 0.1});
  // Only machine 0 fits, despite the exclusion.
  EXPECT_EQ(scheduler.Place(0.5, {0}), 0);
}

TEST_P(SchedulerTest, WorstFitHonorsExclusions) {
  Scheduler scheduler = Make(PackingPolicy::kWorstFit, 11);
  scheduler.UpdateFreeCapacity({0.4, 0.9, 0.6});
  EXPECT_EQ(scheduler.Place(0.2, {1}), 2);
  // All feasible machines excluded: the fallback pass ignores exclusions.
  EXPECT_EQ(scheduler.Place(0.65, {1}), 1);
}

TEST_P(SchedulerTest, RandomFitIsUniformish) {
  Scheduler scheduler = Make(PackingPolicy::kRandomFit, 8);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    scheduler.UpdateFreeCapacity({1.0, 1.0, 1.0});
    const int m = scheduler.Place(0.1, {});
    ASSERT_GE(m, 0);
    ++counts[m];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST_P(SchedulerTest, RandomFitOnlyFeasible) {
  Scheduler scheduler = Make(PackingPolicy::kRandomFit, 9);
  for (int i = 0; i < 100; ++i) {
    scheduler.UpdateFreeCapacity({0.05, 1.0, 0.05});
    EXPECT_EQ(scheduler.Place(0.5, {}), 1);
  }
}

TEST_P(SchedulerTest, RandomFitHonorsExclusions) {
  Scheduler scheduler = Make(PackingPolicy::kRandomFit, 12);
  for (int i = 0; i < 100; ++i) {
    scheduler.UpdateFreeCapacity({1.0, 1.0, 1.0});
    // Duplicate exclusion entries (pass-2 fallback artifacts) must not skew
    // the count of remaining candidates.
    EXPECT_EQ(scheduler.Place(0.5, {0, 2, 0, 2}), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, SchedulerTest,
                         ::testing::Values(PlacementEngine::kIndexed,
                                           PlacementEngine::kLinearScan),
                         [](const ::testing::TestParamInfo<PlacementEngine>& info) {
                           return info.param == PlacementEngine::kIndexed ? "Indexed"
                                                                          : "LinearScan";
                         });

// Cross-engine lockstep: identical seeds must yield identical placement
// sequences and identical RNG consumption through mixed workloads.
TEST(SchedulerLockstepTest, EnginesAgreeOnPlacementSequences) {
  for (const PackingPolicy policy :
       {PackingPolicy::kBestFit, PackingPolicy::kWorstFit, PackingPolicy::kRandomFit}) {
    Scheduler indexed(policy, Rng(99), PlacementEngine::kIndexed);
    Scheduler linear(policy, Rng(99), PlacementEngine::kLinearScan);
    Rng workload(1234);
    const int num_machines = 17;
    indexed.Reset(num_machines);
    linear.Reset(num_machines);
    std::vector<int> placed;
    for (int round = 0; round < 50; ++round) {
      for (int m = 0; m < num_machines; ++m) {
        // Coarse quantization forces frequent capacity ties.
        const double free = 0.25 * static_cast<double>(workload.UniformInt(5));
        indexed.Publish(m, free);
        linear.Publish(m, free);
      }
      placed.clear();
      for (int task = 0; task < 12; ++task) {
        const double limit = 0.1 + 0.2 * workload.UniformDouble();
        const int a = indexed.Place(limit, placed);
        const int b = linear.Place(limit, placed);
        ASSERT_EQ(a, b) << PackingPolicyName(policy) << " round " << round;
        if (a >= 0) {
          placed.push_back(a);
        }
      }
      for (int m = 0; m < num_machines; ++m) {
        ASSERT_DOUBLE_EQ(indexed.free_capacity(m), linear.free_capacity(m));
      }
    }
  }
}

TEST(SchedulerTestBasics, PolicyNames) {
  EXPECT_EQ(PackingPolicyName(PackingPolicy::kBestFit), "best-fit");
  EXPECT_EQ(PackingPolicyName(PackingPolicy::kWorstFit), "worst-fit");
  EXPECT_EQ(PackingPolicyName(PackingPolicy::kRandomFit), "random-fit");
}

TEST(SchedulerDeathTest, PlaceBeforeUpdateAborts) {
  Scheduler scheduler(PackingPolicy::kBestFit, Rng(10));
  EXPECT_DEATH(scheduler.Place(0.1, {}), "UpdateFreeCapacity");
}

}  // namespace
}  // namespace crf
