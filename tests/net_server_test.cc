// Loopback contract of the network serve tier (crf/net/server.h): state
// streamed over TCP is bit-identical to an in-process replay for every
// predictor family, a shutdown-sealed checkpoint resumes bit-identically,
// and protocol violations draw a kError + connection close — never a crash
// or a CHECK abort — while the server keeps serving other clients.

#include "crf/net/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "crf/core/spec_parser.h"
#include "crf/net/client.h"
#include "crf/net/loadgen.h"
#include "crf/serve/checkpoint.h"
#include "crf/serve/replay.h"
#include "crf/trace/trace_builder.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

CellTrace RandomCell(uint64_t seed, const std::string& name = "net_cell") {
  Rng rng(seed);
  const Interval num_intervals = 48 + static_cast<Interval>(rng.UniformInt(17));
  const int num_machines = 5 + static_cast<int>(rng.UniformInt(4));
  CellTraceBuilder builder(name, num_intervals, num_machines);

  TaskId next_id = 1;
  for (int m = 0; m < num_machines; ++m) {
    const int num_tasks = 2 + static_cast<int>(rng.UniformInt(10));
    for (int i = 0; i < num_tasks; ++i) {
      const TaskId id = next_id++;
      const Interval start = static_cast<Interval>(rng.UniformInt(num_intervals));
      const double limit = 0.05 + rng.UniformDouble() * 0.95;
      const Interval len = 1 + static_cast<Interval>(rng.UniformInt(num_intervals - start + 3));
      const int32_t index =
          builder.AddTask(id, id, m, start, limit, SchedulingClass::kLatencySensitive);
      builder.ReserveUsage(index, static_cast<size_t>(len));
      for (Interval k = 0; k < len; ++k) {
        builder.AppendUsage(index, static_cast<float>(limit * rng.UniformDouble()));
      }
    }
  }
  return builder.Seal();
}

std::string TempPath(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string tag = std::string(info->test_suite_name()) + "_" + info->name();
  for (char& c : tag) {
    if (c == '/') {
      c = '_';
    }
  }
  return ::testing::TempDir() + "/" + tag + "_" + name;
}

ReplayOptions TestReplayOptions() {
  ReplayOptions options;
  options.num_shards = 4;
  options.parallel = false;
  return options;
}

// Owns a replayer + running server on an ephemeral loopback port.
struct ServerHarness {
  ServerHarness(const CellTrace& cell, const PredictorSpec& spec,
                const std::string& checkpoint_out = "") {
    replayer = std::make_unique<StreamReplayer>(cell, spec, TestReplayOptions());
    Serve(checkpoint_out);
  }
  ServerHarness(std::unique_ptr<StreamReplayer> resumed, const std::string& checkpoint_out)
      : replayer(std::move(resumed)) {
    Serve(checkpoint_out);
  }

  void Serve(const std::string& checkpoint_out) {
    NetServerOptions net;
    net.checkpoint_out = checkpoint_out;
    server = std::make_unique<OvercommitServer>(*replayer, net);
    std::string error;
    started = server->Start(&error);
    EXPECT_TRUE(started) << error;
  }

  std::unique_ptr<StreamReplayer> replayer;
  std::unique_ptr<OvercommitServer> server;
  bool started = false;
};

LoadGenOptions TestLoadGenOptions(int port) {
  LoadGenOptions options;
  options.host = "127.0.0.1";
  options.port = port;
  options.client_threads = 2;
  options.batch_ticks = 7;  // deliberately misaligned with the window
  options.verify_options = TestReplayOptions();
  return options;
}

class NetServerFamilyTest : public ::testing::TestWithParam<const char*> {};

// The tentpole differential: stream the whole trace over loopback and
// bit-compare every machine's end state (and the cell sums) against an
// in-process replay of the same trace — per predictor family, including the
// chance/flex families whose state machines are the most intricate.
TEST_P(NetServerFamilyTest, LoopbackStateIsBitIdenticalToInProcessReplay) {
  const CellTrace cell = RandomCell(101);
  std::string spec_error;
  const auto spec = ParsePredictorSpec(GetParam(), &spec_error);
  ASSERT_TRUE(spec.has_value()) << spec_error;

  ServerHarness harness(cell, *spec);
  ASSERT_TRUE(harness.started);

  LoadGenReport report;
  ASSERT_TRUE(RunLoadGen(cell, *spec, TestLoadGenOptions(harness.server->port()), &report))
      << report.error;
  EXPECT_GT(report.events_sent, 0u);
  EXPECT_TRUE(report.verify_ran);
  EXPECT_EQ(report.mismatched_machines, 0);
  EXPECT_TRUE(report.verified);
  EXPECT_TRUE(report.shutdown_sent);
  harness.server->Wait();
  EXPECT_TRUE(harness.replayer->Done());
}

INSTANTIATE_TEST_SUITE_P(PredictorFamilies, NetServerFamilyTest,
                         ::testing::Values("limit-sum", "n-sigma:3", "rc-like:99",
                                           "borg-default:0.9", "autopilot:98:1.1",
                                           "max(chance:0.02,flex:95:1.2)",
                                           "max(n-sigma:5,rc-like:99)"));

// Shutdown mid-trace seals a CRFCKPT1; resuming a fresh server from it and
// streaming the remainder must land bit-identically on the same end state
// as an uninterrupted from-scratch replay (the loadgen verifier's reference).
TEST(NetServerCheckpointTest, ShutdownSealResumesBitIdentically) {
  const CellTrace cell = RandomCell(202);
  std::string spec_error;
  const auto spec = ParsePredictorSpec("max(chance:0.02,flex:95:1.2)", &spec_error);
  ASSERT_TRUE(spec.has_value()) << spec_error;
  const std::string ckpt = TempPath("seal.ckpt");
  const Interval half = cell.num_intervals / 2;

  {
    ServerHarness harness(cell, *spec, ckpt);
    ASSERT_TRUE(harness.started);
    LoadGenOptions options = TestLoadGenOptions(harness.server->port());
    options.until = half;
    options.verify = false;  // end state checked after the resumed leg
    LoadGenReport report;
    ASSERT_TRUE(RunLoadGen(cell, *spec, options, &report)) << report.error;
    EXPECT_TRUE(report.sealed);
    EXPECT_EQ(report.checkpoint_path, ckpt);
    EXPECT_EQ(report.final_tick, half);
    harness.server->Wait();
    EXPECT_TRUE(harness.server->sealed());
    EXPECT_EQ(harness.server->sealed_tick(), half);
  }

  std::string error;
  auto resumed = LoadCheckpoint(ckpt, cell, TestReplayOptions(), &error);
  ASSERT_NE(resumed, nullptr) << error;
  EXPECT_EQ(resumed->next_tick(), half);

  ServerHarness harness(std::move(resumed), "");
  ASSERT_TRUE(harness.started);
  LoadGenReport report;
  ASSERT_TRUE(RunLoadGen(cell, *spec, TestLoadGenOptions(harness.server->port()), &report))
      << report.error;
  EXPECT_TRUE(report.verify_ran);
  EXPECT_TRUE(report.verified) << report.mismatched_machines << " machines mismatched";
  harness.server->Wait();
  EXPECT_TRUE(harness.replayer->Done());
}

// Sealing is refused while an ingest window is still open: the accumulators
// hold pushes past next_tick, so a checkpoint cut there could not resume.
TEST(NetServerCheckpointTest, SealIsRefusedMidWindow) {
  const CellTrace cell = RandomCell(303);
  std::string spec_error;
  const auto spec = ParsePredictorSpec("n-sigma:3", &spec_error);
  ASSERT_TRUE(spec.has_value()) << spec_error;
  ServerHarness harness(cell, *spec, TempPath("refused.ckpt"));
  ASSERT_TRUE(harness.started);

  NetClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port(), &error)) << error;
  // Open a window on shard 0 without finishing it: one tick of machine 0.
  EventLog log(cell);
  IngestBatchRequest request;
  request.machine = 0;
  request.from_tick = 0;
  request.until_tick = 1;
  request.window_until = cell.num_intervals;
  EventLog::MachineCursor cursor = log.CreateCursor(0);
  cursor.EmitTick(0, request.events);
  ASSERT_TRUE(client.IngestBatch(request, &error).has_value()) << error;

  NetClient shutdown_client;
  ASSERT_TRUE(shutdown_client.Connect("127.0.0.1", harness.server->port(), &error)) << error;
  ShutdownRequest down;
  const auto response = shutdown_client.Shutdown(down, &error);
  EXPECT_FALSE(response.has_value());
  EXPECT_NE(error.find("cannot seal"), std::string::npos) << error;
  harness.server->Wait();  // shutdown op still stops the server
  EXPECT_FALSE(harness.server->sealed());
}

// Protocol violations: wrong machine order within a shard, a mismatched
// window boundary, and a tick regression each draw a kError and close only
// the offending connection; the server remains healthy for other clients.
TEST(NetServerProtocolTest, ViolationsDrawErrorAndConnectionClose) {
  const CellTrace cell = RandomCell(404);
  std::string spec_error;
  const auto spec = ParsePredictorSpec("limit-sum", &spec_error);
  ASSERT_TRUE(spec.has_value()) << spec_error;
  ServerHarness harness(cell, *spec);
  ASSERT_TRUE(harness.started);
  const int port = harness.server->port();
  EventLog log(cell);

  std::string error;
  {
    // Machine out of range.
    NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port, &error)) << error;
    MachineQueryRequest query;
    query.machine = cell.num_machines() + 5;
    EXPECT_FALSE(client.MachineQuery(query, &error).has_value());
    EXPECT_NE(error.find("machine"), std::string::npos) << error;
  }
  {
    // Shard protocol: the first streamed machine must be the shard's first.
    NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port, &error)) << error;
    IngestBatchRequest request;
    request.machine = 1;  // shard 0 owns machines [0, 2) here; 0 must be first
    request.from_tick = 0;
    request.until_tick = 1;
    request.window_until = cell.num_intervals;
    EventLog::MachineCursor cursor = log.CreateCursor(1);
    cursor.EmitTick(0, request.events);
    EXPECT_FALSE(client.IngestBatch(request, &error).has_value());
    // The connection is closed after the error: the next call fails too.
    EXPECT_FALSE(client.CellQuery(&error).has_value());
  }
  {
    // Roster violation: a departure for a task that is not resident.
    NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port, &error)) << error;
    IngestBatchRequest request;
    request.machine = 0;
    request.from_tick = 0;
    request.until_tick = 1;
    request.window_until = cell.num_intervals;
    StreamEvent bogus;
    bogus.kind = StreamEventKind::kTaskDeparture;
    bogus.task_index = 999999;
    bogus.tick = 0;
    bogus.task_id = 999999;
    bogus.limit = 0.5;
    request.events.push_back(bogus);
    EXPECT_FALSE(client.IngestBatch(request, &error).has_value());
    EXPECT_NE(error.find("departure"), std::string::npos) << error;
  }
  {
    // Raw garbage bytes: not a CRFNET1 frame, connection dropped, no crash.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_GT(::send(fd, garbage, sizeof(garbage), 0), 0);
    char buffer[256];
    // The server answers with a kError frame (or just closes); either way
    // the connection reaches EOF without wedging.
    while (::recv(fd, buffer, sizeof(buffer), 0) > 0) {
    }
    ::close(fd);
  }

  // After all that abuse a well-behaved client still gets clean service.
  LoadGenReport report;
  ASSERT_TRUE(RunLoadGen(cell, *spec, TestLoadGenOptions(port), &report)) << report.error;
  EXPECT_TRUE(report.verified);
  EXPECT_GE(harness.server->net_metrics().frames_rejected(), 1u);
  harness.server->Wait();
}

// A validation error mid-batch must leave the shard's streaming cursor on
// the applied prefix: the ticks before the bad one are ingested, a fresh
// client resumes at the first unapplied tick, and a replay of an
// already-applied tick draws a kError — never a CHECK abort (the cursor
// and the replayer can never disagree about what was applied).
TEST(NetServerProtocolTest, MidBatchErrorLeavesCursorOnAppliedPrefix) {
  const CellTrace cell = RandomCell(707);
  std::string spec_error;
  const auto spec = ParsePredictorSpec("limit-sum", &spec_error);
  ASSERT_TRUE(spec.has_value()) << spec_error;
  ServerHarness harness(cell, *spec);
  ASSERT_TRUE(harness.started);
  const int port = harness.server->port();
  EventLog log(cell);

  std::string error;
  {
    // Ticks [0, 2) for machine 0, tick 1 corrupted by a trailing departure
    // of a non-resident task: tick 0 applies, tick 1 is rejected.
    NetClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port, &error)) << error;
    IngestBatchRequest request;
    request.machine = 0;
    request.from_tick = 0;
    request.until_tick = 2;
    request.window_until = cell.num_intervals;
    EventLog::MachineCursor cursor = log.CreateCursor(0);
    cursor.EmitTick(0, request.events);
    cursor.EmitTick(1, request.events);
    StreamEvent bogus;
    bogus.kind = StreamEventKind::kTaskDeparture;
    bogus.task_index = 999999;
    bogus.tick = 1;
    bogus.task_id = 999999;
    bogus.limit = 0.5;
    request.events.push_back(bogus);
    EXPECT_FALSE(client.IngestBatch(request, &error).has_value());
  }
  {
    // Replaying the already-applied tick 0 is out of protocol now; the
    // server must answer with an error frame, not abort.
    NetClient stale;
    ASSERT_TRUE(stale.Connect("127.0.0.1", port, &error)) << error;
    IngestBatchRequest request;
    request.machine = 0;
    request.from_tick = 0;
    request.until_tick = 1;
    request.window_until = cell.num_intervals;
    EventLog::MachineCursor cursor = log.CreateCursor(0);
    cursor.EmitTick(0, request.events);
    EXPECT_FALSE(stale.IngestBatch(request, &error).has_value());
    EXPECT_NE(error.find("expected from tick 1"), std::string::npos) << error;
  }
  {
    // Resuming at the first unapplied tick streams on cleanly.
    NetClient resume;
    ASSERT_TRUE(resume.Connect("127.0.0.1", port, &error)) << error;
    IngestBatchRequest request;
    request.machine = 0;
    request.from_tick = 1;
    request.until_tick = 2;
    request.window_until = cell.num_intervals;
    EventLog::MachineCursor cursor = log.CreateCursor(0);
    std::vector<StreamEvent> scratch;
    cursor.EmitTick(0, scratch);
    cursor.EmitTick(1, request.events);
    const auto response = resume.IngestBatch(request, &error);
    ASSERT_TRUE(response.has_value()) << error;
    EXPECT_EQ(response->last_tick, 1);
  }
  harness.server->RequestStop();
}

// The window protocol: a second batch must continue the machine at its next
// tick and keep the window boundary every shard agreed on.
TEST(NetServerProtocolTest, WindowMismatchIsRejected) {
  const CellTrace cell = RandomCell(505);
  std::string spec_error;
  const auto spec = ParsePredictorSpec("limit-sum", &spec_error);
  ASSERT_TRUE(spec.has_value()) << spec_error;
  ServerHarness harness(cell, *spec);
  ASSERT_TRUE(harness.started);
  EventLog log(cell);

  std::string error;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port(), &error)) << error;
  IngestBatchRequest request;
  request.machine = 0;
  request.from_tick = 0;
  request.until_tick = 2;
  request.window_until = cell.num_intervals;
  EventLog::MachineCursor cursor = log.CreateCursor(0);
  cursor.EmitTick(0, request.events);
  cursor.EmitTick(1, request.events);
  ASSERT_TRUE(client.IngestBatch(request, &error).has_value()) << error;

  // Same machine, right tick, but a different window boundary.
  request.events.clear();
  request.from_tick = 2;
  request.until_tick = 3;
  request.window_until = cell.num_intervals - 1;
  cursor.EmitTick(2, request.events);
  EXPECT_FALSE(client.IngestBatch(request, &error).has_value());
  EXPECT_NE(error.find("window"), std::string::npos) << error;
  harness.server->RequestStop();
}

// Admission checks answer against the live predicted peak: a zero-size task
// fits iff the machine has headroom, an absurd one never does, and the
// reported headroom is capacity - predicted_peak.
TEST(NetServerQueryTest, AdmissionCheckUsesPredictedPeakHeadroom) {
  const CellTrace cell = RandomCell(606);
  std::string spec_error;
  const auto spec = ParsePredictorSpec("n-sigma:3", &spec_error);
  ASSERT_TRUE(spec.has_value()) << spec_error;
  ServerHarness harness(cell, *spec);
  ASSERT_TRUE(harness.started);

  LoadGenOptions options = TestLoadGenOptions(harness.server->port());
  options.send_shutdown = false;
  LoadGenReport report;
  ASSERT_TRUE(RunLoadGen(cell, *spec, options, &report)) << report.error;
  ASSERT_TRUE(report.verified);

  std::string error;
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.server->port(), &error)) << error;
  AdmissionCheckRequest request;
  request.machine = 0;
  request.task_limit = 1e9;
  auto verdict = client.AdmissionCheck(request, &error);
  ASSERT_TRUE(verdict.has_value()) << error;
  EXPECT_FALSE(verdict->admitted);
  EXPECT_EQ(verdict->capacity, cell.machine_capacity(0));
  EXPECT_EQ(verdict->headroom, verdict->capacity - verdict->predicted_peak);

  request.task_limit = 0.0;
  verdict = client.AdmissionCheck(request, &error);
  ASSERT_TRUE(verdict.has_value()) << error;
  EXPECT_EQ(verdict->admitted, verdict->predicted_peak <= verdict->capacity);

  harness.server->RequestStop();
}

}  // namespace
}  // namespace crf
