#include "crf/trace/trace.h"

#include <gtest/gtest.h>

#include "crf/trace/trace_builder.h"

namespace crf {
namespace {

int32_t AddTask(CellTraceBuilder& builder, TaskId id, int machine, Interval start, double limit,
                const std::vector<float>& usage,
                SchedulingClass cls = SchedulingClass::kLatencySensitive) {
  const int32_t index = builder.AddTask(id, /*job_id=*/id, machine, start, limit, cls);
  for (const float u : usage) {
    builder.AppendUsage(index, u);
  }
  return index;
}

CellTrace MakeCell() {
  CellTraceBuilder builder("test", /*num_intervals=*/6, /*num_machines=*/2);
  builder.set_machine_capacity(0, 1.0);
  builder.set_machine_capacity(1, 2.0);
  AddTask(builder, 1, 0, 0, 0.5, {0.1f, 0.2f, 0.3f});
  AddTask(builder, 2, 0, 2, 0.4, {0.4f, 0.4f}, SchedulingClass::kBatch);
  AddTask(builder, 3, 1, 1, 0.3, {0.2f, 0.2f, 0.2f, 0.2f});
  return builder.Seal();
}

TEST(SchedulingClassTest, IsServing) {
  EXPECT_FALSE(IsServing(SchedulingClass::kBestEffort));
  EXPECT_FALSE(IsServing(SchedulingClass::kBatch));
  EXPECT_TRUE(IsServing(SchedulingClass::kLatencySensitive));
  EXPECT_TRUE(IsServing(SchedulingClass::kHighlySensitive));
}

TEST(RichUsageTest, AtPercentileSelectsColumns) {
  RichUsage rich;
  rich.p50 = 1;
  rich.p60 = 2;
  rich.p70 = 3;
  rich.p80 = 4;
  rich.p90 = 5;
  rich.p95 = 6;
  rich.p99 = 7;
  rich.max = 8;
  EXPECT_EQ(rich.AtPercentile(50), 1);
  EXPECT_EQ(rich.AtPercentile(40), 1);  // Below p50 clamps to p50.
  EXPECT_EQ(rich.AtPercentile(80), 4);
  EXPECT_EQ(rich.AtPercentile(99), 7);
  EXPECT_EQ(rich.AtPercentile(100), 8);
}

TEST(RichColumnTest, ColumnForPercentileMatchesRowLookup) {
  EXPECT_EQ(RichColumnForPercentile(40), RichColumn::kP50);  // Clamps like AtPercentile.
  EXPECT_EQ(RichColumnForPercentile(50), RichColumn::kP50);
  EXPECT_EQ(RichColumnForPercentile(60), RichColumn::kP60);
  EXPECT_EQ(RichColumnForPercentile(70), RichColumn::kP70);
  EXPECT_EQ(RichColumnForPercentile(80), RichColumn::kP80);
  EXPECT_EQ(RichColumnForPercentile(90), RichColumn::kP90);
  EXPECT_EQ(RichColumnForPercentile(95), RichColumn::kP95);
  EXPECT_EQ(RichColumnForPercentile(99), RichColumn::kP99);
  EXPECT_EQ(RichColumnForPercentile(100), RichColumn::kMax);
}

TEST(TaskViewTest, LifetimeAccessors) {
  const CellTrace cell = MakeCell();
  const TaskView task = cell.task(1);  // Task 2: start 2, two samples.
  EXPECT_EQ(task.start(), 2);
  EXPECT_EQ(task.end(), 4);
  EXPECT_EQ(task.runtime(), 2);
  EXPECT_EQ(task.departure(), 4);
  EXPECT_FALSE(task.ResidentAt(1));
  EXPECT_TRUE(task.ResidentAt(2));
  EXPECT_TRUE(task.ResidentAt(3));
  EXPECT_FALSE(task.ResidentAt(4));
}

TEST(TaskViewTest, UsageAtZeroOutsideLifetime) {
  const CellTrace cell = MakeCell();
  const TaskView task = cell.task(1);
  EXPECT_DOUBLE_EQ(task.UsageAt(1), 0.0);
  EXPECT_FLOAT_EQ(task.UsageAt(2), 0.4f);
  EXPECT_FLOAT_EQ(task.UsageAt(3), 0.4f);
  EXPECT_DOUBLE_EQ(task.UsageAt(4), 0.0);
}

TEST(TaskViewTest, PeakUsage) {
  CellTraceBuilder builder("peak", 4, 1);
  AddTask(builder, 1, 0, 0, 1.0, {0.1f, 0.7f, 0.3f});
  const CellTrace cell = builder.Seal();
  EXPECT_FLOAT_EQ(cell.task(0).PeakUsage(), 0.7f);
}

// The one documented residency rule: a task occupies its machine over
// [start, departure()) with departure() = max(end(), start + 1), so a task
// sealed with zero usage samples is still resident for exactly one interval
// (it held its limit while it was scheduled, even if no usage was recorded).
TEST(TaskViewTest, ZeroLengthTaskResidentForOneInterval) {
  CellTraceBuilder builder("zero", 4, 1);
  AddTask(builder, 1, 0, 2, 0.5, {});
  const CellTrace cell = builder.Seal();
  const TaskView task = cell.task(0);
  EXPECT_EQ(task.runtime(), 0);
  EXPECT_EQ(task.end(), 2);
  EXPECT_EQ(task.departure(), 3);
  EXPECT_FALSE(task.ResidentAt(1));
  EXPECT_TRUE(task.ResidentAt(2));
  EXPECT_FALSE(task.ResidentAt(3));
  EXPECT_DOUBLE_EQ(task.UsageAt(2), 0.0);

  // The same rule flows through every aggregated series: the zero-length
  // task contributes its limit (but no usage) at exactly interval 2.
  const std::vector<double> limits = cell.MachineLimitSeries(0);
  EXPECT_DOUBLE_EQ(limits[1], 0.0);
  EXPECT_DOUBLE_EQ(limits[2], 0.5);
  EXPECT_DOUBLE_EQ(limits[3], 0.0);
  const std::vector<int32_t> counts = cell.MachineResidentCount(0);
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 0);
  const std::vector<double> usage = cell.MachineUsageSeries(0);
  EXPECT_DOUBLE_EQ(usage[2], 0.0);

  MachineSeriesCursor cursor(cell);
  cursor.Reset(0);
  for (Interval t = 0; t < cell.num_intervals; ++t) {
    ASSERT_TRUE(cursor.Next());
    EXPECT_EQ(cursor.interval(), t);
    EXPECT_DOUBLE_EQ(cursor.limit_sum(), t == 2 ? 0.5 : 0.0);
    EXPECT_EQ(cursor.resident(), t == 2 ? 1 : 0);
  }
  EXPECT_FALSE(cursor.Next());
}

TEST(CellTraceTest, MachineUsageSeriesSumsResidentTasks) {
  const CellTrace cell = MakeCell();
  const std::vector<double> usage = cell.MachineUsageSeries(0);
  ASSERT_EQ(usage.size(), 6u);
  EXPECT_FLOAT_EQ(usage[0], 0.1f);
  EXPECT_FLOAT_EQ(usage[1], 0.2f);
  EXPECT_NEAR(usage[2], 0.3 + 0.4, 1e-6);
  EXPECT_NEAR(usage[3], 0.4, 1e-6);
  EXPECT_DOUBLE_EQ(usage[4], 0.0);
}

TEST(CellTraceTest, MachineLimitSeries) {
  const CellTrace cell = MakeCell();
  const std::vector<double> limits = cell.MachineLimitSeries(0);
  EXPECT_DOUBLE_EQ(limits[0], 0.5);
  EXPECT_DOUBLE_EQ(limits[2], 0.9);
  EXPECT_DOUBLE_EQ(limits[3], 0.4);
  EXPECT_DOUBLE_EQ(limits[5], 0.0);
}

TEST(CellTraceTest, MachineResidentCount) {
  const CellTrace cell = MakeCell();
  const std::vector<int32_t> counts = cell.MachineResidentCount(0);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[4], 0);
}

TEST(CellTraceTest, CursorMatchesSeriesHelpers) {
  const CellTrace cell = MakeCell();
  MachineSeriesCursor cursor(cell);
  for (int m = 0; m < cell.num_machines(); ++m) {
    const std::vector<double> usage = cell.MachineUsageSeries(m);
    const std::vector<double> limits = cell.MachineLimitSeries(m);
    const std::vector<int32_t> counts = cell.MachineResidentCount(m);
    cursor.Reset(m);
    for (Interval t = 0; t < cell.num_intervals; ++t) {
      ASSERT_TRUE(cursor.Next());
      EXPECT_EQ(cursor.interval(), t);
      EXPECT_NEAR(cursor.usage(), usage[t], 1e-9);
      EXPECT_NEAR(cursor.limit_sum(), limits[t], 1e-9);
      EXPECT_EQ(cursor.resident(), counts[t]);
    }
    EXPECT_FALSE(cursor.Next());
  }
}

TEST(CellTraceTest, FilterToServingTasksRebuildsIndices) {
  CellTrace cell = MakeCell();
  cell.FilterToServingTasks();
  ASSERT_EQ(cell.num_tasks(), 2);
  for (int32_t i = 0; i < cell.num_tasks(); ++i) {
    EXPECT_TRUE(IsServing(cell.task(i).sched_class()));
  }
  // Machine 0 keeps only the serving task; indices must be rebuilt.
  ASSERT_EQ(cell.machine_tasks(0).size(), 1u);
  EXPECT_EQ(cell.task(cell.machine_tasks(0)[0]).task_id(), 1);
  ASSERT_EQ(cell.machine_tasks(1).size(), 1u);
  EXPECT_EQ(cell.task(cell.machine_tasks(1)[0]).task_id(), 3);
}

TEST(CellTraceTest, TotalCapacity) {
  const CellTrace cell = MakeCell();
  EXPECT_DOUBLE_EQ(cell.TotalCapacity(), 3.0);
  EXPECT_EQ(cell.TotalTaskCount(), 3);
}

TEST(CellTraceTest, CopiesShareTheSealedArena) {
  const CellTrace cell = MakeCell();
  const CellTrace copy = cell;  // Cheap: shares the immutable arena.
  EXPECT_EQ(copy.arena_bytes().data(), cell.arena_bytes().data());
  EXPECT_EQ(copy.num_tasks(), cell.num_tasks());
  EXPECT_EQ(copy.task(0).usage().data(), cell.task(0).usage().data());
}

TEST(CellTraceTest, DefaultTraceIsEmpty) {
  const CellTrace cell;
  EXPECT_EQ(cell.num_tasks(), 0);
  EXPECT_EQ(cell.num_machines(), 0);
  EXPECT_TRUE(cell.arena_bytes().empty());
  EXPECT_DOUBLE_EQ(cell.TotalCapacity(), 0.0);
}

}  // namespace
}  // namespace crf
