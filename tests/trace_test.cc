#include "crf/trace/trace.h"

#include <gtest/gtest.h>

namespace crf {
namespace {

TaskTrace MakeTask(TaskId id, int machine, Interval start, double limit,
                   std::vector<float> usage,
                   SchedulingClass cls = SchedulingClass::kLatencySensitive) {
  TaskTrace task;
  task.task_id = id;
  task.job_id = id;
  task.machine_index = machine;
  task.start = start;
  task.limit = limit;
  task.sched_class = cls;
  task.usage = std::move(usage);
  return task;
}

CellTrace MakeCell() {
  CellTrace cell;
  cell.name = "test";
  cell.num_intervals = 6;
  cell.machines.resize(2);
  cell.machines[0].capacity = 1.0;
  cell.machines[1].capacity = 2.0;
  cell.tasks.push_back(MakeTask(1, 0, 0, 0.5, {0.1f, 0.2f, 0.3f}));
  cell.tasks.push_back(MakeTask(2, 0, 2, 0.4, {0.4f, 0.4f}, SchedulingClass::kBatch));
  cell.tasks.push_back(MakeTask(3, 1, 1, 0.3, {0.2f, 0.2f, 0.2f, 0.2f}));
  cell.machines[0].task_indices = {0, 1};
  cell.machines[1].task_indices = {2};
  return cell;
}

TEST(SchedulingClassTest, IsServing) {
  EXPECT_FALSE(IsServing(SchedulingClass::kBestEffort));
  EXPECT_FALSE(IsServing(SchedulingClass::kBatch));
  EXPECT_TRUE(IsServing(SchedulingClass::kLatencySensitive));
  EXPECT_TRUE(IsServing(SchedulingClass::kHighlySensitive));
}

TEST(RichUsageTest, AtPercentileSelectsColumns) {
  RichUsage rich;
  rich.p50 = 1;
  rich.p60 = 2;
  rich.p70 = 3;
  rich.p80 = 4;
  rich.p90 = 5;
  rich.p95 = 6;
  rich.p99 = 7;
  rich.max = 8;
  EXPECT_EQ(rich.AtPercentile(50), 1);
  EXPECT_EQ(rich.AtPercentile(40), 1);  // Below p50 clamps to p50.
  EXPECT_EQ(rich.AtPercentile(80), 4);
  EXPECT_EQ(rich.AtPercentile(99), 7);
  EXPECT_EQ(rich.AtPercentile(100), 8);
}

TEST(TaskTraceTest, LifetimeAccessors) {
  const TaskTrace task = MakeTask(1, 0, 2, 0.5, {0.1f, 0.2f});
  EXPECT_EQ(task.end(), 4);
  EXPECT_EQ(task.runtime(), 2);
  EXPECT_FALSE(task.ResidentAt(1));
  EXPECT_TRUE(task.ResidentAt(2));
  EXPECT_TRUE(task.ResidentAt(3));
  EXPECT_FALSE(task.ResidentAt(4));
}

TEST(TaskTraceTest, UsageAtZeroOutsideLifetime) {
  const TaskTrace task = MakeTask(1, 0, 2, 0.5, {0.1f, 0.2f});
  EXPECT_DOUBLE_EQ(task.UsageAt(1), 0.0);
  EXPECT_FLOAT_EQ(task.UsageAt(2), 0.1f);
  EXPECT_FLOAT_EQ(task.UsageAt(3), 0.2f);
  EXPECT_DOUBLE_EQ(task.UsageAt(4), 0.0);
}

TEST(TaskTraceTest, PeakUsage) {
  const TaskTrace task = MakeTask(1, 0, 0, 1.0, {0.1f, 0.7f, 0.3f});
  EXPECT_FLOAT_EQ(task.PeakUsage(), 0.7f);
}

TEST(CellTraceTest, MachineUsageSeriesSumsResidentTasks) {
  const CellTrace cell = MakeCell();
  const std::vector<double> usage = cell.MachineUsageSeries(0);
  ASSERT_EQ(usage.size(), 6u);
  EXPECT_FLOAT_EQ(usage[0], 0.1f);
  EXPECT_FLOAT_EQ(usage[1], 0.2f);
  EXPECT_NEAR(usage[2], 0.3 + 0.4, 1e-6);
  EXPECT_NEAR(usage[3], 0.4, 1e-6);
  EXPECT_DOUBLE_EQ(usage[4], 0.0);
}

TEST(CellTraceTest, MachineLimitSeries) {
  const CellTrace cell = MakeCell();
  const std::vector<double> limits = cell.MachineLimitSeries(0);
  EXPECT_DOUBLE_EQ(limits[0], 0.5);
  EXPECT_DOUBLE_EQ(limits[2], 0.9);
  EXPECT_DOUBLE_EQ(limits[3], 0.4);
  EXPECT_DOUBLE_EQ(limits[5], 0.0);
}

TEST(CellTraceTest, MachineResidentCount) {
  const CellTrace cell = MakeCell();
  const std::vector<int32_t> counts = cell.MachineResidentCount(0);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[2], 2);
  EXPECT_EQ(counts[4], 0);
}

TEST(CellTraceTest, FilterToServingTasksRebuildsIndices) {
  CellTrace cell = MakeCell();
  cell.FilterToServingTasks();
  ASSERT_EQ(cell.tasks.size(), 2u);
  for (const TaskTrace& task : cell.tasks) {
    EXPECT_TRUE(IsServing(task.sched_class));
  }
  // Machine 0 keeps only the serving task; indices must be rebuilt.
  ASSERT_EQ(cell.machines[0].task_indices.size(), 1u);
  EXPECT_EQ(cell.tasks[cell.machines[0].task_indices[0]].task_id, 1);
  ASSERT_EQ(cell.machines[1].task_indices.size(), 1u);
  EXPECT_EQ(cell.tasks[cell.machines[1].task_indices[0]].task_id, 3);
}

TEST(CellTraceTest, TotalCapacity) {
  const CellTrace cell = MakeCell();
  EXPECT_DOUBLE_EQ(cell.TotalCapacity(), 3.0);
  EXPECT_EQ(cell.TotalTaskCount(), 3);
}

}  // namespace
}  // namespace crf
