// The paper's formal and empirical claims, encoded as properties:
//
//  1. Safety (Section 3.1): a scheduler admitting a task only when the peak
//     oracle fits keeps total usage within capacity — equivalently, a
//     predictor with no oracle violations never admits an overload.
//  2. Pooling effect (Section 2.2): max of the sum <= sum of the maxes.
//  3. Risk/savings trade-off (Figs 8-9): violation rate decreases and
//     savings decrease as N (or the percentile) grows.
//  4. Max-predictor composition (Section 5.4): its violation rate is at most
//     each component's.
//  5. The conservative predictor (sum of limits) never overcommits and never
//     violates.

#include <gtest/gtest.h>

#include <algorithm>

#include "crf/core/oracle.h"
#include "crf/sim/simulator.h"
#include "crf/trace/generator.h"
#include "crf/trace/trace_stats.h"

namespace crf {
namespace {

const CellTrace& PropertyCell() {
  static const CellTrace* cell = [] {
    CellProfile profile = SimCellProfile('a');
    profile.num_machines = 20;
    GeneratorOptions options;
    options.num_intervals = 3 * kIntervalsPerDay;
    auto* trace = new CellTrace(GenerateCellTrace(profile, options, Rng(1234)));
    trace->FilterToServingTasks();
    return trace;
  }();
  return *cell;
}

TEST(PaperPropertyTest, PoolingEffectHoldsPerMachine) {
  // max_t(sum_i U_i(t)) <= sum_i max_t(U_i(t)) for every machine: the
  // opportunity Fig 1 quantifies.
  const CellTrace& cell = PropertyCell();
  for (int m = 0; m < cell.num_machines(); ++m) {
    const std::vector<double> usage = cell.MachineUsageSeries(m);
    const double machine_peak = *std::max_element(usage.begin(), usage.end());
    double task_peak_sum = 0.0;
    for (const int32_t index : cell.machine_tasks(m)) {
      task_peak_sum += cell.task(index).PeakUsage();
    }
    EXPECT_LE(machine_peak, task_peak_sum + 1e-6);
  }
}

TEST(PaperPropertyTest, PoolingGapIsSubstantial) {
  // Fig 1: at the median the task-level peak sum is far above the
  // machine-level peak (the paper reports ~50%; require at least 15%).
  const CellTrace& cell = PropertyCell();
  const std::vector<double> task_level = TaskLevelFuturePeakSum(cell, kIntervalsPerDay);
  std::vector<double> machine_level(cell.num_intervals, 0.0);
  for (int m = 0; m < cell.num_machines(); ++m) {
    const std::vector<double> oracle = ComputePeakOracle(cell, m, kIntervalsPerDay);
    for (Interval t = 0; t < cell.num_intervals; ++t) {
      machine_level[t] += oracle[t];
    }
  }
  double ratio_sum = 0.0;
  int count = 0;
  for (Interval t = 0; t < cell.num_intervals; t += 4) {
    if (machine_level[t] > 1e-6) {
      ratio_sum += task_level[t] / machine_level[t];
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_GT(ratio_sum / count, 1.15);
}

TEST(PaperPropertyTest, OracleSafetyTheorem) {
  // Section 3.1: if at every instant the prediction is >= the oracle (no
  // violations), then admitting tasks whose limit fits under
  // capacity - prediction can never overload the machine. We verify the
  // core inequality: the oracle equals the realized future maximum of the
  // resident set, so "prediction >= oracle" implies usage never exceeds the
  // prediction for the lifetime of the current set.
  const CellTrace& cell = PropertyCell();
  for (int m = 0; m < 6; ++m) {
    const std::vector<double> oracle = ComputePeakOracle(cell, m, kIntervalsPerDay);
    const std::vector<double> usage = cell.MachineUsageSeries(m);
    // At tau the oracle bounds the usage of tasks present at tau for every
    // future t; in particular it bounds usage at tau itself.
    for (Interval tau = 0; tau < cell.num_intervals; ++tau) {
      EXPECT_GE(oracle[tau], usage[tau] - 1e-9);
    }
  }
}

TEST(PaperPropertyTest, ViolationRateMonotoneInNSigma) {
  const CellTrace& cell = PropertyCell();
  double previous_rate = 1.1;
  for (const double n : {2.0, 5.0, 10.0}) {
    const SimResult result = SimulateCell(cell, NSigmaSpec(n));
    const double rate = result.MeanViolationRate();
    EXPECT_LE(rate, previous_rate + 0.01) << "n=" << n;
    previous_rate = rate;
  }
}

TEST(PaperPropertyTest, SavingsMonotoneDecreasingInNSigma) {
  const CellTrace& cell = PropertyCell();
  double previous_savings = 2.0;
  for (const double n : {2.0, 5.0, 10.0}) {
    const SimResult result = SimulateCell(cell, NSigmaSpec(n));
    const double savings = result.MeanCellSavings();
    EXPECT_LT(savings, previous_savings) << "n=" << n;
    previous_savings = savings;
  }
}

TEST(PaperPropertyTest, ViolationRateMonotoneInRcPercentile) {
  const CellTrace& cell = PropertyCell();
  double previous_rate = 1.1;
  for (const double p : {80.0, 95.0, 99.0}) {
    const SimResult result = SimulateCell(cell, RcLikeSpec(p));
    const double rate = result.MeanViolationRate();
    EXPECT_LE(rate, previous_rate + 0.01) << "p=" << p;
    previous_rate = rate;
  }
}

TEST(PaperPropertyTest, SavingsMonotoneDecreasingInRcPercentile) {
  const CellTrace& cell = PropertyCell();
  double previous_savings = 2.0;
  for (const double p : {80.0, 95.0, 99.0}) {
    const SimResult result = SimulateCell(cell, RcLikeSpec(p));
    EXPECT_LT(result.MeanCellSavings(), previous_savings) << "p=" << p;
    previous_savings = result.MeanCellSavings();
  }
}

TEST(PaperPropertyTest, MaxPredictorViolatesAtMostComponents) {
  const CellTrace& cell = PropertyCell();
  const SimResult n_sigma = SimulateCell(cell, NSigmaSpec(5.0));
  const SimResult rc = SimulateCell(cell, RcLikeSpec(99.0));
  const SimResult max_result = SimulateCell(cell, SimulationMaxSpec());
  for (size_t m = 0; m < max_result.machines.size(); ++m) {
    EXPECT_LE(max_result.machines[m].violations, n_sigma.machines[m].violations);
    EXPECT_LE(max_result.machines[m].violations, rc.machines[m].violations);
  }
}

TEST(PaperPropertyTest, MaxPredictorSavesAtMostComponents) {
  // The pointwise max predicts at least each component, so it saves at most
  // as much. (The paper's Fig 10(c) draws max slightly above N-sigma; that
  // is an artifact of their per-figure normalization — the pointwise
  // inequality must hold.)
  const CellTrace& cell = PropertyCell();
  const SimResult n_sigma = SimulateCell(cell, NSigmaSpec(5.0));
  const SimResult rc = SimulateCell(cell, RcLikeSpec(99.0));
  const SimResult max_result = SimulateCell(cell, SimulationMaxSpec());
  EXPECT_LE(max_result.MeanCellSavings(), n_sigma.MeanCellSavings() + 1e-9);
  EXPECT_LE(max_result.MeanCellSavings(), rc.MeanCellSavings() + 1e-9);
}

TEST(PaperPropertyTest, BorgDefaultRiskierThanMax) {
  // Fig 10(a): the static borg-default policy has a worse violation profile
  // than the adaptive max predictor.
  const CellTrace& cell = PropertyCell();
  const SimResult borg = SimulateCell(cell, BorgDefaultSpec(0.9));
  const SimResult max_result = SimulateCell(cell, SimulationMaxSpec());
  EXPECT_GE(borg.MeanViolationRate(), max_result.MeanViolationRate());
}

TEST(PaperPropertyTest, RcLikeSavesMostAmongUsageDriven) {
  // Fig 10(d): RC-like generates the highest savings (and the most
  // violations) among the usage-driven predictors.
  const CellTrace& cell = PropertyCell();
  const SimResult rc = SimulateCell(cell, RcLikeSpec(99.0));
  const SimResult n_sigma = SimulateCell(cell, NSigmaSpec(5.0));
  const SimResult max_result = SimulateCell(cell, SimulationMaxSpec());
  EXPECT_GT(rc.MeanCellSavings(), n_sigma.MeanCellSavings());
  EXPECT_GT(rc.MeanCellSavings(), max_result.MeanCellSavings());
  EXPECT_GE(rc.MeanViolationRate(), n_sigma.MeanViolationRate());
}

TEST(PaperPropertyTest, OracleHorizonDifferenceShrinks) {
  // Fig 7(b): oracles with longer horizons approach the long-horizon oracle
  // from below, and the difference shrinks as the horizon grows.
  const CellTrace& cell = PropertyCell();
  const Interval reference_horizon = 3 * kIntervalsPerDay;
  double previous_gap = 1e9;
  for (const Interval horizon :
       {3 * kIntervalsPerHour, 12 * kIntervalsPerHour, kIntervalsPerDay}) {
    double gap_sum = 0.0;
    int count = 0;
    for (int m = 0; m < 6; ++m) {
      const std::vector<double> reference = ComputePeakOracle(cell, m, reference_horizon);
      const std::vector<double> shorter = ComputePeakOracle(cell, m, horizon);
      for (Interval t = 0; t < cell.num_intervals; t += 8) {
        if (reference[t] > 1e-6) {
          gap_sum += (reference[t] - shorter[t]) / reference[t];
          ++count;
        }
      }
    }
    const double mean_gap = gap_sum / count;
    EXPECT_GE(mean_gap, -1e-9);
    EXPECT_LT(mean_gap, previous_gap);
    previous_gap = mean_gap;
  }
}

}  // namespace
}  // namespace crf
