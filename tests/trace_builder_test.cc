#include "crf/trace/trace_builder.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace crf {
namespace {

// The seal invariants: every columnar index the engines trust blindly
// (offset monotonicity, CSR consistency, machine-index range) is established
// here, once, so the hot loops can drop their bounds checks.

TEST(CellTraceBuilderTest, SealPacksColumnsInTaskOrder) {
  CellTraceBuilder builder("cell", /*num_intervals=*/8, /*num_machines=*/3);
  builder.set_machine_capacity(0, 1.0);
  builder.set_machine_capacity(1, 2.0);
  builder.set_machine_capacity(2, 4.0);
  const int32_t a =
      builder.AddTask(10, 100, /*machine=*/1, /*start=*/0, 0.5, SchedulingClass::kBatch);
  const int32_t b = builder.AddTask(11, 100, /*machine=*/0, /*start=*/2, 0.25,
                                    SchedulingClass::kLatencySensitive);
  const int32_t c = builder.AddTask(12, 101, /*machine=*/1, /*start=*/1, 1.5,
                                    SchedulingClass::kHighlySensitive);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(c, 2);
  builder.AppendUsage(a, 0.1f);
  builder.AppendUsage(a, 0.2f);
  builder.AppendUsage(c, 0.3f);

  const CellTrace cell = builder.Seal();
  ASSERT_EQ(cell.num_tasks(), 3);
  ASSERT_EQ(cell.num_machines(), 3);
  EXPECT_EQ(cell.task(0).task_id(), 10);
  EXPECT_EQ(cell.task(1).task_id(), 11);
  EXPECT_EQ(cell.task(2).task_id(), 12);
  EXPECT_EQ(cell.task(0).job_id(), 100);
  EXPECT_EQ(cell.task(2).job_id(), 101);
  EXPECT_EQ(cell.task(0).machine_index(), 1);
  EXPECT_EQ(cell.task(1).machine_index(), 0);
  EXPECT_EQ(cell.task(0).start(), 0);
  EXPECT_EQ(cell.task(2).start(), 1);
  EXPECT_DOUBLE_EQ(cell.task(1).limit(), 0.25);
  EXPECT_EQ(cell.task(0).sched_class(), SchedulingClass::kBatch);
  EXPECT_EQ(cell.task(2).sched_class(), SchedulingClass::kHighlySensitive);
  ASSERT_EQ(cell.task(0).usage().size(), 2u);
  EXPECT_FLOAT_EQ(cell.task(0).usage()[1], 0.2f);
  EXPECT_TRUE(cell.task(1).usage().empty());
  ASSERT_EQ(cell.task(2).usage().size(), 1u);
  EXPECT_DOUBLE_EQ(cell.machine_capacity(2), 4.0);
}

TEST(CellTraceBuilderTest, UsageOffsetsAreMonotoneAndCoverTheArena) {
  CellTraceBuilder builder("offsets", /*num_intervals=*/16, /*num_machines=*/2);
  const int lengths[] = {3, 0, 5, 1, 0, 2};
  int64_t total = 0;
  for (int i = 0; i < 6; ++i) {
    const int32_t index = builder.AddTask(i + 1, i + 1, i % 2, /*start=*/0, 1.0,
                                          SchedulingClass::kLatencySensitive);
    for (int k = 0; k < lengths[i]; ++k) {
      builder.AppendUsage(index, 0.01f * static_cast<float>(k));
    }
    total += lengths[i];
  }
  const CellTrace cell = builder.Seal();

  const std::span<const uint64_t> offsets = cell.usage_offsets();
  ASSERT_EQ(offsets.size(), 7u);  // num_tasks + 1 sentinel.
  EXPECT_EQ(offsets[0], 0u);
  for (size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_GE(offsets[i], offsets[i - 1]);
    EXPECT_EQ(offsets[i] - offsets[i - 1], static_cast<uint64_t>(lengths[i - 1]));
  }
  EXPECT_EQ(offsets.back(), static_cast<uint64_t>(total));
  EXPECT_EQ(cell.usage_sample_count(), total);
  EXPECT_EQ(cell.usage_arena().size(), static_cast<size_t>(total));
}

TEST(CellTraceBuilderTest, CsrIndexCoversEveryTaskExactlyOnce) {
  CellTraceBuilder builder("csr", /*num_intervals=*/8, /*num_machines=*/4);
  // Interleave machines so CSR rows are built out of order.
  const int machines[] = {2, 0, 2, 3, 0, 2, 1, 3, 0};
  const int num_tasks = static_cast<int>(std::size(machines));
  for (int i = 0; i < num_tasks; ++i) {
    builder.AddTask(i + 1, 1, machines[i], 0, 1.0, SchedulingClass::kBatch);
  }
  const CellTrace cell = builder.Seal();

  std::vector<int> seen(num_tasks, 0);
  for (int m = 0; m < cell.num_machines(); ++m) {
    for (const int32_t task_index : cell.machine_tasks(m)) {
      ASSERT_GE(task_index, 0);
      ASSERT_LT(task_index, num_tasks);
      EXPECT_EQ(cell.task(task_index).machine_index(), m);
      ++seen[task_index];
    }
  }
  for (int i = 0; i < num_tasks; ++i) {
    EXPECT_EQ(seen[i], 1) << "task " << i;
  }
  // Within a machine, CSR preserves insertion order (engines sort by start
  // themselves but determinism relies on a stable base order).
  const std::span<const int32_t> machine2 = cell.machine_tasks(2);
  ASSERT_EQ(machine2.size(), 3u);
  EXPECT_EQ(machine2[0], 0);
  EXPECT_EQ(machine2[1], 2);
  EXPECT_EQ(machine2[2], 5);
}

TEST(CellTraceBuilderTest, ReadBackMatchesPendingState) {
  CellTraceBuilder builder("readback", /*num_intervals=*/8, /*num_machines=*/2);
  const int32_t index =
      builder.AddTask(7, 70, 1, /*start=*/3, 0.75, SchedulingClass::kLatencySensitive);
  builder.AppendUsage(index, 0.5f);
  builder.AppendUsage(index, 0.6f);
  // The incremental engines (closed-loop cluster sim) read tasks back before
  // sealing; the builder must answer without packing.
  EXPECT_EQ(builder.num_tasks(), 1);
  EXPECT_EQ(builder.task_id(index), 7);
  EXPECT_EQ(builder.task_machine(index), 1);
  EXPECT_EQ(builder.task_start(index), 3);
  EXPECT_DOUBLE_EQ(builder.task_limit(index), 0.75);
  EXPECT_EQ(builder.task_runtime(index), 2);
  EXPECT_EQ(builder.task_end(index), 5);
  ASSERT_EQ(builder.machine_tasks(1).size(), 1u);
  EXPECT_EQ(builder.machine_tasks(1)[0], index);
  EXPECT_TRUE(builder.machine_tasks(0).empty());
}

TEST(CellTraceBuilderTest, RichLadderPacksColumnMajor) {
  CellTraceBuilder builder("rich", /*num_intervals=*/8, /*num_machines=*/1);
  const int32_t a = builder.AddTask(1, 1, 0, 0, 1.0, SchedulingClass::kBatch);
  for (int k = 0; k < 2; ++k) {
    builder.AppendUsage(a, 0.1f * static_cast<float>(k + 1));
    RichUsage rich;
    rich.avg = 0.1f + k;
    rich.p50 = 0.2f + k;
    rich.p60 = 0.3f + k;
    rich.p70 = 0.4f + k;
    rich.p80 = 0.5f + k;
    rich.p90 = 0.6f + k;
    rich.p95 = 0.7f + k;
    rich.p99 = 0.8f + k;
    rich.max = 0.9f + k;
    builder.AppendRich(a, rich);
  }
  const CellTrace cell = builder.Seal();
  ASSERT_TRUE(cell.has_rich());
  const TaskView task = cell.task(0);
  const std::span<const float> p90 = task.rich_column(RichColumn::kP90);
  ASSERT_EQ(p90.size(), 2u);
  EXPECT_FLOAT_EQ(p90[0], 0.6f);
  EXPECT_FLOAT_EQ(p90[1], 1.6f);
  const RichUsage row = task.RichAt(1);
  EXPECT_FLOAT_EQ(row.avg, 1.1f);
  EXPECT_FLOAT_EQ(row.p50, 1.2f);
  EXPECT_FLOAT_EQ(row.max, 1.9f);
}

TEST(CellTraceBuilderTest, DroppedTasksCarryThroughSeal) {
  CellTraceBuilder builder("dropped", 4, 1);
  builder.AddDroppedTask();
  builder.AddDroppedTask();
  EXPECT_EQ(builder.dropped_tasks(), 2);
  const CellTrace cell = builder.Seal();
  EXPECT_EQ(cell.dropped_tasks, 2);
}

TEST(CellTraceBuilderTest, SealedArenaSlabsAreAligned) {
  CellTraceBuilder builder("aligned", 8, 2);
  const int32_t a = builder.AddTask(1, 1, 0, 0, 1.0, SchedulingClass::kBatch);
  builder.AppendUsage(a, 0.5f);
  const CellTrace cell = builder.Seal();
  const auto base = reinterpret_cast<uintptr_t>(cell.arena_bytes().data());
  EXPECT_EQ(base % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(cell.usage_arena().data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(cell.task_limits().data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(cell.usage_offsets().data()) % 64, 0u);
}

TEST(CellTraceBuilderDeathTest, SealRejectsOutOfRangeMachineIndex) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        CellTraceBuilder builder("bad", 4, 2);
        builder.AddTask(1, 1, /*machine=*/5, 0, 1.0, SchedulingClass::kBatch);
        builder.Seal();
      },
      "machine");
  EXPECT_DEATH(
      {
        CellTraceBuilder builder("bad", 4, 2);
        builder.AddTask(1, 1, /*machine=*/-1, 0, 1.0, SchedulingClass::kBatch);
        builder.Seal();
      },
      "machine");
}

TEST(CellTraceBuilderTest, ResetClearsEverything) {
  CellTraceBuilder builder("one", 4, 2);
  const int32_t a = builder.AddTask(1, 1, 0, 0, 1.0, SchedulingClass::kBatch);
  builder.AppendUsage(a, 0.5f);
  builder.AddDroppedTask();
  builder.Reset("two", 6, 1);
  EXPECT_EQ(builder.num_tasks(), 0);
  EXPECT_EQ(builder.dropped_tasks(), 0);
  const CellTrace cell = builder.Seal();
  EXPECT_EQ(cell.name, "two");
  EXPECT_EQ(cell.num_intervals, 6);
  EXPECT_EQ(cell.num_tasks(), 0);
  EXPECT_EQ(cell.num_machines(), 1);
  EXPECT_DOUBLE_EQ(cell.machine_capacity(0), 1.0);  // Default capacity.
}

}  // namespace
}  // namespace crf
