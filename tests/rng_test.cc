#include "crf/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace crf {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    differing += a.NextUint64() != b.NextUint64() ? 1 : 0;
  }
  EXPECT_GE(differing, 60);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng root(77);
  Rng a = root.Fork(5);
  Rng b = root.Fork(5);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, ForkWithDifferentTagsDiffers) {
  Rng root(77);
  Rng a = root.Fork(1);
  Rng b = root.Fork(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    differing += a.NextUint64() != b.NextUint64() ? 1 : 0;
  }
  EXPECT_GE(differing, 60);
}

TEST(RngTest, ForkDoesNotPerturbParent) {
  Rng a(9);
  Rng b(9);
  (void)a.Fork(3);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, ConsecutiveForkTagsAreIndependent) {
  // The child of tag k and the child of tag k+1 must not be correlated (the
  // generator forks per task id).
  Rng root(1234);
  std::vector<double> x;
  std::vector<double> y;
  for (uint64_t tag = 0; tag < 500; ++tag) {
    x.push_back(root.Fork(tag).UniformDouble());
    y.push_back(root.Fork(tag + 1).UniformDouble());
  }
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= x.size();
  mean_y /= y.size();
  double cov = 0.0;
  double vx = 0.0;
  double vy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - mean_x) * (y[i] - mean_y);
    vx += (x[i] - mean_x) * (x[i] - mean_x);
    vy += (y[i] - mean_y) * (y[i] - mean_y);
  }
  EXPECT_LT(std::abs(cov / std::sqrt(vx * vy)), 0.15);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  Rng rng(6);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(7);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(8);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) {
    samples.push_back(rng.LogNormal(1.0, 0.5));
  }
  std::nth_element(samples.begin(), samples.begin() + 10000, samples.end());
  EXPECT_NEAR(samples[10000], std::exp(1.0), 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(4.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(10);
  for (const double mean : {0.5, 3.0, 20.0, 200.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      const int x = rng.Poisson(mean);
      ASSERT_GE(x, 0);
      sum += x;
    }
    EXPECT_NEAR(sum / n, mean, 0.05 * mean + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(11);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, BoundedParetoWithinBounds) {
  Rng rng(12);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.BoundedPareto(1.0, 100.0, 1.2);
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, 100.0);
  }
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(13);
  for (const double shape : {0.5, 1.0, 2.5, 9.0}) {
    double sum = 0.0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
      const double x = rng.Gamma(shape);
      ASSERT_GT(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum / n, shape, 0.05 * shape + 0.02) << "shape=" << shape;
  }
}

TEST(RngTest, BetaMomentsAndRange) {
  Rng rng(14);
  const double a = 2.0;
  const double b = 5.0;
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Beta(a, b);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, a / (a + b), 0.01);
}

TEST(RngTest, GeometricMean) {
  Rng rng(15);
  const double p = 0.2;
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const int x = rng.Geometric(p);
    ASSERT_GE(x, 1);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0 / p, 0.15);
}

TEST(RngTest, GeometricProbabilityOneAlwaysOne) {
  Rng rng(16);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.Geometric(1.0), 1);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(18);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SplitMix64KnownValues) {
  // Reference values from the SplitMix64 reference implementation with
  // initial state 0.
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64(state), 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace crf
