#include "crf/stats/ecdf.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "crf/util/rng.h"

namespace crf {
namespace {

TEST(EcdfTest, EmptyEvaluatesZero) {
  Ecdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.Evaluate(10.0), 0.0);
}

TEST(EcdfTest, EvaluateCountsInclusive) {
  Ecdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.Evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(9.0), 1.0);
}

TEST(EcdfTest, QuantileEndpoints) {
  Ecdf cdf({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
}

TEST(EcdfTest, AddThenQuery) {
  Ecdf cdf;
  for (int i = 1; i <= 100; ++i) {
    cdf.Add(i);
  }
  EXPECT_EQ(cdf.size(), 100u);
  EXPECT_NEAR(cdf.Quantile(0.5), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(cdf.mean(), 50.5);
}

TEST(EcdfTest, CurvePointsMonotone) {
  Rng rng(9);
  Ecdf cdf;
  for (int i = 0; i < 500; ++i) {
    cdf.Add(rng.Normal(0.0, 2.0));
  }
  const auto points = cdf.CurvePoints(51);
  ASSERT_EQ(points.size(), 51u);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].x, points[i - 1].x);
    EXPECT_GT(points[i].probability, points[i - 1].probability);
  }
  EXPECT_DOUBLE_EQ(points.front().probability, 0.0);
  EXPECT_DOUBLE_EQ(points.back().probability, 1.0);
}

TEST(EcdfTest, QuantileEvaluateRoundTrip) {
  Rng rng(10);
  Ecdf cdf;
  for (int i = 0; i < 1000; ++i) {
    cdf.Add(rng.UniformDouble());
  }
  for (double q = 0.05; q < 1.0; q += 0.05) {
    const double x = cdf.Quantile(q);
    EXPECT_NEAR(cdf.Evaluate(x), q, 0.01);
  }
}

TEST(EcdfTest, WriteCdfsCsvProducesAllSeries) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "crf_ecdf_test.csv").string();
  Ecdf a({1.0, 2.0});
  Ecdf b({3.0});
  WriteCdfsCsv(path, {{"alpha", &a}, {"beta", &b}}, 5);
  std::ifstream in(path);
  std::ostringstream content;
  content << in.rdbuf();
  const std::string text = content.str();
  EXPECT_NE(text.find("series,x,probability"), std::string::npos);
  EXPECT_NE(text.find("alpha,"), std::string::npos);
  EXPECT_NE(text.find("beta,"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace crf
