// Differential test for the cluster engine rewrite: the sharded step loop +
// indexed placement must be byte-identical to the retained serial loop +
// linear-scan scheduler, for any thread count, across cell shapes and
// packing policies. This is the determinism contract in cell_sim.h.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "crf/cluster/cell_sim.h"
#include "crf/util/thread_pool.h"

namespace crf {
namespace {

struct EngineConfig {
  std::string label;
  bool parallel = false;
  PlacementEngine placement = PlacementEngine::kLinearScan;
  ThreadPool* pool = nullptr;
};

ClusterSimResult RunEngine(const CellProfile& profile, ClusterSimOptions options,
                     const EngineConfig& config, uint64_t seed) {
  options.parallel = config.parallel;
  options.placement = config.placement;
  options.pool = config.pool;
  return RunClusterSim(profile, options, Rng(seed));
}

// Byte-level equality of everything the simulation produces.
void ExpectIdentical(const ClusterSimResult& a, const ClusterSimResult& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.tasks_placed, b.tasks_placed);
  EXPECT_EQ(a.tasks_timed_out, b.tasks_timed_out);
  EXPECT_EQ(a.pending_task_intervals, b.pending_task_intervals);
  EXPECT_EQ(a.placement_attempts, b.placement_attempts);

  ASSERT_EQ(a.trace.num_tasks(), b.trace.num_tasks());
  for (int32_t i = 0; i < a.trace.num_tasks(); ++i) {
    const TaskView ta = a.trace.task(i);
    const TaskView tb = b.trace.task(i);
    ASSERT_EQ(ta.task_id(), tb.task_id()) << "task " << i;
    ASSERT_EQ(ta.job_id(), tb.job_id()) << "task " << i;
    ASSERT_EQ(ta.machine_index(), tb.machine_index()) << "task " << i;
    ASSERT_EQ(ta.start(), tb.start()) << "task " << i;
    ASSERT_EQ(ta.limit(), tb.limit()) << "task " << i;
    ASSERT_EQ(ta.sched_class(), tb.sched_class()) << "task " << i;
    ASSERT_EQ(ta.usage().size(), tb.usage().size()) << "task " << i;
    for (size_t k = 0; k < tb.usage().size(); ++k) {
      ASSERT_EQ(ta.usage()[k], tb.usage()[k])  // exact float equality
          << "task " << i << " sample " << k;
    }
  }
  ASSERT_EQ(a.trace.num_machines(), b.trace.num_machines());
  for (int m = 0; m < a.trace.num_machines(); ++m) {
    const std::span<const int32_t> ia = a.trace.machine_tasks(m);
    const std::span<const int32_t> ib = b.trace.machine_tasks(m);
    ASSERT_EQ(ia.size(), ib.size()) << "machine " << m;
    ASSERT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin())) << "machine " << m;
    const std::span<const float> pa = a.trace.true_peak(m);
    const std::span<const float> pb = b.trace.true_peak(m);
    ASSERT_EQ(pa.size(), pb.size()) << "machine " << m;
    ASSERT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin())) << "machine " << m;
  }

  // The strongest form of the contract: both sealed arenas are the same bytes.
  ASSERT_EQ(a.trace.arena_bytes().size(), b.trace.arena_bytes().size());
  EXPECT_EQ(std::memcmp(a.trace.arena_bytes().data(), b.trace.arena_bytes().data(),
                        b.trace.arena_bytes().size()),
            0);

  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_EQ(a.latencies, b.latencies);
  EXPECT_EQ(a.demand_mean, b.demand_mean);
  EXPECT_EQ(a.limit_sum, b.limit_sum);
}

// The host may be single-core, so the sharded path is exercised with
// oversubscribed pools: correctness must not depend on the physical core
// count, only on the contract that shards write disjoint slots.
class ClusterSimDifferentialTest : public ::testing::Test {
 protected:
  void RunAllConfigs(const CellProfile& profile, const ClusterSimOptions& options,
                     uint64_t seed) {
    ThreadPool pool2(2);
    ThreadPool pool4(4);
    ThreadPool pool5(5);
    const ClusterSimResult reference =
        RunEngine(profile, options, {"serial+linear", false, PlacementEngine::kLinearScan}, seed);
    const std::vector<EngineConfig> configs = {
        {"serial+indexed", false, PlacementEngine::kIndexed, nullptr},
        {"sharded2+indexed", true, PlacementEngine::kIndexed, &pool2},
        {"sharded4+indexed", true, PlacementEngine::kIndexed, &pool4},
        {"sharded5+indexed", true, PlacementEngine::kIndexed, &pool5},
        {"sharded4+linear", true, PlacementEngine::kLinearScan, &pool4},
    };
    for (const EngineConfig& config : configs) {
      ExpectIdentical(reference, RunEngine(profile, options, config, seed), config.label);
    }
  }
};

TEST_F(ClusterSimDifferentialTest, MediumCellBestFit) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 24;
  ClusterSimOptions options;
  options.num_intervals = kIntervalsPerDay;
  options.warmup = kIntervalsPerDay / 4;
  RunAllConfigs(profile, options, 101);
}

TEST_F(ClusterSimDifferentialTest, SingleMachineCell) {
  // One machine: the sharded loop degenerates; placement has exactly one
  // candidate, exercising the empty/full boundary of the index.
  CellProfile profile = SimCellProfile('b');
  profile.num_machines = 1;
  ClusterSimOptions options;
  options.num_intervals = kIntervalsPerDay;
  options.warmup = kIntervalsPerDay / 4;
  RunAllConfigs(profile, options, 102);
}

TEST_F(ClusterSimDifferentialTest, OverloadedChurnCell) {
  // Far more task arrivals than the cell can hold, with a short pending
  // timeout: the queue churns, placements fail and retry, the fallback
  // (exclusion-ignoring) pass triggers, and timeouts shed load.
  CellProfile profile = SimCellProfile('c');
  profile.num_machines = 6;
  profile.tasks_per_machine = 120.0;
  ClusterSimOptions options;
  options.num_intervals = kIntervalsPerDay;
  options.warmup = kIntervalsPerDay / 4;
  options.pending_timeout = 4;
  RunAllConfigs(profile, options, 103);
}

TEST_F(ClusterSimDifferentialTest, WorstFitPolicy) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 16;
  ClusterSimOptions options;
  options.num_intervals = kIntervalsPerDay;
  options.warmup = kIntervalsPerDay / 4;
  options.packing = PackingPolicy::kWorstFit;
  RunAllConfigs(profile, options, 104);
}

TEST_F(ClusterSimDifferentialTest, RandomFitPolicy) {
  CellProfile profile = SimCellProfile('b');
  profile.num_machines = 16;
  ClusterSimOptions options;
  options.num_intervals = kIntervalsPerDay;
  options.warmup = kIntervalsPerDay / 4;
  options.packing = PackingPolicy::kRandomFit;
  RunAllConfigs(profile, options, 105);
}

TEST_F(ClusterSimDifferentialTest, DifferentPredictorSpec) {
  // The limit-sum predictor changes published capacities (no overcommit),
  // which shifts the placement stream; the engines must still agree.
  CellProfile profile = SimCellProfile('c');
  profile.num_machines = 12;
  ClusterSimOptions options;
  options.num_intervals = kIntervalsPerDay;
  options.warmup = kIntervalsPerDay / 4;
  options.predictor = LimitSumSpec();
  RunAllConfigs(profile, options, 106);
}

}  // namespace
}  // namespace crf
