#include "crf/core/task_history.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "crf/stats/percentile.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

TEST(TaskHistoryTest, GrowsUntilCapacity) {
  TaskHistory history(3);
  EXPECT_TRUE(history.empty());
  history.Push(1.0f);
  history.Push(2.0f);
  EXPECT_EQ(history.size(), 2);
  history.Push(3.0f);
  history.Push(4.0f);  // Evicts 1.0.
  EXPECT_EQ(history.size(), 3);
  EXPECT_EQ(history.capacity(), 3);
}

TEST(TaskHistoryTest, EvictsOldestFirst) {
  TaskHistory history(2);
  history.Push(10.0f);
  history.Push(1.0f);
  history.Push(2.0f);  // 10 evicted; window = {1, 2}.
  EXPECT_DOUBLE_EQ(history.Percentile(100.0), 2.0);
  EXPECT_DOUBLE_EQ(history.Percentile(0.0), 1.0);
}

TEST(TaskHistoryTest, LatestTracksNewest) {
  TaskHistory history(3);
  history.Push(1.0f);
  EXPECT_FLOAT_EQ(history.Latest(), 1.0f);
  history.Push(2.0f);
  history.Push(3.0f);
  EXPECT_FLOAT_EQ(history.Latest(), 3.0f);
  history.Push(4.0f);  // Wrapped.
  EXPECT_FLOAT_EQ(history.Latest(), 4.0f);
  history.Push(5.0f);
  EXPECT_FLOAT_EQ(history.Latest(), 5.0f);
}

TEST(TaskHistoryTest, MeanOverWindow) {
  TaskHistory history(2);
  history.Push(1.0f);
  history.Push(3.0f);
  EXPECT_DOUBLE_EQ(history.Mean(), 2.0);
  history.Push(5.0f);  // Window {3, 5}.
  EXPECT_DOUBLE_EQ(history.Mean(), 4.0);
}

TEST(TaskHistoryTest, CapacityOne) {
  TaskHistory history(1);
  history.Push(1.0f);
  history.Push(7.0f);
  EXPECT_EQ(history.size(), 1);
  EXPECT_FLOAT_EQ(history.Latest(), 7.0f);
  EXPECT_DOUBLE_EQ(history.Percentile(50.0), 7.0);
}

TEST(TaskHistoryTest, DuplicateValuesEvictCorrectly) {
  TaskHistory history(3);
  history.Push(2.0f);
  history.Push(2.0f);
  history.Push(2.0f);
  history.Push(5.0f);  // One 2.0 evicted; {2, 2, 5} remain.
  EXPECT_DOUBLE_EQ(history.Percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(history.Percentile(100.0), 5.0);
  EXPECT_NEAR(history.Mean(), 3.0, 1e-6);
}

// Property: percentiles over the window match a reference deque at every
// step of a random stream.
class TaskHistoryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TaskHistoryPropertyTest, MatchesReferenceWindow) {
  Rng rng(60 + GetParam());
  const int capacity = 1 + static_cast<int>(rng.UniformInt(40));
  TaskHistory history(capacity);
  std::deque<float> reference;
  for (int step = 0; step < 500; ++step) {
    const float sample = static_cast<float>(rng.UniformDouble());
    history.Push(sample);
    reference.push_back(sample);
    if (static_cast<int>(reference.size()) > capacity) {
      reference.pop_front();
    }
    std::vector<double> window(reference.begin(), reference.end());
    for (const double p : {0.0, 37.0, 50.0, 95.0, 100.0}) {
      ASSERT_NEAR(history.Percentile(p), Percentile(window, p), 1e-6)
          << "capacity=" << capacity << " step=" << step << " p=" << p;
    }
    ASSERT_FLOAT_EQ(history.Latest(), sample);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStreams, TaskHistoryPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace crf
