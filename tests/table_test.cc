#include "crf/util/table.h"

#include <gtest/gtest.h>

namespace crf {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  Table table({"name", "v"});
  table.AddRow({std::string("a"), std::string("1")});
  table.AddRow({std::string("longer"), std::string("22")});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name    v"), std::string::npos);
  EXPECT_NE(out.find("a       1"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(TableTest, SeparatorUnderHeader) {
  Table table({"ab"});
  table.AddRow({std::string("x")});
  const std::string out = table.Render();
  EXPECT_NE(out.find("ab\n--\n"), std::string::npos);
}

TEST(TableTest, LabeledDoubleRow) {
  Table table({"k", "a", "b"});
  table.AddRow("row", {1.0, 0.25});
  const std::string out = table.Render();
  EXPECT_NE(out.find("row"), std::string::npos);
  EXPECT_NE(out.find("0.25"), std::string::npos);
}

TEST(TableDeathTest, WrongWidthAborts) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.AddRow({std::string("only-one")}), "CHECK failed");
}

TEST(TableTest, NoTrailingSpaces) {
  Table table({"a", "b"});
  table.AddRow({std::string("x"), std::string("y")});
  const std::string out = table.Render();
  EXPECT_EQ(out.find(" \n"), std::string::npos);
}

}  // namespace
}  // namespace crf
