// Regression net for the contention-free sharded engines (DESIGN.md §8).
//
// Every parallel-path optimization (padded shard state, non-allocating pool
// dispatch, blocked range claims, deferred shard merges) rides on one
// invariant: results are BIT-identical at any shard count and any pool size.
// This suite stresses that invariant with randomized traces — mixed
// workload shapes, zero-length tasks (resident exactly one interval), heavy
// churn of one-to-two-interval tasks — replayed at shards/threads drawn
// from {1, 2, 3, 7, 8, 16} across every predictor family, and with the
// closed-loop cluster simulator run at the same pool sizes. The host may be
// single-core: pools here are deliberately oversubscribed, because the
// contract must not depend on the physical core count.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "crf/cluster/cell_sim.h"
#include "crf/core/predictor_factory.h"
#include "crf/serve/replay.h"
#include "crf/sim/simulator.h"
#include "crf/trace/trace_builder.h"
#include "crf/util/rng.h"
#include "crf/util/thread_pool.h"

namespace crf {
namespace {

constexpr int kGridCounts[] = {1, 2, 3, 7, 8, 16};

// A randomized adversarial cell. Three workload mixes rotate by seed:
// churn-heavy (mostly one-to-two-interval tasks), service-heavy (tasks
// spanning most of the trace), and mixed. Every mix sprinkles in
// zero-length tasks (no usage samples — resident for exactly one interval
// under the sealed-trace residency rule), empty machines, tasks that
// outlive the trace, and tasks arriving on the final interval.
CellTrace ChurnCell(uint64_t seed) {
  Rng rng(seed);
  const Interval num_intervals = 36 + static_cast<Interval>(rng.UniformInt(29));
  const int num_machines = 5 + static_cast<int>(rng.UniformInt(8));
  const int mix = static_cast<int>(seed % 3);
  CellTraceBuilder builder("stress_cell", num_intervals, num_machines);

  TaskId next_id = 1;
  for (int m = 0; m < num_machines; ++m) {
    if (rng.UniformDouble() < 0.1) {
      continue;  // Empty machine.
    }
    const int num_tasks = mix == 0 ? 20 + static_cast<int>(rng.UniformInt(30))
                                   : 4 + static_cast<int>(rng.UniformInt(12));
    for (int i = 0; i < num_tasks; ++i) {
      const TaskId id = next_id++;
      const Interval start = static_cast<Interval>(rng.UniformInt(num_intervals));
      const double limit = 0.03 + rng.UniformDouble() * 0.9;
      Interval len;
      const double shape = rng.UniformDouble();
      if (shape < 0.08) {
        len = 0;  // Zero-length: arrival and departure with no sample.
      } else if (mix == 0 || (mix == 2 && shape < 0.6)) {
        len = 1 + static_cast<Interval>(rng.UniformInt(2));  // Churn.
      } else if (shape < 0.18) {
        len = num_intervals - start + 1 + static_cast<Interval>(rng.UniformInt(4));
      } else {
        len = 1 + static_cast<Interval>(rng.UniformInt(num_intervals - start));
      }
      const int32_t index =
          builder.AddTask(id, id, m, start, limit, SchedulingClass::kLatencySensitive);
      builder.ReserveUsage(index, static_cast<size_t>(len));
      for (Interval k = 0; k < len; ++k) {
        builder.AppendUsage(index, static_cast<float>(limit * rng.UniformDouble()));
      }
    }
  }
  return builder.Seal();
}

// Every roster predictor family, short windows so small traces cover both
// the warming and warmed regimes.
PredictorSpec SpecForCase(int index) {
  switch (index % 8) {
    case 0:
      return LimitSumSpec();
    case 1:
      return BorgDefaultSpec(0.85);
    case 2:
      return NSigmaSpec(3.0, 3, 8);
    case 3:
      return RcLikeSpec(95.0, 3, 8);
    case 4:
      return AutopilotSpec(95.0, 1.2, 3, 8);
    case 5:
      return ChanceSpec(0.05, 3, 8);
    case 6:
      return FlexSpec(90.0, 1.2, 3, 8);
    default:
      return MaxSpec({NSigmaSpec(5.0, 3, 8), RcLikeSpec(99.0, 3, 8)});
  }
}

SimResult Replay(const CellTrace& cell, const PredictorSpec& spec, int num_shards,
                 bool parallel, ThreadPool* pool) {
  ReplayOptions options;
  options.num_shards = num_shards;
  options.parallel = parallel;
  options.pool = pool;
  options.latency_sample_period = 0;
  StreamReplayer replayer(cell, spec, options);
  replayer.AdvanceToEnd();
  return replayer.Finish();
}

void ExpectMachinesBitIdentical(const SimResult& got, const SimResult& want) {
  ASSERT_EQ(got.machines.size(), want.machines.size());
  for (size_t m = 0; m < want.machines.size(); ++m) {
    SCOPED_TRACE(::testing::Message() << "machine=" << m);
    const MachineMetrics& g = got.machines[m];
    const MachineMetrics& w = want.machines[m];
    ASSERT_EQ(g.occupied_intervals, w.occupied_intervals);
    ASSERT_EQ(g.violations, w.violations);
    ASSERT_EQ(g.mean_violation_severity, w.mean_violation_severity);
    ASSERT_EQ(g.savings_ratio, w.savings_ratio);
    ASSERT_EQ(g.mean_prediction, w.mean_prediction);
    ASSERT_EQ(g.mean_limit, w.mean_limit);
  }
}

class ParallelDeterminismStressTest : public ::testing::TestWithParam<int> {};

// The full shard grid, serial and parallel, against the serial batch engine.
// Per-machine metrics must be bit-identical everywhere; the merged cell
// series must be bit-identical across pool sizes at a fixed shard count, and
// bit-identical to batch at one shard.
TEST_P(ParallelDeterminismStressTest, StreamShardThreadGridBitIdenticalToSerial) {
  const int case_index = GetParam();
  const uint64_t seed = 42000 + static_cast<uint64_t>(case_index);
  const CellTrace cell = ChurnCell(seed);
  const PredictorSpec spec = SpecForCase(case_index);

  SimOptions sim_options;
  sim_options.parallel = false;
  const SimResult batch = SimulateCell(cell, spec, sim_options);

  for (const int num_shards : kGridCounts) {
    SCOPED_TRACE(::testing::Message() << "case=" << case_index << " shards=" << num_shards);
    const SimResult serial = Replay(cell, spec, num_shards, false, nullptr);
    ExpectMachinesBitIdentical(serial, batch);
    if (num_shards == 1) {
      EXPECT_EQ(serial.cell_savings_series, batch.cell_savings_series);
    }
    for (const int threads : kGridCounts) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads);
      ThreadPool pool(threads);
      const SimResult parallel = Replay(cell, spec, num_shards, true, &pool);
      ExpectMachinesBitIdentical(parallel, batch);
      // Thread-count invariance is exact INCLUDING the shard-merged floats.
      ASSERT_EQ(parallel.cell_savings_series, serial.cell_savings_series);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ParallelDeterminismStressTest,
                         ::testing::Range(0, 12));

// Chunked Advance under an oversubscribed pool must be indistinguishable
// from one-shot replay: same results, same per-shard sequence numbers.
TEST(ParallelDeterminismStressChunking, ChunkedParallelAdvanceMatchesOneShot) {
  for (const uint64_t seed : {9100u, 9101u, 9102u}) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const CellTrace cell = ChurnCell(seed);
    const PredictorSpec spec = SpecForCase(static_cast<int>(seed));
    ThreadPool pool(7);

    ReplayOptions options;
    options.num_shards = 7;
    options.parallel = true;
    options.pool = &pool;
    options.latency_sample_period = 0;

    StreamReplayer one_shot(cell, spec, options);
    one_shot.AdvanceToEnd();

    StreamReplayer chunked(cell, spec, options);
    Rng rng(seed ^ 0x5eed);
    while (!chunked.Done()) {
      const Interval step = 1 + static_cast<Interval>(rng.UniformInt(9));
      chunked.Advance(std::min<Interval>(chunked.next_tick() + step, cell.num_intervals));
    }

    const SimResult a = one_shot.Finish();
    const SimResult b = chunked.Finish();
    ExpectMachinesBitIdentical(b, a);
    EXPECT_EQ(b.cell_savings_series, a.cell_savings_series);
    const ServeMetrics& ma = one_shot.Metrics();
    const ServeMetrics& mb = chunked.Metrics();
    ASSERT_EQ(mb.num_shards(), ma.num_shards());
    for (int s = 0; s < ma.num_shards(); ++s) {
      EXPECT_EQ(mb.shard(s).sequence, ma.shard(s).sequence) << "shard " << s;
      EXPECT_EQ(mb.shard(s).ticks, ma.shard(s).ticks) << "shard " << s;
    }
  }
}

// The closed-loop cluster simulator at every pool size in the grid, against
// its serial run: placements, counters, result series, and the sealed
// as-executed trace arena must all be byte-identical.
TEST(ParallelDeterminismStressCluster, ClusterSimPoolSizeInvariance) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 19;  // Prime: every block split is uneven.
  ClusterSimOptions options;
  options.num_intervals = 60;
  options.warmup = 12;
  options.placement = PlacementEngine::kIndexed;
  options.parallel = false;
  const ClusterSimResult reference = RunClusterSim(profile, options, Rng(77));

  for (const int threads : kGridCounts) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    ThreadPool pool(threads);
    options.pool = &pool;
    options.parallel = true;
    const ClusterSimResult got = RunClusterSim(profile, options, Rng(77));

    EXPECT_EQ(got.tasks_placed, reference.tasks_placed);
    EXPECT_EQ(got.tasks_timed_out, reference.tasks_timed_out);
    EXPECT_EQ(got.pending_task_intervals, reference.pending_task_intervals);
    EXPECT_EQ(got.placement_attempts, reference.placement_attempts);
    EXPECT_EQ(got.predictions, reference.predictions);
    EXPECT_EQ(got.latencies, reference.latencies);
    EXPECT_EQ(got.demand_mean, reference.demand_mean);
    EXPECT_EQ(got.limit_sum, reference.limit_sum);
    ASSERT_EQ(got.trace.arena_bytes().size(), reference.trace.arena_bytes().size());
    EXPECT_EQ(std::memcmp(got.trace.arena_bytes().data(),
                          reference.trace.arena_bytes().data(),
                          reference.trace.arena_bytes().size()),
              0);
  }
}

}  // namespace
}  // namespace crf
