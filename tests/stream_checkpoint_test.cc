// Checkpoint/restore contract (checkpoint.h): a run interrupted at any
// interval boundary and restored from its checkpoint file finishes
// bit-identically to the uninterrupted run, and any damaged or mismatched
// file is rejected with a diagnostic — never a crash or a CHECK abort.

#include "crf/serve/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "crf/core/predictor_factory.h"
#include "crf/serve/replay.h"
#include "crf/trace/trace_builder.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

CellTrace RandomCell(uint64_t seed, const std::string& name = "ckpt_cell") {
  Rng rng(seed);
  const Interval num_intervals = 40 + static_cast<Interval>(rng.UniformInt(21));
  const int num_machines = 2 + static_cast<int>(rng.UniformInt(4));
  CellTraceBuilder builder(name, num_intervals, num_machines);

  TaskId next_id = 1;
  for (int m = 0; m < num_machines; ++m) {
    const int num_tasks = 1 + static_cast<int>(rng.UniformInt(12));
    for (int i = 0; i < num_tasks; ++i) {
      const TaskId id = next_id++;
      const Interval start = static_cast<Interval>(rng.UniformInt(num_intervals));
      const double limit = 0.05 + rng.UniformDouble() * 0.95;
      const Interval len = 1 + static_cast<Interval>(rng.UniformInt(num_intervals - start + 3));
      const int32_t index =
          builder.AddTask(id, id, m, start, limit, SchedulingClass::kLatencySensitive);
      builder.ReserveUsage(index, static_cast<size_t>(len));
      for (Interval k = 0; k < len; ++k) {
        builder.AppendUsage(index, static_cast<float>(limit * rng.UniformDouble()));
      }
    }
  }
  return builder.Seal();
}

// ctest runs each gtest case as its own process, so files must be unique
// per test to survive a parallel run. Parameterized test names contain '/'.
std::string TempPath(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string tag = std::string(info->test_suite_name()) + "_" + info->name();
  for (char& c : tag) {
    if (c == '/') {
      c = '_';
    }
  }
  return ::testing::TempDir() + "/" + tag + "_" + name;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(file)));
  std::fseek(file, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
}

void ExpectResultsBitIdentical(const SimResult& restored, const SimResult& uninterrupted) {
  ASSERT_EQ(restored.machines.size(), uninterrupted.machines.size());
  for (size_t m = 0; m < uninterrupted.machines.size(); ++m) {
    const MachineMetrics& a = restored.machines[m];
    const MachineMetrics& b = uninterrupted.machines[m];
    SCOPED_TRACE(::testing::Message() << "machine=" << m);
    EXPECT_EQ(a.occupied_intervals, b.occupied_intervals);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.mean_violation_severity, b.mean_violation_severity);
    EXPECT_EQ(a.savings_ratio, b.savings_ratio);
    EXPECT_EQ(a.mean_prediction, b.mean_prediction);
    EXPECT_EQ(a.mean_limit, b.mean_limit);
  }
  EXPECT_EQ(restored.cell_savings_series, uninterrupted.cell_savings_series);
}

class StreamCheckpointTest : public ::testing::TestWithParam<int> {};

TEST_P(StreamCheckpointTest, RestoreContinuesBitIdentically) {
  const int case_index = GetParam();
  const CellTrace cell = RandomCell(500 + static_cast<uint64_t>(case_index));
  PredictorSpec spec;
  switch (case_index % 4) {
    case 0:
      spec = MaxSpec({NSigmaSpec(5.0, 3, 8), RcLikeSpec(99.0, 3, 8)});
      break;
    case 1:
      spec = AutopilotSpec(95.0, 1.2, 3, 8);
      break;
    case 2:
      spec = ChanceSpec(0.02, 3, 8);
      break;
    default:
      spec = MaxSpec({FlexSpec(95.0, 1.2, 3, 8), ChanceSpec(0.05, 3, 8)});
      break;
  }
  ReplayOptions options;
  options.num_shards = 4;

  StreamReplayer uninterrupted(cell, spec, options);
  uninterrupted.AdvanceToEnd();
  const SimResult expected = uninterrupted.Finish();
  const uint64_t expected_events = uninterrupted.Metrics().TotalEvents();

  const Interval cuts[] = {0, 1, cell.num_intervals / 2, cell.num_intervals - 1,
                           cell.num_intervals};
  for (const Interval cut : cuts) {
    SCOPED_TRACE(::testing::Message() << "cut=" << cut << "/" << cell.num_intervals);
    const std::string path = TempPath("ckpt_roundtrip.crfckpt");

    StreamReplayer first(cell, spec, options);
    first.Advance(cut);
    std::string error;
    ASSERT_TRUE(SaveCheckpoint(first, path, &error)) << error;

    auto restored = LoadCheckpoint(path, cell, options, &error);
    ASSERT_NE(restored, nullptr) << error;
    EXPECT_EQ(restored->next_tick(), cut);
    restored->AdvanceToEnd();
    ExpectResultsBitIdentical(restored->Finish(), expected);
    EXPECT_EQ(restored->Metrics().TotalEvents(), expected_events);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, StreamCheckpointTest, ::testing::Range(0, 8));

// Builds one valid checkpoint (cut mid-run) and returns its bytes plus the
// context needed to attempt restores against it.
struct CheckpointFixture {
  CellTrace cell = RandomCell(321);
  PredictorSpec spec;
  ReplayOptions options;
  std::string path = TempPath("ckpt_corrupt.crfckpt");
  std::vector<uint8_t> bytes;

  explicit CheckpointFixture(PredictorSpec fixture_spec = NSigmaSpec(3.0, 3, 8))
      : spec(std::move(fixture_spec)) {
    options.num_shards = 4;
    StreamReplayer replayer(cell, spec, options);
    replayer.Advance(cell.num_intervals / 2);
    std::string error;
    EXPECT_TRUE(SaveCheckpoint(replayer, path, &error)) << error;
    bytes = ReadAll(path);
  }

  // Writes `mutated` to disk and expects LoadCheckpoint to reject it.
  void ExpectRejected(const std::vector<uint8_t>& mutated, const std::string& label) {
    SCOPED_TRACE(label);
    WriteAll(path, mutated);
    std::string error;
    EXPECT_EQ(LoadCheckpoint(path, cell, options, &error), nullptr);
    EXPECT_FALSE(error.empty());
  }
};

TEST(StreamCheckpointCorruptionTest, TruncationsAreRejected) {
  CheckpointFixture fixture;
  ASSERT_GT(fixture.bytes.size(), 64u);
  std::vector<size_t> lengths = {0, 1, 17, 63, 64, 65, fixture.bytes.size() - 1};
  for (size_t step = 97; step < fixture.bytes.size(); step += 997) {
    lengths.push_back(step);
  }
  for (const size_t length : lengths) {
    std::vector<uint8_t> truncated(fixture.bytes.begin(),
                                   fixture.bytes.begin() + static_cast<long>(length));
    fixture.ExpectRejected(truncated, "truncate to " + std::to_string(length));
  }
}

TEST(StreamCheckpointCorruptionTest, BitFlipsAreRejected) {
  CheckpointFixture fixture;
  // Magic, version, geometry fields, the trace-name byte right after the
  // header, the spec type byte, and a sample of payload bytes.
  std::vector<size_t> offsets = {0, 8, 16, 20, 64};
  const size_t name_length = fixture.cell.name.size();
  offsets.push_back(64 + name_length);  // First spec byte (the type tag).
  for (size_t off = 64 + name_length + 80; off < fixture.bytes.size(); off += 1013) {
    offsets.push_back(off);  // Payload bytes: caught by the FNV-1a checksum.
  }
  for (const size_t offset : offsets) {
    ASSERT_LT(offset, fixture.bytes.size());
    std::vector<uint8_t> flipped = fixture.bytes;
    flipped[offset] ^= 0x40;
    fixture.ExpectRejected(flipped, "flip byte " + std::to_string(offset));
  }
}

// The new families carry different per-machine state blobs (a machine-level
// order-statistics window for chance, a ratio window for flex): truncations
// and bit flips inside those payloads must be rejected the same way.
TEST(StreamCheckpointCorruptionTest, NewFamilyPayloadDamageIsRejected) {
  CheckpointFixture fixture(MaxSpec({ChanceSpec(0.02, 3, 8), FlexSpec(90.0, 1.5, 3, 8)}));
  ASSERT_GT(fixture.bytes.size(), 128u);
  for (size_t step = 97; step < fixture.bytes.size(); step += 613) {
    std::vector<uint8_t> truncated(fixture.bytes.begin(),
                                   fixture.bytes.begin() + static_cast<long>(step));
    fixture.ExpectRejected(truncated, "truncate to " + std::to_string(step));
  }
  for (size_t off = 64; off < fixture.bytes.size(); off += 487) {
    std::vector<uint8_t> flipped = fixture.bytes;
    flipped[off] ^= 0x08;
    fixture.ExpectRejected(flipped, "flip byte " + std::to_string(off));
  }
}

TEST(StreamCheckpointCorruptionTest, GarbageAndEmptyFilesAreRejected) {
  CheckpointFixture fixture;
  fixture.ExpectRejected({}, "empty file");
  std::vector<uint8_t> garbage(300, 0x5A);
  fixture.ExpectRejected(garbage, "garbage file");
}

TEST(StreamCheckpointMismatchTest, WrongTraceIsRejected) {
  CheckpointFixture fixture;
  const CellTrace other = RandomCell(9876, "other_cell");
  std::string error;
  EXPECT_EQ(LoadCheckpoint(fixture.path, other, fixture.options, &error), nullptr);
  EXPECT_NE(error.find("does not match"), std::string::npos) << error;
}

TEST(StreamCheckpointMismatchTest, WrongShardCountIsRejectedWithHint) {
  CheckpointFixture fixture;
  ReplayOptions wrong = fixture.options;
  wrong.num_shards = 8;
  std::string error;
  EXPECT_EQ(LoadCheckpoint(fixture.path, fixture.cell, wrong, &error), nullptr);
  EXPECT_NE(error.find("--shards=4"), std::string::npos) << error;
}

TEST(StreamCheckpointMismatchTest, OldVersionIsRejected) {
  CheckpointFixture fixture;
  // The header version is a little-endian u32 at offset 8 (after the magic).
  std::vector<uint8_t> old_version = fixture.bytes;
  old_version[8] = 1;
  WriteAll(fixture.path, old_version);
  std::string error;
  EXPECT_EQ(LoadCheckpoint(fixture.path, fixture.cell, fixture.options, &error), nullptr);
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(StreamCheckpointMismatchTest, MissingFileIsRejected) {
  CheckpointFixture fixture;
  std::string error;
  EXPECT_EQ(LoadCheckpoint(TempPath("does_not_exist.crfckpt"), fixture.cell, fixture.options,
                           &error),
            nullptr);
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(StreamCheckpointInfoTest, HeaderInspectionReportsIdentity) {
  CheckpointFixture fixture;
  CheckpointInfo info;
  std::string error;
  ASSERT_TRUE(ReadCheckpointInfo(fixture.path, &info, &error)) << error;
  EXPECT_EQ(info.version, 2u);
  EXPECT_EQ(info.trace_name, fixture.cell.name);
  EXPECT_EQ(info.num_machines, fixture.cell.num_machines());
  EXPECT_EQ(info.num_intervals, fixture.cell.num_intervals);
  EXPECT_EQ(info.num_shards, 4);
  EXPECT_EQ(info.next_tick, fixture.cell.num_intervals / 2);
  EXPECT_EQ(info.spec_name, fixture.spec.Name());
  EXPECT_GT(info.payload_bytes, 0u);
}

}  // namespace
}  // namespace crf
