#include "crf/stats/p2_quantile.h"

#include <gtest/gtest.h>

#include <vector>

#include "crf/stats/percentile.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

TEST(P2QuantileTest, NoSamplesIsZero) {
  P2Quantile q(0.9);
  EXPECT_DOUBLE_EQ(q.Value(), 0.0);
}

TEST(P2QuantileTest, ExactForFewerThanFive) {
  P2Quantile q(0.5);
  q.Add(3.0);
  EXPECT_DOUBLE_EQ(q.Value(), 3.0);
  q.Add(1.0);
  EXPECT_DOUBLE_EQ(q.Value(), 2.0);  // Median of {1, 3}.
  q.Add(5.0);
  EXPECT_DOUBLE_EQ(q.Value(), 3.0);
}

// Accuracy sweep across quantiles and distributions.
struct P2Case {
  double quantile;
  bool lognormal;
};

class P2AccuracyTest : public ::testing::TestWithParam<P2Case> {};

TEST_P(P2AccuracyTest, TracksExactQuantile) {
  const P2Case param = GetParam();
  Rng rng(31 + static_cast<uint64_t>(param.quantile * 100));
  P2Quantile estimator(param.quantile);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double x = param.lognormal ? rng.LogNormal(0.0, 1.0) : rng.Normal(10.0, 2.0);
    estimator.Add(x);
    samples.push_back(x);
  }
  const double exact = Percentile(samples, param.quantile * 100.0);
  // Relative tolerance; P^2 is an approximation.
  EXPECT_NEAR(estimator.Value(), exact, 0.08 * std::abs(exact) + 0.02)
      << "q=" << param.quantile << " lognormal=" << param.lognormal;
}

INSTANTIATE_TEST_SUITE_P(Sweep, P2AccuracyTest,
                         ::testing::Values(P2Case{0.5, false}, P2Case{0.9, false},
                                           P2Case{0.99, false}, P2Case{0.5, true},
                                           P2Case{0.9, true}, P2Case{0.99, true}));

TEST(P2QuantileTest, MonotoneInQuantile) {
  Rng rng(32);
  P2Quantile q50(0.5);
  P2Quantile q90(0.9);
  P2Quantile q99(0.99);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.LogNormal(0.0, 0.8);
    q50.Add(x);
    q90.Add(x);
    q99.Add(x);
  }
  EXPECT_LT(q50.Value(), q90.Value());
  EXPECT_LT(q90.Value(), q99.Value());
}

TEST(P2QuantileTest, CountTracksAdds) {
  P2Quantile q(0.9);
  for (int i = 0; i < 17; ++i) {
    q.Add(i);
  }
  EXPECT_EQ(q.count(), 17);
}

}  // namespace
}  // namespace crf
