#include "crf/cluster/ab_experiment.h"

#include <gtest/gtest.h>

namespace crf {
namespace {

CellProfile SmallProfile() {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 10;
  return profile;
}

ClusterSimOptions ShortOptions() {
  ClusterSimOptions options;
  options.num_intervals = 2 * kIntervalsPerDay;
  options.warmup = kIntervalsPerDay / 2;
  return options;
}

TEST(AnalyzeMachinesTest, LimitSumHasNoViolations) {
  ClusterSimOptions options = ShortOptions();
  options.predictor = LimitSumSpec();
  const ClusterSimResult result = RunClusterSim(SmallProfile(), options, Rng(50));
  for (const MachineOutcome& outcome : AnalyzeMachines(result)) {
    EXPECT_DOUBLE_EQ(outcome.violation_rate, 0.0) << outcome.machine_index;
    EXPECT_DOUBLE_EQ(outcome.mean_violation_severity, 0.0);
  }
}

TEST(AnalyzeMachinesTest, OutcomesAreOrderedStatistics) {
  const ClusterSimResult result = RunClusterSim(SmallProfile(), ShortOptions(), Rng(51));
  const auto outcomes = AnalyzeMachines(result);
  ASSERT_EQ(outcomes.size(), 10u);
  for (const MachineOutcome& o : outcomes) {
    EXPECT_GE(o.violation_rate, 0.0);
    EXPECT_LE(o.violation_rate, 1.0);
    EXPECT_LE(o.p90_latency, o.p99_latency + 1e-9);
    EXPECT_LE(o.p50_utilization, o.p99_utilization + 1e-9);
    EXPECT_GE(o.mean_utilization, 0.0);
  }
}

TEST(ComputeGroupMetricsTest, PopulatesAllDistributions) {
  const ClusterSimResult result = RunClusterSim(SmallProfile(), ShortOptions(), Rng(52));
  const std::vector<ClusterSimResult> results{result};
  const GroupMetrics metrics = ComputeGroupMetrics("g", results);
  EXPECT_EQ(metrics.label, "g");
  EXPECT_EQ(metrics.violation_rate.size(), 10u);
  EXPECT_EQ(metrics.machine_p90_latency.size(), 10u);
  EXPECT_FALSE(metrics.relative_savings.empty());
  EXPECT_FALSE(metrics.normalized_allocation.empty());
  EXPECT_FALSE(metrics.normalized_workload.empty());
  EXPECT_FALSE(metrics.task_latency.empty());
  EXPECT_GT(metrics.tasks_placed, 0);
  // Workload cannot exceed allocation (usage capped at limits).
  EXPECT_LE(metrics.normalized_workload.Quantile(0.5),
            metrics.normalized_allocation.Quantile(0.5));
}

TEST(ComputeGroupMetricsTest, BorgDefaultSavingsNearOneMinusPhi) {
  ClusterSimOptions options = ShortOptions();
  options.predictor = BorgDefaultSpec(0.9);
  const ClusterSimResult result = RunClusterSim(SmallProfile(), options, Rng(53));
  const std::vector<ClusterSimResult> results{result};
  const GroupMetrics metrics = ComputeGroupMetrics("control", results);
  EXPECT_NEAR(metrics.relative_savings.Quantile(0.5), 0.1, 0.02);
}

TEST(RunAbExperimentTest, PairedGroupsSeeSameWorkloadScale) {
  const std::vector<CellProfile> profiles{SmallProfile()};
  const AbExperimentResult ab = RunAbExperiment(profiles, BorgDefaultSpec(0.9),
                                                ProductionMaxSpec(), ShortOptions(), Rng(54));
  EXPECT_EQ(ab.control.label, "control");
  EXPECT_EQ(ab.experiment.label, "exp");
  EXPECT_GT(ab.control.tasks_placed, 0);
  EXPECT_GT(ab.experiment.tasks_placed, 0);
  // Same offered workload: placed counts within 30% of each other.
  const double ratio = static_cast<double>(ab.experiment.tasks_placed) /
                       static_cast<double>(ab.control.tasks_placed);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.5);
}

TEST(RunAbExperimentTest, MaxPredictorSavesMoreThanControl) {
  const std::vector<CellProfile> profiles{SmallProfile()};
  const AbExperimentResult ab = RunAbExperiment(profiles, BorgDefaultSpec(0.9),
                                                ProductionMaxSpec(), ShortOptions(), Rng(55));
  // Section 6.2: the experimental group generates more savings (>16% vs
  // ~10%); directionally, exp must beat control.
  EXPECT_GT(ab.experiment.relative_savings.Quantile(0.5),
            ab.control.relative_savings.Quantile(0.5));
}

}  // namespace
}  // namespace crf
