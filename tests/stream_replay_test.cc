// Differential test: the streaming serve layer against the batch engine.
//
// The contract (replay.h) is bit-identity, not approximation: per-machine
// metrics from StreamReplayer must equal batch SimulateMachine's EXACTLY
// (same event permutation, same per-tick arithmetic), for every predictor
// family, at any shard count, parallel or serial, and regardless of how
// Advance is chunked. The merged cell savings series is bit-identical to the
// batch serial engine at num_shards=1 and within float tolerance otherwise
// (the shard merge groups machine partial sums differently).

#include "crf/serve/replay.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crf/core/predictor_factory.h"
#include "crf/sim/simulator.h"
#include "crf/trace/trace_builder.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

// Small adversarial cells: staggered arrivals/departures, empty machines,
// single-interval tasks, tasks outliving the trace (same shapes as
// simulator_differential_test).
CellTrace RandomCell(uint64_t seed) {
  Rng rng(seed);
  const Interval num_intervals = 30 + static_cast<Interval>(rng.UniformInt(31));
  const int num_machines = 1 + static_cast<int>(rng.UniformInt(6));
  CellTraceBuilder builder("stream_cell", num_intervals, num_machines);

  TaskId next_id = 1;
  for (int m = 0; m < num_machines; ++m) {
    if (rng.UniformDouble() < 0.15) {
      continue;  // Empty machine.
    }
    const int num_tasks = 1 + static_cast<int>(rng.UniformInt(14));
    for (int i = 0; i < num_tasks; ++i) {
      const TaskId id = next_id++;
      const Interval start = static_cast<Interval>(rng.UniformInt(num_intervals));
      const double limit = 0.05 + rng.UniformDouble() * 0.95;
      Interval len;
      const double shape = rng.UniformDouble();
      if (shape < 0.2) {
        len = 1;
      } else if (shape < 0.3) {
        len = num_intervals - start + 1 + static_cast<Interval>(rng.UniformInt(5));
      } else {
        len = 1 + static_cast<Interval>(rng.UniformInt(num_intervals - start));
      }
      const int32_t index =
          builder.AddTask(id, id, m, start, limit, SchedulingClass::kLatencySensitive);
      builder.ReserveUsage(index, static_cast<size_t>(len));
      for (Interval k = 0; k < len; ++k) {
        builder.AppendUsage(index, static_cast<float>(limit * rng.UniformDouble()));
      }
    }
  }
  return builder.Seal();
}

// Every roster predictor family, with short warm-up/history windows so the
// small traces cover both warming and warmed regimes.
PredictorSpec SpecForCase(int index) {
  switch (index % 8) {
    case 0:
      return LimitSumSpec();
    case 1:
      return BorgDefaultSpec(0.85);
    case 2:
      return NSigmaSpec(3.0, 3, 8);
    case 3:
      return RcLikeSpec(95.0, 3, 8);
    case 4:
      return AutopilotSpec(95.0, 1.2, 3, 8);
    case 5:
      return ChanceSpec(0.05, 3, 8);
    case 6:
      return FlexSpec(90.0, 1.2, 3, 8);
    default:
      return MaxSpec({NSigmaSpec(5.0, 3, 8), RcLikeSpec(99.0, 3, 8)});
  }
}

// Exact comparison: the streaming engine claims bit-identity to batch.
void ExpectMetricsBitIdentical(const MachineMetrics& streamed, const MachineMetrics& batch) {
  SCOPED_TRACE(::testing::Message() << "machine=" << batch.machine_index);
  EXPECT_EQ(streamed.machine_index, batch.machine_index);
  EXPECT_EQ(streamed.intervals, batch.intervals);
  EXPECT_EQ(streamed.occupied_intervals, batch.occupied_intervals);
  EXPECT_EQ(streamed.violations, batch.violations);
  EXPECT_EQ(streamed.mean_violation_severity, batch.mean_violation_severity);
  EXPECT_EQ(streamed.savings_ratio, batch.savings_ratio);
  EXPECT_EQ(streamed.mean_prediction, batch.mean_prediction);
  EXPECT_EQ(streamed.mean_limit, batch.mean_limit);
  // Tail metrics (crf/risk) run through the same accumulator on both
  // engines, so they are bit-identical too.
  EXPECT_EQ(streamed.tail.severity_p99, batch.tail.severity_p99);
  EXPECT_EQ(streamed.tail.severity_p999, batch.tail.severity_p999);
  EXPECT_EQ(streamed.tail.max_violation_streak, batch.tail.max_violation_streak);
  EXPECT_EQ(streamed.tail.streak_p99, batch.tail.streak_p99);
  EXPECT_EQ(streamed.tail.streak_p999, batch.tail.streak_p999);
  EXPECT_EQ(streamed.tail.violation_time_fraction, batch.tail.violation_time_fraction);
  EXPECT_EQ(streamed.tail.savings_at_risk, batch.tail.savings_at_risk);
}

class StreamReplayTest : public ::testing::TestWithParam<int> {};

TEST_P(StreamReplayTest, MatchesBatchEngineBitForBit) {
  const int case_index = GetParam();
  const uint64_t seed = 7000 + static_cast<uint64_t>(case_index);
  const CellTrace cell = RandomCell(seed);
  const PredictorSpec spec = SpecForCase(case_index);

  SimOptions sim_options;
  sim_options.parallel = false;
  sim_options.use_total_usage_oracle = case_index % 4 == 3;
  sim_options.horizon = case_index % 3 == 0 ? 1 : (case_index % 3 == 1 ? 6 : cell.num_intervals + 4);
  const SimResult batch = SimulateCell(cell, spec, sim_options);

  for (const int num_shards : {1, 3, 16}) {
    for (const bool parallel : {false, true}) {
      SCOPED_TRACE(::testing::Message()
                   << "seed=" << seed << " shards=" << num_shards << " parallel=" << parallel);
      ReplayOptions options;
      options.horizon = sim_options.horizon;
      options.use_total_usage_oracle = sim_options.use_total_usage_oracle;
      options.parallel = parallel;
      options.num_shards = num_shards;

      StreamReplayer replayer(cell, spec, options);
      replayer.AdvanceToEnd();
      const SimResult streamed = replayer.Finish();

      ASSERT_EQ(streamed.machines.size(), batch.machines.size());
      for (size_t m = 0; m < batch.machines.size(); ++m) {
        ExpectMetricsBitIdentical(streamed.machines[m], batch.machines[m]);
      }
      ASSERT_EQ(streamed.cell_savings_series.size(), batch.cell_savings_series.size());
      for (size_t t = 0; t < batch.cell_savings_series.size(); ++t) {
        if (num_shards == 1) {
          // Single shard accumulates machines in the same order as the batch
          // serial engine: the series is bit-identical too.
          EXPECT_EQ(streamed.cell_savings_series[t], batch.cell_savings_series[t]) << "t=" << t;
        } else {
          EXPECT_NEAR(streamed.cell_savings_series[t], batch.cell_savings_series[t], 1e-9)
              << "t=" << t;
        }
      }
      EXPECT_EQ(streamed.cell_name, batch.cell_name);
      EXPECT_EQ(streamed.predictor_name, batch.predictor_name);
    }
  }
}

TEST_P(StreamReplayTest, ChunkedAdvanceIsBitIdenticalToOneShot) {
  const int case_index = GetParam();
  const uint64_t seed = 7000 + static_cast<uint64_t>(case_index);
  const CellTrace cell = RandomCell(seed);
  const PredictorSpec spec = SpecForCase(case_index);

  ReplayOptions options;
  options.num_shards = 4;
  options.parallel = case_index % 2 == 0;

  StreamReplayer one_shot(cell, spec, options);
  one_shot.AdvanceToEnd();
  const SimResult expected = one_shot.Finish();

  StreamReplayer chunked(cell, spec, options);
  while (!chunked.Done()) {
    chunked.Advance(std::min<Interval>(chunked.next_tick() + 7, cell.num_intervals));
  }
  const SimResult actual = chunked.Finish();

  ASSERT_EQ(actual.machines.size(), expected.machines.size());
  for (size_t m = 0; m < expected.machines.size(); ++m) {
    ExpectMetricsBitIdentical(actual.machines[m], expected.machines[m]);
  }
  EXPECT_EQ(actual.cell_savings_series, expected.cell_savings_series);

  // The per-shard event sequence numbers are part of the determinism
  // contract: chunking must not change what each shard consumed.
  const ServeMetrics& chunked_metrics = chunked.Metrics();
  const ServeMetrics& one_shot_metrics = one_shot.Metrics();
  ASSERT_EQ(chunked_metrics.num_shards(), one_shot_metrics.num_shards());
  for (int s = 0; s < chunked_metrics.num_shards(); ++s) {
    EXPECT_EQ(chunked_metrics.shard(s).sequence, one_shot_metrics.shard(s).sequence);
    EXPECT_EQ(chunked_metrics.shard(s).ticks, one_shot_metrics.shard(s).ticks);
    EXPECT_EQ(chunked_metrics.shard(s).max_batch_events,
              one_shot_metrics.shard(s).max_batch_events);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, StreamReplayTest, ::testing::Range(0, 12));

TEST(StreamReplayMetricsTest, CountersAndJsonAreCoherent) {
  const CellTrace cell = RandomCell(99);
  StreamReplayer replayer(cell, NSigmaSpec(3.0, 3, 8), ReplayOptions{});
  replayer.AdvanceToEnd();
  (void)replayer.Finish();
  const ServeMetrics& metrics = replayer.Metrics();

  // One tick per (machine, interval); every task contributes one arrival,
  // at most one departure, and one sample per resident interval.
  EXPECT_EQ(metrics.TotalTicks(),
            static_cast<uint64_t>(cell.num_machines()) *
                static_cast<uint64_t>(cell.num_intervals));
  EXPECT_GT(metrics.TotalEvents(), metrics.TotalTicks() / 2);

  uint64_t shard_sum = 0;
  for (int s = 0; s < metrics.num_shards(); ++s) {
    shard_sum += metrics.shard(s).sequence;
  }
  EXPECT_EQ(shard_sum, metrics.TotalEvents());

  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"events\": " + std::to_string(metrics.TotalEvents())),
            std::string::npos);
  EXPECT_NE(json.find("\"violations\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
}

}  // namespace
}  // namespace crf
