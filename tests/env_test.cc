#include "crf/util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace crf {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetEnv(const char* name, const char* value) { setenv(name, value, /*overwrite=*/1); }
  void TearDown() override {
    unsetenv("CRF_TEST_VAR");
    unsetenv("REPRO_SCALE");
    unsetenv("REPRO_SEED");
    unsetenv("REPRO_OUT");
  }
};

TEST_F(EnvTest, DoubleParsesValue) {
  SetEnv("CRF_TEST_VAR", "2.5");
  EXPECT_DOUBLE_EQ(GetEnvDouble("CRF_TEST_VAR", 1.0), 2.5);
}

TEST_F(EnvTest, DoubleFallsBackWhenUnsetOrInvalid) {
  EXPECT_DOUBLE_EQ(GetEnvDouble("CRF_TEST_VAR", 1.5), 1.5);
  SetEnv("CRF_TEST_VAR", "notanumber");
  EXPECT_DOUBLE_EQ(GetEnvDouble("CRF_TEST_VAR", 1.5), 1.5);
  SetEnv("CRF_TEST_VAR", "");
  EXPECT_DOUBLE_EQ(GetEnvDouble("CRF_TEST_VAR", 1.5), 1.5);
}

TEST_F(EnvTest, IntParsesValue) {
  SetEnv("CRF_TEST_VAR", "42");
  EXPECT_EQ(GetEnvInt("CRF_TEST_VAR", 7), 42);
}

TEST_F(EnvTest, IntFallsBack) {
  EXPECT_EQ(GetEnvInt("CRF_TEST_VAR", 7), 7);
  SetEnv("CRF_TEST_VAR", "x");
  EXPECT_EQ(GetEnvInt("CRF_TEST_VAR", 7), 7);
}

TEST_F(EnvTest, StringReadsValue) {
  SetEnv("CRF_TEST_VAR", "hello");
  EXPECT_EQ(GetEnvString("CRF_TEST_VAR", "d"), "hello");
  EXPECT_EQ(GetEnvString("CRF_TEST_VAR_MISSING", "d"), "d");
}

TEST_F(EnvTest, BenchScaleFloorsAtSmallPositive) {
  SetEnv("REPRO_SCALE", "-5");
  EXPECT_GT(BenchScale(), 0.0);
}

TEST_F(EnvTest, ScaledCountAppliesScaleAndFloor) {
  SetEnv("REPRO_SCALE", "0.5");
  EXPECT_EQ(ScaledCount(100), 50);
  EXPECT_EQ(ScaledCount(10, 8), 8);  // Floor wins.
  SetEnv("REPRO_SCALE", "2");
  EXPECT_EQ(ScaledCount(100), 200);
}

TEST_F(EnvTest, BenchSeedDefault) { EXPECT_EQ(BenchSeed(), 42u); }

TEST_F(EnvTest, BenchOutputDirOverride) {
  SetEnv("REPRO_OUT", "/tmp/somewhere");
  EXPECT_EQ(BenchOutputDir(), "/tmp/somewhere");
}

}  // namespace
}  // namespace crf
