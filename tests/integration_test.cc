// End-to-end pipeline tests: generate -> filter -> simulate -> metrics, and
// trace persistence round trip feeding the simulator.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "crf/sim/simulator.h"
#include "crf/trace/generator.h"
#include "crf/trace/trace_io.h"
#include "crf/trace/trace_stats.h"

namespace crf {
namespace {

CellTrace Pipeline(uint64_t seed) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 20;
  GeneratorOptions options;
  options.num_intervals = 3 * kIntervalsPerDay;
  CellTrace cell = GenerateCellTrace(profile, options, Rng(seed));
  cell.FilterToServingTasks();
  return cell;
}

TEST(IntegrationTest, FullSimPipelineProducesSensibleMetrics) {
  const CellTrace cell = Pipeline(90);
  for (const PredictorSpec& spec :
       {BorgDefaultSpec(0.9), RcLikeSpec(99.0), NSigmaSpec(5.0), SimulationMaxSpec()}) {
    const SimResult result = SimulateCell(cell, spec);
    EXPECT_EQ(result.machines.size(), static_cast<size_t>(cell.num_machines()));
    for (const MachineMetrics& m : result.machines) {
      EXPECT_GE(m.violation_rate(), 0.0);
      EXPECT_LE(m.violation_rate(), 1.0);
      EXPECT_GE(m.mean_violation_severity, 0.0);
      EXPECT_LE(m.mean_violation_severity, 1.0);
      EXPECT_LE(m.savings_ratio, 1.0);
    }
    EXPECT_FALSE(result.cell_savings_series.empty());
  }
}

TEST(IntegrationTest, SavedTraceSimulatesIdentically) {
  const CellTrace cell = Pipeline(91);
  const std::string path =
      (std::filesystem::temp_directory_path() / "crf_integration.trace").string();
  SaveCellTrace(cell, path);
  const auto loaded = LoadCellTrace(path);
  ASSERT_TRUE(loaded.has_value());

  const SimResult original = SimulateCell(cell, SimulationMaxSpec());
  const SimResult replayed = SimulateCell(*loaded, SimulationMaxSpec());
  ASSERT_EQ(original.machines.size(), replayed.machines.size());
  for (size_t m = 0; m < original.machines.size(); ++m) {
    EXPECT_EQ(original.machines[m].violations, replayed.machines[m].violations);
    EXPECT_NEAR(original.machines[m].savings_ratio, replayed.machines[m].savings_ratio, 1e-6);
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, BinaryTraceSimulatesExactly) {
  const CellTrace cell = Pipeline(94);
  const std::string path =
      (std::filesystem::temp_directory_path() / "crf_integration.crftrace").string();
  SaveCellTraceBinary(cell, path);
  const auto loaded = LoadCellTrace(path);  // auto-detects the binary format
  ASSERT_TRUE(loaded.has_value());

  // Binary persistence is lossless, so the simulation replays bit-for-bit.
  const SimResult original = SimulateCell(cell, SimulationMaxSpec());
  const SimResult replayed = SimulateCell(*loaded, SimulationMaxSpec());
  ASSERT_EQ(original.machines.size(), replayed.machines.size());
  for (size_t m = 0; m < original.machines.size(); ++m) {
    EXPECT_EQ(original.machines[m].violations, replayed.machines[m].violations);
    EXPECT_DOUBLE_EQ(original.machines[m].savings_ratio, replayed.machines[m].savings_ratio);
    EXPECT_DOUBLE_EQ(original.machines[m].mean_prediction,
                     replayed.machines[m].mean_prediction);
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, TraceStatsAgreeWithSimulatorView) {
  const CellTrace cell = Pipeline(92);
  // Cell limit series from trace_stats equals the sum of the simulator's
  // per-machine limit accumulation.
  const std::vector<double> cell_limit = CellLimitSeries(cell);
  std::vector<double> accumulated(cell.num_intervals, 0.0);
  std::vector<double> predictions(cell.num_intervals, 0.0);
  for (int m = 0; m < cell.num_machines(); ++m) {
    SimulateMachine(cell, m, LimitSumSpec(), SimOptions{}, &accumulated, &predictions);
  }
  for (Interval t = 0; t < cell.num_intervals; ++t) {
    EXPECT_NEAR(accumulated[t], cell_limit[t], 1e-6);
    // Limit-sum prediction == limit.
    EXPECT_NEAR(predictions[t], cell_limit[t], 1e-6);
  }
}

TEST(IntegrationTest, AllSimCellsGenerateAndSimulate) {
  for (char letter = 'a'; letter <= 'h'; ++letter) {
    CellProfile profile = SimCellProfile(letter);
    profile.num_machines = 6;
    GeneratorOptions options;
    options.num_intervals = kIntervalsPerDay;
    CellTrace cell = GenerateCellTrace(profile, options, Rng(93 + letter));
    cell.FilterToServingTasks();
    const SimResult result = SimulateCell(cell, SimulationMaxSpec());
    EXPECT_EQ(result.cell_name, profile.name);
    EXPECT_EQ(result.machines.size(), 6u);
  }
}

}  // namespace
}  // namespace crf
