// Tests for streaming trace generation (GenerateCellTraceToFile) and the
// spill/seal-by-machine-block writer (CellTraceBuilder::SealToFile).
//
// The streamed path renumbers tasks machine-major, so whole-trace task order
// differs from the batch seal. The contract is per-machine bit-identity:
// every machine carries the same capacity, ground-truth peaks, and task set
// (matched by task id) with exactly the same usage bytes. That is what makes
// the streamed file a drop-in replacement for the batch cell in simulation —
// verified end to end by running the same predictor over both.

#include "crf/trace/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "crf/core/predictor_factory.h"
#include "crf/sim/simulator.h"
#include "crf/trace/stream_writer.h"
#include "crf/trace/trace.h"
#include "crf/trace/trace_builder.h"
#include "crf/trace/trace_io.h"

namespace crf {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("crf_stream_" + name)).string();
}

GeneratorOptions DayOptions(bool rich = false) {
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerDay;
  options.rich_stats = rich;
  return options;
}

CellProfile SmallProfile() {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 8;
  return profile;
}

std::vector<char> FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

// Per-machine equality with task identity matched by task id (the streamed
// trace is machine-major, so task *indices* legitimately differ).
void ExpectSameMachineContent(const CellTrace& a, const CellTrace& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.num_intervals, b.num_intervals);
  EXPECT_EQ(a.dropped_tasks, b.dropped_tasks);
  EXPECT_EQ(a.has_rich(), b.has_rich());
  ASSERT_EQ(a.num_machines(), b.num_machines());
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  for (int m = 0; m < b.num_machines(); ++m) {
    EXPECT_DOUBLE_EQ(a.machine_capacity(m), b.machine_capacity(m));
    const std::span<const float> peak_a = a.true_peak(m);
    const std::span<const float> peak_b = b.true_peak(m);
    ASSERT_EQ(peak_a.size(), peak_b.size());
    for (size_t t = 0; t < peak_b.size(); ++t) {
      EXPECT_EQ(peak_a[t], peak_b[t]) << "machine " << m << " interval " << t;
    }

    std::map<TaskId, int32_t> by_id;
    for (const int32_t task : a.machine_tasks(m)) {
      by_id[a.task(task).task_id()] = task;
    }
    const std::span<const int32_t> tasks_b = b.machine_tasks(m);
    ASSERT_EQ(by_id.size(), tasks_b.size()) << "machine " << m;
    for (const int32_t task : tasks_b) {
      const TaskView tb = b.task(task);
      const auto it = by_id.find(tb.task_id());
      ASSERT_NE(it, by_id.end()) << "task id " << tb.task_id() << " missing on machine " << m;
      const TaskView ta = a.task(it->second);
      EXPECT_EQ(ta.job_id(), tb.job_id());
      EXPECT_EQ(ta.start(), tb.start());
      EXPECT_EQ(ta.sched_class(), tb.sched_class());
      EXPECT_EQ(ta.limit(), tb.limit());
      const std::span<const float> usage_a = ta.usage();
      const std::span<const float> usage_b = tb.usage();
      ASSERT_EQ(usage_a.size(), usage_b.size());
      for (size_t k = 0; k < usage_b.size(); ++k) {
        EXPECT_EQ(usage_a[k], usage_b[k]);  // exact: streamed content is bit-identical
      }
      if (b.has_rich()) {
        for (int c = 0; c < kNumRichColumns; ++c) {
          const auto col_a = ta.rich_column(static_cast<RichColumn>(c));
          const auto col_b = tb.rich_column(static_cast<RichColumn>(c));
          ASSERT_EQ(col_a.size(), col_b.size());
          for (size_t k = 0; k < col_b.size(); ++k) {
            EXPECT_EQ(col_a[k], col_b[k]);
          }
        }
      }
    }
  }
}

TEST(StreamTraceTest, StreamedGenerationMatchesBatch) {
  for (const bool rich : {false, true}) {
    const CellTrace batch = GenerateCellTrace(SmallProfile(), DayOptions(rich), Rng(5));
    const std::string path = TempPath(rich ? "gen_rich.crftrace" : "gen.crftrace");
    std::string error;
    StreamedTraceInfo info;
    ASSERT_TRUE(GenerateCellTraceToFile(SmallProfile(), DayOptions(rich), Rng(5), path, &error,
                                        &info))
        << error;
    EXPECT_EQ(info.num_tasks, batch.num_tasks());
    EXPECT_EQ(info.dropped_tasks, batch.dropped_tasks);
    EXPECT_EQ(info.file_bytes, std::filesystem::file_size(path));

    const auto streamed = LoadCellTrace(path, {TraceLoadMode::kHeap}, &error);
    ASSERT_TRUE(streamed.has_value()) << error;
    ExpectSameMachineContent(batch, *streamed);
    std::remove(path.c_str());
  }
}

TEST(StreamTraceTest, StreamedFileIsMachineMajor) {
  const std::string path = TempPath("major.crftrace");
  std::string error;
  ASSERT_TRUE(GenerateCellTraceToFile(SmallProfile(), DayOptions(), Rng(5), path, &error));
  const auto streamed = LoadCellTrace(path, {TraceLoadMode::kMapped}, &error);
  ASSERT_TRUE(streamed.has_value()) << error;

  // Machine-major renumbering makes every CSR row the contiguous ascending
  // range the cursor and page hints rely on.
  int32_t next = 0;
  for (int m = 0; m < streamed->num_machines(); ++m) {
    EXPECT_TRUE(streamed->MachineRowsContiguous(m)) << "machine " << m;
    for (const int32_t task : streamed->machine_tasks(m)) {
      EXPECT_EQ(task, next) << "machine " << m;
      ++next;
    }
  }
  EXPECT_EQ(next, streamed->num_tasks());
  std::remove(path.c_str());
}

TEST(StreamTraceTest, SimulationAgreesBatchVsStreamed) {
  const CellTrace batch = GenerateCellTrace(SmallProfile(), DayOptions(), Rng(9));
  const std::string path = TempPath("sim.crftrace");
  std::string error;
  ASSERT_TRUE(GenerateCellTraceToFile(SmallProfile(), DayOptions(), Rng(9), path, &error));
  const auto streamed = LoadCellTrace(path, {TraceLoadMode::kMapped}, &error);
  ASSERT_TRUE(streamed.has_value()) << error;

  SimOptions sim_options;
  sim_options.parallel = false;
  const SimResult a = SimulateCell(batch, ProductionMaxSpec(), sim_options);
  const SimResult b = SimulateCell(*streamed, ProductionMaxSpec(), sim_options);
  ASSERT_EQ(a.machines.size(), b.machines.size());
  for (size_t m = 0; m < b.machines.size(); ++m) {
    EXPECT_EQ(a.machines[m].violations, b.machines[m].violations) << "machine " << m;
    EXPECT_EQ(a.machines[m].intervals, b.machines[m].intervals);
    EXPECT_EQ(a.machines[m].occupied_intervals, b.machines[m].occupied_intervals);
    EXPECT_DOUBLE_EQ(a.machines[m].savings_ratio, b.machines[m].savings_ratio);
  }
  EXPECT_DOUBLE_EQ(a.MeanCellSavings(), b.MeanCellSavings());
  EXPECT_DOUBLE_EQ(a.MeanViolationRate(), b.MeanViolationRate());
  std::remove(path.c_str());
}

// Sharded placement composes with streaming: per-machine content matches the
// sharded batch generator, and the streamed bytes are invariant to the pool.
TEST(StreamTraceTest, ShardedStreamedGenerationMatchesShardedBatch) {
  GeneratorOptions options = DayOptions();
  options.placement_shards = 4;
  options.placement_probes = 4;
  const std::string path_serial = TempPath("shard_serial.crftrace");
  const std::string path_pooled = TempPath("shard_pooled.crftrace");
  std::string error;
  StreamedTraceInfo info;
  ASSERT_TRUE(
      GenerateCellTraceToFile(SmallProfile(), options, Rng(17), path_serial, &error, &info))
      << error;
  EXPECT_GT(info.placement_attempts, 0);
  EXPECT_GE(info.placement_ms, 0.0);

  ThreadPool pool(4);
  options.pool = &pool;
  ASSERT_TRUE(GenerateCellTraceToFile(SmallProfile(), options, Rng(17), path_pooled, &error))
      << error;
  EXPECT_EQ(FileBytes(path_serial), FileBytes(path_pooled));

  options.pool = nullptr;
  const CellTrace batch = GenerateCellTrace(SmallProfile(), options, Rng(17));
  const auto streamed = LoadCellTrace(path_serial, {TraceLoadMode::kHeap}, &error);
  ASSERT_TRUE(streamed.has_value()) << error;
  ExpectSameMachineContent(batch, *streamed);
  std::remove(path_serial.c_str());
  std::remove(path_pooled.c_str());
}

TEST(StreamTraceTest, ProbedPlacementIsDeterministic) {
  GeneratorOptions options = DayOptions();
  options.placement_probes = 4;
  const std::string path_a = TempPath("probe_a.crftrace");
  const std::string path_b = TempPath("probe_b.crftrace");
  std::string error;
  ASSERT_TRUE(GenerateCellTraceToFile(SmallProfile(), options, Rng(13), path_a, &error));
  ASSERT_TRUE(GenerateCellTraceToFile(SmallProfile(), options, Rng(13), path_b, &error));
  const std::vector<char> bytes_a = FileBytes(path_a);
  const std::vector<char> bytes_b = FileBytes(path_b);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);

  // Probing changes placements (it is part of the cell's identity), so the
  // probed file must differ from the full-scan one — otherwise the option
  // silently did nothing.
  ASSERT_TRUE(GenerateCellTraceToFile(SmallProfile(), DayOptions(), Rng(13), path_b, &error));
  EXPECT_NE(bytes_a, FileBytes(path_b));

  // The probed batch generator matches the probed streamed file per machine.
  const CellTrace batch = GenerateCellTrace(SmallProfile(), options, Rng(13));
  const auto streamed = LoadCellTrace(path_a, {TraceLoadMode::kHeap}, &error);
  ASSERT_TRUE(streamed.has_value()) << error;
  ExpectSameMachineContent(batch, *streamed);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(StreamTraceTest, SealToFileMatchesSealPerMachine) {
  const auto build = [](CellTraceBuilder& builder, bool machine_major) {
    builder.Reset("hand", 4, 2);
    builder.set_machine_capacity(0, 2.0);
    builder.set_machine_capacity(1, 4.0);
    builder.mutable_true_peak(0) = {0.5f, 0.25f, 0.0f, 0.0f};
    builder.mutable_true_peak(1) = {1.0f, 1.0f, 0.5f, 0.25f};
    // Interleaved across machines unless machine_major is requested.
    struct Spec {
      TaskId id;
      int32_t machine;
    };
    std::vector<Spec> specs = {{10, 0}, {11, 1}, {12, 0}, {13, 1}};
    if (machine_major) {
      std::stable_sort(specs.begin(), specs.end(),
                       [](const Spec& a, const Spec& b) { return a.machine < b.machine; });
    }
    for (const Spec& spec : specs) {
      const int32_t task = builder.AddTask(spec.id, spec.id / 2, spec.machine, 0,
                                           0.5 + 0.1 * static_cast<double>(spec.id),
                                           SchedulingClass::kBatch);
      builder.AppendUsage(task, 0.125f * static_cast<float>(spec.id));
      builder.AppendUsage(task, 0.25f);
    }
  };

  CellTraceBuilder builder;
  build(builder, /*machine_major=*/false);
  const CellTrace sealed = builder.Seal();

  // SealToFile renumbers interleaved input machine-major itself; the
  // per-machine content must match the in-memory seal of the same build.
  build(builder, /*machine_major=*/false);
  const std::string path = TempPath("seal.crftrace");
  std::string error;
  ASSERT_TRUE(builder.SealToFile(path, &error)) << error;
  const auto streamed = LoadCellTrace(path, {TraceLoadMode::kHeap}, &error);
  ASSERT_TRUE(streamed.has_value()) << error;
  ExpectSameMachineContent(sealed, *streamed);

  // Tasks already added machine-major stream to the identical file.
  build(builder, /*machine_major=*/true);
  const std::string path2 = TempPath("seal2.crftrace");
  ASSERT_TRUE(builder.SealToFile(path2, &error)) << error;
  EXPECT_EQ(FileBytes(path), FileBytes(path2));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(StreamTraceTest, WriterRejectsNonMachineMajorSpec) {
  // The writer's machine-major invariant is what makes block retirement
  // page-clean; handing it an interleaved numbering must fail up front, not
  // corrupt the CSR.
  const std::vector<TaskId> task_id = {1, 2};
  const std::vector<JobId> job_id = {1, 1};
  const std::vector<int32_t> machine_of = {1, 0};  // non-decreasing violated
  const std::vector<Interval> start = {0, 0};
  const std::vector<uint8_t> sched_class = {0, 0};
  const std::vector<double> limit = {0.5, 0.5};
  const std::vector<Interval> runtime = {1, 1};
  const std::vector<double> capacity = {1.0, 1.0};
  const std::vector<Interval> true_peak_len = {0, 0};

  StreamTraceSpec spec;
  spec.name = "bad";
  spec.num_intervals = 2;
  spec.task_id = task_id;
  spec.job_id = job_id;
  spec.machine_of = machine_of;
  spec.start = start;
  spec.sched_class = sched_class;
  spec.limit = limit;
  spec.runtime = runtime;
  spec.capacity = capacity;
  spec.true_peak_len = true_peak_len;

  const std::string path = TempPath("bad_spec.crftrace");
  std::string error;
  EXPECT_DEATH(StreamingTraceWriter(spec, path, &error),
               "machine-major task order");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace crf
