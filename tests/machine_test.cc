#include "crf/cluster/machine.h"

#include <gtest/gtest.h>

#include "crf/core/predictor_factory.h"

namespace crf {
namespace {

CellTrace EmptyTrace(int num_machines, Interval num_intervals) {
  CellTrace trace;
  trace.num_intervals = num_intervals;
  trace.machines.resize(num_machines);
  for (auto& machine : trace.machines) {
    machine.capacity = 1.0;
    machine.true_peak.assign(num_intervals, 0.0f);
  }
  return trace;
}

int32_t AddTask(CellTrace& trace, TaskId id, int machine, Interval start, double limit) {
  TaskTrace task;
  task.task_id = id;
  task.job_id = id;
  task.machine_index = machine;
  task.start = start;
  task.limit = limit;
  const int32_t index = static_cast<int32_t>(trace.tasks.size());
  trace.tasks.push_back(std::move(task));
  return index;
}

TaskUsageParams CalmParams(double limit) {
  TaskUsageParams params;
  params.limit = limit;
  params.mean_ratio = 0.5;
  params.diurnal_amplitude = 0.0;
  params.ar_sigma = 0.02;
  params.spike_prob = 0.0;
  return params;
}

TEST(ClusterMachineTest, EmptyMachinePredictsZero) {
  CellTrace trace = EmptyTrace(1, 10);
  ClusterMachine machine(0, 1.0, CreatePredictor(LimitSumSpec()), LatencyModelParams{}, Rng(1));
  const auto stats = machine.Step(0, 1.0, trace);
  EXPECT_EQ(stats.resident_tasks, 0);
  EXPECT_DOUBLE_EQ(stats.prediction, 0.0);
  EXPECT_DOUBLE_EQ(machine.FreeCapacity(), 1.0);
  EXPECT_GT(stats.latency, 0.0);
}

TEST(ClusterMachineTest, TaskLifecycleRecordsUsage) {
  CellTrace trace = EmptyTrace(1, 10);
  ClusterMachine machine(0, 1.0, CreatePredictor(LimitSumSpec()), LatencyModelParams{}, Rng(2));
  const int32_t index = AddTask(trace, 1, 0, 2, 0.4);
  machine.StartTask(trace, index, CalmParams(0.4), 2, 3);

  for (Interval t = 2; t < 10; ++t) {
    machine.Step(t, 1.0, trace);
  }
  EXPECT_EQ(trace.tasks[index].usage.size(), 3u);
  EXPECT_EQ(trace.tasks[index].end(), 5);
  for (const float u : trace.tasks[index].usage) {
    EXPECT_GT(u, 0.0f);
    EXPECT_LE(u, 0.4f);
  }
  // Machine task index registered.
  ASSERT_EQ(trace.machines[0].task_indices.size(), 1u);
  EXPECT_EQ(trace.machines[0].task_indices[0], index);
}

TEST(ClusterMachineTest, FreeCapacityIsCapacityMinusPrediction) {
  CellTrace trace = EmptyTrace(1, 20);
  ClusterMachine machine(0, 1.0, CreatePredictor(LimitSumSpec()), LatencyModelParams{}, Rng(3));
  const int32_t index = AddTask(trace, 1, 0, 0, 0.3);
  machine.StartTask(trace, index, CalmParams(0.3), 0, 20);
  const auto stats = machine.Step(0, 1.0, trace);
  EXPECT_DOUBLE_EQ(stats.prediction, 0.3);  // limit-sum
  EXPECT_DOUBLE_EQ(machine.FreeCapacity(), 0.7);
}

TEST(ClusterMachineTest, DemandAggregatesTasks) {
  CellTrace trace = EmptyTrace(1, 10);
  ClusterMachine machine(0, 1.0, CreatePredictor(LimitSumSpec()), LatencyModelParams{}, Rng(4));
  const int32_t a = AddTask(trace, 1, 0, 0, 0.4);
  const int32_t b = AddTask(trace, 2, 0, 0, 0.4);
  machine.StartTask(trace, a, CalmParams(0.4), 0, 10);
  machine.StartTask(trace, b, CalmParams(0.4), 0, 10);
  const auto stats = machine.Step(0, 1.0, trace);
  EXPECT_EQ(stats.resident_tasks, 2);
  EXPECT_GT(stats.demand_mean, 0.2);
  EXPECT_GE(stats.demand_peak, stats.demand_mean);
  EXPECT_DOUBLE_EQ(stats.limit_sum, 0.8);
  EXPECT_GT(trace.machines[0].true_peak[0], 0.0f);
}

TEST(ClusterMachineDeathTest, StartTaskValidatesInvariants) {
  CellTrace trace = EmptyTrace(2, 10);
  ClusterMachine machine(0, 1.0, CreatePredictor(LimitSumSpec()), LatencyModelParams{}, Rng(5));
  // Wrong machine index on the task.
  const int32_t index = AddTask(trace, 1, 1, 0, 0.3);
  EXPECT_DEATH(machine.StartTask(trace, index, CalmParams(0.3), 0, 5), "CHECK failed");
}

}  // namespace
}  // namespace crf
