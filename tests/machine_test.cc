#include "crf/cluster/machine.h"

#include <gtest/gtest.h>

#include "crf/core/predictor_factory.h"
#include "crf/trace/trace_builder.h"

namespace crf {
namespace {

CellTraceBuilder EmptyBuilder(int num_machines, Interval num_intervals) {
  CellTraceBuilder builder("machine_test", num_intervals, num_machines);
  for (int m = 0; m < num_machines; ++m) {
    builder.set_machine_capacity(m, 1.0);
    builder.mutable_true_peak(m).assign(static_cast<size_t>(num_intervals), 0.0f);
  }
  return builder;
}

int32_t AddTask(CellTraceBuilder& trace, TaskId id, int machine, Interval start,
                double limit) {
  return trace.AddTask(id, id, machine, start, limit, SchedulingClass::kLatencySensitive);
}

TaskUsageParams CalmParams(double limit) {
  TaskUsageParams params;
  params.limit = limit;
  params.mean_ratio = 0.5;
  params.diurnal_amplitude = 0.0;
  params.ar_sigma = 0.02;
  params.spike_prob = 0.0;
  return params;
}

TEST(ClusterMachineTest, EmptyMachinePredictsZero) {
  CellTraceBuilder trace = EmptyBuilder(1, 10);
  ClusterMachine machine(0, 1.0, CreatePredictor(LimitSumSpec()), LatencyModelParams{}, Rng(1));
  const auto stats = machine.Step(0, 1.0, trace);
  EXPECT_EQ(stats.resident_tasks, 0);
  EXPECT_DOUBLE_EQ(stats.prediction, 0.0);
  EXPECT_DOUBLE_EQ(machine.FreeCapacity(), 1.0);
  EXPECT_GT(stats.latency, 0.0);
}

TEST(ClusterMachineTest, TaskLifecycleRecordsUsage) {
  CellTraceBuilder trace = EmptyBuilder(1, 10);
  ClusterMachine machine(0, 1.0, CreatePredictor(LimitSumSpec()), LatencyModelParams{}, Rng(2));
  const int32_t index = AddTask(trace, 1, 0, 2, 0.4);
  machine.StartTask(trace, index, CalmParams(0.4), 2, 3);

  for (Interval t = 2; t < 10; ++t) {
    machine.Step(t, 1.0, trace);
  }
  EXPECT_EQ(trace.task_usage(index).size(), 3u);
  EXPECT_EQ(trace.task_end(index), 5);
  for (const float u : trace.task_usage(index)) {
    EXPECT_GT(u, 0.0f);
    EXPECT_LE(u, 0.4f);
  }
  // Machine task index registered at AddTask time.
  ASSERT_EQ(trace.machine_tasks(0).size(), 1u);
  EXPECT_EQ(trace.machine_tasks(0)[0], index);
}

TEST(ClusterMachineTest, FreeCapacityIsCapacityMinusPrediction) {
  CellTraceBuilder trace = EmptyBuilder(1, 20);
  ClusterMachine machine(0, 1.0, CreatePredictor(LimitSumSpec()), LatencyModelParams{}, Rng(3));
  const int32_t index = AddTask(trace, 1, 0, 0, 0.3);
  machine.StartTask(trace, index, CalmParams(0.3), 0, 20);
  const auto stats = machine.Step(0, 1.0, trace);
  EXPECT_DOUBLE_EQ(stats.prediction, 0.3);  // limit-sum
  EXPECT_DOUBLE_EQ(machine.FreeCapacity(), 0.7);
}

TEST(ClusterMachineTest, DemandAggregatesTasks) {
  CellTraceBuilder trace = EmptyBuilder(1, 10);
  ClusterMachine machine(0, 1.0, CreatePredictor(LimitSumSpec()), LatencyModelParams{}, Rng(4));
  const int32_t a = AddTask(trace, 1, 0, 0, 0.4);
  const int32_t b = AddTask(trace, 2, 0, 0, 0.4);
  machine.StartTask(trace, a, CalmParams(0.4), 0, 10);
  machine.StartTask(trace, b, CalmParams(0.4), 0, 10);
  const auto stats = machine.Step(0, 1.0, trace);
  EXPECT_EQ(stats.resident_tasks, 2);
  EXPECT_GT(stats.demand_mean, 0.2);
  EXPECT_GE(stats.demand_peak, stats.demand_mean);
  EXPECT_DOUBLE_EQ(stats.limit_sum, 0.8);
  EXPECT_GT(trace.mutable_true_peak(0)[0], 0.0f);
}

TEST(ClusterMachineTest, SealedTraceCarriesRecordedUsage) {
  CellTraceBuilder trace = EmptyBuilder(1, 10);
  ClusterMachine machine(0, 1.0, CreatePredictor(LimitSumSpec()), LatencyModelParams{}, Rng(6));
  const int32_t index = AddTask(trace, 1, 0, 0, 0.5);
  machine.StartTask(trace, index, CalmParams(0.5), 0, 4);
  for (Interval t = 0; t < 10; ++t) {
    machine.Step(t, 1.0, trace);
  }
  const CellTrace cell = trace.Seal();
  ASSERT_EQ(cell.num_tasks(), 1);
  const TaskView task = cell.task(0);
  EXPECT_EQ(task.runtime(), 4);
  EXPECT_EQ(task.end(), 4);
  for (const float u : task.usage()) {
    EXPECT_GT(u, 0.0f);
  }
  EXPECT_GT(cell.true_peak(0)[0], 0.0f);
}

TEST(ClusterMachineDeathTest, StartTaskValidatesInvariants) {
  CellTraceBuilder trace = EmptyBuilder(2, 10);
  ClusterMachine machine(0, 1.0, CreatePredictor(LimitSumSpec()), LatencyModelParams{}, Rng(5));
  // Wrong machine index on the task.
  const int32_t index = AddTask(trace, 1, 1, 0, 0.3);
  EXPECT_DEATH(machine.StartTask(trace, index, CalmParams(0.3), 0, 5), "CHECK failed");
}

}  // namespace
}  // namespace crf
