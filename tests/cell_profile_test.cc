#include "crf/trace/cell_profile.h"

#include <gtest/gtest.h>

#include <set>

namespace crf {
namespace {

void ExpectSane(const CellProfile& p) {
  EXPECT_FALSE(p.name.empty());
  EXPECT_GT(p.num_machines, 0);
  EXPECT_GT(p.machine_capacity, 0.0);
  EXPECT_GT(p.tasks_per_machine, 0.0);
  EXPECT_GE(p.service_fraction, 0.0);
  EXPECT_LE(p.service_fraction, 1.0);
  EXPECT_GT(p.limit_min, 0.0);
  EXPECT_LE(p.limit_min, p.limit_max);
  EXPECT_LE(p.limit_max, p.machine_capacity);
  EXPECT_GT(p.mean_ratio_alpha, 0.0);
  EXPECT_GT(p.mean_ratio_beta, 0.0);
  EXPECT_LE(p.diurnal_amp_min, p.diurnal_amp_max);
  EXPECT_LE(p.ar_rho_min, p.ar_rho_max);
  EXPECT_LT(p.ar_rho_max, 1.0);
  EXPECT_LE(p.ar_sigma_min, p.ar_sigma_max);
  EXPECT_GE(p.spike_prob, 0.0);
  EXPECT_LE(p.spike_prob, 1.0);
  EXPECT_GT(p.spike_level, 0.0);
  EXPECT_LE(p.spike_level, 1.0);
  EXPECT_GE(p.serving_fraction, 0.0);
  EXPECT_LE(p.serving_fraction, 1.0);
  EXPECT_GE(p.target_alloc_ratio, 1.0);
  EXPECT_GE(p.long_fraction, 0.0);
  EXPECT_LE(p.long_fraction, 1.0);
}

TEST(CellProfileTest, AllSimCellsAreSane) {
  const auto profiles = AllSimCellProfiles();
  ASSERT_EQ(profiles.size(), 8u);
  for (const auto& profile : profiles) {
    ExpectSane(profile);
  }
}

TEST(CellProfileTest, AllProductionCellsAreSane) {
  const auto profiles = AllProductionCellProfiles();
  ASSERT_EQ(profiles.size(), 5u);
  for (const auto& profile : profiles) {
    ExpectSane(profile);
  }
}

TEST(CellProfileTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& profile : AllSimCellProfiles()) {
    EXPECT_TRUE(names.insert(profile.name).second) << profile.name;
  }
  for (const auto& profile : AllProductionCellProfiles()) {
    EXPECT_TRUE(names.insert(profile.name).second) << profile.name;
  }
}

TEST(CellProfileTest, CellAIsLargest) {
  const CellProfile a = SimCellProfile('a');
  for (char c = 'b'; c <= 'h'; ++c) {
    EXPECT_GE(a.num_machines, SimCellProfile(c).num_machines) << c;
  }
}

TEST(CellProfileTest, CellBHasLowestVariance) {
  // Section 5.5: cell b has the lowest per-machine utilization stddev.
  const CellProfile b = SimCellProfile('b');
  for (char c = 'a'; c <= 'h'; ++c) {
    if (c == 'b') {
      continue;
    }
    EXPECT_LE(b.ar_sigma_max, SimCellProfile(c).ar_sigma_max) << c;
    EXPECT_LE(b.spike_prob, SimCellProfile(c).spike_prob) << c;
  }
}

TEST(CellProfileTest, CellCShorterTasksThanCellG) {
  const CellProfile c = SimCellProfile('c');
  const CellProfile g = SimCellProfile('g');
  EXPECT_LT(c.short_runtime_mean_hours, g.short_runtime_mean_hours);
  EXPECT_LT(c.long_fraction, g.long_fraction);
  EXPECT_LT(c.service_fraction, g.service_fraction);
}

TEST(CellProfileTest, ProductionCell4HasHighestChurn) {
  const CellProfile cell4 = ProductionCellProfile(4);
  for (int i = 1; i <= 5; ++i) {
    if (i == 4) {
      continue;
    }
    EXPECT_LT(cell4.short_runtime_mean_hours,
              ProductionCellProfile(i).short_runtime_mean_hours)
        << i;
  }
}

TEST(CellProfileDeathTest, UnknownCellsAbort) {
  EXPECT_DEATH(SimCellProfile('z'), "unknown sim cell");
  EXPECT_DEATH(ProductionCellProfile(0), "unknown production cell");
  EXPECT_DEATH(ProductionCellProfile(6), "unknown production cell");
}

}  // namespace
}  // namespace crf
