#include "crf/stats/window_max.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "crf/util/rng.h"

namespace crf {
namespace {

std::vector<double> BruteForceForwardMax(const std::vector<double>& v, int64_t window) {
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    const size_t end = std::min(v.size(), i + static_cast<size_t>(window));
    out[i] = *std::max_element(v.begin() + i, v.begin() + end);
  }
  return out;
}

TEST(MonotonicMaxDequeTest, BasicPushAndMax) {
  MonotonicMaxDeque deque;
  deque.Push(0, 3.0);
  deque.Push(1, 1.0);
  deque.Push(2, 2.0);
  EXPECT_DOUBLE_EQ(deque.Max(), 3.0);
  deque.ExpireBelow(1);
  EXPECT_DOUBLE_EQ(deque.Max(), 2.0);
}

TEST(MonotonicMaxDequeTest, EqualValuesKeepLatest) {
  MonotonicMaxDeque deque;
  deque.Push(0, 5.0);
  deque.Push(1, 5.0);
  deque.ExpireBelow(1);
  EXPECT_FALSE(deque.empty());
  EXPECT_DOUBLE_EQ(deque.Max(), 5.0);
}

TEST(ForwardWindowMaxTest, WindowOneIsIdentity) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_EQ(ForwardWindowMax(v, 1), v);
}

TEST(ForwardWindowMaxTest, WindowLargerThanInput) {
  const std::vector<double> v{1.0, 5.0, 2.0};
  const std::vector<double> expected{5.0, 5.0, 2.0};
  EXPECT_EQ(ForwardWindowMax(v, 100), expected);
}

TEST(ForwardWindowMaxTest, KnownSmallCase) {
  const std::vector<double> v{1.0, 3.0, 2.0, 5.0, 4.0};
  const std::vector<double> expected{3.0, 3.0, 5.0, 5.0, 4.0};
  EXPECT_EQ(ForwardWindowMax(v, 2), expected);
}

TEST(ForwardWindowMaxTest, EmptyInput) {
  EXPECT_TRUE(ForwardWindowMax(std::vector<double>{}, 3).empty());
}

// Property: matches brute force for random arrays and window sizes.
class ForwardWindowMaxPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ForwardWindowMaxPropertyTest, MatchesBruteForce) {
  Rng rng(40 + GetParam());
  const int n = 1 + static_cast<int>(rng.UniformInt(300));
  const int64_t window = 1 + static_cast<int64_t>(rng.UniformInt(40));
  std::vector<double> v;
  for (int i = 0; i < n; ++i) {
    v.push_back(rng.Uniform(-10.0, 10.0));
  }
  EXPECT_EQ(ForwardWindowMax(v, window), BruteForceForwardMax(v, window));
}

INSTANTIATE_TEST_SUITE_P(RandomArrays, ForwardWindowMaxPropertyTest, ::testing::Range(0, 16));

}  // namespace
}  // namespace crf
