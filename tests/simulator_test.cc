#include "crf/sim/simulator.h"

#include <gtest/gtest.h>

#include "crf/trace/generator.h"

namespace crf {
namespace {

const CellTrace& TestCell() {
  static const CellTrace* cell = [] {
    CellProfile profile = SimCellProfile('a');
    profile.num_machines = 16;
    GeneratorOptions options;
    options.num_intervals = 2 * kIntervalsPerDay;
    auto* trace = new CellTrace(GenerateCellTrace(profile, options, Rng(33)));
    trace->FilterToServingTasks();
    return trace;
  }();
  return *cell;
}

TEST(SimulatorTest, LimitSumNeverViolatesAndNeverSaves) {
  const SimResult result = SimulateCell(TestCell(), LimitSumSpec());
  for (const MachineMetrics& m : result.machines) {
    EXPECT_EQ(m.violations, 0) << "machine " << m.machine_index;
    EXPECT_DOUBLE_EQ(m.mean_violation_severity, 0.0);
    EXPECT_NEAR(m.savings_ratio, 0.0, 1e-12);
  }
  EXPECT_NEAR(result.MeanCellSavings(), 0.0, 1e-12);
}

TEST(SimulatorTest, BorgDefaultSavingsIsExactlyOneMinusPhi) {
  const SimResult result = SimulateCell(TestCell(), BorgDefaultSpec(0.9));
  for (const MachineMetrics& m : result.machines) {
    if (m.occupied_intervals > 0) {
      // On occupied intervals P = 0.9 L (the clamp to current usage can only
      // trigger when usage > 0.9 L, which also reduces savings), so savings
      // are at most 0.1.
      EXPECT_LE(m.savings_ratio, 0.1 + 1e-9);
      EXPECT_GT(m.savings_ratio, 0.05);
    }
  }
}

TEST(SimulatorTest, ParallelMatchesSerial) {
  SimOptions serial;
  serial.parallel = false;
  SimOptions parallel;
  parallel.parallel = true;
  const SimResult a = SimulateCell(TestCell(), SimulationMaxSpec(), serial);
  const SimResult b = SimulateCell(TestCell(), SimulationMaxSpec(), parallel);
  ASSERT_EQ(a.machines.size(), b.machines.size());
  for (size_t m = 0; m < a.machines.size(); ++m) {
    EXPECT_EQ(a.machines[m].violations, b.machines[m].violations);
    EXPECT_DOUBLE_EQ(a.machines[m].savings_ratio, b.machines[m].savings_ratio);
  }
  ASSERT_EQ(a.cell_savings_series.size(), b.cell_savings_series.size());
  for (size_t t = 0; t < a.cell_savings_series.size(); ++t) {
    EXPECT_NEAR(a.cell_savings_series[t], b.cell_savings_series[t], 1e-12);
  }
}

TEST(SimulatorTest, ResultNamesPopulated) {
  const SimResult result = SimulateCell(TestCell(), NSigmaSpec(5.0));
  EXPECT_EQ(result.cell_name, "cell_a");
  EXPECT_EQ(result.predictor_name, "n-sigma-5");
  EXPECT_EQ(result.machines.size(), static_cast<size_t>(TestCell().num_machines()));
}

TEST(SimulatorTest, UnfilteredOracleProducesMoreViolations) {
  // The total-usage oracle includes future arrivals, so it upper-bounds the
  // filtered oracle and any predictor violates it at least as often.
  SimOptions filtered;
  SimOptions unfiltered;
  unfiltered.use_total_usage_oracle = true;
  const SimResult a = SimulateCell(TestCell(), SimulationMaxSpec(), filtered);
  const SimResult b = SimulateCell(TestCell(), SimulationMaxSpec(), unfiltered);
  for (size_t m = 0; m < a.machines.size(); ++m) {
    EXPECT_GE(b.machines[m].violations, a.machines[m].violations);
  }
}

TEST(SimulatorTest, ShorterHorizonNeverIncreasesViolations) {
  SimOptions short_horizon;
  short_horizon.horizon = 6 * kIntervalsPerHour;
  SimOptions long_horizon;
  long_horizon.horizon = kIntervalsPerDay;
  const SimResult a = SimulateCell(TestCell(), NSigmaSpec(5.0), short_horizon);
  const SimResult b = SimulateCell(TestCell(), NSigmaSpec(5.0), long_horizon);
  for (size_t m = 0; m < a.machines.size(); ++m) {
    EXPECT_LE(a.machines[m].violations, b.machines[m].violations);
  }
}

TEST(SimulatorTest, SavingsConsistentWithMeanPredictionAndLimit) {
  const SimResult result = SimulateCell(TestCell(), SimulationMaxSpec());
  for (const MachineMetrics& m : result.machines) {
    EXPECT_LE(m.mean_prediction, m.mean_limit + 1e-9);
    if (m.occupied_intervals == m.intervals && m.mean_limit > 0) {
      // Fully-occupied machines: savings should roughly match the mean gap.
      EXPECT_NEAR(m.savings_ratio, 1.0 - m.mean_prediction / m.mean_limit, 0.1);
    }
  }
}

TEST(SimulateMachineTest, AccumulatesCellSeries) {
  const CellTrace& cell = TestCell();
  std::vector<double> limit(cell.num_intervals, 0.0);
  std::vector<double> prediction(cell.num_intervals, 0.0);
  const MachineMetrics metrics =
      SimulateMachine(cell, 0, LimitSumSpec(), SimOptions{}, &limit, &prediction);
  EXPECT_EQ(metrics.machine_index, 0);
  // For limit-sum, accumulated prediction equals accumulated limit.
  for (Interval t = 0; t < cell.num_intervals; ++t) {
    EXPECT_NEAR(prediction[t], limit[t], 1e-9);
  }
}

}  // namespace
}  // namespace crf
