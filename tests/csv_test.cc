#include "crf/util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace crf {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("crf_csv_test_" + name)).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const std::string path = TempPath("basic.csv");
  {
    CsvWriter writer(path, {"a", "b"});
    writer.WriteRow({std::string("1"), std::string("x")});
    writer.WriteRow(std::vector<double>{2.5, 3.0});
  }
  EXPECT_EQ(ReadAll(path), "a,b\n1,x\n2.5,3\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, CreatesParentDirectories) {
  const std::string dir = TempPath("nested_dir");
  const std::string path = dir + "/deep/file.csv";
  std::filesystem::remove_all(dir);
  {
    CsvWriter writer(path, {"x"});
    writer.WriteRow(std::vector<double>{1.0});
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

TEST(CsvWriterDeathTest, RowWidthMismatchAborts) {
  const std::string path = TempPath("mismatch.csv");
  CsvWriter writer(path, {"a", "b"});
  EXPECT_DEATH(writer.WriteRow(std::vector<double>{1.0}), "row width mismatch");
  std::remove(path.c_str());
}

TEST(FormatDoubleTest, RoundTripsTypicalValues) {
  for (const double v : {0.0, 1.0, -2.5, 0.1234567891, 1e-9, 12345678.9}) {
    EXPECT_DOUBLE_EQ(std::stod(FormatDouble(v)), v) << v;
  }
}

TEST(SplitCsvLineTest, SplitsFields) {
  const auto fields = SplitCsvLine("a,b,,d");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "d");
}

TEST(SplitCsvLineTest, SingleField) {
  const auto fields = SplitCsvLine("alone");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "alone");
}

TEST(SplitCsvLineTest, EmptyLineIsOneEmptyField) {
  const auto fields = SplitCsvLine("");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(EnsureDirectoryTest, CreatesAndIsIdempotent) {
  const std::string dir = TempPath("ensure_dir") + "/a/b";
  std::filesystem::remove_all(TempPath("ensure_dir"));
  EXPECT_TRUE(EnsureDirectory(dir));
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  EXPECT_TRUE(EnsureDirectory(dir));
  std::filesystem::remove_all(TempPath("ensure_dir"));
}

TEST(EnsureDirectoryTest, EmptyPathIsTrue) { EXPECT_TRUE(EnsureDirectory("")); }

}  // namespace
}  // namespace crf
