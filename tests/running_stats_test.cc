#include "crf/stats/running_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "crf/util/rng.h"

namespace crf {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(4.0);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 4.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // Classic population-variance example.
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_NEAR(stats.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(rng.Normal(10.0, 3.0));
  }
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (size_t i = 0; i < values.size(); ++i) {
    all.Add(values[i]);
    (i < 300 ? a : b).Add(values[i]);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats target;
  target.Merge(a);
  EXPECT_EQ(target.count(), 2);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffset) {
  RunningStats stats;
  const double offset = 1e9;
  for (const double v : {offset + 1.0, offset + 2.0, offset + 3.0}) {
    stats.Add(v);
  }
  EXPECT_NEAR(stats.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(stats.variance(), 2.0 / 3.0, 1e-3);
}

}  // namespace
}  // namespace crf
