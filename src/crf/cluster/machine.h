// One machine of the online cluster simulator.
//
// Owns the machine-local pieces a Borglet owns: the resident task set (each
// with its live usage model), the peak predictor, and the latency tracker.
// Each interval the machine generates its tasks' usage, measures demand
// against physical capacity, samples a CPU scheduling latency, feeds the
// predictor, and publishes a prediction. Usage samples are appended to a
// CellTraceBuilder so the sealed trace can feed post-hoc oracle analysis
// through the trace-simulator machinery.

#ifndef CRF_CLUSTER_MACHINE_H_
#define CRF_CLUSTER_MACHINE_H_

#include <memory>
#include <vector>

#include "crf/cluster/latency_model.h"
#include "crf/core/predictor.h"
#include "crf/trace/trace_builder.h"
#include "crf/trace/workload_model.h"
#include "crf/util/rng.h"

namespace crf {

class ClusterMachine {
 public:
  ClusterMachine(int machine_index, double capacity,
                 std::unique_ptr<PeakPredictor> predictor, const LatencyModelParams& latency,
                 const Rng& rng);

  // Starts running the task registered in the builder at `trace_index` for
  // `runtime` intervals beginning at `now`.
  void StartTask(CellTraceBuilder& trace, int32_t trace_index, const TaskUsageParams& params,
                 Interval now, Interval runtime);

  struct StepStats {
    double demand_mean = 0.0;    // mean within-interval total demand
    double demand_peak = 0.0;    // peak within-interval total demand
    double usage_sum = 0.0;      // sum of per-task p90 scalars (trace view)
    double limit_sum = 0.0;
    double prediction = 0.0;     // published at the end of this interval
    double free_capacity = 0.0;  // capacity - prediction, floored at 0
    double latency = 0.0;        // CPU scheduling latency sample
    int resident_tasks = 0;
  };

  // Advances one interval: retires tasks ending at `now`, generates usage,
  // records it into `trace`, samples latency, and refreshes the prediction.
  StepStats Step(Interval now, double shared_load, CellTraceBuilder& trace);

  double capacity() const { return capacity_; }
  // Advertised free capacity for the scheduler: capacity - predicted peak.
  double FreeCapacity() const;
  int resident_count() const { return static_cast<int>(tasks_.size()); }

 private:
  struct RunningTask {
    int32_t trace_index;
    Interval end;
    TaskUsageModel model;
  };

  int machine_index_;
  double capacity_;
  std::unique_ptr<PeakPredictor> predictor_;
  LatencyModel latency_model_;
  Rng usage_rng_;
  std::vector<RunningTask> tasks_;
  double prediction_ = 0.0;
  std::vector<TaskSample> samples_scratch_;
};

}  // namespace crf

#endif  // CRF_CLUSTER_MACHINE_H_
