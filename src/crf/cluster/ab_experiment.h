// Analysis of online cluster simulations: per-machine violation/latency
// correlation (paper Section 3.3, Fig 3) and the control-vs-experiment A/B
// comparison (Section 6, Figs 13-14).
//
// The A/B design is paired: for each cell profile the simulation runs twice
// from the same seed — once with the control predictor (tuned borg-default)
// and once with the experimental one (max predictor) — so both groups see
// statistically identical workloads, like the paper's random machine split.

#ifndef CRF_CLUSTER_AB_EXPERIMENT_H_
#define CRF_CLUSTER_AB_EXPERIMENT_H_

#include <span>
#include <string>
#include <vector>

#include "crf/cluster/cell_sim.h"
#include "crf/risk/risk_accumulator.h"
#include "crf/stats/ecdf.h"
#include "crf/util/time_grid.h"

namespace crf {

// Per-machine outcome of one cluster simulation: the Fig 3(d) scatter.
struct MachineOutcome {
  int machine_index = -1;
  double violation_rate = 0.0;
  double mean_violation_severity = 0.0;
  // Post-warmup tail metrics (crf/risk): severity p99/p999, violation
  // streaks, time-weighted violation fraction, savings-at-risk.
  RiskTailSummary tail;
  double p99_latency = 0.0;
  double p90_latency = 0.0;
  double mean_utilization = 0.0;
  double p50_utilization = 0.0;
  double p99_utilization = 0.0;
};

// Computes per-machine outcomes from the as-executed trace (post-warmup):
// oracle violations of the published predictions, latency tails, and
// utilization statistics.
std::vector<MachineOutcome> AnalyzeMachines(const ClusterSimResult& result,
                                            Interval horizon = kIntervalsPerDay);

// Group-level metric distributions for the Fig 13/14 plots.
struct GroupMetrics {
  std::string label;
  // Per machine (post-warmup).
  Ecdf violation_rate;
  Ecdf violation_severity;
  // Tail distributions (crf/risk): the per-machine p999 severity and the
  // longest violation streak — mean-vs-tail ranking flips show up here.
  Ecdf severity_p999;
  Ecdf max_violation_streak;
  Ecdf machine_p90_latency;
  Ecdf machine_p50_utilization;
  Ecdf machine_mean_utilization;
  Ecdf machine_p99_utilization;
  // Per interval, over the whole group.
  Ecdf relative_savings;        // (sum L - sum P) / sum L
  Ecdf normalized_allocation;   // sum L / total capacity
  Ecdf normalized_workload;     // sum usage / total capacity
  // Per task-interval (machine latency weighted by resident tasks).
  Ecdf task_latency;

  int64_t tasks_placed = 0;
  int64_t tasks_timed_out = 0;
};

// Aggregates one group's cluster results (one entry per cell).
GroupMetrics ComputeGroupMetrics(const std::string& label,
                                 std::span<const ClusterSimResult> results,
                                 Interval horizon = kIntervalsPerDay);

struct AbExperimentResult {
  GroupMetrics control;
  GroupMetrics experiment;
};

// Runs the paired A/B experiment over the given cell profiles.
AbExperimentResult RunAbExperiment(std::span<const CellProfile> profiles,
                                   const PredictorSpec& control_spec,
                                   const PredictorSpec& experiment_spec,
                                   const ClusterSimOptions& base_options, const Rng& rng);

}  // namespace crf

#endif  // CRF_CLUSTER_AB_EXPERIMENT_H_
