// Online Borg-like cell simulation.
//
// Unlike the trace-driven simulator (crf/sim), which replays fixed
// placements, this closes the loop: the predictor's published free capacity
// drives the scheduler's placement decisions, which change machine load,
// which changes future predictions. This is the substrate for the paper's
// production experiments — the Fig 3 violation-vs-latency study and the
// Section 6 A/B experiment — which cannot be expressed as trace replay.
//
// Per interval: (1) machines step usage / sample latency / publish
// predictions — sharded across the thread pool, since machines are
// independent within a step; (2) the scheduler ingests the published free
// capacities as per-machine deltas into its capacity index; (3) new jobs
// arrive and the pending queue is placed (feasibility = advertised free
// capacity fits the task limit; packing policy is a knob).
//
// Determinism contract: results are bit-identical for a given seed at any
// thread count and for either placement engine. Machine steps draw only from
// per-machine RNG streams forked at construction; all shared-state writes
// during the sharded phase are per-machine slots; cross-machine reductions
// (resident-task counts) merge per-shard partials in slot order after the
// join; and the arrival/sampling/scheduling phase is serial. The retained
// linear-scan scheduler and this serial phase form the reference the
// differential tests compare against.

#ifndef CRF_CLUSTER_CELL_SIM_H_
#define CRF_CLUSTER_CELL_SIM_H_

#include <string>
#include <vector>

#include "crf/cluster/latency_model.h"
#include "crf/cluster/machine_series.h"
#include "crf/cluster/scheduler.h"
#include "crf/core/predictor_factory.h"
#include "crf/trace/cell_profile.h"
#include "crf/util/rng.h"
#include "crf/util/thread_pool.h"
#include "crf/util/time_grid.h"

namespace crf {

struct ClusterSimOptions {
  // The paper's production experiment runs 32 days.
  Interval num_intervals = 32 * kIntervalsPerDay;
  // Metrics should skip this initial ramp-up (empty cell filling up).
  Interval warmup = 2 * kIntervalsPerDay;
  PredictorSpec predictor = BorgDefaultSpec();
  PackingPolicy packing = PackingPolicy::kBestFit;
  LatencyModelParams latency;
  // Pending tasks older than this are abandoned (counted, not placed).
  Interval pending_timeout = kIntervalsPerDay;

  // Shard the per-interval machine step loop across the thread pool.
  bool parallel = true;
  // Placement engine: indexed (tournament tree) or the linear-scan
  // reference. Both yield byte-identical placements for a given seed.
  PlacementEngine placement = PlacementEngine::kIndexed;
  // 0 (default): the single global scheduler — the reference every
  // differential test pins. > 0: the ShardedScheduler with this many
  // shard-local capacity treaps; capacity ingest and placement batches then
  // run shard-parallel on the pool. Results are byte-identical for a fixed
  // (seed, placement_shards) at any thread count, but changing the shard
  // count changes placements (it is part of the run's identity, like the
  // seed).
  int placement_shards = 0;
  // Batches (= scheduling intervals here) between cross-shard free-capacity
  // summary refreshes when placement_shards > 0.
  int placement_rebalance_interval = 8;
  // Pool override for tests (e.g. oversubscribed pools on small hosts);
  // nullptr uses ThreadPool::Default().
  ThreadPool* pool = nullptr;
};

struct ClusterSimResult {
  std::string cell_name;
  std::string predictor_name;
  Interval warmup = 0;

  // The as-executed trace: placements chosen by the live scheduler, usage as
  // generated. Enables post-hoc oracle analysis with crf/core/oracle.
  CellTrace trace;

  // Per machine, per interval (flat interval-major matrices).
  MachineIntervalSeries predictions;
  MachineIntervalSeries latencies;
  MachineIntervalSeries demand_mean;  // mean within-interval demand
  MachineIntervalSeries limit_sum;    // sum of resident limits

  int64_t tasks_placed = 0;
  int64_t tasks_timed_out = 0;
  // Sum over intervals of pending-queue length (scheduling delay pressure).
  int64_t pending_task_intervals = 0;
  // Scheduler::Place calls, including retries that found no machine (the
  // denominator for placements/sec throughput accounting).
  int64_t placement_attempts = 0;
};

ClusterSimResult RunClusterSim(const CellProfile& profile, const ClusterSimOptions& options,
                               const Rng& rng);

}  // namespace crf

#endif  // CRF_CLUSTER_CELL_SIM_H_
