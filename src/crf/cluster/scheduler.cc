#include "crf/cluster/scheduler.h"

#include <algorithm>
#include <limits>

#include "crf/util/check.h"

namespace crf {

std::string PackingPolicyName(PackingPolicy policy) {
  switch (policy) {
    case PackingPolicy::kBestFit:
      return "best-fit";
    case PackingPolicy::kWorstFit:
      return "worst-fit";
    case PackingPolicy::kRandomFit:
      return "random-fit";
  }
  return "unknown";
}

Scheduler::Scheduler(PackingPolicy policy, const Rng& rng) : policy_(policy), rng_(rng) {}

void Scheduler::UpdateFreeCapacity(std::vector<double> free_capacity) {
  free_capacity_ = std::move(free_capacity);
}

bool Scheduler::Fits(int machine, double limit) const {
  return free_capacity_[machine] >= limit;
}

int Scheduler::Place(double limit, const std::vector<int>& exclude) {
  const int num_machines = static_cast<int>(free_capacity_.size());
  CRF_CHECK_GT(num_machines, 0) << "UpdateFreeCapacity not called";

  auto excluded = [&exclude](int m) {
    return std::find(exclude.begin(), exclude.end(), m) != exclude.end();
  };

  // Two passes: first honoring the anti-affinity exclusions, then ignoring
  // them (a constrained-but-placeable task beats a pending one).
  for (const bool honor_exclusions : {true, false}) {
    if (!honor_exclusions && exclude.empty()) {
      break;
    }
    int best = -1;
    double best_key = std::numeric_limits<double>::infinity();
    int candidates = 0;
    const int offset = static_cast<int>(rng_.UniformInt(num_machines));
    for (int k = 0; k < num_machines; ++k) {
      const int m = (k + offset) % num_machines;
      if (!Fits(m, limit) || (honor_exclusions && excluded(m))) {
        continue;
      }
      double key = 0.0;
      switch (policy_) {
        case PackingPolicy::kBestFit:
          key = free_capacity_[m];  // least free wins
          break;
        case PackingPolicy::kWorstFit:
          key = -free_capacity_[m];  // most free wins
          break;
        case PackingPolicy::kRandomFit:
          // Reservoir-sample uniformly over feasible machines.
          ++candidates;
          if (rng_.UniformInt(candidates) == 0) {
            best = m;
          }
          continue;
      }
      if (key < best_key) {
        best_key = key;
        best = m;
      }
    }
    if (best >= 0) {
      free_capacity_[best] -= limit;
      return best;
    }
  }
  return -1;
}

}  // namespace crf
