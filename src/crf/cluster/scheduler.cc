#include "crf/cluster/scheduler.h"

#include <algorithm>
#include <limits>

#include "crf/util/check.h"

namespace crf {
namespace {

bool Contains(const std::vector<int>* exclude, int machine) {
  return exclude != nullptr &&
         std::find(exclude->begin(), exclude->end(), machine) != exclude->end();
}

}  // namespace

std::string PackingPolicyName(PackingPolicy policy) {
  switch (policy) {
    case PackingPolicy::kBestFit:
      return "best-fit";
    case PackingPolicy::kWorstFit:
      return "worst-fit";
    case PackingPolicy::kRandomFit:
      return "random-fit";
  }
  return "unknown";
}

PlacementCore::PlacementCore(PackingPolicy policy, PlacementEngine engine, const Rng& rng)
    : policy_(policy), engine_(engine), rng_(rng) {}

void PlacementCore::Reset(int num_machines) {
  CRF_CHECK_GE(num_machines, 0);
  free_capacity_.assign(num_machines, 0.0);
  if (engine_ == PlacementEngine::kIndexed) {
    tree_.Assign(free_capacity_);
  }
}

void PlacementCore::UpdateFreeCapacity(std::vector<double> free_capacity) {
  free_capacity_ = std::move(free_capacity);
  if (engine_ == PlacementEngine::kIndexed) {
    tree_.Assign(free_capacity_);
  }
}

void PlacementCore::Publish(int machine, double free) {
  CRF_CHECK_GE(machine, 0);
  CRF_CHECK_LT(machine, num_machines());
  if (free_capacity_[machine] == free) {
    return;
  }
  free_capacity_[machine] = free;
  if (engine_ == PlacementEngine::kIndexed) {
    tree_.Update(machine, free);
  }
}

double PlacementCore::MaxFree() const {
  const int num = num_machines();
  if (num == 0) {
    return -std::numeric_limits<double>::infinity();
  }
  if (engine_ == PlacementEngine::kIndexed) {
    return free_capacity_[tree_.MachineAtRank(num - 1)];
  }
  return *std::max_element(free_capacity_.begin(), free_capacity_.end());
}

int PlacementCore::Place(double limit, const std::vector<int>* exclude) {
  if (num_machines() == 0) {
    return -1;
  }
  // Two passes: first honoring the anti-affinity exclusions, then ignoring
  // them (a constrained-but-placeable task beats a pending one).
  for (const bool honor_exclusions : {true, false}) {
    if (!honor_exclusions && (exclude == nullptr || exclude->empty())) {
      break;
    }
    const std::vector<int>* excl = honor_exclusions ? exclude : nullptr;
    if (excl != nullptr && excl->empty()) {
      excl = nullptr;
    }
    const int best = engine_ == PlacementEngine::kIndexed ? PlaceOnceIndexed(limit, excl)
                                                          : PlaceOnceLinear(limit, excl);
    if (best >= 0) {
      free_capacity_[best] -= limit;
      if (engine_ == PlacementEngine::kIndexed) {
        tree_.Update(best, free_capacity_[best]);
      }
      return best;
    }
  }
  return -1;
}

int PlacementCore::PlaceOnceLinear(double limit, const std::vector<int>* exclude) {
  const int num = num_machines();

  if (policy_ == PackingPolicy::kRandomFit) {
    // Uniform over feasible machines: count, draw once, select by rank in
    // (free, index) order — the same draw the indexed engine makes.
    auto& candidates = candidates_scratch_;
    candidates.clear();
    for (int m = 0; m < num; ++m) {
      if (free_capacity_[m] >= limit && !Contains(exclude, m)) {
        candidates.emplace_back(free_capacity_[m], m);
      }
    }
    if (candidates.empty()) {
      return -1;
    }
    const int j = static_cast<int>(rng_.UniformInt(candidates.size()));
    std::nth_element(candidates.begin(), candidates.begin() + j, candidates.end());
    return candidates[j].second;
  }

  // Best/worst fit: the rotation offset randomizes tie-breaking among
  // machines with exactly equal advertised free capacity.
  const int offset = static_cast<int>(rng_.UniformInt(num));
  int best = -1;
  double best_key = std::numeric_limits<double>::infinity();
  for (int k = 0; k < num; ++k) {
    const int m = (k + offset) % num;
    if (free_capacity_[m] < limit || Contains(exclude, m)) {
      continue;
    }
    const double key =
        policy_ == PackingPolicy::kBestFit ? free_capacity_[m] : -free_capacity_[m];
    if (key < best_key) {
      best_key = key;
      best = m;
    }
  }
  return best;
}

int PlacementCore::PlaceOnceIndexed(double limit, const std::vector<int>* exclude) {
  const int num = num_machines();

  if (policy_ == PackingPolicy::kRandomFit) {
    const int first_feasible = tree_.RankOfKey(limit, -1);
    int feasible = num - first_feasible;
    auto& excluded_ranks = rank_scratch_;
    excluded_ranks.clear();
    if (exclude != nullptr && !exclude->empty()) {
      // The exclusion list may repeat a machine (pass-2 fallbacks place
      // several siblings on one host); dedupe before counting.
      auto& distinct = exclude_scratch_;
      distinct.assign(exclude->begin(), exclude->end());
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
      for (const int e : distinct) {
        if (free_capacity_[e] >= limit) {
          excluded_ranks.push_back(tree_.RankOfKey(free_capacity_[e], e));
        }
      }
      feasible -= static_cast<int>(excluded_ranks.size());
      std::sort(excluded_ranks.begin(), excluded_ranks.end());
    }
    if (feasible <= 0) {
      return -1;
    }
    // j-th non-excluded feasible machine in (free, index) order: shift the
    // target rank past every excluded rank at or before it.
    int pos = first_feasible + static_cast<int>(rng_.UniformInt(feasible));
    for (const int rank : excluded_ranks) {
      if (rank <= pos) {
        ++pos;
      }
    }
    return tree_.MachineAtRank(pos);
  }

  const int offset = static_cast<int>(rng_.UniformInt(num));

  // Locate the extreme feasible capacity f* among non-excluded machines.
  // Probing in rank order skips at most |exclude| entries in total.
  int found = -1;
  double fstar = 0.0;
  if (policy_ == PackingPolicy::kBestFit) {
    for (int rank = tree_.RankOfKey(limit, -1); rank < num; ++rank) {
      const int m = tree_.MachineAtRank(rank);
      if (!Contains(exclude, m)) {
        found = m;
        fstar = free_capacity_[m];
        break;
      }
    }
  } else {  // kWorstFit: the largest capacity among non-excluded machines.
    for (int rank = num - 1; rank >= 0; --rank) {
      const int m = tree_.MachineAtRank(rank);
      if (Contains(exclude, m)) {
        continue;
      }
      if (free_capacity_[m] >= limit) {
        found = m;
        fstar = free_capacity_[m];
      }
      break;
    }
  }
  if (found < 0) {
    return -1;
  }

  // Rotation tie-break among the machines with free == f*: first machine in
  // index order >= offset, wrapping to the lowest indices. This reproduces
  // the linear scan's "first strict improvement from a random start".
  for (int rank = tree_.RankOfKey(fstar, offset); rank < num; ++rank) {
    const int m = tree_.MachineAtRank(rank);
    if (free_capacity_[m] != fstar) {
      break;
    }
    if (!Contains(exclude, m)) {
      return m;
    }
  }
  for (int rank = tree_.RankOfKey(fstar, -1); rank < num; ++rank) {
    const int m = tree_.MachineAtRank(rank);
    if (free_capacity_[m] != fstar || m >= offset) {
      break;
    }
    if (!Contains(exclude, m)) {
      return m;
    }
  }
  return found;  // Unreachable: `found` itself is in the tie class.
}

Scheduler::Scheduler(PackingPolicy policy, const Rng& rng, PlacementEngine engine)
    : engine_(engine), core_(policy, engine, rng) {}

int Scheduler::Place(double limit, const std::vector<int>& exclude) {
  CRF_CHECK_GT(num_machines(), 0) << "UpdateFreeCapacity/Reset not called";
  return core_.Place(limit, &exclude);
}

}  // namespace crf
