// CPU scheduling latency model.
//
// The paper's production QoS metric is CPU scheduling latency: the time a
// ready thread waits for a free CPU (Section 2.1). We model a machine's
// per-interval latency sample with a queueing-style law: a lognormal base
// (NUMA locality, interference and other confounders the paper mentions)
// multiplied by a congestion term that grows hyperbolically as demand
// approaches capacity and sharply once demand exceeds it (threads then
// *must* wait). This reproduces the Fig 3(d) mechanism: machines whose
// predictor underestimates peaks get packed too tightly, run hot, and their
// tail latency rises with their violation rate.

#ifndef CRF_CLUSTER_LATENCY_MODEL_H_
#define CRF_CLUSTER_LATENCY_MODEL_H_

#include "crf/util/rng.h"

namespace crf {

struct LatencyModelParams {
  // Lognormal base latency (arbitrary units; figures normalize).
  double base_log_mu = 0.0;
  double base_log_sigma = 0.25;
  // Congestion gain: latency multiplier ~ 1 + gain * rho / (1 - rho) on the
  // mean utilization.
  double congestion_gain = 0.10;
  // Same hyperbola applied to the within-interval *peak* utilization: CPU
  // scheduling latency spikes when instantaneous demand approaches the core
  // count, well before sustained overload.
  double peak_congestion_gain = 0.15;
  // Utilization at which the hyperbola is clipped (scheduler never lets
  // rho reach exactly 1 in the formula).
  double rho_clip = 0.98;
  // Extra multiplier per unit of overload (demand beyond capacity).
  double overload_gain = 150.0;
};

class LatencyModel {
 public:
  LatencyModel(const LatencyModelParams& params, const Rng& rng);

  // One machine-interval latency sample given the interval's mean demand,
  // its within-interval peak demand, and the machine capacity.
  double Sample(double mean_demand, double peak_demand, double capacity);

 private:
  LatencyModelParams params_;
  Rng rng_;
};

}  // namespace crf

#endif  // CRF_CLUSTER_LATENCY_MODEL_H_
