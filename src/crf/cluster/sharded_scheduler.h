// Sharded placement engine: parallel shard-local capacity treaps with
// periodic cross-shard rebalancing (DESIGN.md §"Sharded placement").
//
// The global Scheduler is a single serial decision stream: every placement
// mutates one CapacityTournamentTree, so the placement phase cannot use the
// thread pool no matter how many machines the cell has. This engine
// partitions the machines into S contiguous shards, each owning a private
// PlacementCore (its own treap, free-capacity vector, and RNG fork), and
// places task *batches* in three phases:
//
//   1. Route (serial):  each request is assigned a home shard from its
//      affinity key (all tasks of one job share a key, so anti-affinity
//      spreading is evaluated sequentially within one shard).
//   2. Shard phase (parallel): shards place their routed subsequences
//      independently on the epoch-dispatch pool (ParallelForRanges). A shard
//      only ever touches its own treap, RNG, and scratch, so the thread
//      count and claim order cannot affect any shard's decision stream.
//   3. Steal phase (serial, shard order): requests that did not fit their
//      home shard retry other shards, richest first by the cross-shard
//      free-capacity summaries. Summaries are refreshed every
//      `rebalance_interval` batches (and on every bulk publish); a stale
//      summary only reorders the candidate walk — the steal phase falls back
//      to trying every shard before giving up, so a request fails only if no
//      shard can place it.
//
// Determinism contract: for a fixed (seed, num_shards) the full result
// sequence — placements, debited capacities, per-shard RNG states — is
// byte-identical at any thread count, because each shard's core is advanced
// only by its own serial subsequence plus the serial steal phase. Changing
// `num_shards` changes the partition and therefore the placements; it is
// part of the run's identity, like the seed.

#ifndef CRF_CLUSTER_SHARDED_SCHEDULER_H_
#define CRF_CLUSTER_SHARDED_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "crf/cluster/scheduler.h"
#include "crf/util/rng.h"
#include "crf/util/thread_pool.h"

namespace crf {

struct ShardedSchedulerOptions {
  int num_shards = 8;
  // Batches between cross-shard free-capacity summary refreshes (>= 1).
  // Smaller = fresher steal routing (better packing under imbalance), larger
  // = less summary traffic. Never affects which requests are placeable.
  int rebalance_interval = 8;
  PackingPolicy packing = PackingPolicy::kBestFit;
  PlacementEngine engine = PlacementEngine::kIndexed;
  // Pool for the shard phase; nullptr uses ThreadPool::Default().
  ThreadPool* pool = nullptr;
  // false runs the shard phase inline (results are identical either way).
  bool parallel = true;
};

class ShardedScheduler {
 public:
  // Shard RNGs are forked from `rng` by shard index, so the decision streams
  // depend only on (seed, num_shards).
  ShardedScheduler(const ShardedSchedulerOptions& options, const Rng& rng);

  // Sizes the engine for `num_machines` machines (global ids [0, M)) with
  // zero advertised free capacity. Shard s owns the contiguous range
  // [floor(s*M/S), floor((s+1)*M/S)); shards beyond M are empty and skipped.
  void Reset(int num_machines);

  // Bulk publish of every machine's advertised free capacity, ingested
  // shard-parallel. Also refreshes the cross-shard summaries.
  void PublishAll(std::span<const double> free_capacity);

  // Publishes one machine's advertised free capacity (serial).
  void Publish(int machine, double free);

  struct Request {
    double limit = 0.0;
    // Anti-affinity list of global machine ids, and the commit target: on
    // success the chosen machine is appended, so later siblings in the same
    // batch see it. All requests sharing a vector must share affinity_key.
    // May be nullptr.
    std::vector<int>* job_machines = nullptr;
    // Requests with equal keys route to the same home shard.
    uint64_t affinity_key = 0;
  };

  // Places requests[i] into results[i] (global machine id, or -1 if no
  // shard can fit it). Successful placements debit the owning shard's
  // advertised free capacity by the request's limit.
  void PlaceBatch(std::span<const Request> requests, std::span<int> results);

  // Single-request convenience wrapper over PlaceBatch.
  int Place(double limit, std::vector<int>* job_machines, uint64_t affinity_key);

  double free_capacity(int machine) const;
  int num_machines() const { return num_machines_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  // Telemetry.
  int64_t stolen_placements() const { return stolen_placements_; }
  int64_t batches() const { return batches_; }
  int64_t rebalances() const { return rebalances_; }
  double TotalFreeCapacity() const;

 private:
  // Padded so concurrent shard phases never false-share adjacent shards'
  // mutable state (cores mutate treaps and RNGs on every placement).
  struct alignas(64) Shard {
    Shard(PackingPolicy packing, PlacementEngine engine, const Rng& rng)
        : core(packing, engine, rng) {}
    PlacementCore core;
    int base = 0;   // first global machine id owned by this shard
    int count = 0;  // machines owned
    double max_free_summary = 0.0;  // as of the last rebalance
    // Batch scratch.
    std::vector<int> routed;         // request indices routed here, in order
    std::vector<int> overflow;       // routed requests that missed locally
    std::vector<int> exclude_local;  // shard-local translated exclusions
  };

  // Translates the request's exclusions into `shard`'s local numbering,
  // places, and on success appends the global machine id to job_machines.
  int PlaceOnShard(Shard& shard, const Request& request);
  void RefreshSummaries();

  ShardedSchedulerOptions options_;
  int num_machines_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<int> shard_of_;       // global machine id -> shard index
  std::vector<int> nonempty_;       // shard indices with count > 0
  std::vector<int> steal_order_;    // nonempty shards, richest summary first
  std::vector<uint8_t> tried_;      // per-request steal scratch, size S
  int64_t stolen_placements_ = 0;
  int64_t batches_ = 0;
  int64_t rebalances_ = 0;
};

}  // namespace crf

#endif  // CRF_CLUSTER_SHARDED_SCHEDULER_H_
