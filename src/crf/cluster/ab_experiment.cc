#include "crf/cluster/ab_experiment.h"

#include <algorithm>
#include <cmath>

#include "crf/core/oracle.h"
#include "crf/risk/risk_accumulator.h"
#include "crf/stats/percentile.h"
#include "crf/util/check.h"
#include "crf/util/thread_pool.h"

namespace crf {
namespace {

// Stride for per-task-interval latency sampling: full resolution would be
// tens of millions of samples with no visible change to the CDF.
constexpr Interval kTaskLatencyStride = 8;

}  // namespace

namespace {

// One machine's post-warmup outcome. Pure in (result, m): safe to shard.
MachineOutcome AnalyzeOneMachine(const ClusterSimResult& result, int m, Interval horizon) {
  const Interval num_intervals = result.trace.num_intervals;
  const Interval warmup = result.warmup;
  const std::vector<double> oracle = ComputePeakOracle(result.trace, m, horizon);
  const double capacity = result.trace.machine_capacity(m);

  MachineOutcome outcome;
  outcome.machine_index = m;

  // Post-warmup intervals scored through the shared crf/risk accounting —
  // the same arithmetic (in the same order) as the hand-rolled loop it
  // replaced, plus the tail metrics.
  RiskAccumulator risk;
  std::vector<double> latency_buffer;
  std::vector<double> util_buffer;
  latency_buffer.reserve(num_intervals - warmup);
  util_buffer.reserve(num_intervals - warmup);
  double util_sum = 0.0;
  for (Interval t = warmup; t < num_intervals; ++t) {
    const double prediction = result.predictions.at(m, t);
    const double limit_sum = result.limit_sum.at(m, t);
    risk.Record(prediction, oracle[t], limit_sum, limit_sum > 0.0);
    latency_buffer.push_back(result.latencies.at(m, t));
    const double util = result.demand_mean.at(m, t) / capacity;
    util_buffer.push_back(util);
    util_sum += util;
  }
  const int64_t evaluated = num_intervals - warmup;
  outcome.violation_rate = static_cast<double>(risk.violations()) / evaluated;
  outcome.mean_violation_severity = risk.severity_sum() / evaluated;
  outcome.tail = risk.TailSummary();
  outcome.p99_latency = Percentile(latency_buffer, 99.0);
  outcome.p90_latency = Percentile(latency_buffer, 90.0);
  outcome.mean_utilization = util_sum / evaluated;
  outcome.p50_utilization = Percentile(util_buffer, 50.0);
  outcome.p99_utilization = Percentile(util_buffer, 99.0);
  return outcome;
}

}  // namespace

std::vector<MachineOutcome> AnalyzeMachines(const ClusterSimResult& result, Interval horizon) {
  CRF_CHECK_LT(result.warmup, result.trace.num_intervals);

  // The per-machine peak oracle dominates analysis time; machines are
  // independent, so shard them (each writes only its own outcome slot).
  const int num_machines = result.trace.num_machines();
  std::vector<MachineOutcome> outcomes(num_machines);
  ThreadPool::Default().ParallelFor(num_machines, [&](int m) {
    outcomes[m] = AnalyzeOneMachine(result, m, horizon);
  });
  return outcomes;
}

GroupMetrics ComputeGroupMetrics(const std::string& label,
                                 std::span<const ClusterSimResult> results, Interval horizon) {
  GroupMetrics metrics;
  metrics.label = label;

  for (const ClusterSimResult& result : results) {
    for (const MachineOutcome& outcome : AnalyzeMachines(result, horizon)) {
      metrics.violation_rate.Add(outcome.violation_rate);
      metrics.violation_severity.Add(outcome.mean_violation_severity);
      metrics.severity_p999.Add(outcome.tail.severity_p999);
      metrics.max_violation_streak.Add(static_cast<double>(outcome.tail.max_violation_streak));
      metrics.machine_p90_latency.Add(outcome.p90_latency);
      metrics.machine_p50_utilization.Add(outcome.p50_utilization);
      metrics.machine_mean_utilization.Add(outcome.mean_utilization);
      metrics.machine_p99_utilization.Add(outcome.p99_utilization);
    }

    const Interval num_intervals = result.trace.num_intervals;
    const int num_machines = result.trace.num_machines();
    const double total_capacity = result.trace.TotalCapacity();
    CRF_CHECK_GT(total_capacity, 0.0);

    // Resident-task counts per machine-interval for latency weighting.
    std::vector<std::vector<int32_t>> resident(num_machines);
    for (int m = 0; m < num_machines; ++m) {
      resident[m] = result.trace.MachineResidentCount(m);
    }

    for (Interval t = result.warmup; t < num_intervals; ++t) {
      double limit_sum = 0.0;
      double prediction_sum = 0.0;
      double usage_sum = 0.0;
      // Interval rows are contiguous in the flat series: these sums stream.
      const auto limit_row = result.limit_sum.IntervalRow(t);
      const auto prediction_row = result.predictions.IntervalRow(t);
      const auto usage_row = result.demand_mean.IntervalRow(t);
      for (int m = 0; m < num_machines; ++m) {
        limit_sum += limit_row[m];
        prediction_sum += prediction_row[m];
        usage_sum += usage_row[m];
      }
      if (limit_sum > 0.0) {
        metrics.relative_savings.Add((limit_sum - prediction_sum) / limit_sum);
      }
      metrics.normalized_allocation.Add(limit_sum / total_capacity);
      metrics.normalized_workload.Add(usage_sum / total_capacity);

      if ((t - result.warmup) % kTaskLatencyStride == 0) {
        for (int m = 0; m < num_machines; ++m) {
          // One latency sample per resident task: tasks on one machine share
          // its CPU scheduler.
          for (int32_t k = 0; k < resident[m][t]; ++k) {
            metrics.task_latency.Add(result.latencies.at(m, t));
          }
        }
      }
    }

    metrics.tasks_placed += result.tasks_placed;
    metrics.tasks_timed_out += result.tasks_timed_out;
  }
  return metrics;
}

AbExperimentResult RunAbExperiment(std::span<const CellProfile> profiles,
                                   const PredictorSpec& control_spec,
                                   const PredictorSpec& experiment_spec,
                                   const ClusterSimOptions& base_options, const Rng& rng) {
  std::vector<ClusterSimResult> control_results;
  std::vector<ClusterSimResult> experiment_results;
  control_results.reserve(profiles.size());
  experiment_results.reserve(profiles.size());

  for (size_t i = 0; i < profiles.size(); ++i) {
    const Rng cell_rng = rng.Fork(0xab000000 + i);
    ClusterSimOptions options = base_options;
    options.predictor = control_spec;
    control_results.push_back(RunClusterSim(profiles[i], options, cell_rng));
    options.predictor = experiment_spec;
    experiment_results.push_back(RunClusterSim(profiles[i], options, cell_rng));
  }

  AbExperimentResult result;
  result.control = ComputeGroupMetrics("control", control_results);
  result.experiment = ComputeGroupMetrics("exp", experiment_results);
  return result;
}

}  // namespace crf
