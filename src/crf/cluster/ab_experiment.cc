#include "crf/cluster/ab_experiment.h"

#include <algorithm>
#include <cmath>

#include "crf/core/oracle.h"
#include "crf/stats/percentile.h"
#include "crf/util/check.h"

namespace crf {
namespace {

// Relative tolerance for prediction-vs-oracle comparison (sums of the same
// floats accumulated along different paths).
bool IsViolation(double prediction, double oracle) {
  return prediction < oracle * (1.0 - 1e-9) - 1e-12;
}

// Stride for per-task-interval latency sampling: full resolution would be
// tens of millions of samples with no visible change to the CDF.
constexpr Interval kTaskLatencyStride = 8;

}  // namespace

std::vector<MachineOutcome> AnalyzeMachines(const ClusterSimResult& result, Interval horizon) {
  const Interval num_intervals = result.trace.num_intervals;
  const Interval warmup = result.warmup;
  CRF_CHECK_LT(warmup, num_intervals);

  std::vector<MachineOutcome> outcomes;
  outcomes.reserve(result.trace.machines.size());

  std::vector<double> latency_buffer;
  std::vector<double> util_buffer;
  for (size_t m = 0; m < result.trace.machines.size(); ++m) {
    const std::vector<double> oracle =
        ComputePeakOracle(result.trace, static_cast<int>(m), horizon);
    const double capacity = result.trace.machines[m].capacity;

    MachineOutcome outcome;
    outcome.machine_index = static_cast<int>(m);

    int64_t violations = 0;
    double severity_sum = 0.0;
    latency_buffer.clear();
    util_buffer.clear();
    double util_sum = 0.0;
    for (Interval t = warmup; t < num_intervals; ++t) {
      const double prediction = result.predictions[m][t];
      if (IsViolation(prediction, oracle[t])) {
        ++violations;
        severity_sum += (oracle[t] - prediction) / oracle[t];
      }
      latency_buffer.push_back(result.latencies[m][t]);
      const double util = result.demand_mean[m][t] / capacity;
      util_buffer.push_back(util);
      util_sum += util;
    }
    const int64_t evaluated = num_intervals - warmup;
    outcome.violation_rate = static_cast<double>(violations) / evaluated;
    outcome.mean_violation_severity = severity_sum / evaluated;
    outcome.p99_latency = Percentile(latency_buffer, 99.0);
    outcome.p90_latency = Percentile(latency_buffer, 90.0);
    outcome.mean_utilization = util_sum / evaluated;
    outcome.p50_utilization = Percentile(util_buffer, 50.0);
    outcome.p99_utilization = Percentile(util_buffer, 99.0);
    outcomes.push_back(outcome);
  }
  return outcomes;
}

GroupMetrics ComputeGroupMetrics(const std::string& label,
                                 std::span<const ClusterSimResult> results, Interval horizon) {
  GroupMetrics metrics;
  metrics.label = label;

  for (const ClusterSimResult& result : results) {
    for (const MachineOutcome& outcome : AnalyzeMachines(result, horizon)) {
      metrics.violation_rate.Add(outcome.violation_rate);
      metrics.violation_severity.Add(outcome.mean_violation_severity);
      metrics.machine_p90_latency.Add(outcome.p90_latency);
      metrics.machine_p50_utilization.Add(outcome.p50_utilization);
      metrics.machine_mean_utilization.Add(outcome.mean_utilization);
      metrics.machine_p99_utilization.Add(outcome.p99_utilization);
    }

    const Interval num_intervals = result.trace.num_intervals;
    const int num_machines = static_cast<int>(result.trace.machines.size());
    double total_capacity = 0.0;
    for (const auto& machine : result.trace.machines) {
      total_capacity += machine.capacity;
    }
    CRF_CHECK_GT(total_capacity, 0.0);

    // Resident-task counts per machine-interval for latency weighting.
    std::vector<std::vector<int32_t>> resident(num_machines);
    for (int m = 0; m < num_machines; ++m) {
      resident[m] = result.trace.MachineResidentCount(m);
    }

    for (Interval t = result.warmup; t < num_intervals; ++t) {
      double limit_sum = 0.0;
      double prediction_sum = 0.0;
      double usage_sum = 0.0;
      for (int m = 0; m < num_machines; ++m) {
        limit_sum += result.limit_sum[m][t];
        prediction_sum += result.predictions[m][t];
        usage_sum += result.demand_mean[m][t];
      }
      if (limit_sum > 0.0) {
        metrics.relative_savings.Add((limit_sum - prediction_sum) / limit_sum);
      }
      metrics.normalized_allocation.Add(limit_sum / total_capacity);
      metrics.normalized_workload.Add(usage_sum / total_capacity);

      if ((t - result.warmup) % kTaskLatencyStride == 0) {
        for (int m = 0; m < num_machines; ++m) {
          // One latency sample per resident task: tasks on one machine share
          // its CPU scheduler.
          for (int32_t k = 0; k < resident[m][t]; ++k) {
            metrics.task_latency.Add(result.latencies[m][t]);
          }
        }
      }
    }

    metrics.tasks_placed += result.tasks_placed;
    metrics.tasks_timed_out += result.tasks_timed_out;
  }
  return metrics;
}

AbExperimentResult RunAbExperiment(std::span<const CellProfile> profiles,
                                   const PredictorSpec& control_spec,
                                   const PredictorSpec& experiment_spec,
                                   const ClusterSimOptions& base_options, const Rng& rng) {
  std::vector<ClusterSimResult> control_results;
  std::vector<ClusterSimResult> experiment_results;
  control_results.reserve(profiles.size());
  experiment_results.reserve(profiles.size());

  for (size_t i = 0; i < profiles.size(); ++i) {
    const Rng cell_rng = rng.Fork(0xab000000 + i);
    ClusterSimOptions options = base_options;
    options.predictor = control_spec;
    control_results.push_back(RunClusterSim(profiles[i], options, cell_rng));
    options.predictor = experiment_spec;
    experiment_results.push_back(RunClusterSim(profiles[i], options, cell_rng));
  }

  AbExperimentResult result;
  result.control = ComputeGroupMetrics("control", control_results);
  result.experiment = ComputeGroupMetrics("exp", experiment_results);
  return result;
}

}  // namespace crf
