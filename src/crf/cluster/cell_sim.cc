#include "crf/cluster/cell_sim.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>

#include "crf/cluster/machine.h"
#include "crf/cluster/sharded_scheduler.h"
#include "crf/trace/job_sampler.h"
#include "crf/util/check.h"

namespace crf {
namespace {

// One arriving job: the template plus the placements of its already-placed
// sibling tasks (anti-affinity spreading). Shared by every sibling's queue
// entry so wide jobs keep a single copy of the parameter block.
struct PendingJob {
  JobTemplate job;
  std::vector<int> machines;
};

// One task waiting for placement.
struct PendingTask {
  std::shared_ptr<PendingJob> job;
  Interval enqueued = 0;
};

// Per-shard partial reduction of the machine step loop, padded to a cache
// line so concurrent shards don't false-share.
struct alignas(64) ShardAccum {
  int64_t resident_tasks = 0;
};

}  // namespace

ClusterSimResult RunClusterSim(const CellProfile& profile, const ClusterSimOptions& options,
                               const Rng& rng) {
  CRF_CHECK_GT(options.num_intervals, 0);
  CRF_CHECK_GE(options.warmup, 0);
  CRF_CHECK_LT(options.warmup, options.num_intervals);

  const int num_machines = profile.num_machines;
  const Interval num_intervals = options.num_intervals;

  ClusterSimResult result;
  result.cell_name = profile.name;
  result.predictor_name = options.predictor.Name();
  result.warmup = options.warmup;
  // The as-executed trace accumulates in a builder (machines append usage
  // concurrently to distinct tasks during the sharded step) and is sealed
  // into the immutable columnar form once the run completes.
  CellTraceBuilder trace(profile.name, num_intervals, num_machines);

  JobSampler sampler(profile, rng.Fork(0x6a6f62));
  Rng arrival_rng = rng.Fork(0x617272);
  Scheduler scheduler(options.packing, rng.Fork(0x736368), options.placement);
  std::optional<ShardedScheduler> sharded;
  if (options.placement_shards > 0) {
    ShardedSchedulerOptions sharded_options;
    sharded_options.num_shards = options.placement_shards;
    sharded_options.rebalance_interval = options.placement_rebalance_interval;
    sharded_options.packing = options.packing;
    sharded_options.engine = options.placement;
    sharded_options.pool = options.pool;
    sharded_options.parallel = options.parallel;
    sharded.emplace(sharded_options, rng.Fork(0x736368));
    sharded->Reset(num_machines);
  } else {
    scheduler.Reset(num_machines);
  }
  const std::vector<double> shared_load =
      BuildSharedLoadSeries(profile, num_intervals, rng.Fork(0x757367));

  std::vector<ClusterMachine> machines;
  machines.reserve(num_machines);
  for (int m = 0; m < num_machines; ++m) {
    trace.set_machine_capacity(m, profile.machine_capacity);
    trace.mutable_true_peak(m).assign(num_intervals, 0.0f);
    machines.emplace_back(m, profile.machine_capacity, CreatePredictor(options.predictor),
                          options.latency, rng.Fork(0x6d000000 + m));
  }

  result.predictions.Assign(num_machines, num_intervals);
  result.latencies.Assign(num_machines, num_intervals);
  result.demand_mean.Assign(num_machines, num_intervals);
  result.limit_sum.Assign(num_machines, num_intervals);

  ThreadPool& pool = options.pool != nullptr ? *options.pool : ThreadPool::Default();
  const bool parallel = options.parallel && pool.num_threads() > 1 && num_machines > 1;
  const int slots = parallel ? pool.num_threads() : 1;
  // A few blocks per thread balances steal granularity against shared-counter
  // traffic on this fine-grained, every-interval loop. Rounding the block up
  // to 16 machines aligns claim boundaries with whole cache lines of the
  // float series matrices (16 floats per 64-byte line), so two threads never
  // split a line of predictions/latencies/demand/limit between them.
  int block = std::max(1, num_machines / (4 * slots));
  if (block > 16) {
    block = (block + 15) & ~15;
  }
  std::vector<ShardAccum> shard_accum(slots);

  std::deque<PendingTask> pending;
  std::vector<PendingTask> batch_entries;
  std::vector<ShardedScheduler::Request> batch_requests;
  std::vector<int> batch_results;
  std::vector<double> free_capacity(num_machines, 0.0);
  int64_t resident = 0;
  TaskId next_task_id = 1;
  // Budget of continuously-running services (they never depart, so an
  // unbounded Bernoulli would overshoot the population target during the
  // high-churn ramp-up).
  int64_t service_budget = static_cast<int64_t>(
      profile.service_fraction * profile.tasks_per_machine * num_machines);

  for (Interval t = 0; t < num_intervals; ++t) {
    // (1) Machines advance; Borglets publish predictions. Machines are
    // independent within a step: each draws only from its own RNG fork and
    // writes only its own slots (trace rows, series columns, free-capacity
    // entry), so the shard order cannot affect the outcome.
    for (ShardAccum& accum : shard_accum) {
      accum.resident_tasks = 0;
    }
    const auto step_machines = [&](int slot, int begin, int end) {
      // Accumulate the shard partial in a register-resident local and write
      // the padded slot once per claimed range, not once per machine.
      int64_t resident_tasks = 0;
      for (int m = begin; m < end; ++m) {
        const ClusterMachine::StepStats stats = machines[m].Step(t, shared_load[t], trace);
        result.predictions.at(m, t) = static_cast<float>(stats.prediction);
        result.latencies.at(m, t) = static_cast<float>(stats.latency);
        result.demand_mean.at(m, t) = static_cast<float>(stats.demand_mean);
        result.limit_sum.at(m, t) = static_cast<float>(stats.limit_sum);
        free_capacity[m] = stats.free_capacity;
        resident_tasks += stats.resident_tasks;
      }
      shard_accum[slot].resident_tasks += resident_tasks;
    };
    if (parallel) {
      pool.ParallelForRanges(num_machines, block, step_machines);
    } else {
      step_machines(0, 0, num_machines);
    }
    // Slot-ordered reduction of the per-shard partials (integer sums are
    // exact, but merging in a fixed order keeps the recipe uniform with the
    // trace simulator's float reductions).
    resident = 0;
    for (const ShardAccum& accum : shard_accum) {
      resident += accum.resident_tasks;
    }

    if (t + 1 >= num_intervals) {
      break;  // Tasks placed now would start after the simulation ends.
    }

    // (2) The scheduler ingests the published view as per-machine deltas
    // into its capacity index (no vector copy, no full rebuild). The sharded
    // engine ingests shard-parallel; the global scheduler is serial.
    if (sharded.has_value()) {
      sharded->PublishAll(free_capacity);
    } else {
      for (int m = 0; m < num_machines; ++m) {
        scheduler.Publish(m, free_capacity[m]);
      }
    }

    // (3) New arrivals join the pending queue...
    int arrivals = arrival_rng.Poisson(ArrivalRate(profile, t, resident));
    while (arrivals > 0) {
      auto job = std::make_shared<PendingJob>();
      job->job = sampler.NextJob();
      const int num_tasks = std::min(arrivals, sampler.SampleTasksPerJob());
      for (int i = 0; i < num_tasks; ++i) {
        pending.push_back({job, t});
      }
      arrivals -= num_tasks;
    }

    // ...and the queue is drained oldest-first against the advertised
    // capacities. Tasks that cannot be placed stay queued; stale ones are
    // abandoned.
    const auto commit_placed = [&](PendingTask& entry, int machine) {
      const Interval start = t + 1;
      // Continuously-running services enter while the cell ramps up (the
      // online analogue of the trace generator's initial service
      // population), bounded by the service share of the population target.
      const bool service = service_budget > 0 && t < options.warmup &&
                           arrival_rng.Bernoulli(profile.service_fraction);
      if (service) {
        --service_budget;
      }
      const Interval runtime = sampler.SampleRuntime(service, start, num_intervals);
      const int32_t trace_index =
          trace.AddTask(next_task_id++, entry.job->job.job_id, machine, start,
                        entry.job->job.limit, entry.job->job.sched_class);
      machines[machine].StartTask(trace, trace_index,
                                  sampler.JitterTaskParams(entry.job->job.params), start,
                                  runtime);
      ++result.tasks_placed;
    };

    if (sharded.has_value()) {
      // Sharded drain: the eligible queue snapshot becomes one placement
      // batch, placed shard-parallel; placements are then committed serially
      // in batch order so every sampler/arrival RNG draw happens in a fixed
      // sequence regardless of thread count.
      batch_entries.clear();
      batch_requests.clear();
      size_t scan = pending.size();
      while (scan-- > 0) {
        PendingTask entry = std::move(pending.front());
        pending.pop_front();
        if (t - entry.enqueued >= options.pending_timeout) {
          ++result.tasks_timed_out;
          continue;
        }
        batch_entries.push_back(std::move(entry));
      }
      for (const PendingTask& entry : batch_entries) {
        batch_requests.push_back({entry.job->job.limit, &entry.job->machines,
                                  static_cast<uint64_t>(entry.job->job.job_id)});
      }
      batch_results.assign(batch_entries.size(), -1);
      result.placement_attempts += static_cast<int64_t>(batch_entries.size());
      sharded->PlaceBatch(batch_requests, batch_results);
      for (size_t i = 0; i < batch_entries.size(); ++i) {
        if (batch_results[i] < 0) {
          pending.push_back(std::move(batch_entries[i]));  // Retry next interval.
          continue;
        }
        // The engine already appended the machine to job->machines.
        commit_placed(batch_entries[i], batch_results[i]);
      }
    } else {
      size_t scan = pending.size();
      while (scan-- > 0) {
        PendingTask entry = std::move(pending.front());
        pending.pop_front();
        if (t - entry.enqueued >= options.pending_timeout) {
          ++result.tasks_timed_out;
          continue;
        }
        ++result.placement_attempts;
        const int machine = scheduler.Place(entry.job->job.limit, entry.job->machines);
        if (machine < 0) {
          pending.push_back(std::move(entry));  // Retry next interval.
          continue;
        }
        entry.job->machines.push_back(machine);
        commit_placed(entry, machine);
      }
    }
    result.pending_task_intervals += static_cast<int64_t>(pending.size());
  }

  result.trace = trace.Seal();
  return result;
}

}  // namespace crf
