#include "crf/cluster/cell_sim.h"

#include <algorithm>
#include <deque>
#include <memory>

#include "crf/cluster/machine.h"
#include "crf/trace/job_sampler.h"
#include "crf/util/check.h"

namespace crf {
namespace {

// One task waiting for placement. Sibling tasks of a job share the
// placements vector for anti-affinity spreading.
struct PendingTask {
  JobTemplate job;  // Per-task copy of the job template (limit, class, params).
  Interval enqueued = 0;
  std::shared_ptr<std::vector<int>> job_machines;
};

}  // namespace

ClusterSimResult RunClusterSim(const CellProfile& profile, const ClusterSimOptions& options,
                               const Rng& rng) {
  CRF_CHECK_GT(options.num_intervals, 0);
  CRF_CHECK_GE(options.warmup, 0);
  CRF_CHECK_LT(options.warmup, options.num_intervals);

  const int num_machines = profile.num_machines;
  const Interval num_intervals = options.num_intervals;

  ClusterSimResult result;
  result.cell_name = profile.name;
  result.predictor_name = options.predictor.Name();
  result.warmup = options.warmup;
  result.trace.name = profile.name;
  result.trace.num_intervals = num_intervals;
  result.trace.machines.resize(num_machines);

  JobSampler sampler(profile, rng.Fork(0x6a6f62));
  Rng arrival_rng = rng.Fork(0x617272);
  Scheduler scheduler(options.packing, rng.Fork(0x736368));
  const std::vector<double> shared_load =
      BuildSharedLoadSeries(profile, num_intervals, rng.Fork(0x757367));

  std::vector<ClusterMachine> machines;
  machines.reserve(num_machines);
  for (int m = 0; m < num_machines; ++m) {
    result.trace.machines[m].capacity = profile.machine_capacity;
    result.trace.machines[m].true_peak.assign(num_intervals, 0.0f);
    machines.emplace_back(m, profile.machine_capacity, CreatePredictor(options.predictor),
                          options.latency, rng.Fork(0x6d000000 + m));
  }

  result.predictions.assign(num_machines, std::vector<float>(num_intervals, 0.0f));
  result.latencies.assign(num_machines, std::vector<float>(num_intervals, 0.0f));
  result.demand_mean.assign(num_machines, std::vector<float>(num_intervals, 0.0f));
  result.limit_sum.assign(num_machines, std::vector<float>(num_intervals, 0.0f));

  std::deque<PendingTask> pending;
  std::vector<double> free_capacity(num_machines, 0.0);
  int64_t resident = 0;
  TaskId next_task_id = 1;
  // Budget of continuously-running services (they never depart, so an
  // unbounded Bernoulli would overshoot the population target during the
  // high-churn ramp-up).
  int64_t service_budget = static_cast<int64_t>(
      profile.service_fraction * profile.tasks_per_machine * num_machines);

  for (Interval t = 0; t < num_intervals; ++t) {
    // (1) Machines advance; Borglets publish predictions.
    resident = 0;
    for (int m = 0; m < num_machines; ++m) {
      const ClusterMachine::StepStats stats = machines[m].Step(t, shared_load[t], result.trace);
      result.predictions[m][t] = static_cast<float>(stats.prediction);
      result.latencies[m][t] = static_cast<float>(stats.latency);
      result.demand_mean[m][t] = static_cast<float>(stats.demand_mean);
      result.limit_sum[m][t] = static_cast<float>(stats.limit_sum);
      free_capacity[m] = machines[m].FreeCapacity();
      resident += stats.resident_tasks;
    }

    if (t + 1 >= num_intervals) {
      break;  // Tasks placed now would start after the simulation ends.
    }

    // (2) The central scheduler ingests the published view.
    scheduler.UpdateFreeCapacity(free_capacity);

    // (3) New arrivals join the pending queue...
    int arrivals = arrival_rng.Poisson(ArrivalRate(profile, t, resident));
    while (arrivals > 0) {
      const JobTemplate job = sampler.NextJob();
      const int num_tasks = std::min(arrivals, sampler.SampleTasksPerJob());
      auto job_machines = std::make_shared<std::vector<int>>();
      for (int i = 0; i < num_tasks; ++i) {
        pending.push_back({job, t, job_machines});
      }
      arrivals -= num_tasks;
    }

    // ...and the queue is drained oldest-first against the advertised
    // capacities. Tasks that cannot be placed stay queued; stale ones are
    // abandoned.
    size_t scan = pending.size();
    while (scan-- > 0) {
      PendingTask entry = std::move(pending.front());
      pending.pop_front();
      if (t - entry.enqueued >= options.pending_timeout) {
        ++result.tasks_timed_out;
        continue;
      }
      const int machine = scheduler.Place(entry.job.limit, *entry.job_machines);
      if (machine < 0) {
        pending.push_back(std::move(entry));  // Retry next interval.
        continue;
      }
      entry.job_machines->push_back(machine);

      const Interval start = t + 1;
      // Continuously-running services enter while the cell ramps up (the
      // online analogue of the trace generator's initial service
      // population), bounded by the service share of the population target.
      const bool service = service_budget > 0 && t < options.warmup &&
                           arrival_rng.Bernoulli(profile.service_fraction);
      if (service) {
        --service_budget;
      }
      const Interval runtime = sampler.SampleRuntime(service, start, num_intervals);
      TaskTrace task;
      task.task_id = next_task_id++;
      task.job_id = entry.job.job_id;
      task.machine_index = machine;
      task.start = start;
      task.limit = entry.job.limit;
      task.sched_class = entry.job.sched_class;
      const int32_t trace_index = static_cast<int32_t>(result.trace.tasks.size());
      result.trace.tasks.push_back(std::move(task));
      machines[machine].StartTask(result.trace, trace_index,
                                  sampler.JitterTaskParams(entry.job.params), start, runtime);
      ++result.tasks_placed;
    }
    result.pending_task_intervals += static_cast<int64_t>(pending.size());
  }

  return result;
}

}  // namespace crf
