#include "crf/cluster/sharded_scheduler.h"

#include <algorithm>
#include <limits>

#include "crf/util/check.h"

namespace crf {

ShardedScheduler::ShardedScheduler(const ShardedSchedulerOptions& options, const Rng& rng)
    : options_(options) {
  CRF_CHECK_GE(options_.num_shards, 1);
  CRF_CHECK_GE(options_.rebalance_interval, 1);
  shards_.reserve(options_.num_shards);
  for (int s = 0; s < options_.num_shards; ++s) {
    // Forked by shard index: decision streams depend on (seed, num_shards)
    // only, never on thread count.
    shards_.push_back(std::make_unique<Shard>(
        options_.packing, options_.engine,
        rng.Fork(0x73686100ULL + static_cast<uint64_t>(s))));  // "sha" + s
  }
  tried_.assign(options_.num_shards, 0);
}

void ShardedScheduler::Reset(int num_machines) {
  CRF_CHECK_GE(num_machines, 0);
  num_machines_ = num_machines;
  shard_of_.assign(num_machines, 0);
  nonempty_.clear();
  const int64_t S = static_cast<int64_t>(shards_.size());
  for (int s = 0; s < static_cast<int>(S); ++s) {
    Shard& shard = *shards_[s];
    shard.base = static_cast<int>(static_cast<int64_t>(num_machines) * s / S);
    const int end = static_cast<int>(static_cast<int64_t>(num_machines) * (s + 1) / S);
    shard.count = end - shard.base;
    shard.core.Reset(shard.count);
    for (int m = shard.base; m < end; ++m) {
      shard_of_[m] = s;
    }
    if (shard.count > 0) {
      nonempty_.push_back(s);
    }
  }
  RefreshSummaries();
}

void ShardedScheduler::PublishAll(std::span<const double> free_capacity) {
  CRF_CHECK_EQ(static_cast<int>(free_capacity.size()), num_machines_);
  const auto ingest = [&](int, int begin, int end) {
    for (int k = begin; k < end; ++k) {
      Shard& shard = *shards_[nonempty_[k]];
      for (int i = 0; i < shard.count; ++i) {
        shard.core.Publish(i, free_capacity[shard.base + i]);
      }
    }
  };
  ThreadPool* pool = options_.pool != nullptr ? options_.pool : &ThreadPool::Default();
  const int n = static_cast<int>(nonempty_.size());
  if (options_.parallel && n > 1 && pool->num_threads() > 1) {
    pool->ParallelForRanges(n, 1, ingest);
  } else {
    ingest(0, 0, n);
  }
  RefreshSummaries();
}

void ShardedScheduler::Publish(int machine, double free) {
  CRF_CHECK_GE(machine, 0);
  CRF_CHECK_LT(machine, num_machines_);
  Shard& shard = *shards_[shard_of_[machine]];
  shard.core.Publish(machine - shard.base, free);
}

double ShardedScheduler::free_capacity(int machine) const {
  const Shard& shard = *shards_[shard_of_[machine]];
  return shard.core.free_capacity(machine - shard.base);
}

double ShardedScheduler::TotalFreeCapacity() const {
  double total = 0.0;
  for (const int s : nonempty_) {
    const Shard& shard = *shards_[s];
    for (int i = 0; i < shard.count; ++i) {
      total += shard.core.free_capacity(i);
    }
  }
  return total;
}

void ShardedScheduler::RefreshSummaries() {
  for (const int s : nonempty_) {
    shards_[s]->max_free_summary = shards_[s]->core.MaxFree();
  }
  steal_order_ = nonempty_;
  std::stable_sort(steal_order_.begin(), steal_order_.end(), [this](int a, int b) {
    return shards_[a]->max_free_summary > shards_[b]->max_free_summary;
  });
  ++rebalances_;
}

int ShardedScheduler::PlaceOnShard(Shard& shard, const Request& request) {
  const std::vector<int>* exclude = nullptr;
  if (request.job_machines != nullptr && !request.job_machines->empty()) {
    shard.exclude_local.clear();
    for (const int g : *request.job_machines) {
      if (g >= shard.base && g < shard.base + shard.count) {
        shard.exclude_local.push_back(g - shard.base);
      }
    }
    if (!shard.exclude_local.empty()) {
      exclude = &shard.exclude_local;
    }
  }
  const int local = shard.core.Place(request.limit, exclude);
  if (local < 0) {
    return -1;
  }
  const int global = shard.base + local;
  if (request.job_machines != nullptr) {
    request.job_machines->push_back(global);
  }
  return global;
}

void ShardedScheduler::PlaceBatch(std::span<const Request> requests, std::span<int> results) {
  CRF_CHECK_EQ(requests.size(), results.size());
  ++batches_;
  const bool rebalance_due = batches_ % options_.rebalance_interval == 0;
  for (size_t i = 0; i < results.size(); ++i) {
    results[i] = -1;
  }
  if (requests.empty() || nonempty_.empty()) {
    if (rebalance_due && !nonempty_.empty()) {
      RefreshSummaries();
    }
    return;
  }

  // Phase 1 (serial): route each request to its home shard. Equal affinity
  // keys — the tasks of one job — land on one shard, so the shard phase
  // evaluates their anti-affinity exclusions in sequence.
  for (const int s : nonempty_) {
    shards_[s]->routed.clear();
    shards_[s]->overflow.clear();
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    const int s = nonempty_[requests[i].affinity_key % nonempty_.size()];
    shards_[s]->routed.push_back(static_cast<int>(i));
  }

  // Phase 2 (parallel): each shard places its routed subsequence against its
  // private treap. Writes go to the shard's own state and to distinct
  // results[i] slots only.
  const auto shard_phase = [&](int, int begin, int end) {
    for (int k = begin; k < end; ++k) {
      Shard& shard = *shards_[nonempty_[k]];
      for (const int i : shard.routed) {
        const int machine = PlaceOnShard(shard, requests[i]);
        if (machine >= 0) {
          results[i] = machine;
        } else {
          shard.overflow.push_back(i);
        }
      }
    }
  };
  ThreadPool* pool = options_.pool != nullptr ? options_.pool : &ThreadPool::Default();
  const int n = static_cast<int>(nonempty_.size());
  if (options_.parallel && n > 1 && pool->num_threads() > 1) {
    pool->ParallelForRanges(n, 1, shard_phase);
  } else {
    shard_phase(0, 0, n);
  }

  // Phase 3 (serial, shard order): overflow requests steal capacity from
  // other shards, richest summary first. The summary comparison is only a
  // fast path — if it skips everything, every remaining shard is tried
  // anyway, so a request fails only when no shard can place it.
  for (const int s : nonempty_) {
    for (const int i : shards_[s]->overflow) {
      const Request& request = requests[i];
      std::fill(tried_.begin(), tried_.end(), static_cast<uint8_t>(0));
      tried_[s] = 1;
      int machine = -1;
      for (const int t : steal_order_) {
        if (tried_[t] || shards_[t]->max_free_summary < request.limit) {
          continue;
        }
        tried_[t] = 1;
        machine = PlaceOnShard(*shards_[t], request);
        if (machine >= 0) {
          break;
        }
      }
      if (machine < 0) {
        for (const int t : steal_order_) {
          if (tried_[t]) {
            continue;
          }
          tried_[t] = 1;
          machine = PlaceOnShard(*shards_[t], request);
          if (machine >= 0) {
            break;
          }
        }
      }
      if (machine >= 0) {
        results[i] = machine;
        ++stolen_placements_;
      }
    }
  }

  if (rebalance_due) {
    RefreshSummaries();
  }
}

int ShardedScheduler::Place(double limit, std::vector<int>* job_machines,
                            uint64_t affinity_key) {
  const Request request{limit, job_machines, affinity_key};
  int result = -1;
  PlaceBatch(std::span<const Request>(&request, 1), std::span<int>(&result, 1));
  return result;
}

}  // namespace crf
