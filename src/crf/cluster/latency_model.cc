#include "crf/cluster/latency_model.h"

#include <algorithm>

#include "crf/util/check.h"

namespace crf {

LatencyModel::LatencyModel(const LatencyModelParams& params, const Rng& rng)
    : params_(params), rng_(rng) {
  CRF_CHECK_GT(params.rho_clip, 0.0);
  CRF_CHECK_LT(params.rho_clip, 1.0);
}

double LatencyModel::Sample(double mean_demand, double peak_demand, double capacity) {
  CRF_CHECK_GT(capacity, 0.0);
  const double base = rng_.LogNormal(params_.base_log_mu, params_.base_log_sigma);

  const double rho = std::min(mean_demand / capacity, params_.rho_clip);
  const double congestion = params_.congestion_gain * rho / (1.0 - rho);
  const double rho_peak = std::min(peak_demand / capacity, params_.rho_clip);
  const double peak_congestion = params_.peak_congestion_gain * rho_peak / (1.0 - rho_peak);

  // Overload: the fraction of demanded cycles that cannot be served when the
  // within-interval peak exceeds the machine. This is where throttling and
  // real scheduling delay happen.
  const double overload = std::max(0.0, peak_demand - capacity) / capacity;

  return base * (1.0 + congestion + peak_congestion + params_.overload_gain * overload);
}

}  // namespace crf
