#include "crf/cluster/machine.h"

#include <algorithm>
#include <array>

#include "crf/util/check.h"

namespace crf {

ClusterMachine::ClusterMachine(int machine_index, double capacity,
                               std::unique_ptr<PeakPredictor> predictor,
                               const LatencyModelParams& latency, const Rng& rng)
    : machine_index_(machine_index),
      capacity_(capacity),
      predictor_(std::move(predictor)),
      latency_model_(latency, rng.Fork(0x6c6174)),  // "lat"
      usage_rng_(rng.Fork(0x757367)) {              // "usg"
  CRF_CHECK_GT(capacity, 0.0);
  CRF_CHECK(predictor_ != nullptr);
}

void ClusterMachine::StartTask(CellTraceBuilder& trace, int32_t trace_index,
                               const TaskUsageParams& params, Interval now, Interval runtime) {
  CRF_CHECK_GE(trace_index, 0);
  CRF_CHECK_LT(trace_index, trace.num_tasks());
  CRF_CHECK_GT(runtime, 0);
  CRF_CHECK_EQ(trace.task_machine(trace_index), machine_index_);
  CRF_CHECK_EQ(trace.task_start(trace_index), now);
  trace.ReserveUsage(trace_index, runtime);
  tasks_.push_back({trace_index, now + runtime,
                    TaskUsageModel(params, now,
                                   usage_rng_.Fork(
                                       static_cast<uint64_t>(trace.task_id(trace_index))))});
}

ClusterMachine::StepStats ClusterMachine::Step(Interval now, double shared_load,
                                               CellTraceBuilder& trace) {
  // Retire tasks whose lifetime ended.
  for (size_t i = 0; i < tasks_.size();) {
    if (tasks_[i].end <= now) {
      tasks_[i] = std::move(tasks_.back());
      tasks_.pop_back();
    } else {
      ++i;
    }
  }

  StepStats stats;
  stats.resident_tasks = static_cast<int>(tasks_.size());

  std::array<double, kSubSamplesPerInterval> sub_samples;
  std::array<double, kSubSamplesPerInterval> sums{};
  samples_scratch_.clear();

  for (auto& running : tasks_) {
    running.model.Step(sub_samples, shared_load);
    const IntervalSummary summary = SummarizeInterval(sub_samples);
    trace.AppendUsage(running.trace_index, summary.scalar_p90);
    for (int k = 0; k < kSubSamplesPerInterval; ++k) {
      sums[k] += sub_samples[k];
    }
    const double limit = trace.task_limit(running.trace_index);
    stats.usage_sum += summary.scalar_p90;
    stats.limit_sum += limit;
    samples_scratch_.push_back({trace.task_id(running.trace_index), summary.scalar_p90, limit});
  }

  double mean_demand = 0.0;
  double peak_demand = 0.0;
  for (const double s : sums) {
    mean_demand += s;
    peak_demand = std::max(peak_demand, s);
  }
  mean_demand /= kSubSamplesPerInterval;
  stats.demand_mean = mean_demand;
  stats.demand_peak = peak_demand;
  std::vector<float>& true_peak = trace.mutable_true_peak(machine_index_);
  if (static_cast<size_t>(now) < true_peak.size()) {
    true_peak[now] = static_cast<float>(peak_demand);
  }

  stats.latency = latency_model_.Sample(mean_demand, peak_demand, capacity_);

  predictor_->Observe(now, samples_scratch_);
  prediction_ = predictor_->PredictPeak();
  stats.prediction = prediction_;
  stats.free_capacity = FreeCapacity();
  return stats;
}

double ClusterMachine::FreeCapacity() const { return std::max(0.0, capacity_ - prediction_); }

}  // namespace crf
