// A flat num_machines x num_intervals float matrix for per-machine,
// per-interval cluster-sim outputs.
//
// Replaces vector-of-vectors (one allocation per machine, rows scattered on
// the heap) with a single buffer laid out interval-major: all machines of
// one interval are contiguous. The simulator writes one interval across all
// machines per step, so the hot write pattern is sequential; analysis code
// reading one machine across time strides by num_machines, which is still a
// predictable (prefetchable) access pattern.

#ifndef CRF_CLUSTER_MACHINE_SERIES_H_
#define CRF_CLUSTER_MACHINE_SERIES_H_

#include <cstddef>
#include <span>
#include <vector>

#include "crf/util/time_grid.h"

namespace crf {

class MachineIntervalSeries {
 public:
  MachineIntervalSeries() = default;

  void Assign(int num_machines, Interval num_intervals, float value = 0.0f) {
    num_machines_ = num_machines;
    num_intervals_ = num_intervals;
    data_.assign(static_cast<size_t>(num_machines) * static_cast<size_t>(num_intervals),
                 value);
  }

  float& at(int machine, Interval t) { return data_[Index(machine, t)]; }
  float at(int machine, Interval t) const { return data_[Index(machine, t)]; }

  // All machines' values for one interval, contiguous.
  std::span<float> IntervalRow(Interval t) {
    return {data_.data() + Index(0, t), static_cast<size_t>(num_machines_)};
  }
  std::span<const float> IntervalRow(Interval t) const {
    return {data_.data() + Index(0, t), static_cast<size_t>(num_machines_)};
  }

  int num_machines() const { return num_machines_; }
  Interval num_intervals() const { return num_intervals_; }

  bool operator==(const MachineIntervalSeries&) const = default;

 private:
  size_t Index(int machine, Interval t) const {
    return static_cast<size_t>(t) * static_cast<size_t>(num_machines_) +
           static_cast<size_t>(machine);
  }

  int num_machines_ = 0;
  Interval num_intervals_ = 0;
  std::vector<float> data_;  // interval-major
};

}  // namespace crf

#endif  // CRF_CLUSTER_MACHINE_SERIES_H_
