// Cluster-level task placement (paper Section 2.1).
//
// Scheduling a task is (1) a feasibility filter — machines whose advertised
// free capacity (capacity minus the Borglet's published peak prediction)
// fits the task's limit — followed by (2) a bin-packing choice among the
// candidates. The paper's contribution lives entirely in step (1); packing
// is orthogonal, so the policy is a knob (with an ablation bench comparing
// them).

#ifndef CRF_CLUSTER_SCHEDULER_H_
#define CRF_CLUSTER_SCHEDULER_H_

#include <string>
#include <vector>

#include "crf/util/rng.h"

namespace crf {

enum class PackingPolicy {
  kBestFit,   // least advertised free capacity that still fits
  kWorstFit,  // most advertised free capacity
  kRandomFit, // uniform over feasible machines
};

std::string PackingPolicyName(PackingPolicy policy);

class Scheduler {
 public:
  Scheduler(PackingPolicy policy, const Rng& rng);

  // Publishes the latest machine states: advertised free capacity per
  // machine (capacity - predicted peak). Called once per polling interval.
  void UpdateFreeCapacity(std::vector<double> free_capacity);

  // Picks a machine for a task with the given limit, preferring machines not
  // in `exclude` (anti-affinity within a job). Returns -1 if no machine
  // fits. On success the machine's advertised free capacity is debited by
  // `limit` (scheduler-side accounting until the next poll).
  int Place(double limit, const std::vector<int>& exclude);

 private:
  bool Fits(int machine, double limit) const;

  PackingPolicy policy_;
  Rng rng_;
  std::vector<double> free_capacity_;
};

}  // namespace crf

#endif  // CRF_CLUSTER_SCHEDULER_H_
