// Cluster-level task placement (paper Section 2.1).
//
// Scheduling a task is (1) a feasibility filter — machines whose advertised
// free capacity (capacity minus the Borglet's published peak prediction)
// fits the task's limit — followed by (2) a bin-packing choice among the
// candidates. The paper's contribution lives entirely in step (1); packing
// is orthogonal, so the policy is a knob (with an ablation bench comparing
// them).
//
// Two interchangeable placement engines implement the same decision
// procedure:
//   kIndexed    - a capacity tournament tree (crf/index/capacity_index):
//                 O(log M) best/worst-fit with anti-affinity exclusion
//                 probing, updated incrementally from per-machine deltas.
//   kLinearScan - the O(M)-per-placement reference scan, retained for the
//                 differential tests.
// Both engines draw from the scheduler RNG in exactly the same order, so for
// a fixed seed they produce byte-identical placement sequences:
//   best/worst-fit: one uniform draw per attempted pass (the rotation offset
//                   that randomizes tie-breaking among equal capacities);
//   random-fit:     one uniform draw per pass with >= 1 feasible machine
//                   (the index of the chosen machine in (free, index) order).
//
// The decision procedure itself lives in PlacementCore, which operates on a
// core-local machine numbering. The global Scheduler is one core spanning
// the whole cell; the ShardedScheduler (crf/cluster/sharded_scheduler) runs
// one core per shard and translates global machine ids at the boundary.

#ifndef CRF_CLUSTER_SCHEDULER_H_
#define CRF_CLUSTER_SCHEDULER_H_

#include <string>
#include <utility>
#include <vector>

#include "crf/index/capacity_index.h"
#include "crf/util/rng.h"

namespace crf {

enum class PackingPolicy {
  kBestFit,   // least advertised free capacity that still fits
  kWorstFit,  // most advertised free capacity
  kRandomFit, // uniform over feasible machines
};

std::string PackingPolicyName(PackingPolicy policy);

enum class PlacementEngine {
  kIndexed,     // capacity tournament tree, O(log M) per placement
  kLinearScan,  // full-scan reference, O(M) per placement
};

// One placement engine over a contiguous, core-local machine numbering
// [0, num_machines()). Owns the advertised-free-capacity vector, the
// capacity index (kIndexed), and the RNG whose draw order both engines
// share. An empty core (0 machines) is valid: Place() returns -1 without
// consuming a draw.
class PlacementCore {
 public:
  PlacementCore(PackingPolicy policy, PlacementEngine engine, const Rng& rng);

  // Sizes the core for `num_machines` machines with zero advertised free
  // capacity; Publish() then streams in the real values.
  void Reset(int num_machines);

  // Bulk form of Publish().
  void UpdateFreeCapacity(std::vector<double> free_capacity);

  // Publishes one machine's advertised free capacity.
  void Publish(int machine, double free);

  // Picks a machine for a task with the given limit, preferring machines not
  // in `exclude` (anti-affinity; nullptr or empty means unconstrained).
  // Returns -1 if no machine fits. On success the machine's advertised free
  // capacity is debited by `limit`.
  int Place(double limit, const std::vector<int>* exclude);

  double free_capacity(int machine) const { return free_capacity_[machine]; }
  int num_machines() const { return static_cast<int>(free_capacity_.size()); }

  // Largest advertised free capacity, or -infinity for an empty core. Used
  // by the sharded scheduler's cross-shard free-capacity summaries.
  double MaxFree() const;

 private:
  // One placement pass; `exclude == nullptr` means no exclusions (the
  // fallback pass). Returns -1 when nothing feasible remains.
  int PlaceOnceLinear(double limit, const std::vector<int>* exclude);
  int PlaceOnceIndexed(double limit, const std::vector<int>* exclude);

  PackingPolicy policy_;
  PlacementEngine engine_;
  Rng rng_;
  std::vector<double> free_capacity_;
  CapacityTournamentTree tree_;  // Maintained only for kIndexed.

  // Scratch for random-fit (kept across calls to avoid reallocation).
  std::vector<std::pair<double, int>> candidates_scratch_;
  std::vector<int> exclude_scratch_;
  std::vector<int> rank_scratch_;
};

// The global scheduler: one PlacementCore spanning every machine of the
// cell. Retained unchanged as the packing-quality and determinism reference
// for the sharded engine.
class Scheduler {
 public:
  Scheduler(PackingPolicy policy, const Rng& rng,
            PlacementEngine engine = PlacementEngine::kIndexed);

  // Sizes the scheduler for `num_machines` machines with zero advertised
  // free capacity; Publish() then streams in the real values.
  void Reset(int num_machines) { core_.Reset(num_machines); }

  // Publishes the latest machine states: advertised free capacity per
  // machine (capacity - predicted peak). Bulk form of Publish().
  void UpdateFreeCapacity(std::vector<double> free_capacity) {
    core_.UpdateFreeCapacity(std::move(free_capacity));
  }

  // Publishes one machine's advertised free capacity. The hot path: the
  // simulator streams per-machine deltas each polling interval instead of
  // copying the whole capacity vector.
  void Publish(int machine, double free) { core_.Publish(machine, free); }

  // Picks a machine for a task with the given limit, preferring machines not
  // in `exclude` (anti-affinity within a job). Returns -1 if no machine
  // fits. On success the machine's advertised free capacity is debited by
  // `limit` (scheduler-side accounting until the next poll).
  int Place(double limit, const std::vector<int>& exclude);

  double free_capacity(int machine) const { return core_.free_capacity(machine); }
  int num_machines() const { return core_.num_machines(); }
  PlacementEngine engine() const { return engine_; }

 private:
  PlacementEngine engine_;
  PlacementCore core_;
};

}  // namespace crf

#endif  // CRF_CLUSTER_SCHEDULER_H_
