// CRFNET1: the versioned binary wire format of the network serve tier
// (DESIGN.md §10).
//
// Follows the CRFCKPT1 / .crftrace framing idiom: every message on a
// connection is one frame — a fixed 32-byte little-endian header (magic,
// version, op) followed by an FNV-1a-checksummed, length-prefixed payload
// encoded with byte_io. Requests and responses share the framing; a response
// carries the request's op on success or kError with a diagnostic string.
//
//   bytes [0,32)   header: magic "CRFNET1", version, op, flags/reserved
//                  (must be zero — every header bit is load-bearing so a
//                  bit flip anywhere is rejected), payload size + hash
//   then           the payload (ByteWriter encoding of one of the
//                  *Request / *Response structs below)
//
// Decoding is incremental and never trusts the peer: DecodeFrame returns
// kNeedMore on a partial frame, and any malformed byte — bad magic, unknown
// version or op, oversized length, checksum mismatch — yields kMalformed
// with a diagnostic. Payload decoders bounds-check every field (byte_io
// latches failure instead of aborting), so a truncated or bit-flipped frame
// is an error on the connection, never a crash in the server.

#ifndef CRF_NET_WIRE_H_
#define CRF_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "crf/serve/event.h"
#include "crf/util/byte_io.h"
#include "crf/util/time_grid.h"

namespace crf {

inline constexpr uint32_t kNetVersion = 1;
// Hard cap on a single frame's payload; a corrupted length field cannot make
// the receiver buffer gigabytes.
inline constexpr uint64_t kMaxFramePayload = uint64_t{1} << 28;
// Hard cap on the events in one ingest batch (well above any real frame:
// the load generator bounds frames by ticks, not this).
inline constexpr uint64_t kMaxBatchEvents = uint64_t{1} << 24;

// Operation codes. A response frame echoes the request's op, or carries
// kError with an ErrorResponse payload.
enum class WireOp : uint8_t {
  kHello = 0,            // identity handshake
  kIngestBatch = 1,      // one machine's event stream for a tick range
  kMachineQuery = 2,     // per-machine prediction / limit-sum / roster state
  kCellQuery = 3,        // cell-level aggregate over all machines
  kAdmissionCheck = 4,   // would limit L on machine m violate the peak?
  kMetricsSnapshot = 5,  // ServeMetrics JSON (with the "net" section)
  kShutdown = 6,         // graceful stop: seal a CRFCKPT1, then close
  kError = 7,            // response only: diagnostic string
};
inline constexpr int kNumWireOps = 8;

// Stable op name for metrics keys and diagnostics ("ingest-batch", ...).
const char* WireOpName(WireOp op);

// ---------------------------------------------------------------------------
// Framing.

enum class FrameStatus : uint8_t {
  kNeedMore = 0,   // buffer holds a prefix of a valid frame; read more bytes
  kFrame = 1,      // one complete, checksum-verified frame decoded
  kMalformed = 2,  // the buffer cannot begin a valid frame; drop the peer
};

// Appends one complete frame (header + payload) to `out`.
void AppendFrame(WireOp op, std::span<const uint8_t> payload, std::vector<uint8_t>& out);
inline void AppendFrame(WireOp op, const ByteWriter& payload, std::vector<uint8_t>& out) {
  AppendFrame(op, std::span<const uint8_t>(payload.bytes()), out);
}

// Attempts to decode one frame from the front of `buffer`. On kFrame, sets
// `op`, points `payload` into `buffer`, and sets `frame_bytes` to the bytes
// consumed. On kMalformed, `error` (if non-null) describes the first bad
// field. kNeedMore means the buffer is a (possibly empty) prefix of a frame.
FrameStatus DecodeFrame(std::span<const uint8_t> buffer, WireOp* op,
                        std::span<const uint8_t>* payload, size_t* frame_bytes,
                        std::string* error);

// ---------------------------------------------------------------------------
// Payloads. Each struct encodes with EncodeTo and decodes with DecodeFrom;
// DecodeFrom validates every field and returns false (latching the reader's
// failure flag) on anything malformed. DecodePayload additionally requires
// the payload to be fully consumed — trailing bytes are an error.

template <typename T>
bool DecodePayload(std::span<const uint8_t> payload, T& out) {
  ByteReader reader(payload);
  return out.DecodeFrom(reader) && reader.ok() && reader.AtEnd();
}

struct HelloRequest {
  std::string client_name;

  void EncodeTo(ByteWriter& out) const;
  bool DecodeFrom(ByteReader& in);
};

// The server's identity: the trace it scores against, the predictor it
// runs, the shard geometry, and the next tick it expects (> 0 when the
// server was resumed from a checkpoint).
struct HelloResponse {
  std::string trace_name;
  std::string spec_name;
  int32_t num_machines = 0;
  Interval num_intervals = 0;
  int32_t num_shards = 0;
  Interval next_tick = 0;

  void EncodeTo(ByteWriter& out) const;
  bool DecodeFrom(ByteReader& in);
};

// One machine's canonical event stream for ticks [from_tick, until_tick),
// streamed toward the common window boundary `window_until` (see
// server.h for the shard ordering protocol). Events carry their tick and
// must be non-decreasing within the range; per tick the canonical order of
// event.h applies (departures, arrivals, usage samples). The events' machine
// field is implied by `machine` and not sent.
struct IngestBatchRequest {
  int32_t machine = -1;
  Interval from_tick = 0;
  Interval until_tick = 0;
  Interval window_until = 0;
  std::vector<StreamEvent> events;

  void EncodeTo(ByteWriter& out) const;
  bool DecodeFrom(ByteReader& in);
};

struct IngestBatchResponse {
  double prediction = 0.0;  // published prediction after the batch's last tick
  double limit_sum = 0.0;
  Interval last_tick = -1;

  void EncodeTo(ByteWriter& out) const;
  bool DecodeFrom(ByteReader& in);
};

struct MachineQueryRequest {
  int32_t machine = -1;

  void EncodeTo(ByteWriter& out) const;
  bool DecodeFrom(ByteReader& in);
};

struct MachineQueryResponse {
  Interval last_tick = -1;
  double prediction = 0.0;
  double limit_sum = 0.0;
  int32_t roster_size = 0;
  // FNV-1a over the roster's task indices (little-endian) — lets a client
  // compare full roster identity without shipping the roster.
  uint64_t roster_hash = 0;

  void EncodeTo(ByteWriter& out) const;
  bool DecodeFrom(ByteReader& in);
};

struct CellQueryRequest {
  void EncodeTo(ByteWriter& out) const;
  bool DecodeFrom(ByteReader& in);
};

struct CellQueryResponse {
  int32_t num_machines = 0;
  Interval min_last_tick = -1;
  Interval max_last_tick = -1;
  // Summed over machines in ascending machine order (deterministic).
  double prediction_sum = 0.0;
  double limit_sum = 0.0;
  uint64_t events_ingested = 0;

  void EncodeTo(ByteWriter& out) const;
  bool DecodeFrom(ByteReader& in);
};

struct AdmissionCheckRequest {
  int32_t machine = -1;
  double task_limit = 0.0;

  void EncodeTo(ByteWriter& out) const;
  bool DecodeFrom(ByteReader& in);
};

struct AdmissionCheckResponse {
  // True iff predicted_peak + task_limit <= capacity (paper Section 3.3:
  // the scheduler packs against predicted peak, not the limit sum).
  bool admitted = false;
  double predicted_peak = 0.0;
  double capacity = 0.0;
  double headroom = 0.0;  // capacity - predicted_peak

  void EncodeTo(ByteWriter& out) const;
  bool DecodeFrom(ByteReader& in);
};

struct MetricsSnapshotRequest {
  void EncodeTo(ByteWriter& out) const;
  bool DecodeFrom(ByteReader& in);
};

struct MetricsSnapshotResponse {
  std::string json;

  void EncodeTo(ByteWriter& out) const;
  bool DecodeFrom(ByteReader& in);
};

struct ShutdownRequest {
  // When true and the server was configured with a checkpoint path, the
  // server seals a CRFCKPT1 at the committed boundary before closing.
  bool seal_checkpoint = true;

  void EncodeTo(ByteWriter& out) const;
  bool DecodeFrom(ByteReader& in);
};

struct ShutdownResponse {
  bool sealed = false;
  Interval next_tick = 0;
  std::string checkpoint_path;

  void EncodeTo(ByteWriter& out) const;
  bool DecodeFrom(ByteReader& in);
};

struct ErrorResponse {
  std::string message;

  void EncodeTo(ByteWriter& out) const;
  bool DecodeFrom(ByteReader& in);
};

}  // namespace crf

#endif  // CRF_NET_WIRE_H_
