// OvercommitServer: the TCP front end of the serve tier (DESIGN.md §10).
//
// Wraps a push-mode StreamReplayer behind the CRFNET1 wire protocol: an
// acceptor thread plus one worker thread per connection, each connection
// decoding batched requests and answering ingest / query / admission /
// metrics / shutdown ops. Per-shard ingest state is cache-line padded
// (NetShard, the network twin of the replay ShardState) and guarded by a
// per-shard mutex, so clients that drive disjoint shards never contend.
//
// The ingest protocol preserves the replayer's bit-identity contract. Within
// a shard, clients must stream machines one at a time in ascending machine
// order, each machine's ticks in ascending order, over a window
// [next_tick, W) shared by every shard (the first shard to open a window
// fixes W; the rest must match). When the last shard finishes its machines,
// the server commits the window (StreamReplayer::CommitPushedWindow) — this
// exactly replays AdvanceShard's machine-outer loop, so every per-machine
// number, the per-shard cell series, and a checkpoint sealed at the
// committed boundary are bit-identical to an in-process Advance over the
// same trace.
//
// Every byte off the wire is validated before it reaches the replayer: the
// frame layer checks magic/version/length/checksum, the payload decoders
// bounds-check each field, and the ingest handler re-derives the expected
// roster per tick (departures ∈ roster, arrivals ∉ roster, exactly one
// sample per resident task in roster order) — so malformed input produces a
// kError response and a closed connection, never a CHECK-abort in the
// service. A protocol error mid-batch leaves the validly-applied prefix
// ingested (the replayer stays consistent) and drops the connection; the
// shard's streaming cursor tracks the applied prefix tick by tick, so a
// reconnecting client resumes at the first unapplied tick.

#ifndef CRF_NET_SERVER_H_
#define CRF_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "crf/net/net_metrics.h"
#include "crf/net/wire.h"
#include "crf/serve/replay.h"

namespace crf {

struct NetServerOptions {
  // Numeric IPv4 listen address.
  std::string host = "127.0.0.1";
  // 0 binds an ephemeral port; port() reports the actual binding.
  int port = 0;
  // Connections beyond this are accepted and immediately closed.
  int max_connections = 64;
  // Destination for the shutdown op's sealed CRFCKPT1; empty disables
  // sealing (the shutdown op then just stops the server).
  std::string checkpoint_out;
};

class OvercommitServer {
 public:
  // `replayer` must outlive the server and must not be touched by other
  // threads between Start() and Wait()/Stop() returning.
  OvercommitServer(StreamReplayer& replayer, const NetServerOptions& options);
  ~OvercommitServer();

  OvercommitServer(const OvercommitServer&) = delete;
  OvercommitServer& operator=(const OvercommitServer&) = delete;

  // Binds, listens, and spawns the acceptor. Returns false with a
  // diagnostic on any socket failure.
  bool Start(std::string* error);

  // The bound port (valid after Start; resolves port 0 bindings).
  int port() const { return port_; }

  // Blocks until a shutdown op arrives or `external_stop` becomes true
  // (polled; pass nullptr to wait for the op alone). An external stop seals
  // a checkpoint exactly like the shutdown op when the committed state
  // allows it; a seal failure is reported on stderr (there is no client to
  // carry the error frame).
  void Wait(const std::atomic<bool>* external_stop = nullptr);

  // Asynchronously requests a stop without sealing (tests/teardown).
  void RequestStop();

  // Post-shutdown report: whether a checkpoint was sealed and where.
  bool sealed() const { return sealed_; }
  const std::string& sealed_path() const { return sealed_path_; }
  Interval sealed_tick() const { return sealed_tick_; }

  const NetMetrics& net_metrics() const { return net_metrics_; }

 private:
  // Per-shard ingest state, padded like the replay ShardState: one line per
  // shard so concurrent connections on different shards never share a
  // counter or its mutex.
  struct alignas(64) NetShard {
    std::mutex mutex;
    int begin_machine = 0;
    int end_machine = 0;
    // Open ingest window [window_from, window_until); window_until == -1
    // when no window is open on this shard.
    Interval window_from = 0;
    Interval window_until = -1;
    // Completed-but-uncommitted window boundary (-1 once committed).
    Interval completed_until = -1;
    // The machine currently being streamed and its next expected tick.
    int next_machine = 0;
    Interval machine_tick = 0;
    // Wall-clock seconds spent in ingest on this shard (folded into
    // ServeMetrics at snapshot/shutdown).
    double elapsed_seconds = 0.0;
    // Roster validation scratch (reused; no steady-state allocations).
    std::vector<int32_t> scratch_roster;
  };

  // One finished connection worker, joinable once `done` is set.
  struct ConnectionThread {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  // Joins and discards connection threads whose loop has finished (called
  // from the acceptor each poll round, so churn does not accumulate
  // joinable handles).
  void ReapConnectionThreads();
  void ConnectionLoop(int fd, ConnectionStats* stats);
  // Dispatches one decoded frame; appends the response frame to `out`.
  // Returns false when the connection must close (shutdown or protocol
  // error after the response is flushed).
  bool HandleFrame(WireOp op, std::span<const uint8_t> payload, ConnectionStats* stats,
                   std::vector<uint8_t>& out);

  void HandleHello(std::span<const uint8_t> payload, std::vector<uint8_t>& out);
  // Returns false on protocol error (kError appended, connection closes).
  bool HandleIngest(std::span<const uint8_t> payload, ConnectionStats* stats,
                    std::vector<uint8_t>& out);
  bool HandleMachineQuery(std::span<const uint8_t> payload, std::vector<uint8_t>& out);
  void HandleCellQuery(std::vector<uint8_t>& out);
  bool HandleAdmission(std::span<const uint8_t> payload, std::vector<uint8_t>& out);
  void HandleMetrics(std::vector<uint8_t>& out);
  bool HandleShutdown(std::span<const uint8_t> payload, std::vector<uint8_t>& out);

  // Acquires every shard lock in shard order. Caller holds window_mutex_
  // (the only sanctioned order: window_mutex_ first, then shard locks).
  std::vector<std::unique_lock<std::mutex>> LockAllShards();
  // Commits the window `until` if every populated shard has completed it.
  // Caller holds window_mutex_ and no shard locks (the wrapper takes them).
  // Returns false with a diagnostic if the replayer rejects the commit
  // (server bug / lagging machine).
  bool TryCommitWindow(std::string* error);
  // The commit body; caller holds window_mutex_ and every shard lock.
  bool TryCommitWindowShardsLocked(std::string* error);
  // Folds per-shard elapsed seconds into ServeMetrics and refreshes the
  // "net" section. Caller holds window_mutex_ and every shard lock.
  void RefreshMetricsShardsLocked();
  // The shutdown-seal body shared by the shutdown op and external stops:
  // commits a fully-streamed window if one is pending, then seals a
  // checkpoint when `seal` is set and checkpoint_out is configured. Caller
  // holds window_mutex_; every shard lock is held from the commit through
  // the checkpoint write, so ingest cannot open a window or push state
  // between the mid-stream check and the serialization.
  bool SealLocked(bool seal, ShutdownResponse* response, std::string* error);

  void AppendError(const std::string& message, std::vector<uint8_t>& out);

  StreamReplayer& replayer_;
  NetServerOptions options_;
  int port_ = 0;
  int listen_fd_ = -1;

  // Orders window open/commit and guards replayer-wide state (next_tick,
  // cross-shard queries, metrics, seal). Never taken while holding a shard
  // lock; the multi-lock paths take window_mutex_ first, then shard locks
  // in shard order.
  std::mutex window_mutex_;
  Interval current_window_until_ = -1;  // -1: no window open anywhere
  std::vector<NetShard> shards_;

  NetMetrics net_metrics_;
  std::atomic<bool> stop_{false};
  std::thread acceptor_;
  std::mutex threads_mutex_;
  std::vector<std::unique_ptr<ConnectionThread>> connection_threads_;

  bool sealed_ = false;
  std::string sealed_path_;
  Interval sealed_tick_ = 0;
};

}  // namespace crf

#endif  // CRF_NET_SERVER_H_
