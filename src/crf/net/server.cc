#include "crf/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iterator>

#include "crf/serve/checkpoint.h"
#include "crf/util/check.h"

namespace crf {
namespace {

constexpr int kPollMillis = 200;
constexpr size_t kReadChunk = 64 * 1024;

double ElapsedNs(std::chrono::steady_clock::time_point t0,
                 std::chrono::steady_clock::time_point t1) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

// Sends the whole buffer; returns false on any socket error.
bool SendAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

OvercommitServer::OvercommitServer(StreamReplayer& replayer, const NetServerOptions& options)
    : replayer_(replayer), options_(options), shards_(replayer.num_shards()) {
  // Derive each shard's machine range from the replayer's own map, so the
  // wire protocol and AdvanceShard can never disagree about ownership.
  const int num_machines = replayer_.cell().num_machines();
  for (auto& shard : shards_) {
    shard.begin_machine = num_machines;  // empty until a machine lands in it
    shard.end_machine = num_machines;
  }
  for (int m = 0; m < num_machines; ++m) {
    NetShard& shard = shards_[replayer_.shard_of(m)];
    shard.begin_machine = std::min(shard.begin_machine, m);
    shard.end_machine = m + 1;
  }
  for (auto& shard : shards_) {
    if (shard.begin_machine >= shard.end_machine) {
      shard.begin_machine = shard.end_machine = 0;  // empty shard
    }
    shard.next_machine = shard.begin_machine;
  }
}

OvercommitServer::~OvercommitServer() {
  RequestStop();
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  std::vector<std::unique_ptr<ConnectionThread>> connections;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connections.swap(connection_threads_);
  }
  for (auto& connection : connections) {
    connection->thread.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
}

bool OvercommitServer::Start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    *error = "listen address \"" + options_.host + "\" is not a numeric IPv4 address";
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "bind " + options_.host + ":" + std::to_string(options_.port) + ": " +
             std::strerror(errno);
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    *error = std::string("getsockname: ") + std::strerror(errno);
    return false;
  }
  port_ = ntohs(bound.sin_port);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void OvercommitServer::Wait(const std::atomic<bool>* external_stop) {
  while (!stop_.load(std::memory_order_acquire)) {
    if (external_stop != nullptr && external_stop->load(std::memory_order_acquire)) {
      // External (signal-driven) stop: seal exactly like the shutdown op.
      // There is no client connection to carry a failure, so report it to
      // the operator — otherwise a SIGINT mid-window silently exits with no
      // checkpoint on disk.
      ShutdownResponse response;
      std::string error;
      bool ok;
      {
        std::lock_guard<std::mutex> lock(window_mutex_);
        ok = SealLocked(/*seal=*/true, &response, &error);
      }
      if (!ok) {
        std::fprintf(stderr, "crf serve: stop requested but no checkpoint was sealed: %s\n",
                     error.c_str());
      }
      stop_.store(true, std::memory_order_release);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void OvercommitServer::RequestStop() { stop_.store(true, std::memory_order_release); }

void OvercommitServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    ReapConnectionThreads();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    net_metrics_.OnAccept();
    if (net_metrics_.connections_active() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    net_metrics_.OnOpen();
    ConnectionStats* stats = net_metrics_.AddConnection();
    auto connection = std::make_unique<ConnectionThread>();
    ConnectionThread* raw = connection.get();
    raw->thread = std::thread([this, fd, stats, raw] {
      ConnectionLoop(fd, stats);
      raw->done.store(true, std::memory_order_release);
    });
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.push_back(std::move(connection));
  }
}

void OvercommitServer::ReapConnectionThreads() {
  std::vector<std::unique_ptr<ConnectionThread>> finished;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    const auto split = std::stable_partition(
        connection_threads_.begin(), connection_threads_.end(),
        [](const std::unique_ptr<ConnectionThread>& connection) {
          return !connection->done.load(std::memory_order_acquire);
        });
    std::move(split, connection_threads_.end(), std::back_inserter(finished));
    connection_threads_.erase(split, connection_threads_.end());
  }
  for (auto& connection : finished) {
    connection->thread.join();
  }
}

void OvercommitServer::ConnectionLoop(int fd, ConnectionStats* stats) {
  std::vector<uint8_t> buffer;
  std::vector<uint8_t> response;
  size_t consumed = 0;
  bool open = true;
  while (open && !stop_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) {
      continue;
    }
    const size_t offset = buffer.size();
    buffer.resize(offset + kReadChunk);
    const ssize_t n = ::recv(fd, buffer.data() + offset, kReadChunk, 0);
    buffer.resize(offset + std::max<ssize_t>(n, 0));
    if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
      break;  // peer closed or hard error
    }

    // Drain every complete frame in the buffer before reading again.
    while (open) {
      WireOp op;
      std::span<const uint8_t> payload;
      size_t frame_bytes = 0;
      std::string error;
      const std::span<const uint8_t> pending(buffer.data() + consumed,
                                             buffer.size() - consumed);
      const FrameStatus status = DecodeFrame(pending, &op, &payload, &frame_bytes, &error);
      if (status == FrameStatus::kNeedMore) {
        break;
      }
      response.clear();
      if (status == FrameStatus::kMalformed) {
        net_metrics_.OnRejectedFrame();
        AppendError(error, response);
        SendAll(fd, response.data(), response.size());
        stats->RecordBytesOut(response.size());
        open = false;
        break;
      }
      stats->RecordBytesIn(frame_bytes);
      const auto t0 = std::chrono::steady_clock::now();
      open = HandleFrame(op, payload, stats, response);
      const auto t1 = std::chrono::steady_clock::now();
      stats->RecordOp(op, ElapsedNs(t0, t1));
      consumed += frame_bytes;
      if (!SendAll(fd, response.data(), response.size())) {
        open = false;
      }
      stats->RecordBytesOut(response.size());
    }
    // Compact once the consumed prefix dominates the buffer.
    if (consumed == buffer.size()) {
      buffer.clear();
      consumed = 0;
    } else if (consumed > (1u << 20)) {
      buffer.erase(buffer.begin(), buffer.begin() + consumed);
      consumed = 0;
    }
  }
  ::close(fd);
  net_metrics_.OnClose();
  net_metrics_.RetireConnection(stats);
}

bool OvercommitServer::HandleFrame(WireOp op, std::span<const uint8_t> payload,
                                   ConnectionStats* stats, std::vector<uint8_t>& out) {
  switch (op) {
    case WireOp::kHello:
      HandleHello(payload, out);
      return true;
    case WireOp::kIngestBatch:
      return HandleIngest(payload, stats, out);
    case WireOp::kMachineQuery:
      return HandleMachineQuery(payload, out);
    case WireOp::kCellQuery:
      HandleCellQuery(out);
      return true;
    case WireOp::kAdmissionCheck:
      return HandleAdmission(payload, out);
    case WireOp::kMetricsSnapshot:
      HandleMetrics(out);
      return true;
    case WireOp::kShutdown:
      HandleShutdown(payload, out);
      return false;  // connection (and server) close after the response
    case WireOp::kError:
      break;
  }
  net_metrics_.OnRejectedFrame();
  AppendError("op not valid as a request", out);
  return false;
}

void OvercommitServer::AppendError(const std::string& message, std::vector<uint8_t>& out) {
  ErrorResponse response;
  response.message = message;
  ByteWriter writer;
  response.EncodeTo(writer);
  AppendFrame(WireOp::kError, writer, out);
}

void OvercommitServer::HandleHello(std::span<const uint8_t> payload,
                                   std::vector<uint8_t>& out) {
  HelloRequest request;
  if (!DecodePayload(payload, request)) {
    net_metrics_.OnRejectedFrame();
    AppendError("malformed hello payload", out);
    return;
  }
  HelloResponse response;
  response.trace_name = replayer_.cell().name;
  response.spec_name = replayer_.spec().Name();
  response.num_machines = replayer_.cell().num_machines();
  response.num_intervals = replayer_.cell().num_intervals;
  response.num_shards = replayer_.num_shards();
  {
    std::lock_guard<std::mutex> lock(window_mutex_);
    response.next_tick = replayer_.next_tick();
  }
  ByteWriter writer;
  response.EncodeTo(writer);
  AppendFrame(WireOp::kHello, writer, out);
}

bool OvercommitServer::HandleIngest(std::span<const uint8_t> payload, ConnectionStats* stats,
                                    std::vector<uint8_t>& out) {
  IngestBatchRequest request;
  if (!DecodePayload(payload, request)) {
    net_metrics_.OnRejectedFrame();
    AppendError("malformed ingest-batch payload", out);
    return false;
  }
  if (request.machine >= replayer_.cell().num_machines()) {
    net_metrics_.OnRejectedFrame();
    AppendError("ingest-batch machine " + std::to_string(request.machine) +
                    " out of range (cell has " +
                    std::to_string(replayer_.cell().num_machines()) + " machines)",
                out);
    return false;
  }
  const int shard_index = replayer_.shard_of(request.machine);
  NetShard& shard = shards_[shard_index];

  IngestBatchResponse response;
  bool shard_completed_window = false;
  Interval completed_window_until = -1;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Window bookkeeping: open on first use, then enforce the shared
    // boundary and the machine-outer, machine-ascending streaming order
    // that keeps push-mode arithmetic identical to AdvanceShard.
    if (shard.window_until < 0) {
      if (shard.completed_until >= 0) {
        AppendError("ingest window through tick " + std::to_string(shard.completed_until) +
                        " is complete on this shard but not yet committed cell-wide",
                    out);
        net_metrics_.OnRejectedFrame();
        return false;
      }
      // next_tick only moves under all shard locks (TryCommitWindow), and we
      // hold one, so this read is stable.
      const Interval from = replayer_.next_tick();
      if (request.window_until <= from ||
          request.window_until > replayer_.cell().num_intervals) {
        AppendError("ingest window_until " + std::to_string(request.window_until) +
                        " outside (" + std::to_string(from) + ", " +
                        std::to_string(replayer_.cell().num_intervals) + "]",
                    out);
        net_metrics_.OnRejectedFrame();
        return false;
      }
      shard.window_from = from;
      shard.window_until = request.window_until;
      shard.next_machine = shard.begin_machine;
      shard.machine_tick = from;
    }
    if (request.window_until != shard.window_until) {
      AppendError("ingest window_until " + std::to_string(request.window_until) +
                      " does not match the shard's open window (" +
                      std::to_string(shard.window_until) + ")",
                  out);
      net_metrics_.OnRejectedFrame();
      return false;
    }
    if (shard.next_machine >= shard.end_machine) {
      AppendError("shard has no machine left to stream in this window", out);
      net_metrics_.OnRejectedFrame();
      return false;
    }
    if (request.machine != shard.next_machine) {
      AppendError("ingest-batch machine " + std::to_string(request.machine) +
                      " out of order (shard expects machine " +
                      std::to_string(shard.next_machine) + ")",
                  out);
      net_metrics_.OnRejectedFrame();
      return false;
    }
    if (request.from_tick != shard.machine_tick || request.until_tick > shard.window_until) {
      AppendError("ingest-batch ticks [" + std::to_string(request.from_tick) + ", " +
                      std::to_string(request.until_tick) + ") do not continue machine " +
                      std::to_string(request.machine) + " (expected from tick " +
                      std::to_string(shard.machine_tick) + ", window ends at " +
                      std::to_string(shard.window_until) + ")",
                  out);
      net_metrics_.OnRejectedFrame();
      return false;
    }

    // Validate and apply tick by tick. Each tick's batch is checked against
    // the machine's live roster BEFORE it reaches the service, so malformed
    // input can never trip IngestTick's CHECKs.
    const OvercommitService& service = replayer_.service();
    const auto t0 = std::chrono::steady_clock::now();
    size_t i = 0;
    for (Interval tau = request.from_tick; tau < request.until_tick; ++tau) {
      size_t end = i;
      while (end < request.events.size() && request.events[end].tick == tau) {
        ++end;
      }
      const std::span<const StreamEvent> tick_events(request.events.data() + i, end - i);

      // Phase split: departures, then arrivals, then samples.
      size_t d = 0;
      while (d < tick_events.size() &&
             tick_events[d].kind == StreamEventKind::kTaskDeparture) {
        ++d;
      }
      size_t a = d;
      while (a < tick_events.size() && tick_events[a].kind == StreamEventKind::kTaskArrival) {
        ++a;
      }
      for (size_t k = a; k < tick_events.size(); ++k) {
        if (tick_events[k].kind != StreamEventKind::kUsageSample) {
          AppendError("ingest-batch events out of canonical order at tick " +
                          std::to_string(tau) +
                          " (expected departures, arrivals, then samples)",
                      out);
          net_metrics_.OnRejectedFrame();
          return false;
        }
      }

      // Re-derive the expected post-update roster.
      const std::span<const int32_t> roster = service.Roster(request.machine);
      shard.scratch_roster.assign(roster.begin(), roster.end());
      for (size_t k = 0; k < d; ++k) {
        const auto it = std::find(shard.scratch_roster.begin(), shard.scratch_roster.end(),
                                  tick_events[k].task_index);
        if (it == shard.scratch_roster.end()) {
          AppendError("departure of task " + std::to_string(tick_events[k].task_index) +
                          " not resident on machine " + std::to_string(request.machine) +
                          " at tick " + std::to_string(tau),
                      out);
          net_metrics_.OnRejectedFrame();
          return false;
        }
        shard.scratch_roster.erase(it);
      }
      for (size_t k = d; k < a; ++k) {
        if (std::find(shard.scratch_roster.begin(), shard.scratch_roster.end(),
                      tick_events[k].task_index) != shard.scratch_roster.end()) {
          AppendError("arrival of task " + std::to_string(tick_events[k].task_index) +
                          " already resident on machine " + std::to_string(request.machine) +
                          " at tick " + std::to_string(tau),
                      out);
          net_metrics_.OnRejectedFrame();
          return false;
        }
        shard.scratch_roster.push_back(tick_events[k].task_index);
      }
      const size_t num_samples = tick_events.size() - a;
      bool samples_ok = num_samples == shard.scratch_roster.size();
      for (size_t k = 0; samples_ok && k < num_samples; ++k) {
        samples_ok = tick_events[a + k].task_index == shard.scratch_roster[k];
      }
      if (!samples_ok) {
        AppendError("ingest-batch usage samples at tick " + std::to_string(tau) +
                        " do not match machine " + std::to_string(request.machine) +
                        "'s roster (" + std::to_string(num_samples) + " samples, " +
                        std::to_string(shard.scratch_roster.size()) + " resident tasks)",
                    out);
        net_metrics_.OnRejectedFrame();
        return false;
      }

      response.prediction = replayer_.PushMachineTick(request.machine, tau, tick_events);
      // Advance the streaming cursor with every applied tick, not once per
      // batch: a validation error on a later tick must leave the cursor on
      // the applied prefix, so a resumed stream continues at the first
      // unapplied tick instead of re-pushing ticks the replayer already
      // holds (which would CHECK-abort in IngestTick).
      shard.machine_tick = tau + 1;
      i = end;
    }
    const auto t1 = std::chrono::steady_clock::now();
    shard.elapsed_seconds += std::chrono::duration<double>(t1 - t0).count();

    response.limit_sum = service.LimitSum(request.machine);
    response.last_tick = service.LastTick(request.machine);
    stats->RecordBatch(static_cast<int64_t>(request.events.size()));

    // On the machine's final tick move to the next machine, and on the
    // shard's last machine mark the window complete.
    if (request.until_tick == shard.window_until) {
      ++shard.next_machine;
      shard.machine_tick = shard.window_from;
      if (shard.next_machine >= shard.end_machine) {
        shard.completed_until = shard.window_until;
        shard.window_until = -1;
        shard_completed_window = true;
        completed_window_until = shard.completed_until;
      }
    }
  }

  // Last shard to finish commits the window for the whole cell (outside the
  // shard lock: the commit path takes window_mutex_ then every shard lock).
  if (shard_completed_window) {
    std::lock_guard<std::mutex> lock(window_mutex_);
    std::string error;
    if (!TryCommitWindow(&error) && !error.empty()) {
      AppendError("window commit at tick " + std::to_string(completed_window_until) +
                      " failed: " + error,
                  out);
      net_metrics_.OnRejectedFrame();
      return false;
    }
  }

  ByteWriter writer;
  response.EncodeTo(writer);
  AppendFrame(WireOp::kIngestBatch, writer, out);
  return true;
}

std::vector<std::unique_lock<std::mutex>> OvercommitServer::LockAllShards() {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& shard : shards_) {
    locks.emplace_back(shard.mutex);
  }
  return locks;
}

bool OvercommitServer::TryCommitWindow(std::string* error) {
  // Take every shard lock (in order) so pushes cannot race the commit and
  // their writes are visible here.
  const auto locks = LockAllShards();
  return TryCommitWindowShardsLocked(error);
}

bool OvercommitServer::TryCommitWindowShardsLocked(std::string* error) {
  Interval window = -1;
  for (const auto& shard : shards_) {
    if (shard.begin_machine == shard.end_machine) {
      continue;  // empty shard, nothing to stream
    }
    if (shard.window_until >= 0 || shard.completed_until < 0) {
      return false;  // some shard still streaming; not an error
    }
    if (window < 0) {
      window = shard.completed_until;
    } else if (shard.completed_until != window) {
      *error = "shards completed mismatched windows (" + std::to_string(window) + " vs " +
               std::to_string(shard.completed_until) + ")";
      return false;
    }
  }
  if (window < 0) {
    return false;  // no machines anywhere
  }
  if (!replayer_.CommitPushedWindow(window)) {
    *error = "replayer rejected the window commit (a machine lags tick " +
             std::to_string(window - 1) + ")";
    return false;
  }
  for (auto& shard : shards_) {
    shard.completed_until = -1;
  }
  return true;
}

bool OvercommitServer::HandleMachineQuery(std::span<const uint8_t> payload,
                                          std::vector<uint8_t>& out) {
  MachineQueryRequest request;
  if (!DecodePayload(payload, request) ||
      request.machine >= replayer_.cell().num_machines()) {
    net_metrics_.OnRejectedFrame();
    AppendError("malformed machine-query payload", out);
    return false;
  }
  MachineQueryResponse response;
  {
    NetShard& shard = shards_[replayer_.shard_of(request.machine)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const OvercommitService& service = replayer_.service();
    response.last_tick = service.LastTick(request.machine);
    response.prediction = service.Predict(request.machine);
    response.limit_sum = service.LimitSum(request.machine);
    const std::span<const int32_t> roster = service.Roster(request.machine);
    response.roster_size = static_cast<int32_t>(roster.size());
    response.roster_hash =
        Fnv1a64(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(roster.data()),
                                         roster.size() * sizeof(int32_t)));
  }
  ByteWriter writer;
  response.EncodeTo(writer);
  AppendFrame(WireOp::kMachineQuery, writer, out);
  return true;
}

void OvercommitServer::HandleCellQuery(std::vector<uint8_t>& out) {
  CellQueryResponse response;
  {
    std::lock_guard<std::mutex> window_lock(window_mutex_);
    const auto locks = LockAllShards();
    const OvercommitService& service = replayer_.service();
    const int num_machines = replayer_.cell().num_machines();
    response.num_machines = num_machines;
    // Ascending machine order: deterministic FP accumulation.
    for (int m = 0; m < num_machines; ++m) {
      const Interval last = service.LastTick(m);
      response.min_last_tick = m == 0 ? last : std::min(response.min_last_tick, last);
      response.max_last_tick = std::max(response.max_last_tick, last);
      response.prediction_sum += service.Predict(m);
      response.limit_sum += service.LimitSum(m);
    }
    response.events_ingested = replayer_.MutableMetrics().TotalEvents();
  }
  ByteWriter writer;
  response.EncodeTo(writer);
  AppendFrame(WireOp::kCellQuery, writer, out);
}

bool OvercommitServer::HandleAdmission(std::span<const uint8_t> payload,
                                       std::vector<uint8_t>& out) {
  AdmissionCheckRequest request;
  if (!DecodePayload(payload, request) ||
      request.machine >= replayer_.cell().num_machines()) {
    net_metrics_.OnRejectedFrame();
    AppendError("malformed admission-check payload", out);
    return false;
  }
  AdmissionCheckResponse response;
  {
    NetShard& shard = shards_[replayer_.shard_of(request.machine)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    response.predicted_peak = replayer_.service().Predict(request.machine);
    response.capacity = replayer_.cell().machine_capacity(request.machine);
    response.headroom = response.capacity - response.predicted_peak;
    // The paper's packing rule (Section 3.3): place against predicted peak,
    // not the sum of limits.
    response.admitted = response.predicted_peak + request.task_limit <= response.capacity;
  }
  ByteWriter writer;
  response.EncodeTo(writer);
  AppendFrame(WireOp::kAdmissionCheck, writer, out);
  return true;
}

void OvercommitServer::RefreshMetricsShardsLocked() {
  // Caller holds window_mutex_ and every shard lock.
  double elapsed = 0.0;
  for (auto& shard : shards_) {
    elapsed += shard.elapsed_seconds;
    shard.elapsed_seconds = 0.0;
  }
  ServeMetrics& metrics = replayer_.MutableMetrics();
  metrics.AddElapsedSeconds(elapsed);
  metrics.SetExtraSection("net", net_metrics_.ToJsonObject());
  replayer_.Metrics();  // refresh the violation/risk summary
}

void OvercommitServer::HandleMetrics(std::vector<uint8_t>& out) {
  MetricsSnapshotResponse response;
  {
    std::lock_guard<std::mutex> lock(window_mutex_);
    const auto locks = LockAllShards();
    RefreshMetricsShardsLocked();
    response.json = replayer_.MutableMetrics().ToJson();
  }
  ByteWriter writer;
  response.EncodeTo(writer);
  AppendFrame(WireOp::kMetricsSnapshot, writer, out);
}

bool OvercommitServer::SealLocked(bool seal, ShutdownResponse* response, std::string* error) {
  // Caller holds window_mutex_. Every shard lock is held from here through
  // the checkpoint write: the mid-stream check below reads shard window
  // state, and SaveCheckpoint serializes the replayer, so a concurrent
  // ingest between the two would produce a torn checkpoint. Commit a
  // fully-streamed window if one is pending so the seal lands on the
  // freshest boundary.
  const auto locks = LockAllShards();
  std::string commit_error;
  if (!TryCommitWindowShardsLocked(&commit_error) && !commit_error.empty()) {
    *error = commit_error;
    return false;
  }
  RefreshMetricsShardsLocked();
  response->next_tick = replayer_.next_tick();
  if (!seal || options_.checkpoint_out.empty()) {
    return true;
  }
  // Refuse to seal while a window is mid-stream: the accumulators already
  // hold pushes past next_tick, and a checkpoint cut there could not resume.
  for (const auto& shard : shards_) {
    if (shard.window_until >= 0 || shard.completed_until >= 0) {
      *error = "cannot seal: an ingest window is still open past tick " +
               std::to_string(replayer_.next_tick());
      return false;
    }
  }
  if (!SaveCheckpoint(replayer_, options_.checkpoint_out, error)) {
    return false;
  }
  response->sealed = true;
  response->checkpoint_path = options_.checkpoint_out;
  sealed_ = true;
  sealed_path_ = options_.checkpoint_out;
  sealed_tick_ = replayer_.next_tick();
  return true;
}

bool OvercommitServer::HandleShutdown(std::span<const uint8_t> payload,
                                      std::vector<uint8_t>& out) {
  ShutdownRequest request;
  if (!DecodePayload(payload, request)) {
    net_metrics_.OnRejectedFrame();
    AppendError("malformed shutdown payload", out);
    stop_.store(true, std::memory_order_release);
    return false;
  }
  ShutdownResponse response;
  std::string error;
  bool ok;
  {
    std::lock_guard<std::mutex> lock(window_mutex_);
    ok = SealLocked(request.seal_checkpoint, &response, &error);
  }
  if (!ok) {
    AppendError("shutdown: " + error, out);
  } else {
    ByteWriter writer;
    response.EncodeTo(writer);
    AppendFrame(WireOp::kShutdown, writer, out);
  }
  stop_.store(true, std::memory_order_release);
  return false;
}

}  // namespace crf
