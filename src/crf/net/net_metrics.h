// NetMetrics: operational counters for the TCP serve tier (DESIGN.md §10).
//
// Each connection gets its own cache-line-aligned ConnectionStats slab —
// the network analogue of the replay layer's ShardMetrics — so concurrent
// connection threads never share a counter line. A connection thread is the
// only writer to its slab; the slab's small mutex exists solely for the
// metrics-snapshot reader, which aggregates all slabs into the "net" JSON
// section. The mutex is uncontended on the hot path (the owner takes it per
// request round, the reader only on snapshot).

#ifndef CRF_NET_NET_METRICS_H_
#define CRF_NET_NET_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "crf/net/wire.h"
#include "crf/stats/histogram.h"

namespace crf {

// Per-connection counters. Padded to its own cache lines; owned by one
// connection thread, read under `mutex` by the snapshot path.
struct alignas(64) ConnectionStats {
  ConnectionStats();

  // Records one completed request round: `ns` spent from frame decode to
  // response enqueue, keyed by op in log2-ns buckets.
  void RecordOp(WireOp op, double ns);
  // Records an ingest batch's event count (log2 buckets).
  void RecordBatch(int64_t events);
  void RecordBytesIn(uint64_t bytes);
  void RecordBytesOut(uint64_t bytes);

  mutable std::mutex mutex;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  // One log2-ns latency histogram per WireOp (indexed by op code).
  std::vector<BucketedStats> op_latency_log2_ns;
  // Ingest batch sizes, log2(event count) buckets.
  BucketedStats batch_events_log2{0.0, 1.0, 32};
};

// Registry of live connections' stats plus server-level counters. When a
// connection closes, its slab is folded into a retained aggregate and
// freed (RetireConnection), so a snapshot still covers the full history
// while memory stays bounded by the number of ACTIVE connections — a
// long-running server with connection churn does not grow without bound.
class NetMetrics {
 public:
  // Allocates a slab for a new connection. The pointer stays valid until
  // RetireConnection(slab) or the registry's destruction.
  ConnectionStats* AddConnection();
  // Folds the slab's counters into the retired aggregate and frees it.
  // Call once, after the owning connection thread is done writing; the
  // pointer is invalid afterwards.
  void RetireConnection(ConnectionStats* stats);

  void OnAccept() { connections_accepted_.fetch_add(1, std::memory_order_relaxed); }
  void OnOpen() { connections_active_.fetch_add(1, std::memory_order_relaxed); }
  void OnClose() { connections_active_.fetch_sub(1, std::memory_order_relaxed); }
  void OnRejectedFrame() { frames_rejected_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  int64_t connections_active() const {
    return connections_active_.load(std::memory_order_relaxed);
  }
  uint64_t frames_rejected() const {
    return frames_rejected_.load(std::memory_order_relaxed);
  }

  // The "net" section as a standalone JSON object (stable key order):
  // connection counters, total bytes/frames, per-op latency histograms, and
  // the ingest batch-size distribution. Safe to call while connection
  // threads are live.
  std::string ToJsonObject() const;

 private:
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ConnectionStats>> connections_;
  // Closed connections' counters, merged in RetireConnection. Guarded by
  // registry_mutex_ (its own slab mutex is unused).
  ConnectionStats retired_;
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_active_{0};
  std::atomic<uint64_t> frames_rejected_{0};
};

}  // namespace crf

#endif  // CRF_NET_NET_METRICS_H_
