#include "crf/net/wire.h"

#include <cmath>
#include <cstring>

namespace crf {
namespace {

constexpr char kNetMagic[8] = {'C', 'R', 'F', 'N', 'E', 'T', '1', '\0'};
// Caps for variable-length fields: well above anything legitimate, small
// enough that a corrupted length cannot allocate unreasonably.
constexpr uint64_t kMaxStringBytes = uint64_t{1} << 20;
constexpr uint64_t kMaxMetricsJsonBytes = uint64_t{1} << 26;

// Fixed little-endian frame header. Every field is validated on decode;
// flags/reserved must be zero so there are no "don't care" bits a flip
// could hide in.
struct FrameHeader {
  char magic[8];
  uint32_t version;
  uint8_t op;
  uint8_t flags;
  uint16_t reserved;
  uint64_t payload_bytes;
  uint64_t payload_hash;
};
static_assert(sizeof(FrameHeader) == 32, "wire frame header must be 32 bytes");
static_assert(std::is_trivially_copyable_v<FrameHeader>);

void WriteString(ByteWriter& out, const std::string& s) {
  out.Write<uint64_t>(s.size());
  out.WriteBytes(s.data(), s.size());
}

bool ReadString(ByteReader& in, std::string& out, uint64_t max_bytes = kMaxStringBytes) {
  const uint64_t size = in.Read<uint64_t>();
  if (!in.ok() || size > max_bytes || in.remaining() < size) {
    in.Fail();
    return false;
  }
  out.resize(size);
  return in.ReadBytes(out.data(), size);
}

bool FiniteNonNegative(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

const char* WireOpName(WireOp op) {
  switch (op) {
    case WireOp::kHello:
      return "hello";
    case WireOp::kIngestBatch:
      return "ingest-batch";
    case WireOp::kMachineQuery:
      return "machine-query";
    case WireOp::kCellQuery:
      return "cell-query";
    case WireOp::kAdmissionCheck:
      return "admission-check";
    case WireOp::kMetricsSnapshot:
      return "metrics-snapshot";
    case WireOp::kShutdown:
      return "shutdown";
    case WireOp::kError:
      return "error";
  }
  return "unknown";
}

void AppendFrame(WireOp op, std::span<const uint8_t> payload, std::vector<uint8_t>& out) {
  FrameHeader header{};
  std::memcpy(header.magic, kNetMagic, sizeof(header.magic));
  header.version = kNetVersion;
  header.op = static_cast<uint8_t>(op);
  header.flags = 0;
  header.reserved = 0;
  header.payload_bytes = payload.size();
  header.payload_hash = Fnv1a64(payload);
  const size_t offset = out.size();
  out.resize(offset + sizeof(header) + payload.size());
  std::memcpy(out.data() + offset, &header, sizeof(header));
  if (!payload.empty()) {
    std::memcpy(out.data() + offset + sizeof(header), payload.data(), payload.size());
  }
}

FrameStatus DecodeFrame(std::span<const uint8_t> buffer, WireOp* op,
                        std::span<const uint8_t>* payload, size_t* frame_bytes,
                        std::string* error) {
  const auto malformed = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return FrameStatus::kMalformed;
  };
  if (buffer.empty()) {
    return FrameStatus::kNeedMore;
  }
  // Reject bad magic as soon as the divergent byte arrives — a peer speaking
  // the wrong protocol is detected from its first bytes, not after 32.
  const size_t magic_prefix = std::min(buffer.size(), sizeof(kNetMagic));
  if (std::memcmp(buffer.data(), kNetMagic, magic_prefix) != 0) {
    return malformed("bad frame magic (expected \"CRFNET1\")");
  }
  if (buffer.size() < sizeof(FrameHeader)) {
    return FrameStatus::kNeedMore;
  }
  FrameHeader header;
  std::memcpy(&header, buffer.data(), sizeof(header));
  if (header.version != kNetVersion) {
    return malformed("unsupported wire version " + std::to_string(header.version) +
                     " (expected " + std::to_string(kNetVersion) + ")");
  }
  if (header.op >= kNumWireOps) {
    return malformed("unknown op " + std::to_string(header.op));
  }
  if (header.flags != 0 || header.reserved != 0) {
    return malformed("nonzero flags/reserved bits in frame header");
  }
  if (header.payload_bytes > kMaxFramePayload) {
    return malformed("frame payload length " + std::to_string(header.payload_bytes) +
                     " exceeds cap " + std::to_string(kMaxFramePayload));
  }
  if (buffer.size() - sizeof(FrameHeader) < header.payload_bytes) {
    return FrameStatus::kNeedMore;
  }
  const std::span<const uint8_t> body =
      buffer.subspan(sizeof(FrameHeader), header.payload_bytes);
  if (Fnv1a64(body) != header.payload_hash) {
    return malformed("frame payload checksum mismatch");
  }
  *op = static_cast<WireOp>(header.op);
  *payload = body;
  *frame_bytes = sizeof(FrameHeader) + header.payload_bytes;
  return FrameStatus::kFrame;
}

// ---------------------------------------------------------------------------
// Payload encodings.

void HelloRequest::EncodeTo(ByteWriter& out) const { WriteString(out, client_name); }

bool HelloRequest::DecodeFrom(ByteReader& in) { return ReadString(in, client_name); }

void HelloResponse::EncodeTo(ByteWriter& out) const {
  WriteString(out, trace_name);
  WriteString(out, spec_name);
  out.Write<int32_t>(num_machines);
  out.Write<int32_t>(num_intervals);
  out.Write<int32_t>(num_shards);
  out.Write<int32_t>(next_tick);
}

bool HelloResponse::DecodeFrom(ByteReader& in) {
  if (!ReadString(in, trace_name) || !ReadString(in, spec_name)) return false;
  num_machines = in.Read<int32_t>();
  num_intervals = in.Read<int32_t>();
  num_shards = in.Read<int32_t>();
  next_tick = in.Read<int32_t>();
  if (!in.ok() || num_machines < 0 || num_intervals < 0 || num_shards < 0 ||
      next_tick < 0) {
    in.Fail();
    return false;
  }
  return true;
}

void IngestBatchRequest::EncodeTo(ByteWriter& out) const {
  out.Write<int32_t>(machine);
  out.Write<int32_t>(from_tick);
  out.Write<int32_t>(until_tick);
  out.Write<int32_t>(window_until);
  out.Write<uint64_t>(events.size());
  for (const StreamEvent& event : events) {
    out.Write<uint8_t>(static_cast<uint8_t>(event.kind));
    out.Write<int32_t>(event.task_index);
    out.Write<int32_t>(event.tick);
    out.Write<int64_t>(event.task_id);
    out.Write<double>(event.usage);
    out.Write<double>(event.limit);
  }
}

bool IngestBatchRequest::DecodeFrom(ByteReader& in) {
  machine = in.Read<int32_t>();
  from_tick = in.Read<int32_t>();
  until_tick = in.Read<int32_t>();
  window_until = in.Read<int32_t>();
  const uint64_t count = in.Read<uint64_t>();
  // Events are 33 wire bytes each; reject a lying count before resizing.
  constexpr uint64_t kEventWireBytes = 1 + 4 + 4 + 8 + 8 + 8;
  if (!in.ok() || machine < 0 || from_tick < 0 || from_tick >= until_tick ||
      until_tick > window_until || count > kMaxBatchEvents ||
      in.remaining() < count * kEventWireBytes) {
    in.Fail();
    return false;
  }
  events.resize(count);
  Interval last_tick = from_tick;
  for (StreamEvent& event : events) {
    const uint8_t kind = in.Read<uint8_t>();
    event.task_index = in.Read<int32_t>();
    event.tick = in.Read<int32_t>();
    event.task_id = in.Read<int64_t>();
    event.usage = in.Read<double>();
    event.limit = in.Read<double>();
    if (!in.ok() || kind > static_cast<uint8_t>(StreamEventKind::kUsageSample) ||
        event.task_index < 0 || event.tick < last_tick || event.tick >= until_tick ||
        !FiniteNonNegative(event.usage) || !FiniteNonNegative(event.limit)) {
      in.Fail();
      return false;
    }
    event.kind = static_cast<StreamEventKind>(kind);
    event.machine = machine;
    last_tick = event.tick;
  }
  return true;
}

void IngestBatchResponse::EncodeTo(ByteWriter& out) const {
  out.Write<double>(prediction);
  out.Write<double>(limit_sum);
  out.Write<int32_t>(last_tick);
}

bool IngestBatchResponse::DecodeFrom(ByteReader& in) {
  prediction = in.Read<double>();
  limit_sum = in.Read<double>();
  last_tick = in.Read<int32_t>();
  return in.ok();
}

void MachineQueryRequest::EncodeTo(ByteWriter& out) const { out.Write<int32_t>(machine); }

bool MachineQueryRequest::DecodeFrom(ByteReader& in) {
  machine = in.Read<int32_t>();
  if (!in.ok() || machine < 0) {
    in.Fail();
    return false;
  }
  return true;
}

void MachineQueryResponse::EncodeTo(ByteWriter& out) const {
  out.Write<int32_t>(last_tick);
  out.Write<double>(prediction);
  out.Write<double>(limit_sum);
  out.Write<int32_t>(roster_size);
  out.Write<uint64_t>(roster_hash);
}

bool MachineQueryResponse::DecodeFrom(ByteReader& in) {
  last_tick = in.Read<int32_t>();
  prediction = in.Read<double>();
  limit_sum = in.Read<double>();
  roster_size = in.Read<int32_t>();
  roster_hash = in.Read<uint64_t>();
  if (!in.ok() || roster_size < 0) {
    in.Fail();
    return false;
  }
  return true;
}

void CellQueryRequest::EncodeTo(ByteWriter&) const {}

bool CellQueryRequest::DecodeFrom(ByteReader& in) { return in.ok(); }

void CellQueryResponse::EncodeTo(ByteWriter& out) const {
  out.Write<int32_t>(num_machines);
  out.Write<int32_t>(min_last_tick);
  out.Write<int32_t>(max_last_tick);
  out.Write<double>(prediction_sum);
  out.Write<double>(limit_sum);
  out.Write<uint64_t>(events_ingested);
}

bool CellQueryResponse::DecodeFrom(ByteReader& in) {
  num_machines = in.Read<int32_t>();
  min_last_tick = in.Read<int32_t>();
  max_last_tick = in.Read<int32_t>();
  prediction_sum = in.Read<double>();
  limit_sum = in.Read<double>();
  events_ingested = in.Read<uint64_t>();
  if (!in.ok() || num_machines < 0) {
    in.Fail();
    return false;
  }
  return true;
}

void AdmissionCheckRequest::EncodeTo(ByteWriter& out) const {
  out.Write<int32_t>(machine);
  out.Write<double>(task_limit);
}

bool AdmissionCheckRequest::DecodeFrom(ByteReader& in) {
  machine = in.Read<int32_t>();
  task_limit = in.Read<double>();
  if (!in.ok() || machine < 0 || !FiniteNonNegative(task_limit)) {
    in.Fail();
    return false;
  }
  return true;
}

void AdmissionCheckResponse::EncodeTo(ByteWriter& out) const {
  out.Write<uint8_t>(admitted ? 1 : 0);
  out.Write<double>(predicted_peak);
  out.Write<double>(capacity);
  out.Write<double>(headroom);
}

bool AdmissionCheckResponse::DecodeFrom(ByteReader& in) {
  const uint8_t admitted_byte = in.Read<uint8_t>();
  predicted_peak = in.Read<double>();
  capacity = in.Read<double>();
  headroom = in.Read<double>();
  if (!in.ok() || admitted_byte > 1) {
    in.Fail();
    return false;
  }
  admitted = admitted_byte != 0;
  return true;
}

void MetricsSnapshotRequest::EncodeTo(ByteWriter&) const {}

bool MetricsSnapshotRequest::DecodeFrom(ByteReader& in) { return in.ok(); }

void MetricsSnapshotResponse::EncodeTo(ByteWriter& out) const { WriteString(out, json); }

bool MetricsSnapshotResponse::DecodeFrom(ByteReader& in) {
  return ReadString(in, json, kMaxMetricsJsonBytes);
}

void ShutdownRequest::EncodeTo(ByteWriter& out) const {
  out.Write<uint8_t>(seal_checkpoint ? 1 : 0);
}

bool ShutdownRequest::DecodeFrom(ByteReader& in) {
  const uint8_t seal = in.Read<uint8_t>();
  if (!in.ok() || seal > 1) {
    in.Fail();
    return false;
  }
  seal_checkpoint = seal != 0;
  return true;
}

void ShutdownResponse::EncodeTo(ByteWriter& out) const {
  out.Write<uint8_t>(sealed ? 1 : 0);
  out.Write<int32_t>(next_tick);
  WriteString(out, checkpoint_path);
}

bool ShutdownResponse::DecodeFrom(ByteReader& in) {
  const uint8_t sealed_byte = in.Read<uint8_t>();
  next_tick = in.Read<int32_t>();
  if (!in.ok() || sealed_byte > 1 || next_tick < 0) {
    in.Fail();
    return false;
  }
  sealed = sealed_byte != 0;
  return ReadString(in, checkpoint_path);
}

void ErrorResponse::EncodeTo(ByteWriter& out) const { WriteString(out, message); }

bool ErrorResponse::DecodeFrom(ByteReader& in) { return ReadString(in, message); }

}  // namespace crf
