#include "crf/net/loadgen.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <thread>

#include "crf/net/client.h"
#include "crf/serve/event_log.h"
#include "crf/util/byte_io.h"

namespace crf {
namespace {

// Latency samples one client thread collects, one vector per op of
// interest (ingest dominates; the others are sampled per machine).
struct ThreadSamples {
  std::vector<double> ingest_ns;
  std::vector<double> admission_ns;
  uint64_t events = 0;
  uint64_t ticks = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  std::string error;
};

double Percentile(std::vector<double>& values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  const size_t rank = std::min(values.size() - 1,
                               static_cast<size_t>(q * static_cast<double>(values.size())));
  std::nth_element(values.begin(), values.begin() + rank, values.end());
  return values[rank];
}

LoadGenOpLatency Summarize(const char* op, std::vector<double>& samples) {
  LoadGenOpLatency row;
  row.op = op;
  row.count = static_cast<int64_t>(samples.size());
  row.p50_ns = Percentile(samples, 0.50);
  row.p99_ns = Percentile(samples, 0.99);
  row.p999_ns = Percentile(samples, 0.999);
  return row;
}

bool BitsEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

}  // namespace

bool RunLoadGen(const CellTrace& cell, const PredictorSpec& spec,
                const LoadGenOptions& options, LoadGenReport* report) {
  *report = LoadGenReport{};
  const auto fail = [report](const std::string& message) {
    report->error = message;
    return false;
  };
  if (options.client_threads < 1) {
    return fail("client_threads must be >= 1");
  }
  if (options.batch_ticks < 1) {
    return fail("batch_ticks must be >= 1");
  }

  // Handshake on a control connection: learn the server's geometry and
  // cross-check it against the trace and spec we are about to stream.
  NetClient control;
  std::string error;
  if (!control.Connect(options.host, options.port, &error)) {
    return fail(error);
  }
  HelloRequest hello_request;
  hello_request.client_name = "crf-loadgen";
  const auto hello = control.Hello(hello_request, &error);
  if (!hello) {
    return fail("hello: " + error);
  }
  if (hello->trace_name != cell.name) {
    return fail("server trace \"" + hello->trace_name + "\" does not match local trace \"" +
                cell.name + "\"");
  }
  if (hello->spec_name != spec.Name()) {
    return fail("server predictor \"" + hello->spec_name + "\" does not match \"" +
                spec.Name() + "\"");
  }
  if (hello->num_machines != cell.num_machines() ||
      hello->num_intervals != cell.num_intervals) {
    return fail("server geometry mismatch (machines " + std::to_string(hello->num_machines) +
                "/" + std::to_string(cell.num_machines()) + ", intervals " +
                std::to_string(hello->num_intervals) + "/" +
                std::to_string(cell.num_intervals) + ")");
  }
  const int num_shards = hello->num_shards;
  const Interval from = hello->next_tick;
  const Interval until = options.until < 0 ? cell.num_intervals : options.until;
  if (until <= from || until > cell.num_intervals) {
    return fail("nothing to stream: server is at tick " + std::to_string(from) +
                ", requested until " + std::to_string(until));
  }

  // The server's shard map: contiguous blocks of ceil(M/S) machines.
  const int num_machines = cell.num_machines();
  const int block = std::max((num_machines + num_shards - 1) / num_shards, 1);

  const EventLog log(cell);
  const int threads = std::min(options.client_threads, num_shards);
  std::vector<ThreadSamples> samples(threads);
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int k = 0; k < threads; ++k) {
      workers.emplace_back([&, k] {
        ThreadSamples& mine = samples[k];
        NetClient client;
        std::string thread_error;
        if (!client.Connect(options.host, options.port, &thread_error)) {
          mine.error = thread_error;
          return;
        }
        IngestBatchRequest request;
        AdmissionCheckRequest admission;
        admission.task_limit = 0.25;
        EventLog::MachineCursor cursor = log.CreateCursor(0);
        // Thread k owns shards k, k+threads, k+2*threads, ... — disjoint
        // shard sets, so server-side shard locks never contend.
        for (int s = k; s < num_shards; s += threads) {
          const int begin = std::min(s * block, num_machines);
          const int end = std::min((s + 1) * block, num_machines);
          for (int m = begin; m < end; ++m) {
            cursor = log.CreateCursor(m);
            cursor.Seek(from);
            for (Interval t = from; t < until;) {
              const Interval stop =
                  std::min<Interval>(t + options.batch_ticks, until);
              request.machine = m;
              request.from_tick = t;
              request.until_tick = stop;
              request.window_until = until;
              request.events.clear();
              for (Interval tau = t; tau < stop; ++tau) {
                cursor.EmitTick(tau, request.events);
              }
              const auto b0 = std::chrono::steady_clock::now();
              const auto response = client.IngestBatch(request, &thread_error);
              const auto b1 = std::chrono::steady_clock::now();
              if (!response) {
                mine.error = "ingest machine " + std::to_string(m) + ": " + thread_error;
                return;
              }
              mine.ingest_ns.push_back(static_cast<double>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(b1 - b0).count()));
              mine.events += request.events.size();
              mine.ticks += static_cast<uint64_t>(stop - t);
              t = stop;
            }
            // One admission probe per finished machine exercises the query
            // path under load.
            admission.machine = m;
            const auto a0 = std::chrono::steady_clock::now();
            const auto verdict = client.AdmissionCheck(admission, &thread_error);
            const auto a1 = std::chrono::steady_clock::now();
            if (!verdict) {
              mine.error = "admission machine " + std::to_string(m) + ": " + thread_error;
              return;
            }
            mine.admission_ns.push_back(static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(a1 - a0).count()));
          }
        }
        mine.bytes_sent = client.bytes_sent();
        mine.bytes_received = client.bytes_received();
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  report->elapsed_seconds = std::chrono::duration<double>(t1 - t0).count();

  std::vector<double> ingest_ns;
  std::vector<double> admission_ns;
  for (ThreadSamples& mine : samples) {
    if (!mine.error.empty() && report->error.empty()) {
      report->error = mine.error;
    }
    report->events_sent += mine.events;
    report->ticks_sent += mine.ticks;
    report->bytes_sent += mine.bytes_sent;
    report->bytes_received += mine.bytes_received;
    ingest_ns.insert(ingest_ns.end(), mine.ingest_ns.begin(), mine.ingest_ns.end());
    admission_ns.insert(admission_ns.end(), mine.admission_ns.begin(),
                        mine.admission_ns.end());
  }
  if (!report->error.empty()) {
    return false;
  }
  report->events_per_sec = report->elapsed_seconds > 0.0
                               ? static_cast<double>(report->events_sent) /
                                     report->elapsed_seconds
                               : 0.0;
  report->ops.push_back(Summarize("ingest-batch", ingest_ns));
  report->ops.push_back(Summarize("admission-check", admission_ns));

  // Differential verification: replay the same window in-process and
  // bit-compare every machine's served state over machine-query, then the
  // ascending-machine cell sums over cell-query.
  if (options.verify) {
    report->verify_ran = true;
    StreamReplayer reference(cell, spec, options.verify_options);
    if (from > 0) {
      reference.Advance(from);
    }
    reference.Advance(until);
    const OvercommitService& service = reference.service();

    std::vector<double> query_ns;
    query_ns.reserve(num_machines);
    MachineQueryRequest query;
    int mismatched = 0;
    for (int m = 0; m < num_machines; ++m) {
      query.machine = m;
      const auto q0 = std::chrono::steady_clock::now();
      const auto state = control.MachineQuery(query, &error);
      const auto q1 = std::chrono::steady_clock::now();
      if (!state) {
        return fail("machine-query " + std::to_string(m) + ": " + error);
      }
      query_ns.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(q1 - q0).count()));
      const std::span<const int32_t> roster = service.Roster(m);
      const uint64_t roster_hash = Fnv1a64(std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(roster.data()), roster.size() * sizeof(int32_t)));
      const bool match = state->last_tick == until - 1 &&
                         BitsEqual(state->prediction, service.Predict(m)) &&
                         BitsEqual(state->limit_sum, service.LimitSum(m)) &&
                         state->roster_size == static_cast<int32_t>(roster.size()) &&
                         state->roster_hash == roster_hash;
      if (!match) {
        ++mismatched;
      }
    }
    report->ops.push_back(Summarize("machine-query", query_ns));
    report->mismatched_machines = mismatched;

    const auto cell_state = control.CellQuery(&error);
    if (!cell_state) {
      return fail("cell-query: " + error);
    }
    double prediction_sum = 0.0;
    double limit_sum = 0.0;
    for (int m = 0; m < num_machines; ++m) {
      prediction_sum += service.Predict(m);
      limit_sum += service.LimitSum(m);
    }
    const bool cell_match = cell_state->num_machines == num_machines &&
                            cell_state->min_last_tick == until - 1 &&
                            cell_state->max_last_tick == until - 1 &&
                            BitsEqual(cell_state->prediction_sum, prediction_sum) &&
                            BitsEqual(cell_state->limit_sum, limit_sum);
    report->verified = mismatched == 0 && cell_match;
  }

  // Exercise the metrics snapshot (and sanity-check it parses as an object).
  const auto metrics = control.MetricsSnapshot(&error);
  if (!metrics) {
    return fail("metrics-snapshot: " + error);
  }
  if (metrics->json.empty() || metrics->json.front() != '{') {
    return fail("metrics snapshot is not a JSON object");
  }

  if (options.send_shutdown) {
    ShutdownRequest request;
    const auto down = control.Shutdown(request, &error);
    if (!down) {
      return fail("shutdown: " + error);
    }
    report->shutdown_sent = true;
    report->sealed = down->sealed;
    report->checkpoint_path = down->checkpoint_path;
    report->final_tick = down->next_tick;
  } else {
    report->final_tick = until;
  }
  return report->error.empty();
}

}  // namespace crf
