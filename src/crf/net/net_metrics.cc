#include "crf/net/net_metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace crf {

ConnectionStats::ConnectionStats() {
  op_latency_log2_ns.reserve(kNumWireOps);
  for (int i = 0; i < kNumWireOps; ++i) {
    // Same geometry as ShardMetrics::predict_latency_log2_ns.
    op_latency_log2_ns.emplace_back(0.0, 1.0, 40);
  }
}

void ConnectionStats::RecordOp(WireOp op, double ns) {
  std::lock_guard<std::mutex> lock(mutex);
  op_latency_log2_ns[static_cast<int>(op)].Add(std::log2(std::max(ns, 1.0)), ns);
}

void ConnectionStats::RecordBatch(int64_t events) {
  std::lock_guard<std::mutex> lock(mutex);
  batch_events_log2.Add(std::log2(static_cast<double>(std::max<int64_t>(events, 1))),
                        static_cast<double>(events));
}

void ConnectionStats::RecordBytesIn(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex);
  bytes_in += bytes;
  ++frames_in;
}

void ConnectionStats::RecordBytesOut(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex);
  bytes_out += bytes;
  ++frames_out;
}

ConnectionStats* NetMetrics::AddConnection() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  connections_.push_back(std::make_unique<ConnectionStats>());
  return connections_.back().get();
}

void NetMetrics::RetireConnection(ConnectionStats* stats) {
  std::lock_guard<std::mutex> registry_lock(registry_mutex_);
  {
    std::lock_guard<std::mutex> lock(stats->mutex);
    retired_.bytes_in += stats->bytes_in;
    retired_.bytes_out += stats->bytes_out;
    retired_.frames_in += stats->frames_in;
    retired_.frames_out += stats->frames_out;
    for (int i = 0; i < kNumWireOps; ++i) {
      retired_.op_latency_log2_ns[i].Merge(stats->op_latency_log2_ns[i]);
    }
    retired_.batch_events_log2.Merge(stats->batch_events_log2);
  }
  connections_.erase(std::remove_if(connections_.begin(), connections_.end(),
                                    [stats](const std::unique_ptr<ConnectionStats>& slab) {
                                      return slab.get() == stats;
                                    }),
                     connections_.end());
}

std::string NetMetrics::ToJsonObject() const {
  // Aggregate every connection slab under its own lock.
  uint64_t bytes_in = 0, bytes_out = 0, frames_in = 0, frames_out = 0;
  std::vector<BucketedStats> op_latency;
  op_latency.reserve(kNumWireOps);
  for (int i = 0; i < kNumWireOps; ++i) {
    op_latency.emplace_back(0.0, 1.0, 40);
  }
  BucketedStats batch_events(0.0, 1.0, 32);
  {
    std::lock_guard<std::mutex> registry_lock(registry_mutex_);
    // Seed with the retired aggregate so closed connections still count.
    bytes_in += retired_.bytes_in;
    bytes_out += retired_.bytes_out;
    frames_in += retired_.frames_in;
    frames_out += retired_.frames_out;
    for (int i = 0; i < kNumWireOps; ++i) {
      op_latency[i].Merge(retired_.op_latency_log2_ns[i]);
    }
    batch_events.Merge(retired_.batch_events_log2);
    for (const auto& connection : connections_) {
      std::lock_guard<std::mutex> lock(connection->mutex);
      bytes_in += connection->bytes_in;
      bytes_out += connection->bytes_out;
      frames_in += connection->frames_in;
      frames_out += connection->frames_out;
      for (int i = 0; i < kNumWireOps; ++i) {
        op_latency[i].Merge(connection->op_latency_log2_ns[i]);
      }
      batch_events.Merge(connection->batch_events_log2);
    }
  }

  const auto append_histogram = [](std::string& out, const BucketedStats& stats,
                                   const char* key_name) {
    char buffer[128];
    out += "[";
    bool first = true;
    for (int i = 0; i < stats.num_buckets(); ++i) {
      const RunningStats& bucket = stats.bucket(i);
      if (bucket.empty()) {
        continue;
      }
      std::snprintf(buffer, sizeof(buffer), "%s{\"%s\": %d, \"count\": %lld, \"mean\": %.1f}",
                    first ? "" : ", ", key_name, i, static_cast<long long>(bucket.count()),
                    bucket.mean());
      out += buffer;
      first = false;
    }
    out += "]";
  };

  std::string out = "{\n";
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "  \"connections_accepted\": %llu,\n  \"connections_active\": %lld,\n"
                "  \"frames_rejected\": %llu,\n  \"bytes_in\": %llu,\n"
                "  \"bytes_out\": %llu,\n  \"frames_in\": %llu,\n  \"frames_out\": %llu,\n",
                static_cast<unsigned long long>(connections_accepted()),
                static_cast<long long>(connections_active()),
                static_cast<unsigned long long>(frames_rejected()),
                static_cast<unsigned long long>(bytes_in),
                static_cast<unsigned long long>(bytes_out),
                static_cast<unsigned long long>(frames_in),
                static_cast<unsigned long long>(frames_out));
  out += buffer;

  out += "  \"ops\": [";
  bool first_op = true;
  for (int i = 0; i < kNumWireOps; ++i) {
    int64_t count = 0;
    for (int b = 0; b < op_latency[i].num_buckets(); ++b) {
      count += op_latency[i].bucket(b).count();
    }
    if (count == 0) {
      continue;
    }
    out += first_op ? "\n" : ",\n";
    std::snprintf(buffer, sizeof(buffer), "    {\"op\": \"%s\", \"count\": %lld, "
                  "\"latency_log2_ns\": ",
                  WireOpName(static_cast<WireOp>(i)), static_cast<long long>(count));
    out += buffer;
    append_histogram(out, op_latency[i], "log2_ns");
    out += "}";
    first_op = false;
  }
  out += first_op ? "],\n" : "\n  ],\n";

  out += "  \"batch_events_log2\": ";
  append_histogram(out, batch_events, "log2_events");
  out += "\n}";
  return out;
}

}  // namespace crf
