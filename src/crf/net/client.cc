#include "crf/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace crf {

NetClient::~NetClient() { Close(); }

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool NetClient::Connect(const std::string& host, int port, std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "host \"" + host + "\" is not a numeric IPv4 address";
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "connect " + host + ":" + std::to_string(port) + ": " + std::strerror(errno);
    Close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  receive_buffer_.clear();
  return true;
}

bool NetClient::Call(WireOp op, const ByteWriter& payload, WireOp* response_op,
                     std::span<const uint8_t>* response_payload, std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  send_buffer_.clear();
  AppendFrame(op, payload, send_buffer_);
  size_t sent = 0;
  while (sent < send_buffer_.size()) {
    const ssize_t n =
        ::send(fd_, send_buffer_.data() + sent, send_buffer_.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  bytes_sent_ += send_buffer_.size();

  // The protocol is one response frame per request; any leftover bytes from
  // a previous round would be a framing bug, so start clean.
  receive_buffer_.clear();
  while (true) {
    size_t frame_bytes = 0;
    const FrameStatus status =
        DecodeFrame(receive_buffer_, response_op, response_payload, &frame_bytes, error);
    if (status == FrameStatus::kFrame) {
      bytes_received_ += frame_bytes;
      return true;
    }
    if (status == FrameStatus::kMalformed) {
      *error = "malformed response frame: " + *error;
      return false;
    }
    const size_t offset = receive_buffer_.size();
    receive_buffer_.resize(offset + 64 * 1024);
    const ssize_t n = ::recv(fd_, receive_buffer_.data() + offset, 64 * 1024, 0);
    if (n <= 0) {
      receive_buffer_.resize(offset);
      if (n < 0 && errno == EINTR) {
        continue;
      }
      *error = n == 0 ? "connection closed by server"
                      : std::string("recv: ") + std::strerror(errno);
      return false;
    }
    receive_buffer_.resize(offset + static_cast<size_t>(n));
  }
}

template <typename Request, typename Response>
std::optional<Response> NetClient::TypedCall(WireOp op, const Request& request,
                                             std::string* error) {
  ByteWriter writer;
  request.EncodeTo(writer);
  WireOp response_op;
  std::span<const uint8_t> response_payload;
  if (!Call(op, writer, &response_op, &response_payload, error)) {
    return std::nullopt;
  }
  if (response_op == WireOp::kError) {
    ErrorResponse failure;
    *error = DecodePayload(response_payload, failure) ? failure.message
                                                      : "undecodable error response";
    return std::nullopt;
  }
  if (response_op != op) {
    *error = std::string("response op ") + WireOpName(response_op) +
             " does not match request op " + WireOpName(op);
    return std::nullopt;
  }
  Response response;
  if (!DecodePayload(response_payload, response)) {
    *error = std::string("malformed ") + WireOpName(op) + " response payload";
    return std::nullopt;
  }
  return response;
}

std::optional<HelloResponse> NetClient::Hello(const HelloRequest& request, std::string* error) {
  return TypedCall<HelloRequest, HelloResponse>(WireOp::kHello, request, error);
}

std::optional<IngestBatchResponse> NetClient::IngestBatch(const IngestBatchRequest& request,
                                                          std::string* error) {
  return TypedCall<IngestBatchRequest, IngestBatchResponse>(WireOp::kIngestBatch, request,
                                                            error);
}

std::optional<MachineQueryResponse> NetClient::MachineQuery(const MachineQueryRequest& request,
                                                            std::string* error) {
  return TypedCall<MachineQueryRequest, MachineQueryResponse>(WireOp::kMachineQuery, request,
                                                              error);
}

std::optional<CellQueryResponse> NetClient::CellQuery(std::string* error) {
  return TypedCall<CellQueryRequest, CellQueryResponse>(WireOp::kCellQuery, CellQueryRequest{},
                                                        error);
}

std::optional<AdmissionCheckResponse> NetClient::AdmissionCheck(
    const AdmissionCheckRequest& request, std::string* error) {
  return TypedCall<AdmissionCheckRequest, AdmissionCheckResponse>(WireOp::kAdmissionCheck,
                                                                  request, error);
}

std::optional<MetricsSnapshotResponse> NetClient::MetricsSnapshot(std::string* error) {
  return TypedCall<MetricsSnapshotRequest, MetricsSnapshotResponse>(
      WireOp::kMetricsSnapshot, MetricsSnapshotRequest{}, error);
}

std::optional<ShutdownResponse> NetClient::Shutdown(const ShutdownRequest& request,
                                                    std::string* error) {
  return TypedCall<ShutdownRequest, ShutdownResponse>(WireOp::kShutdown, request, error);
}

}  // namespace crf
