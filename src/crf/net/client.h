// NetClient: a blocking CRFNET1 client connection.
//
// One TCP connection speaking the wire format of wire.h: Call() frames a
// request, sends it, and blocks until the matching response frame arrives
// (the protocol is strictly request/response per connection). Typed
// wrappers decode the expected payload; a kError response or any framing /
// decode failure surfaces as std::nullopt with the diagnostic in *error.
// Used by the load generator, the CLI, and the loopback tests.

#ifndef CRF_NET_CLIENT_H_
#define CRF_NET_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crf/net/wire.h"

namespace crf {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  // Connects to a numeric IPv4 host:port. Returns false with a diagnostic.
  bool Connect(const std::string& host, int port, std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // One framed round trip: sends `op` with `payload`, receives one frame.
  // Returns false on transport or framing failure. On success `*response_op`
  // is the server's op (kError for server-side failures) and
  // `*response_payload` points into the client's receive buffer (valid until
  // the next Call).
  bool Call(WireOp op, const ByteWriter& payload, WireOp* response_op,
            std::span<const uint8_t>* response_payload, std::string* error);

  // Typed round trips. std::nullopt on any failure, with *error set (a
  // server kError response decodes its message into *error).
  std::optional<HelloResponse> Hello(const HelloRequest& request, std::string* error);
  std::optional<IngestBatchResponse> IngestBatch(const IngestBatchRequest& request,
                                                 std::string* error);
  std::optional<MachineQueryResponse> MachineQuery(const MachineQueryRequest& request,
                                                   std::string* error);
  std::optional<CellQueryResponse> CellQuery(std::string* error);
  std::optional<AdmissionCheckResponse> AdmissionCheck(const AdmissionCheckRequest& request,
                                                       std::string* error);
  std::optional<MetricsSnapshotResponse> MetricsSnapshot(std::string* error);
  std::optional<ShutdownResponse> Shutdown(const ShutdownRequest& request, std::string* error);

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

 private:
  template <typename Request, typename Response>
  std::optional<Response> TypedCall(WireOp op, const Request& request, std::string* error);

  int fd_ = -1;
  std::vector<uint8_t> receive_buffer_;
  std::vector<uint8_t> send_buffer_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

}  // namespace crf

#endif  // CRF_NET_CLIENT_H_
