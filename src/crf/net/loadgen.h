// LoadGenerator: replays a sealed trace over the wire (`crf loadgen`).
//
// K client threads split the server's ingest shards round-robin (thread k
// owns shards s with s % K == k), each streaming its shards' machines in
// the protocol's machine-outer ascending order through batched ingest
// frames, with per-op latency sampling. Afterwards the generator verifies
// end-state bit-identity against an in-process replay of the same trace
// (per-machine prediction/limit-sum bits, roster hash, cell-level sums) and
// optionally sends the shutdown op to seal the server's checkpoint.

#ifndef CRF_NET_LOADGEN_H_
#define CRF_NET_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crf/core/predictor_factory.h"
#include "crf/serve/replay.h"
#include "crf/trace/trace.h"

namespace crf {

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  // Concurrent client connections (threads).
  int client_threads = 4;
  // Replay horizon: ticks [server next_tick, until); -1 streams to the end.
  Interval until = -1;
  // Ticks per ingest frame (the batching knob).
  int batch_ticks = 256;
  // Differential verification against an in-process replay.
  bool verify = true;
  // Send the shutdown op when done (seals the server's checkpoint if the
  // server was configured with one).
  bool send_shutdown = true;
  // Must match the server's replay options for verification to be
  // meaningful (shard count determines the cell-series rounding).
  ReplayOptions verify_options;
};

struct LoadGenOpLatency {
  std::string op;
  int64_t count = 0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
};

struct LoadGenReport {
  // Set on any failure; all other fields are best-effort.
  std::string error;

  double elapsed_seconds = 0.0;
  uint64_t events_sent = 0;
  uint64_t ticks_sent = 0;
  double events_per_sec = 0.0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  std::vector<LoadGenOpLatency> ops;

  bool verify_ran = false;
  bool verified = false;
  int mismatched_machines = 0;

  bool shutdown_sent = false;
  bool sealed = false;
  std::string checkpoint_path;
  Interval final_tick = 0;
};

// Streams `cell` to the server at host:port. `spec` must be the predictor
// the server runs (cross-checked against the hello response). Returns false
// iff report->error is non-empty.
bool RunLoadGen(const CellTrace& cell, const PredictorSpec& spec,
                const LoadGenOptions& options, LoadGenReport* report);

}  // namespace crf

#endif  // CRF_NET_LOADGEN_H_
