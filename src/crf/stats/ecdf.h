// Empirical cumulative distribution functions.
//
// Nearly every figure in the paper is a CDF; Ecdf is the common carrier
// between the simulator's metric vectors and bench output. It supports
// evaluation (P[X <= x]), inverse evaluation (quantiles), and sampling a
// fixed set of probability points for tabular/CSV output.

#ifndef CRF_STATS_ECDF_H_
#define CRF_STATS_ECDF_H_

#include <span>
#include <string>
#include <vector>

namespace crf {

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> samples);

  void Add(double sample);
  // Sorts the sample buffer; called lazily by accessors and idempotent.
  void Seal() const;

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // P[X <= x]; 0 for empty.
  double Evaluate(double x) const;
  // Inverse CDF at probability q in [0, 1]; interpolated. Requires samples.
  double Quantile(double q) const;
  double min() const;
  double max() const;
  double mean() const;

  // Returns (x, P[X <= x]) pairs at `num_points` evenly spaced probability
  // levels in [0, 1] — the series a CDF plot draws.
  struct Point {
    double x = 0.0;
    double probability = 0.0;
  };
  std::vector<Point> CurvePoints(int num_points = 101) const;

  const std::vector<double>& sorted_samples() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Writes several named CDFs to one CSV (columns: series, x, probability).
void WriteCdfsCsv(const std::string& path,
                  const std::vector<std::pair<std::string, const Ecdf*>>& series,
                  int num_points = 101);

}  // namespace crf

#endif  // CRF_STATS_ECDF_H_
