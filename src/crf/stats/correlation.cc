#include "crf/stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "crf/util/check.h"

namespace crf {

double PearsonCorrelation(std::span<const double> x, std::span<const double> y) {
  CRF_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) {
    return 0.0;
  }
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> FractionalRanks(std::span<const double> values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&values](size_t a, size_t b) { return values[a] < values[b]; });

  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    // Positions i..j (0-based) share the same value; average their 1-based
    // ranks.
    const double average_rank = static_cast<double>(i + j) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) {
      ranks[order[k]] = average_rank;
    }
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(std::span<const double> x, std::span<const double> y) {
  CRF_CHECK_EQ(x.size(), y.size());
  const std::vector<double> rx = FractionalRanks(x);
  const std::vector<double> ry = FractionalRanks(y);
  return PearsonCorrelation(rx, ry);
}

LinearFit FitLine(std::span<const double> x, std::span<const double> y) {
  CRF_CHECK_EQ(x.size(), y.size());
  LinearFit fit;
  const size_t n = x.size();
  if (n < 2) {
    return fit;
  }
  double mean_x = 0.0;
  double mean_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0) {
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = syy <= 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

}  // namespace crf
