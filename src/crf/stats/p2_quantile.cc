#include "crf/stats/p2_quantile.h"

#include <algorithm>
#include <cmath>

#include "crf/util/byte_io.h"
#include "crf/util/check.h"

namespace crf {

P2Quantile::P2Quantile(double quantile) : quantile_(quantile) {
  CRF_CHECK_GT(quantile, 0.0);
  CRF_CHECK_LT(quantile, 1.0);
  desired_ = {1.0, 1.0 + 2.0 * quantile_, 1.0 + 4.0 * quantile_, 3.0 + 2.0 * quantile_, 5.0};
  desired_increment_ = {0.0, quantile_ / 2.0, quantile_, (1.0 + quantile_) / 2.0, 1.0};
}

void P2Quantile::Add(double value) {
  if (count_ < 5) {
    heights_[count_] = value;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) {
        positions_[i] = i + 1;
      }
    }
    return;
  }

  // Find the cell k containing the new observation and update extremes.
  int k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = std::max(heights_[4], value);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && value >= heights_[k + 1]) {
      ++k;
    }
  }

  for (int i = k + 1; i < 5; ++i) {
    positions_[i] += 1.0;
  }
  for (int i = 0; i < 5; ++i) {
    desired_[i] += desired_increment_[i];
  }
  ++count_;

  // Adjust interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const bool move_right = d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool move_left = d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (!move_right && !move_left) {
      continue;
    }
    const double sign = move_right ? 1.0 : -1.0;
    // Piecewise-parabolic prediction of the new height.
    const double qp = heights_[i] +
                      sign / (positions_[i + 1] - positions_[i - 1]) *
                          ((positions_[i] - positions_[i - 1] + sign) *
                               (heights_[i + 1] - heights_[i]) /
                               (positions_[i + 1] - positions_[i]) +
                           (positions_[i + 1] - positions_[i] - sign) *
                               (heights_[i] - heights_[i - 1]) /
                               (positions_[i] - positions_[i - 1]));
    if (heights_[i - 1] < qp && qp < heights_[i + 1]) {
      heights_[i] = qp;
    } else {
      // Fall back to linear prediction toward the neighbor.
      const int j = move_right ? i + 1 : i - 1;
      heights_[i] += sign * (heights_[j] - heights_[i]) / (positions_[j] - positions_[i]);
    }
    positions_[i] += sign;
  }
}

void P2Quantile::Reset() {
  count_ = 0;
  heights_.fill(0.0);
  positions_.fill(0.0);
  desired_ = {1.0, 1.0 + 2.0 * quantile_, 1.0 + 4.0 * quantile_, 3.0 + 2.0 * quantile_, 5.0};
}

void P2Quantile::SaveState(ByteWriter& out) const {
  out.Write<double>(quantile_);
  out.Write<int64_t>(count_);
  for (const double h : heights_) {
    out.Write<double>(h);
  }
  for (const double p : positions_) {
    out.Write<double>(p);
  }
  for (const double d : desired_) {
    out.Write<double>(d);
  }
}

bool P2Quantile::LoadState(ByteReader& in) {
  const double quantile = in.Read<double>();
  const int64_t count = in.Read<int64_t>();
  std::array<double, 5> heights;
  std::array<double, 5> positions;
  std::array<double, 5> desired;
  for (double& h : heights) {
    h = in.Read<double>();
  }
  for (double& p : positions) {
    p = in.Read<double>();
  }
  for (double& d : desired) {
    d = in.Read<double>();
  }
  bool valid = in.ok() && quantile == quantile_ && count >= 0;
  for (int i = 0; valid && i < 5; ++i) {
    valid = std::isfinite(heights[i]) && std::isfinite(positions[i]) && std::isfinite(desired[i]);
  }
  if (valid && count >= 5) {
    // Past the warm-up buffer the markers are ordered: heights non-decreasing,
    // positions strictly increasing from 1 with the last marker at `count`.
    for (int i = 1; i < 5; ++i) {
      valid = valid && heights[i] >= heights[i - 1] && positions[i] > positions[i - 1];
    }
    valid = valid && positions[0] == 1.0 && positions[4] == static_cast<double>(count);
  }
  if (!valid) {
    in.Fail();
    return false;
  }
  count_ = count;
  heights_ = heights;
  positions_ = positions;
  desired_ = desired;
  return true;
}

double P2Quantile::Value() const {
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ < 5) {
    // Exact from the (unsorted) buffer of up to 4 values.
    std::array<double, 5> copy = heights_;
    std::sort(copy.begin(), copy.begin() + count_);
    const double rank = quantile_ * static_cast<double>(count_ - 1);
    const int lo = static_cast<int>(rank);
    const int hi = std::min<int>(lo + 1, static_cast<int>(count_) - 1);
    const double frac = rank - lo;
    return copy[lo] + frac * (copy[hi] - copy[lo]);
  }
  return heights_[2];
}

}  // namespace crf
