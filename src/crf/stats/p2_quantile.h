// P² (piecewise-parabolic) streaming quantile estimator, Jain & Chlamtac 1985.
//
// The cluster simulator tracks per-machine tail CPU scheduling latency over a
// month of 5-minute intervals; P² gives the p99/p90 estimate in O(1) memory
// per machine instead of buffering every latency sample, mirroring how a node
// agent would track its own tail latency.

#ifndef CRF_STATS_P2_QUANTILE_H_
#define CRF_STATS_P2_QUANTILE_H_

#include <array>
#include <cstdint>

namespace crf {

class ByteReader;
class ByteWriter;

class P2Quantile {
 public:
  // quantile in (0, 1), e.g. 0.99 for the 99th percentile.
  explicit P2Quantile(double quantile);

  void Add(double value);

  // Current estimate. Exact until 5 samples have been seen (it falls back to
  // the sorted buffer); undefined (0) with no samples.
  double Value() const;

  int64_t count() const { return count_; }

  // Discards all samples, keeping the target quantile.
  void Reset();

  // Checkpoint support (crf/serve): serializes the complete marker state so
  // a restored estimator continues bit-identically to the uninterrupted one.
  // LoadState validates the stored target quantile against this instance's
  // and every structural invariant of the marker arrays; it returns false
  // (latching the reader's failure flag) on any mismatch.
  void SaveState(ByteWriter& out) const;
  bool LoadState(ByteReader& in);

 private:
  double quantile_;
  int64_t count_ = 0;
  // Marker heights, positions, and desired positions per the P² paper.
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> desired_increment_{};
};

}  // namespace crf

#endif  // CRF_STATS_P2_QUANTILE_H_
