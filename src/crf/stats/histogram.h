// Fixed-width bucketed histogram with per-bucket statistics.
//
// Used for the Fig 3(d)-style error-bar plot: machines are grouped into
// violation-rate buckets of width 0.005, and the mean/std of tail latency is
// reported per bucket.

#ifndef CRF_STATS_HISTOGRAM_H_
#define CRF_STATS_HISTOGRAM_H_

#include <vector>

#include "crf/stats/running_stats.h"

namespace crf {

class BucketedStats {
 public:
  // Buckets are (lo + i*width, lo + (i+1)*width]; values at or below lo fall
  // in bucket 0, values above lo + num_buckets*width are clamped to the last.
  BucketedStats(double lo, double width, int num_buckets);

  // Adds an observation of `value` keyed by `key` (key selects the bucket).
  void Add(double key, double value);

  // Merges another histogram with identical geometry (lo, width, bucket
  // count) into this one — the parallel-reduction counterpart of Add, used
  // to combine per-shard latency histograms.
  void Merge(const BucketedStats& other);

  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  double bucket_center(int i) const;
  double bucket_lower(int i) const;
  const RunningStats& bucket(int i) const;

  // Index of the first bucket (scanning up) with fewer than `min_count`
  // observations, or num_buckets() if all are populated. The paper limits the
  // Fig 3(d) x-axis to "the first bucket containing less than 50 machines".
  int FirstSparseBucket(int64_t min_count) const;

 private:
  double lo_;
  double width_;
  std::vector<RunningStats> buckets_;
};

}  // namespace crf

#endif  // CRF_STATS_HISTOGRAM_H_
