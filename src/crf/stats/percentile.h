// Exact percentiles over sample vectors.

#ifndef CRF_STATS_PERCENTILE_H_
#define CRF_STATS_PERCENTILE_H_

#include <span>
#include <vector>

namespace crf {

// Returns the p-th percentile (p in [0, 100]) of `sorted`, which must be
// sorted ascending. Linear interpolation between closest ranks (the same
// definition NumPy uses by default). Requires a non-empty span.
double PercentileSorted(std::span<const double> sorted, double p);

// Copies, sorts, and evaluates. Requires non-empty input.
double Percentile(std::span<const double> values, double p);

// Evaluates several percentiles with a single sort.
std::vector<double> Percentiles(std::span<const double> values, std::span<const double> ps);

// In-place nth_element-based percentile (no interpolation, nearest-rank,
// O(n)); used on hot paths where a full sort is wasteful. Reorders `values`.
double NearestRankPercentileInPlace(std::span<double> values, double p);

}  // namespace crf

#endif  // CRF_STATS_PERCENTILE_H_
