#include "crf/stats/running_stats.h"

#include <algorithm>
#include <cmath>

namespace crf {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(total);
  mean_ += delta * nb / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sample_variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double RunningStats::sum() const { return mean_ * static_cast<double>(count_); }

}  // namespace crf
