// Pearson / Spearman correlation and least-squares line fitting.
//
// Section 3.3 of the paper quantifies the violation-rate -> CPU-scheduling-
// latency link with Spearman's rank correlation (0.42 raw, 0.95 bucketed) and
// the slope of a fitted line (14.1). These are the tools that reproduce it.

#ifndef CRF_STATS_CORRELATION_H_
#define CRF_STATS_CORRELATION_H_

#include <span>
#include <vector>

namespace crf {

// Pearson product-moment correlation. Returns 0 when either side is
// degenerate (fewer than 2 points or zero variance).
double PearsonCorrelation(std::span<const double> x, std::span<const double> y);

// Spearman rank correlation: Pearson over fractional ranks (ties averaged).
double SpearmanCorrelation(std::span<const double> x, std::span<const double> y);

// Fractional ranks in [1, n], ties receive the average of their positions.
std::vector<double> FractionalRanks(std::span<const double> values);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

// Ordinary least squares y = slope*x + intercept.
LinearFit FitLine(std::span<const double> x, std::span<const double> y);

}  // namespace crf

#endif  // CRF_STATS_CORRELATION_H_
