// Sliding-window maximum via a monotonic deque.
//
// The peak oracle is a windowed maximum of an aggregate usage series; this
// gives the O(1) amortized primitive. Header-only for inlining on the oracle
// hot path.

#ifndef CRF_STATS_WINDOW_MAX_H_
#define CRF_STATS_WINDOW_MAX_H_

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "crf/util/check.h"

namespace crf {

// Maintains max over a set of (index, value) pairs where indices are pushed
// in nondecreasing order and expired from the front.
class MonotonicMaxDeque {
 public:
  // Pushes (index, value); indices must be nondecreasing across pushes.
  void Push(int64_t index, double value) {
    while (!deque_.empty() && deque_.back().value <= value) {
      deque_.pop_back();
    }
    deque_.push_back({index, value});
  }

  // Drops entries with index < min_index.
  void ExpireBelow(int64_t min_index) {
    while (!deque_.empty() && deque_.front().index < min_index) {
      deque_.pop_front();
    }
  }

  bool empty() const { return deque_.empty(); }

  double Max() const {
    CRF_CHECK(!deque_.empty());
    return deque_.front().value;
  }

  void Clear() { deque_.clear(); }

 private:
  struct Entry {
    int64_t index;
    double value;
  };
  std::deque<Entry> deque_;
};

// Computes out[i] = max(values[i .. min(i+window-1, n-1)]) for each i — the
// forward-looking windowed maximum used by the peak oracle — reusing the
// caller's deque and output buffer (no allocations once both have grown to
// the high-water size). window >= 1.
inline void ForwardWindowMaxInto(std::span<const double> values, int64_t window,
                                 MonotonicMaxDeque& deque, std::vector<double>& out) {
  CRF_CHECK_GE(window, 1);
  const int64_t n = static_cast<int64_t>(values.size());
  out.resize(values.size());
  deque.Clear();
  // Sweep i from the back; the window [i, i+window-1] gains values[i] and
  // loses indices beyond i+window-1.
  for (int64_t i = n - 1; i >= 0; --i) {
    // Indices are pushed in decreasing order here, so flip the sign to keep
    // the deque's nondecreasing-index contract, expiring the largest ones.
    deque.Push(-i, values[i]);
    deque.ExpireBelow(-(i + window - 1));
    out[i] = deque.Max();
  }
}

// Allocating convenience wrapper around ForwardWindowMaxInto.
inline std::vector<double> ForwardWindowMax(std::span<const double> values, int64_t window) {
  std::vector<double> out;
  MonotonicMaxDeque deque;
  ForwardWindowMaxInto(values, window, deque, out);
  return out;
}

}  // namespace crf

#endif  // CRF_STATS_WINDOW_MAX_H_
