#include "crf/stats/ecdf.h"

#include <algorithm>

#include "crf/stats/percentile.h"
#include "crf/util/check.h"
#include "crf/util/csv.h"

namespace crf {

Ecdf::Ecdf(std::vector<double> samples) : samples_(std::move(samples)), sorted_(false) {}

void Ecdf::Add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void Ecdf::Seal() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Ecdf::Evaluate(double x) const {
  if (samples_.empty()) {
    return 0.0;
  }
  Seal();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double Ecdf::Quantile(double q) const {
  CRF_CHECK(!samples_.empty());
  CRF_CHECK_GE(q, 0.0);
  CRF_CHECK_LE(q, 1.0);
  Seal();
  return PercentileSorted(samples_, q * 100.0);
}

double Ecdf::min() const {
  CRF_CHECK(!samples_.empty());
  Seal();
  return samples_.front();
}

double Ecdf::max() const {
  CRF_CHECK(!samples_.empty());
  Seal();
  return samples_.back();
}

double Ecdf::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

std::vector<Ecdf::Point> Ecdf::CurvePoints(int num_points) const {
  CRF_CHECK_GE(num_points, 2);
  std::vector<Point> points;
  if (samples_.empty()) {
    return points;
  }
  Seal();
  points.reserve(num_points);
  for (int i = 0; i < num_points; ++i) {
    const double q = static_cast<double>(i) / (num_points - 1);
    points.push_back({Quantile(q), q});
  }
  return points;
}

const std::vector<double>& Ecdf::sorted_samples() const {
  Seal();
  return samples_;
}

void WriteCdfsCsv(const std::string& path,
                  const std::vector<std::pair<std::string, const Ecdf*>>& series,
                  int num_points) {
  CsvWriter writer(path, {"series", "x", "probability"});
  for (const auto& [name, ecdf] : series) {
    for (const auto& point : ecdf->CurvePoints(num_points)) {
      writer.WriteRow({name, FormatDouble(point.x), FormatDouble(point.probability)});
    }
  }
}

}  // namespace crf
