#include "crf/stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "crf/util/check.h"

namespace crf {

BucketedStats::BucketedStats(double lo, double width, int num_buckets)
    : lo_(lo), width_(width), buckets_(num_buckets) {
  CRF_CHECK_GT(width, 0.0);
  CRF_CHECK_GT(num_buckets, 0);
}

void BucketedStats::Add(double key, double value) {
  int index = static_cast<int>(std::ceil((key - lo_) / width_)) - 1;
  index = std::clamp(index, 0, num_buckets() - 1);
  buckets_[index].Add(value);
}

void BucketedStats::Merge(const BucketedStats& other) {
  CRF_CHECK_EQ(lo_, other.lo_);
  CRF_CHECK_EQ(width_, other.width_);
  CRF_CHECK_EQ(num_buckets(), other.num_buckets());
  for (int i = 0; i < num_buckets(); ++i) {
    buckets_[i].Merge(other.buckets_[i]);
  }
}

double BucketedStats::bucket_center(int i) const {
  CRF_CHECK_GE(i, 0);
  CRF_CHECK_LT(i, num_buckets());
  return lo_ + (i + 0.5) * width_;
}

double BucketedStats::bucket_lower(int i) const {
  CRF_CHECK_GE(i, 0);
  CRF_CHECK_LT(i, num_buckets());
  return lo_ + i * width_;
}

const RunningStats& BucketedStats::bucket(int i) const {
  CRF_CHECK_GE(i, 0);
  CRF_CHECK_LT(i, num_buckets());
  return buckets_[i];
}

int BucketedStats::FirstSparseBucket(int64_t min_count) const {
  for (int i = 0; i < num_buckets(); ++i) {
    if (buckets_[i].count() < min_count) {
      return i;
    }
  }
  return num_buckets();
}

}  // namespace crf
