// Streaming mean/variance/min/max via Welford's algorithm, with merge.
//
// Used by the N-sigma predictor (mean + N*std of the machine aggregate) and
// by metric accumulators. Numerically stable for long streams.

#ifndef CRF_STATS_RUNNING_STATS_H_
#define CRF_STATS_RUNNING_STATS_H_

#include <cstdint>

namespace crf {

class RunningStats {
 public:
  void Add(double value);

  // Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  // Mean of the values added so far; 0 when empty.
  double mean() const;
  // Population variance / stddev (divide by n); 0 when fewer than 2 values.
  double variance() const;
  double stddev() const;
  // Sample variance (divide by n-1); 0 when fewer than 2 values.
  double sample_variance() const;
  double min() const;
  double max() const;
  double sum() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace crf

#endif  // CRF_STATS_RUNNING_STATS_H_
