#include "crf/stats/percentile.h"

#include <algorithm>
#include <cmath>

#include "crf/util/check.h"

namespace crf {

double PercentileSorted(std::span<const double> sorted, double p) {
  CRF_CHECK(!sorted.empty());
  CRF_CHECK_GE(p, 0.0);
  CRF_CHECK_LE(p, 100.0);
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Percentile(std::span<const double> values, double p) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return PercentileSorted(copy, p);
}

std::vector<double> Percentiles(std::span<const double> values, std::span<const double> ps) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (const double p : ps) {
    out.push_back(PercentileSorted(copy, p));
  }
  return out;
}

double NearestRankPercentileInPlace(std::span<double> values, double p) {
  CRF_CHECK(!values.empty());
  CRF_CHECK_GE(p, 0.0);
  CRF_CHECK_LE(p, 100.0);
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t index = static_cast<size_t>(std::llround(rank));
  std::nth_element(values.begin(), values.begin() + index, values.end());
  return values[index];
}

}  // namespace crf
