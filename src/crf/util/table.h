// Aligned console tables for bench output. Each bench prints the series a
// paper figure plots as a human-readable table (and also writes CSV).

#ifndef CRF_UTIL_TABLE_H_
#define CRF_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace crf {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> fields);
  // Convenience: formats doubles with %.4g.
  void AddRow(const std::string& label, const std::vector<double>& values);

  // Renders with padded columns, a separator under the header.
  std::string Render() const;
  // Renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner (used to delimit figures in bench output).
void PrintBanner(const std::string& title);

}  // namespace crf

#endif  // CRF_UTIL_TABLE_H_
