// Deterministic, splittable random number generation.
//
// Every stochastic component takes an explicit Rng. Streams are derived from
// a root seed with Fork(tag), so that e.g. each simulated machine gets an
// independent stream whose output does not depend on the order in which other
// machines are simulated. The generator is xoshiro256++ seeded via SplitMix64
// — fast, high quality, and fully reproducible across platforms (unlike
// std::normal_distribution, whose output is implementation-defined; all
// distributions here are implemented from scratch).

#ifndef CRF_UTIL_RNG_H_
#define CRF_UTIL_RNG_H_

#include <array>
#include <cstdint>

namespace crf {

// SplitMix64 step; used for seeding and for hashing stream tags.
uint64_t SplitMix64(uint64_t& state);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Returns a generator whose stream is a pure function of (this seed, tag):
  // forking with the same tag twice yields identical streams, and streams
  // with different tags are statistically independent.
  Rng Fork(uint64_t tag) const;

  // Uniform on [0, 2^64).
  uint64_t NextUint64();

  // Uniform on [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // Uniform on [0, 1).
  double UniformDouble();

  // Uniform on [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Box-Muller (deterministic, no cached spare).
  double Normal();
  double Normal(double mean, double stddev);

  // exp(Normal(mu, sigma)): log-normal with the given log-space parameters.
  double LogNormal(double mu, double sigma);

  // Exponential with the given mean. Requires mean > 0.
  double Exponential(double mean);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64).
  int Poisson(double mean);

  // Bounded Pareto on [lo, hi] with shape alpha (heavy-tailed runtimes).
  double BoundedPareto(double lo, double hi, double alpha);

  // Gamma(shape, 1) via Marsaglia-Tsang. Requires shape > 0.
  double Gamma(double shape);

  // Beta(a, b) on (0, 1) via two Gamma draws. Requires a, b > 0.
  double Beta(double a, double b);

  // Geometric number of trials until first success (support {1, 2, ...})
  // with success probability p in (0, 1]; mean 1/p.
  int Geometric(double p);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  uint64_t seed() const { return seed_; }

 private:
  Rng(uint64_t seed, std::array<uint64_t, 4> state);

  uint64_t seed_;
  std::array<uint64_t, 4> state_;
};

}  // namespace crf

#endif  // CRF_UTIL_RNG_H_
