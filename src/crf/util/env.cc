#include "crf/util/env.h"

#include <algorithm>
#include <cstdlib>

namespace crf {

double GetEnvDouble(const std::string& name, double default_value) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') {
    return default_value;
  }
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  return end == raw ? default_value : value;
}

int64_t GetEnvInt(const std::string& name, int64_t default_value) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') {
    return default_value;
  }
  char* end = nullptr;
  const int64_t value = std::strtoll(raw, &end, 10);
  return end == raw ? default_value : value;
}

std::string GetEnvString(const std::string& name, const std::string& default_value) {
  const char* raw = std::getenv(name.c_str());
  return (raw == nullptr || *raw == '\0') ? default_value : std::string(raw);
}

double BenchScale() { return std::max(0.01, GetEnvDouble("REPRO_SCALE", 1.0)); }

uint64_t BenchSeed() { return static_cast<uint64_t>(GetEnvInt("REPRO_SEED", 42)); }

std::string BenchOutputDir() { return GetEnvString("REPRO_OUT", "bench_out"); }

int ScaledCount(int base_count, int min_count) {
  const double scaled = base_count * BenchScale();
  return std::max(min_count, static_cast<int>(scaled + 0.5));
}

}  // namespace crf
