#include "crf/util/rss.h"

#include <sys/resource.h>

#include <cstdio>
#include <cstring>

namespace crf {
namespace {

// Parses a "/proc/self/status" line of the form "VmHWM:   123456 kB".
int64_t ReadStatusField(const char* field) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) {
    return 0;
  }
  const size_t field_len = std::strlen(field);
  char line[256];
  int64_t kb = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      std::sscanf(line + field_len + 1, "%ld", &kb);
      break;
    }
  }
  std::fclose(file);
  return kb * 1024;
}

}  // namespace

int64_t ReadPeakRssBytes() {
  const int64_t hwm = ReadStatusField("VmHWM");
  if (hwm > 0) {
    return hwm;
  }
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // ru_maxrss is in kB on Linux
}

int64_t ReadCurrentRssBytes() { return ReadStatusField("VmRSS"); }

int64_t ReadMappedFileRssBytes(const std::string& path) {
  std::FILE* file = std::fopen("/proc/self/smaps", "r");
  if (file == nullptr) {
    return 0;
  }
  char line[512];
  int64_t total = 0;
  bool in_target = false;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    const char c = line[0];
    const bool is_vma_header = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (is_vma_header) {
      // "addr-addr perms offset dev inode      /path/to/file\n"
      size_t len = std::strlen(line);
      while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == ' ')) {
        line[--len] = '\0';
      }
      in_target = len >= path.size() &&
                  std::strcmp(line + len - path.size(), path.c_str()) == 0 &&
                  (len == path.size() || line[len - path.size() - 1] == ' ');
    } else if (in_target && std::strncmp(line, "Rss:", 4) == 0) {
      int64_t kb = 0;
      std::sscanf(line + 4, "%ld", &kb);
      total += kb * 1024;
    }
  }
  std::fclose(file);
  return total;
}

bool ResetPeakRss() {
  std::FILE* file = std::fopen("/proc/self/clear_refs", "w");
  if (file == nullptr) {
    return false;
  }
  // "5" resets the peak-RSS watermark only (Documentation/filesystems/proc).
  const bool ok = std::fputs("5", file) >= 0;
  return std::fclose(file) == 0 && ok;
}

}  // namespace crf
