// Lightweight CHECK macros in the style of production systems code.
//
// A failed check prints the condition, the source location and an optional
// streamed message, then aborts. These are for programming errors and broken
// invariants, not for recoverable conditions; they stay enabled in all build
// modes so that simulation results are never silently produced from a state
// that violates an invariant.

#ifndef CRF_UTIL_CHECK_H_
#define CRF_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace crf {
namespace internal {

// Collects the streamed message and aborts in the destructor. Keeping the
// abort out of line keeps the macro expansion small.
class CheckFailure {
 public:
  CheckFailure(const char* condition, const char* file, int line);
  [[noreturn]] ~CheckFailure();

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace crf

#define CRF_CHECK(condition)                                        \
  if (condition) {                                                  \
  } else /* NOLINT */                                               \
    ::crf::internal::CheckFailure(#condition, __FILE__, __LINE__)

#define CRF_CHECK_EQ(a, b) CRF_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define CRF_CHECK_NE(a, b) CRF_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define CRF_CHECK_LT(a, b) CRF_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define CRF_CHECK_LE(a, b) CRF_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define CRF_CHECK_GT(a, b) CRF_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define CRF_CHECK_GE(a, b) CRF_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // CRF_UTIL_CHECK_H_
