#include "crf/util/arg_parse.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace crf {
namespace {

std::string Quoted(const std::string& text) { return "\"" + text + "\""; }

// Validates a numeric IPv4 dotted quad without pulling socket headers into
// crf_util: four base-10 octets in [0, 255], no empty or oversized parts.
bool IsNumericIpv4(const std::string& host) {
  int octets = 0;
  int value = 0;
  int digits = 0;
  for (size_t i = 0; i <= host.size(); ++i) {
    const char c = i < host.size() ? host[i] : '.';
    if (c == '.') {
      if (digits == 0 || value > 255) {
        return false;
      }
      ++octets;
      value = 0;
      digits = 0;
    } else if (c >= '0' && c <= '9') {
      if (++digits > 3) {
        return false;
      }
      value = value * 10 + (c - '0');
    } else {
      return false;
    }
  }
  return octets == 4;
}

}  // namespace

bool ParseIntFlag(const std::string& flag, const std::string& text, int64_t min_value,
                  int64_t max_value, int64_t* value, std::string* error) {
  if (text.empty()) {
    *error = "--" + flag + " value must not be empty";
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    *error = "--" + flag + " value " + Quoted(text) + " is not an integer";
    return false;
  }
  if (parsed < min_value || parsed > max_value) {
    *error = "--" + flag + " value " + Quoted(text) + " must be in [" +
             std::to_string(min_value) + ", " + std::to_string(max_value) + "]";
    return false;
  }
  *value = parsed;
  return true;
}

bool ParseDoubleFlag(const std::string& flag, const std::string& text, double min_value,
                     double max_value, double* value, std::string* error) {
  if (text.empty()) {
    *error = "--" + flag + " value must not be empty";
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE || !std::isfinite(parsed)) {
    *error = "--" + flag + " value " + Quoted(text) + " is not a finite number";
    return false;
  }
  if (parsed < min_value || parsed > max_value) {
    *error = "--" + flag + " value " + Quoted(text) + " must be in [" +
             std::to_string(min_value) + ", " + std::to_string(max_value) + "]";
    return false;
  }
  *value = parsed;
  return true;
}

bool ParseHostPortFlag(const std::string& flag, const std::string& text, HostPort* value,
                       std::string* error) {
  if (text.empty()) {
    *error = "--" + flag + " value must not be empty";
    return false;
  }
  const size_t colon = text.rfind(':');
  std::string host = colon == std::string::npos ? "" : text.substr(0, colon);
  const std::string port_text = colon == std::string::npos ? text : text.substr(colon + 1);
  if (!host.empty() && !IsNumericIpv4(host)) {
    *error = "--" + flag + " host " + Quoted(host) + " is not a numeric IPv4 address";
    return false;
  }
  int64_t port = 0;
  std::string port_error;
  if (!ParseIntFlag(flag, port_text, 0, 65535, &port, &port_error)) {
    *error = "--" + flag + " port " + Quoted(port_text) +
             " must be an integer in [0, 65535]";
    return false;
  }
  if (!host.empty()) {
    value->host = host;
  }
  value->port = static_cast<int>(port);
  return true;
}

}  // namespace crf
