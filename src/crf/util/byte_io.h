// Bounds-checked binary serialization primitives for checkpoint payloads.
//
// ByteWriter appends little-endian POD values and length-prefixed vectors to
// a growable buffer; ByteReader walks the same encoding with every read
// bounds-checked. A reader never throws or aborts on malformed input — it
// latches a failure flag and returns zeros, so callers can decode untrusted
// bytes (a truncated or bit-flipped checkpoint) and reject them with one
// ok() check at the end. Length prefixes are validated against an explicit
// element cap before any allocation, so a corrupted length cannot trigger a
// multi-gigabyte resize.

#ifndef CRF_UTIL_BYTE_IO_H_
#define CRF_UTIL_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

namespace crf {

class ByteWriter {
 public:
  // Appends the raw little-endian bytes of a trivially copyable scalar.
  template <typename T>
  void Write(T value) {
    static_assert(std::is_trivially_copyable_v<T> && !std::is_pointer_v<T>);
    const size_t offset = bytes_.size();
    bytes_.resize(offset + sizeof(T));
    std::memcpy(bytes_.data() + offset, &value, sizeof(T));
  }

  // Appends a u64 element count followed by the elements.
  template <typename T>
  void WriteVec(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T> && !std::is_pointer_v<T>);
    Write<uint64_t>(values.size());
    const size_t offset = bytes_.size();
    bytes_.resize(offset + values.size() * sizeof(T));
    if (!values.empty()) {
      std::memcpy(bytes_.data() + offset, values.data(), values.size() * sizeof(T));
    }
  }
  template <typename T>
  void WriteVec(const std::vector<T>& values) {
    WriteVec(std::span<const T>(values));
  }

  void WriteBytes(const void* data, size_t size) {
    const size_t offset = bytes_.size();
    bytes_.resize(offset + size);
    if (size > 0) {
      std::memcpy(bytes_.data() + offset, data, size);
    }
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  size_t size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  // Reads one scalar; on underflow latches failure and returns T{}.
  template <typename T>
  T Read() {
    static_assert(std::is_trivially_copyable_v<T> && !std::is_pointer_v<T>);
    T value{};
    if (!ok_ || bytes_.size() - position_ < sizeof(T)) {
      ok_ = false;
      return value;
    }
    std::memcpy(&value, bytes_.data() + position_, sizeof(T));
    position_ += sizeof(T);
    return value;
  }

  // Reads a length-prefixed vector. Fails (without allocating) if the
  // declared element count exceeds `max_elements` or the remaining bytes.
  template <typename T>
  bool ReadVec(std::vector<T>& out, uint64_t max_elements) {
    static_assert(std::is_trivially_copyable_v<T> && !std::is_pointer_v<T>);
    const uint64_t count = Read<uint64_t>();
    if (!ok_ || count > max_elements || bytes_.size() - position_ < count * sizeof(T)) {
      ok_ = false;
      return false;
    }
    out.resize(count);
    if (count > 0) {
      std::memcpy(out.data(), bytes_.data() + position_, count * sizeof(T));
    }
    position_ += count * sizeof(T);
    return true;
  }

  bool ReadBytes(void* out, size_t size) {
    if (!ok_ || bytes_.size() - position_ < size) {
      ok_ = false;
      return false;
    }
    if (size > 0) {
      std::memcpy(out, bytes_.data() + position_, size);
    }
    position_ += size;
    return true;
  }

  // Marks the stream as failed (a caller-side validation failed; further
  // reads return zeros).
  void Fail() { ok_ = false; }

  bool ok() const { return ok_; }
  bool AtEnd() const { return position_ == bytes_.size(); }
  size_t position() const { return position_; }
  size_t remaining() const { return bytes_.size() - position_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t position_ = 0;
  bool ok_ = true;
};

// FNV-1a 64-bit hash, used as the checkpoint payload integrity check.
uint64_t Fnv1a64(std::span<const uint8_t> bytes);

}  // namespace crf

#endif  // CRF_UTIL_BYTE_IO_H_
