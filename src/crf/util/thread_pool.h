// A small fixed-size thread pool with a ParallelFor helper.
//
// Machines are simulated independently (paper Section 5.1.1), so the
// simulator shards machines across the pool. On single-core hosts the pool
// degenerates to inline execution with no thread overhead.

#ifndef CRF_UTIL_THREAD_POOL_H_
#define CRF_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace crf {

class ThreadPool {
 public:
  // num_threads <= 1 means run everything inline on the calling thread.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs fn(i) for i in [0, count), blocking until all iterations finish.
  // fn must be safe to call concurrently for distinct i.
  void ParallelFor(int count, const std::function<void(int)>& fn);

  // Runs fn(slot, i) for i in [0, count). `slot` identifies the executing
  // thread and is stable for the duration of the call: distinct concurrent
  // iterations always see distinct slots in [0, num_threads()). Lets callers
  // keep per-thread partial accumulators and reduce once after the join,
  // instead of merging every iteration's contribution under a lock.
  void ParallelForIndexed(int count, const std::function<void(int, int)>& fn);

  // ParallelForIndexed, but each work-stealing claim takes a contiguous
  // block of `block` iterations instead of one. For fine-grained bodies
  // driven from a hot outer loop (the cluster simulator steps every machine
  // every interval), this cuts the shared-counter traffic by `block`x and
  // gives each thread cache-adjacent iterations.
  void ParallelForIndexedBlocked(int count, int block,
                                 const std::function<void(int, int)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // A pool sized to the hardware (hardware_concurrency, at least 1).
  static ThreadPool& Default();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace crf

#endif  // CRF_UTIL_THREAD_POOL_H_
