// A small fixed-size thread pool with ParallelFor helpers.
//
// Machines are simulated independently (paper Section 5.1.1), so the
// simulator shards machines across the pool. On single-core hosts the pool
// degenerates to inline execution with no thread overhead.
//
// Dispatch model (DESIGN.md §8): workers are persistent and a parallel loop
// is published as a single epoch — a function pointer + context pointer plus
// a cache-line-padded atomic claim cursor. Nothing is heap-allocated per
// call or per claim: there is no task queue, no std::function copies, no
// shared_ptr control blocks. Workers claim contiguous blocks of iterations
// from the cursor with one relaxed fetch_add per block, so shared-counter
// traffic scales with count/block, not with count.
//
// Exception contract (pinned by thread_pool_test): if the loop body throws,
// the first exception is captured, remaining unclaimed blocks are abandoned,
// and the exception is rethrown on the calling thread after the join. The
// pool stays usable. Iterations already claimed by other workers still run.

#ifndef CRF_UTIL_THREAD_POOL_H_
#define CRF_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace crf {

class ThreadPool {
 public:
  // num_threads <= 1 means run everything inline on the calling thread.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs fn(i) for i in [0, count), blocking until all iterations finish.
  // fn must be safe to call concurrently for distinct i.
  void ParallelFor(int count, const std::function<void(int)>& fn);

  // Runs fn(slot, i) for i in [0, count). `slot` identifies the executing
  // thread and is stable for the duration of the call: distinct concurrent
  // iterations always see distinct slots in [0, num_threads()). Lets callers
  // keep per-thread partial accumulators and reduce once after the join,
  // instead of merging every iteration's contribution under a lock.
  void ParallelForIndexed(int count, const std::function<void(int, int)>& fn);

  // ParallelForIndexed, but each claim takes a contiguous block of `block`
  // iterations instead of one. For fine-grained bodies driven from a hot
  // outer loop (the cluster simulator steps every machine every interval),
  // this cuts the shared-counter traffic by `block`x and gives each thread
  // cache-adjacent iterations.
  void ParallelForIndexedBlocked(int count, int block,
                                 const std::function<void(int, int)>& fn);

  // The zero-overhead primitive the other entry points reduce to: fn is any
  // callable fn(slot, begin, end) invoked once per claimed block with a
  // contiguous index range [begin, end). The callable is passed by pointer
  // through a captureless trampoline — no std::function, no allocation — and
  // the inner loop over the range lives in the caller where the compiler can
  // vectorize it against concrete types.
  template <typename F>
  void ParallelForRanges(int count, int block, F&& fn) {
    using Fn = std::remove_reference_t<F>;
    RunLoop(count, block,
            [](void* ctx, int slot, int begin, int end) {
              (*static_cast<Fn*>(ctx))(slot, begin, end);
            },
            const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // A pool sized to the hardware (hardware_concurrency, at least 1).
  static ThreadPool& Default();

 private:
  // One published loop: invoke(ctx, slot, begin, end) over claimed ranges.
  using LoopFn = void (*)(void* ctx, int slot, int begin, int end);

  void RunLoop(int count, int block, LoopFn fn, void* ctx);
  void Drain(int slot);
  void WorkerLoop(int slot);

  // Epoch publication (guarded by mutex_). Loop descriptor fields are
  // written before the epoch bump and read by workers after they observe the
  // new epoch under the same mutex, so no atomics are needed on them.
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  uint64_t epoch_ = 0;
  int workers_pending_ = 0;
  bool shutting_down_ = false;
  LoopFn loop_fn_ = nullptr;
  void* loop_ctx_ = nullptr;
  int loop_count_ = 0;
  int loop_block_ = 1;

  // The claim cursor lives alone on its cache line: it is the only word the
  // workers contend on during a loop, and padding keeps that contention from
  // invalidating the (read-only) descriptor fields around it.
  alignas(64) std::atomic<int> cursor_{0};

  // First exception thrown by a loop body this epoch (guarded by
  // error_mutex_; rethrown by RunLoop after the join).
  std::mutex error_mutex_;
  std::exception_ptr error_;

  alignas(64) std::vector<std::thread> workers_;
};

}  // namespace crf

#endif  // CRF_UTIL_THREAD_POOL_H_
