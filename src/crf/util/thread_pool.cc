#include "crf/util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "crf/util/check.h"

namespace crf {
namespace {

// Identifies the pool worker running on this thread; slot 0 is reserved for
// the thread that called ParallelForIndexed (non-reentrant, so within one
// call the caller is unique and cannot collide with a worker slot).
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  int slot = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int workers = std::max(0, num_threads - 1);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] {
      tls_worker = {this, i + 1};
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) {
          return;
        }
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        work_done_.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  ParallelForIndexed(count, [&fn](int /*slot*/, int i) { fn(i); });
}

void ThreadPool::ParallelForIndexed(int count, const std::function<void(int, int)>& fn) {
  ParallelForIndexedBlocked(count, 1, fn);
}

void ThreadPool::ParallelForIndexedBlocked(int count, int block,
                                           const std::function<void(int, int)>& fn) {
  CRF_CHECK_GE(count, 0);
  CRF_CHECK_GT(block, 0);
  if (count == 0) {
    return;
  }
  if (workers_.empty()) {
    for (int i = 0; i < count; ++i) {
      fn(0, i);
    }
    return;
  }

  // Work stealing via a shared atomic index: each enqueued task drains
  // blocks of iterations until the index runs out. One task per worker plus
  // the calling thread participating keeps the queue small regardless of
  // `count`. The executing thread's slot comes from thread-local identity,
  // so a worker that picks up several drain tasks keeps one stable slot.
  auto next = std::make_shared<std::atomic<int>>(0);
  auto drain = [this, next, count, block, fn] {
    const int slot = tls_worker.pool == this ? tls_worker.slot : 0;
    for (;;) {
      const int begin = next->fetch_add(block, std::memory_order_relaxed);
      if (begin >= count) {
        return;
      }
      const int end = std::min(begin + block, count);
      for (int i = begin; i < end; ++i) {
        fn(slot, i);
      }
    }
  };

  const int num_blocks = (count + block - 1) / block;
  const int tasks = static_cast<int>(std::min<size_t>(workers_.size(), num_blocks));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CRF_CHECK_EQ(in_flight_, 0) << "ParallelFor is not reentrant";
    in_flight_ = tasks;
    for (int i = 0; i < tasks; ++i) {
      queue_.emplace_back(drain);
    }
  }
  work_available_.notify_all();
  drain();  // The calling thread helps.
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return in_flight_ == 0; });
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace crf
