#include "crf/util/thread_pool.h"

#include <algorithm>

#include "crf/util/check.h"

namespace crf {
namespace {

// Identifies the pool worker running on this thread; slot 0 is reserved for
// the thread that called RunLoop (non-reentrant, so within one call the
// caller is unique and cannot collide with a worker slot).
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  int slot = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int workers = std::max(0, num_threads - 1);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop(int slot) {
  tls_worker = {this, slot};
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this, seen_epoch] { return shutting_down_ || epoch_ != seen_epoch; });
      if (epoch_ == seen_epoch) {
        return;  // Shutdown with no new work.
      }
      seen_epoch = epoch_;
    }
    Drain(slot);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_pending_ == 0) {
        work_done_.notify_one();
      }
    }
  }
}

void ThreadPool::Drain(int slot) {
  const LoopFn fn = loop_fn_;
  void* const ctx = loop_ctx_;
  const int count = loop_count_;
  const int block = loop_block_;
  for (;;) {
    const int begin = cursor_.fetch_add(block, std::memory_order_relaxed);
    if (begin >= count) {
      return;
    }
    const int end = std::min(begin + block, count);
    try {
      fn(ctx, slot, begin, end);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mutex_);
        if (!error_) {
          error_ = std::current_exception();
        }
      }
      // Abandon unclaimed blocks: later claims (including other workers'
      // next fetch_add) land past `count` and drain out.
      cursor_.store(count, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  RunLoop(count, 1,
          [](void* ctx, int /*slot*/, int begin, int end) {
            const auto& f = *static_cast<const std::function<void(int)>*>(ctx);
            for (int i = begin; i < end; ++i) {
              f(i);
            }
          },
          const_cast<std::function<void(int)>*>(&fn));
}

void ThreadPool::ParallelForIndexed(int count, const std::function<void(int, int)>& fn) {
  ParallelForIndexedBlocked(count, 1, fn);
}

void ThreadPool::ParallelForIndexedBlocked(int count, int block,
                                           const std::function<void(int, int)>& fn) {
  RunLoop(count, block,
          [](void* ctx, int slot, int begin, int end) {
            const auto& f = *static_cast<const std::function<void(int, int)>*>(ctx);
            for (int i = begin; i < end; ++i) {
              f(slot, i);
            }
          },
          const_cast<std::function<void(int, int)>*>(&fn));
}

void ThreadPool::RunLoop(int count, int block, LoopFn fn, void* ctx) {
  CRF_CHECK_GE(count, 0);
  CRF_CHECK_GT(block, 0);
  if (count == 0) {
    return;
  }
  // A single block (or no workers) cannot fan out: run inline with no
  // dispatch. Exceptions propagate naturally, matching the pooled contract.
  if (workers_.empty() || count <= block) {
    for (int begin = 0; begin < count; begin += block) {
      fn(ctx, 0, begin, std::min(begin + block, count));
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    CRF_CHECK(loop_fn_ == nullptr) << "ParallelFor is not reentrant";
    loop_fn_ = fn;
    loop_ctx_ = ctx;
    loop_count_ = count;
    loop_block_ = block;
    cursor_.store(0, std::memory_order_relaxed);
    workers_pending_ = static_cast<int>(workers_.size());
    ++epoch_;
  }
  work_available_.notify_all();
  Drain(tls_worker.pool == this ? tls_worker.slot : 0);  // The caller helps.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [this] { return workers_pending_ == 0; });
    loop_fn_ = nullptr;
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    error = error_;
    error_ = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace crf
