// Environment-variable configuration shared by the bench binaries.
//
// Bench binaries run with no arguments (so that `for b in build/bench/*; do
// $b; done` works); their workload sizes are scaled through environment
// variables instead:
//
//   REPRO_SCALE  - multiplies machine counts (default 1.0). 0.25 gives a
//                  quick smoke run, 4 gives smoother CDFs.
//   REPRO_SEED   - root seed for all generated workloads (default 42).
//   REPRO_OUT    - directory for CSV output (default "bench_out").

#ifndef CRF_UTIL_ENV_H_
#define CRF_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace crf {

// Reads a double/int64/string environment variable, returning the default
// when unset or unparsable.
double GetEnvDouble(const std::string& name, double default_value);
int64_t GetEnvInt(const std::string& name, int64_t default_value);
std::string GetEnvString(const std::string& name, const std::string& default_value);

// The standard bench knobs described above.
double BenchScale();
uint64_t BenchSeed();
std::string BenchOutputDir();

// Scales a machine count by BenchScale(), with a floor of `min_count`.
int ScaledCount(int base_count, int min_count = 8);

}  // namespace crf

#endif  // CRF_UTIL_ENV_H_
