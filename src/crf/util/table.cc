#include "crf/util/table.h"

#include <algorithm>
#include <cstdio>

#include "crf/util/check.h"

namespace crf {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CRF_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> fields) {
  CRF_CHECK_EQ(fields.size(), header_.size());
  rows_.push_back(std::move(fields));
}

void Table::AddRow(const std::string& label, const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size() + 1);
  fields.push_back(label);
  char buffer[32];
  for (const double value : values) {
    std::snprintf(buffer, sizeof(buffer), "%.4g", value);
    fields.emplace_back(buffer);
  }
  AddRow(std::move(fields));
}

std::string Table::Render() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        out += "  ";
      }
      out += row[i];
      out.append(widths[i] - row[i].size(), ' ');
    }
    // Trim trailing spaces.
    while (!out.empty() && out.back() == ' ') {
      out.pop_back();
    }
    out += '\n';
  };

  append_row(header_);
  size_t total = 0;
  for (const size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    append_row(row);
  }
  return out;
}

void Table::Print() const { std::fputs(Render().c_str(), stdout); }

void PrintBanner(const std::string& title) {
  std::string line(title.size() + 4, '=');
  std::printf("\n%s\n= %s =\n%s\n", line.c_str(), title.c_str(), line.c_str());
}

}  // namespace crf
