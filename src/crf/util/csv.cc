#include "crf/util/csv.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "crf/util/check.h"

namespace crf {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : path_(path), num_columns_(header.size()) {
  CRF_CHECK_GT(num_columns_, 0u);
  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    EnsureDirectory(fs_path.parent_path().string());
  }
  out_.open(path);
  CRF_CHECK(out_.is_open()) << "cannot open " << path;
  WriteRow(header);
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  CRF_CHECK_EQ(fields.size(), num_columns_) << "row width mismatch in " << path_;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << fields[i];
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const double value : values) {
    fields.push_back(FormatDouble(value));
  }
  WriteRow(fields);
}

std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

std::vector<std::string_view> SplitCsvLine(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

bool EnsureDirectory(const std::string& dir) {
  if (dir.empty()) {
    return true;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return !ec || std::filesystem::exists(dir);
}

}  // namespace crf
