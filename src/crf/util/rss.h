// Process peak-RSS measurement for the memory-footprint benches.
//
// Peak RSS (the kernel's high-water mark of resident pages) is the honest
// metric for "did the mmap / streaming path actually avoid materializing the
// trace": current RSS dips as pages are evicted, but the high-water mark
// records the worst moment. Linux exposes it as VmHWM in /proc/self/status
// (resettable, used per-lane by the bench) with getrusage's ru_maxrss as the
// portable fallback (not resettable — only trust it for the first lane of a
// process).

#ifndef CRF_UTIL_RSS_H_
#define CRF_UTIL_RSS_H_

#include <cstdint>
#include <string>

namespace crf {

// Peak resident set size of the calling process in bytes, since process
// start or the last successful ResetPeakRss(). Returns 0 if unavailable.
int64_t ReadPeakRssBytes();

// Current resident set size in bytes (VmRSS). Returns 0 if unavailable.
int64_t ReadCurrentRssBytes();

// Resets the kernel's peak-RSS watermark to the current RSS (writes "5" to
// /proc/self/clear_refs). Returns false where unsupported; callers should
// then treat ReadPeakRssBytes() as a whole-process figure.
bool ResetPeakRss();

// Total resident bytes (the "Rss:" rows of /proc/self/smaps) across every
// mapping of the file at `path` in this process; 0 if the file is not
// mapped or smaps is unavailable. This is the precise "how much of the
// mapped trace did this process materialize" figure: mincore would count
// hot page-cache pages the process never touched, and whole-process RSS
// deltas pick up unrelated allocator churn.
int64_t ReadMappedFileRssBytes(const std::string& path);

}  // namespace crf

#endif  // CRF_UTIL_RSS_H_
