#include "crf/util/check.h"

#include <cstdio>
#include <cstdlib>

namespace crf {
namespace internal {

CheckFailure::CheckFailure(const char* condition, const char* file, int line) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << condition << " ";
}

CheckFailure::~CheckFailure() {
  const std::string message = stream_.str();
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace crf
