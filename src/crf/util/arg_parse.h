// Validated CLI flag parsing (spec_parser-style diagnostics).
//
// The CLI's original Args::GetInt fell back to the default on garbage and
// happily accepted zero or negative values for flags like --threads; these
// helpers parse strictly — the full token must be numeric and in range — and
// produce precise error messages naming the flag and the offending text.

#ifndef CRF_UTIL_ARG_PARSE_H_
#define CRF_UTIL_ARG_PARSE_H_

#include <cstdint>
#include <string>

namespace crf {

// Parses `text` as a base-10 integer in [min_value, max_value]. On failure
// returns false and sets `*error` to a message naming `flag` (written
// without dashes, e.g. "threads").
bool ParseIntFlag(const std::string& flag, const std::string& text, int64_t min_value,
                  int64_t max_value, int64_t* value, std::string* error);

// Parses `text` as a finite double in [min_value, max_value].
bool ParseDoubleFlag(const std::string& flag, const std::string& text, double min_value,
                     double max_value, double* value, std::string* error);

struct HostPort {
  std::string host = "127.0.0.1";
  int port = 0;
};

// Parses a listen/connect endpoint: "HOST:PORT", ":PORT", or "PORT", where
// HOST is a numeric IPv4 address and PORT is in [0, 65535] (0 = ephemeral).
// An omitted host defaults to 127.0.0.1.
bool ParseHostPortFlag(const std::string& flag, const std::string& text, HostPort* value,
                       std::string* error);

}  // namespace crf

#endif  // CRF_UTIL_ARG_PARSE_H_
