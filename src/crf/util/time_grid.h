// The discrete time grid shared by the whole system.
//
// Both the Google cluster trace and the paper's simulator operate on a
// 5-minute grid: task usage is reported once per 5-minute interval and the
// predictors re-publish a peak prediction at the same cadence. All series in
// this codebase are indexed by the interval number within the simulated
// period (interval 0 = trace start).

#ifndef CRF_UTIL_TIME_GRID_H_
#define CRF_UTIL_TIME_GRID_H_

#include <cstdint>

namespace crf {

// An index into the 5-minute grid.
using Interval = int32_t;

inline constexpr int kIntervalSeconds = 300;
inline constexpr Interval kIntervalsPerHour = 12;
inline constexpr Interval kIntervalsPerDay = 24 * kIntervalsPerHour;    // 288
inline constexpr Interval kIntervalsPerWeek = 7 * kIntervalsPerDay;     // 2016

// Converts a duration in hours to a number of 5-minute intervals.
constexpr Interval HoursToIntervals(double hours) {
  return static_cast<Interval>(hours * kIntervalsPerHour + 0.5);
}

// Converts a number of intervals to hours (for reporting).
constexpr double IntervalsToHours(Interval intervals) {
  return static_cast<double>(intervals) / kIntervalsPerHour;
}

}  // namespace crf

#endif  // CRF_UTIL_TIME_GRID_H_
