// Minimal CSV writing/parsing used for bench output and trace persistence.

#ifndef CRF_UTIL_CSV_H_
#define CRF_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace crf {

// Writes one CSV file. Values are formatted with enough precision to
// round-trip doubles. The writer creates parent directories as needed.
class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Aborts on I/O failure
  // (bench output paths are operator-controlled).
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  // Appends a row; the number of fields must match the header.
  void WriteRow(const std::vector<std::string>& fields);
  void WriteRow(const std::vector<double>& values);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  size_t num_columns_;
};

// Formats a double compactly but losslessly enough for analysis (%.10g).
std::string FormatDouble(double value);

// Splits one CSV line on commas. No quoting support: the formats written by
// this codebase never contain commas inside fields.
std::vector<std::string_view> SplitCsvLine(std::string_view line);

// Creates `dir` (and parents). Returns true on success or if it exists.
bool EnsureDirectory(const std::string& dir);

}  // namespace crf

#endif  // CRF_UTIL_CSV_H_
