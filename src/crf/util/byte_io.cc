#include "crf/util/byte_io.h"

namespace crf {

uint64_t Fnv1a64(std::span<const uint8_t> bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const uint8_t b : bytes) {
    hash ^= b;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace crf
