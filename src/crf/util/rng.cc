#include "crf/util/rng.h"

#include <cmath>
#include <numbers>

#include "crf/util/check.h"

namespace crf {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

std::array<uint64_t, 4> SeedState(uint64_t seed) {
  std::array<uint64_t, 4> state;
  uint64_t sm = seed;
  for (auto& word : state) {
    word = SplitMix64(sm);
  }
  return state;
}

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) : Rng(seed, SeedState(seed)) {}

Rng::Rng(uint64_t seed, std::array<uint64_t, 4> state) : seed_(seed), state_(state) {}

Rng Rng::Fork(uint64_t tag) const {
  // Mix the parent seed with the tag through two SplitMix64 rounds so that
  // consecutive tags do not produce correlated child seeds.
  uint64_t mix = seed_ ^ (tag * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  (void)SplitMix64(mix);
  const uint64_t child_seed = SplitMix64(mix);
  return Rng(child_seed);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t n) {
  CRF_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

double Rng::Normal() {
  // Box-Muller; draw u1 in (0, 1] to avoid log(0).
  const double u1 = 1.0 - UniformDouble();
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double mean) {
  CRF_CHECK_GT(mean, 0.0);
  const double u = 1.0 - UniformDouble();
  return -mean * std::log(u);
}

int Rng::Poisson(double mean) {
  CRF_CHECK_GE(mean, 0.0);
  if (mean == 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation with continuity correction; fine for arrival
    // counts at the rates we simulate.
    const double sample = Normal(mean, std::sqrt(mean));
    return sample < 0.5 ? 0 : static_cast<int>(sample + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = UniformDouble();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= UniformDouble();
  }
  return count;
}

double Rng::BoundedPareto(double lo, double hi, double alpha) {
  CRF_CHECK_GT(lo, 0.0);
  CRF_CHECK_GT(hi, lo);
  CRF_CHECK_GT(alpha, 0.0);
  const double u = UniformDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double Rng::Gamma(double shape) {
  CRF_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang section 6).
    const double u = UniformDouble();
    return Gamma(shape + 1.0) * std::pow(u <= 0.0 ? 1e-300 : u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = UniformDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return d * v;
    }
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::Beta(double a, double b) {
  const double x = Gamma(a);
  const double y = Gamma(b);
  const double sum = x + y;
  return sum <= 0.0 ? 0.5 : x / sum;
}

int Rng::Geometric(double p) {
  CRF_CHECK_GT(p, 0.0);
  CRF_CHECK_LE(p, 1.0);
  if (p >= 1.0) {
    return 1;
  }
  const double u = 1.0 - UniformDouble();
  const int trials = 1 + static_cast<int>(std::log(u) / std::log1p(-p));
  return trials < 1 ? 1 : trials;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return UniformDouble() < p;
}

}  // namespace crf
