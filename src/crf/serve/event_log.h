// EventLog: replays a sealed CellTrace as a per-machine event stream.
//
// The streaming differential twin of the batch engine's trace walk: a
// MachineCursor tracks one machine's position in its arrival/departure event
// lists plus the evolving resident roster, and EmitTick appends that
// machine's events for one interval in the canonical order of event.h. The
// event lists come from BuildMachineEventLists — the exact code the batch
// simulator runs — so a consumer that accumulates limits and usage in event
// order reproduces the batch arithmetic bit for bit.
//
// Cursors are value types; one lives per served machine. Seek() repositions
// a cursor to any interval boundary without replaying (used by checkpoint
// restore): the roster it derives is identical to the one incremental
// evolution would have produced, because the batch compaction
// (std::remove_if) preserves the relative order of survivors.

#ifndef CRF_SERVE_EVENT_LOG_H_
#define CRF_SERVE_EVENT_LOG_H_

#include <cstdint>
#include <vector>

#include "crf/serve/event.h"
#include "crf/trace/machine_events.h"
#include "crf/trace/trace.h"

namespace crf {

class EventLog {
 public:
  class MachineCursor {
   public:
    // Appends machine events for interval `tau` to `out` (which is NOT
    // cleared) in canonical order: departures, arrivals, then one usage
    // sample per resident task in roster order. Ticks must be consumed in
    // increasing order starting at the cursor's position; `tau` must equal
    // next_tick(). Reuses `out`'s capacity — zero allocations once warm.
    void EmitTick(Interval tau, std::vector<StreamEvent>& out);

    // Repositions the cursor as if ticks [0, resume_tick) had been consumed.
    void Seek(Interval resume_tick);

    Interval next_tick() const { return next_tick_; }
    // Resident task indices (into the trace columns) in roster order.
    const std::vector<int32_t>& active() const { return active_; }

   private:
    friend class EventLog;
    MachineCursor(const EventLog* log, int machine_index);

    const EventLog* log_ = nullptr;
    int machine_ = -1;
    // Task indices sorted by start / by departure (shared permutation with
    // the batch engine).
    std::vector<int32_t> arrivals_;
    std::vector<int32_t> departures_;
    std::vector<int32_t> active_;
    size_t next_arrival_ = 0;
    size_t next_departure_ = 0;
    Interval next_tick_ = 0;
  };

  // `cell` must outlive the log and every cursor created from it.
  explicit EventLog(const CellTrace& cell);

  MachineCursor CreateCursor(int machine_index) const;

  const CellTrace& cell() const { return *cell_; }
  const MachineTaskColumns& columns() const { return columns_; }
  Interval num_intervals() const { return cell_->num_intervals; }
  int num_machines() const { return cell_->num_machines(); }

 private:
  const CellTrace* cell_;
  MachineTaskColumns columns_;
};

}  // namespace crf

#endif  // CRF_SERVE_EVENT_LOG_H_
