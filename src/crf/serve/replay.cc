#include "crf/serve/replay.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <span>

#include "crf/util/byte_io.h"
#include "crf/util/check.h"
#include "crf/util/thread_pool.h"

namespace crf {

StreamReplayer::StreamReplayer(const CellTrace& cell, const PredictorSpec& spec,
                               const ReplayOptions& options)
    : log_(cell),
      options_(options),
      service_(spec, cell.num_machines()),
      metrics_(options.num_shards) {
  CRF_CHECK_GT(cell.num_intervals, 0);
  CRF_CHECK_GT(options_.num_shards, 0);

  const int num_machines = cell.num_machines();
  const Interval num_intervals = cell.num_intervals;
  cursors_.reserve(num_machines);
  for (int m = 0; m < num_machines; ++m) {
    cursors_.push_back(log_.CreateCursor(m));
  }
  accums_.resize(num_machines);

  // Contiguous machine blocks: shard s owns [s*block, (s+1)*block) ∩ [0, M).
  const int block = (num_machines + options_.num_shards - 1) / options_.num_shards;
  machine_block_ = std::max(block, 1);
  shards_.resize(options_.num_shards);
  for (int s = 0; s < options_.num_shards; ++s) {
    ShardState& shard = shards_[s];
    shard.begin_machine = std::min(s * block, num_machines);
    shard.end_machine = std::min((s + 1) * block, num_machines);
    shard.cell_limit.assign(num_intervals, 0.0);
    shard.cell_prediction.assign(num_intervals, 0.0);
  }
}

void StreamReplayer::EnsureOracle(ShardState& shard, int machine) {
  if (shard.oracle_machine == machine) {
    return;
  }
  if (options_.use_total_usage_oracle) {
    ComputeTotalUsageOracleInto(log_.cell(), machine, options_.horizon, shard.oracle_scratch,
                                shard.oracle);
  } else {
    ComputePeakOracleInto(log_.cell(), machine, options_.horizon, shard.oracle_scratch,
                          shard.oracle);
  }
  shard.oracle_machine = machine;
}

double StreamReplayer::ApplyTick(ShardState& shard, ShardMetrics& shard_metrics, int machine,
                                 Interval tau, std::span<const StreamEvent> events) {
  shard_metrics.sequence += events.size();
  ++shard_metrics.ticks;
  shard_metrics.max_batch_events =
      std::max(shard_metrics.max_batch_events, static_cast<int64_t>(events.size()));

  const int period = options_.latency_sample_period;
  double prediction;
  if (period > 0 && shard_metrics.ticks % static_cast<uint64_t>(period) == 0) {
    const auto t0 = std::chrono::steady_clock::now();
    prediction = service_.IngestTick(machine, tau, events);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    shard_metrics.predict_latency_log2_ns.Add(ns > 1.0 ? std::log2(ns) : 0.0, ns);
  } else {
    prediction = service_.IngestTick(machine, tau, events);
  }

  const double oracle_value = shard.oracle[tau];
  const double limit_sum = service_.LimitSum(machine);
  const bool occupied = !service_.Roster(machine).empty();
  accums_[machine].risk.Record(prediction, oracle_value, limit_sum, occupied);
  shard.cell_limit[tau] += limit_sum;
  shard.cell_prediction[tau] += prediction;
  return prediction;
}

void StreamReplayer::AdvanceShard(int shard_index, Interval from, Interval until) {
  ShardState& shard = shards_[shard_index];
  ShardMetrics& shard_metrics = metrics_.shard(shard_index);

  // Finished machines' bulk pages are returned to the kernel in blocks: a
  // per-machine drop would strand the page at every machine boundary (the
  // inward rounding never evicts a shared page), so batch ~128 machines per
  // madvise — the block in flight stays a few MB while the strand count
  // falls from O(machines) to O(machines / block).
  constexpr int kDropBlock = 128;
  const bool drop_pages = options_.drop_mapped_pages && until == log_.num_intervals() &&
                          log_.cell().is_mapped();
  int drop_from = shard.begin_machine;

  for (int m = shard.begin_machine; m < shard.end_machine; ++m) {
    EnsureOracle(shard, m);
    EventLog::MachineCursor& cursor = cursors_[m];

    for (Interval tau = from; tau < until; ++tau) {
      shard.events.clear();
      cursor.EmitTick(tau, shard.events);
      ApplyTick(shard, shard_metrics, m, tau, shard.events);
    }

    // The machine-outer loop consumes each machine's stream exactly once per
    // Advance window; once the final tick is done, its bulk pages will never
    // be read again.
    if (drop_pages && (m + 1 - drop_from >= kDropBlock || m + 1 == shard.end_machine)) {
      log_.cell().DropMachinePages(drop_from, m + 1);
      drop_from = m + 1;
    }
  }
}

void StreamReplayer::Advance(Interval until) {
  CRF_CHECK_GE(until, next_tick_);
  CRF_CHECK_LE(until, log_.num_intervals());
  if (until == next_tick_) {
    return;
  }
  const Interval from = next_tick_;
  const auto t0 = std::chrono::steady_clock::now();
  if (options_.parallel) {
    ThreadPool& pool = options_.pool != nullptr ? *options_.pool : ThreadPool::Default();
    pool.ParallelForRanges(options_.num_shards, 1,
                           [this, from, until](int /*slot*/, int begin, int end) {
                             for (int s = begin; s < end; ++s) {
                               AdvanceShard(s, from, until);
                             }
                           });
  } else {
    for (int s = 0; s < options_.num_shards; ++s) {
      AdvanceShard(s, from, until);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  metrics_.AddElapsedSeconds(std::chrono::duration<double>(t1 - t0).count());
  next_tick_ = until;
}

double StreamReplayer::PushMachineTick(int machine, Interval tau,
                                       std::span<const StreamEvent> events) {
  CRF_CHECK_GE(machine, 0);
  CRF_CHECK_LT(machine, log_.num_machines());
  CRF_CHECK_GE(tau, next_tick_);
  CRF_CHECK_LT(tau, log_.num_intervals());
  const int s = shard_of(machine);
  ShardState& shard = shards_[s];
  EnsureOracle(shard, machine);
  return ApplyTick(shard, metrics_.shard(s), machine, tau, events);
}

bool StreamReplayer::CommitPushedWindow(Interval until) {
  if (until <= next_tick_ || until > log_.num_intervals()) {
    return false;
  }
  for (int m = 0; m < log_.num_machines(); ++m) {
    if (service_.LastTick(m) != until - 1) {
      return false;
    }
  }
  next_tick_ = until;
  return true;
}

SimResult StreamReplayer::Finish() {
  CRF_CHECK(Done());
  const Interval num_intervals = log_.num_intervals();
  const int num_machines = log_.num_machines();

  SimResult result;
  result.cell_name = log_.cell().name;
  result.predictor_name = spec().Name();
  result.machines.resize(num_machines);
  for (int m = 0; m < num_machines; ++m) {
    FinalizeMachineMetrics(accums_[m].risk, m, num_intervals, result.machines[m]);
  }

  // Deterministic merge: shard partials summed in shard index order.
  std::vector<double> cell_limit(num_intervals, 0.0);
  std::vector<double> cell_prediction(num_intervals, 0.0);
  for (const ShardState& shard : shards_) {
    for (Interval t = 0; t < num_intervals; ++t) {
      cell_limit[t] += shard.cell_limit[t];
      cell_prediction[t] += shard.cell_prediction[t];
    }
  }
  result.cell_savings_series = CellSavingsSeries(cell_limit, cell_prediction);
  return result;
}

const ServeMetrics& StreamReplayer::Metrics() {
  ServeMetrics::RiskSummary risk;
  int64_t occupied = 0;
  int64_t occupied_violations = 0;
  bool any_occupied = false;
  for (const MachineAccum& accum : accums_) {
    risk.violations += accum.risk.violations();
    const RiskTailSummary tail = accum.risk.TailSummary();
    risk.max_violation_streak = std::max(risk.max_violation_streak, tail.max_violation_streak);
    risk.worst_severity_p999 = std::max(risk.worst_severity_p999, tail.severity_p999);
    occupied += accum.risk.occupied_intervals();
    occupied_violations += accum.risk.occupied_violations();
    if (accum.risk.occupied_intervals() > 0) {
      risk.worst_savings_at_risk = any_occupied
                                       ? std::min(risk.worst_savings_at_risk, tail.savings_at_risk)
                                       : tail.savings_at_risk;
      any_occupied = true;
    }
  }
  risk.violation_time_fraction =
      occupied > 0 ? static_cast<double>(occupied_violations) / static_cast<double>(occupied)
                   : 0.0;
  metrics_.SetViolations(risk.violations);
  metrics_.SetRiskSummary(risk);
  return metrics_;
}

void StreamReplayer::SaveStateTo(ByteWriter& out) const {
  out.Write<int32_t>(options_.num_shards);
  out.Write<int32_t>(next_tick_);
  for (int s = 0; s < options_.num_shards; ++s) {
    const ShardState& shard = shards_[s];
    const ShardMetrics& shard_metrics = metrics_.shard(s);
    out.Write<uint64_t>(shard_metrics.sequence);
    out.Write<uint64_t>(shard_metrics.ticks);
    out.Write<int64_t>(shard_metrics.max_batch_events);
    out.WriteVec(shard.cell_limit);
    out.WriteVec(shard.cell_prediction);
  }
  for (int m = 0; m < log_.num_machines(); ++m) {
    service_.SaveMachine(m, out);
    accums_[m].risk.SaveState(out);
  }
}

bool StreamReplayer::LoadStateFrom(ByteReader& in, Interval resume_tick) {
  const Interval num_intervals = log_.num_intervals();
  if (resume_tick < 0 || resume_tick > num_intervals) {
    in.Fail();
    return false;
  }
  const int32_t num_shards = in.Read<int32_t>();
  const int32_t saved_tick = in.Read<int32_t>();
  if (!in.ok() || num_shards != options_.num_shards || saved_tick != resume_tick) {
    in.Fail();
    return false;
  }
  for (int s = 0; s < options_.num_shards; ++s) {
    ShardState& shard = shards_[s];
    ShardMetrics& shard_metrics = metrics_.shard(s);
    shard_metrics.sequence = in.Read<uint64_t>();
    shard_metrics.ticks = in.Read<uint64_t>();
    shard_metrics.max_batch_events = in.Read<int64_t>();
    if (!in.ReadVec(shard.cell_limit, static_cast<uint64_t>(num_intervals)) ||
        !in.ReadVec(shard.cell_prediction, static_cast<uint64_t>(num_intervals))) {
      return false;
    }
    if (shard.cell_limit.size() != static_cast<size_t>(num_intervals) ||
        shard.cell_prediction.size() != static_cast<size_t>(num_intervals) ||
        shard_metrics.max_batch_events < 0) {
      in.Fail();
      return false;
    }
  }
  for (int m = 0; m < log_.num_machines(); ++m) {
    if (!service_.LoadMachine(m, in)) {
      return false;
    }
    if (!accums_[m].risk.LoadState(in)) {
      return false;
    }
  }

  // Reposition cursors and cross-check the restored rosters against the
  // trace-derived resident sets — a corrupted roster that survived the
  // payload checksum is caught here.
  for (int m = 0; m < log_.num_machines(); ++m) {
    EventLog::MachineCursor& cursor = cursors_[m];
    cursor.Seek(resume_tick);
    const std::span<const int32_t> roster = service_.Roster(m);
    const std::vector<int32_t>& active = cursor.active();
    if (roster.size() != active.size() ||
        !std::equal(roster.begin(), roster.end(), active.begin())) {
      in.Fail();
      return false;
    }
    if (resume_tick > 0 && service_.LastTick(m) != resume_tick - 1) {
      in.Fail();
      return false;
    }
  }
  next_tick_ = resume_tick;
  return true;
}

}  // namespace crf
