// Versioned binary checkpoint format for the streaming serve layer.
//
// Follows the .crftrace header style (trace_io.h): a fixed little-endian
// header with magic and version, variable-length identity strings, then a
// single FNV-1a-checksummed payload produced by StreamReplayer::SaveStateTo.
//
//   bytes [0,64)   header: magic "CRFCKPT1", version, flags,
//                  num_machines, num_shards, next_tick, num_intervals,
//                  trace name / spec blob lengths, payload size + hash
//   then           cell name (trace identity)
//   then           structurally-encoded PredictorSpec
//   then           the payload (per-shard counters and partial series,
//                  per-machine predictor state and metric accumulators)
//
// The payload serializes COMPLETE internal state — including the
// floating-point drift carried by incremental window sums — so a restored
// replayer continues bit-identically to an uninterrupted run (DESIGN.md §7).
// Restore validates, in order: header magic/version/geometry, that the
// supplied trace and options match the checkpoint's identity, the payload
// checksum, and finally every structural invariant of the decoded state
// (LoadStateFrom). Truncated, bit-flipped, or mismatched files are rejected
// with a diagnostic; nothing is ever CHECK-aborted on file content.

#ifndef CRF_SERVE_CHECKPOINT_H_
#define CRF_SERVE_CHECKPOINT_H_

#include <memory>
#include <string>

#include "crf/serve/replay.h"

namespace crf {

// Summary of a checkpoint file's header (crf checkpoint --info).
struct CheckpointInfo {
  uint32_t version = 0;
  int32_t num_machines = 0;
  int32_t num_shards = 0;
  Interval next_tick = 0;
  Interval num_intervals = 0;
  std::string trace_name;
  std::string spec_name;
  uint64_t payload_bytes = 0;
};

// Writes `replayer`'s state to `path`. Returns false and sets `error` on
// I/O failure. Must be called between Advance calls (interval boundary).
bool SaveCheckpoint(const StreamReplayer& replayer, const std::string& path,
                    std::string* error);

// Reads the checkpoint at `path` and resumes it against `cell`, which must
// be the same sealed trace the checkpoint was cut from (validated by name,
// machine count, and interval count; the restored rosters are additionally
// cross-checked against the trace). `options` must match the checkpointed
// shard geometry. Returns nullptr and sets `error` on any mismatch or
// corruption.
std::unique_ptr<StreamReplayer> LoadCheckpoint(const std::string& path, const CellTrace& cell,
                                               const ReplayOptions& options,
                                               std::string* error);

// Header-only inspection (does not decode the payload beyond the checksum).
// Returns false and sets `error` if the file is missing or malformed.
bool ReadCheckpointInfo(const std::string& path, CheckpointInfo* info, std::string* error);

}  // namespace crf

#endif  // CRF_SERVE_CHECKPOINT_H_
