#include "crf/serve/event_log.h"

#include <algorithm>

#include "crf/util/check.h"

namespace crf {

EventLog::EventLog(const CellTrace& cell) : cell_(&cell), columns_(cell) {}

EventLog::MachineCursor EventLog::CreateCursor(int machine_index) const {
  CRF_CHECK_GE(machine_index, 0);
  CRF_CHECK_LT(machine_index, num_machines());
  return MachineCursor(this, machine_index);
}

EventLog::MachineCursor::MachineCursor(const EventLog* log, int machine_index)
    : log_(log), machine_(machine_index) {
  BuildMachineEventLists(log->columns(), log->cell().machine_tasks(machine_index), arrivals_,
                         departures_);
}

void EventLog::MachineCursor::EmitTick(Interval tau, std::vector<StreamEvent>& out) {
  CRF_CHECK_EQ(tau, next_tick_);
  const MachineTaskColumns& cols = log_->columns();

  // 1. Departures, in departure-time order (the same permutation in which
  // the batch engine subtracts their limits from the running sum).
  bool departed = false;
  while (next_departure_ < departures_.size() &&
         cols.DepartureTime(departures_[next_departure_]) <= tau) {
    const int32_t index = departures_[next_departure_++];
    out.push_back({StreamEventKind::kTaskDeparture, machine_, index, tau, cols.id[index],
                   0.0, cols.limit[index]});
    departed = true;
  }
  if (departed) {
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [&cols, tau](int32_t i) {
                                   return cols.DepartureTime(i) <= tau;
                                 }),
                  active_.end());
  }

  // 2. Arrivals, in start order.
  while (next_arrival_ < arrivals_.size() && cols.start[arrivals_[next_arrival_]] <= tau) {
    const int32_t index = arrivals_[next_arrival_++];
    active_.push_back(index);
    out.push_back({StreamEventKind::kTaskArrival, machine_, index, tau, cols.id[index],
                   0.0, cols.limit[index]});
  }

  // 3. One usage sample per resident task, in roster order.
  for (const int32_t index : active_) {
    out.push_back({StreamEventKind::kUsageSample, machine_, index, tau, cols.id[index],
                   cols.UsageAt(index, tau), cols.limit[index]});
  }

  ++next_tick_;
}

void EventLog::MachineCursor::Seek(Interval resume_tick) {
  CRF_CHECK_GE(resume_tick, 0);
  CRF_CHECK_LE(resume_tick, log_->num_intervals());
  const MachineTaskColumns& cols = log_->columns();
  const Interval last = resume_tick - 1;

  next_arrival_ = 0;
  next_departure_ = 0;
  active_.clear();
  if (resume_tick == 0) {
    next_tick_ = 0;
    return;
  }
  while (next_departure_ < departures_.size() &&
         cols.DepartureTime(departures_[next_departure_]) <= last) {
    ++next_departure_;
  }
  // The arrival prefix minus the departed tasks, in arrival order — exactly
  // the roster incremental evolution produces, because the batch compaction
  // preserves the survivors' relative (arrival) order.
  while (next_arrival_ < arrivals_.size() && cols.start[arrivals_[next_arrival_]] <= last) {
    const int32_t index = arrivals_[next_arrival_++];
    if (cols.DepartureTime(index) > last) {
      active_.push_back(index);
    }
  }
  next_tick_ = resume_tick;
}

}  // namespace crf
