// ServeMetrics: operational counters for the streaming serve layer.
//
// Tracks what an operator of the online service would watch: ingest
// throughput (events/s), a predict-latency histogram (log2-nanosecond
// buckets over sampled Observe+Predict rounds), violation counters, and
// per-shard progress (event sequence numbers, peak per-tick batch size —
// the replay analogue of queue depth). Dumped as JSON via ToJson / WriteJson
// for tooling.
//
// Timing-derived fields (latency, events/s) are observational only: they are
// NOT part of checkpoints and carry no determinism guarantee. Everything
// that feeds the final SimResult lives in the replayer's checkpointed
// accumulators instead.

#ifndef CRF_SERVE_SERVE_METRICS_H_
#define CRF_SERVE_SERVE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crf/stats/histogram.h"

namespace crf {

// One ingestion shard's counters. Owned and written by exactly one thread
// during a replay chunk; aggregated single-threaded afterwards. Cache-line
// aligned because the sequence/tick counters are bumped on every event of
// every tick — adjacent shards sharing a line here serializes the whole
// sharded ingest loop on cache-coherence traffic.
struct alignas(64) ShardMetrics {
  // Events ingested by this shard (its sequence number: every event the
  // shard consumes increments it by one).
  uint64_t sequence = 0;
  // Ticks processed (one per machine per interval).
  uint64_t ticks = 0;
  // Largest single-tick event batch seen (replay queue-depth analogue).
  int64_t max_batch_events = 0;
  // Sampled predict latency, log2(nanoseconds) buckets.
  BucketedStats predict_latency_log2_ns{0.0, 1.0, 40};

  void MergeFrom(const ShardMetrics& other);
};

class ServeMetrics {
 public:
  explicit ServeMetrics(int num_shards);

  ShardMetrics& shard(int s) { return shards_[s]; }
  const ShardMetrics& shard(int s) const { return shards_[s]; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  // Cell-level risk summary aggregated from the replayer's per-machine
  // RiskAccumulators (crf/risk). Deterministic (derived from checkpointed
  // accumulators), refreshed by StreamReplayer::Metrics().
  struct RiskSummary {
    int64_t violations = 0;
    // Longest violation streak on any machine (intervals).
    int64_t max_violation_streak = 0;
    // Worst per-machine p999 violation severity.
    double worst_severity_p999 = 0.0;
    // Violating ∩ occupied intervals / occupied intervals, over all machines.
    double violation_time_fraction = 0.0;
    // Lowest per-machine savings-at-risk (p5 savings over occupied
    // intervals) among machines that held tasks.
    double worst_savings_at_risk = 0.0;
  };

  // Wall-clock seconds spent inside Advance (accumulated by the replayer).
  void AddElapsedSeconds(double seconds) { elapsed_seconds_ += seconds; }
  void SetViolations(int64_t violations) { violations_ = violations; }
  void SetRiskSummary(const RiskSummary& risk) { risk_ = risk; }
  const RiskSummary& risk() const { return risk_; }

  uint64_t TotalEvents() const;
  uint64_t TotalTicks() const;
  double elapsed_seconds() const { return elapsed_seconds_; }
  // Events per second over the accumulated Advance time; 0 before any work.
  double EventsPerSecond() const;

  // Attaches an extra top-level JSON section rendered verbatim under `key`
  // (replacing any previous value for the key). `json_object` must be a
  // complete JSON value. Used by the network tier to publish its "net"
  // section (per-op latency, bytes, connections) through the same snapshot.
  void SetExtraSection(const std::string& key, const std::string& json_object);

  // The full registry as a JSON object (stable key order).
  std::string ToJson() const;
  // Writes ToJson() to `path`; returns false on I/O failure.
  bool WriteJson(const std::string& path) const;

 private:
  std::vector<ShardMetrics> shards_;
  double elapsed_seconds_ = 0.0;
  int64_t violations_ = 0;
  RiskSummary risk_;
  // Extra sections in insertion order (stable output).
  std::vector<std::pair<std::string, std::string>> extra_sections_;
};

}  // namespace crf

#endif  // CRF_SERVE_SERVE_METRICS_H_
