#include "crf/serve/service.h"

#include <algorithm>
#include <cmath>

#include "crf/util/byte_io.h"
#include "crf/util/check.h"

namespace crf {

namespace {
// Upper bound on a restored roster; rejects corrupted lengths early.
constexpr uint64_t kMaxRosterTasks = 1 << 20;
}  // namespace

OvercommitService::OvercommitService(const PredictorSpec& spec, int num_machines)
    : spec_(spec) {
  CRF_CHECK_GT(num_machines, 0);
  machines_.resize(num_machines);
  for (MachineState& machine : machines_) {
    machine.predictor = CreatePredictor(spec_);
  }
}

double OvercommitService::IngestTick(int machine, Interval tau,
                                     std::span<const StreamEvent> events) {
  MachineState& state = machines_[machine];
  CRF_CHECK_GT(tau, state.last_tick);

  size_t i = 0;
  // 1. Departures: subtract limits in event order (the batch engine's
  // departure-time order), then compact the roster preserving order.
  state.departed.clear();
  for (; i < events.size() && events[i].kind == StreamEventKind::kTaskDeparture; ++i) {
    state.limit_sum -= events[i].limit;
    state.departed.push_back(events[i].task_index);
  }
  if (!state.departed.empty()) {
    size_t out = 0;
    for (size_t r = 0; r < state.roster_index.size(); ++r) {
      const int32_t index = state.roster_index[r];
      const bool gone = std::find(state.departed.begin(), state.departed.end(), index) !=
                        state.departed.end();
      if (!gone) {
        state.roster_index[out] = index;
        state.roster[out] = state.roster[r];
        ++out;
      }
    }
    state.roster_index.resize(out);
    state.roster.resize(out);
  }

  // 2. Arrivals: append to the roster, add limits.
  for (; i < events.size() && events[i].kind == StreamEventKind::kTaskArrival; ++i) {
    const StreamEvent& event = events[i];
    state.roster_index.push_back(event.task_index);
    state.roster.push_back({event.task_id, 0.0, event.limit});
    state.limit_sum += event.limit;
  }
  if (state.roster.empty()) {
    state.limit_sum = 0.0;  // Kill incremental drift; the true sum is exactly 0.
  }

  // 3. Usage samples: exactly one per resident task, in roster order.
  const size_t first_sample = i;
  for (; i < events.size(); ++i) {
    const StreamEvent& event = events[i];
    CRF_CHECK(event.kind == StreamEventKind::kUsageSample);
    const size_t slot = i - first_sample;
    CRF_CHECK_LT(slot, state.roster_index.size());
    CRF_CHECK_EQ(event.task_index, state.roster_index[slot]);
    state.roster[slot].usage = event.usage;
  }
  CRF_CHECK_EQ(i - first_sample, state.roster.size());

  state.predictor->Observe(tau, state.roster);
  state.last_prediction = state.predictor->PredictPeak();
  state.last_tick = tau;
  return state.last_prediction;
}

void OvercommitService::SaveMachine(int machine, ByteWriter& out) const {
  const MachineState& state = machines_[machine];
  out.Write<int32_t>(state.last_tick);
  out.Write<double>(state.limit_sum);
  out.Write<double>(state.last_prediction);
  out.WriteVec(state.roster_index);
  out.WriteVec(state.roster);
  state.predictor->SaveState(out);
}

bool OvercommitService::LoadMachine(int machine, ByteReader& in) {
  MachineState& state = machines_[machine];
  const Interval last_tick = in.Read<int32_t>();
  const double limit_sum = in.Read<double>();
  const double last_prediction = in.Read<double>();
  std::vector<int32_t> roster_index;
  std::vector<TaskSample> roster;
  if (!in.ReadVec(roster_index, kMaxRosterTasks) || !in.ReadVec(roster, kMaxRosterTasks)) {
    return false;
  }
  if (!in.ok() || last_tick < -1 || !std::isfinite(limit_sum) || limit_sum < 0.0 ||
      !std::isfinite(last_prediction) || last_prediction < 0.0 ||
      roster.size() != roster_index.size()) {
    in.Fail();
    return false;
  }
  for (const TaskSample& sample : roster) {
    if (!std::isfinite(sample.usage) || !std::isfinite(sample.limit) || sample.limit < 0.0) {
      in.Fail();
      return false;
    }
  }
  if (!state.predictor->LoadState(in)) {
    return false;
  }
  state.last_tick = last_tick;
  state.limit_sum = limit_sum;
  state.last_prediction = last_prediction;
  state.roster_index = std::move(roster_index);
  state.roster = std::move(roster);
  return true;
}

}  // namespace crf
