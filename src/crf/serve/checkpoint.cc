#include "crf/serve/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "crf/util/byte_io.h"

namespace crf {
namespace {

constexpr char kMagic[8] = {'C', 'R', 'F', 'C', 'K', 'P', 'T', '1'};
// Version 2: the spec encoding gained the chance-constrained `target` knob
// and per-machine payloads carry full RiskAccumulator state (tail quantile
// estimators) instead of six scalar counters. Version-1 files are rejected
// with a clear error rather than misparsed.
constexpr uint32_t kVersion = 2;
constexpr uint64_t kMaxNameLength = 4096;
constexpr uint64_t kMaxSpecLength = 1 << 20;
constexpr uint64_t kMaxPayloadLength = uint64_t{1} << 40;
constexpr int kMaxSpecDepth = 8;
constexpr uint32_t kMaxSpecComponents = 64;

// Fixed-size little-endian header preceding the identity strings + payload.
struct CheckpointHeader {
  char magic[8];
  uint32_t version;
  uint32_t flags;
  int32_t num_machines;
  int32_t num_shards;
  int32_t next_tick;
  int32_t num_intervals;
  uint32_t name_length;
  uint32_t spec_length;
  uint64_t payload_bytes;
  uint64_t payload_hash;
  uint64_t reserved;
};
static_assert(sizeof(CheckpointHeader) == 64, "checkpoint header layout drifted");

// Structural PredictorSpec encoding: every knob, recursively. The name alone
// would be ambiguous (it omits warm-up/history) and not machine-parseable.
void WriteSpec(ByteWriter& out, const PredictorSpec& spec) {
  out.Write<uint8_t>(static_cast<uint8_t>(spec.type));
  out.Write<double>(spec.phi);
  out.Write<double>(spec.percentile);
  out.Write<double>(spec.n_sigma);
  out.Write<double>(spec.margin);
  out.Write<double>(spec.target);
  out.Write<int32_t>(spec.config.min_num_samples);
  out.Write<int32_t>(spec.config.max_num_samples);
  out.Write<uint32_t>(static_cast<uint32_t>(spec.components.size()));
  for (const PredictorSpec& component : spec.components) {
    WriteSpec(out, component);
  }
}

bool ReadSpec(ByteReader& in, PredictorSpec& spec, int depth) {
  if (depth > kMaxSpecDepth) {
    in.Fail();
    return false;
  }
  const uint8_t type = in.Read<uint8_t>();
  spec.phi = in.Read<double>();
  spec.percentile = in.Read<double>();
  spec.n_sigma = in.Read<double>();
  spec.margin = in.Read<double>();
  spec.target = in.Read<double>();
  spec.config.min_num_samples = in.Read<int32_t>();
  spec.config.max_num_samples = in.Read<int32_t>();
  const uint32_t num_components = in.Read<uint32_t>();
  if (!in.ok() || type > static_cast<uint8_t>(PredictorSpec::Type::kMax) ||
      num_components > kMaxSpecComponents ||
      (type == static_cast<uint8_t>(PredictorSpec::Type::kMax)) != (num_components > 0)) {
    in.Fail();
    return false;
  }
  spec.type = static_cast<PredictorSpec::Type>(type);
  // The factory CHECK-validates knobs on construction; reject insane values
  // here so corrupted files produce an error, not an abort.
  const bool knobs_ok = spec.phi > 0.0 && spec.phi <= 1.0 && spec.percentile >= 0.0 &&
                        spec.percentile <= 100.0 && spec.n_sigma > 0.0 && spec.margin >= 1.0 &&
                        spec.target > 0.0 && spec.target < 1.0 &&
                        spec.config.min_num_samples > 0 &&
                        spec.config.max_num_samples >= spec.config.min_num_samples;
  if (!knobs_ok) {
    in.Fail();
    return false;
  }
  spec.components.resize(num_components);
  for (PredictorSpec& component : spec.components) {
    if (!ReadSpec(in, component, depth + 1)) {
      return false;
    }
  }
  return true;
}

bool SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

bool ReadFile(const std::string& path, std::vector<uint8_t>& out, std::string* error) {
  FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return SetError(error, "cannot open checkpoint " + path);
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(file);
    return SetError(error, "cannot stat checkpoint " + path);
  }
  out.resize(static_cast<size_t>(size));
  const bool ok = out.empty() || std::fread(out.data(), 1, out.size(), file) == out.size();
  std::fclose(file);
  if (!ok) {
    return SetError(error, "cannot read checkpoint " + path);
  }
  return true;
}

// Parses and validates the fixed header + identity strings. On success fills
// `header`, `trace_name`, `spec` and sets `payload` to the checksummed
// payload bytes.
bool ParseCheckpoint(const std::vector<uint8_t>& bytes, CheckpointHeader& header,
                     std::string& trace_name, PredictorSpec& spec,
                     std::span<const uint8_t>& payload, std::string* error) {
  if (bytes.size() < sizeof(CheckpointHeader)) {
    return SetError(error, "checkpoint truncated: shorter than the header");
  }
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return SetError(error, "not a checkpoint file (bad magic)");
  }
  if (header.version != kVersion) {
    return SetError(error,
                    "unsupported checkpoint version " + std::to_string(header.version));
  }
  if (header.num_machines <= 0 || header.num_shards <= 0 || header.num_intervals <= 0 ||
      header.next_tick < 0 || header.next_tick > header.num_intervals ||
      header.name_length > kMaxNameLength || header.spec_length > kMaxSpecLength ||
      header.payload_bytes > kMaxPayloadLength) {
    return SetError(error, "checkpoint header is corrupt");
  }
  const uint64_t expected_size = sizeof(CheckpointHeader) + header.name_length +
                                 header.spec_length + header.payload_bytes;
  if (bytes.size() != expected_size) {
    return SetError(error, "checkpoint truncated: expected " +
                               std::to_string(expected_size) + " bytes, found " +
                               std::to_string(bytes.size()));
  }
  const uint8_t* cursor = bytes.data() + sizeof(CheckpointHeader);
  trace_name.assign(reinterpret_cast<const char*>(cursor), header.name_length);
  cursor += header.name_length;
  ByteReader spec_reader(std::span<const uint8_t>(cursor, header.spec_length));
  if (!ReadSpec(spec_reader, spec, 0) || !spec_reader.AtEnd()) {
    return SetError(error, "checkpoint predictor spec is corrupt");
  }
  cursor += header.spec_length;
  payload = std::span<const uint8_t>(cursor, header.payload_bytes);
  if (Fnv1a64(payload) != header.payload_hash) {
    return SetError(error, "checkpoint payload checksum mismatch (corrupted file)");
  }
  return true;
}

}  // namespace

bool SaveCheckpoint(const StreamReplayer& replayer, const std::string& path,
                    std::string* error) {
  ByteWriter payload;
  replayer.SaveStateTo(payload);
  ByteWriter spec_blob;
  WriteSpec(spec_blob, replayer.spec());
  const std::string& trace_name = replayer.cell().name;

  CheckpointHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.flags = 0;
  header.num_machines = replayer.cell().num_machines();
  header.num_shards = replayer.options().num_shards;
  header.next_tick = replayer.next_tick();
  header.num_intervals = replayer.cell().num_intervals;
  header.name_length = static_cast<uint32_t>(trace_name.size());
  header.spec_length = static_cast<uint32_t>(spec_blob.size());
  header.payload_bytes = payload.size();
  header.payload_hash = Fnv1a64(payload.bytes());

  FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return SetError(error, "cannot open " + path + " for writing");
  }
  bool ok = std::fwrite(&header, sizeof(header), 1, file) == 1;
  ok = ok && (trace_name.empty() ||
              std::fwrite(trace_name.data(), 1, trace_name.size(), file) == trace_name.size());
  ok = ok && std::fwrite(spec_blob.bytes().data(), 1, spec_blob.size(), file) ==
                 spec_blob.size();
  ok = ok && std::fwrite(payload.bytes().data(), 1, payload.size(), file) == payload.size();
  ok = std::fclose(file) == 0 && ok;
  if (!ok) {
    return SetError(error, "short write to " + path);
  }
  return true;
}

std::unique_ptr<StreamReplayer> LoadCheckpoint(const std::string& path, const CellTrace& cell,
                                               const ReplayOptions& options,
                                               std::string* error) {
  std::vector<uint8_t> bytes;
  if (!ReadFile(path, bytes, error)) {
    return nullptr;
  }
  CheckpointHeader header{};
  std::string trace_name;
  PredictorSpec spec;
  std::span<const uint8_t> payload;
  if (!ParseCheckpoint(bytes, header, trace_name, spec, payload, error)) {
    return nullptr;
  }
  if (trace_name != cell.name || header.num_machines != cell.num_machines() ||
      header.num_intervals != cell.num_intervals) {
    SetError(error, "checkpoint was cut from trace '" + trace_name + "' (" +
                        std::to_string(header.num_machines) + " machines, " +
                        std::to_string(header.num_intervals) +
                        " intervals), which does not match the supplied trace");
    return nullptr;
  }
  if (header.num_shards != options.num_shards) {
    SetError(error, "checkpoint has " + std::to_string(header.num_shards) +
                        " shards; rerun with --shards=" + std::to_string(header.num_shards));
    return nullptr;
  }
  auto replayer = std::make_unique<StreamReplayer>(cell, spec, options);
  ByteReader reader(payload);
  if (!replayer->LoadStateFrom(reader, header.next_tick) || !reader.AtEnd()) {
    SetError(error, "checkpoint payload is structurally invalid");
    return nullptr;
  }
  return replayer;
}

bool ReadCheckpointInfo(const std::string& path, CheckpointInfo* info, std::string* error) {
  std::vector<uint8_t> bytes;
  if (!ReadFile(path, bytes, error)) {
    return false;
  }
  CheckpointHeader header{};
  std::string trace_name;
  PredictorSpec spec;
  std::span<const uint8_t> payload;
  if (!ParseCheckpoint(bytes, header, trace_name, spec, payload, error)) {
    return false;
  }
  if (info != nullptr) {
    info->version = header.version;
    info->num_machines = header.num_machines;
    info->num_shards = header.num_shards;
    info->next_tick = header.next_tick;
    info->num_intervals = header.num_intervals;
    info->trace_name = trace_name;
    info->spec_name = spec.Name();
    info->payload_bytes = header.payload_bytes;
  }
  return true;
}

}  // namespace crf
