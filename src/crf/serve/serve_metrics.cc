#include "crf/serve/serve_metrics.h"

#include <algorithm>
#include <cstdio>

#include "crf/util/check.h"

namespace crf {

void ShardMetrics::MergeFrom(const ShardMetrics& other) {
  sequence += other.sequence;
  ticks += other.ticks;
  max_batch_events = std::max(max_batch_events, other.max_batch_events);
  predict_latency_log2_ns.Merge(other.predict_latency_log2_ns);
}

ServeMetrics::ServeMetrics(int num_shards) : shards_(num_shards) {
  CRF_CHECK_GT(num_shards, 0);
}

uint64_t ServeMetrics::TotalEvents() const {
  uint64_t total = 0;
  for (const ShardMetrics& shard : shards_) {
    total += shard.sequence;
  }
  return total;
}

uint64_t ServeMetrics::TotalTicks() const {
  uint64_t total = 0;
  for (const ShardMetrics& shard : shards_) {
    total += shard.ticks;
  }
  return total;
}

double ServeMetrics::EventsPerSecond() const {
  return elapsed_seconds_ > 0.0 ? static_cast<double>(TotalEvents()) / elapsed_seconds_ : 0.0;
}

std::string ServeMetrics::ToJson() const {
  // Aggregate latency across shards for the top-level histogram.
  ShardMetrics all;
  for (const ShardMetrics& shard : shards_) {
    all.MergeFrom(shard);
  }

  std::string out = "{\n";
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "  \"events\": %llu,\n  \"ticks\": %llu,\n  \"elapsed_seconds\": %.6f,\n"
                "  \"events_per_second\": %.1f,\n  \"violations\": %lld,\n",
                static_cast<unsigned long long>(TotalEvents()),
                static_cast<unsigned long long>(TotalTicks()), elapsed_seconds_,
                EventsPerSecond(), static_cast<long long>(violations_));
  out += buffer;

  out += "  \"predict_latency_log2_ns\": [";
  bool first = true;
  for (int i = 0; i < all.predict_latency_log2_ns.num_buckets(); ++i) {
    const RunningStats& bucket = all.predict_latency_log2_ns.bucket(i);
    if (bucket.empty()) {
      continue;
    }
    std::snprintf(buffer, sizeof(buffer),
                  "%s\n    {\"log2_ns\": %d, \"count\": %lld, \"mean_ns\": %.1f}",
                  first ? "" : ",", i, static_cast<long long>(bucket.count()),
                  bucket.mean());
    out += buffer;
    first = false;
  }
  out += first ? "],\n" : "\n  ],\n";

  std::snprintf(buffer, sizeof(buffer),
                "  \"risk\": {\"max_violation_streak\": %lld, "
                "\"worst_severity_p999\": %.9g, \"violation_time_fraction\": %.9g, "
                "\"worst_savings_at_risk\": %.9g},\n",
                static_cast<long long>(risk_.max_violation_streak),
                risk_.worst_severity_p999, risk_.violation_time_fraction,
                risk_.worst_savings_at_risk);
  out += buffer;

  out += "  \"shards\": [";
  for (int s = 0; s < num_shards(); ++s) {
    const ShardMetrics& shard = shards_[s];
    std::snprintf(buffer, sizeof(buffer),
                  "%s\n    {\"shard\": %d, \"sequence\": %llu, \"ticks\": %llu, "
                  "\"max_batch_events\": %lld}",
                  s == 0 ? "" : ",", s, static_cast<unsigned long long>(shard.sequence),
                  static_cast<unsigned long long>(shard.ticks),
                  static_cast<long long>(shard.max_batch_events));
    out += buffer;
  }
  out += "\n  ]";
  for (const auto& [key, json] : extra_sections_) {
    out += ",\n  \"" + key + "\": ";
    // Re-indent the section body so nested objects read like the rest of the
    // document (the value arrives as a standalone JSON string).
    for (char c : json) {
      out += c;
      if (c == '\n') {
        out += "  ";
      }
    }
  }
  out += "\n}\n";
  return out;
}

void ServeMetrics::SetExtraSection(const std::string& key, const std::string& json_object) {
  for (auto& section : extra_sections_) {
    if (section.first == key) {
      section.second = json_object;
      return;
    }
  }
  extra_sections_.emplace_back(key, json_object);
}

bool ServeMetrics::WriteJson(const std::string& path) const {
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace crf
