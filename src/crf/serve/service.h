// OvercommitService: incremental per-machine predictor state (DESIGN.md §7).
//
// The online half of the serve layer. Each machine owns a predictor instance
// (built from one PredictorSpec via PredictorFactory), a resident-task
// roster mirroring the batch engine's `active` list, and the incrementally
// maintained limit sum. IngestTick applies one machine's events for one
// interval — departures, arrivals, then usage samples in roster order — and
// runs one Observe/PredictPeak round, in exactly the arithmetic order of the
// batch SimulateMachine loop, so the published prediction stream is
// bit-identical to the batch engine's.
//
// Per-machine updates cost O(events + log w) amortized (the predictor's
// window insert is the log factor) and allocate nothing in steady state: the
// roster and scratch vectors reuse their high-water capacity.
//
// Thread-safety: calls for DISTINCT machines may run concurrently (state is
// strictly per-machine); calls for the same machine must be serialized by
// the caller — the replayer does so by owning each machine in exactly one
// shard.

#ifndef CRF_SERVE_SERVICE_H_
#define CRF_SERVE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "crf/core/predictor_factory.h"
#include "crf/serve/event.h"

namespace crf {

class ByteReader;
class ByteWriter;

class OvercommitService {
 public:
  OvercommitService(const PredictorSpec& spec, int num_machines);

  // Applies machine `machine`'s canonical event batch for interval `tau`
  // (see event.h for the required order) and runs one predictor round.
  // Returns the published prediction. Ticks per machine must be ingested in
  // increasing order; the batch must contain exactly one usage sample per
  // resident task, in roster order (CHECK-enforced: a malformed batch is a
  // producer bug, not recoverable input).
  double IngestTick(int machine, Interval tau, std::span<const StreamEvent> events);

  // The last published prediction / the machine's resident limit sum.
  double Predict(int machine) const { return machines_[machine].last_prediction; }
  double LimitSum(int machine) const { return machines_[machine].limit_sum; }
  Interval LastTick(int machine) const { return machines_[machine].last_tick; }
  // Resident roster (trace task indices, roster order) for validation.
  std::span<const int32_t> Roster(int machine) const { return machines_[machine].roster_index; }

  int num_machines() const { return static_cast<int>(machines_.size()); }
  const PredictorSpec& spec() const { return spec_; }

  // Checkpoint support: serializes / restores one machine's complete state
  // (roster, limit sum, predictor internals, last prediction). LoadMachine
  // validates structural consistency and returns false on malformed input,
  // leaving the machine unspecified (the caller discards the service).
  void SaveMachine(int machine, ByteWriter& out) const;
  bool LoadMachine(int machine, ByteReader& in);

 private:
  struct MachineState {
    std::unique_ptr<PeakPredictor> predictor;
    // Parallel roster arrays: trace task index (stable identity) and the
    // sample handed to the predictor. Roster order mirrors the batch
    // engine's `active` list.
    std::vector<int32_t> roster_index;
    std::vector<TaskSample> roster;
    double limit_sum = 0.0;
    double last_prediction = 0.0;
    Interval last_tick = -1;
    // Scratch for the departure compaction (reused, zero steady-state
    // allocations).
    std::vector<int32_t> departed;
  };

  PredictorSpec spec_;
  std::vector<MachineState> machines_;
};

}  // namespace crf

#endif  // CRF_SERVE_SERVICE_H_
