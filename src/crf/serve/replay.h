// StreamReplayer: sharded streaming replay of a sealed trace (DESIGN.md §7).
//
// Drives the full serve pipeline: an EventLog turns the trace into
// per-machine event streams, an OvercommitService maintains incremental
// predictor state, and per-machine accumulators score every published
// prediction against the clairvoyant oracle — the streaming differential
// twin of the batch SimulateCell.
//
// Sharding and determinism: machines are split into `num_shards` contiguous
// blocks. A shard is the unit of parallelism AND the unit of event ordering
// — each shard is processed by exactly one thread per Advance call, walks
// its machines in ascending order, and counts its own event sequence
// numbers. Results are merged shard-by-shard in shard index order. Because
// the shard structure is fixed by `num_shards` (never by the thread count),
// every number the replay produces is bit-identical at any thread count; the
// per-machine metrics are additionally bit-identical to the batch engine
// (shared event permutation + identical per-tick arithmetic), and to the
// batch they remain bit-identical for any shard count too (a machine's
// stream never crosses a shard boundary).
//
// Advance processes ticks in [next_tick, until) for every machine, so a
// checkpoint (crf/serve/checkpoint.h) can be cut at any interval boundary
// between Advance calls and restored to a bit-identical continuation.

#ifndef CRF_SERVE_REPLAY_H_
#define CRF_SERVE_REPLAY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "crf/core/oracle.h"
#include "crf/core/predictor_factory.h"
#include "crf/risk/risk_accumulator.h"
#include "crf/serve/event_log.h"
#include "crf/serve/serve_metrics.h"
#include "crf/serve/service.h"
#include "crf/sim/metrics.h"
#include "crf/trace/trace.h"

namespace crf {

class ByteReader;
class ByteWriter;

class ThreadPool;

struct ReplayOptions {
  // Oracle forecast horizon (paper Section 5.2 default: 24 hours).
  Interval horizon = kIntervalsPerDay;
  // Ablation: score against the unfiltered total-usage oracle.
  bool use_total_usage_oracle = false;
  // Process shards on the thread pool. Affects wall-clock only — never
  // results (see the determinism rule above).
  bool parallel = true;
  // Number of ingestion shards, fixed independently of the thread count.
  // Per-machine numbers are shard-invariant; the merged cell series groups
  // machine partial sums per shard, so its floating-point rounding depends
  // on this value (and never on the thread count).
  int num_shards = 16;
  // Sample the predict latency every N ticks per shard (0 disables).
  int latency_sample_period = 64;
  // Pool override (the bench matrix times the same replay at several pool
  // sizes); nullptr uses ThreadPool::Default(). Never affects results.
  ThreadPool* pool = nullptr;
  // When the trace is mmap-loaded, evict finished machines' usage pages (in
  // ~128-machine blocks, so page rounding cannot strand every machine
  // boundary) as their final ticks are processed — replay RSS scales with
  // the machines in flight rather than the trace. No-op on heap-loaded
  // traces; never affects results (dropped pages refault from the page
  // cache).
  bool drop_mapped_pages = true;

  bool operator==(const ReplayOptions&) const = default;
};

class StreamReplayer {
 public:
  // `cell` must outlive the replayer.
  StreamReplayer(const CellTrace& cell, const PredictorSpec& spec,
                 const ReplayOptions& options = {});

  // Processes ticks [next_tick(), until) on every machine. `until` must not
  // exceed the trace length or precede next_tick().
  void Advance(Interval until);
  void AdvanceToEnd() { Advance(log_.num_intervals()); }

  Interval next_tick() const { return next_tick_; }
  bool Done() const { return next_tick_ == log_.num_intervals(); }

  // Scores into a SimResult (requires Done()): per-machine metrics are
  // bit-identical to batch SimulateMachine; the cell savings series merges
  // the per-shard partial series in shard order.
  SimResult Finish();

  // Updates the violation total and returns the metrics registry.
  const ServeMetrics& Metrics();
  // Mutable registry access for owners that attach extra JSON sections or
  // account wall-clock externally (the network tier). Not thread-safe
  // against a concurrent Advance/Push.
  ServeMetrics& MutableMetrics() { return metrics_; }

  // --- Push-mode ingest (the network tier's entry points) ---------------
  //
  // Instead of pulling events from the internal EventLog cursors, an owner
  // may push externally supplied event batches. To keep every number
  // bit-identical to Advance, pushes must replicate AdvanceShard's loop
  // structure exactly: within a shard, machines are driven one at a time in
  // ascending order, each machine's ticks in ascending order over the same
  // window [next_tick, until); the window is then committed for all shards
  // at once. The per-shard oracle scratch is cached per machine, so the
  // caller must fully finish a machine before starting the next (the server
  // enforces this protocol on the wire).
  //
  // Concurrency contract: PushMachineTick calls for machines in DISTINCT
  // shards may run concurrently; calls within one shard must be serialized
  // by the caller (the server holds a per-shard lock). CommitPushedWindow
  // requires exclusive access to the whole replayer.

  int num_shards() const { return options_.num_shards; }
  // The shard owning `machine` (same contiguous-block map as Advance).
  int shard_of(int machine) const { return machine / machine_block_; }

  // Ingests one machine's canonical event batch for interval `tau` and
  // returns the published prediction. The batch must already be validated
  // (roster-consistent, canonical order) — malformed input CHECK-aborts,
  // exactly like OvercommitService::IngestTick.
  double PushMachineTick(int machine, Interval tau, std::span<const StreamEvent> events);

  // Advances next_tick() to `until` after every machine has been pushed
  // through tick until-1. Returns false (leaving state unchanged) if any
  // machine lags or `until` is out of range.
  bool CommitPushedWindow(Interval until);

  const PredictorSpec& spec() const { return service_.spec(); }
  const ReplayOptions& options() const { return options_; }
  const CellTrace& cell() const { return log_.cell(); }
  const OvercommitService& service() const { return service_; }

  // Checkpoint payload: the complete resumable state — per-shard sequence
  // counters and partial series, per-machine service state and metric
  // accumulators. Cursor positions are re-derived from next_tick on load
  // (EventLog::MachineCursor::Seek), and the restored rosters are validated
  // against the trace-derived resident sets. LoadStateFrom returns false on
  // any malformed or inconsistent payload (the replayer must be discarded).
  void SaveStateTo(ByteWriter& out) const;
  bool LoadStateFrom(ByteReader& in, Interval resume_tick);

 private:
  // Per-machine risk accounting (crf/risk), the streaming twin of the batch
  // engine's per-machine RiskAccumulator — Record() allocates nothing, so
  // the ingest hot path stays heap-free. Cache-line aligned: a machine's
  // accumulator is written every tick by the shard that owns it, and without
  // padding the two machines straddling a shard boundary would ping-pong one
  // line between two threads all run.
  struct alignas(64) MachineAccum {
    RiskAccumulator risk;
  };

  // Everything a shard touches per tick is owned by the shard: its partial
  // cell series (merged once, in shard order, at Finish), its event batch,
  // and its oracle scratch — each a separate allocation reached only from
  // this struct. The alignas keeps adjacent shards' scalar fields and
  // vector headers on distinct cache lines.
  struct alignas(64) ShardState {
    int begin_machine = 0;
    int end_machine = 0;
    // Partial per-interval series over this shard's machines.
    std::vector<double> cell_limit;
    std::vector<double> cell_prediction;
    // Reused scratch: the per-tick event batch and oracle computation.
    std::vector<StreamEvent> events;
    OracleScratch oracle_scratch;
    std::vector<double> oracle;
    // Machine the oracle scratch currently holds (-1: none). Lets push-mode
    // ingest reuse the oracle across a machine's successive batches.
    int oracle_machine = -1;
  };

  void AdvanceShard(int shard_index, Interval from, Interval until);
  // Computes the scoring oracle for `machine` into `shard.oracle` (cached by
  // shard.oracle_machine).
  void EnsureOracle(ShardState& shard, int machine);
  // The shared per-tick body of Advance and push-mode ingest: metrics,
  // latency-sampled IngestTick, risk recording, cell series accumulation.
  double ApplyTick(ShardState& shard, ShardMetrics& shard_metrics, int machine,
                   Interval tau, std::span<const StreamEvent> events);

  EventLog log_;
  ReplayOptions options_;
  OvercommitService service_;
  std::vector<EventLog::MachineCursor> cursors_;
  std::vector<MachineAccum> accums_;
  std::vector<ShardState> shards_;
  ServeMetrics metrics_;
  Interval next_tick_ = 0;
  // Machines per shard block (shard_of's divisor; >= 1).
  int machine_block_ = 1;
};

}  // namespace crf

#endif  // CRF_SERVE_REPLAY_H_
