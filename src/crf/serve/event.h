// The streaming event model (DESIGN.md §7).
//
// The serve layer consumes a time-ordered stream of per-machine events. For
// each machine and each polling interval `tick`, the canonical order is:
//
//   1. kTaskDeparture  for every task whose residency ended at or before
//                      `tick`, in departure-time order;
//   2. kTaskArrival    for every task whose residency starts at or before
//                      `tick`, in start-time order;
//   3. kUsageSample    exactly one per resident task, in roster order (the
//                      arrival order with departed tasks compacted out).
//
// The order within 1 and 2 — including the permutation of ties — is produced
// by BuildMachineEventLists, the same code the batch simulator uses, so the
// floating-point accumulation a consumer performs over the events is
// bit-identical to the batch engine's.

#ifndef CRF_SERVE_EVENT_H_
#define CRF_SERVE_EVENT_H_

#include <cstdint>

#include "crf/trace/trace.h"
#include "crf/util/time_grid.h"

namespace crf {

enum class StreamEventKind : uint8_t {
  kTaskDeparture = 0,
  kTaskArrival = 1,
  kUsageSample = 2,
};

struct StreamEvent {
  StreamEventKind kind = StreamEventKind::kUsageSample;
  int32_t machine = -1;
  // Stable identity of the task instance: its index in the backing trace's
  // task columns. TaskId is the trace-reported id and is NOT guaranteed
  // unique; consumers key roster membership on task_index.
  int32_t task_index = -1;
  Interval tick = 0;
  TaskId task_id = 0;
  double usage = 0.0;  // kUsageSample only; 0 otherwise.
  double limit = 0.0;  // the task's configured limit (all kinds).
};

}  // namespace crf

#endif  // CRF_SERVE_EVENT_H_
