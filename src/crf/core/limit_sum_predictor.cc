#include "crf/core/limit_sum_predictor.h"

#include <cmath>

#include "crf/util/byte_io.h"

namespace crf {

namespace {
constexpr uint8_t kStateTag = 'L';
}  // namespace

void LimitSumPredictor::Observe(Interval /*now*/, std::span<const TaskSample> tasks) {
  limit_sum_ = 0.0;
  for (const TaskSample& task : tasks) {
    limit_sum_ += task.limit;
  }
}

double LimitSumPredictor::PredictPeak() const { return limit_sum_; }

bool LimitSumPredictor::SaveState(ByteWriter& out) const {
  out.Write<uint8_t>(kStateTag);
  out.Write<double>(limit_sum_);
  return true;
}

bool LimitSumPredictor::LoadState(ByteReader& in) {
  const uint8_t tag = in.Read<uint8_t>();
  const double limit_sum = in.Read<double>();
  if (!in.ok() || tag != kStateTag || !std::isfinite(limit_sum) || limit_sum < 0.0) {
    in.Fail();
    return false;
  }
  limit_sum_ = limit_sum;
  return true;
}

}  // namespace crf
