#include "crf/core/limit_sum_predictor.h"

namespace crf {

void LimitSumPredictor::Observe(Interval /*now*/, std::span<const TaskSample> tasks) {
  limit_sum_ = 0.0;
  for (const TaskSample& task : tasks) {
    limit_sum_ += task.limit;
  }
}

double LimitSumPredictor::PredictPeak() const { return limit_sum_; }

}  // namespace crf
