// Moving window of the machine-level aggregate usage with incrementally
// maintained moments, factored out of NSigmaPredictor so the standalone
// predictor and the sweep engine's shared N-sigma state run the exact same
// arithmetic (the differential tests compare them at tight tolerance).
//
// A ring buffer of the last `capacity` aggregate samples plus running
// sum / sum-of-squares; the variance falls back to an exact Welford pass
// (which also refreshes the running moments) whenever the incremental value
// is within cancellation noise of zero.

#ifndef CRF_CORE_AGGREGATE_WINDOW_H_
#define CRF_CORE_AGGREGATE_WINDOW_H_

#include <vector>

namespace crf {

class ByteReader;
class ByteWriter;

class AggregateWindow {
 public:
  explicit AggregateWindow(int capacity);

  // Appends a sample, evicting the oldest if the window is full.
  void Push(double value);

  // Discards all samples, keeping capacity and storage.
  void Reset();

  int count() const { return count_; }

  // Mean of the window; requires count() > 0.
  double Mean() const { return sum_ / count_; }

  // Population standard deviation of the window; requires count() > 0.
  // Non-const: may recompute and refresh the running moments exactly.
  double Stddev();

  // Checkpoint support (crf/serve): serializes the ring layout and the
  // incrementally maintained moments, so a restored window continues
  // bit-identically (the running sums carry drift that a recompute from the
  // samples would cancel differently). LoadState validates against this
  // window's capacity and returns false on any mismatch.
  void SaveState(ByteWriter& out) const;
  bool LoadState(ByteReader& in);

 private:
  std::vector<double> window_;
  int head_ = 0;
  int count_ = 0;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
};

}  // namespace crf

#endif  // CRF_CORE_AGGREGATE_WINDOW_H_
