#include "crf/core/n_sigma_predictor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "crf/util/check.h"

namespace crf {

NSigmaPredictor::NSigmaPredictor(double n, const PredictorConfig& config)
    : n_(n), config_(config) {
  CRF_CHECK_GT(n, 0.0);
  CRF_CHECK_GT(config.min_num_samples, 0);
  CRF_CHECK_GE(config.max_num_samples, config.min_num_samples);
  window_.resize(config.max_num_samples);
}

void NSigmaPredictor::RebuildRoster(std::span<const TaskSample> tasks) {
  // Carry warm-up progress over for tasks that survive the event; absent
  // tasks have departed and their state is dropped (re-arrival of the same
  // id starts a fresh warm-up, per the Observe contract).
  std::unordered_map<TaskId, Interval> carried;
  carried.reserve(roster_ids_.size());
  for (size_t i = 0; i < roster_ids_.size(); ++i) {
    carried.emplace(roster_ids_[i], samples_seen_[i]);
  }
  roster_ids_.resize(tasks.size());
  samples_seen_.resize(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    roster_ids_[i] = tasks[i].task_id;
    const auto it = carried.find(tasks[i].task_id);
    samples_seen_[i] = it != carried.end() ? it->second : 0;
  }
}

void NSigmaPredictor::PushWindow(double value) {
  if (window_count_ == static_cast<int>(window_.size())) {
    const double evicted = window_[window_head_];
    window_sum_ -= evicted;
    window_sumsq_ -= evicted * evicted;
    window_[window_head_] = value;
    window_head_ = window_head_ + 1 == window_count_ ? 0 : window_head_ + 1;
  } else {
    window_[(window_head_ + window_count_) % window_.size()] = value;
    ++window_count_;
  }
  window_sum_ += value;
  window_sumsq_ += value * value;
}

double NSigmaPredictor::WindowVariance(double mean) {
  const double n = static_cast<double>(window_count_);
  double variance = window_sumsq_ / n - mean * mean;
  // Incremental sum-of-squares loses ~eps * E[x^2] absolutely; when the
  // computed variance is within that noise floor (flat signals, long runs),
  // recompute exactly and refresh the moments to cancel accumulated drift.
  const double noise_floor = 1e-12 * std::max(window_sumsq_ / n, 1e-300);
  if (variance < noise_floor) {
    double exact_mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double sumsq = 0.0;
    for (int i = 0; i < window_count_; ++i) {
      const double x = window_[(window_head_ + i) % window_.size()];
      const double delta = x - exact_mean;
      exact_mean += delta / (i + 1);
      m2 += delta * (x - exact_mean);
      sum += x;
      sumsq += x * x;
    }
    window_sum_ = sum;
    window_sumsq_ = sumsq;
    variance = m2 / n;
  }
  return std::max(variance, 0.0);
}

void NSigmaPredictor::Observe(Interval /*now*/, std::span<const TaskSample> tasks) {
  bool roster_matches = roster_ids_.size() == tasks.size();
  if (roster_matches) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (roster_ids_[i] != tasks[i].task_id) {
        roster_matches = false;
        break;
      }
    }
  }
  if (!roster_matches) {
    RebuildRoster(tasks);
  }

  double warmed_usage = 0.0;
  double warming_limit = 0.0;
  double usage_now = 0.0;
  double limit_sum = 0.0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    const TaskSample& sample = tasks[i];
    usage_now += sample.usage;
    limit_sum += sample.limit;
    if (++samples_seen_[i] >= config_.min_num_samples) {
      warmed_usage += sample.usage;
    } else {
      warming_limit += sample.limit;
    }
  }

  PushWindow(warmed_usage);
  const double mean = window_sum_ / window_count_;
  const double stddev = std::sqrt(WindowVariance(mean));
  const double raw = mean + n_ * stddev + warming_limit;
  prediction_ = ClampPrediction(raw, usage_now, limit_sum);
}

double NSigmaPredictor::PredictPeak() const { return prediction_; }

void NSigmaPredictor::Reset() {
  roster_ids_.clear();
  samples_seen_.clear();
  window_head_ = 0;
  window_count_ = 0;
  window_sum_ = 0.0;
  window_sumsq_ = 0.0;
  prediction_ = 0.0;
}

std::string NSigmaPredictor::name() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "n-sigma-%.0f", n_);
  return buffer;
}

}  // namespace crf
