#include "crf/core/n_sigma_predictor.h"

#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "crf/util/byte_io.h"
#include "crf/util/check.h"

namespace crf {

namespace {
constexpr uint8_t kStateTag = 'N';
// Upper bound on a serialized roster: far above any real machine's resident
// task count, small enough to reject a corrupted length before allocating.
constexpr uint64_t kMaxRosterTasks = 1 << 20;
}  // namespace

NSigmaPredictor::NSigmaPredictor(double n, const PredictorConfig& config)
    : n_(n), config_(config), window_(config.max_num_samples) {
  CRF_CHECK_GT(n, 0.0);
  CRF_CHECK_GT(config.min_num_samples, 0);
  CRF_CHECK_GE(config.max_num_samples, config.min_num_samples);
}

void NSigmaPredictor::RebuildRoster(std::span<const TaskSample> tasks) {
  // Carry warm-up progress over for tasks that survive the event; absent
  // tasks have departed and their state is dropped (re-arrival of the same
  // id starts a fresh warm-up, per the Observe contract).
  std::unordered_map<TaskId, Interval> carried;
  carried.reserve(roster_ids_.size());
  for (size_t i = 0; i < roster_ids_.size(); ++i) {
    carried.emplace(roster_ids_[i], samples_seen_[i]);
  }
  roster_ids_.resize(tasks.size());
  samples_seen_.resize(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    roster_ids_[i] = tasks[i].task_id;
    const auto it = carried.find(tasks[i].task_id);
    samples_seen_[i] = it != carried.end() ? it->second : 0;
  }
}

void NSigmaPredictor::Observe(Interval /*now*/, std::span<const TaskSample> tasks) {
  bool roster_matches = roster_ids_.size() == tasks.size();
  if (roster_matches) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (roster_ids_[i] != tasks[i].task_id) {
        roster_matches = false;
        break;
      }
    }
  }
  if (!roster_matches) {
    RebuildRoster(tasks);
  }

  double warmed_usage = 0.0;
  double warming_limit = 0.0;
  double usage_now = 0.0;
  double limit_sum = 0.0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    const TaskSample& sample = tasks[i];
    usage_now += sample.usage;
    limit_sum += sample.limit;
    if (++samples_seen_[i] >= config_.min_num_samples) {
      warmed_usage += sample.usage;
    } else {
      warming_limit += sample.limit;
    }
  }

  window_.Push(warmed_usage);
  // Mean before Stddev: Stddev may refresh the running moments, and the
  // published mean must be the one the variance was computed against.
  const double mean = window_.Mean();
  const double stddev = window_.Stddev();
  prediction_ = ClampPrediction(mean + n_ * stddev + warming_limit, usage_now, limit_sum);
}

double NSigmaPredictor::PredictPeak() const { return prediction_; }

void NSigmaPredictor::Reset() {
  roster_ids_.clear();
  samples_seen_.clear();
  window_.Reset();
  prediction_ = 0.0;
}

std::string NSigmaPredictor::name() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "n-sigma-%.0f", n_);
  return buffer;
}

bool NSigmaPredictor::SaveState(ByteWriter& out) const {
  out.Write<uint8_t>(kStateTag);
  out.WriteVec(roster_ids_);
  out.WriteVec(samples_seen_);
  window_.SaveState(out);
  out.Write<double>(prediction_);
  return true;
}

bool NSigmaPredictor::LoadState(ByteReader& in) {
  const uint8_t tag = in.Read<uint8_t>();
  std::vector<TaskId> roster_ids;
  std::vector<Interval> samples_seen;
  if (!in.ReadVec(roster_ids, kMaxRosterTasks) || !in.ReadVec(samples_seen, kMaxRosterTasks) ||
      tag != kStateTag || samples_seen.size() != roster_ids.size()) {
    in.Fail();
    return false;
  }
  for (const Interval seen : samples_seen) {
    if (seen < 0) {
      in.Fail();
      return false;
    }
  }
  if (!window_.LoadState(in)) {
    return false;
  }
  const double prediction = in.Read<double>();
  if (!in.ok() || !std::isfinite(prediction) || prediction < 0.0) {
    in.Fail();
    return false;
  }
  roster_ids_ = std::move(roster_ids);
  samples_seen_ = std::move(samples_seen);
  prediction_ = prediction;
  return true;
}

}  // namespace crf
