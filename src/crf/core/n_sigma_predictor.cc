#include "crf/core/n_sigma_predictor.h"

#include <cstdio>

#include "crf/stats/running_stats.h"
#include "crf/util/check.h"

namespace crf {

NSigmaPredictor::NSigmaPredictor(double n, const PredictorConfig& config)
    : n_(n), config_(config) {
  CRF_CHECK_GT(n, 0.0);
  CRF_CHECK_GT(config.min_num_samples, 0);
  CRF_CHECK_GE(config.max_num_samples, config.min_num_samples);
}

void NSigmaPredictor::Observe(Interval now, std::span<const TaskSample> tasks) {
  double warmed_usage = 0.0;
  double warming_limit = 0.0;
  double usage_now = 0.0;
  double limit_sum = 0.0;
  for (const TaskSample& sample : tasks) {
    TaskState& state = tasks_[sample.task_id];
    ++state.samples_seen;
    state.last_seen = now;

    usage_now += sample.usage;
    limit_sum += sample.limit;
    if (state.samples_seen >= config_.min_num_samples) {
      warmed_usage += sample.usage;
    } else {
      warming_limit += sample.limit;
    }
  }
  std::erase_if(tasks_, [now](const auto& entry) { return entry.second.last_seen != now; });

  aggregate_window_.push_back(warmed_usage);
  while (static_cast<Interval>(aggregate_window_.size()) > config_.max_num_samples) {
    aggregate_window_.pop_front();
  }

  RunningStats stats;
  for (const double value : aggregate_window_) {
    stats.Add(value);
  }
  const double raw = stats.mean() + n_ * stats.stddev() + warming_limit;
  prediction_ = ClampPrediction(raw, usage_now, limit_sum);
}

double NSigmaPredictor::PredictPeak() const { return prediction_; }

std::string NSigmaPredictor::name() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "n-sigma-%.0f", n_);
  return buffer;
}

}  // namespace crf
