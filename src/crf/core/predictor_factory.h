// Declarative predictor construction.
//
// The simulator runs many predictor configurations over the same trace (the
// paper's Figs 8-12 are parameter sweeps); a PredictorSpec is a value type
// describing one configuration, and CreatePredictor instantiates a fresh,
// stateless-from-birth predictor per simulated machine.

#ifndef CRF_CORE_PREDICTOR_FACTORY_H_
#define CRF_CORE_PREDICTOR_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "crf/core/predictor.h"

namespace crf {

struct PredictorSpec {
  enum class Type {
    kLimitSum,
    kBorgDefault,
    kRcLike,
    kNSigma,
    kAutopilot,
    kChance,
    kFlex,
    kMax,  // Keep last: checkpoint spec encoding relies on it.
  };

  Type type = Type::kLimitSum;
  double phi = 0.9;          // borg-default scale factor
  double percentile = 99.0;  // rc-like / flex percentile
  double n_sigma = 5.0;      // n-sigma multiplier
  double margin = 1.10;      // autopilot / flex safety margin
  double target = 0.01;      // chance-constrained violation probability
  PredictorConfig config;    // warm-up / history (usage-driven predictors)
  std::vector<PredictorSpec> components;  // max components

  // Human-readable name matching PeakPredictor::name().
  std::string Name() const;

  // Structural equality over every knob (names alone are ambiguous: they omit
  // warm-up/history). Used to decide whether a pooled predictor instance can
  // be Reset() and reused for a spec.
  bool operator==(const PredictorSpec&) const = default;
};

// Convenience constructors with the paper's defaults.
PredictorSpec LimitSumSpec();
PredictorSpec BorgDefaultSpec(double phi = 0.9);
PredictorSpec RcLikeSpec(double percentile = 99.0,
                         Interval warmup = 2 * kIntervalsPerHour,
                         Interval history = 10 * kIntervalsPerHour);
PredictorSpec NSigmaSpec(double n = 5.0, Interval warmup = 2 * kIntervalsPerHour,
                         Interval history = 10 * kIntervalsPerHour);
// Autopilot-like per-task limit baseline: sum of min(limit, margin * p-th
// percentile of each task's recent usage). Defaults follow Autopilot's 98th
// percentile with a 10% margin.
PredictorSpec AutopilotSpec(double percentile = 98.0, double margin = 1.10,
                            Interval warmup = 2 * kIntervalsPerHour,
                            Interval history = 10 * kIntervalsPerHour);
// Chance-constrained peak: the (1 - target) quantile of the windowed
// machine-level warmed usage, targeting a per-interval violation probability
// of `target`.
PredictorSpec ChanceSpec(double target = 0.01, Interval warmup = 2 * kIntervalsPerHour,
                         Interval history = 10 * kIntervalsPerHour);
// Flex-style adaptive phi: margin * p-th percentile of the machine's
// windowed usage/limit ratio, capped at 1, applied to the limit sum.
PredictorSpec FlexSpec(double percentile = 95.0, double margin = 1.2,
                       Interval warmup = 2 * kIntervalsPerHour,
                       Interval history = 10 * kIntervalsPerHour);
PredictorSpec MaxSpec(std::vector<PredictorSpec> components);

// The simulation-tuned max predictor of Section 5.4:
// max(n-sigma(5), rc-like(p99)) with 2h warm-up and 10h history.
PredictorSpec SimulationMaxSpec();
// The production deployment configuration of Section 6.1:
// max(n-sigma(3), rc-like(p80)) with 2h warm-up and 10h history.
PredictorSpec ProductionMaxSpec();

std::unique_ptr<PeakPredictor> CreatePredictor(const PredictorSpec& spec);

}  // namespace crf

#endif  // CRF_CORE_PREDICTOR_FACTORY_H_
