// Bounded per-task usage history with O(log n + n_window) percentile access.
//
// The node agent "only maintains a moving window storing the most recent
// samples" per task (Section 4). TaskHistory is that window: a ring buffer
// of the last `capacity` samples plus a sorted mirror kept incrementally, so
// the RC-like predictor's per-poll percentile is a single interpolation
// instead of a sort.

#ifndef CRF_CORE_TASK_HISTORY_H_
#define CRF_CORE_TASK_HISTORY_H_

#include <cstdint>
#include <vector>

namespace crf {

class TaskHistory {
 public:
  explicit TaskHistory(int capacity);

  // Appends a sample, evicting the oldest if the window is full.
  void Push(float sample);

  int size() const { return static_cast<int>(ring_.size()); }
  int capacity() const { return capacity_; }
  bool empty() const { return ring_.empty(); }

  // Percentile p in [0, 100] over the window, linear interpolation.
  // Requires a non-empty window.
  double Percentile(double p) const;

  // Mean over the window; 0 when empty.
  double Mean() const;

  // Newest sample; requires non-empty.
  float Latest() const;

 private:
  int capacity_;
  int head_ = 0;  // Index of the oldest sample once the ring is full.
  std::vector<float> ring_;
  std::vector<float> sorted_;
};

}  // namespace crf

#endif  // CRF_CORE_TASK_HISTORY_H_
