// Bounded per-task usage history with O(log n) percentile access.
//
// The node agent "only maintains a moving window storing the most recent
// samples" per task (Section 4). TaskHistory is that window, backed by the
// Fenwick-indexed chunked IndexableWindow: pushes cost a chunk insert plus a
// Fenwick point update instead of an O(window) sorted-vector memmove, the
// RC-like predictor's per-poll percentile is two rank selections and one
// interpolation, and the mean is a running sum. Non-finite samples are
// rejected at Push (a NaN would silently corrupt the ordered index and only
// trip the eviction check a full window later).

#ifndef CRF_CORE_TASK_HISTORY_H_
#define CRF_CORE_TASK_HISTORY_H_

#include "crf/core/indexable_window.h"

namespace crf {

class TaskHistory {
 public:
  explicit TaskHistory(int capacity) : window_(capacity) {}

  // Appends a sample, evicting the oldest if the window is full. The sample
  // must be finite.
  void Push(float sample) { window_.Push(sample); }

  // Discards all samples, keeping capacity and allocated storage.
  void Clear() { window_.Clear(); }

  int size() const { return window_.size(); }
  int capacity() const { return window_.capacity(); }
  bool empty() const { return window_.empty(); }

  // Percentile p in [0, 100] over the window, linear interpolation.
  // Requires a non-empty window.
  double Percentile(double p) const { return window_.Percentile(p); }

  // Mean over the window; 0 when empty.
  double Mean() const { return window_.Mean(); }

  // Newest sample; requires non-empty.
  float Latest() const { return window_.Latest(); }

  // Checkpoint support: see IndexableWindow::SaveState/LoadState.
  void SaveState(ByteWriter& out) const { window_.SaveState(out); }
  bool LoadState(ByteReader& in) { return window_.LoadState(in); }

 private:
  IndexableWindow window_;
};

}  // namespace crf

#endif  // CRF_CORE_TASK_HISTORY_H_
