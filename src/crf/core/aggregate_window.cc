#include "crf/core/aggregate_window.h"

#include <algorithm>
#include <cmath>

#include "crf/util/byte_io.h"
#include "crf/util/check.h"

namespace crf {

AggregateWindow::AggregateWindow(int capacity) {
  CRF_CHECK_GT(capacity, 0);
  window_.resize(capacity);
}

void AggregateWindow::Push(double value) {
  if (count_ == static_cast<int>(window_.size())) {
    const double evicted = window_[head_];
    sum_ -= evicted;
    sumsq_ -= evicted * evicted;
    window_[head_] = value;
    head_ = head_ + 1 == count_ ? 0 : head_ + 1;
  } else {
    window_[(head_ + count_) % window_.size()] = value;
    ++count_;
  }
  sum_ += value;
  sumsq_ += value * value;
}

void AggregateWindow::Reset() {
  head_ = 0;
  count_ = 0;
  sum_ = 0.0;
  sumsq_ = 0.0;
}

void AggregateWindow::SaveState(ByteWriter& out) const {
  out.Write<int32_t>(static_cast<int32_t>(window_.size()));
  out.Write<int32_t>(head_);
  out.Write<int32_t>(count_);
  out.Write<double>(sum_);
  out.Write<double>(sumsq_);
  // The full physical ring: live samples sit at fixed physical positions and
  // the restored layout must match so future evictions read the same slots.
  out.WriteVec(window_);
}

bool AggregateWindow::LoadState(ByteReader& in) {
  const int32_t capacity = in.Read<int32_t>();
  const int32_t head = in.Read<int32_t>();
  const int32_t count = in.Read<int32_t>();
  const double sum = in.Read<double>();
  const double sumsq = in.Read<double>();
  std::vector<double> window;
  if (!in.ReadVec(window, window_.size())) {
    return false;
  }
  if (!in.ok() || capacity != static_cast<int32_t>(window_.size()) ||
      window.size() != window_.size() || count < 0 || count > capacity || head < 0 ||
      (count == capacity ? head >= capacity : head != 0) || !std::isfinite(sum) ||
      !std::isfinite(sumsq)) {
    in.Fail();
    return false;
  }
  for (int i = 0; i < count; ++i) {
    if (!std::isfinite(window[(head + i) % window.size()])) {
      in.Fail();
      return false;
    }
  }
  window_ = std::move(window);
  head_ = head;
  count_ = count;
  sum_ = sum;
  sumsq_ = sumsq;
  return true;
}

double AggregateWindow::Stddev() {
  const double mean = Mean();
  const double n = static_cast<double>(count_);
  double variance = sumsq_ / n - mean * mean;
  // Incremental sum-of-squares loses ~eps * E[x^2] absolutely; when the
  // computed variance is within that noise floor (flat signals, long runs),
  // recompute exactly and refresh the moments to cancel accumulated drift.
  const double noise_floor = 1e-12 * std::max(sumsq_ / n, 1e-300);
  if (variance < noise_floor) {
    double exact_mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double sumsq = 0.0;
    for (int i = 0; i < count_; ++i) {
      const double x = window_[(head_ + i) % window_.size()];
      const double delta = x - exact_mean;
      exact_mean += delta / (i + 1);
      m2 += delta * (x - exact_mean);
      sum += x;
      sumsq += x * x;
    }
    sum_ = sum;
    sumsq_ = sumsq;
    variance = m2 / n;
  }
  return std::sqrt(std::max(variance, 0.0));
}

}  // namespace crf
