#include "crf/core/aggregate_window.h"

#include <algorithm>
#include <cmath>

#include "crf/util/check.h"

namespace crf {

AggregateWindow::AggregateWindow(int capacity) {
  CRF_CHECK_GT(capacity, 0);
  window_.resize(capacity);
}

void AggregateWindow::Push(double value) {
  if (count_ == static_cast<int>(window_.size())) {
    const double evicted = window_[head_];
    sum_ -= evicted;
    sumsq_ -= evicted * evicted;
    window_[head_] = value;
    head_ = head_ + 1 == count_ ? 0 : head_ + 1;
  } else {
    window_[(head_ + count_) % window_.size()] = value;
    ++count_;
  }
  sum_ += value;
  sumsq_ += value * value;
}

void AggregateWindow::Reset() {
  head_ = 0;
  count_ = 0;
  sum_ = 0.0;
  sumsq_ = 0.0;
}

double AggregateWindow::Stddev() {
  const double mean = Mean();
  const double n = static_cast<double>(count_);
  double variance = sumsq_ / n - mean * mean;
  // Incremental sum-of-squares loses ~eps * E[x^2] absolutely; when the
  // computed variance is within that noise floor (flat signals, long runs),
  // recompute exactly and refresh the moments to cancel accumulated drift.
  const double noise_floor = 1e-12 * std::max(sumsq_ / n, 1e-300);
  if (variance < noise_floor) {
    double exact_mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double sumsq = 0.0;
    for (int i = 0; i < count_; ++i) {
      const double x = window_[(head_ + i) % window_.size()];
      const double delta = x - exact_mean;
      exact_mean += delta / (i + 1);
      m2 += delta * (x - exact_mean);
      sum += x;
      sumsq += x * x;
    }
    sum_ = sum;
    sumsq_ = sumsq;
    variance = m2 / n;
  }
  return std::sqrt(std::max(variance, 0.0));
}

}  // namespace crf
