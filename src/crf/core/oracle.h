// The clairvoyant peak oracle (paper Section 3).
//
// PO(J(tau), tau) = max over t in [tau, tau + horizon) of the total usage of
// the tasks resident on the machine at tau. Crucially, the maximized series
// is *arrival-filtered*: tasks that arrive after tau are excluded (the
// scheduler is deciding what fits *now*; the oracle answers for the current
// task set, with departed tasks contributing zero). Section 5.2 picks a
// 24-hour horizon as the accuracy/cost sweet spot.
//
// ComputeTotalUsageOracle is the cheap unfiltered variant — a sliding max
// over the full machine series including future arrivals. It upper-bounds
// the exact oracle and is provided as an ablation.

#ifndef CRF_CORE_ORACLE_H_
#define CRF_CORE_ORACLE_H_

#include <vector>

#include "crf/trace/trace.h"
#include "crf/util/time_grid.h"

namespace crf {

// Exact arrival-filtered oracle series for one machine, O(T + N*(H + len))
// via a monotonic-deque sliding maximum per constant-task-set segment.
std::vector<double> ComputePeakOracle(const CellTrace& cell, int machine_index,
                                      Interval horizon = kIntervalsPerDay);

// Unfiltered ablation: forward sliding max of the machine's total usage.
std::vector<double> ComputeTotalUsageOracle(const CellTrace& cell, int machine_index,
                                            Interval horizon = kIntervalsPerDay);

}  // namespace crf

#endif  // CRF_CORE_ORACLE_H_
