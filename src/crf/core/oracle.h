// The clairvoyant peak oracle (paper Section 3).
//
// PO(J(tau), tau) = max over t in [tau, tau + horizon) of the total usage of
// the tasks resident on the machine at tau. Crucially, the maximized series
// is *arrival-filtered*: tasks that arrive after tau are excluded (the
// scheduler is deciding what fits *now*; the oracle answers for the current
// task set, with departed tasks contributing zero). Section 5.2 picks a
// 24-hour horizon as the accuracy/cost sweet spot.
//
// ComputeTotalUsageOracle is the cheap unfiltered variant — a sliding max
// over the full machine series including future arrivals. It upper-bounds
// the exact oracle and is provided as an ablation.
//
// The oracle depends only on (cell, machine, horizon, kind) — never on the
// predictor under test — so parameter sweeps (Figs 8-12) re-derive the exact
// same series for every sweep point. OracleCache memoizes the series across
// sweep points, turning an O(points x oracle cost) sweep into O(oracle cost).

#ifndef CRF_CORE_ORACLE_H_
#define CRF_CORE_ORACLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "crf/stats/window_max.h"
#include "crf/trace/trace.h"
#include "crf/util/time_grid.h"

namespace crf {

// Which oracle definition to compute/cache.
enum class OracleKind : uint8_t {
  kPeak,        // Exact arrival-filtered oracle (the paper's PO).
  kTotalUsage,  // Unfiltered ablation: sliding max of total machine usage.
};

// Reusable scratch for the oracle computations; buffers grow to the
// high-water size and are reused, so steady-state recomputation allocates
// nothing.
struct OracleScratch {
  std::vector<int32_t> order;
  std::vector<double> aggregate;
  MonotonicMaxDeque deque;
};

// Exact arrival-filtered oracle series for one machine, O(T + N*(H + len))
// via a monotonic-deque sliding maximum per constant-task-set segment.
// The Into variant writes into `out` reusing its capacity.
void ComputePeakOracleInto(const CellTrace& cell, int machine_index, Interval horizon,
                           OracleScratch& scratch, std::vector<double>& out);
std::vector<double> ComputePeakOracle(const CellTrace& cell, int machine_index,
                                      Interval horizon = kIntervalsPerDay);

// Unfiltered ablation: forward sliding max of the machine's total usage.
void ComputeTotalUsageOracleInto(const CellTrace& cell, int machine_index,
                                 Interval horizon, OracleScratch& scratch,
                                 std::vector<double>& out);
std::vector<double> ComputeTotalUsageOracle(const CellTrace& cell, int machine_index,
                                            Interval horizon = kIntervalsPerDay);

// Thread-safe memo of oracle series keyed by (cell identity, machine,
// horizon, kind). Cell identity is the CellTrace's address: the caller owns
// the cache's scope and must not mutate or destroy a cell while its entries
// are live (call Clear() before reusing a cache across regenerated cells).
// Cached series are shared, so a hit is bit-identical to the miss that
// populated it.
class OracleCache {
 public:
  using Series = std::shared_ptr<const std::vector<double>>;

  // Returns the cached series for the key, computing it on first use. Safe
  // to call concurrently; racing computations of the same key are resolved
  // first-insert-wins so every caller sees one shared series.
  Series GetOrCompute(const CellTrace& cell, int machine_index, Interval horizon,
                      OracleKind kind);

  void Clear();

  int64_t hits() const;
  int64_t misses() const;
  size_t size() const;

 private:
  struct Key {
    const CellTrace* cell;
    int32_t machine;
    Interval horizon;
    OracleKind kind;

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, Series, KeyHash> entries_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace crf

#endif  // CRF_CORE_ORACLE_H_
