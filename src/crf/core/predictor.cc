#include "crf/core/predictor.h"

#include <algorithm>

namespace crf {

double ClampPrediction(double raw, double usage_now, double limit_sum) {
  return std::clamp(raw, std::min(usage_now, limit_sum), limit_sum);
}

}  // namespace crf
