#include "crf/core/predictor.h"

#include <algorithm>

#include "crf/util/byte_io.h"

namespace crf {

double ClampPrediction(double raw, double usage_now, double limit_sum) {
  return std::clamp(raw, std::min(usage_now, limit_sum), limit_sum);
}

bool PeakPredictor::SaveState(ByteWriter& /*out*/) const { return false; }

bool PeakPredictor::LoadState(ByteReader& in) {
  in.Fail();
  return false;
}

}  // namespace crf
