// The max predictor (paper Section 4): the pointwise maximum over a set of
// component predictors. No single predictor suits every machine at all
// times; taking the max keeps the most conservative (safest) estimate while
// still overcommitting wherever *all* components agree there is room. The
// paper's deployed configuration is max(N-sigma, RC-like).

#ifndef CRF_CORE_MAX_PREDICTOR_H_
#define CRF_CORE_MAX_PREDICTOR_H_

#include <memory>
#include <vector>

#include "crf/core/predictor.h"

namespace crf {

class MaxPredictor : public PeakPredictor {
 public:
  // Requires at least one component.
  explicit MaxPredictor(std::vector<std::unique_ptr<PeakPredictor>> components);

  void Observe(Interval now, std::span<const TaskSample> tasks) override;
  double PredictPeak() const override;
  void Reset() override;
  std::string name() const override;

  bool SaveState(ByteWriter& out) const override;
  bool LoadState(ByteReader& in) override;

  const std::vector<std::unique_ptr<PeakPredictor>>& components() const { return components_; }

 private:
  std::vector<std::unique_ptr<PeakPredictor>> components_;
};

}  // namespace crf

#endif  // CRF_CORE_MAX_PREDICTOR_H_
