#include "crf/core/oracle.h"

#include <algorithm>

#include "crf/util/check.h"

namespace crf {

void ComputePeakOracleInto(const CellTrace& cell, int machine_index, Interval horizon,
                           OracleScratch& scratch, std::vector<double>& out) {
  CRF_CHECK_GE(machine_index, 0);
  CRF_CHECK_LT(machine_index, cell.num_machines());
  CRF_CHECK_GE(horizon, 1);
  const Interval num_intervals = cell.num_intervals;
  const std::span<const Interval> starts = cell.task_starts();

  // Tasks ordered by arrival; the aggregate series of "tasks with start <=
  // tau" is constant between consecutive arrivals, so one sliding-window max
  // per segment gives the exact oracle.
  std::vector<int32_t>& order = scratch.order;
  const std::span<const int32_t> task_indices = cell.machine_tasks(machine_index);
  order.assign(task_indices.begin(), task_indices.end());
  std::sort(order.begin(), order.end(), [starts](int32_t a, int32_t b) {
    return starts[a] < starts[b];
  });

  std::vector<double>& aggregate = scratch.aggregate;
  aggregate.assign(num_intervals, 0.0);
  out.assign(num_intervals, 0.0);
  size_t next = 0;
  Interval tau = 0;
  while (tau < num_intervals) {
    // Admit every task arriving at or before tau into the aggregate.
    while (next < order.size() && starts[order[next]] <= tau) {
      const TaskView task = cell.task(order[next]);
      const std::span<const float> usage = task.usage();
      const Interval end = std::min(task.end(), num_intervals);
      for (Interval t = task.start(); t < end; ++t) {
        aggregate[t] += usage[t - task.start()];
      }
      ++next;
    }
    const Interval segment_end =
        next < order.size() ? std::min(starts[order[next]], num_intervals) : num_intervals;
    CRF_CHECK_GT(segment_end, tau);

    // Sliding max of `aggregate` over [u, u+horizon) for u in the segment.
    MonotonicMaxDeque& deque = scratch.deque;
    deque.Clear();
    Interval filled_to = tau;
    for (Interval u = tau; u < segment_end; ++u) {
      const Interval window_end =
          static_cast<Interval>(std::min<int64_t>(static_cast<int64_t>(u) + horizon,
                                                  num_intervals));
      while (filled_to < window_end) {
        deque.Push(filled_to, aggregate[filled_to]);
        ++filled_to;
      }
      deque.ExpireBelow(u);
      out[u] = deque.Max();
    }
    tau = segment_end;
  }
}

std::vector<double> ComputePeakOracle(const CellTrace& cell, int machine_index,
                                      Interval horizon) {
  OracleScratch scratch;
  std::vector<double> oracle;
  ComputePeakOracleInto(cell, machine_index, horizon, scratch, oracle);
  return oracle;
}

void ComputeTotalUsageOracleInto(const CellTrace& cell, int machine_index,
                                 Interval horizon, OracleScratch& scratch,
                                 std::vector<double>& out) {
  CRF_CHECK_GE(machine_index, 0);
  CRF_CHECK_LT(machine_index, cell.num_machines());
  CRF_CHECK_GE(horizon, 1);
  const Interval num_intervals = cell.num_intervals;

  // The machine's aggregate usage series including future arrivals.
  std::vector<double>& usage = scratch.aggregate;
  usage.assign(num_intervals, 0.0);
  for (const int32_t index : cell.machine_tasks(machine_index)) {
    const TaskView task = cell.task(index);
    const std::span<const float> task_usage = task.usage();
    const Interval end = std::min(task.end(), num_intervals);
    for (Interval t = task.start(); t < end; ++t) {
      usage[t] += task_usage[t - task.start()];
    }
  }
  ForwardWindowMaxInto(usage, horizon, scratch.deque, out);
}

std::vector<double> ComputeTotalUsageOracle(const CellTrace& cell, int machine_index,
                                            Interval horizon) {
  OracleScratch scratch;
  std::vector<double> oracle;
  ComputeTotalUsageOracleInto(cell, machine_index, horizon, scratch, oracle);
  return oracle;
}

size_t OracleCache::KeyHash::operator()(const Key& key) const {
  // FNV-style combine; the fields are small and well-distributed enough.
  size_t h = std::hash<const void*>()(key.cell);
  h = h * 1099511628211ull ^ std::hash<int64_t>()(key.machine);
  h = h * 1099511628211ull ^ std::hash<int64_t>()(static_cast<int64_t>(key.horizon));
  h = h * 1099511628211ull ^ static_cast<size_t>(key.kind);
  return h;
}

OracleCache::Series OracleCache::GetOrCompute(const CellTrace& cell, int machine_index,
                                              Interval horizon, OracleKind kind) {
  const Key key{&cell, machine_index, horizon, kind};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  // Compute outside the lock so distinct machines fill the cache in
  // parallel; a racing duplicate computation of the same key is wasted work
  // but harmless (first insert wins below).
  auto series = std::make_shared<const std::vector<double>>(
      kind == OracleKind::kPeak ? ComputePeakOracle(cell, machine_index, horizon)
                                : ComputeTotalUsageOracle(cell, machine_index, horizon));
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.emplace(key, std::move(series));
  return it->second;
}

void OracleCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

int64_t OracleCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

int64_t OracleCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

size_t OracleCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace crf
