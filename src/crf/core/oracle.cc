#include "crf/core/oracle.h"

#include <algorithm>

#include "crf/stats/window_max.h"
#include "crf/util/check.h"

namespace crf {

std::vector<double> ComputePeakOracle(const CellTrace& cell, int machine_index,
                                      Interval horizon) {
  CRF_CHECK_GE(machine_index, 0);
  CRF_CHECK_LT(machine_index, static_cast<int>(cell.machines.size()));
  CRF_CHECK_GE(horizon, 1);
  const Interval num_intervals = cell.num_intervals;

  // Tasks ordered by arrival; the aggregate series of "tasks with start <=
  // tau" is constant between consecutive arrivals, so one sliding-window max
  // per segment gives the exact oracle.
  std::vector<int32_t> order = cell.machines[machine_index].task_indices;
  std::sort(order.begin(), order.end(), [&cell](int32_t a, int32_t b) {
    return cell.tasks[a].start < cell.tasks[b].start;
  });

  std::vector<double> aggregate(num_intervals, 0.0);
  std::vector<double> oracle(num_intervals, 0.0);
  size_t next = 0;
  Interval tau = 0;
  while (tau < num_intervals) {
    // Admit every task arriving at or before tau into the aggregate.
    while (next < order.size() && cell.tasks[order[next]].start <= tau) {
      const TaskTrace& task = cell.tasks[order[next]];
      const Interval end = std::min(task.end(), num_intervals);
      for (Interval t = task.start; t < end; ++t) {
        aggregate[t] += task.usage[t - task.start];
      }
      ++next;
    }
    const Interval segment_end =
        next < order.size() ? std::min(cell.tasks[order[next]].start, num_intervals)
                            : num_intervals;
    CRF_CHECK_GT(segment_end, tau);

    // Sliding max of `aggregate` over [u, u+horizon) for u in the segment.
    MonotonicMaxDeque deque;
    Interval filled_to = tau;
    for (Interval u = tau; u < segment_end; ++u) {
      const Interval window_end =
          static_cast<Interval>(std::min<int64_t>(static_cast<int64_t>(u) + horizon,
                                                  num_intervals));
      while (filled_to < window_end) {
        deque.Push(filled_to, aggregate[filled_to]);
        ++filled_to;
      }
      deque.ExpireBelow(u);
      oracle[u] = deque.Max();
    }
    tau = segment_end;
  }
  return oracle;
}

std::vector<double> ComputeTotalUsageOracle(const CellTrace& cell, int machine_index,
                                            Interval horizon) {
  CRF_CHECK_GE(horizon, 1);
  const std::vector<double> usage = cell.MachineUsageSeries(machine_index);
  return ForwardWindowMax(usage, horizon);
}

}  // namespace crf
