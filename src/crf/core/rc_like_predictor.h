// The Resource-Central-like predictor (paper Section 4).
//
// Motivated by Microsoft's Resource Central: the machine peak is estimated
// as the sum over resident tasks of a percentile of each task's own recent
// usage, P(J, t) = sum_i perc_k(U_i). Tasks still warming up (fewer than
// min_num_samples samples) contribute their limit instead.
//
// Hot-path design: like NSigmaPredictor, per-task state lives in a roster of
// parallel vectors in the caller's sample order, revalidated with one id
// comparison per task and rebuilt only on arrival/departure events —
// steady-state polls never hash. Each roster slot owns the task's
// TaskHistory percentile window; a rebuild carries surviving histories over
// by id and drops departed ones (re-arrival restarts warm-up).

#ifndef CRF_CORE_RC_LIKE_PREDICTOR_H_
#define CRF_CORE_RC_LIKE_PREDICTOR_H_

#include <vector>

#include "crf/core/predictor.h"
#include "crf/core/task_history.h"

namespace crf {

class RcLikePredictor : public PeakPredictor {
 public:
  RcLikePredictor(double percentile, const PredictorConfig& config);

  void Observe(Interval now, std::span<const TaskSample> tasks) override;
  double PredictPeak() const override;
  void Reset() override;
  std::string name() const override;

  bool SaveState(ByteWriter& out) const override;
  bool LoadState(ByteReader& in) override;

  double percentile() const { return percentile_; }

 private:
  void RebuildRoster(std::span<const TaskSample> tasks);

  double percentile_;
  PredictorConfig config_;

  // Resident task roster, parallel to the sample order of the last Observe.
  std::vector<TaskId> roster_ids_;
  std::vector<TaskHistory> histories_;

  double prediction_ = 0.0;
};

}  // namespace crf

#endif  // CRF_CORE_RC_LIKE_PREDICTOR_H_
