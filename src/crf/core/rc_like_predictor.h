// The Resource-Central-like predictor (paper Section 4).
//
// Motivated by Microsoft's Resource Central: the machine peak is estimated
// as the sum over resident tasks of a percentile of each task's own recent
// usage, P(J, t) = sum_i perc_k(U_i). Tasks still warming up (fewer than
// min_num_samples samples) contribute their limit instead.

#ifndef CRF_CORE_RC_LIKE_PREDICTOR_H_
#define CRF_CORE_RC_LIKE_PREDICTOR_H_

#include <unordered_map>

#include "crf/core/predictor.h"
#include "crf/core/task_history.h"

namespace crf {

class RcLikePredictor : public PeakPredictor {
 public:
  RcLikePredictor(double percentile, const PredictorConfig& config);

  void Observe(Interval now, std::span<const TaskSample> tasks) override;
  double PredictPeak() const override;
  void Reset() override;
  std::string name() const override;

  double percentile() const { return percentile_; }

 private:
  struct TaskState {
    TaskHistory history;
    double limit = 0.0;
    Interval last_seen = -1;
  };

  double percentile_;
  PredictorConfig config_;
  std::unordered_map<TaskId, TaskState> tasks_;
  double prediction_ = 0.0;
};

}  // namespace crf

#endif  // CRF_CORE_RC_LIKE_PREDICTOR_H_
