// A bounded moving window of float samples with logarithmic-time order
// statistics: the storage layer under TaskHistory and the sweep engine's
// shared per-task percentile windows.
//
// The window keeps two views of the same samples:
//  * a ring buffer in arrival order (eviction, Latest);
//  * a value-ordered sequence of small sorted chunks indexed by a Fenwick
//    tree over chunk sizes, so rank selection descends the tree instead of
//    scanning, and insert/erase touch one chunk instead of memmoving an
//    O(window) sorted mirror.
//
// Insert/erase: binary search over chunk maxima to find the target chunk,
// O(chunk) movement within it, a Fenwick point update, and an occasional
// chunk split (amortized O(chunks) rebuild). Rank selection: one Fenwick
// descent plus a direct chunk index. A running sum makes Mean() O(1); pushes
// periodically recompute it exactly so incremental drift stays below any
// tolerance the simulator works at.

#ifndef CRF_CORE_INDEXABLE_WINDOW_H_
#define CRF_CORE_INDEXABLE_WINDOW_H_

#include <cstdint>
#include <vector>

namespace crf {

class ByteReader;
class ByteWriter;

class IndexableWindow {
 public:
  explicit IndexableWindow(int capacity);

  // Appends a sample, evicting the oldest if the window is full. Rejects
  // non-finite samples: a NaN would poison the value-ordered index (NaN
  // compares false against everything) and surface only much later as a
  // failed eviction lookup.
  void Push(float sample);

  // Discards all samples but keeps the capacity and allocated storage, so a
  // pooled window can be reused without reallocating.
  void Clear();

  int size() const { return static_cast<int>(ring_.size()); }
  int capacity() const { return capacity_; }
  bool empty() const { return ring_.empty(); }

  // Percentile p in [0, 100] over the window, linear interpolation between
  // the straddling order statistics. Requires a non-empty window.
  double Percentile(double p) const;

  // Mean over the window (running sum); 0 when empty.
  double Mean() const;

  // Newest sample; requires non-empty.
  float Latest() const;

  // Checkpoint support (crf/serve): serializes the COMPLETE internal state —
  // ring, chunk partition, running sum, and refresh countdown — so a
  // restored window continues bit-identically to the uninterrupted one
  // (future chunk splits and sum drift depend on more than the sample
  // multiset). LoadState validates every structural invariant and returns
  // false (leaving the reader failed) on any mismatch, including a stored
  // capacity different from this window's.
  void SaveState(ByteWriter& out) const;
  bool LoadState(ByteReader& in);

 private:
  // Chunks are split in half when they reach this size, so steady-state
  // chunks hold kSplitSize/2 .. kSplitSize-1 values.
  static constexpr int kSplitSize = 64;
  // Pushes between exact recomputations of the running sum.
  static constexpr int kSumRefreshPeriod = 1 << 15;

  // Index of the chunk a value lives in (for erase) or belongs in (for
  // insert): the first chunk whose max is >= value, clamped to the last.
  int FindChunk(float value) const;
  void Insert(float value);
  void Erase(float value);
  // Value at 0-based rank k of the ordered window.
  float AtRank(int k) const;

  void RebuildFenwick();
  void FenwickAdd(int chunk_index, int delta);

  int capacity_;
  int head_ = 0;  // Index of the oldest sample once the ring is full.
  std::vector<float> ring_;

  // Value-ordered sorted chunks and the Fenwick tree (1-based, over chunk
  // sizes). The tree is point-updated on insert/erase and rebuilt on the
  // rare structural changes (chunk split, empty-chunk removal).
  std::vector<std::vector<float>> chunks_;
  std::vector<int32_t> fenwick_;

  double sum_ = 0.0;
  int pushes_until_sum_refresh_ = kSumRefreshPeriod;
};

}  // namespace crf

#endif  // CRF_CORE_INDEXABLE_WINDOW_H_
