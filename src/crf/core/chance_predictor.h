// The chance-constrained predictor (extension; cf. Cohen et al.,
// "Overcommitment in Cloud Services — Bin Packing with Chance Constraints",
// arXiv:1705.09335).
//
// Instead of a Gaussian closure (n-sigma) or a per-task percentile sum
// (rc-like), the predictor sizes the peak directly to a target per-interval
// violation probability epsilon: it keeps the empirical distribution of the
// machine-level aggregate usage of warmed-up tasks over the history window
// and publishes its (1 - epsilon) quantile, so a stationary workload
// violates the prediction in at most an epsilon fraction of intervals by
// construction. Tasks still warming up contribute their limit on top, as in
// the other usage-driven families.
//
// Hot-path design mirrors NSigmaPredictor: per-task state is only the
// warm-up counter, kept in a roster of parallel vectors in the caller's
// sample order, revalidated with one id comparison per task and rebuilt only
// on arrival/departure events. The machine-level empirical distribution
// lives in one Fenwick-indexed window (TaskHistory), so each poll costs one
// push plus one O(log n) quantile selection.

#ifndef CRF_CORE_CHANCE_PREDICTOR_H_
#define CRF_CORE_CHANCE_PREDICTOR_H_

#include <vector>

#include "crf/core/predictor.h"
#include "crf/core/task_history.h"

namespace crf {

class ChancePredictor : public PeakPredictor {
 public:
  // `target` is the acceptable per-interval violation probability epsilon,
  // in (0, 1) exclusive.
  ChancePredictor(double target, const PredictorConfig& config);

  void Observe(Interval now, std::span<const TaskSample> tasks) override;
  double PredictPeak() const override;
  void Reset() override;
  std::string name() const override;

  bool SaveState(ByteWriter& out) const override;
  bool LoadState(ByteReader& in) override;

  double target() const { return target_; }

 private:
  void RebuildRoster(std::span<const TaskSample> tasks);

  double target_;
  PredictorConfig config_;

  // Resident task roster, parallel to the sample order of the last Observe.
  std::vector<TaskId> roster_ids_;
  std::vector<Interval> samples_seen_;

  // Machine-level aggregate usage of warmed tasks over the last
  // max_num_samples polls (the empirical load distribution).
  TaskHistory window_;

  double prediction_ = 0.0;
};

}  // namespace crf

#endif  // CRF_CORE_CHANCE_PREDICTOR_H_
