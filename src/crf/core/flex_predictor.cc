#include "crf/core/flex_predictor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "crf/util/byte_io.h"
#include "crf/util/check.h"

namespace crf {

namespace {
constexpr uint8_t kStateTag = 'F';
}  // namespace

FlexPredictor::FlexPredictor(double percentile, double margin, const PredictorConfig& config)
    : percentile_(percentile),
      margin_(margin),
      config_(config),
      ratios_(config.max_num_samples) {
  CRF_CHECK_GE(percentile, 0.0);
  CRF_CHECK_LE(percentile, 100.0);
  CRF_CHECK_GE(margin, 1.0);
  CRF_CHECK_GT(config.min_num_samples, 0);
  CRF_CHECK_GE(config.max_num_samples, config.min_num_samples);
}

void FlexPredictor::Observe(Interval /*now*/, std::span<const TaskSample> tasks) {
  double usage_now = 0.0;
  double limit_sum = 0.0;
  for (const TaskSample& sample : tasks) {
    usage_now += sample.usage;
    limit_sum += sample.limit;
  }

  // An empty machine has no gap to learn from (0/0); the ratio window only
  // sees occupied polls, so idle stretches neither age out history nor drag
  // the learned phi toward zero.
  if (limit_sum > 0.0) {
    ratios_.Push(static_cast<float>(usage_now / limit_sum));
  }
  const double phi = ratios_.size() >= config_.min_num_samples
                         ? std::min(1.0, margin_ * ratios_.Percentile(percentile_))
                         : 1.0;
  prediction_ = ClampPrediction(phi * limit_sum, usage_now, limit_sum);
}

double FlexPredictor::PredictPeak() const { return prediction_; }

void FlexPredictor::Reset() {
  ratios_.Clear();
  prediction_ = 0.0;
}

std::string FlexPredictor::name() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "flex-p%g-m%g", percentile_, margin_);
  return buffer;
}

bool FlexPredictor::SaveState(ByteWriter& out) const {
  out.Write<uint8_t>(kStateTag);
  ratios_.SaveState(out);
  out.Write<double>(prediction_);
  return true;
}

bool FlexPredictor::LoadState(ByteReader& in) {
  const uint8_t tag = in.Read<uint8_t>();
  if (!in.ok() || tag != kStateTag) {
    in.Fail();
    return false;
  }
  if (!ratios_.LoadState(in)) {
    return false;
  }
  const double prediction = in.Read<double>();
  if (!in.ok() || !std::isfinite(prediction) || prediction < 0.0) {
    in.Fail();
    return false;
  }
  prediction_ = prediction;
  return true;
}

}  // namespace crf
