#include "crf/core/task_history.h"

#include <algorithm>

#include "crf/util/check.h"

namespace crf {

TaskHistory::TaskHistory(int capacity) : capacity_(capacity) {
  CRF_CHECK_GT(capacity, 0);
  ring_.reserve(capacity);
  sorted_.reserve(capacity);
}

void TaskHistory::Push(float sample) {
  if (static_cast<int>(ring_.size()) < capacity_) {
    ring_.push_back(sample);
  } else {
    const float evicted = ring_[head_];
    ring_[head_] = sample;
    head_ = (head_ + 1) % capacity_;
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), evicted);
    CRF_CHECK(it != sorted_.end() && *it == evicted);
    sorted_.erase(it);
  }
  sorted_.insert(std::lower_bound(sorted_.begin(), sorted_.end(), sample), sample);
}

double TaskHistory::Percentile(double p) const {
  CRF_CHECK(!sorted_.empty());
  CRF_CHECK_GE(p, 0.0);
  CRF_CHECK_LE(p, 100.0);
  if (sorted_.size() == 1) {
    return sorted_[0];
  }
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double TaskHistory::Mean() const {
  if (ring_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const float v : ring_) {
    sum += v;
  }
  return sum / static_cast<double>(ring_.size());
}

float TaskHistory::Latest() const {
  CRF_CHECK(!ring_.empty());
  if (static_cast<int>(ring_.size()) < capacity_) {
    return ring_.back();
  }
  // head_ points at the oldest; the newest sits just before it.
  return ring_[(head_ + capacity_ - 1) % capacity_];
}

}  // namespace crf
