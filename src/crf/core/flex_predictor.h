// The Flex-style allocation-gap predictor (extension; cf. "Take it to the
// limit" follow-up work on adaptive overcommit ratios, and Newell et al.'s
// RAS/Flex resource-adjustment line, arXiv:2006.01354).
//
// borg-default multiplies the limit sum by one hand-tuned, fleet-wide phi.
// Flex instead learns phi per machine from the observed usage-to-limit gap:
// it windows the machine's aggregate usage/limit ratio and publishes
//   P = min(1, margin * perc_p(usage/limit over the window)) * limit_sum,
// so chronically over-provisioned machines earn an aggressive (small) phi
// while machines that run close to their limits keep a conservative one.
// Until the window has min_num_samples ratios the effective phi is 1 (pure
// limit sum) — the machine-level analogue of per-task warm-up.
//
// Hot-path design: there is no per-task state at all — one ratio push and
// one O(log n) percentile per poll — making this the cheapest usage-driven
// family; empty-machine intervals (limit sum 0) push nothing, since 0/0 says
// nothing about the gap.

#ifndef CRF_CORE_FLEX_PREDICTOR_H_
#define CRF_CORE_FLEX_PREDICTOR_H_

#include "crf/core/predictor.h"
#include "crf/core/task_history.h"

namespace crf {

class FlexPredictor : public PeakPredictor {
 public:
  // `percentile` in [0, 100] ranks the observed usage/limit ratios;
  // `margin` >= 1 is the safety factor applied on top.
  FlexPredictor(double percentile, double margin, const PredictorConfig& config);

  void Observe(Interval now, std::span<const TaskSample> tasks) override;
  double PredictPeak() const override;
  void Reset() override;
  std::string name() const override;

  bool SaveState(ByteWriter& out) const override;
  bool LoadState(ByteReader& in) override;

  double percentile() const { return percentile_; }
  double margin() const { return margin_; }

 private:
  double percentile_;
  double margin_;
  PredictorConfig config_;

  // Machine-level usage/limit ratios over the last max_num_samples occupied
  // polls.
  TaskHistory ratios_;

  double prediction_ = 0.0;
};

}  // namespace crf

#endif  // CRF_CORE_FLEX_PREDICTOR_H_
