#include "crf/core/rc_like_predictor.h"

#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "crf/util/byte_io.h"
#include "crf/util/check.h"

namespace crf {

namespace {
constexpr uint8_t kStateTag = 'R';
// Upper bound on a serialized roster: far above any real machine's resident
// task count, small enough to reject a corrupted length before allocating.
constexpr uint64_t kMaxRosterTasks = 1 << 20;
}  // namespace

RcLikePredictor::RcLikePredictor(double percentile, const PredictorConfig& config)
    : percentile_(percentile), config_(config) {
  CRF_CHECK_GE(percentile, 0.0);
  CRF_CHECK_LE(percentile, 100.0);
  CRF_CHECK_GT(config.min_num_samples, 0);
  CRF_CHECK_GE(config.max_num_samples, config.min_num_samples);
}

void RcLikePredictor::RebuildRoster(std::span<const TaskSample> tasks) {
  // Carry surviving tasks' windows over by id; absent tasks have departed
  // and their history is dropped (re-arrival of the same id starts a fresh
  // warm-up, per the Observe contract).
  std::unordered_map<TaskId, size_t> carried;
  carried.reserve(roster_ids_.size());
  for (size_t i = 0; i < roster_ids_.size(); ++i) {
    carried.emplace(roster_ids_[i], i);
  }
  std::vector<TaskId> new_ids(tasks.size());
  std::vector<TaskHistory> new_histories;
  new_histories.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    new_ids[i] = tasks[i].task_id;
    const auto it = carried.find(tasks[i].task_id);
    if (it != carried.end()) {
      new_histories.push_back(std::move(histories_[it->second]));
      carried.erase(it);  // A duplicated id gets one carry, then fresh state.
    } else {
      new_histories.emplace_back(config_.max_num_samples);
    }
  }
  roster_ids_ = std::move(new_ids);
  histories_ = std::move(new_histories);
}

void RcLikePredictor::Observe(Interval /*now*/, std::span<const TaskSample> tasks) {
  bool roster_matches = roster_ids_.size() == tasks.size();
  if (roster_matches) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (roster_ids_[i] != tasks[i].task_id) {
        roster_matches = false;
        break;
      }
    }
  }
  if (!roster_matches) {
    RebuildRoster(tasks);
  }

  double prediction = 0.0;
  double usage_now = 0.0;
  double limit_sum = 0.0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    const TaskSample& sample = tasks[i];
    TaskHistory& history = histories_[i];
    history.Push(static_cast<float>(sample.usage));

    usage_now += sample.usage;
    limit_sum += sample.limit;
    if (history.size() >= config_.min_num_samples) {
      prediction += history.Percentile(percentile_);
    } else {
      prediction += sample.limit;  // Warm-up: represent by the limit.
    }
  }
  prediction_ = ClampPrediction(prediction, usage_now, limit_sum);
}

double RcLikePredictor::PredictPeak() const { return prediction_; }

void RcLikePredictor::Reset() {
  roster_ids_.clear();
  histories_.clear();
  prediction_ = 0.0;
}

std::string RcLikePredictor::name() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "rc-like-p%.0f", percentile_);
  return buffer;
}

bool RcLikePredictor::SaveState(ByteWriter& out) const {
  out.Write<uint8_t>(kStateTag);
  out.WriteVec(roster_ids_);
  for (const TaskHistory& history : histories_) {
    history.SaveState(out);
  }
  out.Write<double>(prediction_);
  return true;
}

bool RcLikePredictor::LoadState(ByteReader& in) {
  const uint8_t tag = in.Read<uint8_t>();
  std::vector<TaskId> roster_ids;
  if (!in.ReadVec(roster_ids, kMaxRosterTasks) || tag != kStateTag) {
    in.Fail();
    return false;
  }
  std::vector<TaskHistory> histories;
  histories.reserve(roster_ids.size());
  for (size_t i = 0; i < roster_ids.size(); ++i) {
    TaskHistory& history = histories.emplace_back(config_.max_num_samples);
    if (!history.LoadState(in)) {
      return false;
    }
  }
  const double prediction = in.Read<double>();
  if (!in.ok() || !std::isfinite(prediction) || prediction < 0.0) {
    in.Fail();
    return false;
  }
  roster_ids_ = std::move(roster_ids);
  histories_ = std::move(histories);
  prediction_ = prediction;
  return true;
}

}  // namespace crf
