#include "crf/core/rc_like_predictor.h"

#include <cstdio>

#include "crf/util/check.h"

namespace crf {

RcLikePredictor::RcLikePredictor(double percentile, const PredictorConfig& config)
    : percentile_(percentile), config_(config) {
  CRF_CHECK_GE(percentile, 0.0);
  CRF_CHECK_LE(percentile, 100.0);
  CRF_CHECK_GT(config.min_num_samples, 0);
  CRF_CHECK_GE(config.max_num_samples, config.min_num_samples);
}

void RcLikePredictor::Observe(Interval now, std::span<const TaskSample> tasks) {
  double prediction = 0.0;
  double usage_now = 0.0;
  double limit_sum = 0.0;
  for (const TaskSample& sample : tasks) {
    auto [it, inserted] =
        tasks_.try_emplace(sample.task_id, TaskState{TaskHistory(config_.max_num_samples)});
    TaskState& state = it->second;
    state.history.Push(static_cast<float>(sample.usage));
    state.limit = sample.limit;
    state.last_seen = now;

    usage_now += sample.usage;
    limit_sum += sample.limit;
    if (state.history.size() >= config_.min_num_samples) {
      prediction += state.history.Percentile(percentile_);
    } else {
      prediction += sample.limit;  // Warm-up: represent by the limit.
    }
  }
  // Release departed tasks.
  std::erase_if(tasks_, [now](const auto& entry) { return entry.second.last_seen != now; });
  prediction_ = ClampPrediction(prediction, usage_now, limit_sum);
}

double RcLikePredictor::PredictPeak() const { return prediction_; }

void RcLikePredictor::Reset() {
  tasks_.clear();
  prediction_ = 0.0;
}

std::string RcLikePredictor::name() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "rc-like-p%.0f", percentile_);
  return buffer;
}

}  // namespace crf
