// The peak predictor interface (paper Section 4).
//
// A peak predictor runs inside the machine-level agent (Borglet): once per
// 5-minute polling interval it observes the usage of every task resident on
// its machine and publishes one number — the predicted peak of the machine's
// aggregate usage over the future horizon. The scheduler subtracts that
// number from the machine's capacity to get advertised free capacity.
//
// Production constraints encoded in this interface (Section 4):
//  * per-machine and self-contained: no cross-machine or remote state;
//  * lightweight: O(resident tasks) time per poll, bounded memory — at most
//    max_num_samples history per task;
//  * warm-up: tasks with fewer than min_num_samples observed samples are
//    represented by their limit, not their (unstable) usage;
//  * a task's usage is capped at its limit by the node isolation layer, so a
//    sane prediction never exceeds the sum of limits: implementations clamp
//    to [current usage, sum of limits].

#ifndef CRF_CORE_PREDICTOR_H_
#define CRF_CORE_PREDICTOR_H_

#include <memory>
#include <span>
#include <string>

#include "crf/trace/trace.h"
#include "crf/util/time_grid.h"

namespace crf {

class ByteReader;
class ByteWriter;

// One task's state at the current polling interval.
struct TaskSample {
  TaskId task_id = 0;
  double usage = 0.0;
  double limit = 0.0;
};

// Knobs shared by all usage-driven predictors (Section 4 / Figs 8-9).
struct PredictorConfig {
  // Warm-up: tasks with fewer samples than this contribute their limit.
  // Paper default: 2 hours.
  Interval min_num_samples = 2 * kIntervalsPerHour;
  // History window: per-task (and per-machine aggregate) samples retained.
  // Paper default: 10 hours.
  Interval max_num_samples = 10 * kIntervalsPerHour;

  bool operator==(const PredictorConfig&) const = default;
};

class PeakPredictor {
 public:
  virtual ~PeakPredictor() = default;

  // Feeds the complete resident task set for interval `now`. Tasks absent
  // from `tasks` have departed and their state must be released. Intervals
  // are fed in increasing order.
  virtual void Observe(Interval now, std::span<const TaskSample> tasks) = 0;

  // The predicted future peak of the observed machine's aggregate usage,
  // based only on data seen so far. Must be callable any number of times
  // between Observe calls.
  virtual double PredictPeak() const = 0;

  // Discards all observed state, returning the predictor to its
  // fresh-from-construction behaviour (configuration is kept). Lets the
  // simulator reuse one instance across machines instead of re-allocating.
  virtual void Reset() = 0;

  virtual std::string name() const = 0;

  // Checkpoint support (crf/serve). SaveState serializes the COMPLETE
  // observed state — rosters, history windows, running moments, the last
  // published prediction — such that LoadState into a predictor constructed
  // from the same spec resumes bit-identically to an uninterrupted run.
  // Configuration is NOT serialized; it is re-derived from the spec, and
  // LoadState validates structural fits (window capacities) against it.
  // LoadState returns false and latches the reader's failure flag on any
  // malformed or mismatched payload, leaving the predictor unspecified (the
  // caller discards it). The default implementations return false: a
  // predictor without an override simply cannot be checkpointed.
  virtual bool SaveState(ByteWriter& out) const;
  virtual bool LoadState(ByteReader& in);
};

// Clamps a raw prediction to the sane range [usage_now, limit_sum]: the
// machine is already using usage_now, and enforced limits cap future usage
// at limit_sum.
double ClampPrediction(double raw, double usage_now, double limit_sum);

}  // namespace crf

#endif  // CRF_CORE_PREDICTOR_H_
