#include "crf/core/indexable_window.h"

#include <algorithm>
#include <cmath>

#include "crf/util/byte_io.h"
#include "crf/util/check.h"

namespace crf {

IndexableWindow::IndexableWindow(int capacity) : capacity_(capacity) {
  CRF_CHECK_GT(capacity, 0);
  ring_.reserve(capacity);
}

void IndexableWindow::Push(float sample) {
  CRF_CHECK(std::isfinite(sample)) << "non-finite usage sample " << sample;
  if (static_cast<int>(ring_.size()) < capacity_) {
    ring_.push_back(sample);
  } else {
    const float evicted = ring_[head_];
    ring_[head_] = sample;
    head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
    Erase(evicted);
    sum_ -= evicted;
  }
  Insert(sample);
  sum_ += sample;
  if (--pushes_until_sum_refresh_ == 0) {
    pushes_until_sum_refresh_ = kSumRefreshPeriod;
    double exact = 0.0;
    for (const float v : ring_) {
      exact += v;
    }
    sum_ = exact;
  }
}

void IndexableWindow::Clear() {
  ring_.clear();
  head_ = 0;
  chunks_.clear();
  fenwick_.clear();
  sum_ = 0.0;
  pushes_until_sum_refresh_ = kSumRefreshPeriod;
}

int IndexableWindow::FindChunk(float value) const {
  int lo = 0;
  int hi = static_cast<int>(chunks_.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (chunks_[mid].back() < value) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void IndexableWindow::Insert(float value) {
  if (chunks_.empty()) {
    chunks_.emplace_back();
    chunks_.back().reserve(kSplitSize);
    chunks_.back().push_back(value);
    RebuildFenwick();
    return;
  }
  const int c = FindChunk(value);
  std::vector<float>& chunk = chunks_[c];
  chunk.insert(std::upper_bound(chunk.begin(), chunk.end(), value), value);
  if (static_cast<int>(chunk.size()) < kSplitSize) {
    FenwickAdd(c, 1);
    return;
  }
  // Split into two half chunks; indices shift, so rebuild the tree.
  std::vector<float> upper;
  upper.reserve(kSplitSize);
  upper.assign(chunk.begin() + kSplitSize / 2, chunk.end());
  chunk.resize(kSplitSize / 2);
  chunks_.insert(chunks_.begin() + c + 1, std::move(upper));
  RebuildFenwick();
}

void IndexableWindow::Erase(float value) {
  CRF_CHECK(!chunks_.empty());
  const int c = FindChunk(value);
  std::vector<float>& chunk = chunks_[c];
  const auto it = std::lower_bound(chunk.begin(), chunk.end(), value);
  CRF_CHECK(it != chunk.end() && *it == value);
  chunk.erase(it);
  if (chunk.empty()) {
    chunks_.erase(chunks_.begin() + c);
    RebuildFenwick();
  } else {
    FenwickAdd(c, -1);
  }
}

float IndexableWindow::AtRank(int k) const {
  const int n = static_cast<int>(chunks_.size());
  // Descend the Fenwick tree for the largest prefix of chunks holding <= k
  // values; the target then sits inside the next chunk.
  int pos = 0;
  int remaining = k + 1;
  int step = 1;
  while (step * 2 <= n) {
    step *= 2;
  }
  for (; step > 0; step /= 2) {
    if (pos + step <= n && fenwick_[pos + step] < remaining) {
      pos += step;
      remaining -= fenwick_[pos];
    }
  }
  return chunks_[pos][remaining - 1];
}

void IndexableWindow::RebuildFenwick() {
  const int n = static_cast<int>(chunks_.size());
  fenwick_.assign(n + 1, 0);
  for (int i = 0; i < n; ++i) {
    FenwickAdd(i, static_cast<int>(chunks_[i].size()));
  }
}

void IndexableWindow::FenwickAdd(int chunk_index, int delta) {
  for (int i = chunk_index + 1; i < static_cast<int>(fenwick_.size()); i += i & -i) {
    fenwick_[i] += delta;
  }
}

double IndexableWindow::Percentile(double p) const {
  CRF_CHECK(!ring_.empty());
  CRF_CHECK_GE(p, 0.0);
  CRF_CHECK_LE(p, 100.0);
  const int count = static_cast<int>(ring_.size());
  if (count == 1) {
    return AtRank(0);
  }
  const double rank = p / 100.0 * static_cast<double>(count - 1);
  const int lo = static_cast<int>(rank);
  const int hi = std::min(lo + 1, count - 1);
  const double frac = rank - static_cast<double>(lo);
  const float lo_value = AtRank(lo);
  const float hi_value = hi == lo ? lo_value : AtRank(hi);
  return lo_value + frac * (hi_value - lo_value);
}

double IndexableWindow::Mean() const {
  if (ring_.empty()) {
    return 0.0;
  }
  return sum_ / static_cast<double>(ring_.size());
}

void IndexableWindow::SaveState(ByteWriter& out) const {
  out.Write<int32_t>(capacity_);
  out.Write<int32_t>(head_);
  out.WriteVec(ring_);
  out.Write<uint64_t>(chunks_.size());
  for (const std::vector<float>& chunk : chunks_) {
    out.WriteVec(chunk);
  }
  out.Write<double>(sum_);
  out.Write<int32_t>(pushes_until_sum_refresh_);
}

bool IndexableWindow::LoadState(ByteReader& in) {
  const int32_t capacity = in.Read<int32_t>();
  const int32_t head = in.Read<int32_t>();
  std::vector<float> ring;
  if (!in.ReadVec(ring, static_cast<uint64_t>(capacity_))) {
    return false;
  }
  const uint64_t num_chunks = in.Read<uint64_t>();
  if (!in.ok() || capacity != capacity_ || num_chunks > ring.size() ||
      static_cast<int>(ring.size()) > capacity_ || head < 0 ||
      (ring.size() < static_cast<size_t>(capacity_) ? head != 0 : head >= capacity_)) {
    in.Fail();
    return false;
  }
  std::vector<std::vector<float>> chunks(num_chunks);
  std::vector<float> ordered;
  ordered.reserve(ring.size());
  for (size_t c = 0; c < num_chunks; ++c) {
    std::vector<float>& chunk = chunks[c];
    if (!in.ReadVec(chunk, static_cast<uint64_t>(kSplitSize))) {
      return false;
    }
    // Chunks are non-empty, internally sorted, and value-ordered across
    // chunk boundaries — the invariants FindChunk's binary search relies on.
    if (chunk.empty() || !std::is_sorted(chunk.begin(), chunk.end()) ||
        (c > 0 && chunks[c - 1].back() > chunk.front()) ||
        ordered.size() + chunk.size() > ring.size()) {
      in.Fail();
      return false;
    }
    ordered.insert(ordered.end(), chunk.begin(), chunk.end());
  }
  // The chunk partition must hold exactly the ring's samples, or a later
  // eviction would fail an internal invariant check instead of this load
  // being cleanly rejected.
  std::vector<float> sorted_ring = ring;
  std::sort(sorted_ring.begin(), sorted_ring.end());
  if (ordered != sorted_ring) {
    in.Fail();
    return false;
  }
  const double sum = in.Read<double>();
  const int32_t refresh = in.Read<int32_t>();
  if (!in.ok() || !std::isfinite(sum) || refresh <= 0 || refresh > kSumRefreshPeriod) {
    in.Fail();
    return false;
  }
  for (const float v : ring) {
    if (!std::isfinite(v)) {
      in.Fail();
      return false;
    }
  }
  ring_ = std::move(ring);
  head_ = head;
  chunks_ = std::move(chunks);
  sum_ = sum;
  pushes_until_sum_refresh_ = refresh;
  RebuildFenwick();
  return true;
}

float IndexableWindow::Latest() const {
  CRF_CHECK(!ring_.empty());
  if (static_cast<int>(ring_.size()) < capacity_) {
    return ring_.back();
  }
  // head_ points at the oldest; the newest sits just before it.
  return ring_[(head_ + capacity_ - 1) % capacity_];
}

}  // namespace crf
