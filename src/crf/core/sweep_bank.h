// Shared-state evaluation of a whole predictor grid in one trace pass.
//
// The paper's evaluation is parameter sweeps: Figs 8-10 run the same
// cell-week through dozens of predictor configurations that differ only in
// one knob (phi, percentile, N, warm-up, history). Run per spec, every
// RC-like point maintains its own sorted mirror of the same per-task usage
// window and every N-sigma point its own aggregate moments — P sweep points
// do P times the window maintenance to answer P different queries over one
// window.
//
// SweepPlan compiles a spec grid into a shared-state program:
//  * specs are deduplicated into evaluation nodes (a max(...) spec's
//    components become ordinary nodes, shared with any standalone spec that
//    matches them structurally);
//  * RC-like and autopilot nodes share one per-task IndexableWindow per
//    distinct history length — every percentile query reads the same
//    order-statistics window;
//  * N-sigma nodes share one AggregateWindow per distinct (warm-up, history)
//    pair — every N reads the same running moments;
//  * chance nodes share one machine-level order-statistics window of the
//    warmed aggregate usage per distinct (warm-up, history) pair — every
//    target epsilon is a different quantile of the same distribution;
//  * flex nodes share one machine-level usage/limit ratio window per
//    distinct history length — every (percentile, margin) point queries the
//    same ratio distribution;
//  * borg-default / limit-sum nodes read the one per-interval limit sum.
// Warm-up classification rides on one universal per-task sample counter:
// min_num_samples <= max_num_samples, so "window holds >= min samples" is
// exactly "task has seen >= min samples", independent of the window length.
//
// SweepBank is the per-thread mutable state executing a plan over one
// machine at a time: Observe() ingests each interval's resident task set
// once and Predictions() returns one clamped prediction per input spec,
// matching what each standalone predictor would have produced (the sweep
// differential test pins this at 1e-9 relative tolerance).

#ifndef CRF_CORE_SWEEP_BANK_H_
#define CRF_CORE_SWEEP_BANK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "crf/core/aggregate_window.h"
#include "crf/core/indexable_window.h"
#include "crf/core/predictor_factory.h"

namespace crf {

// Immutable evaluation program for one predictor grid. Build once per sweep
// and share across threads; SweepBank instances hold the mutable state.
class SweepPlan {
 public:
  // Validates every spec exactly like CreatePredictor would.
  explicit SweepPlan(std::span<const PredictorSpec> specs);

  // One evaluation node per structurally distinct (sub-)spec, in dependency
  // order: a max node's components always precede it.
  struct Node {
    PredictorSpec::Type type = PredictorSpec::Type::kLimitSum;
    double phi = 0.0;         // borg-default
    double percentile = 0.0;  // rc-like / autopilot / flex
    double n_sigma = 0.0;     // n-sigma
    double margin = 0.0;      // autopilot / flex
    double target = 0.0;      // chance
    Interval min_num_samples = 0;
    int window_group = -1;  // rc-like / autopilot: index into window_groups()
    int agg_group = -1;     // n-sigma: index into agg_groups()
    int quant_group = -1;   // chance: index into quant_groups()
    int ratio_group = -1;   // flex: index into ratio_groups()
    std::vector<int> components;  // max: node indices
  };
  // Per-task percentile windows, one group per distinct history length.
  struct WindowGroup {
    int capacity = 0;
  };
  // Machine-aggregate moments, one group per distinct (warm-up, history).
  struct AggGroup {
    Interval min_num_samples = 0;
    int capacity = 0;
  };
  // Machine-aggregate warmed-usage order statistics (chance), one group per
  // distinct (warm-up, history): the warm-up split changes what is pushed.
  struct QuantGroup {
    Interval min_num_samples = 0;
    int capacity = 0;
  };
  // Machine-level usage/limit ratio windows (flex), one group per distinct
  // history length: the pushed ratio is warm-up independent.
  struct RatioGroup {
    int capacity = 0;
  };

  int num_specs() const { return static_cast<int>(spec_nodes_.size()); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<WindowGroup>& window_groups() const { return window_groups_; }
  const std::vector<AggGroup>& agg_groups() const { return agg_groups_; }
  const std::vector<QuantGroup>& quant_groups() const { return quant_groups_; }
  const std::vector<RatioGroup>& ratio_groups() const { return ratio_groups_; }
  // Node evaluating input spec s.
  int spec_node(int s) const { return spec_nodes_[s]; }

  // Process-unique plan identity, so caches of per-plan state (the
  // simulator's thread-local banks) can detect a new plan even at a reused
  // address.
  uint64_t id() const { return id_; }

 private:
  int AddNode(const PredictorSpec& spec);
  int AddWindowGroup(int capacity);
  int AddAggGroup(Interval min_num_samples, int capacity);
  int AddQuantGroup(Interval min_num_samples, int capacity);
  int AddRatioGroup(int capacity);

  uint64_t id_;
  std::vector<Node> nodes_;
  std::vector<PredictorSpec> node_specs_;  // Parallel to nodes_, for dedup.
  std::vector<int> spec_nodes_;
  std::vector<WindowGroup> window_groups_;
  std::vector<AggGroup> agg_groups_;
  std::vector<QuantGroup> quant_groups_;
  std::vector<RatioGroup> ratio_groups_;
};

// Mutable per-thread execution state for one SweepPlan. Reusable across
// machines (BeginMachine) and across plans (Attach); window objects are
// pooled through a free list so steady-state churn allocates nothing once
// buffers reach their high-water size.
class SweepBank {
 public:
  SweepBank() = default;

  // Binds the bank to a plan, discarding all prior state. The plan must
  // outlive the bank's use of it.
  void Attach(const SweepPlan* plan);

  // Resets per-machine state (roster, windows, moments). Call before the
  // first Observe of each machine.
  void BeginMachine();

  // Ingests the complete resident task set for interval `now` and evaluates
  // every node. Intervals are fed in increasing order, one machine at a
  // time, exactly like PeakPredictor::Observe.
  void Observe(Interval now, std::span<const TaskSample> tasks);

  // One prediction per input spec (plan order), for the last Observe.
  std::span<const double> Predictions() const { return spec_predictions_; }

  const SweepPlan* plan() const { return plan_; }

 private:
  struct WindowGroupState {
    // Pool of windows; slot_window maps roster slots to pool indices.
    std::vector<IndexableWindow> windows;
    std::vector<int32_t> slot_window;
    std::vector<int32_t> free_list;
  };

  void RebuildRoster(std::span<const TaskSample> tasks);
  int32_t AllocWindow(WindowGroupState& group, int capacity);

  const SweepPlan* plan_ = nullptr;

  // Resident task roster, parallel to the sample order of the last Observe.
  // samples_seen_ is the universal warm-up counter shared by every group.
  std::vector<TaskId> roster_ids_;
  std::vector<Interval> samples_seen_;

  std::vector<WindowGroupState> window_groups_;
  std::vector<AggregateWindow> agg_windows_;
  // Machine-level windows: chance warmed-usage distributions and flex
  // usage/limit ratio distributions, parallel to the plan's group lists.
  std::vector<IndexableWindow> quant_windows_;
  std::vector<IndexableWindow> ratio_windows_;

  // Nodes that query a per-task window (rc-like, autopilot), hoisted out of
  // the node list so the task loop touches nothing else.
  std::vector<int> per_task_nodes_;

  // Per-agg-group accumulators / published statistics for the last Observe.
  std::vector<double> agg_warmed_;
  std::vector<double> agg_warming_limit_;
  std::vector<double> agg_mean_;
  std::vector<double> agg_stddev_;

  // Per-quant-group accumulators for the last Observe (chance).
  std::vector<double> quant_warmed_;
  std::vector<double> quant_warming_limit_;

  std::vector<double> node_values_;
  std::vector<double> spec_predictions_;

  // Rebuild scratch, reused across events.
  std::vector<TaskId> rebuild_ids_;
  std::vector<Interval> rebuild_seen_;
  std::vector<int32_t> rebuild_slots_;
  std::vector<uint8_t> rebuild_slot_carried_;
};

}  // namespace crf

#endif  // CRF_CORE_SWEEP_BANK_H_
