// The most conservative predictor: the sum of resident tasks' limits.
//
// P(J, t) = sum_i L_i — never overcommits, never violates the oracle (usage
// is capped at limits), and yields zero savings. This is the paper's "no
// overcommitment" reference point (Section 3.2).

#ifndef CRF_CORE_LIMIT_SUM_PREDICTOR_H_
#define CRF_CORE_LIMIT_SUM_PREDICTOR_H_

#include "crf/core/predictor.h"

namespace crf {

class LimitSumPredictor : public PeakPredictor {
 public:
  void Observe(Interval now, std::span<const TaskSample> tasks) override;
  double PredictPeak() const override;
  void Reset() override { limit_sum_ = 0.0; }
  std::string name() const override { return "limit-sum"; }

  bool SaveState(ByteWriter& out) const override;
  bool LoadState(ByteReader& in) override;

 private:
  double limit_sum_ = 0.0;
};

}  // namespace crf

#endif  // CRF_CORE_LIMIT_SUM_PREDICTOR_H_
