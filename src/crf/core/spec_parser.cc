#include "crf/core/spec_parser.h"

#include <charconv>
#include <vector>

namespace crf {
namespace {

bool ParseNumber(std::string_view text, double& out) {
  const auto result = std::from_chars(text.data(), text.data() + text.size(), out);
  return result.ec == std::errc() && result.ptr == text.data() + text.size();
}

// Splits "a,b,max(c,d)" on top-level commas only.
std::optional<std::vector<std::string_view>> SplitTopLevel(std::string_view text) {
  std::vector<std::string_view> parts;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '(') {
      ++depth;
    } else if (text[i] == ')') {
      if (--depth < 0) {
        return std::nullopt;
      }
    } else if (text[i] == ',' && depth == 0) {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (depth != 0) {
    return std::nullopt;
  }
  parts.push_back(text.substr(start));
  return parts;
}

std::optional<PredictorSpec> ParseSimple(std::string_view text) {
  // name[:arg1[:arg2]]
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    const size_t colon = text.find(':', start);
    if (colon == std::string_view::npos) {
      fields.push_back(text.substr(start));
      break;
    }
    fields.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
  const std::string_view name = fields[0];
  const size_t args = fields.size() - 1;

  if (name == "limit-sum") {
    return args == 0 ? std::optional<PredictorSpec>(LimitSumSpec()) : std::nullopt;
  }
  if (name == "borg-default") {
    double phi = 0.9;
    if (args > 1 || (args == 1 && !ParseNumber(fields[1], phi))) {
      return std::nullopt;
    }
    if (phi <= 0.0 || phi > 1.0) {
      return std::nullopt;
    }
    return BorgDefaultSpec(phi);
  }
  if (name == "rc-like") {
    double percentile = 99.0;
    if (args > 1 || (args == 1 && !ParseNumber(fields[1], percentile))) {
      return std::nullopt;
    }
    if (percentile < 0.0 || percentile > 100.0) {
      return std::nullopt;
    }
    return RcLikeSpec(percentile);
  }
  if (name == "n-sigma") {
    double n = 5.0;
    if (args > 1 || (args == 1 && !ParseNumber(fields[1], n))) {
      return std::nullopt;
    }
    if (n <= 0.0) {
      return std::nullopt;
    }
    return NSigmaSpec(n);
  }
  if (name == "autopilot") {
    double percentile = 98.0;
    double margin = 1.10;
    if (args > 2 || (args >= 1 && !ParseNumber(fields[1], percentile)) ||
        (args == 2 && !ParseNumber(fields[2], margin))) {
      return std::nullopt;
    }
    if (percentile < 0.0 || percentile > 100.0 || margin < 1.0) {
      return std::nullopt;
    }
    return AutopilotSpec(percentile, margin);
  }
  return std::nullopt;
}

}  // namespace

std::optional<PredictorSpec> ParsePredictorSpec(std::string_view text) {
  if (text.empty()) {
    return std::nullopt;
  }
  if (text.starts_with("max(") && text.ends_with(")")) {
    const std::string_view inner = text.substr(4, text.size() - 5);
    const auto parts = SplitTopLevel(inner);
    if (!parts.has_value() || parts->empty()) {
      return std::nullopt;
    }
    std::vector<PredictorSpec> components;
    for (const std::string_view part : *parts) {
      auto component = ParsePredictorSpec(part);
      if (!component.has_value()) {
        return std::nullopt;
      }
      components.push_back(std::move(*component));
    }
    return MaxSpec(std::move(components));
  }
  return ParseSimple(text);
}

}  // namespace crf
