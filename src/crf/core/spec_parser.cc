#include "crf/core/spec_parser.h"

#include <charconv>
#include <cmath>
#include <vector>

namespace crf {
namespace {

// Records the first (deepest) failure only: a nested parse error should not
// be overwritten by the enclosing max() reporting a generic failure.
void SetError(std::string* error, std::string_view message) {
  if (error != nullptr && error->empty()) {
    error->assign(message);
  }
}

std::string Quoted(std::string_view text) {
  return "'" + std::string(text) + "'";
}

// Strict finite-number parse. std::from_chars accepts "nan" and "inf", and a
// NaN passes every range check of the form (x < lo || x > hi) — it would
// sail through here and abort in the predictor constructor's CHECK instead —
// so non-finite values are rejected explicitly.
bool ParseFiniteNumber(std::string_view text, std::string_view what, double& out,
                       std::string* error) {
  if (text.empty()) {
    SetError(error, std::string(what) + " is empty");
    return false;
  }
  const auto result = std::from_chars(text.data(), text.data() + text.size(), out);
  if (result.ec == std::errc::result_out_of_range) {
    SetError(error, std::string(what) + " " + Quoted(text) + " overflows a double");
    return false;
  }
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    SetError(error, std::string(what) + " " + Quoted(text) + " is not a number");
    return false;
  }
  if (!std::isfinite(out)) {
    SetError(error, std::string(what) + " " + Quoted(text) + " is not finite");
    return false;
  }
  return true;
}

// Splits "a,b,max(c,d)" on top-level commas only.
std::optional<std::vector<std::string_view>> SplitTopLevel(std::string_view text,
                                                           std::string* error) {
  std::vector<std::string_view> parts;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '(') {
      ++depth;
    } else if (text[i] == ')') {
      if (--depth < 0) {
        SetError(error, "unbalanced ')' in " + Quoted(text));
        return std::nullopt;
      }
    } else if (text[i] == ',' && depth == 0) {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (depth != 0) {
    SetError(error, "unbalanced '(' in " + Quoted(text));
    return std::nullopt;
  }
  parts.push_back(text.substr(start));
  return parts;
}

std::optional<PredictorSpec> Parse(std::string_view text, std::string* error);

std::optional<PredictorSpec> ParseSimple(std::string_view text, std::string* error) {
  // name[:arg1[:arg2]]
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    const size_t colon = text.find(':', start);
    if (colon == std::string_view::npos) {
      fields.push_back(text.substr(start));
      break;
    }
    fields.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
  const std::string_view name = fields[0];
  const size_t args = fields.size() - 1;

  if (name == "limit-sum") {
    if (args != 0) {
      SetError(error, "limit-sum takes no parameters");
      return std::nullopt;
    }
    return LimitSumSpec();
  }
  if (name == "borg-default") {
    double phi = 0.9;
    if (args > 1) {
      SetError(error, "borg-default takes at most one parameter (phi)");
      return std::nullopt;
    }
    if (args == 1 && !ParseFiniteNumber(fields[1], "borg-default phi", phi, error)) {
      return std::nullopt;
    }
    if (phi <= 0.0 || phi > 1.0) {
      SetError(error, "borg-default phi " + Quoted(fields[1]) + " must be in (0, 1]");
      return std::nullopt;
    }
    return BorgDefaultSpec(phi);
  }
  if (name == "rc-like") {
    double percentile = 99.0;
    if (args > 1) {
      SetError(error, "rc-like takes at most one parameter (percentile)");
      return std::nullopt;
    }
    if (args == 1 && !ParseFiniteNumber(fields[1], "rc-like percentile", percentile, error)) {
      return std::nullopt;
    }
    if (percentile < 0.0 || percentile > 100.0) {
      SetError(error,
               "rc-like percentile " + Quoted(fields[1]) + " must be in [0, 100]");
      return std::nullopt;
    }
    return RcLikeSpec(percentile);
  }
  if (name == "n-sigma") {
    double n = 5.0;
    if (args > 1) {
      SetError(error, "n-sigma takes at most one parameter (n)");
      return std::nullopt;
    }
    if (args == 1 && !ParseFiniteNumber(fields[1], "n-sigma n", n, error)) {
      return std::nullopt;
    }
    if (n <= 0.0) {
      SetError(error, "n-sigma n " + Quoted(fields[1]) + " must be positive");
      return std::nullopt;
    }
    return NSigmaSpec(n);
  }
  if (name == "autopilot") {
    double percentile = 98.0;
    double margin = 1.10;
    if (args > 2) {
      SetError(error, "autopilot takes at most two parameters (percentile, margin)");
      return std::nullopt;
    }
    if (args >= 1 &&
        !ParseFiniteNumber(fields[1], "autopilot percentile", percentile, error)) {
      return std::nullopt;
    }
    if (args == 2 && !ParseFiniteNumber(fields[2], "autopilot margin", margin, error)) {
      return std::nullopt;
    }
    if (percentile < 0.0 || percentile > 100.0) {
      SetError(error,
               "autopilot percentile " + Quoted(fields[1]) + " must be in [0, 100]");
      return std::nullopt;
    }
    if (margin < 1.0) {
      SetError(error, "autopilot margin " + Quoted(fields[2]) + " must be >= 1");
      return std::nullopt;
    }
    return AutopilotSpec(percentile, margin);
  }
  if (name == "chance") {
    double target = 0.01;
    if (args > 1) {
      SetError(error, "chance takes at most one parameter (target)");
      return std::nullopt;
    }
    if (args == 1 && !ParseFiniteNumber(fields[1], "chance target", target, error)) {
      return std::nullopt;
    }
    if (target <= 0.0 || target >= 1.0) {
      SetError(error, "chance target " + Quoted(fields[1]) + " must be in (0, 1)");
      return std::nullopt;
    }
    return ChanceSpec(target);
  }
  if (name == "flex") {
    double percentile = 95.0;
    double margin = 1.2;
    if (args > 2) {
      SetError(error, "flex takes at most two parameters (percentile, margin)");
      return std::nullopt;
    }
    if (args >= 1 && !ParseFiniteNumber(fields[1], "flex percentile", percentile, error)) {
      return std::nullopt;
    }
    if (args == 2 && !ParseFiniteNumber(fields[2], "flex margin", margin, error)) {
      return std::nullopt;
    }
    if (percentile < 0.0 || percentile > 100.0) {
      SetError(error, "flex percentile " + Quoted(fields[1]) + " must be in [0, 100]");
      return std::nullopt;
    }
    if (margin < 1.0) {
      SetError(error, "flex margin " + Quoted(fields[2]) + " must be >= 1");
      return std::nullopt;
    }
    return FlexSpec(percentile, margin);
  }
  SetError(error, "unknown predictor " + Quoted(name) +
                      " (expected limit-sum, borg-default, rc-like, n-sigma, autopilot, "
                      "chance, flex, or max(...))");
  return std::nullopt;
}

std::optional<PredictorSpec> Parse(std::string_view text, std::string* error) {
  if (text.empty()) {
    SetError(error, "empty predictor spec");
    return std::nullopt;
  }
  if (text.starts_with("max(") && text.ends_with(")")) {
    const std::string_view inner = text.substr(4, text.size() - 5);
    const auto parts = SplitTopLevel(inner, error);
    if (!parts.has_value()) {
      return std::nullopt;
    }
    std::vector<PredictorSpec> components;
    for (const std::string_view part : *parts) {
      if (part.empty()) {
        SetError(error, "empty component in " + Quoted(text));
        return std::nullopt;
      }
      auto component = Parse(part, error);
      if (!component.has_value()) {
        return std::nullopt;
      }
      components.push_back(std::move(*component));
    }
    return MaxSpec(std::move(components));
  }
  return ParseSimple(text, error);
}

}  // namespace

std::optional<PredictorSpec> ParsePredictorSpec(std::string_view text, std::string* error) {
  auto spec = Parse(text, error);
  if (!spec.has_value()) {
    SetError(error, "bad predictor spec " + Quoted(text));  // Fallback reason.
  }
  return spec;
}

std::optional<PredictorSpec> ParsePredictorSpec(std::string_view text) {
  return ParsePredictorSpec(text, nullptr);
}

}  // namespace crf
