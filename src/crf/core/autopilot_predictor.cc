#include "crf/core/autopilot_predictor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "crf/util/byte_io.h"
#include "crf/util/check.h"

namespace crf {

namespace {
constexpr uint8_t kStateTag = 'A';
// Upper bound on serialized tracked tasks: far above any real machine's
// resident task count, small enough to reject a corrupted length early.
constexpr uint64_t kMaxTrackedTasks = 1 << 20;
}  // namespace

AutopilotPredictor::AutopilotPredictor(double percentile, double margin,
                                       const PredictorConfig& config)
    : percentile_(percentile), margin_(margin), config_(config) {
  CRF_CHECK_GE(percentile, 0.0);
  CRF_CHECK_LE(percentile, 100.0);
  CRF_CHECK_GE(margin, 1.0);
  CRF_CHECK_GT(config.min_num_samples, 0);
  CRF_CHECK_GE(config.max_num_samples, config.min_num_samples);
}

void AutopilotPredictor::Observe(Interval now, std::span<const TaskSample> tasks) {
  double prediction = 0.0;
  double usage_now = 0.0;
  double limit_sum = 0.0;
  for (const TaskSample& sample : tasks) {
    auto [it, inserted] =
        tasks_.try_emplace(sample.task_id, TaskState{TaskHistory(config_.max_num_samples)});
    TaskState& state = it->second;
    state.history.Push(static_cast<float>(sample.usage));
    state.last_seen = now;

    usage_now += sample.usage;
    limit_sum += sample.limit;
    if (state.history.size() >= config_.min_num_samples) {
      // The Autopilot-style right-sized limit: a tail percentile with a
      // safety margin, never above the configured limit.
      prediction += std::min(sample.limit, margin_ * state.history.Percentile(percentile_));
    } else {
      prediction += sample.limit;
    }
  }
  std::erase_if(tasks_, [now](const auto& entry) { return entry.second.last_seen != now; });
  prediction_ = ClampPrediction(prediction, usage_now, limit_sum);
}

double AutopilotPredictor::PredictPeak() const { return prediction_; }

void AutopilotPredictor::Reset() {
  tasks_.clear();
  prediction_ = 0.0;
}

std::string AutopilotPredictor::name() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "autopilot-p%.0f-m%.2f", percentile_, margin_);
  return buffer;
}

bool AutopilotPredictor::SaveState(ByteWriter& out) const {
  out.Write<uint8_t>(kStateTag);
  // Emit entries sorted by task id: the map's bucket order is not
  // deterministic across runs, and checkpoint bytes must be.
  std::vector<TaskId> ids;
  ids.reserve(tasks_.size());
  for (const auto& [id, state] : tasks_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  out.Write<uint64_t>(ids.size());
  for (const TaskId id : ids) {
    const TaskState& state = tasks_.at(id);
    out.Write<int64_t>(id);
    out.Write<int32_t>(state.last_seen);
    state.history.SaveState(out);
  }
  out.Write<double>(prediction_);
  return true;
}

bool AutopilotPredictor::LoadState(ByteReader& in) {
  const uint8_t tag = in.Read<uint8_t>();
  const uint64_t count = in.Read<uint64_t>();
  if (!in.ok() || tag != kStateTag || count > kMaxTrackedTasks) {
    in.Fail();
    return false;
  }
  std::unordered_map<TaskId, TaskState> tasks;
  tasks.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const TaskId id = in.Read<int64_t>();
    const Interval last_seen = in.Read<int32_t>();
    TaskState state{TaskHistory(config_.max_num_samples), last_seen};
    if (!state.history.LoadState(in)) {
      return false;
    }
    if (last_seen < 0 || !tasks.emplace(id, std::move(state)).second) {
      in.Fail();
      return false;
    }
  }
  const double prediction = in.Read<double>();
  if (!in.ok() || !std::isfinite(prediction) || prediction < 0.0) {
    in.Fail();
    return false;
  }
  tasks_ = std::move(tasks);
  prediction_ = prediction;
  return true;
}

}  // namespace crf
