#include "crf/core/autopilot_predictor.h"

#include <algorithm>
#include <cstdio>

#include "crf/util/check.h"

namespace crf {

AutopilotPredictor::AutopilotPredictor(double percentile, double margin,
                                       const PredictorConfig& config)
    : percentile_(percentile), margin_(margin), config_(config) {
  CRF_CHECK_GE(percentile, 0.0);
  CRF_CHECK_LE(percentile, 100.0);
  CRF_CHECK_GE(margin, 1.0);
  CRF_CHECK_GT(config.min_num_samples, 0);
  CRF_CHECK_GE(config.max_num_samples, config.min_num_samples);
}

void AutopilotPredictor::Observe(Interval now, std::span<const TaskSample> tasks) {
  double prediction = 0.0;
  double usage_now = 0.0;
  double limit_sum = 0.0;
  for (const TaskSample& sample : tasks) {
    auto [it, inserted] =
        tasks_.try_emplace(sample.task_id, TaskState{TaskHistory(config_.max_num_samples)});
    TaskState& state = it->second;
    state.history.Push(static_cast<float>(sample.usage));
    state.last_seen = now;

    usage_now += sample.usage;
    limit_sum += sample.limit;
    if (state.history.size() >= config_.min_num_samples) {
      // The Autopilot-style right-sized limit: a tail percentile with a
      // safety margin, never above the configured limit.
      prediction += std::min(sample.limit, margin_ * state.history.Percentile(percentile_));
    } else {
      prediction += sample.limit;
    }
  }
  std::erase_if(tasks_, [now](const auto& entry) { return entry.second.last_seen != now; });
  prediction_ = ClampPrediction(prediction, usage_now, limit_sum);
}

double AutopilotPredictor::PredictPeak() const { return prediction_; }

void AutopilotPredictor::Reset() {
  tasks_.clear();
  prediction_ = 0.0;
}

std::string AutopilotPredictor::name() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "autopilot-p%.0f-m%.2f", percentile_, margin_);
  return buffer;
}

}  // namespace crf
