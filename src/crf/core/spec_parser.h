// Textual predictor specifications, for CLI/tooling use.
//
// Grammar (whitespace-free):
//   spec      := simple | "max(" spec ("," spec)* ")"
//   simple    := "limit-sum"
//              | "borg-default" [":" phi]
//              | "rc-like" [":" percentile]
//              | "n-sigma" [":" n]
//              | "autopilot" [":" percentile [":" margin]]
// Examples: "borg-default:0.9", "max(n-sigma:3,rc-like:80)", "autopilot:98:1.15".
//
// Warm-up and history windows are not part of the string; callers set them
// on the returned spec (defaults: 2h / 10h, the paper's values).
//
// The parser is total over arbitrary input: malformed specs — including
// empty strings, unknown predictor names, surplus parameters, non-numeric,
// non-finite (nan/inf), or overflowing values, and unbalanced parentheses —
// yield nullopt plus a precise diagnostic, never a crash or a downstream
// CHECK failure (every range constraint the predictor constructors enforce
// is validated here first).

#ifndef CRF_CORE_SPEC_PARSER_H_
#define CRF_CORE_SPEC_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "crf/core/predictor_factory.h"

namespace crf {

// Parses a predictor spec; nullopt on malformed input. When `error` is
// non-null, a failed parse stores a human-readable reason (the first —
// deepest — failure encountered).
std::optional<PredictorSpec> ParsePredictorSpec(std::string_view text, std::string* error);
std::optional<PredictorSpec> ParsePredictorSpec(std::string_view text);

}  // namespace crf

#endif  // CRF_CORE_SPEC_PARSER_H_
