#include "crf/core/max_predictor.h"

#include <algorithm>

#include "crf/util/check.h"

namespace crf {

MaxPredictor::MaxPredictor(std::vector<std::unique_ptr<PeakPredictor>> components)
    : components_(std::move(components)) {
  CRF_CHECK(!components_.empty());
  for (const auto& component : components_) {
    CRF_CHECK(component != nullptr);
  }
}

void MaxPredictor::Observe(Interval now, std::span<const TaskSample> tasks) {
  for (auto& component : components_) {
    component->Observe(now, tasks);
  }
}

double MaxPredictor::PredictPeak() const {
  double peak = 0.0;
  for (const auto& component : components_) {
    peak = std::max(peak, component->PredictPeak());
  }
  return peak;
}

void MaxPredictor::Reset() {
  for (auto& component : components_) {
    component->Reset();
  }
}

std::string MaxPredictor::name() const {
  std::string out = "max(";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += components_[i]->name();
  }
  out += ")";
  return out;
}

}  // namespace crf
