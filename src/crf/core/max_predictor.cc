#include "crf/core/max_predictor.h"

#include <algorithm>

#include "crf/util/byte_io.h"
#include "crf/util/check.h"

namespace crf {

namespace {
constexpr uint8_t kStateTag = 'M';
}  // namespace

MaxPredictor::MaxPredictor(std::vector<std::unique_ptr<PeakPredictor>> components)
    : components_(std::move(components)) {
  CRF_CHECK(!components_.empty());
  for (const auto& component : components_) {
    CRF_CHECK(component != nullptr);
  }
}

void MaxPredictor::Observe(Interval now, std::span<const TaskSample> tasks) {
  for (auto& component : components_) {
    component->Observe(now, tasks);
  }
}

double MaxPredictor::PredictPeak() const {
  double peak = 0.0;
  for (const auto& component : components_) {
    peak = std::max(peak, component->PredictPeak());
  }
  return peak;
}

void MaxPredictor::Reset() {
  for (auto& component : components_) {
    component->Reset();
  }
}

bool MaxPredictor::SaveState(ByteWriter& out) const {
  out.Write<uint8_t>(kStateTag);
  out.Write<uint64_t>(components_.size());
  for (const auto& component : components_) {
    if (!component->SaveState(out)) {
      return false;
    }
  }
  return true;
}

bool MaxPredictor::LoadState(ByteReader& in) {
  const uint8_t tag = in.Read<uint8_t>();
  const uint64_t count = in.Read<uint64_t>();
  if (!in.ok() || tag != kStateTag || count != components_.size()) {
    in.Fail();
    return false;
  }
  for (auto& component : components_) {
    if (!component->LoadState(in)) {
      return false;
    }
  }
  return true;
}

std::string MaxPredictor::name() const {
  std::string out = "max(";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += components_[i]->name();
  }
  out += ")";
  return out;
}

}  // namespace crf
