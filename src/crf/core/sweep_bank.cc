#include "crf/core/sweep_bank.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <utility>

#include "crf/util/check.h"

namespace crf {

namespace {

uint64_t NextPlanId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

SweepPlan::SweepPlan(std::span<const PredictorSpec> specs) : id_(NextPlanId()) {
  spec_nodes_.reserve(specs.size());
  for (const PredictorSpec& spec : specs) {
    // Runs the factory's full validation (knob ranges, non-empty max
    // components) so a plan accepts exactly the specs CreatePredictor does.
    CreatePredictor(spec);
    spec_nodes_.push_back(AddNode(spec));
  }
}

int SweepPlan::AddNode(const PredictorSpec& spec) {
  for (size_t i = 0; i < node_specs_.size(); ++i) {
    if (node_specs_[i] == spec) {
      return static_cast<int>(i);
    }
  }
  Node node;
  node.type = spec.type;
  switch (spec.type) {
    case PredictorSpec::Type::kLimitSum:
      break;
    case PredictorSpec::Type::kBorgDefault:
      node.phi = spec.phi;
      break;
    case PredictorSpec::Type::kRcLike:
      node.percentile = spec.percentile;
      node.min_num_samples = spec.config.min_num_samples;
      node.window_group = AddWindowGroup(spec.config.max_num_samples);
      break;
    case PredictorSpec::Type::kAutopilot:
      node.percentile = spec.percentile;
      node.margin = spec.margin;
      node.min_num_samples = spec.config.min_num_samples;
      node.window_group = AddWindowGroup(spec.config.max_num_samples);
      break;
    case PredictorSpec::Type::kNSigma:
      node.n_sigma = spec.n_sigma;
      node.min_num_samples = spec.config.min_num_samples;
      node.agg_group = AddAggGroup(spec.config.min_num_samples, spec.config.max_num_samples);
      break;
    case PredictorSpec::Type::kChance:
      node.target = spec.target;
      node.min_num_samples = spec.config.min_num_samples;
      node.quant_group =
          AddQuantGroup(spec.config.min_num_samples, spec.config.max_num_samples);
      break;
    case PredictorSpec::Type::kFlex:
      node.percentile = spec.percentile;
      node.margin = spec.margin;
      node.min_num_samples = spec.config.min_num_samples;
      node.ratio_group = AddRatioGroup(spec.config.max_num_samples);
      break;
    case PredictorSpec::Type::kMax:
      node.components.reserve(spec.components.size());
      for (const PredictorSpec& component : spec.components) {
        node.components.push_back(AddNode(component));
      }
      break;
  }
  nodes_.push_back(std::move(node));
  node_specs_.push_back(spec);
  return static_cast<int>(nodes_.size()) - 1;
}

int SweepPlan::AddWindowGroup(int capacity) {
  for (size_t i = 0; i < window_groups_.size(); ++i) {
    if (window_groups_[i].capacity == capacity) {
      return static_cast<int>(i);
    }
  }
  window_groups_.push_back(WindowGroup{capacity});
  return static_cast<int>(window_groups_.size()) - 1;
}

int SweepPlan::AddAggGroup(Interval min_num_samples, int capacity) {
  for (size_t i = 0; i < agg_groups_.size(); ++i) {
    if (agg_groups_[i].min_num_samples == min_num_samples &&
        agg_groups_[i].capacity == capacity) {
      return static_cast<int>(i);
    }
  }
  agg_groups_.push_back(AggGroup{min_num_samples, capacity});
  return static_cast<int>(agg_groups_.size()) - 1;
}

int SweepPlan::AddQuantGroup(Interval min_num_samples, int capacity) {
  for (size_t i = 0; i < quant_groups_.size(); ++i) {
    if (quant_groups_[i].min_num_samples == min_num_samples &&
        quant_groups_[i].capacity == capacity) {
      return static_cast<int>(i);
    }
  }
  quant_groups_.push_back(QuantGroup{min_num_samples, capacity});
  return static_cast<int>(quant_groups_.size()) - 1;
}

int SweepPlan::AddRatioGroup(int capacity) {
  for (size_t i = 0; i < ratio_groups_.size(); ++i) {
    if (ratio_groups_[i].capacity == capacity) {
      return static_cast<int>(i);
    }
  }
  ratio_groups_.push_back(RatioGroup{capacity});
  return static_cast<int>(ratio_groups_.size()) - 1;
}

void SweepBank::Attach(const SweepPlan* plan) {
  CRF_CHECK(plan != nullptr);
  plan_ = plan;

  window_groups_.clear();
  window_groups_.resize(plan->window_groups().size());

  agg_windows_.clear();
  agg_windows_.reserve(plan->agg_groups().size());
  for (const SweepPlan::AggGroup& group : plan->agg_groups()) {
    agg_windows_.emplace_back(group.capacity);
  }
  const size_t num_agg = plan->agg_groups().size();
  agg_warmed_.assign(num_agg, 0.0);
  agg_warming_limit_.assign(num_agg, 0.0);
  agg_mean_.assign(num_agg, 0.0);
  agg_stddev_.assign(num_agg, 0.0);

  quant_windows_.clear();
  quant_windows_.reserve(plan->quant_groups().size());
  for (const SweepPlan::QuantGroup& group : plan->quant_groups()) {
    quant_windows_.emplace_back(group.capacity);
  }
  const size_t num_quant = plan->quant_groups().size();
  quant_warmed_.assign(num_quant, 0.0);
  quant_warming_limit_.assign(num_quant, 0.0);

  ratio_windows_.clear();
  ratio_windows_.reserve(plan->ratio_groups().size());
  for (const SweepPlan::RatioGroup& group : plan->ratio_groups()) {
    ratio_windows_.emplace_back(group.capacity);
  }

  per_task_nodes_.clear();
  for (int n = 0; n < plan->num_nodes(); ++n) {
    const SweepPlan::Node& node = plan->nodes()[n];
    if (node.type == PredictorSpec::Type::kRcLike ||
        node.type == PredictorSpec::Type::kAutopilot) {
      per_task_nodes_.push_back(n);
    }
  }

  node_values_.assign(plan->num_nodes(), 0.0);
  spec_predictions_.assign(plan->num_specs(), 0.0);

  roster_ids_.clear();
  samples_seen_.clear();
}

void SweepBank::BeginMachine() {
  CRF_CHECK(plan_ != nullptr);
  roster_ids_.clear();
  samples_seen_.clear();
  for (WindowGroupState& group : window_groups_) {
    // Return every live window to the pool; Clear keeps their storage.
    for (int32_t w : group.slot_window) {
      group.windows[w].Clear();
      group.free_list.push_back(w);
    }
    group.slot_window.clear();
  }
  for (AggregateWindow& window : agg_windows_) {
    window.Reset();
  }
  for (IndexableWindow& window : quant_windows_) {
    window.Clear();
  }
  for (IndexableWindow& window : ratio_windows_) {
    window.Clear();
  }
  std::fill(node_values_.begin(), node_values_.end(), 0.0);
  std::fill(spec_predictions_.begin(), spec_predictions_.end(), 0.0);
}

int32_t SweepBank::AllocWindow(WindowGroupState& group, int capacity) {
  if (!group.free_list.empty()) {
    const int32_t w = group.free_list.back();
    group.free_list.pop_back();
    return w;  // Pooled windows are Clear()ed on release and share capacity.
  }
  group.windows.emplace_back(capacity);
  return static_cast<int32_t>(group.windows.size()) - 1;
}

void SweepBank::RebuildRoster(std::span<const TaskSample> tasks) {
  // Carry surviving tasks' state over by id; departed tasks' windows return
  // to the pool and their warm-up progress is dropped (re-arrival of the
  // same id restarts warm-up, matching the standalone predictors).
  std::unordered_map<TaskId, size_t> carried;
  carried.reserve(roster_ids_.size());
  for (size_t i = 0; i < roster_ids_.size(); ++i) {
    carried.emplace(roster_ids_[i], i);
  }

  rebuild_ids_.resize(tasks.size());
  rebuild_seen_.resize(tasks.size());
  rebuild_slots_.resize(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    rebuild_ids_[i] = tasks[i].task_id;
    const auto it = carried.find(tasks[i].task_id);
    if (it != carried.end()) {
      rebuild_seen_[i] = samples_seen_[it->second];
      rebuild_slots_[i] = static_cast<int32_t>(it->second);
      carried.erase(it);  // A duplicated id gets one carry, then fresh state.
    } else {
      rebuild_seen_[i] = 0;
      rebuild_slots_[i] = -1;
    }
  }

  rebuild_slot_carried_.assign(roster_ids_.size(), 0);
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (rebuild_slots_[i] >= 0) {
      rebuild_slot_carried_[rebuild_slots_[i]] = 1;
    }
  }

  for (size_t g = 0; g < window_groups_.size(); ++g) {
    WindowGroupState& group = window_groups_[g];
    const int capacity = plan_->window_groups()[g].capacity;
    // Departed slots release their windows first so a same-interval
    // departure+arrival reuses the freed storage.
    for (size_t s = 0; s < group.slot_window.size(); ++s) {
      if (!rebuild_slot_carried_[s]) {
        group.windows[group.slot_window[s]].Clear();
        group.free_list.push_back(group.slot_window[s]);
      }
    }
    std::vector<int32_t> new_slot_window(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i) {
      new_slot_window[i] = rebuild_slots_[i] >= 0 ? group.slot_window[rebuild_slots_[i]]
                                                  : AllocWindow(group, capacity);
    }
    group.slot_window = std::move(new_slot_window);
  }

  roster_ids_ = rebuild_ids_;
  samples_seen_ = rebuild_seen_;
}

void SweepBank::Observe(Interval /*now*/, std::span<const TaskSample> tasks) {
  CRF_CHECK(plan_ != nullptr);

  bool roster_matches = roster_ids_.size() == tasks.size();
  if (roster_matches) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (roster_ids_[i] != tasks[i].task_id) {
        roster_matches = false;
        break;
      }
    }
  }
  if (!roster_matches) {
    RebuildRoster(tasks);
  }

  const std::vector<SweepPlan::Node>& nodes = plan_->nodes();

  double usage_now = 0.0;
  double limit_sum = 0.0;
  for (const int n : per_task_nodes_) {
    node_values_[n] = 0.0;
  }
  std::fill(agg_warmed_.begin(), agg_warmed_.end(), 0.0);
  std::fill(agg_warming_limit_.begin(), agg_warming_limit_.end(), 0.0);
  std::fill(quant_warmed_.begin(), quant_warmed_.end(), 0.0);
  std::fill(quant_warming_limit_.begin(), quant_warming_limit_.end(), 0.0);

  for (size_t i = 0; i < tasks.size(); ++i) {
    const TaskSample& sample = tasks[i];
    usage_now += sample.usage;
    limit_sum += sample.limit;
    const Interval seen = ++samples_seen_[i];

    // One window push per distinct history length serves every percentile
    // query against that window.
    for (WindowGroupState& group : window_groups_) {
      group.windows[group.slot_window[i]].Push(static_cast<float>(sample.usage));
    }

    for (const int n : per_task_nodes_) {
      const SweepPlan::Node& node = nodes[n];
      // size() >= min ⟺ seen >= min: the window holds min(seen, capacity)
      // samples and min_num_samples <= capacity by construction.
      if (seen >= node.min_num_samples) {
        const WindowGroupState& group = window_groups_[node.window_group];
        const double percentile = group.windows[group.slot_window[i]].Percentile(node.percentile);
        node_values_[n] += node.type == PredictorSpec::Type::kAutopilot
                               ? std::min(sample.limit, node.margin * percentile)
                               : percentile;
      } else {
        node_values_[n] += sample.limit;  // Warm-up: represent by the limit.
      }
    }

    for (size_t g = 0; g < agg_windows_.size(); ++g) {
      if (seen >= plan_->agg_groups()[g].min_num_samples) {
        agg_warmed_[g] += sample.usage;
      } else {
        agg_warming_limit_[g] += sample.limit;
      }
    }

    for (size_t g = 0; g < quant_windows_.size(); ++g) {
      if (seen >= plan_->quant_groups()[g].min_num_samples) {
        quant_warmed_[g] += sample.usage;
      } else {
        quant_warming_limit_[g] += sample.limit;
      }
    }
  }

  for (size_t g = 0; g < agg_windows_.size(); ++g) {
    agg_windows_[g].Push(agg_warmed_[g]);
    // Mean before Stddev: Stddev may refresh the running moments, and the
    // published mean must be the one the variance was computed against
    // (mirrors NSigmaPredictor::Observe).
    agg_mean_[g] = agg_windows_[g].Mean();
    agg_stddev_[g] = agg_windows_[g].Stddev();
  }

  // Chance pushes the warmed aggregate unconditionally (idle intervals are
  // real observations); flex only sees occupied polls (0/0 has no gap) —
  // both mirror their standalone predictors exactly.
  for (size_t g = 0; g < quant_windows_.size(); ++g) {
    quant_windows_[g].Push(static_cast<float>(quant_warmed_[g]));
  }
  if (limit_sum > 0.0) {
    for (IndexableWindow& window : ratio_windows_) {
      window.Push(static_cast<float>(usage_now / limit_sum));
    }
  }

  for (int n = 0; n < plan_->num_nodes(); ++n) {
    const SweepPlan::Node& node = nodes[n];
    switch (node.type) {
      case PredictorSpec::Type::kLimitSum:
        node_values_[n] = limit_sum;  // Unclamped, like LimitSumPredictor.
        break;
      case PredictorSpec::Type::kBorgDefault:
        node_values_[n] = ClampPrediction(node.phi * limit_sum, usage_now, limit_sum);
        break;
      case PredictorSpec::Type::kRcLike:
      case PredictorSpec::Type::kAutopilot:
        node_values_[n] = ClampPrediction(node_values_[n], usage_now, limit_sum);
        break;
      case PredictorSpec::Type::kNSigma:
        node_values_[n] =
            ClampPrediction(agg_mean_[node.agg_group] +
                                node.n_sigma * agg_stddev_[node.agg_group] +
                                agg_warming_limit_[node.agg_group],
                            usage_now, limit_sum);
        break;
      case PredictorSpec::Type::kChance:
        node_values_[n] = ClampPrediction(
            quant_windows_[node.quant_group].Percentile((1.0 - node.target) * 100.0) +
                quant_warming_limit_[node.quant_group],
            usage_now, limit_sum);
        break;
      case PredictorSpec::Type::kFlex: {
        const IndexableWindow& ratios = ratio_windows_[node.ratio_group];
        const double phi = ratios.size() >= node.min_num_samples
                               ? std::min(1.0, node.margin * ratios.Percentile(node.percentile))
                               : 1.0;
        node_values_[n] = ClampPrediction(phi * limit_sum, usage_now, limit_sum);
        break;
      }
      case PredictorSpec::Type::kMax: {
        double peak = 0.0;  // MaxPredictor folds from 0.0.
        for (const int c : node.components) {
          peak = std::max(peak, node_values_[c]);
        }
        node_values_[n] = peak;
        break;
      }
    }
  }

  for (int s = 0; s < plan_->num_specs(); ++s) {
    spec_predictions_[s] = node_values_[plan_->spec_node(s)];
  }
}

}  // namespace crf
