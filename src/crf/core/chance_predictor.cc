#include "crf/core/chance_predictor.h"

#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "crf/util/byte_io.h"
#include "crf/util/check.h"

namespace crf {

namespace {
constexpr uint8_t kStateTag = 'C';
// Upper bound on a serialized roster: far above any real machine's resident
// task count, small enough to reject a corrupted length before allocating.
constexpr uint64_t kMaxRosterTasks = 1 << 20;
}  // namespace

ChancePredictor::ChancePredictor(double target, const PredictorConfig& config)
    : target_(target), config_(config), window_(config.max_num_samples) {
  CRF_CHECK_GT(target, 0.0);
  CRF_CHECK_LT(target, 1.0);
  CRF_CHECK_GT(config.min_num_samples, 0);
  CRF_CHECK_GE(config.max_num_samples, config.min_num_samples);
}

void ChancePredictor::RebuildRoster(std::span<const TaskSample> tasks) {
  // Carry warm-up progress over for tasks that survive the event; absent
  // tasks have departed and their state is dropped (re-arrival of the same
  // id starts a fresh warm-up, per the Observe contract).
  std::unordered_map<TaskId, Interval> carried;
  carried.reserve(roster_ids_.size());
  for (size_t i = 0; i < roster_ids_.size(); ++i) {
    carried.emplace(roster_ids_[i], samples_seen_[i]);
  }
  roster_ids_.resize(tasks.size());
  samples_seen_.resize(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    roster_ids_[i] = tasks[i].task_id;
    const auto it = carried.find(tasks[i].task_id);
    samples_seen_[i] = it != carried.end() ? it->second : 0;
  }
}

void ChancePredictor::Observe(Interval /*now*/, std::span<const TaskSample> tasks) {
  bool roster_matches = roster_ids_.size() == tasks.size();
  if (roster_matches) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (roster_ids_[i] != tasks[i].task_id) {
        roster_matches = false;
        break;
      }
    }
  }
  if (!roster_matches) {
    RebuildRoster(tasks);
  }

  double warmed_usage = 0.0;
  double warming_limit = 0.0;
  double usage_now = 0.0;
  double limit_sum = 0.0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    const TaskSample& sample = tasks[i];
    usage_now += sample.usage;
    limit_sum += sample.limit;
    if (++samples_seen_[i] >= config_.min_num_samples) {
      warmed_usage += sample.usage;
    } else {
      warming_limit += sample.limit;
    }
  }

  // The empty machine's zero load is a real observation: pushing it
  // unconditionally keeps the distribution honest about idle intervals.
  window_.Push(static_cast<float>(warmed_usage));
  const double quantile = window_.Percentile((1.0 - target_) * 100.0);
  prediction_ = ClampPrediction(quantile + warming_limit, usage_now, limit_sum);
}

double ChancePredictor::PredictPeak() const { return prediction_; }

void ChancePredictor::Reset() {
  roster_ids_.clear();
  samples_seen_.clear();
  window_.Clear();
  prediction_ = 0.0;
}

std::string ChancePredictor::name() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "chance-e%g", target_);
  return buffer;
}

bool ChancePredictor::SaveState(ByteWriter& out) const {
  out.Write<uint8_t>(kStateTag);
  out.WriteVec(roster_ids_);
  out.WriteVec(samples_seen_);
  window_.SaveState(out);
  out.Write<double>(prediction_);
  return true;
}

bool ChancePredictor::LoadState(ByteReader& in) {
  const uint8_t tag = in.Read<uint8_t>();
  std::vector<TaskId> roster_ids;
  std::vector<Interval> samples_seen;
  if (!in.ReadVec(roster_ids, kMaxRosterTasks) || !in.ReadVec(samples_seen, kMaxRosterTasks) ||
      tag != kStateTag || samples_seen.size() != roster_ids.size()) {
    in.Fail();
    return false;
  }
  for (const Interval seen : samples_seen) {
    if (seen < 0) {
      in.Fail();
      return false;
    }
  }
  if (!window_.LoadState(in)) {
    return false;
  }
  const double prediction = in.Read<double>();
  if (!in.ok() || !std::isfinite(prediction) || prediction < 0.0) {
    in.Fail();
    return false;
  }
  roster_ids_ = std::move(roster_ids);
  samples_seen_ = std::move(samples_seen);
  prediction_ = prediction;
  return true;
}

}  // namespace crf
