// The N-sigma predictor (paper Section 4).
//
// Approximates the machine's total load as Gaussian (valid for sums of many
// task loads even when the per-task distributions are not, cf. [Janus &
// Rzadca, SoCC'17]): P(J, t) = mean(U(J)) + N * std(U(J)) computed over a
// moving window of the machine-level aggregate usage of warmed-up tasks;
// tasks still warming up contribute their limit on top. N = 2 approximates
// the 95th percentile of the load distribution, N = 3 the 99th.

#ifndef CRF_CORE_N_SIGMA_PREDICTOR_H_
#define CRF_CORE_N_SIGMA_PREDICTOR_H_

#include <deque>
#include <unordered_map>

#include "crf/core/predictor.h"

namespace crf {

class NSigmaPredictor : public PeakPredictor {
 public:
  NSigmaPredictor(double n, const PredictorConfig& config);

  void Observe(Interval now, std::span<const TaskSample> tasks) override;
  double PredictPeak() const override;
  std::string name() const override;

  double n() const { return n_; }

 private:
  struct TaskState {
    Interval samples_seen = 0;
    Interval last_seen = -1;
  };

  double n_;
  PredictorConfig config_;
  std::unordered_map<TaskId, TaskState> tasks_;
  // Machine-level aggregate usage of warmed tasks, one entry per poll,
  // bounded by max_num_samples.
  std::deque<double> aggregate_window_;
  double prediction_ = 0.0;
};

}  // namespace crf

#endif  // CRF_CORE_N_SIGMA_PREDICTOR_H_
