// The N-sigma predictor (paper Section 4).
//
// Approximates the machine's total load as Gaussian (valid for sums of many
// task loads even when the per-task distributions are not, cf. [Janus &
// Rzadca, SoCC'17]): P(J, t) = mean(U(J)) + N * std(U(J)) computed over a
// moving window of the machine-level aggregate usage of warmed-up tasks;
// tasks still warming up contribute their limit on top. N = 2 approximates
// the 95th percentile of the load distribution, N = 3 the 99th.
//
// Hot-path design: the resident task set only changes at arrival/departure
// events, so per-task state lives in a roster (parallel vectors in the
// caller's sample order) that is revalidated with one id comparison per task
// and rebuilt only on events — no hashing on the steady-state path. The
// window statistics live in an AggregateWindow (ring buffer + running
// sum/sum-of-squares with an exact Welford fallback), shared with the sweep
// engine so both compute identical statistics.

#ifndef CRF_CORE_N_SIGMA_PREDICTOR_H_
#define CRF_CORE_N_SIGMA_PREDICTOR_H_

#include <vector>

#include "crf/core/aggregate_window.h"
#include "crf/core/predictor.h"

namespace crf {

class NSigmaPredictor : public PeakPredictor {
 public:
  NSigmaPredictor(double n, const PredictorConfig& config);

  void Observe(Interval now, std::span<const TaskSample> tasks) override;
  double PredictPeak() const override;
  void Reset() override;
  std::string name() const override;

  bool SaveState(ByteWriter& out) const override;
  bool LoadState(ByteReader& in) override;

  double n() const { return n_; }

 private:
  void RebuildRoster(std::span<const TaskSample> tasks);

  double n_;
  PredictorConfig config_;

  // Resident task roster, parallel to the sample order of the last Observe.
  std::vector<TaskId> roster_ids_;
  std::vector<Interval> samples_seen_;

  // Machine-level aggregate usage of warmed tasks over the last
  // max_num_samples polls.
  AggregateWindow window_;

  double prediction_ = 0.0;
};

}  // namespace crf

#endif  // CRF_CORE_N_SIGMA_PREDICTOR_H_
