#include "crf/core/borg_default_predictor.h"

#include <cstdio>

#include "crf/util/check.h"

namespace crf {

BorgDefaultPredictor::BorgDefaultPredictor(double phi) : phi_(phi) {
  CRF_CHECK_GT(phi, 0.0);
  CRF_CHECK_LE(phi, 1.0);
}

void BorgDefaultPredictor::Observe(Interval /*now*/, std::span<const TaskSample> tasks) {
  limit_sum_ = 0.0;
  usage_now_ = 0.0;
  for (const TaskSample& task : tasks) {
    limit_sum_ += task.limit;
    usage_now_ += task.usage;
  }
}

double BorgDefaultPredictor::PredictPeak() const {
  return ClampPrediction(phi_ * limit_sum_, usage_now_, limit_sum_);
}

std::string BorgDefaultPredictor::name() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "borg-default-%.2f", phi_);
  return buffer;
}

}  // namespace crf
