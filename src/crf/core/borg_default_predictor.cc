#include "crf/core/borg_default_predictor.h"

#include <cmath>
#include <cstdio>

#include "crf/util/byte_io.h"
#include "crf/util/check.h"

namespace crf {

namespace {
constexpr uint8_t kStateTag = 'B';
}  // namespace

BorgDefaultPredictor::BorgDefaultPredictor(double phi) : phi_(phi) {
  CRF_CHECK_GT(phi, 0.0);
  CRF_CHECK_LE(phi, 1.0);
}

void BorgDefaultPredictor::Observe(Interval /*now*/, std::span<const TaskSample> tasks) {
  limit_sum_ = 0.0;
  usage_now_ = 0.0;
  for (const TaskSample& task : tasks) {
    limit_sum_ += task.limit;
    usage_now_ += task.usage;
  }
}

double BorgDefaultPredictor::PredictPeak() const {
  return ClampPrediction(phi_ * limit_sum_, usage_now_, limit_sum_);
}

std::string BorgDefaultPredictor::name() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "borg-default-%.2f", phi_);
  return buffer;
}

bool BorgDefaultPredictor::SaveState(ByteWriter& out) const {
  out.Write<uint8_t>(kStateTag);
  out.Write<double>(limit_sum_);
  out.Write<double>(usage_now_);
  return true;
}

bool BorgDefaultPredictor::LoadState(ByteReader& in) {
  const uint8_t tag = in.Read<uint8_t>();
  const double limit_sum = in.Read<double>();
  const double usage_now = in.Read<double>();
  if (!in.ok() || tag != kStateTag || !std::isfinite(limit_sum) || limit_sum < 0.0 ||
      !std::isfinite(usage_now) || usage_now < 0.0) {
    in.Fail();
    return false;
  }
  limit_sum_ = limit_sum;
  usage_now_ = usage_now;
  return true;
}

}  // namespace crf
