#include "crf/core/predictor_factory.h"

#include <utility>

#include "crf/core/autopilot_predictor.h"
#include "crf/core/borg_default_predictor.h"
#include "crf/core/chance_predictor.h"
#include "crf/core/flex_predictor.h"
#include "crf/core/limit_sum_predictor.h"
#include "crf/core/max_predictor.h"
#include "crf/core/n_sigma_predictor.h"
#include "crf/core/rc_like_predictor.h"
#include "crf/util/check.h"

namespace crf {

std::string PredictorSpec::Name() const {
  // Instantiate-and-ask keeps names in one place.
  return CreatePredictor(*this)->name();
}

PredictorSpec LimitSumSpec() {
  PredictorSpec spec;
  spec.type = PredictorSpec::Type::kLimitSum;
  return spec;
}

PredictorSpec BorgDefaultSpec(double phi) {
  PredictorSpec spec;
  spec.type = PredictorSpec::Type::kBorgDefault;
  spec.phi = phi;
  return spec;
}

PredictorSpec RcLikeSpec(double percentile, Interval warmup, Interval history) {
  PredictorSpec spec;
  spec.type = PredictorSpec::Type::kRcLike;
  spec.percentile = percentile;
  spec.config.min_num_samples = warmup;
  spec.config.max_num_samples = history;
  return spec;
}

PredictorSpec NSigmaSpec(double n, Interval warmup, Interval history) {
  PredictorSpec spec;
  spec.type = PredictorSpec::Type::kNSigma;
  spec.n_sigma = n;
  spec.config.min_num_samples = warmup;
  spec.config.max_num_samples = history;
  return spec;
}

PredictorSpec AutopilotSpec(double percentile, double margin, Interval warmup,
                            Interval history) {
  PredictorSpec spec;
  spec.type = PredictorSpec::Type::kAutopilot;
  spec.percentile = percentile;
  spec.margin = margin;
  spec.config.min_num_samples = warmup;
  spec.config.max_num_samples = history;
  return spec;
}

PredictorSpec ChanceSpec(double target, Interval warmup, Interval history) {
  PredictorSpec spec;
  spec.type = PredictorSpec::Type::kChance;
  spec.target = target;
  spec.config.min_num_samples = warmup;
  spec.config.max_num_samples = history;
  return spec;
}

PredictorSpec FlexSpec(double percentile, double margin, Interval warmup, Interval history) {
  PredictorSpec spec;
  spec.type = PredictorSpec::Type::kFlex;
  spec.percentile = percentile;
  spec.margin = margin;
  spec.config.min_num_samples = warmup;
  spec.config.max_num_samples = history;
  return spec;
}

PredictorSpec MaxSpec(std::vector<PredictorSpec> components) {
  PredictorSpec spec;
  spec.type = PredictorSpec::Type::kMax;
  spec.components = std::move(components);
  return spec;
}

PredictorSpec SimulationMaxSpec() { return MaxSpec({NSigmaSpec(5.0), RcLikeSpec(99.0)}); }

PredictorSpec ProductionMaxSpec() { return MaxSpec({NSigmaSpec(3.0), RcLikeSpec(80.0)}); }

std::unique_ptr<PeakPredictor> CreatePredictor(const PredictorSpec& spec) {
  switch (spec.type) {
    case PredictorSpec::Type::kLimitSum:
      return std::make_unique<LimitSumPredictor>();
    case PredictorSpec::Type::kBorgDefault:
      return std::make_unique<BorgDefaultPredictor>(spec.phi);
    case PredictorSpec::Type::kRcLike:
      return std::make_unique<RcLikePredictor>(spec.percentile, spec.config);
    case PredictorSpec::Type::kNSigma:
      return std::make_unique<NSigmaPredictor>(spec.n_sigma, spec.config);
    case PredictorSpec::Type::kAutopilot:
      return std::make_unique<AutopilotPredictor>(spec.percentile, spec.margin, spec.config);
    case PredictorSpec::Type::kChance:
      return std::make_unique<ChancePredictor>(spec.target, spec.config);
    case PredictorSpec::Type::kFlex:
      return std::make_unique<FlexPredictor>(spec.percentile, spec.margin, spec.config);
    case PredictorSpec::Type::kMax: {
      CRF_CHECK(!spec.components.empty()) << "max predictor needs components";
      std::vector<std::unique_ptr<PeakPredictor>> components;
      components.reserve(spec.components.size());
      for (const PredictorSpec& component : spec.components) {
        components.push_back(CreatePredictor(component));
      }
      return std::make_unique<MaxPredictor>(std::move(components));
    }
  }
  CRF_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace crf
