// An Autopilot-like per-task limit baseline (paper Section 2.2).
//
// Autopilot [Rzadca et al., EuroSys'20] right-sizes each task's *limit* to a
// high percentile of its observed usage plus a safety margin. As an
// overcommit policy this corresponds to predicting the machine peak as the
// sum of per-task Autopilot limits:
//
//   P(J, t) = sum_i min(L_i, margin * perc_k(U_i history))
//
// The paper's argument is that even a perfect per-task limit tuner leaves
// the pooling gap on the table: tasks do not peak together, so the sum of
// tight per-task ceilings still overestimates the machine peak. This
// predictor makes that argument measurable — it sits between the RC-like
// percentile sum (margin = 1) and the raw limit sum.

#ifndef CRF_CORE_AUTOPILOT_PREDICTOR_H_
#define CRF_CORE_AUTOPILOT_PREDICTOR_H_

#include <unordered_map>

#include "crf/core/predictor.h"
#include "crf/core/task_history.h"

namespace crf {

class AutopilotPredictor : public PeakPredictor {
 public:
  // `percentile` and `margin` follow Autopilot's defaults: the 98th
  // percentile of recent usage with a ~10-15% safety margin.
  AutopilotPredictor(double percentile, double margin, const PredictorConfig& config);

  void Observe(Interval now, std::span<const TaskSample> tasks) override;
  double PredictPeak() const override;
  void Reset() override;
  std::string name() const override;

  bool SaveState(ByteWriter& out) const override;
  bool LoadState(ByteReader& in) override;

  double percentile() const { return percentile_; }
  double margin() const { return margin_; }

 private:
  struct TaskState {
    TaskHistory history;
    Interval last_seen = -1;
  };

  double percentile_;
  double margin_;
  PredictorConfig config_;
  std::unordered_map<TaskId, TaskState> tasks_;
  double prediction_ = 0.0;
};

}  // namespace crf

#endif  // CRF_CORE_AUTOPILOT_PREDICTOR_H_
