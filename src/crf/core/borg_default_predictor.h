// The borg-default predictor (paper Section 4).
//
// Overcommits CPU by a fixed ratio: P(J, t) = phi * sum_i L_i. This is the
// static, limit-based policy Borg has run since ~2016 and that many other
// platforms adopt; phi = 1.0 degenerates to no overcommit. The paper
// calibrates phi = 0.9 from the usage-to-limit distribution (Fig 7c: ~10% of
// allocated resources are unused 95% of the time).

#ifndef CRF_CORE_BORG_DEFAULT_PREDICTOR_H_
#define CRF_CORE_BORG_DEFAULT_PREDICTOR_H_

#include "crf/core/predictor.h"

namespace crf {

class BorgDefaultPredictor : public PeakPredictor {
 public:
  explicit BorgDefaultPredictor(double phi = 0.9);

  void Observe(Interval now, std::span<const TaskSample> tasks) override;
  double PredictPeak() const override;
  void Reset() override { limit_sum_ = 0.0; usage_now_ = 0.0; }
  std::string name() const override;

  bool SaveState(ByteWriter& out) const override;
  bool LoadState(ByteReader& in) override;

  double phi() const { return phi_; }

 private:
  double phi_;
  double limit_sum_ = 0.0;
  double usage_now_ = 0.0;
};

}  // namespace crf

#endif  // CRF_CORE_BORG_DEFAULT_PREDICTOR_H_
