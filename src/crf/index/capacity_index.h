// Capacity-indexed tournament tree over the machines of a cell.
//
// The scheduler's placement loop needs, thousands of times per simulated
// interval, "the machine with the least (best-fit) or most (worst-fit)
// advertised free capacity that still fits this task". A linear scan is O(M)
// per placement; at cell scale the scan dominates the whole simulation. This
// index keeps every machine in a balanced tournament: nodes are ordered by
// the key (free_capacity, machine_index) and heap-ordered by a fixed
// pseudo-random per-machine priority (a treap), so the structure — and
// therefore every query answer — is a pure function of the current
// capacities, independent of update order. All queries and incremental
// updates are O(log M) expected.
//
// The tree exposes rank-space primitives (lower-bound rank of a key, machine
// at a rank) rather than policy decisions: the scheduler composes them into
// best-fit / worst-fit / random-fit with anti-affinity exclusion probing,
// keeping this structure policy-free and directly testable against a sorted
// array.

#ifndef CRF_INDEX_CAPACITY_INDEX_H_
#define CRF_INDEX_CAPACITY_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

namespace crf {

class CapacityTournamentTree {
 public:
  CapacityTournamentTree() = default;

  // Rebuilds the index over machines 0..free.size()-1 with the given free
  // capacities. O(M log M).
  void Assign(std::span<const double> free);

  // Sets machine `machine`'s free capacity (erase + reinsert). O(log M).
  void Update(int machine, double free);

  // The free capacity the index currently holds for `machine`.
  double free(int machine) const { return nodes_[machine].free; }

  int num_machines() const { return static_cast<int>(nodes_.size()); }

  // Number of machines whose key (free, index) orders strictly before
  // (free, machine) — i.e. the lower-bound rank. `machine` may be a sentinel
  // outside [0, M): -1 ranks before every machine with that free capacity,
  // num_machines() after every one.
  int RankOfKey(double free, int machine) const;

  // The machine holding rank `rank` in (free, index) order, or -1 if `rank`
  // is outside [0, num_machines()).
  int MachineAtRank(int rank) const;

 private:
  struct Node {
    double free = 0.0;
    uint64_t priority = 0;
    int left = -1;
    int right = -1;
    int count = 1;  // subtree size
  };

  bool KeyLess(double free_a, int a, double free_b, int b) const {
    return free_a < free_b || (free_a == free_b && a < b);
  }
  int CountOf(int n) const { return n < 0 ? 0 : nodes_[n].count; }
  void Pull(int n) {
    nodes_[n].count = 1 + CountOf(nodes_[n].left) + CountOf(nodes_[n].right);
  }
  // Splits `t` into `a` (keys < (free, machine)) and `b` (the rest).
  void Split(int t, double free, int machine, int& a, int& b);
  int Merge(int a, int b);
  void Insert(int machine);
  void Erase(int machine);

  std::vector<Node> nodes_;  // nodes_[m] is machine m's node, forever.
  int root_ = -1;
};

}  // namespace crf

#endif  // CRF_INDEX_CAPACITY_INDEX_H_
