#include "crf/index/capacity_index.h"

#include "crf/util/check.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

// Fixed per-machine heap priority. Hash-random so the treap stays balanced in
// expectation, but a pure function of the machine index so the tree shape
// never depends on update history.
uint64_t MachinePriority(int machine) {
  uint64_t state = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(machine);
  return SplitMix64(state);
}

}  // namespace

void CapacityTournamentTree::Assign(std::span<const double> free) {
  nodes_.clear();
  nodes_.reserve(free.size());
  for (size_t m = 0; m < free.size(); ++m) {
    Node node;
    node.free = free[m];
    node.priority = MachinePriority(static_cast<int>(m));
    nodes_.push_back(node);
  }
  root_ = -1;
  for (int m = 0; m < static_cast<int>(nodes_.size()); ++m) {
    Insert(m);
  }
}

void CapacityTournamentTree::Update(int machine, double free) {
  CRF_CHECK_GE(machine, 0);
  CRF_CHECK_LT(machine, num_machines());
  if (nodes_[machine].free == free) {
    return;
  }
  Erase(machine);
  nodes_[machine].free = free;
  Insert(machine);
}

void CapacityTournamentTree::Split(int t, double free, int machine, int& a, int& b) {
  if (t < 0) {
    a = -1;
    b = -1;
    return;
  }
  if (KeyLess(nodes_[t].free, t, free, machine)) {
    Split(nodes_[t].right, free, machine, nodes_[t].right, b);
    a = t;
  } else {
    Split(nodes_[t].left, free, machine, a, nodes_[t].left);
    b = t;
  }
  Pull(t);
}

int CapacityTournamentTree::Merge(int a, int b) {
  if (a < 0) {
    return b;
  }
  if (b < 0) {
    return a;
  }
  if (nodes_[a].priority > nodes_[b].priority) {
    nodes_[a].right = Merge(nodes_[a].right, b);
    Pull(a);
    return a;
  }
  nodes_[b].left = Merge(a, nodes_[b].left);
  Pull(b);
  return b;
}

void CapacityTournamentTree::Insert(int machine) {
  nodes_[machine].left = -1;
  nodes_[machine].right = -1;
  nodes_[machine].count = 1;
  int a = -1;
  int b = -1;
  Split(root_, nodes_[machine].free, machine, a, b);
  root_ = Merge(Merge(a, machine), b);
}

void CapacityTournamentTree::Erase(int machine) {
  // Keys are unique, so splitting at (free, machine) and (free, machine + 1)
  // isolates exactly machine's node.
  int a = -1;
  int mid = -1;
  int b = -1;
  Split(root_, nodes_[machine].free, machine, a, mid);
  Split(mid, nodes_[machine].free, machine + 1, mid, b);
  CRF_CHECK_EQ(mid, machine);
  root_ = Merge(a, b);
}

int CapacityTournamentTree::RankOfKey(double free, int machine) const {
  int rank = 0;
  int n = root_;
  while (n >= 0) {
    if (KeyLess(nodes_[n].free, n, free, machine)) {
      rank += CountOf(nodes_[n].left) + 1;
      n = nodes_[n].right;
    } else {
      n = nodes_[n].left;
    }
  }
  return rank;
}

int CapacityTournamentTree::MachineAtRank(int rank) const {
  if (rank < 0 || rank >= num_machines()) {
    return -1;
  }
  int n = root_;
  while (n >= 0) {
    const int left = CountOf(nodes_[n].left);
    if (rank < left) {
      n = nodes_[n].left;
    } else if (rank == left) {
      return n;
    } else {
      rank -= left + 1;
      n = nodes_[n].right;
    }
  }
  return -1;  // Unreachable for in-range ranks.
}

}  // namespace crf
