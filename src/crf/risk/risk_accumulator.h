// Unified per-machine violation/savings accounting (DESIGN.md §9a).
//
// Every engine that scores predictions against the clairvoyant oracle — the
// batch simulator, the fused sweep engine, the streaming serve tier, and the
// cluster A/B analysis — used to hand-roll the same six accumulators. They
// now all feed one RiskAccumulator per machine. Record() performs the exact
// accounting arithmetic the engines always did, in the same order, so every
// mean-level metric stays bit-identical to the pre-refactor paths (the
// differential tests pin this); on top it tracks the tail metrics that mean
// rates hide (TARE, arXiv:2607.04935):
//
//  * violation-severity quantiles (p99/p999 of (PO - P)/PO over violating
//    intervals) via the P² streaming estimator;
//  * time-in-violation streaks: the length of each maximal run of
//    consecutive violating intervals, with max and p99/p999 over completed
//    runs — a machine that violates for 3 hours straight pages an SRE even
//    when its mean rate is tiny;
//  * the time-weighted violation fraction: violating intervals among
//    occupied intervals (violations while the machine is empty cannot hurt
//    a resident task);
//  * savings-at-risk: the p5 low quantile of the per-interval savings ratio
//    over occupied intervals — the savings the operator can count on 95% of
//    the time, not just on average.
//
// Zero steady-state allocations: all tail state is P² marker arrays and
// scalars, so Record() never touches the heap — it is safe on the serve
// ingest hot path.

#ifndef CRF_RISK_RISK_ACCUMULATOR_H_
#define CRF_RISK_RISK_ACCUMULATOR_H_

#include <cstdint>

#include "crf/stats/p2_quantile.h"

namespace crf {

class ByteReader;
class ByteWriter;

// Relative tolerance when comparing a prediction against the oracle: both
// are sums of the same float samples accumulated along different paths, so
// bit-identical equality cannot be expected.
inline constexpr double kViolationRelTolerance = 1e-9;

// Whether `prediction` undershoots the oracle peak (paper Section 5.1.3).
// Shared by every consumer of RiskAccumulator so all engines count the exact
// same violations.
inline bool IsPeakViolation(double prediction, double oracle) {
  return prediction < oracle * (1.0 - kViolationRelTolerance) - 1e-12;
}

// Tail summary derived from an accumulator (one divisor-free snapshot; mean
// -level metrics keep their engine-specific divisors and live with the
// engines).
struct RiskTailSummary {
  double severity_p99 = 0.0;
  double severity_p999 = 0.0;
  // Longest violation streak, counting a still-open streak.
  int64_t max_violation_streak = 0;
  // Quantiles over completed streaks (an open streak contributes only to
  // max_violation_streak, keeping the getters const and checkpoint-exact).
  double streak_p99 = 0.0;
  double streak_p999 = 0.0;
  // Violating ∩ occupied intervals / occupied intervals (0 when never
  // occupied).
  double violation_time_fraction = 0.0;
  // p5 of the per-interval savings ratio over occupied intervals.
  double savings_at_risk = 0.0;
};

class RiskAccumulator {
 public:
  RiskAccumulator();

  // Scores one interval. Mean-level arithmetic is kept in the exact order
  // the four engines used (violation check → severity; occupied → savings;
  // then the prediction/limit running sums), so their reported means stay
  // bit-identical.
  void Record(double prediction, double oracle, double limit_sum, bool occupied);

  void Reset();

  // --- Mean-level accumulators (the seed's six fields). ---
  int64_t violations() const { return violations_; }
  int64_t occupied_intervals() const { return occupied_intervals_; }
  // Violating intervals that were also occupied (numerator of the
  // time-weighted violation fraction; exposed so cell-level aggregation can
  // sum numerators and denominators across machines).
  int64_t occupied_violations() const { return occupied_violations_; }
  double severity_sum() const { return severity_sum_; }
  double savings_sum() const { return savings_sum_; }
  double prediction_sum() const { return prediction_sum_; }
  double limit_sum_total() const { return limit_sum_total_; }
  // Intervals recorded so far (the engines also know this independently).
  int64_t intervals() const { return intervals_; }

  // --- Tail metrics. ---
  RiskTailSummary TailSummary() const;
  int64_t max_violation_streak() const;
  int64_t completed_streaks() const { return streak_count_; }

  // Checkpoint support (crf/serve): complete state, including the P² marker
  // arrays and the open streak, so a restored accumulator continues
  // bit-identically. LoadState validates counters and finiteness and returns
  // false (latching the reader) on malformed payloads.
  void SaveState(ByteWriter& out) const;
  bool LoadState(ByteReader& in);

 private:
  int64_t intervals_ = 0;
  int64_t violations_ = 0;
  int64_t occupied_intervals_ = 0;
  int64_t occupied_violations_ = 0;
  double severity_sum_ = 0.0;
  double savings_sum_ = 0.0;
  double prediction_sum_ = 0.0;
  double limit_sum_total_ = 0.0;

  int64_t current_streak_ = 0;
  int64_t max_streak_ = 0;
  int64_t streak_count_ = 0;
  int64_t streak_len_sum_ = 0;

  P2Quantile severity_p99_;
  P2Quantile severity_p999_;
  P2Quantile streak_p99_;
  P2Quantile streak_p999_;
  P2Quantile savings_p05_;
};

}  // namespace crf

#endif  // CRF_RISK_RISK_ACCUMULATOR_H_
