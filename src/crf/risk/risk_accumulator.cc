#include "crf/risk/risk_accumulator.h"

#include <algorithm>
#include <cmath>

#include "crf/util/byte_io.h"

namespace crf {

RiskAccumulator::RiskAccumulator()
    : severity_p99_(0.99),
      severity_p999_(0.999),
      streak_p99_(0.99),
      streak_p999_(0.999),
      savings_p05_(0.05) {}

void RiskAccumulator::Record(double prediction, double oracle, double limit_sum,
                             bool occupied) {
  if (IsPeakViolation(prediction, oracle)) {
    ++violations_;
    const double severity = (oracle - prediction) / oracle;
    severity_sum_ += severity;
    severity_p99_.Add(severity);
    severity_p999_.Add(severity);
    ++current_streak_;
    if (occupied) {
      ++occupied_violations_;
    }
  } else if (current_streak_ > 0) {
    // A streak just closed: fold its length into the tail estimators.
    max_streak_ = std::max(max_streak_, current_streak_);
    ++streak_count_;
    streak_len_sum_ += current_streak_;
    streak_p99_.Add(static_cast<double>(current_streak_));
    streak_p999_.Add(static_cast<double>(current_streak_));
    current_streak_ = 0;
  }
  if (occupied) {
    ++occupied_intervals_;
    const double savings = (limit_sum - prediction) / limit_sum;
    savings_sum_ += savings;
    savings_p05_.Add(savings);
  }
  prediction_sum_ += prediction;
  limit_sum_total_ += limit_sum;
  ++intervals_;
}

void RiskAccumulator::Reset() {
  intervals_ = 0;
  violations_ = 0;
  occupied_intervals_ = 0;
  occupied_violations_ = 0;
  severity_sum_ = 0.0;
  savings_sum_ = 0.0;
  prediction_sum_ = 0.0;
  limit_sum_total_ = 0.0;
  current_streak_ = 0;
  max_streak_ = 0;
  streak_count_ = 0;
  streak_len_sum_ = 0;
  severity_p99_.Reset();
  severity_p999_.Reset();
  streak_p99_.Reset();
  streak_p999_.Reset();
  savings_p05_.Reset();
}

int64_t RiskAccumulator::max_violation_streak() const {
  return std::max(max_streak_, current_streak_);
}

RiskTailSummary RiskAccumulator::TailSummary() const {
  RiskTailSummary tail;
  tail.severity_p99 = severity_p99_.Value();
  tail.severity_p999 = severity_p999_.Value();
  tail.max_violation_streak = max_violation_streak();
  tail.streak_p99 = streak_p99_.Value();
  tail.streak_p999 = streak_p999_.Value();
  tail.violation_time_fraction =
      occupied_intervals_ > 0
          ? static_cast<double>(occupied_violations_) / static_cast<double>(occupied_intervals_)
          : 0.0;
  tail.savings_at_risk = savings_p05_.Value();
  return tail;
}

void RiskAccumulator::SaveState(ByteWriter& out) const {
  out.Write<int64_t>(intervals_);
  out.Write<int64_t>(violations_);
  out.Write<int64_t>(occupied_intervals_);
  out.Write<int64_t>(occupied_violations_);
  out.Write<double>(severity_sum_);
  out.Write<double>(savings_sum_);
  out.Write<double>(prediction_sum_);
  out.Write<double>(limit_sum_total_);
  out.Write<int64_t>(current_streak_);
  out.Write<int64_t>(max_streak_);
  out.Write<int64_t>(streak_count_);
  out.Write<int64_t>(streak_len_sum_);
  severity_p99_.SaveState(out);
  severity_p999_.SaveState(out);
  streak_p99_.SaveState(out);
  streak_p999_.SaveState(out);
  savings_p05_.SaveState(out);
}

bool RiskAccumulator::LoadState(ByteReader& in) {
  RiskAccumulator loaded;
  loaded.intervals_ = in.Read<int64_t>();
  loaded.violations_ = in.Read<int64_t>();
  loaded.occupied_intervals_ = in.Read<int64_t>();
  loaded.occupied_violations_ = in.Read<int64_t>();
  loaded.severity_sum_ = in.Read<double>();
  loaded.savings_sum_ = in.Read<double>();
  loaded.prediction_sum_ = in.Read<double>();
  loaded.limit_sum_total_ = in.Read<double>();
  loaded.current_streak_ = in.Read<int64_t>();
  loaded.max_streak_ = in.Read<int64_t>();
  loaded.streak_count_ = in.Read<int64_t>();
  loaded.streak_len_sum_ = in.Read<int64_t>();
  const bool counters_ok =
      in.ok() && loaded.intervals_ >= 0 && loaded.violations_ >= 0 &&
      loaded.occupied_intervals_ >= 0 && loaded.occupied_violations_ >= 0 &&
      loaded.current_streak_ >= 0 && loaded.max_streak_ >= 0 && loaded.streak_count_ >= 0 &&
      loaded.streak_len_sum_ >= 0 && loaded.violations_ <= loaded.intervals_ &&
      loaded.occupied_intervals_ <= loaded.intervals_ &&
      loaded.occupied_violations_ <= loaded.occupied_intervals_ &&
      loaded.occupied_violations_ <= loaded.violations_ &&
      loaded.current_streak_ <= loaded.violations_ &&
      std::isfinite(loaded.severity_sum_) && std::isfinite(loaded.savings_sum_) &&
      std::isfinite(loaded.prediction_sum_) && std::isfinite(loaded.limit_sum_total_);
  if (!counters_ok) {
    in.Fail();
    return false;
  }
  if (!loaded.severity_p99_.LoadState(in) || !loaded.severity_p999_.LoadState(in) ||
      !loaded.streak_p99_.LoadState(in) || !loaded.streak_p999_.LoadState(in) ||
      !loaded.savings_p05_.LoadState(in)) {
    return false;
  }
  *this = loaded;
  return true;
}

}  // namespace crf
