#include "crf/sim/sim_workspace.h"

namespace crf {

PeakPredictor* SimWorkspace::GetPredictor(const PredictorSpec& spec) {
  if (predictor_ != nullptr && predictor_spec_ == spec) {
    predictor_->Reset();
  } else {
    predictor_ = CreatePredictor(spec);
    predictor_spec_ = spec;
  }
  return predictor_.get();
}

SweepBank& SimWorkspace::GetSweepBank(const SweepPlan& plan) {
  if (sweep_plan_id_ != plan.id()) {
    sweep_bank_.Attach(&plan);
    sweep_plan_id_ = plan.id();
  }
  return sweep_bank_;
}

SimWorkspace& SimWorkspace::ThreadLocal() {
  static thread_local SimWorkspace workspace;
  return workspace;
}

}  // namespace crf
