#include "crf/sim/simulator.h"

#include <algorithm>
#include <span>
#include <vector>

#include "crf/sim/sim_workspace.h"
#include "crf/trace/machine_events.h"
#include "crf/util/check.h"
#include "crf/util/thread_pool.h"

namespace crf {
namespace {

// The column view and event ordering live in crf/trace/machine_events.h,
// shared with the streaming replayer (crf/serve): both engines must derive
// the same event permutation for their floating-point accumulation over the
// resident set to be bit-identical.
using TaskColumns = MachineTaskColumns;

// The oracle depends only on (cell, machine, horizon, kind): take the shared
// memoized series when a cache is supplied, otherwise compute into the
// workspace buffers. `cached` keeps the memo alive for the caller's pass.
std::span<const double> FetchOracle(const CellTrace& cell, int machine_index,
                                    const SimOptions& options, SimWorkspace& ws,
                                    OracleCache::Series& cached) {
  const OracleKind kind =
      options.use_total_usage_oracle ? OracleKind::kTotalUsage : OracleKind::kPeak;
  if (options.oracle_cache != nullptr) {
    cached = options.oracle_cache->GetOrCompute(cell, machine_index, options.horizon, kind);
    return *cached;
  }
  if (options.use_total_usage_oracle) {
    ComputeTotalUsageOracleInto(cell, machine_index, options.horizon, ws.oracle_scratch,
                                ws.oracle);
  } else {
    ComputePeakOracleInto(cell, machine_index, options.horizon, ws.oracle_scratch, ws.oracle);
  }
  return ws.oracle;
}

// Event lists: arrivals by start, departures by departure time. The resident
// set and its limit sum then evolve incrementally — per-interval work is
// only the sample fill, with no rescans on event-free intervals.
void BuildEventLists(const TaskColumns& cols, std::span<const int32_t> task_indices,
                     SimWorkspace& ws) {
  BuildMachineEventLists(cols, task_indices, ws.arrivals, ws.departures);
}

}  // namespace

MachineMetrics SimulateMachine(const CellTrace& cell, int machine_index,
                               const PredictorSpec& spec, const SimOptions& options,
                               std::vector<double>* cell_limit,
                               std::vector<double>* cell_prediction) {
  const Interval num_intervals = cell.num_intervals;
  SimWorkspace& ws = SimWorkspace::ThreadLocal();

  OracleCache::Series cached;
  const std::span<const double> oracle = FetchOracle(cell, machine_index, options, ws, cached);

  PeakPredictor* predictor = ws.GetPredictor(spec);

  const TaskColumns cols(cell);
  BuildEventLists(cols, cell.machine_tasks(machine_index), ws);

  std::vector<int32_t>& active = ws.active;
  std::vector<TaskSample>& samples = ws.samples;
  active.clear();
  samples.clear();

  size_t next_arrival = 0;
  size_t next_departure = 0;
  double limit_sum = 0.0;
  RiskAccumulator& risk = ws.risk;
  risk.Reset();

  for (Interval tau = 0; tau < num_intervals; ++tau) {
    // Retire departed tasks (event-driven: the compaction scan runs only on
    // intervals where a departure actually occurs).
    if (next_departure < ws.departures.size() &&
        cols.DepartureTime(ws.departures[next_departure]) <= tau) {
      while (next_departure < ws.departures.size() &&
             cols.DepartureTime(ws.departures[next_departure]) <= tau) {
        limit_sum -= cols.limit[ws.departures[next_departure]];
        ++next_departure;
      }
      active.erase(std::remove_if(active.begin(), active.end(),
                                  [&cols, tau](int32_t i) {
                                    return cols.DepartureTime(i) <= tau;
                                  }),
                   active.end());
    }
    // Admit arrivals.
    while (next_arrival < ws.arrivals.size() &&
           cols.start[ws.arrivals[next_arrival]] <= tau) {
      const int32_t index = ws.arrivals[next_arrival++];
      active.push_back(index);
      limit_sum += cols.limit[index];
    }
    if (active.empty()) {
      limit_sum = 0.0;  // Kill incremental drift; the true sum is exactly 0.
    }

    samples.clear();
    for (const int32_t task_index : active) {
      samples.push_back(
          {cols.id[task_index], cols.UsageAt(task_index, tau), cols.limit[task_index]});
    }

    predictor->Observe(tau, samples);
    const double prediction = predictor->PredictPeak();
    const double oracle_value = oracle[tau];

    risk.Record(prediction, oracle_value, limit_sum, !active.empty());
    if (cell_limit != nullptr) {
      (*cell_limit)[tau] += limit_sum;
    }
    if (cell_prediction != nullptr) {
      (*cell_prediction)[tau] += prediction;
    }
  }

  MachineMetrics metrics;
  FinalizeMachineMetrics(risk, machine_index, num_intervals, metrics);
  return metrics;
}

SimResult SimulateCell(const CellTrace& cell, const PredictorSpec& spec,
                       const SimOptions& options) {
  CRF_CHECK_GT(cell.num_intervals, 0);
  const int num_machines = cell.num_machines();
  const Interval num_intervals = cell.num_intervals;

  SimResult result;
  result.cell_name = cell.name;
  result.predictor_name = spec.Name();
  result.machines.resize(num_machines);

  // Per-thread partial series, reduced once after the join — no mutex and
  // no O(T) merge per machine.
  ThreadPool& pool = ThreadPool::Default();
  const int slots = options.parallel ? pool.num_threads() : 1;
  std::vector<std::vector<double>> limit_slots(slots);
  std::vector<std::vector<double>> prediction_slots(slots);

  auto run_machine = [&](int slot, int m) {
    std::vector<double>& limit = limit_slots[slot];
    std::vector<double>& prediction = prediction_slots[slot];
    if (limit.empty()) {
      limit.assign(num_intervals, 0.0);
      prediction.assign(num_intervals, 0.0);
    }
    result.machines[m] = SimulateMachine(cell, m, spec, options, &limit, &prediction);
  };

  if (options.parallel) {
    pool.ParallelForIndexed(num_machines, run_machine);
  } else {
    for (int m = 0; m < num_machines; ++m) {
      run_machine(0, m);
    }
  }

  std::vector<double> cell_limit(num_intervals, 0.0);
  std::vector<double> cell_prediction(num_intervals, 0.0);
  for (int slot = 0; slot < slots; ++slot) {
    if (limit_slots[slot].empty()) {
      continue;
    }
    for (Interval t = 0; t < num_intervals; ++t) {
      cell_limit[t] += limit_slots[slot][t];
      cell_prediction[t] += prediction_slots[slot][t];
    }
  }

  result.cell_savings_series = CellSavingsSeries(cell_limit, cell_prediction);
  return result;
}

namespace {

// One machine, whole grid: the multi-spec twin of SimulateMachine. Walks the
// trace once; the SweepBank answers every spec per interval. Writes
// results[s].machines[machine_index] for each spec and accumulates the
// machine's per-interval limit sum (shared — it is spec-independent) and
// per-spec predictions into the caller's series.
void SimulateMachineMulti(const CellTrace& cell, int machine_index, const SweepPlan& plan,
                          const SimOptions& options, std::span<SimResult> results,
                          std::vector<double>* cell_limit,
                          std::vector<std::vector<double>>* cell_predictions) {
  const Interval num_intervals = cell.num_intervals;
  const int num_specs = plan.num_specs();
  SimWorkspace& ws = SimWorkspace::ThreadLocal();

  OracleCache::Series cached;
  const std::span<const double> oracle = FetchOracle(cell, machine_index, options, ws, cached);

  SweepBank& bank = ws.GetSweepBank(plan);
  bank.BeginMachine();

  const TaskColumns cols(cell);
  BuildEventLists(cols, cell.machine_tasks(machine_index), ws);

  std::vector<int32_t>& active = ws.active;
  std::vector<TaskSample>& samples = ws.samples;
  active.clear();
  samples.clear();

  if (ws.multi_risk.size() < static_cast<size_t>(num_specs)) {
    ws.multi_risk.resize(num_specs);
  }
  for (int s = 0; s < num_specs; ++s) {
    ws.multi_risk[s].Reset();
  }

  size_t next_arrival = 0;
  size_t next_departure = 0;
  double limit_sum = 0.0;

  for (Interval tau = 0; tau < num_intervals; ++tau) {
    // Retire departed tasks (event-driven: the compaction scan runs only on
    // intervals where a departure actually occurs).
    if (next_departure < ws.departures.size() &&
        cols.DepartureTime(ws.departures[next_departure]) <= tau) {
      while (next_departure < ws.departures.size() &&
             cols.DepartureTime(ws.departures[next_departure]) <= tau) {
        limit_sum -= cols.limit[ws.departures[next_departure]];
        ++next_departure;
      }
      active.erase(std::remove_if(active.begin(), active.end(),
                                  [&cols, tau](int32_t i) {
                                    return cols.DepartureTime(i) <= tau;
                                  }),
                   active.end());
    }
    // Admit arrivals.
    while (next_arrival < ws.arrivals.size() &&
           cols.start[ws.arrivals[next_arrival]] <= tau) {
      const int32_t index = ws.arrivals[next_arrival++];
      active.push_back(index);
      limit_sum += cols.limit[index];
    }
    if (active.empty()) {
      limit_sum = 0.0;  // Kill incremental drift; the true sum is exactly 0.
    }

    samples.clear();
    for (const int32_t task_index : active) {
      samples.push_back(
          {cols.id[task_index], cols.UsageAt(task_index, tau), cols.limit[task_index]});
    }

    bank.Observe(tau, samples);
    const std::span<const double> predictions = bank.Predictions();
    const double oracle_value = oracle[tau];
    const bool occupied = !active.empty();
    if (cell_limit != nullptr) {
      (*cell_limit)[tau] += limit_sum;
    }

    for (int s = 0; s < num_specs; ++s) {
      const double prediction = predictions[s];
      ws.multi_risk[s].Record(prediction, oracle_value, limit_sum, occupied);
      if (cell_predictions != nullptr) {
        (*cell_predictions)[s][tau] += prediction;
      }
    }
  }

  for (int s = 0; s < num_specs; ++s) {
    FinalizeMachineMetrics(ws.multi_risk[s], machine_index, num_intervals,
                           results[s].machines[machine_index]);
  }
}

}  // namespace

std::vector<SimResult> SimulateCellMulti(const CellTrace& cell,
                                         std::span<const PredictorSpec> specs,
                                         const SimOptions& options) {
  CRF_CHECK_GT(cell.num_intervals, 0);
  if (specs.empty()) {
    return {};
  }
  const SweepPlan plan(specs);
  const int num_specs = plan.num_specs();
  const int num_machines = cell.num_machines();
  const Interval num_intervals = cell.num_intervals;

  std::vector<SimResult> results(num_specs);
  for (int s = 0; s < num_specs; ++s) {
    results[s].cell_name = cell.name;
    results[s].predictor_name = specs[s].Name();
    results[s].machines.resize(num_machines);
  }

  // Per-thread partial series, reduced once after the join. The limit series
  // is spec-independent, so one per slot; predictions get one per (slot,
  // spec).
  ThreadPool& pool = ThreadPool::Default();
  const int slots = options.parallel ? pool.num_threads() : 1;
  std::vector<std::vector<double>> limit_slots(slots);
  std::vector<std::vector<std::vector<double>>> prediction_slots(slots);

  const std::span<SimResult> results_span(results);
  auto run_machine = [&](int slot, int m) {
    std::vector<double>& limit = limit_slots[slot];
    std::vector<std::vector<double>>& predictions = prediction_slots[slot];
    if (limit.empty()) {
      limit.assign(num_intervals, 0.0);
      predictions.assign(num_specs, std::vector<double>(num_intervals, 0.0));
    }
    SimulateMachineMulti(cell, m, plan, options, results_span, &limit, &predictions);
  };

  if (options.parallel) {
    pool.ParallelForIndexed(num_machines, run_machine);
  } else {
    for (int m = 0; m < num_machines; ++m) {
      run_machine(0, m);
    }
  }

  std::vector<double> cell_limit(num_intervals, 0.0);
  std::vector<double> cell_prediction(num_intervals, 0.0);
  for (int s = 0; s < num_specs; ++s) {
    std::fill(cell_prediction.begin(), cell_prediction.end(), 0.0);
    if (s == 0) {
      for (int slot = 0; slot < slots; ++slot) {
        if (limit_slots[slot].empty()) {
          continue;
        }
        for (Interval t = 0; t < num_intervals; ++t) {
          cell_limit[t] += limit_slots[slot][t];
        }
      }
    }
    for (int slot = 0; slot < slots; ++slot) {
      if (prediction_slots[slot].empty()) {
        continue;
      }
      for (Interval t = 0; t < num_intervals; ++t) {
        cell_prediction[t] += prediction_slots[slot][s][t];
      }
    }
    results[s].cell_savings_series = CellSavingsSeries(cell_limit, cell_prediction);
  }
  return results;
}

}  // namespace crf
