#include "crf/sim/simulator.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "crf/core/oracle.h"
#include "crf/util/check.h"
#include "crf/util/thread_pool.h"

namespace crf {
namespace {

// Relative tolerance when comparing a prediction against the oracle: both
// are sums of the same float samples accumulated along different paths, so
// bit-identical equality cannot be expected.
constexpr double kRelTolerance = 1e-9;

bool IsViolation(double prediction, double oracle) {
  return prediction < oracle * (1.0 - kRelTolerance) - 1e-12;
}

}  // namespace

MachineMetrics SimulateMachine(const CellTrace& cell, int machine_index,
                               const PredictorSpec& spec, const SimOptions& options,
                               std::vector<double>* cell_limit,
                               std::vector<double>* cell_prediction) {
  const Interval num_intervals = cell.num_intervals;
  const std::vector<double> oracle =
      options.use_total_usage_oracle
          ? ComputeTotalUsageOracle(cell, machine_index, options.horizon)
          : ComputePeakOracle(cell, machine_index, options.horizon);

  auto predictor = CreatePredictor(spec);

  // Tasks in arrival order for the resident-set sweep.
  std::vector<int32_t> order = cell.machines[machine_index].task_indices;
  std::sort(order.begin(), order.end(), [&cell](int32_t a, int32_t b) {
    return cell.tasks[a].start < cell.tasks[b].start;
  });

  MachineMetrics metrics;
  metrics.machine_index = machine_index;
  metrics.intervals = num_intervals;

  std::vector<int32_t> active;  // Indices into cell.tasks.
  std::vector<TaskSample> samples;
  size_t next = 0;
  double severity_sum = 0.0;
  double savings_sum = 0.0;
  double prediction_sum = 0.0;
  double limit_sum_total = 0.0;

  for (Interval tau = 0; tau < num_intervals; ++tau) {
    // Retire departed tasks, admit arrivals.
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&cell, tau](int32_t i) { return cell.tasks[i].end() <= tau; }),
                 active.end());
    while (next < order.size() && cell.tasks[order[next]].start <= tau) {
      active.push_back(order[next++]);
    }

    samples.clear();
    double limit_sum = 0.0;
    for (const int32_t task_index : active) {
      const TaskTrace& task = cell.tasks[task_index];
      samples.push_back({task.task_id, task.UsageAt(tau), task.limit});
      limit_sum += task.limit;
    }

    predictor->Observe(tau, samples);
    const double prediction = predictor->PredictPeak();
    const double oracle_value = oracle[tau];

    if (IsViolation(prediction, oracle_value)) {
      ++metrics.violations;
      severity_sum += (oracle_value - prediction) / oracle_value;
    }
    if (!active.empty()) {
      ++metrics.occupied_intervals;
      savings_sum += (limit_sum - prediction) / limit_sum;
    }
    prediction_sum += prediction;
    limit_sum_total += limit_sum;
    if (cell_limit != nullptr) {
      (*cell_limit)[tau] += limit_sum;
    }
    if (cell_prediction != nullptr) {
      (*cell_prediction)[tau] += prediction;
    }
  }

  if (num_intervals > 0) {
    metrics.mean_violation_severity = severity_sum / num_intervals;
    metrics.mean_prediction = prediction_sum / num_intervals;
    metrics.mean_limit = limit_sum_total / num_intervals;
  }
  if (metrics.occupied_intervals > 0) {
    metrics.savings_ratio = savings_sum / static_cast<double>(metrics.occupied_intervals);
  }
  return metrics;
}

SimResult SimulateCell(const CellTrace& cell, const PredictorSpec& spec,
                       const SimOptions& options) {
  CRF_CHECK_GT(cell.num_intervals, 0);
  const int num_machines = static_cast<int>(cell.machines.size());

  SimResult result;
  result.cell_name = cell.name;
  result.predictor_name = spec.Name();
  result.machines.resize(num_machines);

  std::vector<double> cell_limit(cell.num_intervals, 0.0);
  std::vector<double> cell_prediction(cell.num_intervals, 0.0);
  std::mutex cell_mutex;

  auto run_machine = [&](int m) {
    std::vector<double> local_limit(cell.num_intervals, 0.0);
    std::vector<double> local_prediction(cell.num_intervals, 0.0);
    result.machines[m] =
        SimulateMachine(cell, m, spec, options, &local_limit, &local_prediction);
    std::lock_guard<std::mutex> lock(cell_mutex);
    for (Interval t = 0; t < cell.num_intervals; ++t) {
      cell_limit[t] += local_limit[t];
      cell_prediction[t] += local_prediction[t];
    }
  };

  if (options.parallel) {
    ThreadPool::Default().ParallelFor(num_machines, run_machine);
  } else {
    for (int m = 0; m < num_machines; ++m) {
      run_machine(m);
    }
  }

  result.cell_savings_series.reserve(cell.num_intervals);
  for (Interval t = 0; t < cell.num_intervals; ++t) {
    if (cell_limit[t] > 0.0) {
      result.cell_savings_series.push_back((cell_limit[t] - cell_prediction[t]) /
                                           cell_limit[t]);
    }
  }
  return result;
}

}  // namespace crf
