// Evaluation metrics (paper Section 5.1.3).
//
//  * violation rate  - fraction of time instants where the prediction is
//    below the peak oracle, per machine;
//  * violation severity - relative shortfall max(0, (PO - P)/PO), averaged
//    per machine over the simulated period;
//  * savings ratio  - (L - P)/L, the relative extra capacity the predictor
//    frees versus no overcommitment, per machine (averaged over intervals
//    with resident tasks) and per cell (a series over intervals).

#ifndef CRF_SIM_METRICS_H_
#define CRF_SIM_METRICS_H_

#include <span>
#include <string>
#include <vector>

#include "crf/risk/risk_accumulator.h"
#include "crf/stats/ecdf.h"

namespace crf {

struct MachineMetrics {
  int machine_index = -1;
  // Intervals evaluated (the whole simulated period).
  int64_t intervals = 0;
  // Intervals with at least one resident task.
  int64_t occupied_intervals = 0;
  int64_t violations = 0;
  // Mean over all intervals of max(0, (PO - P)/PO)  (0 when no violation).
  double mean_violation_severity = 0.0;
  // Mean over occupied intervals of (L - P)/L.
  double savings_ratio = 0.0;
  // Mean prediction and mean limit sum (diagnostics).
  double mean_prediction = 0.0;
  double mean_limit = 0.0;
  // Tail metrics (crf/risk): severity quantiles, violation streaks,
  // time-weighted violation fraction, savings-at-risk.
  RiskTailSummary tail;

  double violation_rate() const {
    return intervals == 0 ? 0.0 : static_cast<double>(violations) / intervals;
  }
};

// Fills the mean-level fields of `metrics` from an accumulator using the
// engines' shared divisor arithmetic (severity/prediction/limit means over
// all intervals, savings over occupied intervals) plus the tail summary.
// Shared by the batch simulator, the sweep engine, and the streaming
// replayer so all three finalize identically.
void FinalizeMachineMetrics(const RiskAccumulator& risk, int machine_index,
                            int64_t num_intervals, MachineMetrics& metrics);

struct SimResult {
  std::string cell_name;
  std::string predictor_name;
  std::vector<MachineMetrics> machines;
  // Per-interval cell-level (sum L - sum P) / sum L.
  std::vector<double> cell_savings_series;

  // CDFs over machines.
  Ecdf ViolationRateCdf() const;
  Ecdf ViolationSeverityCdf() const;
  Ecdf MachineSavingsCdf() const;
  // Tail CDFs over machines (crf/risk).
  Ecdf SeverityP999Cdf() const;
  Ecdf MaxStreakCdf() const;
  // CDF over intervals of the cell-level savings series.
  Ecdf CellSavingsCdf() const;

  // Time-average cell-level savings: the "1 - predicted peak / total limit"
  // bar of Figs 8(b)/9(b)/11(c).
  double MeanCellSavings() const;
  // Mean per-machine violation rate.
  double MeanViolationRate() const;
  // Tail aggregates over machines (crf/risk): the worst p999 severity and
  // the longest violation streak anywhere in the cell.
  double WorstSeverityP999() const;
  int64_t MaxViolationStreak() const;
};

// IsPeakViolation / kViolationRelTolerance moved to crf/risk (shared by all
// four scoring engines); re-exported here via the include above.

// Builds the per-interval cell-level savings series (sum L - sum P) / sum L
// from aggregated per-interval limit and prediction series, skipping
// intervals where the cell holds no tasks (zero limit). Shared by
// SimulateCell and SimulateCellMulti so both aggregate identically.
std::vector<double> CellSavingsSeries(std::span<const double> cell_limit,
                                      std::span<const double> cell_prediction);

}  // namespace crf

#endif  // CRF_SIM_METRICS_H_
