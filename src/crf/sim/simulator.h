// The trace-driven overcommit simulator (paper Section 5.1.1, Fig 5).
//
// Machines are simulated independently. For each machine and each 5-minute
// instant tau, the simulated predictor sees only the historic usage of the
// tasks resident at tau (U_i[t], t <= tau) and publishes a predicted peak;
// the simulator computes the clairvoyant peak oracle from the future usage
// (U_i[t], t >= tau) and compares. Scheduling decisions are NOT simulated:
// placements come fixed from the trace, exactly as in the paper's simulator.
//
// The engine is a fused, allocation-free pass per machine: arrival and
// departure event lists are derived once, the resident set and its limit sum
// are maintained incrementally (work happens only at events, not every
// interval), and all scratch lives in a thread-local SimWorkspace. Cell
// aggregation uses per-thread partial series reduced once after the parallel
// join. The peak oracle — which depends only on (cell, machine, horizon),
// never on the predictor — can be memoized across sweep points through
// SimOptions::oracle_cache.

#ifndef CRF_SIM_SIMULATOR_H_
#define CRF_SIM_SIMULATOR_H_

#include <span>
#include <vector>

#include "crf/core/oracle.h"
#include "crf/core/predictor_factory.h"
#include "crf/sim/metrics.h"
#include "crf/trace/trace.h"
#include "crf/util/time_grid.h"

namespace crf {

struct SimOptions {
  // Oracle forecast horizon; Section 5.2 settles on 24 hours.
  Interval horizon = kIntervalsPerDay;
  // Ablation: use the unfiltered total-usage oracle instead of the exact
  // arrival-filtered oracle.
  bool use_total_usage_oracle = false;
  // Shard machines across the default thread pool.
  bool parallel = true;
  // Optional shared oracle memo. Sweeps running many predictor specs over
  // the same cell should pass one cache for all SimulateCell calls: the
  // oracle is predictor-independent, so every sweep point after the first
  // hits the cache. The cache (and the cells it has seen) must outlive the
  // simulation; see OracleCache for the invalidation contract.
  OracleCache* oracle_cache = nullptr;
};

// Runs one predictor configuration over every machine of `cell`. A fresh
// predictor instance is created (or pool-reused and Reset) per machine —
// per-machine state only.
SimResult SimulateCell(const CellTrace& cell, const PredictorSpec& spec,
                       const SimOptions& options = {});

// Runs a whole predictor grid over `cell` in ONE trace pass per machine,
// returning one SimResult per spec (input order), each matching what the
// corresponding SimulateCell call would produce. A SweepBank (see
// crf/core/sweep_bank.h) shares per-task percentile windows, aggregate
// moments, and the per-interval limit sum across all sweep points, so the
// per-machine cost is one trace walk plus one cheap query per spec instead
// of |specs| independent walks with |specs| copies of the window state.
// This is the engine behind the paper's parameter sweeps (Figs 8-10).
std::vector<SimResult> SimulateCellMulti(const CellTrace& cell,
                                         std::span<const PredictorSpec> specs,
                                         const SimOptions& options = {});

// Simulates a single machine; exposed for tests and custom drivers.
// `cell_limit` / `cell_prediction`, when non-null, accumulate the machine's
// per-interval limit sum and prediction (caller provides zeroed series).
MachineMetrics SimulateMachine(const CellTrace& cell, int machine_index,
                               const PredictorSpec& spec, const SimOptions& options,
                               std::vector<double>* cell_limit,
                               std::vector<double>* cell_prediction);

}  // namespace crf

#endif  // CRF_SIM_SIMULATOR_H_
