#include "crf/sim/metrics.h"

namespace crf {

Ecdf SimResult::ViolationRateCdf() const {
  Ecdf cdf;
  for (const MachineMetrics& m : machines) {
    cdf.Add(m.violation_rate());
  }
  return cdf;
}

Ecdf SimResult::ViolationSeverityCdf() const {
  Ecdf cdf;
  for (const MachineMetrics& m : machines) {
    cdf.Add(m.mean_violation_severity);
  }
  return cdf;
}

Ecdf SimResult::MachineSavingsCdf() const {
  Ecdf cdf;
  for (const MachineMetrics& m : machines) {
    cdf.Add(m.savings_ratio);
  }
  return cdf;
}

Ecdf SimResult::CellSavingsCdf() const { return Ecdf(cell_savings_series); }

double SimResult::MeanCellSavings() const {
  if (cell_savings_series.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double s : cell_savings_series) {
    sum += s;
  }
  return sum / static_cast<double>(cell_savings_series.size());
}

double SimResult::MeanViolationRate() const {
  if (machines.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const MachineMetrics& m : machines) {
    sum += m.violation_rate();
  }
  return sum / static_cast<double>(machines.size());
}

}  // namespace crf
