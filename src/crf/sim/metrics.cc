#include "crf/sim/metrics.h"

namespace crf {

Ecdf SimResult::ViolationRateCdf() const {
  Ecdf cdf;
  for (const MachineMetrics& m : machines) {
    cdf.Add(m.violation_rate());
  }
  return cdf;
}

Ecdf SimResult::ViolationSeverityCdf() const {
  Ecdf cdf;
  for (const MachineMetrics& m : machines) {
    cdf.Add(m.mean_violation_severity);
  }
  return cdf;
}

Ecdf SimResult::MachineSavingsCdf() const {
  Ecdf cdf;
  for (const MachineMetrics& m : machines) {
    cdf.Add(m.savings_ratio);
  }
  return cdf;
}

Ecdf SimResult::CellSavingsCdf() const { return Ecdf(cell_savings_series); }

double SimResult::MeanCellSavings() const {
  if (cell_savings_series.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double s : cell_savings_series) {
    sum += s;
  }
  return sum / static_cast<double>(cell_savings_series.size());
}

std::vector<double> CellSavingsSeries(std::span<const double> cell_limit,
                                      std::span<const double> cell_prediction) {
  std::vector<double> series;
  series.reserve(cell_limit.size());
  for (size_t t = 0; t < cell_limit.size(); ++t) {
    if (cell_limit[t] > 0.0) {
      series.push_back((cell_limit[t] - cell_prediction[t]) / cell_limit[t]);
    }
  }
  return series;
}

double SimResult::MeanViolationRate() const {
  if (machines.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const MachineMetrics& m : machines) {
    sum += m.violation_rate();
  }
  return sum / static_cast<double>(machines.size());
}

}  // namespace crf
