#include "crf/sim/metrics.h"

#include <algorithm>

namespace crf {

Ecdf SimResult::ViolationRateCdf() const {
  Ecdf cdf;
  for (const MachineMetrics& m : machines) {
    cdf.Add(m.violation_rate());
  }
  return cdf;
}

Ecdf SimResult::ViolationSeverityCdf() const {
  Ecdf cdf;
  for (const MachineMetrics& m : machines) {
    cdf.Add(m.mean_violation_severity);
  }
  return cdf;
}

Ecdf SimResult::MachineSavingsCdf() const {
  Ecdf cdf;
  for (const MachineMetrics& m : machines) {
    cdf.Add(m.savings_ratio);
  }
  return cdf;
}

Ecdf SimResult::SeverityP999Cdf() const {
  Ecdf cdf;
  for (const MachineMetrics& m : machines) {
    cdf.Add(m.tail.severity_p999);
  }
  return cdf;
}

Ecdf SimResult::MaxStreakCdf() const {
  Ecdf cdf;
  for (const MachineMetrics& m : machines) {
    cdf.Add(static_cast<double>(m.tail.max_violation_streak));
  }
  return cdf;
}

Ecdf SimResult::CellSavingsCdf() const { return Ecdf(cell_savings_series); }

double SimResult::WorstSeverityP999() const {
  double worst = 0.0;
  for (const MachineMetrics& m : machines) {
    worst = std::max(worst, m.tail.severity_p999);
  }
  return worst;
}

int64_t SimResult::MaxViolationStreak() const {
  int64_t longest = 0;
  for (const MachineMetrics& m : machines) {
    longest = std::max(longest, m.tail.max_violation_streak);
  }
  return longest;
}

void FinalizeMachineMetrics(const RiskAccumulator& risk, int machine_index,
                            int64_t num_intervals, MachineMetrics& metrics) {
  metrics.machine_index = machine_index;
  metrics.intervals = num_intervals;
  metrics.occupied_intervals = risk.occupied_intervals();
  metrics.violations = risk.violations();
  if (num_intervals > 0) {
    metrics.mean_violation_severity = risk.severity_sum() / num_intervals;
    metrics.mean_prediction = risk.prediction_sum() / num_intervals;
    metrics.mean_limit = risk.limit_sum_total() / num_intervals;
  }
  if (risk.occupied_intervals() > 0) {
    metrics.savings_ratio =
        risk.savings_sum() / static_cast<double>(risk.occupied_intervals());
  }
  metrics.tail = risk.TailSummary();
}

double SimResult::MeanCellSavings() const {
  if (cell_savings_series.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double s : cell_savings_series) {
    sum += s;
  }
  return sum / static_cast<double>(cell_savings_series.size());
}

std::vector<double> CellSavingsSeries(std::span<const double> cell_limit,
                                      std::span<const double> cell_prediction) {
  std::vector<double> series;
  series.reserve(cell_limit.size());
  for (size_t t = 0; t < cell_limit.size(); ++t) {
    if (cell_limit[t] > 0.0) {
      series.push_back((cell_limit[t] - cell_prediction[t]) / cell_limit[t]);
    }
  }
  return series;
}

double SimResult::MeanViolationRate() const {
  if (machines.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const MachineMetrics& m : machines) {
    sum += m.violation_rate();
  }
  return sum / static_cast<double>(machines.size());
}

}  // namespace crf
