// Per-thread scratch for the fused simulation engine.
//
// SimulateMachine runs once per machine per sweep point — millions of times
// in a full evaluation — so its working set (event lists, resident set,
// sample buffer, oracle buffers, the predictor instance itself) lives in a
// thread-local workspace. Buffers grow to the high-water size of the
// machines a thread has simulated and are reused, so the steady-state path
// performs zero heap allocations per machine.

#ifndef CRF_SIM_SIM_WORKSPACE_H_
#define CRF_SIM_SIM_WORKSPACE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "crf/core/oracle.h"
#include "crf/core/predictor_factory.h"
#include "crf/core/sweep_bank.h"
#include "crf/risk/risk_accumulator.h"

namespace crf {

struct SimWorkspace {
  // Oracle computation scratch and the per-machine oracle series (used when
  // no OracleCache is supplied).
  OracleScratch oracle_scratch;
  std::vector<double> oracle;

  // Per-machine event lists: task indices sorted by arrival / by departure.
  std::vector<int32_t> arrivals;
  std::vector<int32_t> departures;
  // Resident task indices and the sample buffer handed to the predictor.
  std::vector<int32_t> active;
  std::vector<TaskSample> samples;

  // Per-machine risk accounting (crf/risk), Reset() per machine. One for the
  // single-spec engine, one per spec for the multi-spec engine (grown to the
  // plan's spec count by SimulateMachineMulti, never shrunk).
  RiskAccumulator risk;
  std::vector<RiskAccumulator> multi_risk;

  // Returns a predictor for `spec`, reusing (via Reset) the previous
  // instance when the spec is unchanged — the common case when sweeping one
  // spec across all machines of a cell.
  PeakPredictor* GetPredictor(const PredictorSpec& spec);

  // Returns the thread's sweep bank attached to `plan`, re-attaching only
  // when the plan changed (detected by plan id, robust to address reuse).
  // The common case — every machine of a SimulateCellMulti call — is a
  // no-op returning the already-attached bank.
  SweepBank& GetSweepBank(const SweepPlan& plan);

  // The calling thread's workspace (one per thread, lazily created).
  static SimWorkspace& ThreadLocal();

 private:
  std::unique_ptr<PeakPredictor> predictor_;
  PredictorSpec predictor_spec_;
  SweepBank sweep_bank_;
  uint64_t sweep_plan_id_ = 0;  // 0 = never attached; real ids start at 1.
};

}  // namespace crf

#endif  // CRF_SIM_SIM_WORKSPACE_H_
