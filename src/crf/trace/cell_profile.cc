#include "crf/trace/cell_profile.h"

#include "crf/util/check.h"

namespace crf {
namespace {

CellProfile BaseSimProfile() {
  CellProfile profile;  // Defaults in the header are cell a.
  profile.name = "cell_a";
  profile.num_machines = 320;
  return profile;
}

}  // namespace

CellProfile SimCellProfile(char letter) {
  CellProfile p = BaseSimProfile();
  switch (letter) {
    case 'a':
      // Baseline: the paper's main evaluation cell. Largest of the eight.
      break;
    case 'b':
      // Lowest per-machine utilization variance (Section 5.5): calm noise,
      // weak diurnal wave, few spikes. N-sigma predicts low peaks here and
      // the RC-like component of the max predictor dominates.
      p.name = "cell_b";
      p.num_machines = 96;
      p.diurnal_amp_min = 0.03;
      p.diurnal_amp_max = 0.12;
      p.ar_sigma_min = 0.015;
      p.ar_sigma_max = 0.04;
      p.spike_prob = 0.001;
      p.tasks_per_machine = 16.0;
      break;
    case 'c':
      // Very short tasks: ~98% of runtimes under 24 h (Fig 7a).
      p.name = "cell_c";
      p.num_machines = 88;
      p.short_runtime_mean_hours = 2.5;
      p.long_fraction = 0.02;
      p.long_runtime_log_mean = 2.6;
      p.long_runtime_log_sigma = 0.5;
      p.service_fraction = 0.12;
      p.tasks_per_machine = 12.0;
      break;
    case 'd':
      // High churn, many small batch-ish tasks, busier arrivals.
      p.name = "cell_d";
      p.num_machines = 96;
      p.tasks_per_machine = 20.0;
      p.short_runtime_mean_hours = 1.5;
      p.limit_log_mu = -3.5;
      p.serving_fraction = 0.65;
      p.arrival_diurnal_amplitude = 0.5;
      break;
    case 'e':
      // Small cell, moderate variance, hotter machines.
      p.name = "cell_e";
      p.num_machines = 48;
      p.mean_ratio_alpha = 8.0;
      p.mean_ratio_beta = 5.5;
      p.tasks_per_machine = 15.0;
      break;
    case 'f':
      // Strongly diurnal serving cell with aligned phases (weak pooling).
      p.name = "cell_f";
      p.num_machines = 80;
      p.diurnal_amp_min = 0.30;
      p.diurnal_amp_max = 0.60;
      p.job_phase_jitter_days = 0.05;
      p.serving_fraction = 0.92;
      break;
    case 'g':
      // Long-running tasks: only ~75% of runtimes under 24 h (Fig 7a).
      p.name = "cell_g";
      p.num_machines = 80;
      p.short_runtime_mean_hours = 8.0;
      p.long_fraction = 0.30;
      p.long_runtime_log_mean = 3.8;
      p.long_runtime_log_sigma = 0.8;
      p.service_fraction = 0.40;
      break;
    case 'h':
      // Bursty: frequent spikes and heavy noise.
      p.name = "cell_h";
      p.num_machines = 64;
      p.spike_prob = 0.010;
      p.spike_duration = 3;
      p.ar_sigma_min = 0.06;
      p.ar_sigma_max = 0.14;
      p.diurnal_amp_max = 0.55;
      break;
    default:
      CRF_CHECK(false) << "unknown sim cell '" << letter << "'";
  }
  return p;
}

std::vector<CellProfile> AllSimCellProfiles() {
  std::vector<CellProfile> profiles;
  for (char letter = 'a'; letter <= 'h'; ++letter) {
    profiles.push_back(SimCellProfile(letter));
  }
  return profiles;
}

CellProfile ProductionCellProfile(int index) {
  // Table 1 scaled by ~1/125: machines 40k/11k/10.5k/11k/3.5k.
  CellProfile p = BaseSimProfile();
  switch (index) {
    case 1:
      // Large, lowest utilization of the five (Fig 3c), middling variance.
      p.name = "production_cell_1";
      p.num_machines = 320;
      // Wide per-job heat spread at a low mean: the cell is cold on average
      // yet hosts hot jobs that concentrate on some machines.
      p.mean_ratio_alpha = 1.6;
      p.mean_ratio_beta = 2.6;
      p.tasks_per_machine = 12.0;
      p.short_runtime_mean_hours = 7.0;
      p.service_fraction = 0.35;
      p.load_burst_rate = 0.015;
      p.load_burst_duration = 3;
      // Deep flash-crowd incidents: a cold cell whose violations come from
      // bursts, not steady pressure (its latency stays good - Fig 3's
      // cell-1-vs-cell-4 anomaly).
      p.load_burst_log_magnitude = 0.75;
      p.machine_imbalance_sigma = 0.95;
      break;
    case 2:
      // Hot but stable: highest utilization, lowest violation rate (Fig 3).
      p.name = "production_cell_2";
      p.num_machines = 88;
      p.mean_ratio_alpha = 10.0;
      p.mean_ratio_beta = 5.0;
      p.ar_sigma_min = 0.02;
      p.ar_sigma_max = 0.05;
      p.diurnal_amp_max = 0.25;
      p.spike_prob = 0.0015;
      p.tasks_per_machine = 16.0;
      p.short_runtime_mean_hours = 7.0;
      p.service_fraction = 0.35;
      p.load_burst_rate = 0.002;
      p.load_burst_duration = 3;
      p.load_burst_log_magnitude = 0.35;
      break;
    case 3:
      // Like cell 2: hot, stable, well behaved.
      p.name = "production_cell_3";
      p.num_machines = 84;
      p.mean_ratio_alpha = 9.0;
      p.mean_ratio_beta = 5.0;
      p.ar_sigma_min = 0.02;
      p.ar_sigma_max = 0.06;
      p.spike_prob = 0.002;
      p.tasks_per_machine = 15.0;
      p.short_runtime_mean_hours = 7.0;
      p.service_fraction = 0.35;
      p.load_burst_rate = 0.003;
      p.load_burst_duration = 3;
      p.load_burst_log_magnitude = 0.40;
      break;
    case 4:
      // Extreme churn (81M tasks/month on 11k machines) and fairly high
      // utilization; middling violations but latency hit by load (Fig 3b/c).
      p.name = "production_cell_4";
      p.num_machines = 88;
      p.tasks_per_machine = 18.0;
      p.short_runtime_mean_hours = 0.8;
      p.long_fraction = 0.05;
      p.service_fraction = 0.15;
      p.mean_ratio_alpha = 8.0;
      p.mean_ratio_beta = 5.5;
      p.arrival_diurnal_amplitude = 0.5;
      // High churn keeps per-task history short, but its load is steady:
      // shallow incidents, so fewer violations than cell 1 despite running
      // hotter (the Fig 3 cell-1-vs-cell-4 anomaly).
      p.load_burst_rate = 0.006;
      p.load_burst_duration = 3;
      p.load_burst_log_magnitude = 0.30;
      break;
    case 5:
      // Small and bursty: the most violating cell of the five (Fig 3a).
      p.name = "production_cell_5";
      p.num_machines = 44;
      p.spike_prob = 0.012;
      p.spike_duration = 3;
      p.ar_sigma_min = 0.07;
      p.ar_sigma_max = 0.15;
      p.diurnal_amp_min = 0.25;
      p.diurnal_amp_max = 0.60;
      p.job_phase_jitter_days = 0.06;
      p.mean_ratio_alpha = 7.0;
      p.mean_ratio_beta = 6.0;
      p.short_runtime_mean_hours = 6.0;
      p.service_fraction = 0.30;
      p.load_burst_rate = 0.020;
      p.load_burst_duration = 3;
      p.load_burst_log_magnitude = 0.60;
      break;
    default:
      CRF_CHECK(false) << "unknown production cell " << index;
  }
  return p;
}

std::vector<CellProfile> AllProductionCellProfiles() {
  std::vector<CellProfile> profiles;
  for (int i = 1; i <= 5; ++i) {
    profiles.push_back(ProductionCellProfile(i));
  }
  return profiles;
}

}  // namespace crf
