#include "crf/trace/trace_io.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

#include "crf/util/check.h"
#include "crf/util/csv.h"

namespace crf {
namespace {

constexpr std::string_view kMagic = "# crf-trace v1";

void AppendSeries(std::string& out, const std::vector<float>& series) {
  char buffer[32];
  for (size_t i = 0; i < series.size(); ++i) {
    if (i > 0) {
      out += ';';
    }
    std::snprintf(buffer, sizeof(buffer), "%.6g", static_cast<double>(series[i]));
    out += buffer;
  }
}

bool ParseDouble(std::string_view field, double& out) {
  const auto result = std::from_chars(field.data(), field.data() + field.size(), out);
  return result.ec == std::errc();
}

bool ParseInt(std::string_view field, int64_t& out) {
  const auto result = std::from_chars(field.data(), field.data() + field.size(), out);
  return result.ec == std::errc();
}

bool ParseSeries(std::string_view field, std::vector<float>& out) {
  out.clear();
  if (field.empty()) {
    return true;
  }
  size_t start = 0;
  while (true) {
    const size_t semi = field.find(';', start);
    const std::string_view piece =
        semi == std::string_view::npos ? field.substr(start) : field.substr(start, semi - start);
    double value = 0.0;
    if (!ParseDouble(piece, value)) {
      return false;
    }
    out.push_back(static_cast<float>(value));
    if (semi == std::string_view::npos) {
      break;
    }
    start = semi + 1;
  }
  return true;
}

}  // namespace

void SaveCellTrace(const CellTrace& cell, const std::string& path) {
  std::ofstream out(path);
  CRF_CHECK(out.is_open()) << "cannot open " << path;
  out << kMagic << '\n';
  out << "cell," << cell.name << ',' << cell.num_intervals << ',' << cell.machines.size() << ','
      << cell.dropped_tasks << '\n';
  std::string line;
  for (size_t m = 0; m < cell.machines.size(); ++m) {
    line = "machine,";
    line += std::to_string(m);
    line += ',';
    line += FormatDouble(cell.machines[m].capacity);
    line += ',';
    AppendSeries(line, cell.machines[m].true_peak);
    out << line << '\n';
  }
  for (const TaskTrace& task : cell.tasks) {
    line = "task,";
    line += std::to_string(task.task_id);
    line += ',';
    line += std::to_string(task.job_id);
    line += ',';
    line += std::to_string(task.machine_index);
    line += ',';
    line += std::to_string(task.start);
    line += ',';
    line += FormatDouble(task.limit);
    line += ',';
    line += std::to_string(static_cast<int>(task.sched_class));
    line += ',';
    AppendSeries(line, task.usage);
    out << line << '\n';
  }
  CRF_CHECK(out.good()) << "write failure on " << path;
}

std::optional<CellTrace> LoadCellTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return std::nullopt;
  }
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return std::nullopt;
  }

  CellTrace cell;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const auto fields = SplitCsvLine(line);
    if (fields[0] == "cell") {
      if (fields.size() != 5) {
        return std::nullopt;
      }
      int64_t intervals = 0;
      int64_t machines = 0;
      int64_t dropped = 0;
      if (!ParseInt(fields[2], intervals) || !ParseInt(fields[3], machines) ||
          !ParseInt(fields[4], dropped)) {
        return std::nullopt;
      }
      cell.name = std::string(fields[1]);
      cell.num_intervals = static_cast<Interval>(intervals);
      cell.machines.resize(machines);
      cell.dropped_tasks = dropped;
      saw_header = true;
    } else if (fields[0] == "machine") {
      if (!saw_header || fields.size() != 4) {
        return std::nullopt;
      }
      int64_t index = 0;
      double capacity = 0.0;
      if (!ParseInt(fields[1], index) || !ParseDouble(fields[2], capacity) || index < 0 ||
          index >= static_cast<int64_t>(cell.machines.size())) {
        return std::nullopt;
      }
      cell.machines[index].capacity = capacity;
      if (!ParseSeries(fields[3], cell.machines[index].true_peak)) {
        return std::nullopt;
      }
    } else if (fields[0] == "task") {
      if (!saw_header || fields.size() != 8) {
        return std::nullopt;
      }
      TaskTrace task;
      int64_t task_id = 0;
      int64_t job_id = 0;
      int64_t machine = 0;
      int64_t start = 0;
      int64_t sched_class = 0;
      if (!ParseInt(fields[1], task_id) || !ParseInt(fields[2], job_id) ||
          !ParseInt(fields[3], machine) || !ParseInt(fields[4], start) ||
          !ParseDouble(fields[5], task.limit) || !ParseInt(fields[6], sched_class) ||
          machine < 0 || machine >= static_cast<int64_t>(cell.machines.size()) ||
          sched_class < 0 || sched_class > 3) {
        return std::nullopt;
      }
      task.task_id = task_id;
      task.job_id = job_id;
      task.machine_index = static_cast<int32_t>(machine);
      task.start = static_cast<Interval>(start);
      task.sched_class = static_cast<SchedulingClass>(sched_class);
      if (!ParseSeries(fields[7], task.usage)) {
        return std::nullopt;
      }
      cell.machines[machine].task_indices.push_back(static_cast<int32_t>(cell.tasks.size()));
      cell.tasks.push_back(std::move(task));
    } else {
      return std::nullopt;
    }
  }
  if (!saw_header) {
    return std::nullopt;
  }
  return cell;
}

}  // namespace crf
