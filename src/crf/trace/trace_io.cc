#include "crf/trace/trace_io.h"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string_view>
#include <vector>

#include "crf/trace/trace_builder.h"
#include "crf/trace/trace_format.h"
#include "crf/util/check.h"
#include "crf/util/csv.h"

namespace crf {
namespace {

using trace_internal::BinaryHeader;
using trace_internal::kBinaryMagic;
using trace_internal::kBinaryVersion;
using trace_internal::kFlagRich;
using trace_internal::kHeaderAlignment;
using trace_internal::PaddedNameLength;

constexpr std::string_view kTextMagic = "# crf-trace v1";

// 9 significant digits round-trip any binary32 value exactly, so text and
// binary saves of the same trace reload to identical bits.
void AppendSeries(std::string& out, std::span<const float> series) {
  char buffer[32];
  for (size_t i = 0; i < series.size(); ++i) {
    if (i > 0) {
      out += ';';
    }
    std::snprintf(buffer, sizeof(buffer), "%.9g", static_cast<double>(series[i]));
    out += buffer;
  }
}

// Likewise, 17 significant digits round-trip any binary64 value (limits and
// machine capacities are doubles).
std::string FormatExactDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

bool ParseDouble(std::string_view field, double& out) {
  const auto result = std::from_chars(field.data(), field.data() + field.size(), out);
  return result.ec == std::errc();
}

bool ParseInt(std::string_view field, int64_t& out) {
  const auto result = std::from_chars(field.data(), field.data() + field.size(), out);
  return result.ec == std::errc();
}

bool ParseSeries(std::string_view field, std::vector<float>& out) {
  out.clear();
  if (field.empty()) {
    return true;
  }
  size_t start = 0;
  while (true) {
    const size_t semi = field.find(';', start);
    const std::string_view piece =
        semi == std::string_view::npos ? field.substr(start) : field.substr(start, semi - start);
    double value = 0.0;
    if (!ParseDouble(piece, value)) {
      return false;
    }
    out.push_back(static_cast<float>(value));
    if (semi == std::string_view::npos) {
      break;
    }
    start = semi + 1;
  }
  return true;
}

std::optional<CellTrace> LoadCellTraceText(std::ifstream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kTextMagic) {
    return std::nullopt;
  }

  CellTraceBuilder builder;
  std::vector<float> series;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const auto fields = SplitCsvLine(line);
    if (fields[0] == "cell") {
      if (fields.size() != 5) {
        return std::nullopt;
      }
      int64_t intervals = 0;
      int64_t machines = 0;
      int64_t dropped = 0;
      if (!ParseInt(fields[2], intervals) || !ParseInt(fields[3], machines) ||
          !ParseInt(fields[4], dropped) || intervals < 0 || machines < 0) {
        return std::nullopt;
      }
      builder.Reset(std::string(fields[1]), static_cast<Interval>(intervals),
                    static_cast<int>(machines));
      builder.set_dropped_tasks(dropped);
      saw_header = true;
    } else if (fields[0] == "machine") {
      if (!saw_header || fields.size() != 4) {
        return std::nullopt;
      }
      int64_t index = 0;
      double capacity = 0.0;
      if (!ParseInt(fields[1], index) || !ParseDouble(fields[2], capacity) || index < 0 ||
          index >= builder.num_machines()) {
        return std::nullopt;
      }
      builder.set_machine_capacity(static_cast<int>(index), capacity);
      if (!ParseSeries(fields[3], series)) {
        return std::nullopt;
      }
      builder.mutable_true_peak(static_cast<int>(index)) = series;
    } else if (fields[0] == "task") {
      if (!saw_header || fields.size() != 8) {
        return std::nullopt;
      }
      int64_t task_id = 0;
      int64_t job_id = 0;
      int64_t machine = 0;
      int64_t start = 0;
      double limit = 0.0;
      int64_t sched_class = 0;
      if (!ParseInt(fields[1], task_id) || !ParseInt(fields[2], job_id) ||
          !ParseInt(fields[3], machine) || !ParseInt(fields[4], start) ||
          !ParseDouble(fields[5], limit) || !ParseInt(fields[6], sched_class) || machine < 0 ||
          machine >= builder.num_machines() || sched_class < 0 || sched_class > 3) {
        return std::nullopt;
      }
      if (!ParseSeries(fields[7], series)) {
        return std::nullopt;
      }
      const int32_t task = builder.AddTask(task_id, job_id, static_cast<int32_t>(machine),
                                           static_cast<Interval>(start), limit,
                                           static_cast<SchedulingClass>(sched_class));
      builder.ReserveUsage(task, series.size());
      for (const float u : series) {
        builder.AppendUsage(task, u);
      }
    } else {
      return std::nullopt;
    }
  }
  if (!saw_header) {
    return std::nullopt;
  }
  return builder.Seal();
}

void SetError(std::string* error, std::string message) {
  if (error != nullptr) {
    *error = std::move(message);
  }
}

// Validates the header fields and computes the implied arena layout. Every
// rejection names the offending field so corruption tests (and operators)
// see exactly what is wrong.
bool ValidateHeader(const BinaryHeader& header, trace_internal::ArenaLayout& layout,
                    std::string* error) {
  if (std::memcmp(header.magic, kBinaryMagic, sizeof(kBinaryMagic)) != 0) {
    SetError(error, "bad magic: not a crf binary trace");
    return false;
  }
  if (header.version != kBinaryVersion) {
    SetError(error, "unsupported binary trace version " + std::to_string(header.version) +
                        " (expected " + std::to_string(kBinaryVersion) + ")");
    return false;
  }
  if ((header.flags & ~kFlagRich) != 0) {
    SetError(error, "unknown header flags 0x" + std::to_string(header.flags));
    return false;
  }
  // 2^40 tasks/samples is far beyond any real cell; a larger count is a
  // corrupted header, rejected before the layout arithmetic can overflow.
  constexpr int64_t kImplausible = int64_t{1} << 40;
  const auto count_ok = [&](int64_t value, const char* field) {
    if (value < 0 || value > kImplausible) {
      SetError(error, std::string("header field ") + field + " out of range: " +
                          std::to_string(value));
      return false;
    }
    return true;
  };
  if (!count_ok(header.num_tasks, "num_tasks") ||
      !count_ok(header.num_machines, "num_machines") ||
      !count_ok(header.usage_samples, "usage_samples") ||
      !count_ok(header.peak_samples, "peak_samples") ||
      !count_ok(header.num_intervals, "num_intervals") ||
      !count_ok(header.dropped_tasks, "dropped_tasks")) {
    return false;
  }
  if (header.csr_entries != header.num_tasks) {
    SetError(error, "header csr_entries (" + std::to_string(header.csr_entries) +
                        ") != num_tasks (" + std::to_string(header.num_tasks) + ")");
    return false;
  }
  if (header.name_length > (1u << 20)) {  // names are short; a huge length is corruption
    SetError(error, "implausible cell name length " + std::to_string(header.name_length));
    return false;
  }
  const bool has_rich = (header.flags & kFlagRich) != 0;
  layout = trace_internal::ComputeArenaLayout(header.num_tasks, header.num_machines,
                                              header.usage_samples, header.peak_samples,
                                              header.csr_entries, has_rich);
  if (header.arena_bytes != layout.total_bytes) {
    SetError(error, "arena byte count mismatch: header says " +
                        std::to_string(header.arena_bytes) + ", counts imply " +
                        std::to_string(layout.total_bytes));
    return false;
  }
  return true;
}

// Validates the semantic invariants of a freshly read arena (offset tables
// monotone and consistent with the counts, indices in range) so a corrupted
// file can never produce out-of-bounds spans. On a mapped arena this touches
// only the metadata slabs — the bulk usage/rich samples stay non-resident.
bool ValidateArena(const std::byte* base, const trace_internal::ArenaLayout& layout,
                   const BinaryHeader& header, std::string* error) {
  const auto offsets_ok = [base, error](uint64_t slab, int64_t entries, uint64_t total,
                                        const char* what) {
    const uint64_t* off = reinterpret_cast<const uint64_t*>(base + slab);
    if (off[0] != 0) {
      SetError(error, std::string(what) + " offset table corrupt: entry 0 is " +
                          std::to_string(off[0]) + ", want 0");
      return false;
    }
    if (off[entries] != total) {
      SetError(error, std::string(what) + " offset table corrupt: final entry is " +
                          std::to_string(off[entries]) + ", want " + std::to_string(total));
      return false;
    }
    for (int64_t i = 0; i < entries; ++i) {
      if (off[i] > off[i + 1]) {
        SetError(error, std::string(what) + " offset table not monotone at entry " +
                            std::to_string(i) + " (" + std::to_string(off[i]) + " > " +
                            std::to_string(off[i + 1]) + ")");
        return false;
      }
    }
    return true;
  };
  if (!offsets_ok(layout.usage_off, header.num_tasks,
                  static_cast<uint64_t>(header.usage_samples), "usage") ||
      !offsets_ok(layout.peak_off, header.num_machines,
                  static_cast<uint64_t>(header.peak_samples), "peak") ||
      !offsets_ok(layout.csr_off, header.num_machines,
                  static_cast<uint64_t>(header.csr_entries), "csr")) {
    return false;
  }
  const int32_t* machine_of = reinterpret_cast<const int32_t*>(base + layout.machine_of);
  const uint8_t* sched_class = reinterpret_cast<const uint8_t*>(base + layout.sched_class);
  for (int64_t i = 0; i < header.num_tasks; ++i) {
    if (machine_of[i] < 0 || machine_of[i] >= header.num_machines) {
      SetError(error, "task " + std::to_string(i) + " machine index " +
                          std::to_string(machine_of[i]) + " out of range [0, " +
                          std::to_string(header.num_machines) + ")");
      return false;
    }
    if (sched_class[i] > 3) {
      SetError(error, "task " + std::to_string(i) + " scheduling class " +
                          std::to_string(sched_class[i]) + " out of range");
      return false;
    }
  }
  // Every task must appear in exactly one CSR row.
  const int32_t* csr_tasks = reinterpret_cast<const int32_t*>(base + layout.csr_tasks);
  std::vector<uint8_t> seen(header.num_tasks, 0);
  for (int64_t i = 0; i < header.csr_entries; ++i) {
    if (csr_tasks[i] < 0 || csr_tasks[i] >= header.num_tasks) {
      SetError(error, "csr entry " + std::to_string(i) + " task index " +
                          std::to_string(csr_tasks[i]) + " out of range");
      return false;
    }
    if (seen[csr_tasks[i]] != 0) {
      SetError(error, "csr entry " + std::to_string(i) + " repeats task " +
                          std::to_string(csr_tasks[i]));
      return false;
    }
    seen[csr_tasks[i]] = 1;
  }
  return true;
}

// Reads header + name + padding from `file`, leaving the read position at
// the start of the arena blob.
bool ReadHeaderAndName(std::FILE* file, BinaryHeader& header,
                       trace_internal::ArenaLayout& layout, std::string& name,
                       std::string* error) {
  if (std::fread(&header, sizeof(header), 1, file) != 1) {
    SetError(error, "truncated file: shorter than the " + std::to_string(sizeof(header)) +
                        "-byte header");
    return false;
  }
  if (!ValidateHeader(header, layout, error)) {
    return false;
  }
  name.assign(header.name_length, '\0');
  if (header.name_length > 0 &&
      std::fread(name.data(), 1, header.name_length, file) != header.name_length) {
    SetError(error, "truncated file: cell name cut short");
    return false;
  }
  const uint64_t padding = PaddedNameLength(header.name_length) - header.name_length;
  if (std::fseek(file, static_cast<long>(padding), SEEK_CUR) != 0) {
    SetError(error, "truncated file: missing name padding");
    return false;
  }
  return true;
}

std::optional<CellTrace> LoadCellTraceBinary(std::FILE* file, std::string* error) {
  BinaryHeader header;
  trace_internal::ArenaLayout layout;
  std::string name;
  if (!ReadHeaderAndName(file, header, layout, name, error)) {
    return std::nullopt;
  }
  const bool has_rich = (header.flags & kFlagRich) != 0;
  auto arena = std::make_shared<trace_internal::TraceArena>(layout.total_bytes);
  if (layout.total_bytes > 0) {
    const size_t got = std::fread(arena->bytes, 1, layout.total_bytes, file);
    if (got != layout.total_bytes) {
      SetError(error, "truncated arena: need " + std::to_string(layout.total_bytes) +
                          " bytes, file has " + std::to_string(got));
      return std::nullopt;
    }
  }
  if (std::fgetc(file) != EOF) {
    SetError(error, "trailing garbage after the arena blob");
    return std::nullopt;
  }
  if (!ValidateArena(arena->bytes, layout, header, error)) {
    return std::nullopt;
  }
  return trace_internal::AttachTrace(std::move(name), static_cast<Interval>(header.num_intervals),
                                     header.dropped_tasks, std::move(arena), header.num_tasks,
                                     header.num_machines, header.usage_samples,
                                     header.peak_samples, header.csr_entries, has_rich);
}

// Zero-copy load: parse + validate the header from a short read, then map
// the whole file and run the arena validator directly on the mapping.
std::optional<CellTrace> LoadCellTraceBinaryMapped(const std::string& path, std::string* error) {
  BinaryHeader header;
  trace_internal::ArenaLayout layout;
  std::string name;
  uint64_t file_size = 0;
  {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      SetError(error, "cannot open " + path);
      return std::nullopt;
    }
    const bool header_ok = ReadHeaderAndName(file, header, layout, name, error);
    if (header_ok) {
      std::fseek(file, 0, SEEK_END);
      file_size = static_cast<uint64_t>(std::ftell(file));
    }
    std::fclose(file);
    if (!header_ok) {
      return std::nullopt;
    }
  }
  const uint64_t arena_offset = sizeof(BinaryHeader) + PaddedNameLength(header.name_length);
  const uint64_t expected = arena_offset + layout.total_bytes;
  if (file_size < expected) {
    SetError(error, "truncated arena: file is " + std::to_string(file_size) +
                        " bytes, header + arena need " + std::to_string(expected));
    return std::nullopt;
  }
  if (file_size > expected) {
    SetError(error, "trailing garbage after the arena blob (" +
                        std::to_string(file_size - expected) + " extra bytes)");
    return std::nullopt;
  }
  std::shared_ptr<const trace_internal::TraceArena> arena =
      trace_internal::TraceArena::MapFromFile(path, arena_offset, layout.total_bytes, error);
  if (arena == nullptr) {
    return std::nullopt;
  }
  if (!ValidateArena(arena->bytes, layout, header, error)) {
    return std::nullopt;
  }
  const bool has_rich = (header.flags & kFlagRich) != 0;
  return trace_internal::AttachTrace(std::move(name), static_cast<Interval>(header.num_intervals),
                                     header.dropped_tasks, std::move(arena), header.num_tasks,
                                     header.num_machines, header.usage_samples,
                                     header.peak_samples, header.csr_entries, has_rich);
}

}  // namespace

void SaveCellTrace(const CellTrace& cell, const std::string& path) {
  std::ofstream out(path);
  CRF_CHECK(out.is_open()) << "cannot open " << path;
  out << kTextMagic << '\n';
  out << "cell," << cell.name << ',' << cell.num_intervals << ',' << cell.num_machines() << ','
      << cell.dropped_tasks << '\n';
  std::string line;
  for (int m = 0; m < cell.num_machines(); ++m) {
    line = "machine,";
    line += std::to_string(m);
    line += ',';
    line += FormatExactDouble(cell.machine_capacity(m));
    line += ',';
    AppendSeries(line, cell.true_peak(m));
    out << line << '\n';
  }
  for (int32_t i = 0; i < cell.num_tasks(); ++i) {
    const TaskView task = cell.task(i);
    line = "task,";
    line += std::to_string(task.task_id());
    line += ',';
    line += std::to_string(task.job_id());
    line += ',';
    line += std::to_string(task.machine_index());
    line += ',';
    line += std::to_string(task.start());
    line += ',';
    line += FormatExactDouble(task.limit());
    line += ',';
    line += std::to_string(static_cast<int>(task.sched_class()));
    line += ',';
    AppendSeries(line, task.usage());
    out << line << '\n';
  }
  CRF_CHECK(out.good()) << "write failure on " << path;
}

void SaveCellTraceBinary(const CellTrace& cell, const std::string& path) {
  // A default-constructed (never sealed) trace has no arena; seal an empty
  // one so the writer has a blob to emit.
  if (cell.arena_bytes().empty()) {
    CRF_CHECK_EQ(cell.num_tasks(), 0);
    CellTraceBuilder builder(cell.name, cell.num_intervals, 0);
    builder.set_dropped_tasks(cell.dropped_tasks);
    SaveCellTraceBinary(builder.Seal(), path);
    return;
  }

  BinaryHeader header;
  std::memset(&header, 0, sizeof(header));
  std::memcpy(header.magic, kBinaryMagic, sizeof(kBinaryMagic));
  header.version = kBinaryVersion;
  header.flags = cell.has_rich() ? kFlagRich : 0;
  header.num_tasks = cell.num_tasks();
  header.num_machines = cell.num_machines();
  header.usage_samples = cell.usage_sample_count();
  header.peak_samples = cell.peak_sample_count();
  header.csr_entries = cell.num_tasks();
  header.num_intervals = cell.num_intervals;
  header.dropped_tasks = cell.dropped_tasks;
  header.name_length = cell.name.size();
  header.arena_bytes = cell.arena_bytes().size();

  std::FILE* file = std::fopen(path.c_str(), "wb");
  CRF_CHECK(file != nullptr) << "cannot open " << path;
  bool ok = std::fwrite(&header, sizeof(header), 1, file) == 1;
  if (!cell.name.empty()) {
    ok = ok && std::fwrite(cell.name.data(), 1, cell.name.size(), file) == cell.name.size();
  }
  const uint64_t padding = PaddedNameLength(header.name_length) - header.name_length;
  static constexpr char kZeros[kHeaderAlignment] = {};
  ok = ok && std::fwrite(kZeros, 1, padding, file) == padding;
  ok = ok && std::fwrite(cell.arena_bytes().data(), 1, cell.arena_bytes().size(), file) ==
                 cell.arena_bytes().size();
  ok = std::fclose(file) == 0 && ok;
  CRF_CHECK(ok) << "write failure on " << path;
}

std::optional<CellTrace> LoadCellTrace(const std::string& path) {
  return LoadCellTrace(path, TraceLoadOptions{}, nullptr);
}

std::optional<CellTrace> LoadCellTrace(const std::string& path, const TraceLoadOptions& options,
                                       std::string* error) {
  // Sniff the leading magic to pick a format.
  bool is_binary = false;
  {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      SetError(error, "cannot open " + path);
      return std::nullopt;
    }
    char magic[8] = {};
    const size_t got = std::fread(magic, 1, sizeof(magic), file);
    is_binary =
        got == sizeof(magic) && std::memcmp(magic, kBinaryMagic, sizeof(kBinaryMagic)) == 0;
    if (is_binary && options.mode != TraceLoadMode::kMapped) {
      std::rewind(file);
      auto cell = LoadCellTraceBinary(file, error);
      std::fclose(file);
      return cell;
    }
    std::fclose(file);
  }
  if (options.mode == TraceLoadMode::kMapped) {
    if (!is_binary) {
      SetError(error, path + " is not a binary trace; mmap loading requires the binary format");
      return std::nullopt;
    }
    return LoadCellTraceBinaryMapped(path, error);
  }
  if (options.mode == TraceLoadMode::kHeap && !is_binary) {
    // Fall through to the text parser only in auto mode.
    SetError(error, path + " is not a binary trace");
    return std::nullopt;
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  auto cell = LoadCellTraceText(in);
  if (!cell.has_value()) {
    SetError(error, path + " is not a well-formed text trace");
  }
  return cell;
}

}  // namespace crf
