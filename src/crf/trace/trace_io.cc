#include "crf/trace/trace_io.h"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string_view>
#include <vector>

#include "crf/trace/trace_builder.h"
#include "crf/util/check.h"
#include "crf/util/csv.h"

namespace crf {
namespace {

constexpr std::string_view kTextMagic = "# crf-trace v1";
constexpr char kBinaryMagic[8] = {'C', 'R', 'F', 'T', 'R', 'B', 'I', 'N'};
constexpr uint32_t kBinaryVersion = 1;
constexpr uint32_t kFlagRich = 1u << 0;
constexpr uint64_t kHeaderAlignment = 64;

// Fixed-size little-endian header preceding the arena blob.
struct BinaryHeader {
  char magic[8];
  uint32_t version;
  uint32_t flags;
  int64_t num_tasks;
  int64_t num_machines;
  int64_t usage_samples;
  int64_t peak_samples;
  int64_t csr_entries;
  int64_t num_intervals;
  int64_t dropped_tasks;
  uint64_t name_length;
  uint64_t arena_bytes;
};
static_assert(sizeof(BinaryHeader) == 88, "binary trace header layout drifted");

uint64_t PaddedNameLength(uint64_t name_length) {
  const uint64_t unpadded = sizeof(BinaryHeader) + name_length;
  return ((unpadded + kHeaderAlignment - 1) & ~(kHeaderAlignment - 1)) - sizeof(BinaryHeader);
}

// 9 significant digits round-trip any binary32 value exactly, so text and
// binary saves of the same trace reload to identical bits.
void AppendSeries(std::string& out, std::span<const float> series) {
  char buffer[32];
  for (size_t i = 0; i < series.size(); ++i) {
    if (i > 0) {
      out += ';';
    }
    std::snprintf(buffer, sizeof(buffer), "%.9g", static_cast<double>(series[i]));
    out += buffer;
  }
}

// Likewise, 17 significant digits round-trip any binary64 value (limits and
// machine capacities are doubles).
std::string FormatExactDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

bool ParseDouble(std::string_view field, double& out) {
  const auto result = std::from_chars(field.data(), field.data() + field.size(), out);
  return result.ec == std::errc();
}

bool ParseInt(std::string_view field, int64_t& out) {
  const auto result = std::from_chars(field.data(), field.data() + field.size(), out);
  return result.ec == std::errc();
}

bool ParseSeries(std::string_view field, std::vector<float>& out) {
  out.clear();
  if (field.empty()) {
    return true;
  }
  size_t start = 0;
  while (true) {
    const size_t semi = field.find(';', start);
    const std::string_view piece =
        semi == std::string_view::npos ? field.substr(start) : field.substr(start, semi - start);
    double value = 0.0;
    if (!ParseDouble(piece, value)) {
      return false;
    }
    out.push_back(static_cast<float>(value));
    if (semi == std::string_view::npos) {
      break;
    }
    start = semi + 1;
  }
  return true;
}

std::optional<CellTrace> LoadCellTraceText(std::ifstream& in) {
  std::string line;
  if (!std::getline(in, line) || line != kTextMagic) {
    return std::nullopt;
  }

  CellTraceBuilder builder;
  std::vector<float> series;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const auto fields = SplitCsvLine(line);
    if (fields[0] == "cell") {
      if (fields.size() != 5) {
        return std::nullopt;
      }
      int64_t intervals = 0;
      int64_t machines = 0;
      int64_t dropped = 0;
      if (!ParseInt(fields[2], intervals) || !ParseInt(fields[3], machines) ||
          !ParseInt(fields[4], dropped) || intervals < 0 || machines < 0) {
        return std::nullopt;
      }
      builder.Reset(std::string(fields[1]), static_cast<Interval>(intervals),
                    static_cast<int>(machines));
      builder.set_dropped_tasks(dropped);
      saw_header = true;
    } else if (fields[0] == "machine") {
      if (!saw_header || fields.size() != 4) {
        return std::nullopt;
      }
      int64_t index = 0;
      double capacity = 0.0;
      if (!ParseInt(fields[1], index) || !ParseDouble(fields[2], capacity) || index < 0 ||
          index >= builder.num_machines()) {
        return std::nullopt;
      }
      builder.set_machine_capacity(static_cast<int>(index), capacity);
      if (!ParseSeries(fields[3], series)) {
        return std::nullopt;
      }
      builder.mutable_true_peak(static_cast<int>(index)) = series;
    } else if (fields[0] == "task") {
      if (!saw_header || fields.size() != 8) {
        return std::nullopt;
      }
      int64_t task_id = 0;
      int64_t job_id = 0;
      int64_t machine = 0;
      int64_t start = 0;
      double limit = 0.0;
      int64_t sched_class = 0;
      if (!ParseInt(fields[1], task_id) || !ParseInt(fields[2], job_id) ||
          !ParseInt(fields[3], machine) || !ParseInt(fields[4], start) ||
          !ParseDouble(fields[5], limit) || !ParseInt(fields[6], sched_class) || machine < 0 ||
          machine >= builder.num_machines() || sched_class < 0 || sched_class > 3) {
        return std::nullopt;
      }
      if (!ParseSeries(fields[7], series)) {
        return std::nullopt;
      }
      const int32_t task = builder.AddTask(task_id, job_id, static_cast<int32_t>(machine),
                                           static_cast<Interval>(start), limit,
                                           static_cast<SchedulingClass>(sched_class));
      builder.ReserveUsage(task, series.size());
      for (const float u : series) {
        builder.AppendUsage(task, u);
      }
    } else {
      return std::nullopt;
    }
  }
  if (!saw_header) {
    return std::nullopt;
  }
  return builder.Seal();
}

// Validates the semantic invariants of a freshly read arena (offset tables
// monotone and consistent with the counts, indices in range) so a corrupted
// file can never produce out-of-bounds spans.
bool ValidateArena(const trace_internal::TraceArena& arena,
                   const trace_internal::ArenaLayout& layout, const BinaryHeader& header) {
  const std::byte* base = arena.bytes;
  const auto offsets_ok = [base](uint64_t slab, int64_t entries, uint64_t total) {
    const uint64_t* off = reinterpret_cast<const uint64_t*>(base + slab);
    if (off[0] != 0 || off[entries] != total) {
      return false;
    }
    for (int64_t i = 0; i < entries; ++i) {
      if (off[i] > off[i + 1]) {
        return false;
      }
    }
    return true;
  };
  if (!offsets_ok(layout.usage_off, header.num_tasks,
                  static_cast<uint64_t>(header.usage_samples)) ||
      !offsets_ok(layout.peak_off, header.num_machines,
                  static_cast<uint64_t>(header.peak_samples)) ||
      !offsets_ok(layout.csr_off, header.num_machines,
                  static_cast<uint64_t>(header.csr_entries))) {
    return false;
  }
  const int32_t* machine_of = reinterpret_cast<const int32_t*>(base + layout.machine_of);
  const uint8_t* sched_class = reinterpret_cast<const uint8_t*>(base + layout.sched_class);
  for (int64_t i = 0; i < header.num_tasks; ++i) {
    if (machine_of[i] < 0 || machine_of[i] >= header.num_machines || sched_class[i] > 3) {
      return false;
    }
  }
  // Every task must appear in exactly one CSR row.
  const int32_t* csr_tasks = reinterpret_cast<const int32_t*>(base + layout.csr_tasks);
  std::vector<uint8_t> seen(header.num_tasks, 0);
  for (int64_t i = 0; i < header.csr_entries; ++i) {
    if (csr_tasks[i] < 0 || csr_tasks[i] >= header.num_tasks || seen[csr_tasks[i]] != 0) {
      return false;
    }
    seen[csr_tasks[i]] = 1;
  }
  return true;
}

std::optional<CellTrace> LoadCellTraceBinary(std::FILE* file) {
  BinaryHeader header;
  if (std::fread(&header, sizeof(header), 1, file) != 1 ||
      std::memcmp(header.magic, kBinaryMagic, sizeof(kBinaryMagic)) != 0 ||
      header.version != kBinaryVersion || (header.flags & ~kFlagRich) != 0 ||
      header.num_tasks < 0 || header.num_machines < 0 || header.usage_samples < 0 ||
      header.peak_samples < 0 || header.csr_entries != header.num_tasks ||
      header.num_intervals < 0 || header.dropped_tasks < 0) {
    return std::nullopt;
  }
  const bool has_rich = (header.flags & kFlagRich) != 0;
  const trace_internal::ArenaLayout layout = trace_internal::ComputeArenaLayout(
      header.num_tasks, header.num_machines, header.usage_samples, header.peak_samples,
      header.csr_entries, has_rich);
  if (header.arena_bytes != layout.total_bytes ||
      header.name_length > (1u << 20)) {  // names are short; a huge length is corruption
    return std::nullopt;
  }

  std::string name(header.name_length, '\0');
  if (header.name_length > 0 &&
      std::fread(name.data(), 1, header.name_length, file) != header.name_length) {
    return std::nullopt;
  }
  const uint64_t padding = PaddedNameLength(header.name_length) - header.name_length;
  if (std::fseek(file, static_cast<long>(padding), SEEK_CUR) != 0) {
    return std::nullopt;
  }

  auto arena = std::make_shared<trace_internal::TraceArena>(layout.total_bytes);
  if (layout.total_bytes > 0 &&
      std::fread(arena->bytes, 1, layout.total_bytes, file) != layout.total_bytes) {
    return std::nullopt;  // truncated slab
  }
  // Reject trailing garbage.
  if (std::fgetc(file) != EOF) {
    return std::nullopt;
  }
  if (!ValidateArena(*arena, layout, header)) {
    return std::nullopt;
  }
  return trace_internal::AttachTrace(std::move(name), static_cast<Interval>(header.num_intervals),
                                     header.dropped_tasks, std::move(arena), header.num_tasks,
                                     header.num_machines, header.usage_samples,
                                     header.peak_samples, header.csr_entries, has_rich);
}

}  // namespace

void SaveCellTrace(const CellTrace& cell, const std::string& path) {
  std::ofstream out(path);
  CRF_CHECK(out.is_open()) << "cannot open " << path;
  out << kTextMagic << '\n';
  out << "cell," << cell.name << ',' << cell.num_intervals << ',' << cell.num_machines() << ','
      << cell.dropped_tasks << '\n';
  std::string line;
  for (int m = 0; m < cell.num_machines(); ++m) {
    line = "machine,";
    line += std::to_string(m);
    line += ',';
    line += FormatExactDouble(cell.machine_capacity(m));
    line += ',';
    AppendSeries(line, cell.true_peak(m));
    out << line << '\n';
  }
  for (int32_t i = 0; i < cell.num_tasks(); ++i) {
    const TaskView task = cell.task(i);
    line = "task,";
    line += std::to_string(task.task_id());
    line += ',';
    line += std::to_string(task.job_id());
    line += ',';
    line += std::to_string(task.machine_index());
    line += ',';
    line += std::to_string(task.start());
    line += ',';
    line += FormatExactDouble(task.limit());
    line += ',';
    line += std::to_string(static_cast<int>(task.sched_class()));
    line += ',';
    AppendSeries(line, task.usage());
    out << line << '\n';
  }
  CRF_CHECK(out.good()) << "write failure on " << path;
}

void SaveCellTraceBinary(const CellTrace& cell, const std::string& path) {
  // A default-constructed (never sealed) trace has no arena; seal an empty
  // one so the writer has a blob to emit.
  if (cell.arena_bytes().empty()) {
    CRF_CHECK_EQ(cell.num_tasks(), 0);
    CellTraceBuilder builder(cell.name, cell.num_intervals, 0);
    builder.set_dropped_tasks(cell.dropped_tasks);
    SaveCellTraceBinary(builder.Seal(), path);
    return;
  }

  BinaryHeader header;
  std::memset(&header, 0, sizeof(header));
  std::memcpy(header.magic, kBinaryMagic, sizeof(kBinaryMagic));
  header.version = kBinaryVersion;
  header.flags = cell.has_rich() ? kFlagRich : 0;
  header.num_tasks = cell.num_tasks();
  header.num_machines = cell.num_machines();
  header.usage_samples = cell.usage_sample_count();
  header.peak_samples = cell.peak_sample_count();
  header.csr_entries = cell.num_tasks();
  header.num_intervals = cell.num_intervals;
  header.dropped_tasks = cell.dropped_tasks;
  header.name_length = cell.name.size();
  header.arena_bytes = cell.arena_bytes().size();

  std::FILE* file = std::fopen(path.c_str(), "wb");
  CRF_CHECK(file != nullptr) << "cannot open " << path;
  bool ok = std::fwrite(&header, sizeof(header), 1, file) == 1;
  if (!cell.name.empty()) {
    ok = ok && std::fwrite(cell.name.data(), 1, cell.name.size(), file) == cell.name.size();
  }
  const uint64_t padding = PaddedNameLength(header.name_length) - header.name_length;
  static constexpr char kZeros[kHeaderAlignment] = {};
  ok = ok && std::fwrite(kZeros, 1, padding, file) == padding;
  ok = ok && std::fwrite(cell.arena_bytes().data(), 1, cell.arena_bytes().size(), file) ==
                 cell.arena_bytes().size();
  ok = std::fclose(file) == 0 && ok;
  CRF_CHECK(ok) << "write failure on " << path;
}

std::optional<CellTrace> LoadCellTrace(const std::string& path) {
  // Sniff the leading magic to pick a format.
  {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      return std::nullopt;
    }
    char magic[8] = {};
    const size_t got = std::fread(magic, 1, sizeof(magic), file);
    if (got == sizeof(magic) && std::memcmp(magic, kBinaryMagic, sizeof(kBinaryMagic)) == 0) {
      std::rewind(file);
      auto cell = LoadCellTraceBinary(file);
      std::fclose(file);
      return cell;
    }
    std::fclose(file);
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    return std::nullopt;
  }
  return LoadCellTraceText(in);
}

}  // namespace crf
