#include "crf/trace/workload_model.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "crf/util/check.h"

namespace crf {

TaskUsageModel::TaskUsageModel(const TaskUsageParams& params, Interval interval0, Rng rng)
    : params_(params), rng_(rng), next_interval_(interval0) {
  CRF_CHECK_GT(params_.limit, 0.0);
  CRF_CHECK_GE(params_.mean_ratio, 0.0);
  CRF_CHECK_LE(params_.mean_ratio, 1.0);
  CRF_CHECK_GE(params_.ar_rho, 0.0);
  CRF_CHECK_LT(params_.ar_rho, 1.0);
  // Start the AR process at its stationary distribution so tasks do not all
  // begin at their mean.
  ar_state_ = rng_.Normal(0.0, params_.ar_sigma);
}

void TaskUsageModel::Step(std::span<double> sub_samples, double shared_load) {
  CRF_CHECK_EQ(sub_samples.size(), static_cast<size_t>(kSubSamplesPerInterval));
  const Interval t = next_interval_++;

  const double day_position = static_cast<double>(t) / kIntervalsPerDay - params_.phase_days;
  const double wave = std::sin(2.0 * std::numbers::pi * day_position);
  const double base = params_.mean_ratio * (1.0 + params_.diurnal_amplitude * wave);

  // AR(1) innovation scaled so the stationary stddev equals ar_sigma.
  const double innovation_sigma =
      params_.ar_sigma * std::sqrt(1.0 - params_.ar_rho * params_.ar_rho);
  ar_state_ = params_.ar_rho * ar_state_ + rng_.Normal(0.0, innovation_sigma);

  if (spike_remaining_ > 0) {
    --spike_remaining_;
  } else if (rng_.Bernoulli(params_.spike_prob)) {
    spike_remaining_ = params_.spike_duration;
  }

  const double load_mix =
      1.0 - params_.load_coupling + params_.load_coupling * shared_load;
  double ratio = (base + ar_state_) * std::max(0.0, load_mix);
  if (spike_remaining_ > 0) {
    ratio = std::max(ratio, params_.spike_level + rng_.Normal(0.0, 0.02));
  }
  ratio = std::clamp(ratio, 0.01, 1.0);
  const double level = ratio * params_.limit;

  // Mean-preserving lognormal jitter: E[exp(N(-s^2/2, s))] = 1.
  const double s = params_.within_sigma;
  const double mu = -0.5 * s * s;
  for (auto& sample : sub_samples) {
    sample = std::clamp(level * rng_.LogNormal(mu, s), 0.0, params_.limit);
  }
}

IntervalSummary SummarizeInterval(std::span<const double> sub_samples) {
  CRF_CHECK_EQ(sub_samples.size(), static_cast<size_t>(kSubSamplesPerInterval));
  std::array<double, kSubSamplesPerInterval> sorted;
  std::copy(sub_samples.begin(), sub_samples.end(), sorted.begin());
  std::sort(sorted.begin(), sorted.end());

  auto at = [&sorted](double p) {
    const double rank = p / 100.0 * (kSubSamplesPerInterval - 1);
    const int lo = static_cast<int>(rank);
    const int hi = std::min(lo + 1, kSubSamplesPerInterval - 1);
    const double frac = rank - lo;
    return static_cast<float>(sorted[lo] + frac * (sorted[hi] - sorted[lo]));
  };

  IntervalSummary summary;
  double sum = 0.0;
  for (const double v : sorted) {
    sum += v;
  }
  summary.rich.avg = static_cast<float>(sum / kSubSamplesPerInterval);
  summary.rich.p50 = at(50);
  summary.rich.p60 = at(60);
  summary.rich.p70 = at(70);
  summary.rich.p80 = at(80);
  summary.rich.p90 = at(90);
  summary.rich.p95 = at(95);
  summary.rich.p99 = at(99);
  summary.rich.max = static_cast<float>(sorted.back());
  summary.scalar_p90 = summary.rich.p90;
  return summary;
}

}  // namespace crf
