// Synthetic cell trace generation.
//
// Produces a CellTrace from a CellProfile: machines, an initial resident
// population (services plus already-running batch/serving tasks), a stream of
// job arrivals with diurnally modulated rates held near the target population
// by a backfill controller, fixed placements chosen by a worst-fit packer
// (the paper keeps the Borg scheduler's placements, Section 5.1.2), and
// per-task usage series from the workload model.

#ifndef CRF_TRACE_GENERATOR_H_
#define CRF_TRACE_GENERATOR_H_

#include "crf/trace/cell_profile.h"
#include "crf/trace/trace.h"
#include "crf/util/rng.h"

namespace crf {

struct GeneratorOptions {
  Interval num_intervals = kIntervalsPerWeek;
  // When true, every task keeps its full within-interval percentile ladder
  // (RichUsage); needed by the Fig 1 / Fig 6 experiments, costs ~9x the
  // per-task memory.
  bool rich_stats = false;
};

CellTrace GenerateCellTrace(const CellProfile& profile, const GeneratorOptions& options,
                            const Rng& rng);

}  // namespace crf

#endif  // CRF_TRACE_GENERATOR_H_
