// Synthetic cell trace generation.
//
// Produces a CellTrace from a CellProfile: machines, an initial resident
// population (services plus already-running batch/serving tasks), a stream of
// job arrivals with diurnally modulated rates held near the target population
// by a backfill controller, fixed placements chosen by a worst-fit packer
// (the paper keeps the Borg scheduler's placements, Section 5.1.2), and
// per-task usage series from the workload model.

#ifndef CRF_TRACE_GENERATOR_H_
#define CRF_TRACE_GENERATOR_H_

#include <cstdint>
#include <string>

#include "crf/trace/cell_profile.h"
#include "crf/trace/trace.h"
#include "crf/util/rng.h"

namespace crf {

struct GeneratorOptions {
  Interval num_intervals = kIntervalsPerWeek;
  // When true, every task keeps its full within-interval percentile ladder
  // (RichUsage); needed by the Fig 1 / Fig 6 experiments, costs ~9x the
  // per-task memory.
  bool rich_stats = false;
  // 0 (default): worst-fit placement scans every machine — O(machines) per
  // task, the reference behavior all differential tests pin. > 0: probe that
  // many uniformly random machines and worst-fit among the feasible ones —
  // O(probes) per task, required to place millions of tasks on 100k+ machine
  // cells in reasonable time. Still fully deterministic for a fixed seed;
  // changing this value changes placements (it is part of the cell's
  // identity, like the seed).
  int placement_probes = 0;
};

CellTrace GenerateCellTrace(const CellProfile& profile, const GeneratorOptions& options,
                            const Rng& rng);

// What GenerateCellTraceToFile wrote.
struct StreamedTraceInfo {
  int64_t num_tasks = 0;
  int64_t dropped_tasks = 0;
  uint64_t file_bytes = 0;
};

// Streaming generation for cells too large to seal in memory: runs the
// identical placement phase (same RNG draws, same placements, same drops),
// renumbers tasks machine-major, and writes the binary .crftrace at `path`
// through StreamingTraceWriter, generating usage machine by machine and
// evicting finished blocks. Resident memory scales with the placement
// metadata (O(tasks)) plus one machine block, not with the usage samples.
// Per-machine content — task set, usage series, true peaks — is bit-identical
// to GenerateCellTrace's; only the task numbering (machine-major vs arrival
// order) differs. Returns false with `*error` on I/O failure.
bool GenerateCellTraceToFile(const CellProfile& profile, const GeneratorOptions& options,
                             const Rng& rng, const std::string& path, std::string* error,
                             StreamedTraceInfo* info = nullptr);

}  // namespace crf

#endif  // CRF_TRACE_GENERATOR_H_
