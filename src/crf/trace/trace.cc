#include "crf/trace/trace.h"

#include <algorithm>

#include "crf/util/check.h"

namespace crf {

bool IsServing(SchedulingClass sched_class) {
  return sched_class == SchedulingClass::kLatencySensitive ||
         sched_class == SchedulingClass::kHighlySensitive;
}

float RichUsage::AtPercentile(int p) const {
  if (p <= 50) {
    return p50;
  }
  switch (p) {
    case 60:
      return p60;
    case 70:
      return p70;
    case 80:
      return p80;
    case 90:
      return p90;
    case 95:
      return p95;
    case 99:
      return p99;
    default:
      return max;
  }
}

double TaskTrace::PeakUsage() const {
  double peak = 0.0;
  for (const float u : usage) {
    peak = std::max(peak, static_cast<double>(u));
  }
  return peak;
}

std::vector<double> CellTrace::MachineUsageSeries(int machine_index) const {
  CRF_CHECK_GE(machine_index, 0);
  CRF_CHECK_LT(machine_index, static_cast<int>(machines.size()));
  std::vector<double> series(num_intervals, 0.0);
  for (const int32_t task_index : machines[machine_index].task_indices) {
    const TaskTrace& task = tasks[task_index];
    const Interval end = std::min(task.end(), num_intervals);
    for (Interval t = task.start; t < end; ++t) {
      series[t] += task.usage[t - task.start];
    }
  }
  return series;
}

std::vector<double> CellTrace::MachineLimitSeries(int machine_index) const {
  CRF_CHECK_GE(machine_index, 0);
  CRF_CHECK_LT(machine_index, static_cast<int>(machines.size()));
  std::vector<double> series(num_intervals, 0.0);
  for (const int32_t task_index : machines[machine_index].task_indices) {
    const TaskTrace& task = tasks[task_index];
    const Interval end = std::min(task.end(), num_intervals);
    for (Interval t = task.start; t < end; ++t) {
      series[t] += task.limit;
    }
  }
  return series;
}

std::vector<int32_t> CellTrace::MachineResidentCount(int machine_index) const {
  CRF_CHECK_GE(machine_index, 0);
  CRF_CHECK_LT(machine_index, static_cast<int>(machines.size()));
  std::vector<int32_t> counts(num_intervals, 0);
  for (const int32_t task_index : machines[machine_index].task_indices) {
    const TaskTrace& task = tasks[task_index];
    const Interval end = std::min(task.end(), num_intervals);
    for (Interval t = task.start; t < end; ++t) {
      ++counts[t];
    }
  }
  return counts;
}

void CellTrace::FilterToServingTasks() {
  std::vector<TaskTrace> kept;
  kept.reserve(tasks.size());
  for (auto& task : tasks) {
    if (IsServing(task.sched_class)) {
      kept.push_back(std::move(task));
    }
  }
  tasks = std::move(kept);
  for (auto& machine : machines) {
    machine.task_indices.clear();
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    const int32_t machine_index = tasks[i].machine_index;
    if (machine_index >= 0) {
      machines[machine_index].task_indices.push_back(static_cast<int32_t>(i));
    }
  }
  // true_peak includes the filtered-out batch tasks' contribution; it remains
  // valid as ground truth for "everything that ran on the machine", which is
  // what a machine-level peak means. Experiments that need serving-only
  // ground truth regenerate with a serving-only profile.
}

double CellTrace::TotalCapacity() const {
  double total = 0.0;
  for (const auto& machine : machines) {
    total += machine.capacity;
  }
  return total;
}

}  // namespace crf
