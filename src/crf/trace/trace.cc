#include "crf/trace/trace.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <new>

#include "crf/util/check.h"

namespace crf {
namespace trace_internal {
namespace {

constexpr uint64_t kSlabAlignment = 64;

constexpr uint64_t AlignUp(uint64_t offset) {
  return (offset + kSlabAlignment - 1) & ~(kSlabAlignment - 1);
}

uint64_t PageSize() {
  static const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

}  // namespace

TraceArena::TraceArena(uint64_t num_bytes) : size(num_bytes) {
  if (num_bytes > 0) {
    bytes = static_cast<std::byte*>(
        ::operator new(num_bytes, std::align_val_t{kSlabAlignment}));
    std::memset(bytes, 0, num_bytes);
  }
}

TraceArena::~TraceArena() {
  if (map_base != nullptr) {
    ::munmap(map_base, map_length);
  } else if (bytes != nullptr) {
    ::operator delete(bytes, std::align_val_t{kSlabAlignment});
  }
}

std::shared_ptr<const TraceArena> TraceArena::MapFromFile(const std::string& path,
                                                          uint64_t arena_offset,
                                                          uint64_t num_bytes,
                                                          std::string* error) {
  const auto fail = [error](std::string message) -> std::shared_ptr<const TraceArena> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return nullptr;
  };
  if (arena_offset % kSlabAlignment != 0) {
    return fail("arena offset " + std::to_string(arena_offset) + " is not 64-byte aligned");
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return fail("cannot open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return fail("cannot stat " + path + ": " + std::strerror(err));
  }
  const uint64_t need = arena_offset + num_bytes;
  if (static_cast<uint64_t>(st.st_size) < need) {
    ::close(fd);
    return fail("truncated file: mapping needs " + std::to_string(need) + " bytes, " + path +
                " has " + std::to_string(st.st_size));
  }
  // Map from offset 0 (mmap offsets must be page-aligned; the arena offset
  // is only 64-aligned) and point `bytes` into the mapping. Page alignment
  // of the base plus 64-alignment of the offset gives 64-aligned slabs.
  void* base = ::mmap(nullptr, need, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_errno = errno;
  ::close(fd);  // The mapping keeps its own reference to the file.
  if (base == MAP_FAILED) {
    return fail("mmap of " + path + " failed: " + std::strerror(map_errno));
  }
  // Suppress readahead so validation faults in only the metadata slabs it
  // actually reads; sequential consumers opt back in via PrefetchRange.
  ::madvise(base, need, MADV_RANDOM);

  auto arena = std::shared_ptr<TraceArena>(new TraceArena());
  arena->map_base = base;
  arena->map_length = need;
  arena->bytes = static_cast<std::byte*>(base) + arena_offset;
  arena->size = num_bytes;
  return arena;
}

int64_t TraceArena::ResidentBytes() const {
  if (!is_mapped()) {
    return static_cast<int64_t>(size);
  }
  if (size == 0) {
    return 0;
  }
  const uint64_t page = PageSize();
  const uintptr_t begin = reinterpret_cast<uintptr_t>(bytes) & ~(page - 1);
  const uintptr_t end = reinterpret_cast<uintptr_t>(bytes) + size;
  const uint64_t num_pages = (end - begin + page - 1) / page;
  std::vector<unsigned char> vec(std::min<uint64_t>(num_pages, 1u << 16));
  int64_t resident_pages = 0;
  uint64_t done = 0;
  while (done < num_pages) {
    const uint64_t chunk = std::min<uint64_t>(num_pages - done, vec.size());
    if (::mincore(reinterpret_cast<void*>(begin + done * page), chunk * page, vec.data()) != 0) {
      return static_cast<int64_t>(size);  // Conservative fallback.
    }
    for (uint64_t i = 0; i < chunk; ++i) {
      resident_pages += vec[i] & 1;
    }
    done += chunk;
  }
  return std::min<int64_t>(resident_pages * static_cast<int64_t>(page),
                           static_cast<int64_t>(size));
}

void TraceArena::PrefetchRange(uint64_t offset, uint64_t length) const {
  if (!is_mapped() || length == 0 || offset >= size) {
    return;
  }
  length = std::min(length, size - offset);
  const uint64_t page = PageSize();
  const uintptr_t begin = (reinterpret_cast<uintptr_t>(bytes) + offset) & ~(page - 1);
  const uintptr_t end = reinterpret_cast<uintptr_t>(bytes) + offset + length;
  ::madvise(reinterpret_cast<void*>(begin), end - begin, MADV_WILLNEED);
}

void TraceArena::DropRange(uint64_t offset, uint64_t length) const {
  if (!is_mapped() || length == 0 || offset >= size) {
    return;
  }
  length = std::min(length, size - offset);
  const uint64_t page = PageSize();
  // Round inward: never evict a page shared with data outside the range.
  const uintptr_t begin =
      (reinterpret_cast<uintptr_t>(bytes) + offset + page - 1) & ~(page - 1);
  const uintptr_t end = (reinterpret_cast<uintptr_t>(bytes) + offset + length) & ~(page - 1);
  if (begin < end) {
    ::madvise(reinterpret_cast<void*>(begin), end - begin, MADV_DONTNEED);
  }
}

ArenaLayout ComputeArenaLayout(int64_t num_tasks, int64_t num_machines, int64_t usage_samples,
                               int64_t peak_samples, int64_t csr_entries, bool has_rich) {
  CRF_CHECK_GE(num_tasks, 0);
  CRF_CHECK_GE(num_machines, 0);
  CRF_CHECK_GE(usage_samples, 0);
  CRF_CHECK_GE(peak_samples, 0);
  CRF_CHECK_GE(csr_entries, 0);
  const uint64_t n = static_cast<uint64_t>(num_tasks);
  const uint64_t m = static_cast<uint64_t>(num_machines);
  const uint64_t s = static_cast<uint64_t>(usage_samples);
  const uint64_t p = static_cast<uint64_t>(peak_samples);
  const uint64_t k = static_cast<uint64_t>(csr_entries);

  ArenaLayout layout;
  uint64_t offset = 0;
  const auto slab = [&offset](uint64_t elements, uint64_t element_size) {
    const uint64_t begin = AlignUp(offset);
    offset = begin + elements * element_size;
    return begin;
  };
  layout.task_id = slab(n, sizeof(TaskId));
  layout.job_id = slab(n, sizeof(JobId));
  layout.machine_of = slab(n, sizeof(int32_t));
  layout.start = slab(n, sizeof(Interval));
  layout.sched_class = slab(n, sizeof(uint8_t));
  layout.limit = slab(n, sizeof(double));
  layout.usage_off = slab(n + 1, sizeof(uint64_t));
  layout.usage = slab(s, sizeof(float));
  layout.rich = slab(has_rich ? kNumRichColumns * s : 0, sizeof(float));
  layout.capacity = slab(m, sizeof(double));
  layout.peak_off = slab(m + 1, sizeof(uint64_t));
  layout.true_peak = slab(p, sizeof(float));
  layout.csr_off = slab(m + 1, sizeof(uint64_t));
  layout.csr_tasks = slab(k, sizeof(int32_t));
  layout.total_bytes = AlignUp(offset);
  return layout;
}

CellTrace AttachTrace(std::string name, Interval num_intervals, int64_t dropped_tasks,
                      std::shared_ptr<const TraceArena> arena, int64_t num_tasks,
                      int64_t num_machines, int64_t usage_samples, int64_t peak_samples,
                      int64_t csr_entries, bool has_rich) {
  CellTrace cell;
  cell.name = std::move(name);
  cell.num_intervals = num_intervals;
  cell.dropped_tasks = dropped_tasks;
  cell.Attach(std::move(arena), num_tasks, num_machines, usage_samples, peak_samples, csr_entries,
              has_rich);
  return cell;
}

}  // namespace trace_internal

bool IsServing(SchedulingClass sched_class) {
  return sched_class == SchedulingClass::kLatencySensitive ||
         sched_class == SchedulingClass::kHighlySensitive;
}

float RichUsage::AtPercentile(int p) const {
  if (p <= 50) {
    return p50;
  }
  switch (p) {
    case 60:
      return p60;
    case 70:
      return p70;
    case 80:
      return p80;
    case 90:
      return p90;
    case 95:
      return p95;
    case 99:
      return p99;
    default:
      return max;
  }
}

RichColumn RichColumnForPercentile(int p) {
  if (p <= 50) {
    return RichColumn::kP50;
  }
  switch (p) {
    case 60:
      return RichColumn::kP60;
    case 70:
      return RichColumn::kP70;
    case 80:
      return RichColumn::kP80;
    case 90:
      return RichColumn::kP90;
    case 95:
      return RichColumn::kP95;
    case 99:
      return RichColumn::kP99;
    default:
      return RichColumn::kMax;
  }
}

double TaskView::PeakUsage() const {
  double peak = 0.0;
  for (const float u : usage()) {
    peak = std::max(peak, static_cast<double>(u));
  }
  return peak;
}

std::span<const float> TaskView::rich_column(RichColumn column) const {
  CRF_CHECK(cell_->has_rich()) << "trace has no rich within-interval stats";
  const uint64_t samples = cell_->usage_off_.back();
  const uint64_t begin = cell_->usage_off_[index_];
  const uint64_t end = cell_->usage_off_[index_ + 1];
  return cell_->rich_.subspan(static_cast<uint64_t>(column) * samples + begin, end - begin);
}

RichUsage TaskView::RichAt(Interval k) const {
  CRF_CHECK(cell_->has_rich()) << "trace has no rich within-interval stats";
  const uint64_t samples = cell_->usage_off_.back();
  const uint64_t at = cell_->usage_off_[index_] + static_cast<uint64_t>(k);
  CRF_CHECK_LT(at, cell_->usage_off_[index_ + 1]);
  const std::span<const float> rich = cell_->rich_;
  RichUsage row;
  row.avg = rich[0 * samples + at];
  row.p50 = rich[1 * samples + at];
  row.p60 = rich[2 * samples + at];
  row.p70 = rich[3 * samples + at];
  row.p80 = rich[4 * samples + at];
  row.p90 = rich[5 * samples + at];
  row.p95 = rich[6 * samples + at];
  row.p99 = rich[7 * samples + at];
  row.max = rich[8 * samples + at];
  return row;
}

void CellTrace::Attach(std::shared_ptr<const trace_internal::TraceArena> arena, int64_t num_tasks,
                       int64_t num_machines, int64_t usage_samples, int64_t peak_samples,
                       int64_t csr_entries, bool has_rich) {
  const trace_internal::ArenaLayout layout = trace_internal::ComputeArenaLayout(
      num_tasks, num_machines, usage_samples, peak_samples, csr_entries, has_rich);
  CRF_CHECK(arena != nullptr);
  CRF_CHECK_EQ(arena->size, layout.total_bytes);
  const std::byte* base = arena->bytes;
  arena_ = std::move(arena);

  const auto column = [base](uint64_t offset, auto* type_tag, uint64_t elements) {
    using T = std::remove_pointer_t<decltype(type_tag)>;
    return std::span<const T>(reinterpret_cast<const T*>(base + offset), elements);
  };
  const uint64_t n = static_cast<uint64_t>(num_tasks);
  const uint64_t m = static_cast<uint64_t>(num_machines);
  task_id_ = column(layout.task_id, static_cast<TaskId*>(nullptr), n);
  job_id_ = column(layout.job_id, static_cast<JobId*>(nullptr), n);
  machine_of_ = column(layout.machine_of, static_cast<int32_t*>(nullptr), n);
  start_ = column(layout.start, static_cast<Interval*>(nullptr), n);
  sched_class_ = column(layout.sched_class, static_cast<uint8_t*>(nullptr), n);
  limit_ = column(layout.limit, static_cast<double*>(nullptr), n);
  usage_off_ = column(layout.usage_off, static_cast<uint64_t*>(nullptr), n + 1);
  usage_ = column(layout.usage, static_cast<float*>(nullptr), static_cast<uint64_t>(usage_samples));
  rich_ = column(layout.rich, static_cast<float*>(nullptr),
                 has_rich ? kNumRichColumns * static_cast<uint64_t>(usage_samples) : 0);
  capacity_ = column(layout.capacity, static_cast<double*>(nullptr), m);
  peak_off_ = column(layout.peak_off, static_cast<uint64_t*>(nullptr), m + 1);
  peak_ = column(layout.true_peak, static_cast<float*>(nullptr),
                 static_cast<uint64_t>(peak_samples));
  csr_off_ = column(layout.csr_off, static_cast<uint64_t*>(nullptr), m + 1);
  csr_tasks_ =
      column(layout.csr_tasks, static_cast<int32_t*>(nullptr), static_cast<uint64_t>(csr_entries));
}

std::span<const int32_t> CellTrace::machine_tasks(int machine_index) const {
  CRF_CHECK_GE(machine_index, 0);
  CRF_CHECK_LT(machine_index, num_machines());
  const uint64_t begin = csr_off_[machine_index];
  const uint64_t end = csr_off_[machine_index + 1];
  return csr_tasks_.subspan(begin, end - begin);
}

double CellTrace::machine_capacity(int machine_index) const {
  CRF_CHECK_GE(machine_index, 0);
  CRF_CHECK_LT(machine_index, num_machines());
  return capacity_[machine_index];
}

std::span<const float> CellTrace::true_peak(int machine_index) const {
  CRF_CHECK_GE(machine_index, 0);
  CRF_CHECK_LT(machine_index, num_machines());
  const uint64_t begin = peak_off_[machine_index];
  const uint64_t end = peak_off_[machine_index + 1];
  return peak_.subspan(begin, end - begin);
}

bool CellTrace::MachineRowsContiguous(int machine_index) const {
  const std::span<const int32_t> row = machine_tasks(machine_index);
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i] != row[0] + static_cast<int32_t>(i)) {
      return false;
    }
  }
  return true;
}

namespace {

// Byte offset of `slab` within `arena` (both borrow the same allocation).
uint64_t SlabOffset(const trace_internal::TraceArena& arena, const void* slab) {
  return static_cast<uint64_t>(static_cast<const std::byte*>(slab) - arena.bytes);
}

}  // namespace

void CellTrace::PrefetchMachinePages(int machine_index) const {
  if (!is_mapped() || !MachineRowsContiguous(machine_index)) {
    return;
  }
  const std::span<const int32_t> row = machine_tasks(machine_index);
  if (!row.empty()) {
    const uint64_t first = usage_off_[row.front()];
    const uint64_t last = usage_off_[row.front() + static_cast<int32_t>(row.size())];
    arena_->PrefetchRange(SlabOffset(*arena_, usage_.data()) + first * sizeof(float),
                          (last - first) * sizeof(float));
    if (has_rich()) {
      const uint64_t samples = usage_off_.back();
      for (int c = 0; c < kNumRichColumns; ++c) {
        arena_->PrefetchRange(
            SlabOffset(*arena_, rich_.data()) + (c * samples + first) * sizeof(float),
            (last - first) * sizeof(float));
      }
    }
  }
  const uint64_t peak_first = peak_off_[machine_index];
  const uint64_t peak_last = peak_off_[machine_index + 1];
  arena_->PrefetchRange(SlabOffset(*arena_, peak_.data()) + peak_first * sizeof(float),
                        (peak_last - peak_first) * sizeof(float));
}

void CellTrace::DropMachinePages(int machine_index) const {
  if (!is_mapped() || !MachineRowsContiguous(machine_index)) {
    return;
  }
  const std::span<const int32_t> row = machine_tasks(machine_index);
  if (!row.empty()) {
    const uint64_t first = usage_off_[row.front()];
    const uint64_t last = usage_off_[row.front() + static_cast<int32_t>(row.size())];
    arena_->DropRange(SlabOffset(*arena_, usage_.data()) + first * sizeof(float),
                      (last - first) * sizeof(float));
    if (has_rich()) {
      const uint64_t samples = usage_off_.back();
      for (int c = 0; c < kNumRichColumns; ++c) {
        arena_->DropRange(
            SlabOffset(*arena_, rich_.data()) + (c * samples + first) * sizeof(float),
            (last - first) * sizeof(float));
      }
    }
  }
  const uint64_t peak_first = peak_off_[machine_index];
  const uint64_t peak_last = peak_off_[machine_index + 1];
  arena_->DropRange(SlabOffset(*arena_, peak_.data()) + peak_first * sizeof(float),
                    (peak_last - peak_first) * sizeof(float));
}

void CellTrace::DropMachinePages(int begin_machine, int end_machine) const {
  if (!is_mapped() || begin_machine >= end_machine) {
    return;
  }
  // One madvise per slab for the whole block when the machines' rows chain
  // into a single contiguous task range (the machine-major streamed layout).
  // DropRange rounds inward, so a per-machine loop strands the page each
  // machine boundary straddles — O(machines) pages that never get returned;
  // the blocked form strands at most one page per block edge.
  int32_t first_task = -1;
  int32_t next_task = -1;
  bool chained = true;
  for (int m = begin_machine; m < end_machine && chained; ++m) {
    if (!MachineRowsContiguous(m)) {
      chained = false;
      break;
    }
    const std::span<const int32_t> row = machine_tasks(m);
    if (row.empty()) {
      continue;
    }
    if (first_task < 0) {
      first_task = row.front();
    } else if (row.front() != next_task) {
      chained = false;
      break;
    }
    next_task = row.front() + static_cast<int32_t>(row.size());
  }
  if (!chained) {
    for (int m = begin_machine; m < end_machine; ++m) {
      DropMachinePages(m);
    }
    return;
  }
  if (first_task >= 0) {
    const uint64_t first = usage_off_[first_task];
    const uint64_t last = usage_off_[next_task];
    arena_->DropRange(SlabOffset(*arena_, usage_.data()) + first * sizeof(float),
                      (last - first) * sizeof(float));
    if (has_rich()) {
      const uint64_t samples = usage_off_.back();
      for (int c = 0; c < kNumRichColumns; ++c) {
        arena_->DropRange(
            SlabOffset(*arena_, rich_.data()) + (c * samples + first) * sizeof(float),
            (last - first) * sizeof(float));
      }
    }
  }
  const uint64_t peak_first = peak_off_[begin_machine];
  const uint64_t peak_last = peak_off_[end_machine];
  arena_->DropRange(SlabOffset(*arena_, peak_.data()) + peak_first * sizeof(float),
                    (peak_last - peak_first) * sizeof(float));
}

std::vector<double> CellTrace::MachineUsageSeries(int machine_index) const {
  std::vector<double> series(num_intervals, 0.0);
  MachineSeriesCursor cursor(*this);
  cursor.Reset(machine_index);
  while (cursor.Next()) {
    series[cursor.interval()] = cursor.usage();
  }
  return series;
}

std::vector<double> CellTrace::MachineLimitSeries(int machine_index) const {
  // Event deltas: +limit at start, -limit at departure, then one prefix sum.
  std::vector<double> series(num_intervals + 1, 0.0);
  for (const int32_t index : machine_tasks(machine_index)) {
    const TaskView task = this->task(index);
    const Interval begin = std::clamp<Interval>(task.start(), 0, num_intervals);
    const Interval end = std::clamp<Interval>(task.departure(), begin, num_intervals);
    series[begin] += task.limit();
    series[end] -= task.limit();
  }
  double running = 0.0;
  for (Interval t = 0; t < num_intervals; ++t) {
    running += series[t];
    series[t] = running;
  }
  series.resize(num_intervals);
  return series;
}

std::vector<int32_t> CellTrace::MachineResidentCount(int machine_index) const {
  std::vector<int32_t> counts(num_intervals + 1, 0);
  for (const int32_t index : machine_tasks(machine_index)) {
    const TaskView task = this->task(index);
    const Interval begin = std::clamp<Interval>(task.start(), 0, num_intervals);
    const Interval end = std::clamp<Interval>(task.departure(), begin, num_intervals);
    ++counts[begin];
    --counts[end];
  }
  int32_t running = 0;
  for (Interval t = 0; t < num_intervals; ++t) {
    running += counts[t];
    counts[t] = running;
  }
  counts.resize(num_intervals);
  return counts;
}

double CellTrace::TotalCapacity() const {
  double total = 0.0;
  for (const double capacity : capacity_) {
    total += capacity;
  }
  return total;
}

MachineSeriesCursor::MachineSeriesCursor(const CellTrace& cell) : cell_(&cell) {}

void MachineSeriesCursor::Reset(int machine_index) {
  // One sequential pass over the machine's contiguous slab runs is about to
  // happen; on mapped traces, ask the kernel to read them ahead.
  cell_->PrefetchMachinePages(machine_index);
  const Interval num_intervals = cell_->num_intervals;
  usage_buf_.assign(static_cast<size_t>(num_intervals), 0.0);
  limit_buf_.assign(static_cast<size_t>(num_intervals) + 1, 0.0);
  resident_buf_.assign(static_cast<size_t>(num_intervals) + 1, 0);
  t_ = -1;

  const std::span<const float> arena = cell_->usage_;
  for (const int32_t index : cell_->machine_tasks(machine_index)) {
    const Interval start = cell_->start_[index];
    const uint64_t begin = cell_->usage_off_[index];
    const uint64_t samples = cell_->usage_off_[index + 1] - begin;
    // Usage: scatter-add the task's contiguous arena run over its lifetime.
    const Interval usage_end =
        std::min<Interval>(start + static_cast<Interval>(samples), num_intervals);
    for (Interval t = std::max<Interval>(start, 0); t < usage_end; ++t) {
      usage_buf_[t] += static_cast<double>(arena[begin + static_cast<uint64_t>(t - start)]);
    }
    // Limits and residency: event deltas over [start, departure()).
    const TaskView task = cell_->task(index);
    const Interval from = std::clamp<Interval>(start, 0, num_intervals);
    const Interval to = std::clamp<Interval>(task.departure(), from, num_intervals);
    limit_buf_[from] += task.limit();
    limit_buf_[to] -= task.limit();
    ++resident_buf_[from];
    --resident_buf_[to];
  }
  double limit_running = 0.0;
  int32_t resident_running = 0;
  for (Interval t = 0; t < num_intervals; ++t) {
    limit_running += limit_buf_[t];
    limit_buf_[t] = limit_running;
    resident_running += resident_buf_[t];
    resident_buf_[t] = resident_running;
  }
}

bool MachineSeriesCursor::Next() {
  ++t_;
  return t_ < cell_->num_intervals;
}

}  // namespace crf
