#include "crf/trace/trace_stats.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "crf/stats/window_max.h"
#include "crf/util/check.h"

namespace crf {

std::vector<int64_t> SubmissionRateSeries(const CellTrace& cell) {
  std::vector<int64_t> series(cell.num_intervals, 0);
  for (const Interval start : cell.task_starts()) {
    if (start > 0 && start < cell.num_intervals) {
      ++series[start];
    }
  }
  return series;
}

Ecdf TaskRuntimeHoursCdf(const CellTrace& cell) {
  Ecdf cdf;
  for (int32_t i = 0; i < cell.num_tasks(); ++i) {
    cdf.Add(IntervalsToHours(cell.task(i).runtime()));
  }
  return cdf;
}

Ecdf UsageToLimitCdf(const CellTrace& cell, int stride) {
  CRF_CHECK_GE(stride, 1);
  Ecdf cdf;
  for (int32_t i = 0; i < cell.num_tasks(); ++i) {
    const TaskView task = cell.task(i);
    if (task.limit() <= 0.0) {
      continue;
    }
    const std::span<const float> usage = task.usage();
    for (size_t k = 0; k < usage.size(); k += stride) {
      cdf.Add(usage[k] / task.limit());
    }
  }
  return cdf;
}

std::vector<double> CellLimitSeries(const CellTrace& cell) {
  std::vector<double> series(cell.num_intervals, 0.0);
  for (int32_t i = 0; i < cell.num_tasks(); ++i) {
    const TaskView task = cell.task(i);
    const Interval end = std::min(task.end(), cell.num_intervals);
    for (Interval t = task.start(); t < end; ++t) {
      series[t] += task.limit();
    }
  }
  return series;
}

std::vector<double> CellUsageSeries(const CellTrace& cell) {
  std::vector<double> series(cell.num_intervals, 0.0);
  for (int32_t i = 0; i < cell.num_tasks(); ++i) {
    const TaskView task = cell.task(i);
    const std::span<const float> usage = task.usage();
    const Interval end = std::min(task.end(), cell.num_intervals);
    for (Interval t = task.start(); t < end; ++t) {
      series[t] += usage[t - task.start()];
    }
  }
  return series;
}

std::vector<double> TaskLevelFuturePeakSum(const CellTrace& cell, Interval horizon) {
  CRF_CHECK_GE(horizon, 1);
  std::vector<double> sum(cell.num_intervals, 0.0);
  std::vector<double> usage;
  for (int32_t i = 0; i < cell.num_tasks(); ++i) {
    const TaskView task = cell.task(i);
    const std::span<const float> task_usage = task.usage();
    usage.assign(task_usage.begin(), task_usage.end());
    if (usage.empty()) {
      continue;
    }
    // peak[k] = max of the task's usage over [k, k+horizon) of its lifetime;
    // a task's future usage beyond its completion is zero, so its own future
    // peak at offset k is exactly this forward window max.
    const std::vector<double> peak = ForwardWindowMax(usage, horizon);
    const Interval end = std::min(task.end(), cell.num_intervals);
    for (Interval t = task.start(); t < end; ++t) {
      sum[t] += peak[t - task.start()];
    }
  }
  return sum;
}

Ecdf PercentileSumPeakErrorCdf(const CellTrace& cell, int percentile, int stride) {
  return PercentileSumPeakErrorCdfs(cell, std::span(&percentile, 1), stride)[0];
}

std::vector<Ecdf> PercentileSumPeakErrorCdfs(const CellTrace& cell,
                                             std::span<const int> percentiles, int stride) {
  CRF_CHECK_GE(stride, 1);
  CRF_CHECK(cell.has_rich()) << "PercentileSumPeakErrorCdfs requires rich_stats traces";
  const size_t num_percentiles = percentiles.size();
  std::vector<Ecdf> cdfs(num_percentiles);
  std::vector<std::vector<double>> approx(num_percentiles);
  for (int m = 0; m < cell.num_machines(); ++m) {
    const std::span<const float> true_peak = cell.true_peak(m);
    CRF_CHECK_EQ(true_peak.size(), static_cast<size_t>(cell.num_intervals))
        << "machine true_peak missing; generate the trace first";
    for (std::vector<double>& series : approx) {
      series.assign(cell.num_intervals, 0.0);
    }
    for (const int32_t task_index : cell.machine_tasks(m)) {
      const TaskView task = cell.task(task_index);
      const Interval start = task.start();
      const Interval end = std::min(task.end(), cell.num_intervals);
      // Struct-of-arrays ladder: each percentile reads one contiguous column.
      for (size_t p = 0; p < num_percentiles; ++p) {
        const std::span<const float> column =
            task.rich_column(RichColumnForPercentile(percentiles[p]));
        std::vector<double>& series = approx[p];
        for (Interval t = start; t < end; ++t) {
          series[t] += column[t - start];
        }
      }
    }
    for (Interval t = 0; t < cell.num_intervals; t += stride) {
      const double actual = true_peak[t];
      if (actual > 1e-9) {
        for (size_t p = 0; p < num_percentiles; ++p) {
          cdfs[p].Add((approx[p][t] - actual) / actual);
        }
      }
    }
  }
  return cdfs;
}

TraceLayoutStats ComputeTraceLayoutStats(const CellTrace& cell) {
  TraceLayoutStats stats;
  stats.num_machines = cell.num_machines();
  int64_t total = 0;
  int32_t min_tasks = 0;
  int32_t max_tasks = 0;
  for (int m = 0; m < cell.num_machines(); ++m) {
    const int32_t row = static_cast<int32_t>(cell.machine_tasks(m).size());
    if (m == 0 || row < min_tasks) {
      min_tasks = row;
    }
    max_tasks = std::max(max_tasks, row);
    total += row;
  }
  stats.min_tasks_per_machine = min_tasks;
  stats.max_tasks_per_machine = max_tasks;
  stats.csr_entries = total;
  stats.mean_tasks_per_machine =
      cell.num_machines() > 0 ? static_cast<double>(total) / cell.num_machines() : 0.0;
  stats.usage_samples = cell.usage_sample_count();

  stats.arena_bytes = static_cast<int64_t>(cell.arena_bytes().size());
  stats.task_column_bytes = static_cast<int64_t>(
      cell.task_ids().size_bytes() + cell.job_ids().size_bytes() +
      cell.task_machines().size_bytes() + cell.task_starts().size_bytes() +
      cell.task_classes().size_bytes() + cell.task_limits().size_bytes() +
      cell.usage_offsets().size_bytes());
  stats.usage_bytes = static_cast<int64_t>(cell.usage_arena().size_bytes());
  stats.csr_bytes = stats.csr_entries * static_cast<int64_t>(sizeof(int32_t));
  stats.peak_bytes = cell.peak_sample_count() * static_cast<int64_t>(sizeof(float));
  stats.rich_bytes =
      cell.has_rich() ? 9 * stats.usage_samples * static_cast<int64_t>(sizeof(float)) : 0;
  stats.mapped = cell.is_mapped();
  stats.resident_bytes = cell.is_mapped() ? cell.ResidentArenaBytes() : stats.arena_bytes;
  return stats;
}

std::string DescribeTraceLayout(const TraceLayoutStats& stats) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "machine CSR rows: min %d, mean %.2f, max %d tasks over %d machines"
                " (%" PRId64 " entries, %" PRId64 " usage samples)\n",
                stats.min_tasks_per_machine, stats.mean_tasks_per_machine,
                stats.max_tasks_per_machine, stats.num_machines, stats.csr_entries,
                stats.usage_samples);
  out += line;
  std::snprintf(line, sizeof(line),
                "arena slabs: %" PRId64 " B total (task columns %" PRId64 " B, usage %" PRId64
                " B, csr %" PRId64 " B, peak %" PRId64 " B, rich %" PRId64 " B)\n",
                stats.arena_bytes, stats.task_column_bytes, stats.usage_bytes, stats.csr_bytes,
                stats.peak_bytes, stats.rich_bytes);
  out += line;
  if (stats.mapped) {
    const double pct = stats.arena_bytes > 0
                           ? 100.0 * static_cast<double>(stats.resident_bytes) /
                                 static_cast<double>(stats.arena_bytes)
                           : 0.0;
    std::snprintf(line, sizeof(line),
                  "load mode: mmap (~%" PRId64 " B of %" PRId64 " B resident, ~%.1f%%)\n",
                  stats.resident_bytes, stats.arena_bytes, pct);
  } else {
    std::snprintf(line, sizeof(line), "load mode: heap (arena fully resident)\n");
  }
  out += line;
  return out;
}

}  // namespace crf
