#include "crf/trace/trace_stats.h"

#include <algorithm>

#include "crf/stats/window_max.h"
#include "crf/util/check.h"

namespace crf {

std::vector<int64_t> SubmissionRateSeries(const CellTrace& cell) {
  std::vector<int64_t> series(cell.num_intervals, 0);
  for (const TaskTrace& task : cell.tasks) {
    if (task.start > 0 && task.start < cell.num_intervals) {
      ++series[task.start];
    }
  }
  return series;
}

Ecdf TaskRuntimeHoursCdf(const CellTrace& cell) {
  Ecdf cdf;
  for (const TaskTrace& task : cell.tasks) {
    cdf.Add(IntervalsToHours(task.runtime()));
  }
  return cdf;
}

Ecdf UsageToLimitCdf(const CellTrace& cell, int stride) {
  CRF_CHECK_GE(stride, 1);
  Ecdf cdf;
  for (const TaskTrace& task : cell.tasks) {
    if (task.limit <= 0.0) {
      continue;
    }
    for (size_t k = 0; k < task.usage.size(); k += stride) {
      cdf.Add(task.usage[k] / task.limit);
    }
  }
  return cdf;
}

std::vector<double> CellLimitSeries(const CellTrace& cell) {
  std::vector<double> series(cell.num_intervals, 0.0);
  for (const TaskTrace& task : cell.tasks) {
    const Interval end = std::min(task.end(), cell.num_intervals);
    for (Interval t = task.start; t < end; ++t) {
      series[t] += task.limit;
    }
  }
  return series;
}

std::vector<double> CellUsageSeries(const CellTrace& cell) {
  std::vector<double> series(cell.num_intervals, 0.0);
  for (const TaskTrace& task : cell.tasks) {
    const Interval end = std::min(task.end(), cell.num_intervals);
    for (Interval t = task.start; t < end; ++t) {
      series[t] += task.usage[t - task.start];
    }
  }
  return series;
}

std::vector<double> TaskLevelFuturePeakSum(const CellTrace& cell, Interval horizon) {
  CRF_CHECK_GE(horizon, 1);
  std::vector<double> sum(cell.num_intervals, 0.0);
  std::vector<double> usage;
  for (const TaskTrace& task : cell.tasks) {
    usage.assign(task.usage.begin(), task.usage.end());
    if (usage.empty()) {
      continue;
    }
    // peak[k] = max of the task's usage over [k, k+horizon) of its lifetime;
    // a task's future usage beyond its completion is zero, so its own future
    // peak at offset k is exactly this forward window max.
    const std::vector<double> peak = ForwardWindowMax(usage, horizon);
    const Interval end = std::min(task.end(), cell.num_intervals);
    for (Interval t = task.start; t < end; ++t) {
      sum[t] += peak[t - task.start];
    }
  }
  return sum;
}

Ecdf PercentileSumPeakErrorCdf(const CellTrace& cell, int percentile, int stride) {
  return PercentileSumPeakErrorCdfs(cell, std::span(&percentile, 1), stride)[0];
}

std::vector<Ecdf> PercentileSumPeakErrorCdfs(const CellTrace& cell,
                                             std::span<const int> percentiles, int stride) {
  CRF_CHECK_GE(stride, 1);
  const size_t num_percentiles = percentiles.size();
  std::vector<Ecdf> cdfs(num_percentiles);
  std::vector<std::vector<double>> approx(num_percentiles);
  for (size_t m = 0; m < cell.machines.size(); ++m) {
    const MachineTrace& machine = cell.machines[m];
    CRF_CHECK_EQ(machine.true_peak.size(), static_cast<size_t>(cell.num_intervals))
        << "machine true_peak missing; generate the trace first";
    for (std::vector<double>& series : approx) {
      series.assign(cell.num_intervals, 0.0);
    }
    for (const int32_t task_index : machine.task_indices) {
      const TaskTrace& task = cell.tasks[task_index];
      CRF_CHECK_EQ(task.rich.size(), task.usage.size())
          << "PercentileSumPeakErrorCdfs requires rich_stats traces";
      const Interval end = std::min(task.end(), cell.num_intervals);
      for (Interval t = task.start; t < end; ++t) {
        // One rich-stats row load answers the whole percentile grid.
        const auto& row = task.rich[t - task.start];
        for (size_t p = 0; p < num_percentiles; ++p) {
          approx[p][t] += row.AtPercentile(percentiles[p]);
        }
      }
    }
    for (Interval t = 0; t < cell.num_intervals; t += stride) {
      const double actual = machine.true_peak[t];
      if (actual > 1e-9) {
        for (size_t p = 0; p < num_percentiles; ++p) {
          cdfs[p].Add((approx[p][t] - actual) / actual);
        }
      }
    }
  }
  return cdfs;
}

}  // namespace crf
