// On-disk layout of the .crftrace binary format, shared by the byte-stream
// reader/writer (trace_io.cc), the zero-copy mmap loader, and the streaming
// writer (stream_writer.h). trace_io.h documents the format; this header
// only fixes the bytes.
//
// Invariant the mmap paths rely on: the header + name region is zero-padded
// to a 64-byte boundary, so the arena blob starts at a 64-byte-aligned file
// offset. A page-aligned mapping of the file therefore exposes the arena —
// and every slab inside it — with exactly the alignment the heap allocator
// guarantees.

#ifndef CRF_TRACE_TRACE_FORMAT_H_
#define CRF_TRACE_TRACE_FORMAT_H_

#include <cstdint>

namespace crf {
namespace trace_internal {

inline constexpr char kBinaryMagic[8] = {'C', 'R', 'F', 'T', 'R', 'B', 'I', 'N'};
inline constexpr uint32_t kBinaryVersion = 1;
inline constexpr uint32_t kFlagRich = 1u << 0;
inline constexpr uint64_t kHeaderAlignment = 64;

// Fixed-size little-endian header preceding the arena blob.
struct BinaryHeader {
  char magic[8];
  uint32_t version;
  uint32_t flags;
  int64_t num_tasks;
  int64_t num_machines;
  int64_t usage_samples;
  int64_t peak_samples;
  int64_t csr_entries;
  int64_t num_intervals;
  int64_t dropped_tasks;
  uint64_t name_length;
  uint64_t arena_bytes;
};
static_assert(sizeof(BinaryHeader) == 88, "binary trace header layout drifted");

// Length of the name region including its zero padding: the arena blob
// starts at sizeof(BinaryHeader) + PaddedNameLength(name_length), which is
// always a multiple of kHeaderAlignment.
inline constexpr uint64_t PaddedNameLength(uint64_t name_length) {
  const uint64_t unpadded = sizeof(BinaryHeader) + name_length;
  return ((unpadded + kHeaderAlignment - 1) & ~(kHeaderAlignment - 1)) - sizeof(BinaryHeader);
}

}  // namespace trace_internal
}  // namespace crf

#endif  // CRF_TRACE_TRACE_FORMAT_H_
