// Mutable build state for a CellTrace.
//
// The generator, the CSV loader, and the closed-loop cluster simulator all
// accumulate a trace incrementally: tasks appear one at a time, usage samples
// are appended interval by interval, and machine ground truth is written as
// the simulation advances. CellTraceBuilder holds that in-progress state in
// ordinary per-task vectors, exposes read-back accessors for engines that
// need to observe the partial trace (the cluster machine step loop), and
// Seal() packs everything into the single immutable arena described in
// trace.h — validating offsets, CSR consistency, and machine indices on the
// way (a task with an out-of-range machine index aborts the seal).
//
// Distinct tasks may be built concurrently (the sharded cluster step loop
// appends usage to different tasks from different threads); AddTask and
// Seal are not thread-safe.

#ifndef CRF_TRACE_TRACE_BUILDER_H_
#define CRF_TRACE_TRACE_BUILDER_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "crf/trace/trace.h"
#include "crf/util/time_grid.h"

namespace crf {

class CellTraceBuilder {
 public:
  CellTraceBuilder() = default;
  CellTraceBuilder(std::string name, Interval num_intervals, int num_machines) {
    Reset(std::move(name), num_intervals, num_machines);
  }

  // Clears all build state and starts a fresh cell.
  void Reset(std::string name, Interval num_intervals, int num_machines);

  const std::string& name() const { return name_; }
  Interval num_intervals() const { return num_intervals_; }
  int num_machines() const { return static_cast<int>(capacity_.size()); }
  int32_t num_tasks() const { return static_cast<int32_t>(start_.size()); }

  int64_t dropped_tasks() const { return dropped_tasks_; }
  void set_dropped_tasks(int64_t dropped) { dropped_tasks_ = dropped; }
  void AddDroppedTask() { ++dropped_tasks_; }

  void set_machine_capacity(int machine_index, double capacity);
  double machine_capacity(int machine_index) const { return capacity_[machine_index]; }
  // Ground-truth peak series; size it and write in place (the cluster sim
  // writes true_peak[t] as interval t completes).
  std::vector<float>& mutable_true_peak(int machine_index) { return true_peak_[machine_index]; }
  // Tasks placed on the machine so far, in placement order.
  std::span<const int32_t> machine_tasks(int machine_index) const {
    return machine_tasks_[machine_index];
  }

  // Registers a task and appends it to its machine's task list (when the
  // machine index is in range; out-of-range indices are caught by Seal).
  // Returns the task's index.
  int32_t AddTask(TaskId task_id, JobId job_id, int32_t machine_index, Interval start,
                  double limit, SchedulingClass sched_class);

  void ReserveUsage(int32_t task_index, size_t capacity) {
    usage_[task_index].reserve(capacity);
  }
  void AppendUsage(int32_t task_index, float value) { usage_[task_index].push_back(value); }
  // Rich rows are all-or-nothing per trace: once any task has rich rows,
  // Seal requires every task's rich series to match its usage length.
  void AppendRich(int32_t task_index, const RichUsage& row);

  // Read-back for incremental engines.
  TaskId task_id(int32_t task_index) const { return task_id_[task_index]; }
  JobId job_id(int32_t task_index) const { return job_id_[task_index]; }
  int32_t task_machine(int32_t task_index) const { return machine_of_[task_index]; }
  Interval task_start(int32_t task_index) const { return start_[task_index]; }
  double task_limit(int32_t task_index) const { return limit_[task_index]; }
  SchedulingClass task_class(int32_t task_index) const { return sched_class_[task_index]; }
  std::span<const float> task_usage(int32_t task_index) const { return usage_[task_index]; }
  Interval task_runtime(int32_t task_index) const {
    return static_cast<Interval>(usage_[task_index].size());
  }
  Interval task_end(int32_t task_index) const {
    return start_[task_index] + task_runtime(task_index);
  }

  // Validates invariants (machine indices in range, rich/usage length
  // agreement) and packs all columns into one sealed arena. The builder is
  // left in the reset (empty) state.
  CellTrace Seal();

  // Spill/seal-by-machine-block mode: writes the binary .crftrace directly
  // to `path` through StreamingTraceWriter, never materializing the sealed
  // arena (the file is the arena; machine blocks are flushed and evicted as
  // they complete). Tasks are renumbered machine-major — machine 0's tasks
  // first, in placement order, then machine 1's, and so on — so per-machine
  // content is identical to Seal()'s but task indices and file order differ
  // unless tasks were already added machine-major. Leaves the builder reset
  // like Seal(). Returns false with `*error` on I/O failure.
  bool SealToFile(const std::string& path, std::string* error);

 private:
  std::string name_;
  Interval num_intervals_ = 0;
  int64_t dropped_tasks_ = 0;

  std::vector<TaskId> task_id_;
  std::vector<JobId> job_id_;
  std::vector<int32_t> machine_of_;
  std::vector<Interval> start_;
  std::vector<double> limit_;
  std::vector<SchedulingClass> sched_class_;
  std::vector<std::vector<float>> usage_;
  std::vector<std::vector<RichUsage>> rich_;

  std::vector<double> capacity_;
  std::vector<std::vector<float>> true_peak_;
  std::vector<std::vector<int32_t>> machine_tasks_;
  bool rich_enabled_ = false;
};

}  // namespace crf

#endif  // CRF_TRACE_TRACE_BUILDER_H_
