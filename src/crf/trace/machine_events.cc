#include "crf/trace/machine_events.h"

#include <algorithm>

namespace crf {

void BuildMachineEventLists(const MachineTaskColumns& cols,
                            std::span<const int32_t> task_indices,
                            std::vector<int32_t>& arrivals,
                            std::vector<int32_t>& departures) {
  arrivals.assign(task_indices.begin(), task_indices.end());
  std::sort(arrivals.begin(), arrivals.end(), [&cols](int32_t a, int32_t b) {
    return cols.start[a] < cols.start[b];
  });
  departures.assign(task_indices.begin(), task_indices.end());
  std::sort(departures.begin(), departures.end(), [&cols](int32_t a, int32_t b) {
    return cols.DepartureTime(a) < cols.DepartureTime(b);
  });
}

}  // namespace crf
