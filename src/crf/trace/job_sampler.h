// Job and task sampling shared by the offline trace generator and the online
// cluster simulator: both draw from the same workload distributions so that
// a cluster-sim cell is statistically the same workload as a generated trace
// of the same profile.

#ifndef CRF_TRACE_JOB_SAMPLER_H_
#define CRF_TRACE_JOB_SAMPLER_H_

#include <vector>

#include "crf/trace/cell_profile.h"
#include "crf/trace/trace.h"
#include "crf/trace/workload_model.h"
#include "crf/util/rng.h"

namespace crf {

// Per-job parameters shared (with small per-task jitter) by the job's tasks.
// Tasks of one job sit behind one load balancer, so they share limit, phase
// and workload character.
struct JobTemplate {
  JobId job_id = 0;
  double limit = 0.1;
  SchedulingClass sched_class = SchedulingClass::kLatencySensitive;
  TaskUsageParams params;
};

class JobSampler {
 public:
  JobSampler(const CellProfile& profile, const Rng& rng);

  // Draws a fresh job: limit, scheduling class, usage character, coupling.
  JobTemplate NextJob();

  // Tasks per job: geometric with the profile's mean.
  int SampleTasksPerJob();

  // Runtime in intervals; `service` tasks run to the end of the trace.
  // Clamped to [1, num_intervals - now].
  Interval SampleRuntime(bool service, Interval now, Interval num_intervals);

  // Per-task jitter of the job's mean usage level.
  TaskUsageParams JitterTaskParams(const TaskUsageParams& job_params);

 private:
  const CellProfile& profile_;
  Rng rng_;
  JobId next_job_id_ = 1;
};

// Expected runtime, in intervals, of the profile's non-service task mixture
// (drives the steady-state churn arrival rate).
double MeanNonServiceRuntimeIntervals(const CellProfile& profile);

// The cell-wide shared load factor series (user traffic): mean 1.0, daily
// sine of the profile's amplitude plus AR(1) noise, floored at 0.1.
std::vector<double> BuildSharedLoadSeries(const CellProfile& profile, Interval num_intervals,
                                          const Rng& rng);

// The diurnally modulated churn arrival rate (tasks per interval) plus a
// backfill term pulling the resident population toward the profile target.
double ArrivalRate(const CellProfile& profile, Interval t, int64_t resident_count);

}  // namespace crf

#endif  // CRF_TRACE_JOB_SAMPLER_H_
