#include "crf/trace/stream_writer.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "crf/trace/trace_format.h"
#include "crf/util/check.h"

namespace crf {
namespace {

uint64_t PageSize() {
  static const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

void SetError(std::string* error, std::string message) {
  if (error != nullptr) {
    *error = std::move(message);
  }
}

template <typename T>
T* Slab(std::byte* arena, uint64_t offset) {
  return reinterpret_cast<T*>(arena + offset);
}

}  // namespace

StreamingTraceWriter::StreamingTraceWriter(const StreamTraceSpec& spec, const std::string& path,
                                           std::string* error) {
  const int64_t n = static_cast<int64_t>(spec.task_id.size());
  const int64_t m = static_cast<int64_t>(spec.capacity.size());
  CRF_CHECK_EQ(spec.job_id.size(), spec.task_id.size());
  CRF_CHECK_EQ(spec.machine_of.size(), spec.task_id.size());
  CRF_CHECK_EQ(spec.start.size(), spec.task_id.size());
  CRF_CHECK_EQ(spec.sched_class.size(), spec.task_id.size());
  CRF_CHECK_EQ(spec.limit.size(), spec.task_id.size());
  CRF_CHECK_EQ(spec.runtime.size(), spec.task_id.size());
  CRF_CHECK_EQ(spec.true_peak_len.size(), spec.capacity.size());
  CRF_CHECK_GE(spec.num_intervals, 0);
  CRF_CHECK_GE(spec.dropped_tasks, 0);

  int64_t usage_samples = 0;
  for (int64_t i = 0; i < n; ++i) {
    CRF_CHECK_GE(spec.runtime[i], 0);
    usage_samples += spec.runtime[i];
    CRF_CHECK_GE(spec.machine_of[i], 0) << "task " << i << " has no machine";
    CRF_CHECK_LT(spec.machine_of[i], m) << "task " << i << " machine index out of range";
    CRF_CHECK(i == 0 || spec.machine_of[i] >= spec.machine_of[i - 1])
        << "streaming seal requires machine-major task order (task " << i << ")";
  }
  int64_t peak_samples = 0;
  for (int64_t machine = 0; machine < m; ++machine) {
    CRF_CHECK_GE(spec.true_peak_len[machine], 0);
    peak_samples += spec.true_peak_len[machine];
  }

  const trace_internal::ArenaLayout layout =
      trace_internal::ComputeArenaLayout(n, m, usage_samples, peak_samples, n, spec.rich);
  arena_offset_ = sizeof(trace_internal::BinaryHeader) +
                  trace_internal::PaddedNameLength(spec.name.size());
  file_bytes_ = arena_offset_ + layout.total_bytes;
  num_tasks_ = static_cast<int32_t>(n);
  num_machines_ = static_cast<int>(m);
  rich_ = spec.rich;
  usage_samples_ = static_cast<uint64_t>(usage_samples);

  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetError(error, "cannot create " + path + ": " + std::strerror(errno));
    return;
  }
  if (::ftruncate(fd, static_cast<off_t>(file_bytes_)) != 0) {
    SetError(error, "cannot size " + path + " to " + std::to_string(file_bytes_) +
                        " bytes: " + std::strerror(errno));
    ::close(fd);
    return;
  }
  void* base = ::mmap(nullptr, file_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  const int map_errno = errno;
  ::close(fd);  // The mapping keeps its own reference to the file.
  if (base == MAP_FAILED) {
    SetError(error, "mmap of " + path + " failed: " + std::strerror(map_errno));
    return;
  }
  map_ = static_cast<std::byte*>(base);
  arena_ = map_ + arena_offset_;

  // Header + name. ftruncate zero-fills, so the name padding is already 0.
  trace_internal::BinaryHeader header;
  std::memset(&header, 0, sizeof(header));
  std::memcpy(header.magic, trace_internal::kBinaryMagic, sizeof(trace_internal::kBinaryMagic));
  header.version = trace_internal::kBinaryVersion;
  header.flags = spec.rich ? trace_internal::kFlagRich : 0;
  header.num_tasks = n;
  header.num_machines = m;
  header.usage_samples = usage_samples;
  header.peak_samples = peak_samples;
  header.csr_entries = n;
  header.num_intervals = spec.num_intervals;
  header.dropped_tasks = spec.dropped_tasks;
  header.name_length = spec.name.size();
  header.arena_bytes = layout.total_bytes;
  std::memcpy(map_, &header, sizeof(header));
  if (!spec.name.empty()) {
    std::memcpy(map_ + sizeof(header), spec.name.data(), spec.name.size());
  }

  // Metadata columns, written once up front.
  std::memcpy(Slab<TaskId>(arena_, layout.task_id), spec.task_id.data(), n * sizeof(TaskId));
  std::memcpy(Slab<JobId>(arena_, layout.job_id), spec.job_id.data(), n * sizeof(JobId));
  std::memcpy(Slab<int32_t>(arena_, layout.machine_of), spec.machine_of.data(),
              n * sizeof(int32_t));
  std::memcpy(Slab<Interval>(arena_, layout.start), spec.start.data(), n * sizeof(Interval));
  std::memcpy(Slab<uint8_t>(arena_, layout.sched_class), spec.sched_class.data(),
              n * sizeof(uint8_t));
  std::memcpy(Slab<double>(arena_, layout.limit), spec.limit.data(), n * sizeof(double));
  std::memcpy(Slab<double>(arena_, layout.capacity), spec.capacity.data(), m * sizeof(double));

  uint64_t* usage_off = Slab<uint64_t>(arena_, layout.usage_off);
  uint64_t offset = 0;
  for (int64_t i = 0; i < n; ++i) {
    usage_off[i] = offset;
    offset += static_cast<uint64_t>(spec.runtime[i]);
  }
  usage_off[n] = offset;

  uint64_t* peak_off = Slab<uint64_t>(arena_, layout.peak_off);
  uint64_t peak_offset = 0;
  uint64_t* csr_off = Slab<uint64_t>(arena_, layout.csr_off);
  int32_t* csr_tasks = Slab<int32_t>(arena_, layout.csr_tasks);
  int64_t next_task = 0;
  for (int64_t machine = 0; machine < m; ++machine) {
    peak_off[machine] = peak_offset;
    peak_offset += static_cast<uint64_t>(spec.true_peak_len[machine]);
    csr_off[machine] = static_cast<uint64_t>(next_task);
    while (next_task < n && spec.machine_of[next_task] == machine) {
      ++next_task;
    }
  }
  peak_off[m] = peak_offset;
  csr_off[m] = static_cast<uint64_t>(next_task);
  CRF_CHECK_EQ(next_task, n);
  // Machine-major numbering makes the CSR index the identity permutation.
  for (int32_t i = 0; i < num_tasks_; ++i) {
    csr_tasks[i] = i;
  }

  usage_off_ = usage_off;
  peak_off_ = peak_off;
  csr_off_ = csr_off;
  usage_slab_ = Slab<float>(arena_, layout.usage);
  rich_slab_ = Slab<float>(arena_, layout.rich);
  peak_slab_ = Slab<float>(arena_, layout.true_peak);
  usage_slab_offset_ = layout.usage;
  rich_slab_offset_ = layout.rich;
  peak_slab_offset_ = layout.true_peak;
}

StreamingTraceWriter::~StreamingTraceWriter() { Unmap(); }

void StreamingTraceWriter::Unmap() {
  if (map_ != nullptr) {
    ::munmap(map_, file_bytes_);
    map_ = nullptr;
    arena_ = nullptr;
  }
}

std::span<float> StreamingTraceWriter::usage_row(int32_t task_index) {
  const uint64_t begin = usage_off_[task_index];
  const uint64_t end = usage_off_[task_index + 1];
  return std::span<float>(usage_slab_ + begin, end - begin);
}

std::span<float> StreamingTraceWriter::rich_row(int32_t task_index, RichColumn column) {
  CRF_CHECK(rich_) << "writer was not configured for rich stats";
  const uint64_t begin = usage_off_[task_index];
  const uint64_t end = usage_off_[task_index + 1];
  return std::span<float>(
      rich_slab_ + static_cast<uint64_t>(column) * usage_samples_ + begin, end - begin);
}

std::span<float> StreamingTraceWriter::true_peak_row(int machine_index) {
  const uint64_t begin = peak_off_[machine_index];
  const uint64_t end = peak_off_[machine_index + 1];
  return std::span<float>(peak_slab_ + begin, end - begin);
}

void StreamingTraceWriter::FlushAndDropArenaRange(uint64_t arena_begin, uint64_t arena_end) {
  if (arena_begin >= arena_end) {
    return;
  }
  const uint64_t page = PageSize();
  const uintptr_t base = reinterpret_cast<uintptr_t>(arena_);
  // msync rounds outward (it only schedules writeback; neighbors are safe).
  const uintptr_t sync_begin = (base + arena_begin) & ~(page - 1);
  const uintptr_t sync_end = base + arena_end;
  ::msync(reinterpret_cast<void*>(sync_begin), sync_end - sync_begin, MS_ASYNC);
  // madvise rounds inward: a page shared with the next, still-unwritten
  // block must stay mapped. Dropped pages are clean-or-queued file pages —
  // the data survives in the page cache and refaults on demand.
  const uintptr_t drop_begin = (base + arena_begin + page - 1) & ~(page - 1);
  const uintptr_t drop_end = (base + arena_end) & ~(page - 1);
  if (drop_begin < drop_end) {
    ::madvise(reinterpret_cast<void*>(drop_begin), drop_end - drop_begin, MADV_DONTNEED);
  }
}

void StreamingTraceWriter::RetireMachines(int begin_machine, int end_machine) {
  if (begin_machine >= end_machine || map_ == nullptr) {
    return;
  }
  const uint64_t task_begin = csr_off_[begin_machine];
  const uint64_t task_end = csr_off_[end_machine];
  const uint64_t sample_begin = usage_off_[task_begin];
  const uint64_t sample_end = usage_off_[task_end];
  FlushAndDropArenaRange(usage_slab_offset_ + sample_begin * sizeof(float),
                         usage_slab_offset_ + sample_end * sizeof(float));
  if (rich_) {
    for (int c = 0; c < kNumRichColumns; ++c) {
      const uint64_t column = static_cast<uint64_t>(c) * usage_samples_;
      FlushAndDropArenaRange(rich_slab_offset_ + (column + sample_begin) * sizeof(float),
                             rich_slab_offset_ + (column + sample_end) * sizeof(float));
    }
  }
  FlushAndDropArenaRange(peak_slab_offset_ + peak_off_[begin_machine] * sizeof(float),
                         peak_slab_offset_ + peak_off_[end_machine] * sizeof(float));
}

bool StreamingTraceWriter::Finish(std::string* error) {
  if (map_ == nullptr) {
    SetError(error, "writer is not open");
    return false;
  }
  // MS_ASYNC queues the remaining dirty pages; the unified page cache keeps
  // readers coherent whether or not the disk write-back has completed.
  const bool ok = ::msync(map_, file_bytes_, MS_ASYNC) == 0;
  if (!ok) {
    SetError(error, std::string("msync failed: ") + std::strerror(errno));
  }
  Unmap();
  return ok;
}

}  // namespace crf
