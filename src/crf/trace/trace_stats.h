// Descriptive statistics over traces, shared by the motivation/background
// experiments (Figs 1, 4, 6, 7) and the examples.

#ifndef CRF_TRACE_TRACE_STATS_H_
#define CRF_TRACE_TRACE_STATS_H_

#include <span>
#include <string>
#include <vector>

#include "crf/stats/ecdf.h"
#include "crf/trace/trace.h"

namespace crf {

// Tasks submitted per interval (interval 0 is excluded: the initial resident
// population is not a submission wave). Fig 4.
std::vector<int64_t> SubmissionRateSeries(const CellTrace& cell);

// Runtime in hours of every task. Fig 7(a).
Ecdf TaskRuntimeHoursCdf(const CellTrace& cell);

// Usage-to-limit ratio samples over all (task, interval) pairs, subsampled
// by `stride` over intervals. Fig 7(c).
Ecdf UsageToLimitCdf(const CellTrace& cell, int stride = 4);

// Cell-level sum of limits / usage per interval.
std::vector<double> CellLimitSeries(const CellTrace& cell);
std::vector<double> CellUsageSeries(const CellTrace& cell);

// For each interval tau, the sum over tasks resident at tau of the task's own
// future peak usage within `horizon` intervals: the "sum(task-level peak)"
// curve of Fig 1. (The machine-level counterpart is the peak oracle, in
// crf/core/oracle.h.)
std::vector<double> TaskLevelFuturePeakSum(const CellTrace& cell, Interval horizon);

// Relative error samples (approx_peak - actual_peak) / actual_peak where
// approx_peak = sum over resident tasks of their within-interval percentile
// `p` (p in {50,60,70,80,90,95,99,100}) and actual_peak is the machine's
// ground-truth within-interval peak. Requires rich stats. Fig 6.
Ecdf PercentileSumPeakErrorCdf(const CellTrace& cell, int percentile, int stride = 4);

// One-pass grid variant: the error CDFs for every percentile in
// `percentiles` (result order matches input order) from a single walk of the
// trace — each task-interval's rich stats row is loaded once and queried for
// all percentiles, instead of re-walking the whole cell per percentile as
// repeated PercentileSumPeakErrorCdf calls would. Fig 6 runs its whole
// percentile grid through this.
std::vector<Ecdf> PercentileSumPeakErrorCdfs(const CellTrace& cell,
                                             std::span<const int> percentiles,
                                             int stride = 4);

// Physical layout summary of a sealed trace: per-machine CSR row widths and
// the sizes of the arena's column slabs. Shown by `crf info`.
struct TraceLayoutStats {
  int32_t num_machines = 0;
  int32_t min_tasks_per_machine = 0;
  double mean_tasks_per_machine = 0.0;
  int32_t max_tasks_per_machine = 0;
  int64_t csr_entries = 0;  // total placed tasks across CSR rows
  int64_t usage_samples = 0;
  // Slab sizes in bytes. task_column_bytes covers every per-task column
  // (ids, jobs, machines, starts, classes, limits, usage offsets);
  // csr_bytes is the row payload (task indices), excluding row offsets.
  int64_t arena_bytes = 0;
  int64_t task_column_bytes = 0;
  int64_t usage_bytes = 0;
  int64_t csr_bytes = 0;
  int64_t peak_bytes = 0;
  int64_t rich_bytes = 0;
  // Load mode: true when the arena is an mmap of the trace file rather than
  // a heap copy. resident_bytes is a point-in-time mincore estimate of how
  // much of the mapped arena is physically present (== arena_bytes on heap
  // loads, which are always fully resident).
  bool mapped = false;
  int64_t resident_bytes = 0;
};

TraceLayoutStats ComputeTraceLayoutStats(const CellTrace& cell);

// Fixed three-line rendering of the layout stats (golden-tested; `crf info`
// prints it verbatim). The third line reports the load mode; its resident
// figure is a live kernel estimate on mapped traces, so only the heap form
// is byte-stable.
std::string DescribeTraceLayout(const TraceLayoutStats& stats);

}  // namespace crf

#endif  // CRF_TRACE_TRACE_STATS_H_
